/**
 * @file
 * Domain example: regex search over log shards — string search is one of
 * the paper's headline multi-stream domains, and the unit is generated
 * from the pattern at "compile time" exactly as the paper's Scala
 * metaprogramming builds the NFA circuit (Section 7.1, Sidhu-Prasanna).
 * A single input can be split at arbitrary points for this workload
 * (Section 2); here each shard is a separate stream.
 *
 *   ./log_search [pattern] [num_pus] [--counters] [--trace PATH]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/regex.h"
#include "example_common.h"
#include "system/fleet_system.h"
#include "util/rng.h"

using namespace fleet;

int
main(int argc, char **argv)
{
    auto trace_opts = examples::stripTraceFlags(argc, argv);
    apps::RegexParams params;
    if (argc > 1)
        params.pattern = argv[1];
    int num_pus = argc > 2 ? std::atoi(argv[2]) : 48;

    apps::RegexApp app(params);
    std::printf("Pattern '%s' -> %d NFA positions (one 1-bit register "
                "each, per Sidhu-Prasanna)\n",
                params.pattern.c_str(), app.nfa().numPositions());

    Rng rng(3);
    std::vector<BitBuffer> shards;
    for (int p = 0; p < num_pus; ++p)
        shards.push_back(app.generateStream(rng, 64 * 1024));

    system::SystemConfig config;
    trace_opts.apply(config);
    system::FleetSystem fleet(app.program(), config, shards);
    const system::RunReport &report = fleet.run();
    auto stats = fleet.stats();

    uint64_t matches = 0;
    for (int p = 0; p < num_pus; ++p)
        matches += fleet.output(p).sizeBits() / 32;
    std::printf("%llu match positions in %.2f MB across %d shards\n",
                (unsigned long long)matches, stats.inputBytes / 1e6,
                num_pus);
    std::printf("%llu cycles @ %.0f MHz -> %.2f GB/s\n",
                (unsigned long long)stats.cycles, stats.clockMHz,
                stats.inputGBps());

    // Show a few matches with context from shard 0.
    BitBuffer out0 = fleet.output(0);
    std::string shard0 = shards[0].toString();
    for (int i = 0; i < 3 && uint64_t(i) * 32 < out0.sizeBits(); ++i) {
        uint64_t end = out0.readBits(uint64_t(i) * 32, 32);
        size_t from = end > 30 ? end - 30 : 0;
        std::string context = shard0.substr(from, end - from + 1);
        for (char &c : context)
            if (c == '\n')
                c = ' ';
        std::printf("  match ending at %llu: ...%s\n",
                    (unsigned long long)end, context.c_str());
    }
    return trace_opts.report(report);
}
