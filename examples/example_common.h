#ifndef FLEET_EXAMPLES_EXAMPLE_COMMON_H
#define FLEET_EXAMPLES_EXAMPLE_COMMON_H

/**
 * @file
 * Shared observability flags for the runnable examples (ISSUE 3). Every
 * example accepts, in addition to its positional arguments:
 *
 *   --counters      collect and print per-component counters after the
 *                   run (bytes moved, DRAM beats, stall breakdown);
 *   --trace PATH    also record span events and write a Chrome
 *                   trace_event JSON to PATH (open in Perfetto);
 *   --backend B     PU backend (fast | rtl | rtltape | rtlinterp |
 *                   rtljit — system/pu_backend.h). Every backend is
 *                   bit-identical; rtljit compiles the tape to native
 *                   code at session start and falls back to rtltape
 *                   when no host compiler is available.
 *
 * stripTraceFlags() removes these from argv before the example's own
 * positional parsing, so `./quickstart 16 4096 --counters` works.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "system/fleet_system.h"
#include "system/pu_backend.h"

namespace fleet {
namespace examples {

struct TraceOptions
{
    bool counters = false;
    std::string tracePath;
    std::optional<system::PuBackend> backend;

    /** Enable collection on the system config (counters implies the
     * cheap counter mode; --trace additionally records events), and
     * apply the --backend override when one was given. */
    void apply(system::SystemConfig &config) const
    {
        config.trace.counters = counters || !tracePath.empty();
        config.trace.events = !tracePath.empty();
        if (backend)
            config.backend = *backend;
    }

    /** tracePath with `suffix` spliced in before the extension, for
     * examples that run several systems in one invocation. */
    std::string pathWithSuffix(const std::string &suffix) const
    {
        if (suffix.empty())
            return tracePath;
        auto dot = tracePath.rfind('.');
        if (dot == std::string::npos)
            return tracePath + "_" + suffix;
        return tracePath.substr(0, dot) + "_" + suffix +
               tracePath.substr(dot);
    }

    /**
     * Print the counter digest and/or export the Chrome trace for one
     * finished run. Returns 0, or 1 if the trace file could not be
     * written (usable as a main() exit code).
     */
    int report(const system::RunReport &run_report,
               const std::string &suffix = {}) const
    {
        if (counters && run_report.trace)
            std::printf("\n%s",
                        run_report.trace->countersSummary().c_str());
        if (!tracePath.empty()) {
            std::string path = pathWithSuffix(suffix);
            Status status = run_report.writeTrace(path);
            if (!status.ok()) {
                std::fprintf(stderr, "trace export failed: %s\n",
                             status.toString().c_str());
                return 1;
            }
            std::printf("wrote trace %s (open in Perfetto)\n",
                        path.c_str());
        }
        return 0;
    }
};

/** Remove --counters / --trace PATH / --backend B from argv (compacting
 * in place) and return the parsed options; positional arguments keep
 * their order. An unknown backend name exits with a usage message. */
inline TraceOptions
stripTraceFlags(int &argc, char **argv)
{
    TraceOptions opts;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--counters") == 0) {
            opts.counters = true;
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            opts.tracePath = argv[++i];
        } else if (std::strcmp(argv[i], "--backend") == 0 &&
                   i + 1 < argc) {
            auto parsed = system::parsePuBackend(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr,
                             "unknown backend %s (choices: %s)\n",
                             argv[i], system::kPuBackendChoices);
                std::exit(2);
            }
            opts.backend = *parsed;
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    return opts;
}

} // namespace examples
} // namespace fleet

#endif // FLEET_EXAMPLES_EXAMPLE_COMMON_H
