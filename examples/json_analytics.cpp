/**
 * @file
 * Domain example: extracting fields from a large batch of JSON records —
 * the paper's motivating big-data scenario (Section 1: Spark/MapReduce
 * users write serial code; Fleet brings the same model to FPGAs).
 *
 * The host splits a record batch into one roughly equal stream per
 * processing unit at newline boundaries (Section 2 describes exactly this
 * "fast, vectorized newline finder" split), prepends the field-trie
 * config to each stream, runs the accelerator, and concatenates the
 * per-unit outputs.
 *
 *   ./json_analytics [num_pus] [total_bytes] [--counters] [--trace PATH]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/json.h"
#include "example_common.h"
#include "system/fleet_system.h"
#include "system/splitter.h"
#include "util/rng.h"

using namespace fleet;

int
main(int argc, char **argv)
{
    auto trace_opts = examples::stripTraceFlags(argc, argv);
    int num_pus = argc > 1 ? std::atoi(argv[1]) : 64;
    uint64_t total = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                              : 2 << 20;

    apps::JsonParams params;
    params.fields = {"user.name", "user.geo.city", "id", "meta.tag"};
    apps::JsonApp app(params);

    // Generate one big record batch (in a real deployment this is the
    // input file).
    Rng rng(7);
    BitBuffer batch = app.generateStream(rng, total);
    std::string text = batch.toString();
    // Strip this batch's config prologue; we re-add one per split.
    size_t prologue = app.trieConfig().size();
    text = text.substr(prologue);

    // Host-side split at newline boundaries, each stream prefixed with
    // the trie prologue (the Section 2 splitting step).
    auto streams = system::splitAtDelimiter(text, num_pus, '\n',
                                            app.trieConfig());
    num_pus = static_cast<int>(streams.size());

    std::printf("Extracting %zu fields from %.2f MB of JSON across %d "
                "processing units...\n",
                params.fields.size(), text.size() / 1e6, num_pus);

    system::SystemConfig config;
    trace_opts.apply(config);
    system::FleetSystem fleet(app.program(), config, streams);
    const system::RunReport &report = fleet.run();
    auto stats = fleet.stats();

    std::string values;
    for (int p = 0; p < num_pus; ++p)
        values += fleet.output(p).toString();

    uint64_t extracted = 0;
    for (char c : values)
        extracted += c == '\n';
    std::printf("Extracted %llu field values (%.1f%% of input bytes) in "
                "%llu cycles -> %.2f GB/s at %.0f MHz\n",
                (unsigned long long)extracted,
                100.0 * values.size() / text.size(),
                (unsigned long long)stats.cycles, stats.inputGBps(),
                stats.clockMHz);

    std::printf("First extracted values:\n");
    size_t pos = 0;
    for (int i = 0; i < 5 && pos < values.size(); ++i) {
        size_t end = values.find('\n', pos);
        std::printf("  %s\n", values.substr(pos, end - pos).c_str());
        pos = end + 1;
    }
    return trace_opts.report(report);
}
