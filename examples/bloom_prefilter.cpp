/**
 * @file
 * Domain example: building per-block Bloom filters for a key-value
 * store — the paper's motivation for the Bloom application ("using an
 * in-memory Bloom filter to quickly test whether a key exists can save
 * disk IOs", Section 7.1). The accelerator builds one filter per block
 * of keys; the host then uses the filters to route lookups, and we
 * measure the disk reads the prefilter would save.
 *
 *   ./bloom_prefilter [num_pus] [keys_per_stream] [--counters]
 *   [--trace PATH]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/bloom.h"
#include "example_common.h"
#include "system/fleet_system.h"
#include "util/rng.h"

using namespace fleet;

int
main(int argc, char **argv)
{
    auto trace_opts = examples::stripTraceFlags(argc, argv);
    int num_pus = argc > 1 ? std::atoi(argv[1]) : 32;
    uint64_t keys = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8192;

    apps::BloomApp app;
    const auto &params = app.params();
    keys = keys / params.blockItems * params.blockItems;

    Rng rng(29);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < num_pus; ++p)
        streams.push_back(app.generateStream(rng, keys * 4));

    std::printf("Building Bloom filters (%d bits, %d hashes, blocks of "
                "%d keys) for %d x %llu keys...\n",
                params.filterBits, params.numHashes, params.blockItems,
                num_pus, (unsigned long long)keys);

    system::SystemConfig config;
    trace_opts.apply(config);
    system::FleetSystem fleet(app.program(), config, streams);
    const system::RunReport &report = fleet.run();
    auto stats = fleet.stats();
    std::printf("%llu cycles @ %.0f MHz -> %.2f GB/s of keys hashed\n",
                (unsigned long long)stats.cycles, stats.clockMHz,
                stats.inputGBps());

    // Host-side use: probe the filters with present and absent keys.
    int words = params.filterBits / params.wordBits;
    int index_bits = bitsToRepresent(uint64_t(params.filterBits) - 1);
    auto probe = [&](const BitBuffer &filters, int block, uint32_t key) {
        for (int h = 0; h < params.numHashes; ++h) {
            uint32_t bit = (key * apps::BloomApp::hashConstant(h)) >>
                           (32 - index_bits);
            uint64_t word = filters.readBits(
                (uint64_t(block) * words + bit / params.wordBits) *
                    params.wordBits,
                params.wordBits);
            if (!(word & (uint64_t(1) << (bit % params.wordBits))))
                return false;
        }
        return true;
    };

    BitBuffer filters = fleet.output(0);
    uint64_t present_hits = 0, absent_hits = 0, probes = 0;
    for (uint64_t i = 0; i < keys; i += 7) {
        uint32_t key = uint32_t(streams[0].readBits(i * 32, 32));
        int block = int(i / params.blockItems);
        present_hits += probe(filters, block, key);
        absent_hits += probe(filters, block, uint32_t(rng.next()));
        ++probes;
    }
    std::printf("Probes: %llu. Present keys found: %llu/%llu (must be "
                "100%%: no false negatives).\n",
                (unsigned long long)probes,
                (unsigned long long)present_hits,
                (unsigned long long)probes);
    std::printf("Random absent keys passing the filter: %llu/%llu "
                "(%.1f%% false-positive rate) -> %.1f%% of disk reads "
                "for absent keys avoided.\n",
                (unsigned long long)absent_hits,
                (unsigned long long)probes,
                100.0 * absent_hits / probes,
                100.0 * (1.0 - double(absent_hits) / probes));
    if (present_hits != probes)
        return 1;
    return trace_opts.report(report);
}
