/**
 * @file
 * Quickstart: write a Fleet processing unit, run it on the functional
 * simulator, compile it to RTL (printing the generated Verilog), and run
 * hundreds of copies through the full-system simulator — the complete
 * user-facing flow of Figure 1 of the paper.
 *
 * The unit is the paper's Figure 3 example: a 256-entry histogram
 * emitted and cleared after every block of 100 8-bit tokens.
 *
 *   ./quickstart [num_pus] [bytes_per_stream] [--counters] [--trace PATH]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "compile/compiler.h"
#include "example_common.h"
#include "lang/builder.h"
#include "rtl/verilog.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "util/rng.h"

using namespace fleet;
using lang::Bram;
using lang::Value;
using lang::mux;

namespace {

lang::Program
blockFrequenciesUnit()
{
    // The paper's Figure 3, transliterated into the C++-embedded DSL.
    lang::ProgramBuilder b("BlockFrequencies", 8, 8);
    Value itemCounter = b.reg("itemCounter", 7, 0);
    Bram frequencies = b.bram("frequencies", 256, 8);
    Value frequenciesIdx = b.reg("frequenciesIdx", 9, 0);

    b.if_(itemCounter == 100, [&] {
        b.while_(frequenciesIdx < 256, [&] {
            b.emit(frequencies[frequenciesIdx]);
            b.assign(frequencies[frequenciesIdx], 0);
            b.assign(frequenciesIdx, frequenciesIdx + 1);
        });
        b.assign(frequenciesIdx, 0);
    });
    b.assign(frequencies[b.input()], frequencies[b.input()] + 1);
    b.assign(itemCounter, mux(itemCounter == 100, 1, itemCounter + 1));
    // The histogram emits 256 entries per 100-token block (2.56 output
    // bytes per input byte); declaring it lets the runtime auto-size
    // each unit's DRAM output region.
    b.maxOutputExpansion(2.56);
    return b.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace_opts = examples::stripTraceFlags(argc, argv);
    int num_pus = argc > 1 ? std::atoi(argv[1]) : 128;
    uint64_t bytes = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

    lang::Program program = blockFrequenciesUnit();
    std::printf("Unit '%s': %zu regs, %zu BRAMs, %d-bit tokens in/out\n",
                program.name.c_str(), program.regs.size(),
                program.brams.size(), program.inputTokenWidth);

    // 1. Functional ("software") simulation of a single stream.
    Rng rng(1);
    BitBuffer stream;
    for (uint64_t i = 0; i < bytes; ++i)
        stream.appendBits(rng.nextBelow(64), 8);
    sim::FunctionalSimulator functional(program);
    auto result = functional.run(stream);
    std::printf("Functional sim: %llu tokens -> %llu histogram entries in "
                "%llu virtual cycles\n",
                (unsigned long long)result.tokens,
                (unsigned long long)result.emits,
                (unsigned long long)result.vcycles);

    // 2. Compile to RTL; show the first lines of the generated Verilog.
    auto compiled = compile::compileProgram(program);
    std::string verilog = rtl::emitVerilog(compiled.circuit);
    std::printf("\nCompiled to %zu RTL nodes, %zu registers, %zu BRAMs.\n"
                "Generated Verilog (first 10 lines of %zu total):\n",
                compiled.circuit.nodes().size(),
                compiled.circuit.regs().size(),
                compiled.circuit.brams().size(),
                std::count(verilog.begin(), verilog.end(), '\n'));
    size_t pos = 0;
    for (int line = 0; line < 10 && pos != std::string::npos; ++line) {
        size_t end = verilog.find('\n', pos);
        std::printf("    %s\n", verilog.substr(pos, end - pos).c_str());
        pos = end == std::string::npos ? end : end + 1;
    }

    // 3. Full system: num_pus copies + memory controllers on 4 channels.
    std::vector<BitBuffer> streams;
    for (int p = 0; p < num_pus; ++p) {
        BitBuffer s;
        for (uint64_t i = 0; i < bytes; ++i)
            s.appendBits(rng.nextBelow(64), 8);
        streams.push_back(std::move(s));
    }
    system::SystemConfig config;
    trace_opts.apply(config);
    system::FleetSystem fleet(program, config, streams);
    const system::RunReport &report = fleet.run();
    auto stats = fleet.stats();
    std::printf("\nFull system: %d PUs x %llu bytes on %d channels\n",
                num_pus, (unsigned long long)bytes, config.numChannels);
    std::printf("  run report: %s\n", report.summary().c_str());
    std::printf("  %llu cycles @ %.0f MHz -> %.2f GB/s in, %.2f GB/s out\n",
                (unsigned long long)stats.cycles, stats.clockMHz,
                stats.inputGBps(), stats.outputGBps());
    std::printf("  PU 0 emitted %llu bytes (first entries: ",
                (unsigned long long)(fleet.output(0).sizeBits() / 8));
    BitBuffer out0 = fleet.output(0);
    for (int i = 0; i < 6 && uint64_t(i) * 8 < out0.sizeBits(); ++i)
        std::printf("%llu ", (unsigned long long)out0.readBits(i * 8, 8));
    std::printf("...)\n");
    return trace_opts.report(report);
}
