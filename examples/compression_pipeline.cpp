/**
 * @file
 * Domain example: columnar integer compression (the paper's integer
 * coding application, motivated by integer columns in columnar databases
 * and network transfer in distributed systems — Section 7.1). Encodes a
 * column on the simulated accelerator, verifies a software round-trip
 * through the decoder, and reports the compression ratio per value
 * distribution — the five distributions of the paper's experiment.
 *
 *   ./compression_pipeline [num_pus] [ints_per_stream] [--counters]
 *   [--trace PATH]   (one trace file per value range)
 */

#include <cstdio>
#include <cstdlib>

#include "apps/intcode.h"
#include "example_common.h"
#include "system/fleet_system.h"
#include "util/rng.h"

using namespace fleet;

int
main(int argc, char **argv)
{
    auto trace_opts = examples::stripTraceFlags(argc, argv);
    int num_pus = argc > 1 ? std::atoi(argv[1]) : 32;
    uint64_t ints = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16384;

    std::printf("Compressing %d streams x %llu 32-bit integers per value "
                "range...\n\n", num_pus, (unsigned long long)ints);
    std::printf("%-12s %-12s %-12s %-10s %s\n", "values", "in MB",
                "out MB", "ratio", "GB/s (sim)");

    for (int range : {5, 10, 15, 20, 25}) {
        apps::IntcodeApp app(apps::IntcodeParams{range});
        Rng rng(100 + range);
        std::vector<BitBuffer> streams;
        for (int p = 0; p < num_pus; ++p)
            streams.push_back(app.generateStream(rng, ints * 4));

        system::SystemConfig config;
        trace_opts.apply(config);
        system::FleetSystem fleet(app.program(), config, streams);
        const system::RunReport &report = fleet.run();
        auto stats = fleet.stats();

        // Round-trip verification through the software decoder.
        uint64_t out_bytes = 0;
        for (int p = 0; p < num_pus; ++p) {
            BitBuffer encoded = fleet.output(p);
            out_bytes += encoded.sizeBits() / 8;
            auto decoded = apps::IntcodeApp::decode(encoded);
            uint64_t count = streams[p].sizeBits() / 32;
            if (decoded.size() != count) {
                std::printf("ROUND-TRIP FAILED on PU %d\n", p);
                return 1;
            }
            for (uint64_t i = 0; i < count; ++i) {
                if (decoded[i] != streams[p].readBits(i * 32, 32)) {
                    std::printf("ROUND-TRIP MISMATCH on PU %d int %llu\n",
                                p, (unsigned long long)i);
                    return 1;
                }
            }
        }
        char label[32];
        std::snprintf(label, sizeof(label), "[0, 2^%d)", range);
        std::printf("%-12s %-12.2f %-12.2f %-10.2f %.2f\n", label,
                    stats.inputBytes / 1e6, out_bytes / 1e6,
                    double(stats.inputBytes) / out_bytes,
                    stats.inputGBps());
        if (trace_opts.report(report, "range" + std::to_string(range)))
            return 1;
    }
    std::printf("\nAll streams round-tripped through the decoder.\n");
    return 0;
}
