/**
 * @file
 * Domain example: Smith-Waterman fuzzy matching over DNA reads — the
 * paper cites DNA sequencing and fuzzy search (ElasticSearch) as the
 * target workloads (Section 7.1). Each processing unit holds one row of
 * the DP matrix in registers and emits the stream index whenever the
 * score crosses a runtime threshold; software then goes back to the
 * input at those positions to reconstruct the exact alignments, exactly
 * as the paper describes.
 *
 *   ./dna_fuzzy_match [num_pus] [bytes_per_stream] [--counters]
 *   [--trace PATH]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/sw.h"
#include "example_common.h"
#include "system/fleet_system.h"
#include "util/rng.h"

using namespace fleet;

int
main(int argc, char **argv)
{
    auto trace_opts = examples::stripTraceFlags(argc, argv);
    int num_pus = argc > 1 ? std::atoi(argv[1]) : 48;
    uint64_t bytes = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                              : 64 * 1024;

    apps::SwApp app;
    Rng rng(17);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < num_pus; ++p)
        streams.push_back(app.generateStream(rng, bytes));

    std::printf("Fuzzy-matching a %d-char target against %d streams of "
                "%.0f kB (threshold from stream config)...\n",
                app.params().targetLen, num_pus, bytes / 1024.0);

    system::SystemConfig config;
    trace_opts.apply(config);
    system::FleetSystem fleet(app.program(), config, streams);
    const system::RunReport &report = fleet.run();
    auto stats = fleet.stats();

    uint64_t hits = 0;
    for (int p = 0; p < num_pus; ++p)
        hits += fleet.output(p).sizeBits() / 32;
    std::printf("%llu hit positions; %llu cycles -> %.2f GB/s @ %.0f "
                "MHz\n",
                (unsigned long long)hits,
                (unsigned long long)stats.cycles, stats.inputGBps(),
                stats.clockMHz);

    // Software post-pass: reconstruct the matched windows for shard 0,
    // as the paper's host-side step does.
    const int m = app.params().targetLen;
    std::string text = streams[0].toString().substr(m + 1);
    std::string target = streams[0].toString().substr(0, m);
    BitBuffer out0 = fleet.output(0);
    std::printf("Target: %s\n", target.c_str());
    for (int i = 0; i < 3 && uint64_t(i) * 32 < out0.sizeBits(); ++i) {
        uint64_t end = out0.readBits(uint64_t(i) * 32, 32);
        size_t from = end + 1 >= uint64_t(m) ? end + 1 - m : 0;
        std::printf("  hit @%-8llu ...%s...\n", (unsigned long long)end,
                    text.substr(from, m).c_str());
    }
    return trace_opts.report(report);
}
