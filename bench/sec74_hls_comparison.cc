/**
 * @file
 * Regenerates the Section 7.4 comparison against a commercial OpenCL HLS
 * system (modelled; see baseline/hls.h and DESIGN.md):
 *
 *  1. memory controller: the HLS serial local-array fill vs the Fleet
 *     input controller, single channel (paper: 524.84 / 675.06 MB/s vs
 *     6.8 GB/s, a 13.0x / 10.1x gap, with a 1 GB/s hard ceiling);
 *  2. processing-unit initiation intervals: Fleet's guaranteed 1 virtual
 *     cycle per clock vs the conservative port-conflict schedule (paper:
 *     1 vs 15 for JSON parsing, 3-8 vs 18 for integer coding);
 *  3. area: HLS width/pipeline pessimism per unit (paper: 4.6x and 2.8x
 *     more logic cells for JSON parsing and integer coding).
 */

#include "baseline/hls.h"
#include "bench_common.h"
#include "compile/compiler.h"
#include "lang/builder.h"
#include "model/area.h"

using namespace fleet;

namespace {

double
fleetSingleChannelGBps()
{
    lang::ProgramBuilder b("DropAll", 32, 32);
    lang::Value seen = b.reg("seen", 1, 0);
    b.assign(seen, lang::Value::lit(1, 1));
    lang::Program program = b.finish();
    Rng rng(5);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 64; ++p) {
        BitBuffer stream;
        for (int i = 0; i < 8192; ++i)
            stream.appendBits(rng.next(), 32);
        streams.push_back(std::move(stream));
    }
    return bench::channelScaledGBps(program, streams, 1);
}

} // namespace

int
main()
{
    bench::printHeader("Section 7.4: comparison with a commercial HLS "
                       "system (modelled)",
                       "Single-channel memory performance, initiation "
                       "intervals, and per-unit area.");

    // --- 1. Memory controller. -------------------------------------------
    baseline::HlsMemoryParams mem_params;
    double pipelined = baseline::hlsMemoryMBps(mem_params, false);
    double unrolled = baseline::hlsMemoryMBps(mem_params, true);
    double ceiling = baseline::hlsMemoryCeilingMBps();
    double fleet = fleetSingleChannelGBps() * 1000.0;

    Table mem({"Input path (one channel)", "MB/s", "Fleet advantage",
               "Paper"});
    mem.row().cell("HLS pipelined serial fill").cell(pipelined)
        .cell(fleet / pipelined, 1).cell("524.84 (13.0x)");
    mem.row().cell("HLS unrolled serial fill").cell(unrolled)
        .cell(fleet / unrolled, 1).cell("675.06 (10.1x)");
    mem.row().cell("HLS hard ceiling (2x32b ports)").cell(ceiling)
        .cell(fleet / ceiling, 1).cell("1000 (6.8x)");
    mem.row().cell("Fleet input controller").cell(fleet).cell(1.0, 1)
        .cell("6800");
    std::printf("%s\n", mem.str().c_str());

    // --- 2 & 3. Initiation intervals and area. ---------------------------
    Table pu({"App", "Fleet II", "HLS II (modelled)", "HLS/Fleet LUTs",
              "Paper (II, area)"});
    memctl::ControllerParams ctrl;
    for (auto &app : apps::allApplications()) {
        lang::Program program = app->program();
        auto compiled = compile::compileProgram(program);
        int hls_ii = baseline::hlsInitiationInterval(program);
        auto fleet_area = model::estimatePuResources(compiled.circuit,
                                                     ctrl);
        auto hls_area =
            baseline::hlsAreaEstimate(compiled.circuit, program, ctrl);
        double factor = double(hls_area.luts) /
                        double(std::max<uint64_t>(fleet_area.luts, 1));
        const char *paper = "-";
        if (app->name() == "JsonParsing")
            paper = "II 15 vs 1, 4.6x";
        else if (app->name() == "IntegerCoding")
            paper = "II 18 vs 3-8, 2.8x";
        pu.row()
            .cell(app->name())
            .cell(1)
            .cell(hls_ii)
            .cell(factor, 1)
            .cell(paper);
    }
    std::printf("%s\n", pu.str().c_str());
    std::printf(
        "Fleet's language restrictions guarantee II = 1 (one virtual\n"
        "cycle per clock); the modelled HLS schedule serializes every\n"
        "syntactic array/output access because it cannot prove mutual\n"
        "exclusivity (Section 7.4's central claim).\n");
    return 0;
}
