/**
 * @file
 * Cluster scale-out and pipeline latency (ISSUE 10), in the spirit of
 * HPCC-FPGA's b_eff: characterize the multi-device layer end to end.
 *
 * Part A — scale-out: the identical job mix is replayed through 1-, 2-
 * and 4-device sessions (same per-device slot/channel shape), and the
 * headline is throughput in jobs per simulated megacycle. Devices are
 * independent except for placement, so throughput must scale:
 *
 *  - GATE: 2-device jobs/Mcycle >= 1.6x the 1-device run.
 *
 * Part B — pipeline latency: a two-stage pipeline (identity on device
 * 0 feeding streamSum on device 1) is swept across link bandwidths,
 * and the per-job end-to-end p50/p99 (submit -> final report, in
 * simulated cycles) is reported per point.
 *
 *  - GATE: the narrowest link's p99 must exceed the widest link's
 *    (the link model must actually cost something, or the sweep is
 *    meaningless).
 *
 * Determinism: placement is a pure function of simulated state, so in
 * --smoke mode the 2-device point is replayed across host thread
 * counts and a cycle-accurate backend and fenced bit-for-bit on
 * per-job (device, pu, channel, arm, retire, completed) tuples.
 *
 * Flags:
 *  --smoke         short CI configuration + determinism crosscheck.
 *  --json PATH     write results as JSON (BENCH_CLUSTER.json).
 *  --baseline PATH compare jobs/Mcycle per device count against a
 *                  previous JSON; exact match required.
 *  --threads N     host worker threads (0 = one per hardware thread).
 *  --backend B     fast | rtl | rtltape | rtlinterp | rtljit.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_common.h"
#include "cluster/pipeline.h"
#include "lang/builder.h"
#include "runtime/session.h"
#include "system/pu_backend.h"

using namespace fleet;

namespace {

/** The simulated fabric clock used to express link bandwidth in GB/s
 * (the paper's F1 designs close timing at 125 MHz). */
constexpr double kClockMhz = 125.0;

struct RunOptions
{
    bool smoke = false;
    std::string jsonPath;
    std::string baselinePath;
    int threads = 0;
    std::string backendName = "fast";
    system::PuBackend backend = system::PuBackend::Fast;
};

struct BenchShape
{
    int slotsPerDevice = 4;
    int channels = 2;
    uint64_t regionBytes = 4096;
    uint64_t jobs = 96;
    uint64_t minBytes = 64;
    uint64_t maxBytes = 512;
    uint64_t pipelineJobs = 48;
};

/** The identity unit from Section 3 (also the pipeline's pass stage). */
lang::Program
identityProgram()
{
    lang::ProgramBuilder b("Identity", 8, 8);
    b.if_(!b.streamFinished(), [&] { b.emit(b.input()); });
    return b.finish();
}

/** Sums all tokens, emits the 32-bit total in the cleanup cycle. */
lang::Program
streamSumProgram()
{
    using lang::Value;
    lang::ProgramBuilder b("StreamSum", 8, 32);
    Value sum = b.reg("sum", 32, 0);
    b.if_(b.streamFinished(), [&] { b.emit(sum); })
        .else_([&] { b.assign(sum, sum + b.input().resize(32)); });
    return b.finish();
}

std::vector<BitBuffer>
makeJobMix(const BenchShape &shape, uint64_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (uint64_t j = 0; j < count; ++j) {
        uint64_t bytes =
            shape.minBytes +
            rng.nextBelow(shape.maxBytes - shape.minBytes + 1);
        BitBuffer s;
        for (uint64_t i = 0; i < bytes; ++i)
            s.appendBits(rng.next(), 8);
        streams.push_back(std::move(s));
    }
    return streams;
}

/** One scale-out point: the job mix through an N-device session. */
struct ScalePoint
{
    int devices = 1;
    uint64_t jobsServed = 0;
    uint64_t simCycles = 0;
    double jobsPerMcycle = 0;
    double simWallS = 0;
    std::vector<uint64_t> perDeviceJobs;
    /** Per-job simulated tuples in job-id order — the determinism
     * fence (host wall fields deliberately absent). */
    std::vector<std::array<uint64_t, 6>> signature;
};

ScalePoint
runScalePoint(const RunOptions &opts, const BenchShape &shape,
              int devices, const std::vector<BitBuffer> &streams)
{
    runtime::SessionConfig config;
    config.system.numChannels = shape.channels;
    config.system.numThreads = opts.threads;
    config.system.backend = opts.backend;
    config.system.inputRegionBytes = shape.regionBytes;
    config.numSlots = shape.slotsPerDevice;
    config.numDevices = devices;

    ScalePoint point;
    point.devices = devices;
    point.perDeviceJobs.assign(static_cast<size_t>(devices), 0);

    auto start = std::chrono::steady_clock::now();
    runtime::Session session(identityProgram(), config);
    for (const auto &stream : streams)
        session.submit(stream);
    session.finish();
    point.simWallS = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    for (const auto &report : session.reports()) {
        if (!report.ok() || report.device < 0)
            continue;
        ++point.jobsServed;
        ++point.perDeviceJobs[report.device];
        point.signature.push_back(
            {static_cast<uint64_t>(report.device),
             static_cast<uint64_t>(report.pu),
             static_cast<uint64_t>(report.channel), report.armCycle,
             report.retireCycle, report.completedCycle});
    }
    point.simCycles = session.cycles();
    point.jobsPerMcycle =
        point.simCycles
            ? double(point.jobsServed) * 1e6 / double(point.simCycles)
            : 0;
    return point;
}

/** One pipeline-latency point: two stages across two devices at a
 * given link bandwidth. */
struct PipelinePoint
{
    uint64_t bytesPerCycle = 0;
    double linkGBps = 0;
    uint64_t jobsServed = 0;
    uint64_t p50 = 0, p99 = 0;
    uint64_t linkBusyCycles = 0;
    uint64_t simCycles = 0;
    double simWallS = 0;
};

uint64_t
percentile(const std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t rank = static_cast<size_t>(q * double(sorted.size()));
    if (rank >= sorted.size())
        rank = sorted.size() - 1;
    return sorted[rank];
}

PipelinePoint
runPipelinePoint(const RunOptions &opts, const BenchShape &shape,
                 uint64_t bytes_per_cycle,
                 const std::vector<BitBuffer> &streams)
{
    cluster::PipelineConfig config;
    config.system.numChannels = 1;
    config.system.numThreads = opts.threads;
    config.system.backend = opts.backend;
    config.system.inputRegionBytes = shape.regionBytes;
    config.link.latencyCycles = 200;
    config.link.bytesPerCycle = bytes_per_cycle;
    config.link.windowBytes = 4096;
    config.chunkBytes = 256;
    config.stageQueueDepth = 2;
    std::vector<cluster::StageSpec> stages;
    stages.push_back({identityProgram(), 0, 2});
    stages.push_back({streamSumProgram(), 1, 2});

    PipelinePoint point;
    point.bytesPerCycle = bytes_per_cycle;
    point.linkGBps = config.link.gbps(kClockMhz);

    auto start = std::chrono::steady_clock::now();
    cluster::Pipeline pipeline(stages, config);
    for (const auto &stream : streams)
        pipeline.submit(stream);
    pipeline.run();
    point.simWallS = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    std::vector<uint64_t> totals;
    for (const auto &report : pipeline.reports()) {
        if (!report.ok())
            continue;
        ++point.jobsServed;
        totals.push_back(report.totalCycles());
    }
    std::sort(totals.begin(), totals.end());
    point.p50 = percentile(totals, 0.50);
    point.p99 = percentile(totals, 0.99);
    point.linkBusyCycles =
        pipeline.cluster().link(0, 1).counters().busyCycles;
    point.simCycles = pipeline.cycles();
    return point;
}

bool
writeJson(const std::string &path, const RunOptions &opts,
          const BenchShape &shape,
          const std::vector<ScalePoint> &scale,
          const std::vector<PipelinePoint> &pipe)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    int max_devices = 1;
    for (const auto &p : scale)
        max_devices = std::max(max_devices, p.devices);
    std::fprintf(f, "{\n");
    bench::writeRunMetadata(f, "cluster_scaling",
                            opts.backendName.c_str(), opts.threads,
                            max_devices, 200,
                            cluster::LinkParams{}.gbps(kClockMhz));
    std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
    std::fprintf(f, "  \"slots_per_device\": %d,\n",
                 shape.slotsPerDevice);
    std::fprintf(f, "  \"channels\": %d,\n", shape.channels);
    std::fprintf(f, "  \"jobs\": %llu,\n",
                 static_cast<unsigned long long>(shape.jobs));
    std::fprintf(f, "  \"scale_points\": [\n");
    for (size_t i = 0; i < scale.size(); ++i) {
        const ScalePoint &p = scale[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"devices\": %d,\n", p.devices);
        std::fprintf(f, "      \"jobs_served\": %llu,\n",
                     static_cast<unsigned long long>(p.jobsServed));
        std::fprintf(f, "      \"sim_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.simCycles));
        std::fprintf(f, "      \"jobs_per_mcycle\": %.6f,\n",
                     p.jobsPerMcycle);
        std::fprintf(f, "      \"sim_wall_s\": %.6f\n", p.simWallS);
        std::fprintf(f, "    }%s\n", i + 1 < scale.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"pipeline_points\": [\n");
    for (size_t i = 0; i < pipe.size(); ++i) {
        const PipelinePoint &p = pipe[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"bytes_per_cycle\": %llu,\n",
                     static_cast<unsigned long long>(p.bytesPerCycle));
        std::fprintf(f, "      \"link_gbps\": %.3f,\n", p.linkGBps);
        std::fprintf(f, "      \"jobs_served\": %llu,\n",
                     static_cast<unsigned long long>(p.jobsServed));
        std::fprintf(f, "      \"p50_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.p50));
        std::fprintf(f, "      \"p99_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.p99));
        std::fprintf(f, "      \"link_busy_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.linkBusyCycles));
        std::fprintf(f, "      \"sim_wall_s\": %.6f\n", p.simWallS);
        std::fprintf(f, "    }%s\n", i + 1 < pipe.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

/** Exact jobs/Mcycle comparison against a previously written JSON (the
 * simulated schedule is deterministic, so any drift is real). */
bool
checkBaseline(const std::string &path,
              const std::vector<ScalePoint> &scale)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return false;
    }
    std::vector<std::pair<std::string, std::string>> baseline;
    std::string line, current_devices;
    while (std::getline(in, line)) {
        auto grab = [&line](const char *key) -> std::string {
            auto pos = line.find(key);
            if (pos == std::string::npos)
                return "";
            pos = line.find(':', pos);
            if (pos == std::string::npos)
                return "";
            std::string value = line.substr(pos + 1);
            const char *junk = " \t\",";
            auto b = value.find_first_not_of(junk);
            auto e = value.find_last_not_of(junk);
            return b == std::string::npos
                       ? std::string()
                       : value.substr(b, e - b + 1);
        };
        if (auto d = grab("\"devices\""); !d.empty())
            current_devices = d;
        if (auto v = grab("\"jobs_per_mcycle\""); !v.empty()) {
            if (!current_devices.empty())
                baseline.emplace_back(current_devices, v);
            current_devices.clear();
        }
    }
    bool ok = true;
    for (const auto &p : scale) {
        char devices[16], now[32];
        std::snprintf(devices, sizeof(devices), "%d", p.devices);
        std::snprintf(now, sizeof(now), "%.6f", p.jobsPerMcycle);
        auto it = std::find_if(baseline.begin(), baseline.end(),
                               [&devices](const auto &b) {
                                   return b.first == devices;
                               });
        if (it == baseline.end()) {
            std::fprintf(stderr,
                         "baseline: %d-device point missing from %s\n",
                         p.devices, path.c_str());
            ok = false;
        } else if (it->second != now) {
            std::fprintf(stderr,
                         "baseline: %d-device jobs/Mcycle changed: "
                         "%s -> %s\n",
                         p.devices, it->second.c_str(), now);
            ok = false;
        }
    }
    if (ok)
        std::printf("baseline: jobs/Mcycle unchanged for all %zu scale "
                    "points (vs %s)\n",
                    scale.size(), path.c_str());
    return ok;
}

/** Replay the 2-device point across thread counts and a cycle-accurate
 * backend; the per-job tuples must be bit-identical. */
bool
crosscheckDeterminism(const RunOptions &opts, const BenchShape &shape,
                      const std::vector<BitBuffer> &streams,
                      const ScalePoint &reference)
{
    struct Variant
    {
        const char *what;
        system::PuBackend backend;
        int threads;
    };
    const Variant variants[] = {
        {"1 host thread", opts.backend, 1},
        {"2 host threads", opts.backend, 2},
        {"rtlinterp backend", system::PuBackend::RtlInterp,
         opts.threads},
    };
    bool ok = true;
    for (const auto &variant : variants) {
        RunOptions vopts = opts;
        vopts.backend = variant.backend;
        vopts.threads = variant.threads;
        ScalePoint replay = runScalePoint(vopts, shape, 2, streams);
        if (replay.signature != reference.signature) {
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: 2-device/%s: per-job "
                         "tuples diverged from the reference run\n",
                         variant.what);
            ok = false;
        } else {
            std::printf("determinism: 2-device/%s: %zu per-job tuples "
                        "bit-identical\n",
                        variant.what, replay.signature.size());
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            opts.baselinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--backend") == 0 &&
                   i + 1 < argc) {
            auto parsed = system::parsePuBackend(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr, "unknown backend %s (choices: %s)\n",
                             argv[i], system::kPuBackendChoices);
                return 2;
            }
            opts.backend = *parsed;
            opts.backendName = system::puBackendName(*parsed);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH] "
                         "[--baseline PATH] [--threads N] "
                         "[--backend %s]\n",
                         argv[0], system::kPuBackendChoices);
            return 2;
        }
    }

    BenchShape shape;
    if (opts.smoke)
        shape = {4, 2, 4096, 48, 64, 384, 16};

    bench::printHeader(
        "Cluster scale-out and pipeline latency",
        "Part A: identical job mix through 1/2/4-device sessions "
        "(jobs per simulated megacycle must scale).\n"
        "Part B: two-stage cross-device pipeline latency vs link "
        "bandwidth.");
    std::printf("backend=%s slots/device=%d channels=%d jobs=%llu\n\n",
                opts.backendName.c_str(), shape.slotsPerDevice,
                shape.channels,
                static_cast<unsigned long long>(shape.jobs));

    const auto streams = makeJobMix(shape, shape.jobs, 0xc1a57e);
    std::vector<ScalePoint> scale;
    for (int devices : {1, 2, 4})
        scale.push_back(runScalePoint(opts, shape, devices, streams));

    Table scale_table({"Devices", "Jobs", "Sim cyc", "Jobs/Mcyc",
                       "Speedup", "Balance", "Wall s"});
    for (const auto &p : scale) {
        double speedup = scale[0].jobsPerMcycle
                             ? p.jobsPerMcycle / scale[0].jobsPerMcycle
                             : 0;
        uint64_t min_jobs = ~0ULL, max_jobs = 0;
        for (uint64_t d : p.perDeviceJobs) {
            min_jobs = std::min(min_jobs, d);
            max_jobs = std::max(max_jobs, d);
        }
        char balance[32];
        std::snprintf(balance, sizeof(balance), "%llu..%llu",
                      static_cast<unsigned long long>(min_jobs),
                      static_cast<unsigned long long>(max_jobs));
        scale_table.row()
            .cell(p.devices)
            .cell(p.jobsServed)
            .cell(p.simCycles)
            .cell(p.jobsPerMcycle, 3)
            .cell(speedup, 2)
            .cell(balance)
            .cell(p.simWallS, 3);
    }
    std::printf("%s\n", scale_table.str().c_str());

    const auto pipe_streams =
        makeJobMix(shape, shape.pipelineJobs, 0x9e77);
    std::vector<PipelinePoint> pipe;
    for (uint64_t bpc : {2ULL, 8ULL, 64ULL})
        pipe.push_back(runPipelinePoint(opts, shape, bpc, pipe_streams));

    Table pipe_table({"B/cyc", "GB/s", "Jobs", "p50 cyc", "p99 cyc",
                      "Link busy", "Wall s"});
    for (const auto &p : pipe)
        pipe_table.row()
            .cell(p.bytesPerCycle)
            .cell(p.linkGBps, 2)
            .cell(p.jobsServed)
            .cell(p.p50)
            .cell(p.p99)
            .cell(p.linkBusyCycles)
            .cell(p.simWallS, 3);
    std::printf("%s\n", pipe_table.str().c_str());

    bool ok = true;
    for (const auto &p : scale) {
        if (p.jobsServed != shape.jobs) {
            std::fprintf(
                stderr, "GATE: %d devices served %llu of %llu jobs\n",
                p.devices,
                static_cast<unsigned long long>(p.jobsServed),
                static_cast<unsigned long long>(shape.jobs));
            ok = false;
        }
    }
    for (const auto &p : pipe) {
        if (p.jobsServed != shape.pipelineJobs) {
            std::fprintf(
                stderr,
                "GATE: pipeline at %llu B/cyc served %llu of %llu "
                "jobs\n",
                static_cast<unsigned long long>(p.bytesPerCycle),
                static_cast<unsigned long long>(p.jobsServed),
                static_cast<unsigned long long>(shape.pipelineJobs));
            ok = false;
        }
    }
    if (scale.size() >= 2 && scale[0].jobsPerMcycle > 0) {
        double speedup = scale[1].jobsPerMcycle / scale[0].jobsPerMcycle;
        if (speedup < 1.6) {
            std::fprintf(stderr,
                         "GATE: 2-device speedup %.2fx below the 1.6x "
                         "scaling floor\n",
                         speedup);
            ok = false;
        } else {
            std::printf("gate: 2-device speedup %.2fx >= 1.6x floor\n",
                        speedup);
        }
    }
    if (pipe.size() >= 2 && pipe.front().p99 <= pipe.back().p99) {
        std::fprintf(stderr,
                     "GATE: narrowest link p99 %llu does not exceed the "
                     "widest link's %llu — the link model cost "
                     "nothing\n",
                     static_cast<unsigned long long>(pipe.front().p99),
                     static_cast<unsigned long long>(pipe.back().p99));
        ok = false;
    }

    if (opts.smoke &&
        !crosscheckDeterminism(opts, shape, streams, scale[1]))
        ok = false;
    if (!opts.jsonPath.empty() &&
        !writeJson(opts.jsonPath, opts, shape, scale, pipe))
        ok = false;
    if (!opts.baselinePath.empty() &&
        !checkBaseline(opts.baselinePath, scale))
        ok = false;
    return ok ? 0 : 1;
}
