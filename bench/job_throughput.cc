/**
 * @file
 * Job-runtime throughput (ISSUE 5): how well the incremental Session
 * keeps a fixed PU pool fed as the queue deepens. One-shot run() arms
 * each unit exactly once, so the pool drains as streams finish; the
 * Session re-arms a slot the moment its stream drains, so with a deep
 * enough queue the tail shrinks to one job's length and bytes/cycle
 * approaches the controller's steady-state feed rate.
 *
 * For each queue depth D the harness submits D jobs per slot
 * (heterogeneous lengths), serves them to completion, and reports:
 *
 *  - jobs/s      host-side serving rate (wall clock, simulation speed);
 *  - bytes/cycle simulated feed efficiency — the number that should
 *                rise with depth as re-arm amortizes the drain tail;
 *  - slot util   mean fraction of session cycles a slot held a job.
 *
 * A one-shot run() over the same streams at depth 1 anchors the
 * comparison: the session at depth 1 must be within noise of it.
 *
 * Flags:
 *  --smoke        short CI configuration (fewer slots, smaller jobs).
 *  --json PATH    write the per-depth results as JSON.
 *  --threads N    host worker threads (0 = one per hardware thread).
 */

#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "runtime/session.h"

using namespace fleet;

namespace {

struct RunOptions
{
    bool smoke = false;
    std::string jsonPath;
    int threads = 0;
};

struct DepthResult
{
    int depth = 0;
    uint64_t jobs = 0;
    uint64_t inputBytes = 0;
    uint64_t cycles = 0;
    double jobsPerSec = 0;
    double bytesPerCycle = 0;
    double slotUtilization = 0;
    double simWallS = 0;
};

/** Heterogeneous job streams: lengths spread ~4x around `bytes_mean`. */
std::vector<BitBuffer>
jobStreams(const apps::Application &app, uint64_t count,
           uint64_t bytes_mean, uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (uint64_t j = 0; j < count; ++j) {
        uint64_t bytes =
            bytes_mean / 2 + rng.nextBelow(bytes_mean + bytes_mean / 2);
        streams.push_back(app.generateStream(rng, bytes));
    }
    return streams;
}

DepthResult
serveDepth(const apps::Application &app, const RunOptions &opts,
           int num_slots, int num_channels, uint64_t region_bytes,
           int depth)
{
    runtime::SessionConfig config;
    config.system.numChannels = num_channels;
    config.system.numThreads = opts.threads;
    config.system.inputRegionBytes = region_bytes;
    config.numSlots = num_slots;
    auto streams = jobStreams(app, uint64_t(depth) * num_slots,
                              region_bytes / 4, 0xD00 + depth);

    DepthResult result;
    result.depth = depth;
    result.jobs = streams.size();
    for (const auto &stream : streams)
        result.inputBytes += (stream.sizeBits() + 7) / 8;

    auto start = std::chrono::steady_clock::now();
    runtime::Session session(app.program(), config);
    for (auto &stream : streams)
        session.submit(std::move(stream));
    const system::RunReport &report = session.finish();
    result.simWallS = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

    if (!report.allOk())
        std::fprintf(stderr, "warning: %s depth %d: %s\n",
                     app.name().c_str(), depth, report.summary().c_str());
    result.cycles = session.cycles();
    result.jobsPerSec =
        result.simWallS > 0 ? double(result.jobs) / result.simWallS : 0;
    result.bytesPerCycle =
        result.cycles > 0 ? double(result.inputBytes) / result.cycles : 0;
    uint64_t busy_cycles = 0;
    for (const auto &job : session.reports())
        busy_cycles += job.retireCycle - job.armCycle;
    result.slotUtilization =
        result.cycles > 0
            ? double(busy_cycles) / (double(result.cycles) * num_slots)
            : 0;
    return result;
}

/** The anchor: the same depth-1 streams through legacy one-shot run(). */
DepthResult
serveOneShot(const apps::Application &app, const RunOptions &opts,
             int num_slots, int num_channels, uint64_t region_bytes)
{
    system::SystemConfig config;
    config.numChannels = num_channels;
    config.numThreads = opts.threads;
    auto streams = jobStreams(app, uint64_t(num_slots), region_bytes / 4,
                              0xD00 + 1);

    DepthResult result;
    result.depth = 1;
    result.jobs = streams.size();
    for (const auto &stream : streams)
        result.inputBytes += (stream.sizeBits() + 7) / 8;

    auto run = bench::runFleet(app.program(), streams, config);
    result.simWallS = run.simWallSeconds;
    result.cycles = run.cycles;
    result.jobsPerSec =
        result.simWallS > 0 ? double(result.jobs) / result.simWallS : 0;
    result.bytesPerCycle =
        result.cycles > 0 ? double(result.inputBytes) / result.cycles : 0;
    result.slotUtilization = 0; // run() has no arm/retire cycle spans.
    return result;
}

bool
writeJson(const std::string &path, const std::string &app,
          const DepthResult &oneshot,
          const std::vector<DepthResult> &results, const RunOptions &opts)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    auto row = [&](const DepthResult &r, const char *mode, bool last) {
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"mode\": \"%s\",\n", mode);
        std::fprintf(f, "      \"queue_depth\": %d,\n", r.depth);
        std::fprintf(f, "      \"jobs\": %llu,\n",
                     static_cast<unsigned long long>(r.jobs));
        std::fprintf(f, "      \"input_bytes\": %llu,\n",
                     static_cast<unsigned long long>(r.inputBytes));
        std::fprintf(f, "      \"cycles\": %llu,\n",
                     static_cast<unsigned long long>(r.cycles));
        std::fprintf(f, "      \"jobs_per_sec\": %.3f,\n", r.jobsPerSec);
        std::fprintf(f, "      \"bytes_per_cycle\": %.6f,\n",
                     r.bytesPerCycle);
        std::fprintf(f, "      \"slot_utilization\": %.4f,\n",
                     r.slotUtilization);
        std::fprintf(f, "      \"sim_wall_s\": %.6f\n", r.simWallS);
        std::fprintf(f, "    }%s\n", last ? "" : ",");
    };
    std::fprintf(f, "{\n");
    bench::writeRunMetadata(f, "job_throughput", "fast", opts.threads);
    std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
    std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
    std::fprintf(f, "  \"rows\": [\n");
    row(oneshot, "one-shot", false);
    for (size_t i = 0; i < results.size(); ++i)
        row(results[i], "session", i + 1 == results.size());
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH] "
                         "[--threads N]\n",
                         argv[0]);
            return 2;
        }
    }

    const int num_slots = opts.smoke ? 8 : 16;
    const int num_channels = opts.smoke ? 2 : 4;
    const uint64_t region_bytes = opts.smoke ? 4096 : 16384;
    const std::vector<int> depths =
        opts.smoke ? std::vector<int>{1, 4, 8}
                   : std::vector<int>{1, 2, 4, 8, 16};

    // One stream-shaped app is enough for the throughput curve; the
    // determinism suite already proves every app behaves identically
    // through the runtime.
    auto apps = apps::allApplications();
    const apps::Application &app = *apps.front();

    bench::printHeader(
        "Job runtime throughput vs queue depth",
        "Session re-arms each slot as its stream drains; depth D "
        "queues D jobs per slot.");
    std::printf("app=%s slots=%d channels=%d region=%llu bytes\n\n",
                app.name().c_str(), num_slots, num_channels,
                static_cast<unsigned long long>(region_bytes));

    DepthResult oneshot =
        serveOneShot(app, opts, num_slots, num_channels, region_bytes);
    std::vector<DepthResult> results;
    for (int depth : depths)
        results.push_back(serveDepth(app, opts, num_slots, num_channels,
                                     region_bytes, depth));

    Table table({"Mode", "Depth", "Jobs", "Jobs/s", "Bytes/cycle",
                 "Slot util", "Cycles", "Sim wall s"});
    auto add = [&](const DepthResult &r, const char *mode) {
        table.row()
            .cell(mode)
            .cell(r.depth)
            .cell(r.jobs)
            .cell(r.jobsPerSec, 1)
            .cell(r.bytesPerCycle, 4)
            .cell(r.slotUtilization, 3)
            .cell(r.cycles)
            .cell(r.simWallS, 3);
    };
    add(oneshot, "one-shot");
    for (const auto &r : results)
        add(r, "session");
    std::printf("%s\n", table.str().c_str());

    if (!opts.jsonPath.empty() &&
        !writeJson(opts.jsonPath, app.name(), oneshot, results, opts))
        return 1;
    return 0;
}
