/**
 * @file
 * Tail-latency isolation across tenants (ISSUE 8). A flood tenant dumps
 * a deep backlog at cycle 0 while a victim tenant submits a light,
 * paced trickle of small jobs — the canonical noisy-neighbour shape.
 * The harness replays the *identical* admitted sequence under each
 * scheduling policy (FIFO, strict priority, SJF, WFQ) plus a victim-
 * only isolated baseline, and reports the victim's p50/p95/p99
 * end-to-end latency in simulated cycles.
 *
 * Headline: weighted fair queuing holds the victim's p99 within a
 * small factor of the isolated baseline while FIFO — which makes the
 * victim wait out the entire flood backlog — blows it up by orders of
 * magnitude. Both ends are gated:
 *
 *  - GATE: WFQ victim p99 <= 3x the isolated baseline p99.
 *  - GATE: FIFO victim p99 > WFQ victim p99 (the flood must actually
 *    hurt under FIFO, or the scenario is too easy to mean anything).
 *
 * Determinism: every policy is a pure function of simulated state, so
 * in --smoke mode the FIFO and WFQ points are replayed across host
 * thread counts and the RTL-batch backend and fenced bit-for-bit on
 * per-job (enqueue, admitted, completed, arm, retire, tenant) tuples.
 *
 * Flags:
 *  --smoke         short CI configuration + determinism crosscheck.
 *  --json PATH     write per-policy results as JSON (BENCH_TENANT.json).
 *  --baseline PATH compare victim p99 per policy against a previous
 *                  JSON; exact match required, nonzero exit on drift.
 *  --threads N     host worker threads (0 = one per hardware thread).
 *  --backend B     fast | rtl | rtltape | rtlinterp | rtljit
 *                  (system/pu_backend.h; rtl* are cycle-accurate).
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_common.h"
#include "serve/load_gen.h"
#include "serve/service.h"
#include "system/pu_backend.h"

using namespace fleet;

namespace {

struct RunOptions
{
    bool smoke = false;
    std::string jsonPath;
    std::string baselinePath;
    int threads = 0;
    std::string backendName = "fast";
    system::PuBackend backend = system::PuBackend::Fast;
};

struct BenchShape
{
    int slots = 8;
    int channels = 2;
    uint64_t regionBytes = 4096;
    uint64_t victimJobs = 24;
    uint64_t floodJobs = 120;
    uint64_t victimBytes = 96;
    uint64_t floodBytes = 768;
    uint64_t victimInterarrival = 1500;
};

struct PolicyResult
{
    std::string label;
    bool isolated = false;
    uint64_t victimServed = 0;
    uint64_t floodServed = 0;
    uint64_t victimP50 = 0, victimP95 = 0, victimP99 = 0;
    double victimMeanWait = 0;
    uint64_t floodP99 = 0;
    uint64_t simCycles = 0;
    double simWallS = 0;
    /** Per-job simulated tuples in job-id order — the determinism
     * fence (host wall fields deliberately absent). */
    std::vector<std::array<uint64_t, 6>> signature;
};

uint64_t
percentile(const std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t rank = static_cast<size_t>(q * double(sorted.size()));
    if (rank >= sorted.size())
        rank = sorted.size() - 1;
    return sorted[rank];
}

serve::ServiceConfig
serviceConfig(const RunOptions &opts, const BenchShape &shape,
              runtime::SchedulerPolicy policy)
{
    serve::ServiceConfig config;
    config.session.system.numChannels = shape.channels;
    config.session.system.numThreads = opts.threads;
    config.session.system.inputRegionBytes = shape.regionBytes;
    config.session.system.backend = opts.backend;
    config.session.numSlots = shape.slots;
    // Small epochs: latency percentiles are quantized to the round
    // length, so finer rounds resolve the victim's tail.
    config.session.epochCycles = 256;
    config.session.scheduler.policy = policy;
    // Victim (tenant 1) outweighs the flood 4:1 under WFQ.
    config.session.scheduler.weights = {{0, 1}, {1, 4}};
    config.maxQueueDepth = 1u << 20; // nothing is turned away
    config.policy = serve::AdmissionPolicy::Reject;
    config.backgroundThread = false; // paced: deterministic pacing
    return config;
}

/** One policy point: the flood backlog lands at cycle 0, the victim
 * trickle is released on its seeded schedule; with `isolated` the
 * flood is withheld (the baseline the gates compare against). */
PolicyResult
runPolicy(const apps::Application &app, const RunOptions &opts,
          const BenchShape &shape, const char *label,
          runtime::SchedulerPolicy policy, bool isolated)
{
    PolicyResult result;
    result.label = label;
    result.isolated = isolated;

    // Identical streams and arrival schedules for every policy.
    Rng flood_rng(0xF100D);
    std::vector<BitBuffer> flood_streams;
    for (uint64_t j = 0; j < shape.floodJobs; ++j)
        flood_streams.push_back(
            app.generateStream(flood_rng, shape.floodBytes));
    serve::LoadSpec victim_spec;
    victim_spec.jobs = shape.victimJobs;
    victim_spec.meanInterarrivalCycles =
        double(shape.victimInterarrival);
    victim_spec.minJobBytes = shape.victimBytes;
    victim_spec.maxJobBytes = shape.victimBytes;
    victim_spec.seed = 0x71c7;
    auto victim_arrivals = serve::makeArrivals(victim_spec);
    Rng victim_rng(0x71c7 ^ 0x5eed);
    std::vector<BitBuffer> victim_streams;
    for (const auto &arrival : victim_arrivals)
        victim_streams.push_back(
            app.generateStream(victim_rng, arrival.streamBytes));

    serve::FleetService service(app.program(),
                                serviceConfig(opts, shape, policy));
    std::vector<serve::JobTicket> flood_tickets, victim_tickets;

    serve::SubmitOptions flood_opts;
    flood_opts.tag.tenant = 0;
    flood_opts.tag.priority = 1; // audit class: yields under Priority
    serve::SubmitOptions victim_opts;
    victim_opts.tag.tenant = 1;
    victim_opts.tag.priority = 0; // latency-critical class

    auto start = std::chrono::steady_clock::now();
    if (!isolated)
        for (auto &stream : flood_streams)
            flood_tickets.push_back(
                service.submitAt(std::move(stream), 0, flood_opts));

    size_t next = 0;
    uint64_t offset = 0;
    for (;;) {
        uint64_t now = service.stats().simCycles;
        while (next < victim_arrivals.size() &&
               victim_arrivals[next].cycle <= now + offset) {
            victim_tickets.push_back(service.submitAt(
                std::move(victim_streams[next]),
                victim_arrivals[next].cycle - offset, victim_opts));
            ++next;
        }
        bool work = service.pump();
        if (!work) {
            if (next >= victim_arrivals.size())
                break;
            // Idle warp to the next victim arrival (the isolated
            // baseline has real gaps; the flooded runs rarely idle).
            uint64_t vnow = now + offset;
            if (victim_arrivals[next].cycle > vnow)
                offset += victim_arrivals[next].cycle - vnow;
        }
    }
    service.shutdown();
    result.simWallS = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

    std::vector<uint64_t> victim_totals, flood_totals;
    uint64_t victim_wait = 0;
    for (const auto &ticket : victim_tickets) {
        const runtime::JobReport &report = ticket.report();
        if (!report.ok())
            continue;
        ++result.victimServed;
        victim_totals.push_back(report.totalCycles());
        victim_wait += report.queueWaitCycles();
    }
    for (const auto &ticket : flood_tickets) {
        const runtime::JobReport &report = ticket.report();
        if (!report.ok())
            continue;
        ++result.floodServed;
        flood_totals.push_back(report.totalCycles());
    }
    std::sort(victim_totals.begin(), victim_totals.end());
    std::sort(flood_totals.begin(), flood_totals.end());
    result.victimP50 = percentile(victim_totals, 0.50);
    result.victimP95 = percentile(victim_totals, 0.95);
    result.victimP99 = percentile(victim_totals, 0.99);
    result.victimMeanWait =
        result.victimServed
            ? double(victim_wait) / double(result.victimServed)
            : 0;
    result.floodP99 = percentile(flood_totals, 0.99);
    result.simCycles = service.stats().simCycles;
    for (const auto &report : service.session().reports())
        result.signature.push_back(
            {report.enqueueCycle, report.admittedCycle,
             report.completedCycle, report.armCycle,
             report.retireCycle, report.tenant});
    return result;
}

bool
writeJson(const std::string &path, const std::string &app,
          const RunOptions &opts, const BenchShape &shape,
          const std::vector<PolicyResult> &points)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n");
    bench::writeRunMetadata(f, "tenant_isolation",
                            opts.backendName.c_str(), opts.threads);
    std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
    std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
    std::fprintf(f, "  \"slots\": %d,\n", shape.slots);
    std::fprintf(f, "  \"channels\": %d,\n", shape.channels);
    std::fprintf(f, "  \"victim_jobs\": %llu,\n",
                 static_cast<unsigned long long>(shape.victimJobs));
    std::fprintf(f, "  \"flood_jobs\": %llu,\n",
                 static_cast<unsigned long long>(shape.floodJobs));
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const PolicyResult &p = points[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"label\": \"%s\",\n", p.label.c_str());
        std::fprintf(f, "      \"isolated\": %s,\n",
                     p.isolated ? "true" : "false");
        std::fprintf(f, "      \"victim_served\": %llu,\n",
                     static_cast<unsigned long long>(p.victimServed));
        std::fprintf(f, "      \"flood_served\": %llu,\n",
                     static_cast<unsigned long long>(p.floodServed));
        std::fprintf(f, "      \"victim_p50_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.victimP50));
        std::fprintf(f, "      \"victim_p95_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.victimP95));
        std::fprintf(f, "      \"victim_p99_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.victimP99));
        std::fprintf(f, "      \"victim_mean_wait_cycles\": %.3f,\n",
                     p.victimMeanWait);
        std::fprintf(f, "      \"flood_p99_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.floodP99));
        std::fprintf(f, "      \"sim_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.simCycles));
        std::fprintf(f, "      \"sim_wall_s\": %.6f\n", p.simWallS);
        std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

/** Exact victim-p99 comparison against a previously written JSON (the
 * simulated schedule is deterministic, so any drift is real). */
bool
checkBaseline(const std::string &path,
              const std::vector<PolicyResult> &points)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return false;
    }
    std::vector<std::pair<std::string, std::string>> baseline;
    std::string line, current_label;
    while (std::getline(in, line)) {
        auto grab = [&line](const char *key) -> std::string {
            auto pos = line.find(key);
            if (pos == std::string::npos)
                return "";
            pos = line.find(':', pos);
            if (pos == std::string::npos)
                return "";
            std::string value = line.substr(pos + 1);
            const char *junk = " \t\",";
            auto b = value.find_first_not_of(junk);
            auto e = value.find_last_not_of(junk);
            return b == std::string::npos
                       ? std::string()
                       : value.substr(b, e - b + 1);
        };
        if (auto label = grab("\"label\""); !label.empty())
            current_label = label;
        if (auto p99 = grab("\"victim_p99_cycles\""); !p99.empty()) {
            if (!current_label.empty())
                baseline.emplace_back(current_label, p99);
            current_label.clear();
        }
    }
    bool ok = true;
    for (const auto &p : points) {
        char now[32];
        std::snprintf(now, sizeof(now), "%llu",
                      static_cast<unsigned long long>(p.victimP99));
        auto it = std::find_if(
            baseline.begin(), baseline.end(),
            [&p](const auto &b) { return b.first == p.label; });
        if (it == baseline.end()) {
            std::fprintf(stderr, "baseline: point %s missing from %s\n",
                         p.label.c_str(), path.c_str());
            ok = false;
        } else if (it->second != now) {
            std::fprintf(stderr,
                         "baseline: %s victim p99 changed: %s -> %s "
                         "cycles\n",
                         p.label.c_str(), it->second.c_str(), now);
            ok = false;
        }
    }
    if (ok)
        std::printf("baseline: victim p99 unchanged for all %zu policy "
                    "points (vs %s)\n",
                    points.size(), path.c_str());
    return ok;
}

/** Replay a policy point across thread counts and the other backend;
 * the per-job tuples must be bit-identical. */
bool
crosscheckDeterminism(const apps::Application &app,
                      const RunOptions &opts, const BenchShape &shape,
                      const char *label,
                      runtime::SchedulerPolicy policy,
                      const PolicyResult &reference)
{
    struct Variant
    {
        const char *what;
        std::string backendName;
        system::PuBackend backend;
        int threads;
    };
    std::vector<Variant> variants = {
        {"1 host thread", opts.backendName, opts.backend, 1},
        {"2 host threads", opts.backendName, opts.backend, 2},
    };
    auto cross = opts.backend == system::PuBackend::Fast
                     ? system::PuBackend::Rtl
                     : system::PuBackend::Fast;
    variants.push_back({opts.backend == system::PuBackend::Fast
                            ? "rtl backend"
                            : "fast backend",
                        system::puBackendName(cross), cross,
                        opts.threads});

    bool ok = true;
    for (const auto &variant : variants) {
        RunOptions vopts = opts;
        vopts.backendName = variant.backendName;
        vopts.backend = variant.backend;
        vopts.threads = variant.threads;
        PolicyResult replay =
            runPolicy(app, vopts, shape, label, policy, false);
        if (replay.signature != reference.signature) {
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: %s/%s: per-job tuples "
                         "diverged from the reference run\n",
                         label, variant.what);
            ok = false;
        } else {
            std::printf("determinism: %s/%s: %zu per-job tuples "
                        "bit-identical\n",
                        label, variant.what, replay.signature.size());
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            opts.baselinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--backend") == 0 &&
                   i + 1 < argc) {
            auto parsed = system::parsePuBackend(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr, "unknown backend %s (choices: %s)\n",
                             argv[i], system::kPuBackendChoices);
                return 2;
            }
            opts.backend = *parsed;
            opts.backendName = system::puBackendName(*parsed);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH] "
                         "[--baseline PATH] [--threads N] "
                         "[--backend %s]\n",
                         argv[0], system::kPuBackendChoices);
            return 2;
        }
    }

    BenchShape shape;
    if (opts.smoke)
        shape = {6, 2, 4096, 16, 64, 96, 640, 1200};
    else
        shape = {8, 2, 8192, 32, 192, 128, 1024, 1500};

    auto apps = apps::allApplications();
    const apps::Application &app = *apps.front();

    bench::printHeader(
        "Tenant tail-latency isolation (flood vs paced victim)",
        "Identical admitted sequence per scheduling policy; victim "
        "latency vs a victim-only isolated baseline.");
    std::printf("app=%s backend=%s slots=%d channels=%d victim=%llu "
                "flood=%llu\n\n",
                app.name().c_str(), opts.backendName.c_str(),
                shape.slots, shape.channels,
                static_cast<unsigned long long>(shape.victimJobs),
                static_cast<unsigned long long>(shape.floodJobs));

    struct PolicyPoint
    {
        const char *label;
        runtime::SchedulerPolicy policy;
        bool isolated;
    };
    const PolicyPoint sweep[] = {
        {"isolated", runtime::SchedulerPolicy::Fifo, true},
        {"fifo", runtime::SchedulerPolicy::Fifo, false},
        {"priority", runtime::SchedulerPolicy::Priority, false},
        {"sjf", runtime::SchedulerPolicy::Sjf, false},
        {"wfq", runtime::SchedulerPolicy::Wfq, false},
    };
    std::vector<PolicyResult> points;
    for (const PolicyPoint &point : sweep)
        points.push_back(runPolicy(app, opts, shape, point.label,
                                   point.policy, point.isolated));

    const PolicyResult &isolated = points[0];
    Table table({"Policy", "Victim", "Flood", "V p50", "V p95", "V p99",
                 "p99 vs isol", "V wait", "Sim cyc"});
    for (const auto &p : points) {
        double blowup =
            isolated.victimP99
                ? double(p.victimP99) / double(isolated.victimP99)
                : 0;
        table.row()
            .cell(p.label)
            .cell(p.victimServed)
            .cell(p.floodServed)
            .cell(p.victimP50)
            .cell(p.victimP95)
            .cell(p.victimP99)
            .cell(blowup, 2)
            .cell(p.victimMeanWait, 1)
            .cell(p.simCycles);
    }
    std::printf("%s\n", table.str().c_str());

    bool ok = true;
    for (const auto &p : points) {
        if (p.victimServed != shape.victimJobs) {
            std::fprintf(stderr,
                         "GATE: %s: victim served %llu of %llu jobs\n",
                         p.label.c_str(),
                         static_cast<unsigned long long>(p.victimServed),
                         static_cast<unsigned long long>(
                             shape.victimJobs));
            ok = false;
        }
        if (!p.isolated && p.floodServed != shape.floodJobs) {
            std::fprintf(stderr,
                         "GATE: %s: flood served %llu of %llu jobs "
                         "(no-starvation violated)\n",
                         p.label.c_str(),
                         static_cast<unsigned long long>(p.floodServed),
                         static_cast<unsigned long long>(
                             shape.floodJobs));
            ok = false;
        }
    }
    const PolicyResult *fifo = nullptr, *wfq = nullptr;
    for (const auto &p : points) {
        if (p.label == "fifo")
            fifo = &p;
        if (p.label == "wfq")
            wfq = &p;
    }
    if (fifo && wfq && isolated.victimP99 > 0) {
        // The headline gates.
        if (wfq->victimP99 > 3 * isolated.victimP99) {
            std::fprintf(stderr,
                         "GATE: wfq victim p99 %llu exceeds 3x the "
                         "isolated baseline %llu\n",
                         static_cast<unsigned long long>(wfq->victimP99),
                         static_cast<unsigned long long>(
                             isolated.victimP99));
            ok = false;
        }
        if (fifo->victimP99 <= wfq->victimP99) {
            std::fprintf(stderr,
                         "GATE: fifo victim p99 %llu does not exceed "
                         "wfq's %llu — the flood never hurt\n",
                         static_cast<unsigned long long>(
                             fifo->victimP99),
                         static_cast<unsigned long long>(
                             wfq->victimP99));
            ok = false;
        }
    }

    if (opts.smoke && fifo && wfq) {
        if (!crosscheckDeterminism(app, opts, shape, "fifo",
                                   runtime::SchedulerPolicy::Fifo,
                                   *fifo))
            ok = false;
        if (!crosscheckDeterminism(app, opts, shape, "wfq",
                                   runtime::SchedulerPolicy::Wfq, *wfq))
            ok = false;
    }

    if (!opts.jsonPath.empty() &&
        !writeJson(opts.jsonPath, app.name(), opts, shape, points))
        ok = false;
    if (!opts.baselinePath.empty() &&
        !checkBaseline(opts.baselinePath, points))
        ok = false;
    return ok ? 0 : 1;
}
