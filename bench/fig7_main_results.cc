/**
 * @file
 * Regenerates Figure 7 of the paper: for each of the six applications,
 * Fleet's processing-unit count, throughput and performance-per-watt on
 * the modelled F1 platform, against the measured CPU baseline and the
 * modelled GPU (SIMT divergence) baseline. The paper's reported values
 * print alongside for shape comparison.
 *
 * Methodology notes (see DESIGN.md and EXPERIMENTS.md):
 *  - Fleet GB/s comes from cycle-accurate simulation of one memory
 *    channel populated with its share of the fitted PUs (capped for
 *    simulation time), scaled by the channel count; #PUs comes from the
 *    area model.
 *  - CPU GB/s is measured on this host and extrapolated linearly from
 *    the measured threads to the paper's 36 hyperthreads (streams are
 *    independent, so throughput scales with cores).
 *  - GPU GB/s comes from the V100-calibrated warp-divergence model.
 *  - Perf/W uses the power models of src/model/power.h (the paper itself
 *    models DRAM power as a constant 12.5 W).
 *
 * Modes:
 *  --smoke        short CI configuration: a 4-channel cycle-accurate run
 *                 per app (small streams, few PUs, no CPU/GPU baselines),
 *                 once single-threaded and once on the worker pool, so
 *                 the artifact tracks simulation wall-clock and speedup.
 *  --json PATH    write the per-app results as JSON (BENCH_PR.json).
 *  --threads N    worker threads for the parallel runs (0 = auto).
 *  --faults SEED  smoke only: re-run every app under the mixed fault
 *                 plan FaultPlan::fromSeed(SEED), print each app's
 *                 RunReport summary, and assert the serial and
 *                 worker-pool runs produce identical reports.
 *  --baseline P   smoke only: after the fault-free run, compare each
 *                 app's bytes/cycle against a previously written
 *                 BENCH_PR.json and fail if any value changed.
 *  --counters     smoke only: run with counter collection (ISSUE 3),
 *                 print each app's per-component digest, and embed the
 *                 counters in the --json output.
 *  --trace PREFIX smoke only: also record span events and write one
 *                 Chrome trace_event JSON per app (PREFIX_<app>.json,
 *                 openable in Perfetto). Implies counter collection.
 *  --backend B    PU backend: fast (default), rtl (batched tape engine),
 *                 rtltape (scalar tape per PU), rtlinterp (per-node
 *                 interpreter), rtljit (native-compiled tape, ISSUE 9).
 *                 All are bit-identical, so every reported number except
 *                 wall-clock must match across backends — combine with
 *                 --baseline to prove it in CI.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "apps/intcode.h"
#include "baseline/cpu.h"
#include "baseline/simt.h"
#include "baseline/timing.h"
#include "bench_common.h"
#include "compile/compiler.h"
#include "fault/fault.h"
#include "model/area.h"
#include "model/power.h"
#include "system/pu_backend.h"

using namespace fleet;

namespace {

struct RunOptions
{
    bool smoke = false;
    std::string jsonPath;
    int threads = 0; ///< 0 = one per hardware thread.
    bool faults = false;
    uint64_t faultSeed = 0;
    std::string baselinePath;
    bool counters = false;
    std::string tracePrefix;
    /** PU backend for the cycle-accurate runs. The fast model and every
     * RTL engine are bit-identical (compile_crosscheck_test), so
     * switching backends must not change any reported number — only the
     * simulation wall-clock. `rtl` is the batched tape engine, which
     * makes full-PU-count RTL runs practical. */
    system::PuBackend backend = system::PuBackend::Fast;
    std::string backendName = "fast";
};

struct AppResult
{
    std::string name;
    int pus = 0;
    double fleetGBps = 0;
    double fleetPerfW = 0;
    double cpuGBps = 0;
    double cpuPerfW = 0;
    double gpuGBps = 0;
    double gpuPerfW = 0;
    // Simulation-engine telemetry (BENCH_PR.json trajectory).
    double bytesPerCycle = 0;
    uint64_t cycles = 0;
    double simWallS = 0;       ///< Wall-clock with the worker pool.
    double simWallSerialS = 0; ///< Wall-clock with numThreads = 1.
    int threadsUsed = 1;
    std::vector<system::ChannelStats> channels;
    // Fault-mode telemetry (--faults).
    int faultFailedPus = 0;
    int faultTruncatedPus = 0;
    std::string faultSummary;
    // Observability (--counters / --trace).
    std::shared_ptr<const trace::TraceReport> trace;
};

/** Short CI configuration: 4 channels, small streams, engine only. */
AppResult
evaluateAppSmoke(const apps::Application &app, const RunOptions &opts)
{
    AppResult result;
    result.name = app.name();
    const int channels = 4;
    const int pus_per_channel = 4;
    const uint64_t stream_bytes = 4096;

    auto streams = bench::makeStreams(app, channels * pus_per_channel,
                                      stream_bytes, 1015);
    result.pus = static_cast<int>(streams.size());

    system::SystemConfig config;
    config.numChannels = channels;
    config.backend = opts.backend;
    if (opts.faults)
        config.faults = fault::FaultPlan::fromSeed(opts.faultSeed);
    // Observability is purely observational: enabling it changes no
    // cycle count or output (the --baseline flow proves it each run).
    config.trace.counters = opts.counters || !opts.tracePrefix.empty();
    config.trace.events = !opts.tracePrefix.empty();

    config.numThreads = 1;
    auto serial = bench::runFleet(app.program(), streams, config);
    result.simWallSerialS = serial.simWallSeconds;

    config.numThreads = opts.threads;
    auto parallel = bench::runFleet(app.program(), streams, config);
    result.fleetGBps = parallel.gbps;
    result.bytesPerCycle = parallel.bytesPerCycle;
    result.cycles = parallel.cycles;
    result.simWallS = parallel.simWallSeconds;
    result.threadsUsed = parallel.threads;
    result.channels = parallel.channels;
    result.faultFailedPus = parallel.report.failedPuCount();
    result.faultTruncatedPus = parallel.report.truncatedPuCount();
    result.faultSummary = parallel.report.summary();
    result.trace = parallel.report.trace;

    if (serial.cycles != parallel.cycles)
        throw std::runtime_error(app.name() +
                                 ": thread-count determinism violated");
    if (!(serial.report == parallel.report))
        throw std::runtime_error(
            app.name() + ": RunReport differs between serial and "
                         "worker-pool runs");
    if (!opts.faults && !parallel.report.allOk())
        throw std::runtime_error(app.name() + ": fault-free run failed: " +
                                 parallel.report.summary());
    return result;
}

AppResult
evaluateApp(const apps::Application &app, const model::Device &device,
            const model::PowerParams &power, int cpu_threads,
            system::PuBackend backend)
{
    AppResult result;
    result.name = app.name();
    lang::Program program = app.program();
    auto compiled = compile::compileProgram(program);
    memctl::ControllerParams ctrl;

    // --- Area model: how many PUs fit. -----------------------------------
    auto per_pu = model::estimatePuResources(compiled.circuit, ctrl);
    result.pus = model::maxProcessingUnits(device, per_pu, ctrl);

    // --- Fleet throughput: one channel, scaled. --------------------------
    // Integer coding averages five input ranges, as in the paper.
    std::vector<int> value_ranges = {15};
    if (app.name() == "IntegerCoding")
        value_ranges = {5, 10, 15, 20, 25};

    int per_channel = std::min(result.pus / device.memoryChannels, 96);
    per_channel = std::max(per_channel, 1);
    const uint64_t stream_bytes = 16384;

    double fleet_sum = 0;
    double gpu_sum = 0;
    double cpu_sum = 0;
    for (int range : value_ranges) {
        std::unique_ptr<apps::Application> variant;
        const apps::Application *use = &app;
        if (app.name() == "IntegerCoding") {
            variant = std::make_unique<apps::IntcodeApp>(
                apps::IntcodeParams{range});
            use = variant.get();
        }
        auto streams = bench::makeStreams(*use, per_channel, stream_bytes,
                                   1000 + range);
        system::SystemConfig config;
        config.numChannels = 1;
        config.backend = backend;
        auto run = bench::runFleet(use->program(), streams, config,
                                   device.memoryChannels);
        fleet_sum += run.gbps;
        result.bytesPerCycle += run.bytesPerCycle;
        result.cycles += run.cycles;
        result.simWallS += run.simWallSeconds;
        result.threadsUsed = run.threads;

        // --- GPU model: two warps of distinct streams. -------------------
        auto gpu_streams = bench::makeStreams(*use, 64, 8192, 2000 + range);
        baseline::SimtParams simt_params;
        auto simt = baseline::simulateWarps(use->program(), gpu_streams,
                                            simt_params);
        gpu_sum += simt.gbps(simt_params);

        // --- CPU baseline: measured then extrapolated to 36 HT. ----------
        auto kernel = baseline::makeCpuKernel(use->name());
        std::vector<std::vector<uint8_t>> cpu_streams;
        for (int i = 0; i < cpu_threads * 4; ++i) {
            Rng rng(3000 + range * 37 + i);
            cpu_streams.push_back(
                use->generateStream(rng, 1 << 20).toBytes());
        }
        baseline::MeasureOptions opts;
        opts.threads = cpu_threads;
        opts.repeats = 2;
        auto measured = baseline::measureCpu(*kernel, cpu_streams, opts);
        cpu_sum += measured.gbps() * 36.0 / cpu_threads;
    }
    result.fleetGBps = fleet_sum / value_ranges.size();
    result.gpuGBps = gpu_sum / value_ranges.size();
    result.cpuGBps = cpu_sum / value_ranges.size();
    result.bytesPerCycle /= value_ranges.size();

    // --- Power. -----------------------------------------------------------
    auto controllers = model::estimateControllerResources(ctrl);
    double fpga_w =
        model::fpgaPackagePower(power, per_pu, result.pus, controllers) +
        power.dramW;
    result.fleetPerfW = result.fleetGBps / fpga_w;
    result.cpuPerfW = result.cpuGBps / (power.cpuPackageW + power.dramW);
    result.gpuPerfW = result.gpuGBps / (power.gpuPackageW + power.dramW);
    return result;
}

/**
 * Compare each app's fault-free bytes/cycle against a previously
 * written BENCH_PR.json. The comparison is exact at the JSON's own
 * printed precision (%.6f): the simulator is deterministic, so any
 * drift is a real behaviour change, not noise. Returns true when every
 * app matches.
 */
bool
checkBaseline(const std::string &path,
              const std::vector<AppResult> &results)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return false;
    }
    // Minimal scan of the JSON we write ourselves: each app object
    // carries "app" then "bytes_per_cycle" in order.
    std::vector<std::pair<std::string, std::string>> baseline;
    std::string line;
    std::string current_app;
    while (std::getline(in, line)) {
        auto grab = [&line](const char *key) -> std::string {
            auto pos = line.find(key);
            if (pos == std::string::npos)
                return "";
            pos = line.find(':', pos);
            if (pos == std::string::npos)
                return "";
            std::string value = line.substr(pos + 1);
            auto strip = [](std::string s) {
                const char *junk = " \t\",";
                auto b = s.find_first_not_of(junk);
                auto e = s.find_last_not_of(junk);
                return b == std::string::npos ? std::string()
                                              : s.substr(b, e - b + 1);
            };
            return strip(value);
        };
        if (auto app = grab("\"app\""); !app.empty())
            current_app = app;
        if (auto bpc = grab("\"bytes_per_cycle\""); !bpc.empty()) {
            if (current_app.empty())
                continue;
            baseline.emplace_back(current_app, bpc);
            current_app.clear();
        }
    }
    bool ok = true;
    for (const auto &r : results) {
        char now[32];
        std::snprintf(now, sizeof(now), "%.6f", r.bytesPerCycle);
        auto it = std::find_if(baseline.begin(), baseline.end(),
                               [&r](const auto &b) {
                                   return b.first == r.name;
                               });
        if (it == baseline.end()) {
            std::fprintf(stderr, "baseline: %s missing from %s\n",
                         r.name.c_str(), path.c_str());
            ok = false;
        } else if (it->second != now) {
            std::fprintf(stderr,
                         "baseline: %s bytes/cycle changed: %s -> %s\n",
                         r.name.c_str(), it->second.c_str(), now);
            ok = false;
        }
    }
    if (ok)
        std::printf("baseline: bytes/cycle unchanged for all %zu apps "
                    "(vs %s)\n",
                    results.size(), path.c_str());
    return ok;
}

bool
writeJson(const std::string &path, const std::vector<AppResult> &results,
          const RunOptions &opts)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    double total_wall = 0;
    for (const auto &r : results)
        total_wall += r.simWallS;
    std::fprintf(f, "{\n");
    bench::writeRunMetadata(f, "fig7_main_results",
                            opts.backendName.c_str(), opts.threads);
    std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
    std::fprintf(f, "  \"total_sim_wall_s\": %.6f,\n", total_wall);
    std::fprintf(f, "  \"apps\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const AppResult &r = results[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"app\": \"%s\",\n", r.name.c_str());
        std::fprintf(f, "      \"pus\": %d,\n", r.pus);
        std::fprintf(f, "      \"fleet_gbps\": %.6f,\n", r.fleetGBps);
        std::fprintf(f, "      \"bytes_per_cycle\": %.6f,\n",
                     r.bytesPerCycle);
        std::fprintf(f, "      \"cycles\": %llu,\n",
                     static_cast<unsigned long long>(r.cycles));
        std::fprintf(f, "      \"sim_wall_s\": %.6f,\n", r.simWallS);
        if (opts.smoke) {
            std::fprintf(f, "      \"sim_wall_serial_s\": %.6f,\n",
                         r.simWallSerialS);
            std::fprintf(f, "      \"parallel_speedup\": %.3f,\n",
                         r.simWallS > 0 ? r.simWallSerialS / r.simWallS
                                        : 0.0);
        }
        if (opts.faults) {
            std::fprintf(f, "      \"fault_seed\": %llu,\n",
                         static_cast<unsigned long long>(opts.faultSeed));
            std::fprintf(f, "      \"failed_pus\": %d,\n",
                         r.faultFailedPus);
            std::fprintf(f, "      \"truncated_pus\": %d,\n",
                         r.faultTruncatedPus);
        }
        if (r.trace) {
            std::fprintf(f, "      \"counters\":\n");
            r.trace->writeCountersJson(f, "      ");
            std::fprintf(f, ",\n");
        }
        std::fprintf(f, "      \"threads\": %d", r.threadsUsed);
        if (!r.channels.empty()) {
            std::fprintf(f, ",\n      \"channels\": [\n");
            for (size_t c = 0; c < r.channels.size(); ++c) {
                const auto &ch = r.channels[c];
                std::fprintf(
                    f,
                    "        {\"cycles\": %llu, \"pus\": %d, "
                    "\"bus_utilization\": %.4f, "
                    "\"avg_read_queue\": %.3f, "
                    "\"input_starved_cycles\": %llu, "
                    "\"output_blocked_cycles\": %llu}%s\n",
                    static_cast<unsigned long long>(ch.cycles), ch.numPus,
                    ch.busUtilization(), ch.avgReadQueueDepth(),
                    static_cast<unsigned long long>(ch.inputStarvedCycles),
                    static_cast<unsigned long long>(
                        ch.outputBlockedCycles),
                    c + 1 < r.channels.size() ? "," : "");
            }
            std::fprintf(f, "      ]\n");
        } else {
            std::fprintf(f, "\n");
        }
        std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--faults") == 0 &&
                   i + 1 < argc) {
            opts.faults = true;
            opts.faultSeed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            opts.baselinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--counters") == 0) {
            opts.counters = true;
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            opts.tracePrefix = argv[++i];
        } else if (std::strcmp(argv[i], "--backend") == 0 &&
                   i + 1 < argc) {
            auto parsed = system::parsePuBackend(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr, "unknown backend '%s' (want %s)\n",
                             argv[i], system::kPuBackendChoices);
                return 2;
            }
            opts.backend = *parsed;
            opts.backendName = system::puBackendName(*parsed);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH] "
                         "[--threads N] [--faults SEED] "
                         "[--baseline PATH] [--counters] "
                         "[--trace PREFIX] "
                         "[--backend %s]\n",
                         argv[0], system::kPuBackendChoices);
            return 2;
        }
    }
    if ((opts.faults || !opts.baselinePath.empty() || opts.counters ||
         !opts.tracePrefix.empty()) &&
        !opts.smoke) {
        std::fprintf(stderr, "--faults, --baseline, --counters and "
                             "--trace require --smoke\n");
        return 2;
    }
    if (opts.faults && !opts.baselinePath.empty()) {
        std::fprintf(stderr,
                     "--baseline compares the fault-free run; combine "
                     "it with --smoke only, not --faults\n");
        return 2;
    }

    std::vector<AppResult> results;

    if (opts.smoke) {
        bench::printHeader(
            opts.faults
                ? "Figure 7 (smoke, fault injection): 4-channel run per app"
                : "Figure 7 (smoke): 4-channel engine run per app",
            "Short CI configuration: cycle-accurate simulation only (no "
            "CPU/GPU\nbaselines), single-threaded vs worker-pool "
            "wall-clock.");
        if (opts.faults)
            std::printf("fault plan: FaultPlan::fromSeed(%llu)\n\n",
                        static_cast<unsigned long long>(opts.faultSeed));
        std::printf("PU backend: %s\n\n", opts.backendName.c_str());
        Table table({"App", "Streams", "GB/s", "B/cycle", "wall 1T (s)",
                     "wall NT (s)", "speedup", "threads"});
        for (auto &app : apps::allApplications()) {
            AppResult r = evaluateAppSmoke(*app, opts);
            char gbps[32], bpc[32], w1[32], wn[32], sp[32];
            std::snprintf(gbps, sizeof(gbps), "%.2f", r.fleetGBps);
            std::snprintf(bpc, sizeof(bpc), "%.2f", r.bytesPerCycle);
            std::snprintf(w1, sizeof(w1), "%.3f", r.simWallSerialS);
            std::snprintf(wn, sizeof(wn), "%.3f", r.simWallS);
            std::snprintf(sp, sizeof(sp), "%.2fx",
                          r.simWallS > 0 ? r.simWallSerialS / r.simWallS
                                         : 0.0);
            table.row()
                .cell(r.name)
                .cell(std::to_string(r.pus))
                .cell(gbps)
                .cell(bpc)
                .cell(w1)
                .cell(wn)
                .cell(sp)
                .cell(std::to_string(r.threadsUsed));
            std::fflush(stdout);
            results.push_back(std::move(r));
        }
        std::printf("%s\n", table.str().c_str());
        if (opts.counters) {
            for (const auto &r : results)
                std::printf("%s counters:\n%s\n", r.name.c_str(),
                            r.trace->countersSummary().c_str());
        }
        if (!opts.tracePrefix.empty()) {
            for (const auto &r : results) {
                std::string path =
                    opts.tracePrefix + "_" + r.name + ".json";
                Status st = r.trace->writeChromeTrace(path);
                if (!st.ok()) {
                    std::fprintf(stderr, "trace: %s\n",
                                 st.toString().c_str());
                    return 1;
                }
                std::printf("wrote %s\n", path.c_str());
            }
        }
        if (opts.faults) {
            std::printf("Per-app fault outcomes (identical on serial and "
                        "worker-pool runs):\n");
            for (const auto &r : results)
                std::printf("  %-14s %s\n", r.name.c_str(),
                            r.faultSummary.c_str());
            std::printf("\n");
        }
        if (!opts.jsonPath.empty() &&
            !writeJson(opts.jsonPath, results, opts))
            return 1;
        if (!opts.baselinePath.empty() &&
            !checkBaseline(opts.baselinePath, results))
            return 1;
        return 0;
    }

    bench::printHeader(
        "Figure 7: Fleet on (modelled) Amazon F1 vs CPU/GPU",
        "Simulated/modelled values with the paper's reported numbers in "
        "parentheses.\nCPU measured on this host, extrapolated to the "
        "paper's 36 hyperthreads; see header comment.");

    model::Device device;
    model::PowerParams power;
    int cpu_threads =
        std::max(1u, std::thread::hardware_concurrency());

    auto fmt = [](double ours, double paper, int precision = 2) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f (%.*f)", precision, ours,
                      precision, paper);
        return std::string(buf);
    };

    Table table({"App", "#PUs", "Fleet GB/s", "Fleet Perf/W",
                 "CPU GB/s", "CPU Perf/W", "GPU GB/s", "GPU Perf/W",
                 "vs CPU", "vs GPU"});
    for (auto &app : apps::allApplications()) {
        AppResult r =
            evaluateApp(*app, device, power, cpu_threads, opts.backend);
        const auto &paper = bench::paperRowFor(r.name);
        table.row()
            .cell(r.name)
            .cell(fmt(r.pus, paper.pus, 0))
            .cell(fmt(r.fleetGBps, paper.fleetGBps))
            .cell(fmt(r.fleetPerfW, paper.fleetPerfWDram))
            .cell(fmt(r.cpuGBps, paper.cpuGBps))
            .cell(fmt(r.cpuPerfW, paper.cpuPerfWDram, 3))
            .cell(fmt(r.gpuGBps, paper.gpuGBps))
            .cell(fmt(r.gpuPerfW, paper.gpuPerfWDram))
            .cell(fmt(r.fleetPerfW / std::max(r.cpuPerfW, 1e-9),
                      paper.fleetPerfWDram / paper.cpuPerfWDram, 1))
            .cell(fmt(r.fleetPerfW / std::max(r.gpuPerfW, 1e-9),
                      paper.fleetPerfWDram / paper.gpuPerfWDram, 1));
        std::fflush(stdout);
        results.push_back(std::move(r));
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("Columns: ours (paper). Perf/W includes the paper's "
                "12.5 W DRAM assumption.\n");
    if (!opts.jsonPath.empty() && !writeJson(opts.jsonPath, results, opts))
        return 1;
    return 0;
}
