/**
 * @file
 * Regenerates Figure 7 of the paper: for each of the six applications,
 * Fleet's processing-unit count, throughput and performance-per-watt on
 * the modelled F1 platform, against the measured CPU baseline and the
 * modelled GPU (SIMT divergence) baseline. The paper's reported values
 * print alongside for shape comparison.
 *
 * Methodology notes (see DESIGN.md and EXPERIMENTS.md):
 *  - Fleet GB/s comes from cycle-accurate simulation of one memory
 *    channel populated with its share of the fitted PUs (capped for
 *    simulation time), scaled by the channel count; #PUs comes from the
 *    area model.
 *  - CPU GB/s is measured on this host and extrapolated linearly from
 *    the measured threads to the paper's 36 hyperthreads (streams are
 *    independent, so throughput scales with cores).
 *  - GPU GB/s comes from the V100-calibrated warp-divergence model.
 *  - Perf/W uses the power models of src/model/power.h (the paper itself
 *    models DRAM power as a constant 12.5 W).
 */

#include <algorithm>
#include <thread>

#include "apps/intcode.h"
#include "baseline/cpu.h"
#include "baseline/simt.h"
#include "baseline/timing.h"
#include "bench_common.h"
#include "compile/compiler.h"
#include "model/area.h"
#include "model/power.h"

using namespace fleet;

namespace {

struct AppResult
{
    std::string name;
    int pus = 0;
    double fleetGBps = 0;
    double fleetPerfW = 0;
    double cpuGBps = 0;
    double cpuPerfW = 0;
    double gpuGBps = 0;
    double gpuPerfW = 0;
};

AppResult
evaluateApp(const apps::Application &app, const model::Device &device,
            const model::PowerParams &power, int cpu_threads)
{
    AppResult result;
    result.name = app.name();
    lang::Program program = app.program();
    auto compiled = compile::compileProgram(program);
    memctl::ControllerParams ctrl;

    // --- Area model: how many PUs fit. -----------------------------------
    auto per_pu = model::estimatePuResources(compiled.circuit, ctrl);
    result.pus = model::maxProcessingUnits(device, per_pu, ctrl);

    // --- Fleet throughput: one channel, scaled. --------------------------
    // Integer coding averages five input ranges, as in the paper.
    std::vector<int> value_ranges = {15};
    if (app.name() == "IntegerCoding")
        value_ranges = {5, 10, 15, 20, 25};

    int per_channel = std::min(result.pus / device.memoryChannels, 96);
    per_channel = std::max(per_channel, 1);
    const uint64_t stream_bytes = 16384;

    double fleet_sum = 0;
    double gpu_sum = 0;
    double cpu_sum = 0;
    for (int range : value_ranges) {
        std::unique_ptr<apps::Application> variant;
        const apps::Application *use = &app;
        if (app.name() == "IntegerCoding") {
            variant = std::make_unique<apps::IntcodeApp>(
                apps::IntcodeParams{range});
            use = variant.get();
        }
        auto streams = bench::makeStreams(*use, per_channel, stream_bytes,
                                   1000 + range);
        fleet_sum += bench::channelScaledGBps(use->program(), streams,
                                              device.memoryChannels);

        // --- GPU model: two warps of distinct streams. -------------------
        auto gpu_streams = bench::makeStreams(*use, 64, 8192, 2000 + range);
        baseline::SimtParams simt_params;
        auto simt = baseline::simulateWarps(use->program(), gpu_streams,
                                            simt_params);
        gpu_sum += simt.gbps(simt_params);

        // --- CPU baseline: measured then extrapolated to 36 HT. ----------
        auto kernel = baseline::makeCpuKernel(use->name());
        std::vector<std::vector<uint8_t>> cpu_streams;
        for (int i = 0; i < cpu_threads * 4; ++i) {
            Rng rng(3000 + range * 37 + i);
            cpu_streams.push_back(
                use->generateStream(rng, 1 << 20).toBytes());
        }
        baseline::MeasureOptions opts;
        opts.threads = cpu_threads;
        opts.repeats = 2;
        auto measured = baseline::measureCpu(*kernel, cpu_streams, opts);
        cpu_sum += measured.gbps() * 36.0 / cpu_threads;
    }
    result.fleetGBps = fleet_sum / value_ranges.size();
    result.gpuGBps = gpu_sum / value_ranges.size();
    result.cpuGBps = cpu_sum / value_ranges.size();

    // --- Power. -----------------------------------------------------------
    auto controllers = model::estimateControllerResources(ctrl);
    double fpga_w =
        model::fpgaPackagePower(power, per_pu, result.pus, controllers) +
        power.dramW;
    result.fleetPerfW = result.fleetGBps / fpga_w;
    result.cpuPerfW = result.cpuGBps / (power.cpuPackageW + power.dramW);
    result.gpuPerfW = result.gpuGBps / (power.gpuPackageW + power.dramW);
    return result;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 7: Fleet on (modelled) Amazon F1 vs CPU/GPU",
        "Simulated/modelled values with the paper's reported numbers in "
        "parentheses.\nCPU measured on this host, extrapolated to the "
        "paper's 36 hyperthreads; see header comment.");

    model::Device device;
    model::PowerParams power;
    int cpu_threads =
        std::max(1u, std::thread::hardware_concurrency());

    auto fmt = [](double ours, double paper, int precision = 2) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f (%.*f)", precision, ours,
                      precision, paper);
        return std::string(buf);
    };

    Table table({"App", "#PUs", "Fleet GB/s", "Fleet Perf/W",
                 "CPU GB/s", "CPU Perf/W", "GPU GB/s", "GPU Perf/W",
                 "vs CPU", "vs GPU"});
    for (auto &app : apps::allApplications()) {
        AppResult r = evaluateApp(*app, device, power, cpu_threads);
        const auto &paper = bench::paperRowFor(r.name);
        table.row()
            .cell(r.name)
            .cell(fmt(r.pus, paper.pus, 0))
            .cell(fmt(r.fleetGBps, paper.fleetGBps))
            .cell(fmt(r.fleetPerfW, paper.fleetPerfWDram))
            .cell(fmt(r.cpuGBps, paper.cpuGBps))
            .cell(fmt(r.cpuPerfW, paper.cpuPerfWDram, 3))
            .cell(fmt(r.gpuGBps, paper.gpuGBps))
            .cell(fmt(r.gpuPerfW, paper.gpuPerfWDram))
            .cell(fmt(r.fleetPerfW / std::max(r.cpuPerfW, 1e-9),
                      paper.fleetPerfWDram / paper.cpuPerfWDram, 1))
            .cell(fmt(r.fleetPerfW / std::max(r.gpuPerfW, 1e-9),
                      paper.fleetPerfWDram / paper.gpuPerfWDram, 1));
        std::fflush(stdout);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("Columns: ours (paper). Perf/W includes the paper's "
                "12.5 W DRAM assumption.\n");
    return 0;
}
