/**
 * @file
 * Open-loop serving latency under offered load (ISSUE 6). The
 * closed-loop job_throughput bench cannot see queueing delay: it only
 * submits as fast as the system drains. This harness schedules arrivals
 * *in advance* on the simulated clock (deterministic seeded Poisson and
 * bursty processes, heterogeneous job sizes — serve/load_gen.h), drives
 * a paced FleetService, and reports the latency distribution the
 * serving layer actually delivers at each load point:
 *
 *  - p50/p95/p99 end-to-end job latency in simulated cycles, plus the
 *    mean queue-wait / service decomposition from JobReport;
 *  - jobs/s           host-side serving rate (simulation speed);
 *  - reject rate      fraction turned away by admission control
 *                     (bounded queue, Reject policy);
 *  - slot occupancy   fraction of slot-cycles holding a job.
 *
 * Offered load is calibrated: a closed warm-up batch measures the mean
 * per-job service time, and each point's mean interarrival gap is
 * meanService / (slots * rho) — so rho = 1.0 is the pool's saturation
 * point and the sweep brackets it from both sides.
 *
 * Idle gaps: the session clock only advances while jobs are in flight,
 * so the driver keeps a warp offset between the schedule's timeline and
 * the session clock — when the system goes idle it warps forward to the
 * next arrival (standard event-driven queue simulation). Within busy
 * periods arrival spacing is preserved exactly.
 *
 * Determinism: everything simulated is a pure function of the seeded
 * schedule, so in --smoke mode the harness replays one load point
 * across PU backends and host thread counts and fails (exit 1) unless
 * every per-job latency tuple is bit-identical — the serving-layer
 * extension of the runtime determinism fence. Host wall-time fields are
 * excluded (they are reported, not fenced).
 *
 * Flags:
 *  --smoke           short CI configuration + determinism crosscheck.
 *  --json PATH       write per-point results as JSON (BENCH_LAT.json).
 *  --baseline PATH   compare p99 per point against a previous JSON;
 *                    exact match required (the simulator is
 *                    deterministic), nonzero exit on drift.
 *  --threads N       host worker threads (0 = one per hardware thread).
 *  --backend B       fast | rtl | rtltape | rtlinterp | rtljit
 *                    (system/pu_backend.h; rtl* are cycle-accurate).
 *  --faults SEED     run every load point under the FaultPlan storm
 *                    keyed by SEED with the recovery stack armed
 *                    (retry, quarantine, requeue — ISSUE 7): the
 *                    latency distribution then includes retry delay,
 *                    the price of self-healing under load. The
 *                    zero-failed gate is relaxed (contained failures
 *                    are expected); determinism gates still hold.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_common.h"
#include "serve/load_gen.h"
#include "serve/service.h"
#include "system/pu_backend.h"

using namespace fleet;

namespace {

struct RunOptions
{
    bool smoke = false;
    std::string jsonPath;
    std::string baselinePath;
    int threads = 0;
    std::string backendName = "fast";
    system::PuBackend backend = system::PuBackend::Fast;
    bool faults = false;
    uint64_t faultSeed = 0;
};

struct PointResult
{
    std::string label;
    serve::ArrivalProcess process = serve::ArrivalProcess::Poisson;
    double rho = 0;
    double meanInterarrival = 0;
    uint64_t jobs = 0;
    uint64_t served = 0;
    uint64_t rejected = 0;
    uint64_t failed = 0; ///< Neither served nor rejected (stranded).
    uint64_t retries = 0; ///< Transient failures re-submitted (--faults).
    double rejectRate = 0;
    uint64_t p50 = 0, p95 = 0, p99 = 0; ///< Total latency, sim cycles.
    double meanQueueWait = 0;
    double meanService = 0;
    double slotOccupancy = 0;
    uint64_t simCycles = 0;
    double jobsPerSec = 0;
    double simWallS = 0;
    /** Per-job simulated-latency tuples in job-id order — the
     * determinism fence (host wall fields deliberately absent). */
    std::vector<std::array<uint64_t, 5>> signature;
};

struct BenchShape
{
    int slots = 8;
    int channels = 2;
    uint64_t regionBytes = 4096;
    uint64_t jobsPerPoint = 96;
    size_t maxQueueDepth = 32;
};

uint64_t
percentile(const std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t rank = static_cast<size_t>(q * double(sorted.size()));
    if (rank >= sorted.size())
        rank = sorted.size() - 1;
    return sorted[rank];
}

serve::ServiceConfig
serviceConfig(const RunOptions &opts, const BenchShape &shape)
{
    serve::ServiceConfig config;
    config.session.system.numChannels = shape.channels;
    config.session.system.numThreads = opts.threads;
    config.session.system.inputRegionBytes = shape.regionBytes;
    config.session.system.backend = opts.backend;
    config.session.numSlots = shape.slots;
    config.maxQueueDepth = shape.maxQueueDepth;
    config.policy = serve::AdmissionPolicy::Reject;
    config.backgroundThread = false; // paced: deterministic pacing
    if (opts.faults) {
        // Fault storm with the full recovery stack armed (ISSUE 7):
        // the measured distribution then prices in retry delay.
        config.session.system.faults =
            fault::FaultPlan::fromSeed(opts.faultSeed);
        config.retry.maxAttempts = 3;
        config.retry.backoffCycles = 64;
        config.session.quarantineAfterFaults = 3;
        config.session.requeueStranded = true;
    }
    return config;
}

/** Closed warm-up batch: mean service cycles per job at this shape. */
double
calibrateServiceCycles(const apps::Application &app,
                       const RunOptions &opts, const BenchShape &shape)
{
    // Calibrate fault-free even under --faults so rho keeps meaning
    // offered load / *healthy* pool capacity across both modes.
    RunOptions clean = opts;
    clean.faults = false;
    serve::ServiceConfig config = serviceConfig(clean, shape);
    serve::FleetService service(app.program(), config);
    uint64_t bytes =
        (shape.regionBytes / 8 + shape.regionBytes / 2) / 2;
    Rng rng(0xCA11B);
    uint64_t jobs = uint64_t(shape.slots) * 2;
    for (uint64_t j = 0; j < jobs; ++j)
        service.submitAt(app.generateStream(rng, bytes), 0);
    while (service.pump()) {
    }
    service.shutdown();
    uint64_t total = 0, count = 0;
    for (const auto &report : service.session().reports())
        if (report.ok()) {
            total += report.serviceCycles();
            ++count;
        }
    if (count == 0)
        throw std::runtime_error("calibration served no jobs");
    return double(total) / double(count);
}

PointResult
runPoint(const apps::Application &app, const RunOptions &opts,
         const BenchShape &shape, serve::ArrivalProcess process,
         double rho, double mean_service)
{
    serve::LoadSpec spec;
    spec.process = process;
    spec.jobs = shape.jobsPerPoint;
    spec.meanInterarrivalCycles =
        std::max(1.0, mean_service / (double(shape.slots) * rho));
    spec.minJobBytes = shape.regionBytes / 8;
    spec.maxJobBytes = shape.regionBytes / 2;
    spec.seed = 0xf1ee7 + uint64_t(rho * 100);

    PointResult result;
    char label[64];
    std::snprintf(label, sizeof(label), "%s-%.2f",
                  serve::arrivalProcessName(process), rho);
    result.label = label;
    result.process = process;
    result.rho = rho;
    result.meanInterarrival = spec.meanInterarrivalCycles;
    result.jobs = spec.jobs;

    auto arrivals = serve::makeArrivals(spec);
    Rng stream_rng(spec.seed ^ 0x5eed);
    std::vector<BitBuffer> streams;
    streams.reserve(arrivals.size());
    for (const auto &arrival : arrivals)
        streams.push_back(
            app.generateStream(stream_rng, arrival.streamBytes));

    serve::FleetService service(app.program(),
                                serviceConfig(opts, shape));
    std::vector<serve::JobTicket> tickets;
    tickets.reserve(arrivals.size());

    auto start = std::chrono::steady_clock::now();
    size_t next = 0;
    // Warp offset between the schedule's timeline and the session
    // clock; jumps forward over idle gaps (see the file comment).
    uint64_t offset = arrivals.empty() ? 0 : arrivals.front().cycle;
    for (;;) {
        uint64_t now = service.stats().simCycles;
        while (next < arrivals.size() &&
               arrivals[next].cycle <= now + offset) {
            tickets.push_back(service.submitAt(
                std::move(streams[next]),
                arrivals[next].cycle - offset));
            ++next;
        }
        bool work = service.pump();
        if (!work) {
            if (next >= arrivals.size())
                break;
            uint64_t vnow = now + offset;
            if (arrivals[next].cycle > vnow)
                offset += arrivals[next].cycle - vnow;
        }
    }
    service.shutdown();
    result.simWallS = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

    std::vector<uint64_t> totals;
    uint64_t wait_sum = 0, service_sum = 0;
    for (const auto &ticket : tickets) {
        const runtime::JobReport &report = ticket.report();
        if (report.status.code == StatusCode::ResourceExhausted) {
            ++result.rejected;
            continue;
        }
        if (!report.ok()) {
            ++result.failed;
            continue;
        }
        ++result.served;
        totals.push_back(report.totalCycles());
        wait_sum += report.queueWaitCycles();
        service_sum += report.serviceCycles();
    }
    std::sort(totals.begin(), totals.end());
    result.rejectRate =
        result.jobs > 0 ? double(result.rejected) / double(result.jobs)
                        : 0;
    result.p50 = percentile(totals, 0.50);
    result.p95 = percentile(totals, 0.95);
    result.p99 = percentile(totals, 0.99);
    result.meanQueueWait =
        result.served ? double(wait_sum) / double(result.served) : 0;
    result.meanService =
        result.served ? double(service_sum) / double(result.served) : 0;
    result.retries = service.stats().retries;
    result.simCycles = service.stats().simCycles;
    result.jobsPerSec = result.simWallS > 0
                            ? double(result.served) / result.simWallS
                            : 0;
    uint64_t busy = 0;
    for (const auto &report : service.session().reports()) {
        busy += report.serviceCycles();
        result.signature.push_back(
            {report.enqueueCycle, report.admittedCycle,
             report.completedCycle, report.armCycle,
             report.retireCycle});
    }
    result.slotOccupancy =
        result.simCycles > 0
            ? double(busy) / (double(result.simCycles) * shape.slots)
            : 0;
    return result;
}

bool
writeJson(const std::string &path, const std::string &app,
          const RunOptions &opts, const BenchShape &shape,
          const std::vector<PointResult> &points)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n");
    bench::writeRunMetadata(f, "serve_latency",
                            opts.backendName.c_str(), opts.threads);
    std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
    std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
    std::fprintf(f, "  \"slots\": %d,\n", shape.slots);
    std::fprintf(f, "  \"channels\": %d,\n", shape.channels);
    std::fprintf(f, "  \"max_queue_depth\": %zu,\n", shape.maxQueueDepth);
    std::fprintf(f, "  \"policy\": \"reject\",\n");
    if (opts.faults)
        std::fprintf(f, "  \"fault_seed\": %llu,\n",
                     static_cast<unsigned long long>(opts.faultSeed));
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const PointResult &p = points[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"label\": \"%s\",\n", p.label.c_str());
        std::fprintf(f, "      \"process\": \"%s\",\n",
                     serve::arrivalProcessName(p.process));
        std::fprintf(f, "      \"rho\": %.3f,\n", p.rho);
        std::fprintf(f, "      \"mean_interarrival_cycles\": %.3f,\n",
                     p.meanInterarrival);
        std::fprintf(f, "      \"jobs\": %llu,\n",
                     static_cast<unsigned long long>(p.jobs));
        std::fprintf(f, "      \"served\": %llu,\n",
                     static_cast<unsigned long long>(p.served));
        std::fprintf(f, "      \"rejected\": %llu,\n",
                     static_cast<unsigned long long>(p.rejected));
        std::fprintf(f, "      \"failed\": %llu,\n",
                     static_cast<unsigned long long>(p.failed));
        std::fprintf(f, "      \"retries\": %llu,\n",
                     static_cast<unsigned long long>(p.retries));
        std::fprintf(f, "      \"reject_rate\": %.4f,\n", p.rejectRate);
        std::fprintf(f, "      \"p50_total_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.p50));
        std::fprintf(f, "      \"p95_total_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.p95));
        std::fprintf(f, "      \"p99_total_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.p99));
        std::fprintf(f, "      \"mean_queue_wait_cycles\": %.3f,\n",
                     p.meanQueueWait);
        std::fprintf(f, "      \"mean_service_cycles\": %.3f,\n",
                     p.meanService);
        std::fprintf(f, "      \"slot_occupancy\": %.4f,\n",
                     p.slotOccupancy);
        std::fprintf(f, "      \"sim_cycles\": %llu,\n",
                     static_cast<unsigned long long>(p.simCycles));
        std::fprintf(f, "      \"jobs_per_sec\": %.3f,\n", p.jobsPerSec);
        std::fprintf(f, "      \"sim_wall_s\": %.6f\n", p.simWallS);
        std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

/**
 * Gate current p99s against a previously written BENCH_LAT.json. The
 * simulated distribution is deterministic, so the comparison is exact:
 * any drift is a real serving-behaviour change. Line-wise scan of our
 * own format ("label" then "p99_total_cycles" per point object),
 * tolerant of added keys.
 */
bool
checkBaseline(const std::string &path,
              const std::vector<PointResult> &points)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return false;
    }
    std::vector<std::pair<std::string, std::string>> baseline;
    std::string line, current_label;
    while (std::getline(in, line)) {
        auto grab = [&line](const char *key) -> std::string {
            auto pos = line.find(key);
            if (pos == std::string::npos)
                return "";
            pos = line.find(':', pos);
            if (pos == std::string::npos)
                return "";
            std::string value = line.substr(pos + 1);
            const char *junk = " \t\",";
            auto b = value.find_first_not_of(junk);
            auto e = value.find_last_not_of(junk);
            return b == std::string::npos
                       ? std::string()
                       : value.substr(b, e - b + 1);
        };
        if (auto label = grab("\"label\""); !label.empty())
            current_label = label;
        if (auto p99 = grab("\"p99_total_cycles\""); !p99.empty()) {
            if (!current_label.empty())
                baseline.emplace_back(current_label, p99);
            current_label.clear();
        }
    }
    bool ok = true;
    for (const auto &p : points) {
        char now[32];
        std::snprintf(now, sizeof(now), "%llu",
                      static_cast<unsigned long long>(p.p99));
        auto it = std::find_if(
            baseline.begin(), baseline.end(),
            [&p](const auto &b) { return b.first == p.label; });
        if (it == baseline.end()) {
            std::fprintf(stderr, "baseline: point %s missing from %s\n",
                         p.label.c_str(), path.c_str());
            ok = false;
        } else if (it->second != now) {
            std::fprintf(stderr,
                         "baseline: %s p99 changed: %s -> %s cycles\n",
                         p.label.c_str(), it->second.c_str(), now);
            ok = false;
        }
    }
    if (ok)
        std::printf("baseline: p99 unchanged for all %zu load points "
                    "(vs %s)\n",
                    points.size(), path.c_str());
    return ok;
}

/** Replay one point under a different backend / thread count and fence
 * the per-job simulated latency tuples bit-for-bit. */
bool
crosscheckDeterminism(const apps::Application &app,
                      const RunOptions &opts, const BenchShape &shape,
                      const PointResult &reference, double mean_service)
{
    struct Variant
    {
        const char *what;
        std::string backendName;
        system::PuBackend backend;
        int threads;
    };
    std::vector<Variant> variants = {
        {"1 host thread", opts.backendName, opts.backend, 1},
        {"2 host threads", opts.backendName, opts.backend, 2},
    };
    auto cross = opts.backend == system::PuBackend::Fast
                     ? system::PuBackend::Rtl
                     : system::PuBackend::Fast;
    variants.push_back({opts.backend == system::PuBackend::Fast
                            ? "rtl backend"
                            : "fast backend",
                        system::puBackendName(cross), cross,
                        opts.threads});

    bool ok = true;
    for (const auto &variant : variants) {
        RunOptions vopts = opts;
        vopts.backendName = variant.backendName;
        vopts.backend = variant.backend;
        vopts.threads = variant.threads;
        PointResult replay =
            runPoint(app, vopts, shape, reference.process,
                     reference.rho, mean_service);
        if (replay.signature != reference.signature) {
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: %s: per-job latency "
                         "tuples diverged from the reference run\n",
                         variant.what);
            ok = false;
        } else {
            std::printf("determinism: %s: %zu per-job latency tuples "
                        "bit-identical\n",
                        variant.what, replay.signature.size());
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            opts.baselinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--faults") == 0 &&
                   i + 1 < argc) {
            opts.faults = true;
            opts.faultSeed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--backend") == 0 &&
                   i + 1 < argc) {
            auto parsed = system::parsePuBackend(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr, "unknown backend %s (choices: %s)\n",
                             argv[i], system::kPuBackendChoices);
                return 2;
            }
            opts.backend = *parsed;
            opts.backendName = system::puBackendName(*parsed);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH] "
                         "[--baseline PATH] [--threads N] "
                         "[--backend %s] [--faults SEED]\n",
                         argv[0], system::kPuBackendChoices);
            return 2;
        }
    }

    BenchShape shape;
    std::vector<std::pair<serve::ArrivalProcess, double>> sweep;
    if (opts.smoke) {
        shape = {8, 2, 4096, 96, 32};
        sweep = {{serve::ArrivalProcess::Poisson, 0.5},
                 {serve::ArrivalProcess::Poisson, 0.9},
                 {serve::ArrivalProcess::Poisson, 1.2},
                 {serve::ArrivalProcess::Bursty, 0.9}};
    } else {
        shape = {16, 4, 16384, 512, 64};
        sweep = {{serve::ArrivalProcess::Poisson, 0.3},
                 {serve::ArrivalProcess::Poisson, 0.5},
                 {serve::ArrivalProcess::Poisson, 0.7},
                 {serve::ArrivalProcess::Poisson, 0.9},
                 {serve::ArrivalProcess::Poisson, 1.05},
                 {serve::ArrivalProcess::Poisson, 1.3},
                 {serve::ArrivalProcess::Bursty, 0.5},
                 {serve::ArrivalProcess::Bursty, 0.9}};
    }

    auto apps = apps::allApplications();
    const apps::Application &app = *apps.front();

    bench::printHeader(
        "Serving latency vs offered load (open loop)",
        "Seeded arrivals released on the simulated clock; rho = offered "
        "load / pool capacity (calibrated).");
    std::printf("app=%s backend=%s slots=%d channels=%d queue=%zu "
                "jobs/point=%llu\n\n",
                app.name().c_str(), opts.backendName.c_str(),
                shape.slots, shape.channels, shape.maxQueueDepth,
                static_cast<unsigned long long>(shape.jobsPerPoint));

    double mean_service = calibrateServiceCycles(app, opts, shape);
    std::printf("calibrated mean service: %.1f cycles/job "
                "(capacity ~ %.5f jobs/cycle)\n\n",
                mean_service, shape.slots / mean_service);

    std::vector<PointResult> points;
    for (const auto &[process, rho] : sweep)
        points.push_back(
            runPoint(app, opts, shape, process, rho, mean_service));

    Table table({"Point", "Jobs", "Served", "Retry", "Rej rate",
                 "p50 cyc", "p95 cyc", "p99 cyc", "Wait cyc", "Occup",
                 "Jobs/s"});
    for (const auto &p : points)
        table.row()
            .cell(p.label)
            .cell(p.jobs)
            .cell(p.served)
            .cell(p.retries)
            .cell(p.rejectRate, 3)
            .cell(p.p50)
            .cell(p.p95)
            .cell(p.p99)
            .cell(p.meanQueueWait, 1)
            .cell(p.slotOccupancy, 3)
            .cell(p.jobsPerSec, 1);
    std::printf("%s\n", table.str().c_str());

    bool ok = true;

    // Sanity gates (always): the distribution must be non-degenerate
    // and ordered, and the overload point must exercise admission
    // control.
    for (const auto &p : points) {
        if (p.served == 0 || p.p50 == 0 || p.p99 < p.p95 ||
            p.p95 < p.p50) {
            std::fprintf(stderr,
                         "GATE: %s: degenerate latency distribution "
                         "(served=%llu p50=%llu p95=%llu p99=%llu)\n",
                         p.label.c_str(),
                         static_cast<unsigned long long>(p.served),
                         static_cast<unsigned long long>(p.p50),
                         static_cast<unsigned long long>(p.p95),
                         static_cast<unsigned long long>(p.p99));
            ok = false;
        }
        if (p.failed != 0 && !opts.faults) {
            std::fprintf(stderr, "GATE: %s: %llu jobs failed\n",
                         p.label.c_str(),
                         static_cast<unsigned long long>(p.failed));
            ok = false;
        }
        if (p.rho > 1.0 && p.rejected == 0) {
            std::fprintf(stderr,
                         "GATE: %s: overload point never hit admission "
                         "control\n",
                         p.label.c_str());
            ok = false;
        }
    }

    if (opts.smoke && !points.empty()) {
        // Fence the rho=0.9 Poisson point (index 1) across backends
        // and host thread counts.
        const PointResult &reference =
            points.size() > 1 ? points[1] : points[0];
        if (!crosscheckDeterminism(app, opts, shape, reference,
                                   mean_service))
            ok = false;
    }

    if (!opts.jsonPath.empty() &&
        !writeJson(opts.jsonPath, app.name(), opts, shape, points))
        ok = false;
    if (!opts.baselinePath.empty() &&
        !checkBaseline(opts.baselinePath, points))
        ok = false;
    return ok ? 0 : 1;
}
