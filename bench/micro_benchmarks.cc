/**
 * @file
 * google-benchmark microbenchmarks of the simulator stack itself:
 * functional-simulator token rate per application, interpreted-RTL cycle
 * rate, the fast-vs-RTL full-system gap (why the fast timing model
 * exists), and the hot utility paths (BitFifo, DRAM model).
 */

#include <benchmark/benchmark.h>

#include "apps/registry.h"
#include "dram/dram.h"
#include "memctl/bitfifo.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "system/pu_rtl.h"
#include "system/pu_testbench.h"
#include "util/rng.h"

using namespace fleet;

namespace {

BitBuffer
appStream(const std::string &name, uint64_t bytes, uint64_t seed)
{
    auto app = apps::makeApplication(name);
    Rng rng(seed);
    return app->generateStream(rng, bytes);
}

void
BM_FunctionalSim(benchmark::State &state, const std::string &name)
{
    auto app = apps::makeApplication(name);
    lang::Program program = app->program();
    BitBuffer stream = appStream(name, 1 << 14, 1);
    sim::FunctionalSimulator simulator(program);
    for (auto _ : state) {
        auto result = simulator.run(stream);
        benchmark::DoNotOptimize(result.emits);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            (stream.sizeBits() / 8));
}

void
BM_RtlSim(benchmark::State &state, const std::string &name)
{
    auto app = apps::makeApplication(name);
    system::RtlPu pu(app->program());
    BitBuffer stream = appStream(name, 1 << 12, 2);
    for (auto _ : state) {
        auto result = system::runPu(pu, stream);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            (stream.sizeBits() / 8));
}

void
BM_FullSystem(benchmark::State &state, system::PuBackend backend)
{
    auto app = apps::makeApplication("Regex");
    std::vector<BitBuffer> streams;
    Rng rng(3);
    for (int p = 0; p < 8; ++p)
        streams.push_back(app->generateStream(rng, 4096));
    system::SystemConfig config;
    config.numChannels = 1;
    config.backend = backend;
    uint64_t bytes = 0;
    for (const auto &stream : streams)
        bytes += stream.sizeBits() / 8;
    for (auto _ : state) {
        system::FleetSystem fleet_system(app->program(), config, streams);
        fleet_system.run();
        benchmark::DoNotOptimize(fleet_system.stats().cycles);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * bytes);
}

void
BM_BitFifo(benchmark::State &state)
{
    memctl::BitFifo fifo(1024);
    Rng rng(4);
    uint64_t value = rng.next();
    for (auto _ : state) {
        fifo.push(value, 32);
        benchmark::DoNotOptimize(fifo.pop(32));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DramChannel(benchmark::State &state)
{
    dram::DramParams params;
    dram::DramChannel channel(params, 1 << 20);
    uint64_t addr = 0;
    for (auto _ : state) {
        if (channel.arReady()) {
            channel.arPush(addr, 2);
            addr = (addr + 128) & ((1 << 20) - 1);
        }
        if (channel.rValid())
            channel.rPop();
        channel.tick();
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK_CAPTURE(BM_FunctionalSim, json, std::string("JsonParsing"));
BENCHMARK_CAPTURE(BM_FunctionalSim, intcode, std::string("IntegerCoding"));
BENCHMARK_CAPTURE(BM_FunctionalSim, regex, std::string("Regex"));
BENCHMARK_CAPTURE(BM_FunctionalSim, bloom, std::string("BloomFilter"));
BENCHMARK_CAPTURE(BM_RtlSim, json, std::string("JsonParsing"));
BENCHMARK_CAPTURE(BM_RtlSim, regex, std::string("Regex"));
BENCHMARK_CAPTURE(BM_FullSystem, fast, system::PuBackend::Fast);
BENCHMARK_CAPTURE(BM_FullSystem, rtl, system::PuBackend::Rtl);
BENCHMARK(BM_BitFifo);
BENCHMARK(BM_DramChannel);

BENCHMARK_MAIN();
