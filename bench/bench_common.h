#ifndef FLEET_BENCH_BENCH_COMMON_H
#define FLEET_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the paper's
 * tables and figures. Each harness prints both the measured/simulated
 * value and the paper's reported value where one exists, so shape
 * agreement (who wins, by roughly what factor) can be read directly.
 *
 * Simulation scaling: a full F1 design has hundreds of PUs consuming
 * 1 MB each; cycle-accurate simulation of that exact configuration is
 * needlessly slow, so harnesses simulate every PU of a single
 * representative channel (capped) with smaller equal streams and scale
 * by the channel count — valid because channels are fully independent
 * (Section 5: "no further coordination is needed among the separate
 * channels").
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.h"
#include "system/fleet_system.h"
#include "util/rng.h"
#include "util/table.h"

namespace fleet {
namespace bench {

/** Paper reference values (Figure 7) for side-by-side printing. */
struct PaperRow
{
    const char *app;
    int pus;
    double fleetGBps;
    double fleetPerfWDram;
    double cpuGBps;
    double cpuPerfWDram;
    double gpuGBps;
    double gpuPerfWDram;
};

inline const std::vector<PaperRow> &
paperFigure7()
{
    static const std::vector<PaperRow> rows = {
        {"JsonParsing", 512, 21.39, 0.70, 6.11, 0.03, 25.23, 0.13},
        {"IntegerCoding", 192, 10.99, 0.40, 2.11, 0.01, 31.04, 0.15},
        {"DecisionTree", 384, 3.77, 0.13, 2.01, 0.01, 102.17, 0.38},
        {"SmithWaterman", 384, 24.62, 0.81, 0.68, 0.003, 29.41, 0.14},
        {"Regex", 704, 27.24, 0.89, 3.25, 0.02, 73.59, 0.34},
        {"BloomFilter", 320, 24.21, 0.72, 12.03, 0.05, 13.50, 0.11},
    };
    return rows;
}

inline const PaperRow &
paperRowFor(const std::string &app)
{
    for (const auto &row : paperFigure7())
        if (app == row.app)
            return row;
    throw std::runtime_error("no paper row for " + app);
}

/** Equal-size streams for one app. */
inline std::vector<BitBuffer>
makeStreams(const apps::Application &app, int count, uint64_t bytes_each,
            uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (int i = 0; i < count; ++i)
        streams.push_back(app.generateStream(rng, bytes_each));
    return streams;
}

/** One full-system simulation's results, for tables and BENCH_PR.json. */
struct FleetRun
{
    double gbps = 0;           ///< Input GB/s (scaled if requested).
    double bytesPerCycle = 0;  ///< Input bytes per simulated cycle.
    double simWallSeconds = 0; ///< Host wall-clock spent simulating.
    int threads = 1;           ///< Host worker threads used.
    uint64_t cycles = 0;
    std::vector<system::ChannelStats> channels;
    system::RunReport report; ///< Per-channel / per-PU outcomes.
};

/** Run a system to completion and collect the bench-facing numbers. */
inline FleetRun
runFleet(const lang::Program &program,
         const std::vector<BitBuffer> &streams,
         const system::SystemConfig &config, double gbps_scale = 1.0)
{
    system::FleetSystem fleet_system(program, config, streams);
    FleetRun run;
    run.report = fleet_system.run();
    auto stats = fleet_system.stats();
    run.gbps = stats.inputGBps() * gbps_scale;
    run.bytesPerCycle = stats.bytesPerCycle();
    run.simWallSeconds = stats.wallSeconds;
    run.threads = stats.threadsUsed;
    run.cycles = stats.cycles;
    run.channels = std::move(stats.channels);
    return run;
}

/**
 * Simulate `pus_per_channel` units on a single channel and return the
 * aggregate GB/s scaled to `total_channels`.
 */
inline double
channelScaledGBps(const lang::Program &program,
                  const std::vector<BitBuffer> &streams, int total_channels,
                  system::SystemConfig config = {})
{
    config.numChannels = 1;
    return runFleet(program, streams, config, total_channels).gbps;
}

inline void
printHeader(const char *title, const char *what)
{
    std::printf("\n==== %s ====\n%s\n\n", title, what);
}

/** Schema version of the common metadata block below. Bump when a key
 * is renamed or removed (additions are backwards-compatible: every
 * BENCH_*.json consumer in CI scans line-wise for the keys it knows).
 * v3: cluster provenance (devices, link_latency_cycles, link_gbps). */
constexpr int kBenchJsonVersion = 3;

#ifndef FLEET_GIT_SHA
#define FLEET_GIT_SHA "unknown"
#endif

/**
 * Emit the run-provenance keys shared by every BENCH_*.json, right
 * after the opening '{': which bench, which commit, which PU backend,
 * and how many host threads — so an artifact downloaded from CI is
 * attributable without its workflow context. `threads` is the
 * configured worker count (0 = one per hardware thread); pass -1 for
 * benches where host threading does not apply. Cluster provenance
 * (v3): `devices` is the simulated device count (single-device benches
 * take the default), and `link_latency` / `link_gbps` describe the
 * inter-device link model when devices > 1 (0 otherwise).
 */
inline void
writeRunMetadata(std::FILE *f, const char *bench_name,
                 const char *backend, int threads, int devices = 1,
                 uint64_t link_latency = 0, double link_gbps = 0.0)
{
    std::fprintf(f, "  \"bench\": \"%s\",\n", bench_name);
    std::fprintf(f, "  \"bench_version\": %d,\n", kBenchJsonVersion);
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", FLEET_GIT_SHA);
    std::fprintf(f, "  \"backend\": \"%s\",\n", backend);
    if (threads >= 0)
        std::fprintf(f, "  \"threads\": %d,\n", threads);
    std::fprintf(f, "  \"devices\": %d,\n", devices);
    std::fprintf(f, "  \"link_latency_cycles\": %llu,\n",
                 static_cast<unsigned long long>(link_latency));
    std::fprintf(f, "  \"link_gbps\": %.3f,\n", link_gbps);
    std::fprintf(f, "  \"host_hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
#ifdef NDEBUG
    std::fprintf(f, "  \"release_build\": true,\n");
#else
    std::fprintf(f, "  \"release_build\": false,\n");
#endif
}

} // namespace bench
} // namespace fleet

#endif // FLEET_BENCH_BENCH_COMMON_H
