/**
 * @file
 * Regenerates the Section 7.2 divergence/vectorization experiments that
 * explain Fleet's advantage:
 *
 *  - GPU: running with identical data in every lane removes control-flow
 *    divergence; the paper measured +2.33x for JSON parsing and +1.25x
 *    for integer coding. Our warp model reruns the same experiment.
 *  - CPU: the Bloom filter is the only application with vectorizable
 *    per-token work (8 identical hashes); disabling vectorization cost
 *    the paper 3.79x. We measure the unrolled/SIMD-friendly loop against
 *    the scalar one.
 */

#include "apps/intcode.h"
#include "baseline/cpu.h"
#include "baseline/simt.h"
#include "baseline/timing.h"
#include "bench_common.h"

using namespace fleet;

int
main()
{
    bench::printHeader("Section 7.2: stream divergence and vectorization",
                       "GPU warp model: identical vs distinct per-lane "
                       "streams. CPU: vectorizable vs scalar Bloom loop.");

    Table gpu({"App", "Divergence factor (modelled)",
               "Paper speedup w/ identical data"});
    for (auto &app : apps::allApplications()) {
        Rng rng(11);
        std::vector<BitBuffer> distinct;
        for (int l = 0; l < 32; ++l)
            distinct.push_back(app->generateStream(rng, 4096));

        baseline::SimtParams params;
        auto div_run = baseline::simulateWarps(app->program(), distinct,
                                               params);
        // The divergence factor is the modelled analogue of the paper's
        // identical-data speedup: how much control divergence inflates
        // issued warp instructions. With identical per-lane data the
        // factor is exactly 1 (verified in tests).
        const char *paper = "-";
        if (app->name() == "JsonParsing")
            paper = "2.33x";
        else if (app->name() == "IntegerCoding")
            paper = "1.25x";
        gpu.row()
            .cell(app->name())
            .cell(div_run.divergenceFactor())
            .cell(paper);
    }
    std::printf("%s\n", gpu.str().c_str());

    // --- CPU vectorization (Bloom filter). --------------------------------
    auto app = apps::makeApplication("BloomFilter");
    std::vector<std::vector<uint8_t>> streams;
    for (int i = 0; i < 8; ++i) {
        Rng rng(100 + i);
        streams.push_back(app->generateStream(rng, 1 << 20).toBytes());
    }
    baseline::MeasureOptions opts;
    opts.threads = 1; // isolate per-core vectorization
    opts.repeats = 3;
    auto vec = baseline::measureCpu(*baseline::makeCpuKernel("BloomFilter",
                                                             true),
                                    streams, opts);
    auto scalar = baseline::measureCpu(
        *baseline::makeCpuKernel("BloomFilter", false), streams, opts);

    Table cpu({"Bloom filter CPU loop", "GB/s (1 thread)", "Speedup",
               "Paper"});
    cpu.row().cell("Scalar hash loop").cell(scalar.gbps()).cell(1.0, 2)
        .cell("1.00x");
    cpu.row()
        .cell("Unrolled/vectorizable")
        .cell(vec.gbps())
        .cell(vec.gbps() / scalar.gbps(), 2)
        .cell("3.79x");
    std::printf("%s\n", cpu.str().c_str());
    return 0;
}
