/**
 * @file
 * Regenerates Figure 8 of the paper: developer productivity measured in
 * lines of code. The paper compares each application's Fleet-language
 * source against its CUDA implementation; this reproduction compares the
 * C++-embedded Fleet program (the program() function of each app) against
 * the optimized CPU kernel (the closest analogue of the paper's CUDA,
 * which it reports as similar in size to the CPU code).
 */

#include "bench_common.h"
#include "util/loc.h"

using namespace fleet;

int
main()
{
    bench::printHeader(
        "Figure 8: lines of code, Fleet program vs optimized baseline",
        "Fleet column counts each app's program() body (the embedded-DSL "
        "unit);\nbaseline column counts the CPU kernel class (paper "
        "compared against CUDA of similar size).");

    struct Entry
    {
        const char *app;
        const char *fleetFile;
        const char *fleetMarker;
        const char *cpuMarker;
        int paperFleet;
        int paperCuda;
    };
    const Entry entries[] = {
        {"JsonParsing", "src/apps/json.cc", "JsonApp::program",
         "class JsonCpu", 201, 165},
        {"IntegerCoding", "src/apps/intcode.cc", "IntcodeApp::program",
         "class IntcodeCpu", 315, 155},
        {"DecisionTree", "src/apps/dtree.cc", "DtreeApp::program",
         "class DtreeCpu", 74, 63},
        {"SmithWaterman", "src/apps/sw.cc", "SwApp::program",
         "class SwCpu", 55, 45},
        {"Regex", "src/apps/regex.cc", "RegexApp::program",
         "class RegexCpu", 35, 65},
        {"BloomFilter", "src/apps/bloom.cc", "BloomApp::program",
         "class BloomCpu", 100, 58},
    };

    std::string root = FLEET_SOURCE_DIR "/";
    Table table({"App", "Fleet LoC", "Baseline LoC", "Paper Fleet",
                 "Paper CUDA"});
    for (const auto &entry : entries) {
        int fleet_loc = countRegionLines(root + entry.fleetFile,
                                         entry.fleetMarker);
        int cpu_loc = countRegionLines(root + "src/baseline/cpu.cc",
                                       entry.cpuMarker);
        table.row()
            .cell(entry.app)
            .cell(fleet_loc)
            .cell(cpu_loc)
            .cell(entry.paperFleet)
            .cell(entry.paperCuda);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("As in the paper, the regex Fleet 'program' is host code "
                "that generates the circuit\nfrom the pattern; its NFA "
                "construction (regex_nfa.cc) is library code shared with "
                "the baseline.\n");
    return 0;
}
