/**
 * @file
 * Chaos soak for the self-healing serving layer (ISSUE 7). Open-loop
 * load (serve/load_gen.h) is driven through a paced FleetService while
 * a seeded FaultPlan storm (fault/fault.h: latency spikes, backpressure
 * windows, corrupted beats, truncated streams) batters the simulated
 * hardware, with the full recovery stack armed: deterministic retry,
 * per-job deadlines, slot quarantine, and halted-channel requeue.
 *
 * The soak is an *assertion harness*, not a measurement: it fails
 * (exit 1) unless, for every storm seed,
 *
 *  - every ticket reaches a terminal state (no hangs, no strands);
 *  - every Ok output is bit-identical to the fault-free functional
 *    golden for its stream — recovery never serves corrupted bytes;
 *  - the complete session history (attempts, requeues, timestamps,
 *    outputs) is bit-identical across PU backends and host thread
 *    counts — the recovery schedule is part of the determinism fence;
 *  - the storms actually exercised the retry path (total retries > 0
 *    summed over seeds — a soak that never retried proves nothing).
 *
 * A separate fault-free *halt drill* forces one channel into the
 * Halted state mid-soak (exactly a watchdog trip's landing) and
 * requires every in-flight job to be re-queued onto the surviving
 * channel and served Ok, with ServiceStats::liveSlots reflecting the
 * degraded capacity.
 *
 * Flags:
 *  --smoke       short CI configuration (fewer jobs, fewer variants).
 *  --json PATH   write per-seed results as JSON (BENCH_CHAOS.json).
 *  --seed S      add a storm seed (repeatable; default 2026 2027 2028).
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/load_gen.h"
#include "serve/service.h"
#include "sim/simulator.h"
#include "system/pu_backend.h"

using namespace fleet;

namespace {

struct RunOptions
{
    bool smoke = false;
    std::string jsonPath;
    std::vector<uint64_t> seeds;
};

struct SoakShape
{
    int slots = 8;
    int channels = 2;
    uint64_t regionBytes = 4096;
    uint64_t jobs = 120;
    uint64_t meanInterarrivalCycles = 600;
    /** Every deadlinedEvery-th job carries this deadline. */
    uint64_t deadlineEvery = 4;
    uint64_t deadlineCycles = 60000;
};

struct SoakResult
{
    uint64_t seed = 0;
    uint64_t jobs = 0;
    uint64_t okJobs = 0;
    uint64_t truncated = 0;      ///< Completed over injected short streams.
    uint64_t contained = 0;      ///< Parity/overflow containment.
    uint64_t deadlineKilled = 0;
    uint64_t retries = 0;
    uint64_t requeued = 0;
    int quarantinedSlots = 0;
    uint64_t nonTerminal = 0;    ///< Tickets never completed (gate: 0).
    uint64_t stranded = 0;       ///< InvalidState strands (gate: 0).
    uint64_t okMismatches = 0;   ///< Ok outputs != golden (gate: 0).
    uint64_t simCycles = 0;
    /** Full session history: the determinism signature (JobReport
     * operator== covers status, outputs, attempts, requeues, and every
     * simulated timestamp; host wall fields are excluded). */
    std::vector<runtime::JobReport> sessionReports;
};

serve::ServiceConfig
soakConfig(const SoakShape &shape, uint64_t storm_seed,
           system::PuBackend backend, int threads)
{
    serve::ServiceConfig config;
    config.session.system.numChannels = shape.channels;
    config.session.system.numThreads = threads;
    config.session.system.backend = backend;
    config.session.system.inputRegionBytes = shape.regionBytes;
    config.session.system.faults = fault::FaultPlan::fromSeed(storm_seed);
    config.session.numSlots = shape.slots;
    config.session.epochCycles = 512;
    config.session.quarantineAfterFaults = 3;
    config.session.requeueStranded = true;
    config.maxQueueDepth = 64;
    config.policy = serve::AdmissionPolicy::Block;
    config.backgroundThread = false; // paced: deterministic soak
    config.retry.maxAttempts = 3;
    config.retry.backoffCycles = 64;
    return config;
}

/** One storm: open-loop arrivals against the fault plan from `seed`. */
SoakResult
runSoak(const apps::Application &app, const SoakShape &shape,
        uint64_t seed, system::PuBackend backend, int threads)
{
    serve::LoadSpec spec;
    spec.jobs = shape.jobs;
    spec.meanInterarrivalCycles = double(shape.meanInterarrivalCycles);
    spec.minJobBytes = shape.regionBytes / 8;
    spec.maxJobBytes = shape.regionBytes / 2;
    spec.seed = seed ^ 0x50a4;
    auto arrivals = serve::makeArrivals(spec);

    Rng stream_rng(seed ^ 0x5eed);
    std::vector<BitBuffer> streams;
    streams.reserve(arrivals.size());
    for (const auto &arrival : arrivals)
        streams.push_back(
            app.generateStream(stream_rng, arrival.streamBytes));

    serve::FleetService service(
        app.program(), soakConfig(shape, seed, backend, threads));
    std::vector<serve::JobTicket> tickets;
    tickets.reserve(arrivals.size());

    // Warp-offset open-loop driver (see bench/serve_latency.cc): the
    // session clock only advances while jobs run, so idle gaps warp
    // forward to the next scheduled arrival.
    size_t next = 0;
    uint64_t offset = arrivals.empty() ? 0 : arrivals.front().cycle;
    for (;;) {
        uint64_t now = service.stats().simCycles;
        while (next < arrivals.size() &&
               arrivals[next].cycle <= now + offset) {
            serve::SubmitOptions options;
            if (shape.deadlineEvery > 0 &&
                next % shape.deadlineEvery == shape.deadlineEvery - 1)
                options.deadlineCycles = shape.deadlineCycles;
            tickets.push_back(service.submitAt(
                BitBuffer(streams[next]),
                arrivals[next].cycle - offset, options));
            ++next;
        }
        bool work = service.pump();
        if (!work) {
            if (next >= arrivals.size())
                break;
            uint64_t vnow = now + offset;
            if (arrivals[next].cycle > vnow)
                offset += arrivals[next].cycle - vnow;
        }
    }
    service.shutdown();

    SoakResult result;
    result.seed = seed;
    result.jobs = tickets.size();
    for (size_t j = 0; j < tickets.size(); ++j) {
        if (!tickets[j].ready()) {
            ++result.nonTerminal;
            continue;
        }
        const runtime::JobReport &report = tickets[j].report();
        switch (report.status.code) {
        case StatusCode::Ok: {
            ++result.okJobs;
            sim::FunctionalSimulator golden(app.program());
            if (!(report.output == golden.run(streams[j]).output))
                ++result.okMismatches;
            break;
        }
        case StatusCode::StreamTruncated:
            ++result.truncated;
            break;
        case StatusCode::ParityError:
        case StatusCode::OutputOverflow:
            ++result.contained;
            break;
        case StatusCode::DeadlineExceeded:
            ++result.deadlineKilled;
            break;
        case StatusCode::InvalidState:
            ++result.stranded;
            break;
        default:
            break; // watchdog/backpressure containment: terminal, fine
        }
    }
    serve::ServiceStats stats = service.stats();
    result.retries = stats.retries;
    result.requeued = stats.requeued;
    result.quarantinedSlots = stats.quarantinedSlots;
    result.simCycles = stats.simCycles;
    result.sessionReports = service.session().reports();
    return result;
}

/**
 * Fault-free halt drill: arm jobs on both channels, force channel 0
 * into the Halted state mid-flight, and require the survivors to serve
 * everything Ok (requeue, not strand) at degraded capacity.
 */
bool
runHaltDrill(const apps::Application &app)
{
    serve::ServiceConfig config;
    config.session.system.numChannels = 2;
    config.session.system.numThreads = 1;
    config.session.system.inputRegionBytes = 4096;
    config.session.numSlots = 2; // one per channel
    config.session.epochCycles = 256;
    config.session.requeueStranded = true;
    config.maxQueueDepth = 64;
    config.backgroundThread = false;
    serve::FleetService service(app.program(), config);

    Rng rng(0xd411);
    std::vector<BitBuffer> streams;
    std::vector<serve::JobTicket> tickets;
    for (int j = 0; j < 8; ++j)
        streams.push_back(app.generateStream(rng, 1024));
    for (const auto &stream : streams)
        tickets.push_back(service.submit(BitBuffer(stream)));

    service.pump(); // arms one job on each channel, both still running
    service.injectChannelHalt(0);
    while (service.pump()) {
    }
    service.shutdown();

    bool ok = true;
    for (size_t j = 0; j < tickets.size(); ++j) {
        const runtime::JobReport &report = tickets[j].report();
        if (!report.ok() || report.channel != 1) {
            std::fprintf(stderr,
                         "HALT DRILL: job %zu not served by the "
                         "survivor: channel=%d status=%s\n",
                         j, report.channel,
                         report.status.toString().c_str());
            ok = false;
            continue;
        }
        sim::FunctionalSimulator golden(app.program());
        if (!(report.output == golden.run(streams[j]).output)) {
            std::fprintf(stderr,
                         "HALT DRILL: job %zu output != golden after "
                         "requeue\n",
                         j);
            ok = false;
        }
    }
    serve::ServiceStats stats = service.stats();
    if (stats.requeued < 1) {
        std::fprintf(stderr,
                     "HALT DRILL: no job was requeued off the halted "
                     "channel\n");
        ok = false;
    }
    if (stats.liveSlots != 1) {
        std::fprintf(stderr,
                     "HALT DRILL: liveSlots=%d after losing one of two "
                     "channels (want 1)\n",
                     stats.liveSlots);
        ok = false;
    }
    if (ok)
        std::printf("halt drill: %zu jobs served Ok on the survivor "
                    "(requeued=%llu, liveSlots=%d)\n",
                    tickets.size(),
                    static_cast<unsigned long long>(stats.requeued),
                    stats.liveSlots);
    return ok;
}

bool
writeJson(const std::string &path, const std::string &app,
          const RunOptions &opts, const SoakShape &shape,
          const std::vector<SoakResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n");
    bench::writeRunMetadata(f, "chaos_soak", "fast", 1);
    std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
    std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
    std::fprintf(f, "  \"slots\": %d,\n", shape.slots);
    std::fprintf(f, "  \"channels\": %d,\n", shape.channels);
    std::fprintf(f, "  \"retry_max_attempts\": 3,\n");
    std::fprintf(f, "  \"seeds\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const SoakResult &r = results[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"seed\": %llu,\n",
                     static_cast<unsigned long long>(r.seed));
        std::fprintf(f, "      \"jobs\": %llu,\n",
                     static_cast<unsigned long long>(r.jobs));
        std::fprintf(f, "      \"ok\": %llu,\n",
                     static_cast<unsigned long long>(r.okJobs));
        std::fprintf(f, "      \"truncated\": %llu,\n",
                     static_cast<unsigned long long>(r.truncated));
        std::fprintf(f, "      \"contained\": %llu,\n",
                     static_cast<unsigned long long>(r.contained));
        std::fprintf(f, "      \"deadline_killed\": %llu,\n",
                     static_cast<unsigned long long>(r.deadlineKilled));
        std::fprintf(f, "      \"retries\": %llu,\n",
                     static_cast<unsigned long long>(r.retries));
        std::fprintf(f, "      \"requeued\": %llu,\n",
                     static_cast<unsigned long long>(r.requeued));
        std::fprintf(f, "      \"quarantined_slots\": %d,\n",
                     r.quarantinedSlots);
        std::fprintf(f, "      \"stranded\": %llu,\n",
                     static_cast<unsigned long long>(r.stranded));
        std::fprintf(f, "      \"ok_mismatches\": %llu,\n",
                     static_cast<unsigned long long>(r.okMismatches));
        std::fprintf(f, "      \"sim_cycles\": %llu\n",
                     static_cast<unsigned long long>(r.simCycles));
        std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            opts.seeds.push_back(std::strtoull(argv[++i], nullptr, 0));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH] "
                         "[--seed S]...\n",
                         argv[0]);
            return 2;
        }
    }
    if (opts.seeds.empty())
        opts.seeds = {2026, 2027, 2028};

    SoakShape shape;
    if (opts.smoke)
        shape.jobs = 48;

    auto apps = apps::allApplications();
    const apps::Application &app = *apps.front();

    bench::printHeader(
        "Chaos soak: recovery under seeded fault storms",
        "Open-loop load + FaultPlan storms with retry, deadlines, "
        "quarantine, and requeue armed; every gate is an assertion.");
    std::printf("app=%s slots=%d channels=%d jobs/seed=%llu seeds=%zu "
                "%s\n\n",
                app.name().c_str(), shape.slots, shape.channels,
                static_cast<unsigned long long>(shape.jobs),
                opts.seeds.size(), opts.smoke ? "(smoke)" : "");

    // Determinism variants replayed against the Fast/1 reference for
    // every seed. RtlInterp is the slow reference engine; the full run
    // covers it, smoke keeps CI latency down with the other four
    // (rtljit silently demotes to rtltape when no host compiler is
    // available — the determinism fence holds either way).
    struct Variant
    {
        system::PuBackend backend;
        int threads;
        std::string label;
    };
    auto makeVariant = [](system::PuBackend backend, int threads) {
        return Variant{backend, threads,
                       std::string(system::puBackendName(backend)) +
                           "/" + std::to_string(threads)};
    };
    std::vector<Variant> variants = {
        makeVariant(system::PuBackend::Fast, 4),
        makeVariant(system::PuBackend::Rtl, 4),
        makeVariant(system::PuBackend::RtlTape, 1),
        makeVariant(system::PuBackend::RtlJit, 2),
    };
    if (!opts.smoke)
        variants.push_back(makeVariant(system::PuBackend::RtlInterp, 2));

    bool ok = true;
    std::vector<SoakResult> results;
    uint64_t total_retries = 0;
    for (uint64_t seed : opts.seeds) {
        SoakResult reference =
            runSoak(app, shape, seed, system::PuBackend::Fast, 1);
        total_retries += reference.retries;

        if (reference.nonTerminal != 0) {
            std::fprintf(stderr,
                         "GATE: seed %llu: %llu tickets never reached "
                         "a terminal state\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(
                             reference.nonTerminal));
            ok = false;
        }
        if (reference.stranded != 0) {
            std::fprintf(stderr,
                         "GATE: seed %llu: %llu jobs stranded (zero-"
                         "strand gate)\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(
                             reference.stranded));
            ok = false;
        }
        if (reference.okMismatches != 0) {
            std::fprintf(stderr,
                         "GATE: seed %llu: %llu Ok outputs differ from "
                         "the fault-free golden\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(
                             reference.okMismatches));
            ok = false;
        }

        for (const Variant &variant : variants) {
            SoakResult replay = runSoak(app, shape, seed,
                                        variant.backend,
                                        variant.threads);
            bool same = replay.sessionReports.size() ==
                        reference.sessionReports.size();
            for (size_t j = 0; same && j < replay.sessionReports.size();
                 ++j)
                same = replay.sessionReports[j] ==
                       reference.sessionReports[j];
            if (!same) {
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION: seed %llu: %s "
                             "diverged from the Fast/1 reference\n",
                             static_cast<unsigned long long>(seed),
                             variant.label.c_str());
                ok = false;
            }
        }
        std::printf("seed %llu: ok=%llu truncated=%llu contained=%llu "
                    "deadline=%llu retries=%llu requeued=%llu "
                    "quarantined=%d (%zu variants bit-identical)\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(reference.okJobs),
                    static_cast<unsigned long long>(reference.truncated),
                    static_cast<unsigned long long>(reference.contained),
                    static_cast<unsigned long long>(
                        reference.deadlineKilled),
                    static_cast<unsigned long long>(reference.retries),
                    static_cast<unsigned long long>(reference.requeued),
                    reference.quarantinedSlots, variants.size());
        results.push_back(std::move(reference));
    }

    if (total_retries == 0) {
        std::fprintf(stderr,
                     "GATE: no storm triggered a retry — the soak never "
                     "exercised the recovery path\n");
        ok = false;
    }

    std::printf("\n");
    if (!runHaltDrill(app))
        ok = false;

    Table table({"Seed", "Jobs", "Ok", "Trunc", "Contain", "Deadline",
                 "Retries", "Requeue", "Quar", "Sim cycles"});
    for (const auto &r : results)
        table.row()
            .cell(r.seed)
            .cell(r.jobs)
            .cell(r.okJobs)
            .cell(r.truncated)
            .cell(r.contained)
            .cell(r.deadlineKilled)
            .cell(r.retries)
            .cell(r.requeued)
            .cell(r.quarantinedSlots)
            .cell(r.simCycles);
    std::printf("\n%s\n", table.str().c_str());

    if (!opts.jsonPath.empty() &&
        !writeJson(opts.jsonPath, app.name(), opts, shape, results))
        ok = false;
    std::printf("%s\n", ok ? "CHAOS SOAK PASS" : "CHAOS SOAK FAIL");
    return ok ? 0 : 1;
}
