/**
 * @file
 * Memory-controller design-space ablations beyond the paper's Figure 9
 * (DESIGN.md's per-experiment index lists these as our own ablations):
 *
 *  - burst-register count sweep (r = 1 .. 32): locates the knee where the
 *    controller saturates the bus (the paper picked r = 16 = 512/w);
 *  - burst size sweep: the bandwidth/resource tradeoff of Section 5;
 *  - blocking vs non-blocking output addressing under a filter workload
 *    with divergent output rates (the paper's rationale for defaulting
 *    the output addressing unit to non-blocking);
 *  - channel scaling 1..4.
 */

#include "bench_common.h"
#include "lang/builder.h"

using namespace fleet;

namespace {

lang::Program
dropAllUnit()
{
    lang::ProgramBuilder b("DropAll", 32, 32);
    lang::Value seen = b.reg("seen", 1, 0);
    b.assign(seen, lang::Value::lit(1, 1));
    return b.finish();
}

/** Filter unit whose selectivity depends on a per-stream config byte:
 * some PUs emit almost everything, others almost nothing. */
lang::Program
filterUnit()
{
    lang::ProgramBuilder b("Filter", 8, 8);
    lang::Value threshold = b.reg("threshold", 8, 0);
    lang::Value configured = b.reg("configured", 1, 0);
    b.if_(!b.streamFinished(), [&] {
        b.if_(configured == 0, [&] {
            b.assign(threshold, b.input());
            b.assign(configured, lang::Value::lit(1, 1));
        }).elseIf(b.input() < threshold, [&] {
            b.emit(b.input());
        });
    });
    return b.finish();
}

std::vector<BitBuffer>
randomStreams(int count, uint64_t bytes, int token_width, uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < count; ++p) {
        BitBuffer stream;
        for (uint64_t i = 0; i < bytes * 8 / token_width; ++i)
            stream.appendBits(rng.next(), token_width);
        streams.push_back(std::move(stream));
    }
    return streams;
}

} // namespace

int
main()
{
    bench::printHeader("Ablation: memory controller design space",
                       "All runs: 64 drop-all PUs on one channel unless "
                       "noted; GB/s scaled x4 channels.");

    // --- Burst register sweep. --------------------------------------------
    {
        Table table({"Burst registers r", "GB/s (4ch)", "% of bus"});
        for (int r : {1, 2, 4, 8, 16, 32}) {
            system::SystemConfig config;
            config.inputCtrl.numBurstRegs = r;
            auto streams = randomStreams(64, 16384, 32, 21);
            double gbps = bench::channelScaledGBps(dropAllUnit(), streams,
                                                   4, config);
            table.row().cell(r).cell(gbps).cell(100.0 * gbps / 32.0, 0);
        }
        std::printf("%s\n", table.str().c_str());
    }

    // --- Burst size sweep. -------------------------------------------------
    {
        Table table({"Burst size (bits)", "GB/s (4ch)",
                     "Burst-reg FFs/channel"});
        for (int burst : {512, 1024, 2048, 4096}) {
            system::SystemConfig config;
            config.inputCtrl.burstBits = burst;
            config.outputCtrl.burstBits = burst;
            auto streams = randomStreams(64, 16384, 32, 22);
            double gbps = bench::channelScaledGBps(dropAllUnit(), streams,
                                                   4, config);
            table.row()
                .cell(burst)
                .cell(gbps)
                .cell(uint64_t(16) * burst * 2);
        }
        std::printf("%s\n", table.str().c_str());
    }

    // --- Per-PU buffer capacity (double buffering). -------------------------
    {
        // With few fast consumers the refetch latency is exposed; extra
        // buffer capacity hides it (the paper fixes capacity at one
        // burst to save BRAM).
        Table table({"Buffer capacity (bursts)", "GB/s (4ch, 16 PUs/ch)",
                     "BRAM36 per PU (in+out)"});
        for (int bufs : {1, 2, 4}) {
            system::SystemConfig config;
            config.inputCtrl.bufferBursts = bufs;
            config.outputCtrl.bufferBursts = bufs;
            auto streams = randomStreams(16, 32768, 32, 25);
            double gbps = bench::channelScaledGBps(dropAllUnit(), streams,
                                                   4, config);
            table.row().cell(bufs).cell(gbps).cell(2 * bufs);
        }
        std::printf("%s\n", table.str().c_str());
    }

    // --- Blocking vs non-blocking output addressing. -----------------------
    {
        Table table({"Output addressing", "Completion cycles",
                     "Output GB/s"});
        for (bool blocking : {false, true}) {
            system::SystemConfig config;
            config.numChannels = 1;
            config.outputCtrl.blockingAddressing = blocking;
            // Threshold byte per stream: alternate near-0% and near-100%
            // selectivity, the divergent-output-rate case of Section 5.
            std::vector<BitBuffer> streams;
            Rng rng(23);
            for (int p = 0; p < 16; ++p) {
                BitBuffer stream;
                stream.appendBits(p % 2 == 0 ? 4 : 252, 8);
                for (int i = 0; i < 16384; ++i)
                    stream.appendBits(rng.next(), 8);
                streams.push_back(std::move(stream));
            }
            const char *label = blocking ? "blocking"
                                         : "non-blocking (default)";
            system::FleetSystem fleet_system(filterUnit(), config,
                                             streams);
            const auto &report = fleet_system.run();
            if (report.allOk()) {
                auto stats = fleet_system.stats();
                table.row()
                    .cell(label)
                    .cell(stats.cycles)
                    .cell(stats.outputGBps());
            } else {
                // Blocking output addressing can genuinely deadlock with
                // divergent filter rates: the input addressing unit waits
                // on a full PU whose output waits on another PU's
                // unfilled burst — the pathology behind Section 5's
                // non-blocking default. The watchdog contains it as a
                // per-channel WatchdogStall outcome.
                table.row().cell(label).cell("DEADLOCK").cell("-");
            }
        }
        std::printf("%s\n", table.str().c_str());
    }

    // --- Channel scaling. ---------------------------------------------------
    {
        Table table({"Channels", "GB/s", "Scaling"});
        double base = 0;
        for (int channels : {1, 2, 4}) {
            system::SystemConfig config;
            config.numChannels = channels;
            auto streams = randomStreams(64 * channels, 8192, 32, 24);
            system::FleetSystem fleet_system(dropAllUnit(), config,
                                             streams);
            fleet_system.run();
            double gbps = fleet_system.stats().inputGBps();
            if (channels == 1)
                base = gbps;
            table.row().cell(channels).cell(gbps).cell(gbps / base, 2);
        }
        std::printf("%s\n", table.str().c_str());
    }
    return 0;
}
