/**
 * @file
 * Microbenchmark of the four RTL simulation engines on the six paper
 * applications: the per-node interpreter (rtl/sim.h), the compiled
 * scalar tape (rtl/tape.h), the PU-batched structure-of-arrays
 * evaluator (rtl/batch_sim.h), and the native JIT-compiled batch
 * (rtl/jit.h — the batch evaluator with the tape lowered to a compiled
 * shared object). Each engine is driven through the same port-level
 * stimulus — random tokens, always-valid input, always-ready output —
 * and its outputs are folded into a running hash, so the benchmark
 * doubles as an engine-equivalence check: all engines (and every batch
 * lane against its own scalar replay) must produce the same hash or
 * the run fails.
 *
 * Reported speedups:
 *  - tape:  interpreter time / scalar-tape time, one PU.
 *  - batch: per-PU speedup at `lanes` PUs per group, i.e.
 *           (interpreter time x lanes) / batched time — the ratio of
 *           simulating `lanes` units with the interpreter vs. one
 *           vectorized batch.
 *  - jit:   steady-state batch time / jit time (same lanes, compile
 *           time excluded), plus the compile cost itself and the
 *           amortization point: how many simulated cycles of the whole
 *           group the one-time native compile takes to pay back.
 *
 * Per-app JSON also records the circuit-optimizer pass statistics
 * (nodes before/after constant folding + DCE, dead nodes removed), so
 * optimizer regressions show up in the bench artifact, not just in
 * unit tests.
 *
 * Modes:
 *  --smoke       short CI configuration; also *gates*: exits non-zero on
 *                any equivalence failure, and (in NDEBUG builds, where
 *                timing is meaningful) on tape speedup < 1.3x, batched
 *                per-PU speedup < 5x, or jit speedup over batch < 1.5x
 *                — regression floors ~30% under the measured minima
 *                (tape 1.8-2.4x, batch 8.4-19x per PU, jit 2-4x over
 *                batch) — so a performance regression fails the bench
 *                job the same way a correctness one does. The jit gate
 *                is skipped (loudly) when no host toolchain is
 *                available or FLEET_JIT_DISABLE is set.
 *  --json PATH   write per-app results as JSON.
 *  --lanes N     batch width (default 64, the paper's PUs-per-group
 *                order of magnitude).
 *  --cycles N    simulated cycles per engine (default 20000; smoke 3000).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "compile/compiler.h"
#include "rtl/batch_sim.h"
#include "bench_common.h"
#include "rtl/jit.h"
#include "rtl/sim.h"
#include "rtl/tape.h"
#include "system/pu_backend.h"
#include "util/rng.h"
#include "util/table.h"

using namespace fleet;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Minimal JSON string escaping for status messages. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            c = ' ';
        out += c;
    }
    return out;
}

/** FNV-1a fold of one observed output tuple. */
inline uint64_t
fold(uint64_t h, uint64_t v)
{
    return (h ^ v) * 0x100000001b3ull;
}

struct Stimulus
{
    const compile::CompiledUnit &unit;
    int tokenWidth;
};

/**
 * Drive `cycles` cycles of seeded random stimulus through any engine
 * with the Simulator cycle contract, hashing the four output ports each
 * cycle. The template keeps one driver for all three engines (the
 * batched engine is adapted below).
 */
template <typename Sim>
uint64_t
drive(Sim &sim, const Stimulus &st, uint64_t seed, int cycles)
{
    Rng rng(seed);
    sim.reset();
    // The handshake inputs are loop-invariant; setting them once keeps
    // the timed loop measuring the engine, not the driver. (Input
    // slots are engine state: eval/step never overwrite them.)
    sim.setInput(st.unit.inInputValid, 1);
    sim.setInput(st.unit.inInputFinished, 0);
    sim.setInput(st.unit.inOutputReady, 1);
    uint64_t h = 0xcbf29ce484222325ull;
    for (int cycle = 0; cycle < cycles; ++cycle) {
        sim.setInput(st.unit.inInputToken,
                     rng.next() & mask64(st.tokenWidth));
        sim.evalComb();
        h = fold(h, sim.value(st.unit.outInputReady));
        h = fold(h, sim.value(st.unit.outOutputToken));
        h = fold(h, sim.value(st.unit.outOutputValid));
        h = fold(h, sim.value(st.unit.outOutputFinished));
        sim.step();
    }
    return h;
}

/** Same stimulus and hash, all lanes advancing through one evalAll()
 * and one step() per cycle; lane l replays the scalar run with seed
 * base_seed + l. Returns the per-lane hashes. */
std::vector<uint64_t>
driveBatch(rtl::BatchSimulator &batch, const Stimulus &st,
           uint64_t base_seed, int cycles)
{
    const int lanes = batch.lanes();
    std::vector<Rng> rngs;
    for (int l = 0; l < lanes; ++l)
        rngs.emplace_back(base_seed + l);
    batch.reset();
    // Loop-invariant handshake inputs, set once per lane (see drive()).
    for (int l = 0; l < lanes; ++l) {
        batch.setInput(l, st.unit.inInputValid, 1);
        batch.setInput(l, st.unit.inInputFinished, 0);
        batch.setInput(l, st.unit.inOutputReady, 1);
    }
    // Hoisted node-to-slot lookups for the per-cycle output reads: with
    // 4 ports x many lanes each cycle, the lookup would otherwise be a
    // measurable slice of the timed loop (it is driver work, identical
    // for the interpreted and jit batch).
    const auto &tp = batch.tape();
    const int32_t s_ready = tp.slotOf(st.unit.outInputReady);
    const int32_t s_token = tp.slotOf(st.unit.outOutputToken);
    const int32_t s_valid = tp.slotOf(st.unit.outOutputValid);
    const int32_t s_fin = tp.slotOf(st.unit.outOutputFinished);
    std::vector<uint64_t> h(lanes, 0xcbf29ce484222325ull);
    for (int cycle = 0; cycle < cycles; ++cycle) {
        for (int l = 0; l < lanes; ++l)
            batch.setInput(l, st.unit.inInputToken,
                           rngs[l].next() & mask64(st.tokenWidth));
        batch.evalAll();
        for (int l = 0; l < lanes; ++l) {
            h[l] = fold(h[l], batch.valueAtSlot(l, s_ready));
            h[l] = fold(h[l], batch.valueAtSlot(l, s_token));
            h[l] = fold(h[l], batch.valueAtSlot(l, s_valid));
            h[l] = fold(h[l], batch.valueAtSlot(l, s_fin));
        }
        batch.step();
    }
    return h;
}

struct AppResult
{
    std::string name;
    uint64_t circuitNodes = 0;
    uint64_t tapeOps = 0;
    uint64_t nodesEliminated = 0;
    // Circuit-optimizer pass statistics (rtl/opt.h, carried on the
    // tape): node counts before and after constant folding + DCE.
    uint64_t optSourceNodes = 0;
    uint64_t optResultNodes = 0;
    uint64_t optDeadNodes = 0;
    int lanes = 0;
    int cycles = 0;
    double interpS = 0;
    double tapeS = 0;
    double batchS = 0;
    double tapeSpeedup = 0;
    double batchPerPuSpeedup = 0;
    // Native JIT batch (absent when the toolchain is unavailable).
    bool jitAvailable = false;
    bool jitFromDiskCache = false;
    double jitS = 0;
    double jitCompileS = 0;
    double jitOverBatchSpeedup = 0;
    double jitPerPuSpeedup = 0;
    // Simulated group-cycles after which the one-time native compile
    // has paid for itself vs. running the interpreted batch
    // (compile_s / per-cycle savings); 0 when the jit is not faster.
    double jitAmortCycles = 0;
    std::string jitStatus; // why unavailable, for the JSON artifact
    bool equivalent = false;
};

AppResult
evaluateApp(const apps::Application &app, int lanes, int cycles,
            uint64_t seed)
{
    AppResult r;
    r.name = app.name();
    r.lanes = lanes;
    r.cycles = cycles;

    lang::Program program = app.program();
    auto unit = compile::compileProgram(program);
    Stimulus st{unit, program.inputTokenWidth};
    r.circuitNodes = unit.circuit.nodes().size();

    auto tape_program = std::make_shared<const rtl::TapeProgram>(
        rtl::TapeProgram::compile(unit.circuit));
    r.tapeOps = tape_program->ops.size();
    r.nodesEliminated = tape_program->nodesEliminated;
    r.optSourceNodes = tape_program->optSourceNodes;
    r.optResultNodes = tape_program->optResultNodes;
    r.optDeadNodes = tape_program->optDeadNodes;

    // Native JIT compile (timed separately from steady-state eval).
    rtl::JitOptions jopts;
    jopts.lanes = lanes;
    Status jit_status;
    double c0 = now();
    auto jit = rtl::JitProgram::compile(*tape_program, jopts,
                                        &jit_status);
    double c1 = now();
    r.jitAvailable = jit != nullptr;
    if (jit) {
        r.jitCompileS = c1 - c0;
        r.jitFromDiskCache = jit->fromDiskCache();
    } else {
        r.jitStatus = jit_status.toString();
    }

    // Engine equivalence first (untimed): the interpreter, the tape, and
    // batch lane 0 replay seed `seed`; every other batch lane replays
    // its own scalar-tape run. The jit batch must match the interpreted
    // batch lane-for-lane.
    rtl::Simulator interp(unit.circuit);
    rtl::TapeSimulator tape(tape_program);
    rtl::BatchSimulator batch(tape_program, lanes);
    const int check_cycles = std::min(cycles, 2000);
    uint64_t h_interp = drive(interp, st, seed, check_cycles);
    uint64_t h_tape = drive(tape, st, seed, check_cycles);
    auto h_lanes = driveBatch(batch, st, seed, check_cycles);
    r.equivalent = h_interp == h_tape && h_lanes[0] == h_interp;
    for (int l = 1; l < lanes && r.equivalent; ++l) {
        rtl::TapeSimulator replay(tape_program);
        r.equivalent = h_lanes[l] == drive(replay, st, seed + l,
                                           check_cycles);
    }
    rtl::BatchSimulator jbatch(tape_program, lanes);
    if (jit) {
        jbatch.attachJit(jit);
        auto h_jit = driveBatch(jbatch, st, seed, check_cycles);
        r.equivalent = r.equivalent && h_jit == h_lanes;
    }

    // Timed runs, identical stimulus volume per engine per PU. Each
    // engine takes the best of kReps passes: the per-app runs are
    // short (down to sub-millisecond for the smallest circuits), so a
    // single pass on a busy host can be 30%+ off and flap the speedup
    // gates; the minimum is the standard noise-robust estimator for
    // deterministic CPU-bound work.
    constexpr int kReps = 3;
    uint64_t sink = 0;
    auto bestOf = [&](auto &&run) {
        double best = 1e300;
        for (int rep = 0; rep < kReps; ++rep) {
            double t0 = now();
            sink = fold(sink, run());
            best = std::min(best, now() - t0);
        }
        return best;
    };
    r.interpS = bestOf([&] { return drive(interp, st, seed, cycles); });
    r.tapeS = bestOf([&] { return drive(tape, st, seed, cycles); });
    r.batchS = bestOf(
        [&] { return driveBatch(batch, st, seed, cycles)[lanes - 1]; });
    if (jit)
        r.jitS = bestOf([&] {
            return driveBatch(jbatch, st, seed, cycles)[lanes - 1];
        });
    if (sink == 0) // Keep the measured work observable.
        std::printf("(hash sink collision)\n");

    r.tapeSpeedup = r.tapeS > 0 ? r.interpS / r.tapeS : 0;
    r.batchPerPuSpeedup =
        r.batchS > 0 ? r.interpS * lanes / r.batchS : 0;
    if (jit) {
        r.jitOverBatchSpeedup = r.jitS > 0 ? r.batchS / r.jitS : 0;
        r.jitPerPuSpeedup = r.jitS > 0 ? r.interpS * lanes / r.jitS : 0;
        double savings_per_cycle = (r.batchS - r.jitS) / cycles;
        r.jitAmortCycles = savings_per_cycle > 0
                               ? r.jitCompileS / savings_per_cycle
                               : 0;
    }
    return r;
}

bool
writeJson(const std::string &path, const std::vector<AppResult> &results,
          bool smoke)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n");
    // Single-PU engine microbench: host threading does not apply, and
    // the "backend" axis *is* the result rows (interp vs tape vs batch).
    bench::writeRunMetadata(f, "micro_rtl_engines", "rtl-engines", -1);
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    // Canonical engine names from the shared backend registry, in row
    // order (interp / tape / batch / jit columns below).
    std::fprintf(
        f, "  \"engines\": [\"%s\", \"%s\", \"%s\", \"%s\"],\n",
        system::puBackendName(system::PuBackend::RtlInterp),
        system::puBackendName(system::PuBackend::RtlTape),
        system::puBackendName(system::PuBackend::Rtl),
        system::puBackendName(system::PuBackend::RtlJit));
    std::fprintf(f, "  \"apps\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const AppResult &r = results[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"app\": \"%s\",\n", r.name.c_str());
        std::fprintf(f, "      \"circuit_nodes\": %llu,\n",
                     static_cast<unsigned long long>(r.circuitNodes));
        std::fprintf(f, "      \"tape_ops\": %llu,\n",
                     static_cast<unsigned long long>(r.tapeOps));
        std::fprintf(f, "      \"nodes_eliminated\": %llu,\n",
                     static_cast<unsigned long long>(r.nodesEliminated));
        std::fprintf(f, "      \"opt_source_nodes\": %llu,\n",
                     static_cast<unsigned long long>(r.optSourceNodes));
        std::fprintf(f, "      \"opt_result_nodes\": %llu,\n",
                     static_cast<unsigned long long>(r.optResultNodes));
        std::fprintf(f, "      \"opt_dead_nodes\": %llu,\n",
                     static_cast<unsigned long long>(r.optDeadNodes));
        std::fprintf(f, "      \"lanes\": %d,\n", r.lanes);
        std::fprintf(f, "      \"cycles\": %d,\n", r.cycles);
        std::fprintf(f, "      \"interp_s\": %.6f,\n", r.interpS);
        std::fprintf(f, "      \"tape_s\": %.6f,\n", r.tapeS);
        std::fprintf(f, "      \"batch_s\": %.6f,\n", r.batchS);
        std::fprintf(f, "      \"tape_speedup\": %.3f,\n", r.tapeSpeedup);
        std::fprintf(f, "      \"batch_per_pu_speedup\": %.3f,\n",
                     r.batchPerPuSpeedup);
        std::fprintf(f, "      \"jit_available\": %s,\n",
                     r.jitAvailable ? "true" : "false");
        if (r.jitAvailable) {
            std::fprintf(f, "      \"jit_s\": %.6f,\n", r.jitS);
            std::fprintf(f, "      \"jit_compile_s\": %.6f,\n",
                         r.jitCompileS);
            std::fprintf(f, "      \"jit_from_disk_cache\": %s,\n",
                         r.jitFromDiskCache ? "true" : "false");
            std::fprintf(f, "      \"jit_over_batch_speedup\": %.3f,\n",
                         r.jitOverBatchSpeedup);
            std::fprintf(f, "      \"jit_per_pu_speedup\": %.3f,\n",
                         r.jitPerPuSpeedup);
            std::fprintf(f, "      \"jit_amort_cycles\": %.0f,\n",
                         r.jitAmortCycles);
        } else {
            std::fprintf(f, "      \"jit_status\": \"%s\",\n",
                         jsonEscape(r.jitStatus).c_str());
        }
        std::fprintf(f, "      \"equivalent\": %s\n",
                     r.equivalent ? "true" : "false");
        std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    int lanes = 64;
    int cycles = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
            lanes = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--cycles") == 0 &&
                   i + 1 < argc) {
            cycles = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH] [--lanes N] "
                         "[--cycles N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (lanes < 1) {
        std::fprintf(stderr, "--lanes must be >= 1\n");
        return 2;
    }
    if (cycles == 0)
        cycles = smoke ? 3000 : 20000;

    std::printf("\n==== RTL engines: interpreter vs tape vs batched "
                "vs jit (x%d) ====\n"
                "Same stimulus per engine; outputs hashed for "
                "equivalence.\n\n",
                lanes);

    std::vector<AppResult> results;
    Table table({"App", "nodes", "tape ops", "elim", "interp (s)",
                 "tape (s)", "batch (s)", "jit (s)", "tape x",
                 "batch x/PU", "jit/batch", "compile (ms)", "amort (cyc)",
                 "equiv"});
    bool all_equivalent = true;
    bool jit_everywhere = true;
    double min_tape = 1e300, min_batch = 1e300, min_jit = 1e300;
    int jit_apps = 0, jit_fast_apps = 0;
    for (auto &app : apps::allApplications()) {
        AppResult r = evaluateApp(*app, lanes, cycles, 42);
        all_equivalent = all_equivalent && r.equivalent;
        jit_everywhere = jit_everywhere && r.jitAvailable;
        min_tape = std::min(min_tape, r.tapeSpeedup);
        min_batch = std::min(min_batch, r.batchPerPuSpeedup);
        if (r.jitAvailable) {
            min_jit = std::min(min_jit, r.jitOverBatchSpeedup);
            ++jit_apps;
            if (r.jitOverBatchSpeedup >= 1.5)
                ++jit_fast_apps;
        }
        char ti[32], tt[32], tb[32], tj[32], st[32], sb[32], sj[32],
            cm[32], am[32];
        std::snprintf(ti, sizeof(ti), "%.3f", r.interpS);
        std::snprintf(tt, sizeof(tt), "%.3f", r.tapeS);
        std::snprintf(tb, sizeof(tb), "%.3f", r.batchS);
        std::snprintf(st, sizeof(st), "%.1fx", r.tapeSpeedup);
        std::snprintf(sb, sizeof(sb), "%.1fx", r.batchPerPuSpeedup);
        if (r.jitAvailable) {
            std::snprintf(tj, sizeof(tj), "%.3f", r.jitS);
            std::snprintf(sj, sizeof(sj), "%.1fx",
                          r.jitOverBatchSpeedup);
            std::snprintf(cm, sizeof(cm), "%.0f%s",
                          r.jitCompileS * 1e3,
                          r.jitFromDiskCache ? "*" : "");
            std::snprintf(am, sizeof(am), "%.0f", r.jitAmortCycles);
        } else {
            std::snprintf(tj, sizeof(tj), "n/a");
            std::snprintf(sj, sizeof(sj), "n/a");
            std::snprintf(cm, sizeof(cm), "n/a");
            std::snprintf(am, sizeof(am), "n/a");
        }
        table.row()
            .cell(r.name)
            .cell(std::to_string(r.circuitNodes))
            .cell(std::to_string(r.tapeOps))
            .cell(std::to_string(r.nodesEliminated))
            .cell(ti)
            .cell(tt)
            .cell(tb)
            .cell(tj)
            .cell(st)
            .cell(sb)
            .cell(sj)
            .cell(cm)
            .cell(am)
            .cell(r.equivalent ? "yes" : "NO");
        std::fflush(stdout);
        results.push_back(std::move(r));
    }
    std::printf("%s", table.str().c_str());
    std::printf("(compile * = reused from the on-disk jit cache; amort "
                "= group-cycles for the native compile to pay back vs "
                "the interpreted batch)\n\n");
    if (!jit_everywhere) {
        const AppResult *why = nullptr;
        for (const AppResult &r : results)
            if (!r.jitAvailable)
                why = &r;
        std::printf("NOTE: rtl-jit unavailable on this host (%s); jit "
                    "column and gate skipped, runtime falls back to "
                    "rtltape.\n\n",
                    why ? why->jitStatus.c_str() : "unknown");
    }

    if (!json_path.empty() && !writeJson(json_path, results, smoke))
        return 1;

    if (!all_equivalent) {
        std::fprintf(stderr,
                     "FAIL: engine outputs diverged (see table)\n");
        return 1;
    }
    if (smoke) {
#ifdef NDEBUG
        // Regression floors, set with ~30% headroom under the measured
        // minima across the six apps on the CI reference host (tape
        // 1.8-2.4x, batch 8.4-19x per PU at 64 lanes; see
        // DESIGN.md). They catch a real engine regression — e.g. losing
        // vectorization or the 32-bit lane path — without flaking on
        // machine-to-machine timing variance.
        if (min_tape < 1.3) {
            std::fprintf(stderr,
                         "FAIL: tape speedup regressed below 1.3x "
                         "(min %.2fx)\n",
                         min_tape);
            return 1;
        }
        if (min_batch < 5.0) {
            std::fprintf(stderr,
                         "FAIL: batched per-PU speedup regressed below "
                         "5x (min %.2fx)\n",
                         min_batch);
            return 1;
        }
        // The jit target is >= 2x over the interpreted batch on at
        // least 4 of the 6 apps; the gate asserts the same shape with
        // headroom (>= 1.5x on 4+ apps). A min-over-apps gate would be
        // meaningless: the smallest register-dominated circuits (Regex:
        // 52 ops, nearly all feeding register nexts) are store-bound in
        // any engine — there is nothing for dead-store elision to
        // elide — so their jit/batch ratio sits near 1x by construction.
        if (jit_everywhere && jit_fast_apps < std::min(jit_apps, 4)) {
            std::fprintf(stderr,
                         "FAIL: jit >= 1.5x over the interpreted batch "
                         "on only %d/%d apps (need 4; min %.2fx)\n",
                         jit_fast_apps, jit_apps, min_jit);
            return 1;
        }
        if (jit_everywhere)
            std::printf("gates passed: tape >= 1.3x (min %.1fx), batch "
                        ">= 5x per PU (min %.1fx), jit >= 1.5x over "
                        "batch on %d/%d apps (min %.1fx)\n",
                        min_tape, min_batch, jit_fast_apps, jit_apps,
                        min_jit);
        else
            std::printf("gates passed: tape >= 1.3x (min %.1fx), batch "
                        ">= 5x per PU (min %.1fx); JIT GATE SKIPPED "
                        "(toolchain unavailable)\n",
                        min_tape, min_batch);
#else
        std::printf("speedup gates skipped (debug build; timing not "
                    "meaningful)\n");
#endif
    }
    return 0;
}
