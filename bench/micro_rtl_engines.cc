/**
 * @file
 * Microbenchmark of the three RTL simulation engines on the six paper
 * applications: the per-node interpreter (rtl/sim.h), the compiled
 * scalar tape (rtl/tape.h), and the PU-batched structure-of-arrays
 * evaluator (rtl/batch_sim.h). Each engine is driven through the same
 * port-level stimulus — random tokens, always-valid input,
 * always-ready output — and its outputs are folded into a running hash,
 * so the benchmark doubles as an engine-equivalence check: all engines
 * (and every batch lane against its own scalar replay) must produce the
 * same hash or the run fails.
 *
 * Reported speedups:
 *  - tape:  interpreter time / scalar-tape time, one PU.
 *  - batch: per-PU speedup at `lanes` PUs per group, i.e.
 *           (interpreter time x lanes) / batched time — the ratio of
 *           simulating `lanes` units with the interpreter vs. one
 *           vectorized batch.
 *
 * Modes:
 *  --smoke       short CI configuration; also *gates*: exits non-zero on
 *                any equivalence failure, and (in NDEBUG builds, where
 *                timing is meaningful) on tape speedup < 1.3x or batched
 *                per-PU speedup < 5x — regression floors ~30% under the
 *                measured minima (tape 1.8-2.4x, batch 8.4-19x per PU) —
 *                so a performance regression fails the bench job the
 *                same way a correctness one does.
 *  --json PATH   write per-app results as JSON.
 *  --lanes N     batch width (default 64, the paper's PUs-per-group
 *                order of magnitude).
 *  --cycles N    simulated cycles per engine (default 20000; smoke 3000).
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "compile/compiler.h"
#include "rtl/batch_sim.h"
#include "bench_common.h"
#include "rtl/sim.h"
#include "rtl/tape.h"
#include "util/rng.h"
#include "util/table.h"

using namespace fleet;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** FNV-1a fold of one observed output tuple. */
inline uint64_t
fold(uint64_t h, uint64_t v)
{
    return (h ^ v) * 0x100000001b3ull;
}

struct Stimulus
{
    const compile::CompiledUnit &unit;
    int tokenWidth;
};

/**
 * Drive `cycles` cycles of seeded random stimulus through any engine
 * with the Simulator cycle contract, hashing the four output ports each
 * cycle. The template keeps one driver for all three engines (the
 * batched engine is adapted below).
 */
template <typename Sim>
uint64_t
drive(Sim &sim, const Stimulus &st, uint64_t seed, int cycles)
{
    Rng rng(seed);
    sim.reset();
    uint64_t h = 0xcbf29ce484222325ull;
    for (int cycle = 0; cycle < cycles; ++cycle) {
        sim.setInput(st.unit.inInputToken,
                     rng.next() & mask64(st.tokenWidth));
        sim.setInput(st.unit.inInputValid, 1);
        sim.setInput(st.unit.inInputFinished, 0);
        sim.setInput(st.unit.inOutputReady, 1);
        sim.evalComb();
        h = fold(h, sim.value(st.unit.outInputReady));
        h = fold(h, sim.value(st.unit.outOutputToken));
        h = fold(h, sim.value(st.unit.outOutputValid));
        h = fold(h, sim.value(st.unit.outOutputFinished));
        sim.step();
    }
    return h;
}

/** Same stimulus and hash, all lanes advancing through one evalAll()
 * and one step() per cycle; lane l replays the scalar run with seed
 * base_seed + l. Returns the per-lane hashes. */
std::vector<uint64_t>
driveBatch(rtl::BatchSimulator &batch, const Stimulus &st,
           uint64_t base_seed, int cycles)
{
    const int lanes = batch.lanes();
    std::vector<Rng> rngs;
    for (int l = 0; l < lanes; ++l)
        rngs.emplace_back(base_seed + l);
    batch.reset();
    std::vector<uint64_t> h(lanes, 0xcbf29ce484222325ull);
    for (int cycle = 0; cycle < cycles; ++cycle) {
        for (int l = 0; l < lanes; ++l) {
            batch.setInput(l, st.unit.inInputToken,
                           rngs[l].next() & mask64(st.tokenWidth));
            batch.setInput(l, st.unit.inInputValid, 1);
            batch.setInput(l, st.unit.inInputFinished, 0);
            batch.setInput(l, st.unit.inOutputReady, 1);
        }
        batch.evalAll();
        for (int l = 0; l < lanes; ++l) {
            h[l] = fold(h[l], batch.value(l, st.unit.outInputReady));
            h[l] = fold(h[l], batch.value(l, st.unit.outOutputToken));
            h[l] = fold(h[l], batch.value(l, st.unit.outOutputValid));
            h[l] = fold(h[l], batch.value(l, st.unit.outOutputFinished));
        }
        batch.step();
    }
    return h;
}

struct AppResult
{
    std::string name;
    uint64_t circuitNodes = 0;
    uint64_t tapeOps = 0;
    uint64_t nodesEliminated = 0;
    int lanes = 0;
    int cycles = 0;
    double interpS = 0;
    double tapeS = 0;
    double batchS = 0;
    double tapeSpeedup = 0;
    double batchPerPuSpeedup = 0;
    bool equivalent = false;
};

AppResult
evaluateApp(const apps::Application &app, int lanes, int cycles,
            uint64_t seed)
{
    AppResult r;
    r.name = app.name();
    r.lanes = lanes;
    r.cycles = cycles;

    lang::Program program = app.program();
    auto unit = compile::compileProgram(program);
    Stimulus st{unit, program.inputTokenWidth};
    r.circuitNodes = unit.circuit.nodes().size();

    auto tape_program = std::make_shared<const rtl::TapeProgram>(
        rtl::TapeProgram::compile(unit.circuit));
    r.tapeOps = tape_program->ops.size();
    r.nodesEliminated = tape_program->nodesEliminated;

    // Engine equivalence first (untimed): the interpreter, the tape, and
    // batch lane 0 replay seed `seed`; every other batch lane replays
    // its own scalar-tape run.
    rtl::Simulator interp(unit.circuit);
    rtl::TapeSimulator tape(tape_program);
    rtl::BatchSimulator batch(tape_program, lanes);
    const int check_cycles = std::min(cycles, 2000);
    uint64_t h_interp = drive(interp, st, seed, check_cycles);
    uint64_t h_tape = drive(tape, st, seed, check_cycles);
    auto h_lanes = driveBatch(batch, st, seed, check_cycles);
    r.equivalent = h_interp == h_tape && h_lanes[0] == h_interp;
    for (int l = 1; l < lanes && r.equivalent; ++l) {
        rtl::TapeSimulator replay(tape_program);
        r.equivalent = h_lanes[l] == drive(replay, st, seed + l,
                                           check_cycles);
    }

    // Timed runs, identical stimulus volume per engine per PU.
    double t0 = now();
    uint64_t sink = drive(interp, st, seed, cycles);
    double t1 = now();
    sink = fold(sink, drive(tape, st, seed, cycles));
    double t2 = now();
    sink = fold(sink, driveBatch(batch, st, seed, cycles)[lanes - 1]);
    double t3 = now();
    if (sink == 0) // Keep the measured work observable.
        std::printf("(hash sink collision)\n");

    r.interpS = t1 - t0;
    r.tapeS = t2 - t1;
    r.batchS = t3 - t2;
    r.tapeSpeedup = r.tapeS > 0 ? r.interpS / r.tapeS : 0;
    r.batchPerPuSpeedup =
        r.batchS > 0 ? r.interpS * lanes / r.batchS : 0;
    return r;
}

bool
writeJson(const std::string &path, const std::vector<AppResult> &results,
          bool smoke)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n");
    // Single-PU engine microbench: host threading does not apply, and
    // the "backend" axis *is* the result rows (interp vs tape vs batch).
    bench::writeRunMetadata(f, "micro_rtl_engines", "rtl-engines", -1);
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"apps\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const AppResult &r = results[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"app\": \"%s\",\n", r.name.c_str());
        std::fprintf(f, "      \"circuit_nodes\": %llu,\n",
                     static_cast<unsigned long long>(r.circuitNodes));
        std::fprintf(f, "      \"tape_ops\": %llu,\n",
                     static_cast<unsigned long long>(r.tapeOps));
        std::fprintf(f, "      \"nodes_eliminated\": %llu,\n",
                     static_cast<unsigned long long>(r.nodesEliminated));
        std::fprintf(f, "      \"lanes\": %d,\n", r.lanes);
        std::fprintf(f, "      \"cycles\": %d,\n", r.cycles);
        std::fprintf(f, "      \"interp_s\": %.6f,\n", r.interpS);
        std::fprintf(f, "      \"tape_s\": %.6f,\n", r.tapeS);
        std::fprintf(f, "      \"batch_s\": %.6f,\n", r.batchS);
        std::fprintf(f, "      \"tape_speedup\": %.3f,\n", r.tapeSpeedup);
        std::fprintf(f, "      \"batch_per_pu_speedup\": %.3f,\n",
                     r.batchPerPuSpeedup);
        std::fprintf(f, "      \"equivalent\": %s\n",
                     r.equivalent ? "true" : "false");
        std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    int lanes = 64;
    int cycles = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
            lanes = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--cycles") == 0 &&
                   i + 1 < argc) {
            cycles = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH] [--lanes N] "
                         "[--cycles N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (lanes < 1) {
        std::fprintf(stderr, "--lanes must be >= 1\n");
        return 2;
    }
    if (cycles == 0)
        cycles = smoke ? 3000 : 20000;

    std::printf("\n==== RTL engines: interpreter vs tape vs batched "
                "(x%d) ====\n"
                "Same stimulus per engine; outputs hashed for "
                "equivalence.\n\n",
                lanes);

    std::vector<AppResult> results;
    Table table({"App", "nodes", "tape ops", "elim", "interp (s)",
                 "tape (s)", "batch (s)", "tape x", "batch x/PU", "equiv"});
    bool all_equivalent = true;
    double min_tape = 1e300, min_batch = 1e300;
    for (auto &app : apps::allApplications()) {
        AppResult r = evaluateApp(*app, lanes, cycles, 42);
        all_equivalent = all_equivalent && r.equivalent;
        min_tape = std::min(min_tape, r.tapeSpeedup);
        min_batch = std::min(min_batch, r.batchPerPuSpeedup);
        char ti[32], tt[32], tb[32], st[32], sb[32];
        std::snprintf(ti, sizeof(ti), "%.3f", r.interpS);
        std::snprintf(tt, sizeof(tt), "%.3f", r.tapeS);
        std::snprintf(tb, sizeof(tb), "%.3f", r.batchS);
        std::snprintf(st, sizeof(st), "%.1fx", r.tapeSpeedup);
        std::snprintf(sb, sizeof(sb), "%.1fx", r.batchPerPuSpeedup);
        table.row()
            .cell(r.name)
            .cell(std::to_string(r.circuitNodes))
            .cell(std::to_string(r.tapeOps))
            .cell(std::to_string(r.nodesEliminated))
            .cell(ti)
            .cell(tt)
            .cell(tb)
            .cell(st)
            .cell(sb)
            .cell(r.equivalent ? "yes" : "NO");
        std::fflush(stdout);
        results.push_back(std::move(r));
    }
    std::printf("%s\n", table.str().c_str());

    if (!json_path.empty() && !writeJson(json_path, results, smoke))
        return 1;

    if (!all_equivalent) {
        std::fprintf(stderr,
                     "FAIL: engine outputs diverged (see table)\n");
        return 1;
    }
    if (smoke) {
#ifdef NDEBUG
        // Regression floors, set with ~30% headroom under the measured
        // minima across the six apps on the CI reference host (tape
        // 1.8-2.4x, batch 8.4-19x per PU at 64 lanes; see
        // DESIGN.md). They catch a real engine regression — e.g. losing
        // vectorization or the 32-bit lane path — without flaking on
        // machine-to-machine timing variance.
        if (min_tape < 1.3) {
            std::fprintf(stderr,
                         "FAIL: tape speedup regressed below 1.3x "
                         "(min %.2fx)\n",
                         min_tape);
            return 1;
        }
        if (min_batch < 5.0) {
            std::fprintf(stderr,
                         "FAIL: batched per-PU speedup regressed below "
                         "5x (min %.2fx)\n",
                         min_batch);
            return 1;
        }
        std::printf("gates passed: tape >= 1.3x (min %.1fx), batch >= 5x "
                    "per PU (min %.1fx)\n",
                    min_tape, min_batch);
#else
        std::printf("speedup gates skipped (debug build; timing not "
                    "meaningful)\n");
#endif
    }
    return 0;
}
