/**
 * @file
 * Regenerates the Section 7.3 memory-system numbers:
 *
 *  - theoretical peak: 4 channels x 512 bits x 125 MHz = 32 GB/s;
 *  - measured peak: raw reads at the maximum burst size of 64 beats
 *    (paper: 30.1 GB/s, 94% of theoretical);
 *  - the Fleet input controller at burst size 1024 bits (paper:
 *    27.24 GB/s = 85% of theoretical, 91% of measured peak);
 *  - input+output echo, producing as much output as input (paper:
 *    11.38 GB/s, 69% of measured peak when halved for the shared bus).
 */

#include "bench_common.h"
#include "dram/dram.h"
#include "lang/builder.h"

using namespace fleet;

namespace {

/** Raw channel read bandwidth at a given burst length, GB/s x4 channels. */
double
rawReadGBps(int burst_beats, double clock_mhz = 125.0)
{
    dram::DramParams params;
    dram::DramChannel channel(params, 64 << 20);
    const uint64_t burst_bytes = uint64_t(burst_beats) * 64;
    uint64_t addr = 0;
    uint64_t delivered = 0;
    const uint64_t cycles = 200000;
    for (uint64_t c = 0; c < cycles; ++c) {
        if (channel.arReady() && addr + burst_bytes <= (64u << 20)) {
            channel.arPush(addr, burst_beats);
            addr += burst_bytes;
        }
        if (channel.rValid()) {
            channel.rPop();
            ++delivered;
        }
        channel.tick();
    }
    double bytes_per_cycle = delivered * 64.0 / cycles;
    return bytes_per_cycle * clock_mhz * 1e6 * 4 / 1e9;
}

double
fleetInputGBps()
{
    lang::ProgramBuilder b("DropAll", 32, 32);
    lang::Value seen = b.reg("seen", 1, 0);
    b.assign(seen, lang::Value::lit(1, 1));
    lang::Program program = b.finish();

    Rng rng(3);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 64; ++p) {
        BitBuffer stream;
        for (int i = 0; i < 8192; ++i)
            stream.appendBits(rng.next(), 32);
        streams.push_back(std::move(stream));
    }
    return bench::channelScaledGBps(program, streams, 4);
}

double
echoGBps()
{
    // Identity unit with 32-bit tokens: output == input, stressing both
    // controllers and the shared DRAM bus.
    lang::ProgramBuilder b("Echo", 32, 32);
    b.if_(!b.streamFinished(), [&] { b.emit(b.input()); });
    lang::Program program = b.finish();

    Rng rng(4);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 64; ++p) {
        BitBuffer stream;
        for (int i = 0; i < 8192; ++i)
            stream.appendBits(rng.next(), 32);
        streams.push_back(std::move(stream));
    }
    return bench::channelScaledGBps(program, streams, 4);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Section 7.3: memory system performance",
        "All values GB/s across 4 channels at 125 MHz "
        "(simulated: one channel, scaled x4).");

    double theoretical = 32.0;
    double measured_peak = rawReadGBps(64);
    double fleet_input = fleetInputGBps();
    double echo = echoGBps();

    Table table({"Probe", "GB/s", "% theoretical", "% measured peak",
                 "Paper"});
    table.row()
        .cell("Theoretical peak (4 x 512b x 125MHz)")
        .cell(theoretical)
        .cell(100.0, 0)
        .cell("-")
        .cell("32.00");
    table.row()
        .cell("Raw reads, 64-beat bursts")
        .cell(measured_peak)
        .cell(100.0 * measured_peak / theoretical, 0)
        .cell(100.0, 0)
        .cell("30.10 (94%)");
    table.row()
        .cell("Fleet input controller (burst 1024b)")
        .cell(fleet_input)
        .cell(100.0 * fleet_input / theoretical, 0)
        .cell(100.0 * fleet_input / measured_peak, 0)
        .cell("27.24 (85% / 91%)");
    table.row()
        .cell("Fleet input+output echo")
        .cell(echo)
        .cell(100.0 * echo / theoretical, 0)
        .cell(100.0 * echo / measured_peak, 0)
        .cell("11.38 (69% of peak w/ IO)");
    std::printf("%s\n", table.str().c_str());
    return 0;
}
