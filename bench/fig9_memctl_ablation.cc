/**
 * @file
 * Regenerates Figure 9 of the paper: the impact of the two memory
 * controller optimizations (Section 5) on input throughput, using the
 * paper's probe — a processing unit that drops all input tokens and
 * produces no output, isolating the input controller.
 *
 *   None                      -> synchronous address supply, r = 1
 *   Async. Addr. Supply       -> asynchronous address supply, r = 1
 *   Async. Addr. & Burst Regs -> asynchronous address supply, r = 16
 *
 * Paper: 0.98 / 1.88 / 27.24 GB/s across the F1's four channels.
 */

#include "bench_common.h"
#include "lang/builder.h"

using namespace fleet;

namespace {

lang::Program
dropAllUnit()
{
    lang::ProgramBuilder b("DropAll", 32, 32);
    lang::Value seen = b.reg("seen", 1, 0);
    b.assign(seen, lang::Value::lit(1, 1));
    return b.finish();
}

double
measure(bool async_supply, int burst_regs)
{
    lang::Program program = dropAllUnit();
    const int pus_per_channel = 64;
    const uint64_t stream_bytes = async_supply && burst_regs > 1
                                      ? 32768
                                      : 4096; // slow configs: less data

    Rng rng(7);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < pus_per_channel; ++p) {
        BitBuffer stream;
        for (uint64_t i = 0; i < stream_bytes / 4; ++i)
            stream.appendBits(rng.next(), 32);
        streams.push_back(std::move(stream));
    }

    system::SystemConfig config;
    config.inputCtrl.asyncAddressSupply = async_supply;
    config.inputCtrl.numBurstRegs = burst_regs;
    config.outputCtrl.asyncAddressSupply = async_supply;
    config.outputCtrl.numBurstRegs = burst_regs;
    return bench::channelScaledGBps(program, streams, 4, config);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 9: impact of memory controller optimizations",
        "Input throughput of a drop-all probe unit, 4 channels "
        "(simulated: 64 PUs on one channel, scaled x4).");

    struct Config
    {
        const char *name;
        bool async;
        int r;
        double paper;
    };
    const Config configs[] = {
        {"None", false, 1, 0.98},
        {"Async. Addr. Supply", true, 1, 1.88},
        {"Async. Addr. Supply & Burst Regs.", true, 16, 27.24},
    };

    Table table({"Memory Controller Optimizations", "Perf GB/s",
                 "Paper GB/s"});
    double previous = 0;
    for (const auto &config : configs) {
        double gbps = measure(config.async, config.r);
        table.row().cell(config.name).cell(gbps).cell(config.paper);
        if (previous > 0 && gbps <= previous) {
            std::printf("WARNING: expected monotone improvement, got "
                        "%.2f after %.2f\n", gbps, previous);
        }
        previous = gbps;
    }
    std::printf("%s\n", table.str().c_str());
    return 0;
}
