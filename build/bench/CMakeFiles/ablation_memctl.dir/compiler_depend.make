# Empty compiler generated dependencies file for ablation_memctl.
# This may be replaced when dependencies are built.
