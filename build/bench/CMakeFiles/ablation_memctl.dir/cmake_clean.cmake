file(REMOVE_RECURSE
  "CMakeFiles/ablation_memctl.dir/ablation_memctl.cc.o"
  "CMakeFiles/ablation_memctl.dir/ablation_memctl.cc.o.d"
  "ablation_memctl"
  "ablation_memctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
