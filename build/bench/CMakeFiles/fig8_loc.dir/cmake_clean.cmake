file(REMOVE_RECURSE
  "CMakeFiles/fig8_loc.dir/fig8_loc.cc.o"
  "CMakeFiles/fig8_loc.dir/fig8_loc.cc.o.d"
  "fig8_loc"
  "fig8_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
