# Empty compiler generated dependencies file for fig8_loc.
# This may be replaced when dependencies are built.
