file(REMOVE_RECURSE
  "CMakeFiles/fig9_memctl_ablation.dir/fig9_memctl_ablation.cc.o"
  "CMakeFiles/fig9_memctl_ablation.dir/fig9_memctl_ablation.cc.o.d"
  "fig9_memctl_ablation"
  "fig9_memctl_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_memctl_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
