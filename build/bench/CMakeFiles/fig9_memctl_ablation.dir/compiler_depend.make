# Empty compiler generated dependencies file for fig9_memctl_ablation.
# This may be replaced when dependencies are built.
