file(REMOVE_RECURSE
  "CMakeFiles/fig7_main_results.dir/fig7_main_results.cc.o"
  "CMakeFiles/fig7_main_results.dir/fig7_main_results.cc.o.d"
  "fig7_main_results"
  "fig7_main_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_main_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
