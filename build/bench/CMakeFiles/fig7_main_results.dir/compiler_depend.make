# Empty compiler generated dependencies file for fig7_main_results.
# This may be replaced when dependencies are built.
