# Empty compiler generated dependencies file for sec74_hls_comparison.
# This may be replaced when dependencies are built.
