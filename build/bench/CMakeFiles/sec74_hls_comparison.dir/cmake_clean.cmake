file(REMOVE_RECURSE
  "CMakeFiles/sec74_hls_comparison.dir/sec74_hls_comparison.cc.o"
  "CMakeFiles/sec74_hls_comparison.dir/sec74_hls_comparison.cc.o.d"
  "sec74_hls_comparison"
  "sec74_hls_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec74_hls_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
