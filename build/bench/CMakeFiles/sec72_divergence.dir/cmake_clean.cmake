file(REMOVE_RECURSE
  "CMakeFiles/sec72_divergence.dir/sec72_divergence.cc.o"
  "CMakeFiles/sec72_divergence.dir/sec72_divergence.cc.o.d"
  "sec72_divergence"
  "sec72_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
