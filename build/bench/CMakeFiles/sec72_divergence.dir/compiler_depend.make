# Empty compiler generated dependencies file for sec72_divergence.
# This may be replaced when dependencies are built.
