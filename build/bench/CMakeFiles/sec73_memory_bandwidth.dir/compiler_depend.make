# Empty compiler generated dependencies file for sec73_memory_bandwidth.
# This may be replaced when dependencies are built.
