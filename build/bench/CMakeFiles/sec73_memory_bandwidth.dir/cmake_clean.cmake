file(REMOVE_RECURSE
  "CMakeFiles/sec73_memory_bandwidth.dir/sec73_memory_bandwidth.cc.o"
  "CMakeFiles/sec73_memory_bandwidth.dir/sec73_memory_bandwidth.cc.o.d"
  "sec73_memory_bandwidth"
  "sec73_memory_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec73_memory_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
