# Empty dependencies file for compression_pipeline.
# This may be replaced when dependencies are built.
