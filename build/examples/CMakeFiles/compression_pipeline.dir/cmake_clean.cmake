file(REMOVE_RECURSE
  "CMakeFiles/compression_pipeline.dir/compression_pipeline.cpp.o"
  "CMakeFiles/compression_pipeline.dir/compression_pipeline.cpp.o.d"
  "compression_pipeline"
  "compression_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
