# Empty compiler generated dependencies file for json_analytics.
# This may be replaced when dependencies are built.
