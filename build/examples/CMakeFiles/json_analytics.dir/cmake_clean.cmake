file(REMOVE_RECURSE
  "CMakeFiles/json_analytics.dir/json_analytics.cpp.o"
  "CMakeFiles/json_analytics.dir/json_analytics.cpp.o.d"
  "json_analytics"
  "json_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
