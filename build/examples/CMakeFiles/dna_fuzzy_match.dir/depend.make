# Empty dependencies file for dna_fuzzy_match.
# This may be replaced when dependencies are built.
