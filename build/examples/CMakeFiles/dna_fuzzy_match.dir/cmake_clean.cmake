file(REMOVE_RECURSE
  "CMakeFiles/dna_fuzzy_match.dir/dna_fuzzy_match.cpp.o"
  "CMakeFiles/dna_fuzzy_match.dir/dna_fuzzy_match.cpp.o.d"
  "dna_fuzzy_match"
  "dna_fuzzy_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_fuzzy_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
