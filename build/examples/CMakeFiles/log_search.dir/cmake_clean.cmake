file(REMOVE_RECURSE
  "CMakeFiles/log_search.dir/log_search.cpp.o"
  "CMakeFiles/log_search.dir/log_search.cpp.o.d"
  "log_search"
  "log_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
