file(REMOVE_RECURSE
  "CMakeFiles/bloom_prefilter.dir/bloom_prefilter.cpp.o"
  "CMakeFiles/bloom_prefilter.dir/bloom_prefilter.cpp.o.d"
  "bloom_prefilter"
  "bloom_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
