# Empty dependencies file for bloom_prefilter.
# This may be replaced when dependencies are built.
