# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_bits_test[1]_include.cmake")
include("/root/repo/build/tests/util_bitbuf_test[1]_include.cmake")
include("/root/repo/build/tests/util_ops_test[1]_include.cmake")
include("/root/repo/build/tests/util_misc_test[1]_include.cmake")
include("/root/repo/build/tests/lang_builder_test[1]_include.cmake")
include("/root/repo/build/tests/lang_flatten_test[1]_include.cmake")
include("/root/repo/build/tests/lang_check_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_circuit_test[1]_include.cmake")
include("/root/repo/build/tests/compile_crosscheck_test[1]_include.cmake")
include("/root/repo/build/tests/property_random_programs_test[1]_include.cmake")
include("/root/repo/build/tests/dram_test[1]_include.cmake")
include("/root/repo/build/tests/memctl_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/lang_analyze_test[1]_include.cmake")
include("/root/repo/build/tests/compile_runtime_checks_test[1]_include.cmake")
include("/root/repo/build/tests/misc_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_apps_test[1]_include.cmake")
include("/root/repo/build/tests/param_sweeps_test[1]_include.cmake")
include("/root/repo/build/tests/splitter_test[1]_include.cmake")
include("/root/repo/build/tests/compile_structure_test[1]_include.cmake")
