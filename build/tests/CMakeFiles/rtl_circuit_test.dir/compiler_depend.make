# Empty compiler generated dependencies file for rtl_circuit_test.
# This may be replaced when dependencies are built.
