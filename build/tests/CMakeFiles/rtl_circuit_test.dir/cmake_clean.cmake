file(REMOVE_RECURSE
  "CMakeFiles/rtl_circuit_test.dir/rtl_circuit_test.cc.o"
  "CMakeFiles/rtl_circuit_test.dir/rtl_circuit_test.cc.o.d"
  "rtl_circuit_test"
  "rtl_circuit_test.pdb"
  "rtl_circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
