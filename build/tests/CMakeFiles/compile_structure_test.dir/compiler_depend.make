# Empty compiler generated dependencies file for compile_structure_test.
# This may be replaced when dependencies are built.
