file(REMOVE_RECURSE
  "CMakeFiles/compile_structure_test.dir/compile_structure_test.cc.o"
  "CMakeFiles/compile_structure_test.dir/compile_structure_test.cc.o.d"
  "compile_structure_test"
  "compile_structure_test.pdb"
  "compile_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
