
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/system_test.cc" "tests/CMakeFiles/system_test.dir/system_test.cc.o" "gcc" "tests/CMakeFiles/system_test.dir/system_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/fleet_system.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/fleet_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/fleet_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fleet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/fleet_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/memctl/CMakeFiles/fleet_memctl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/fleet_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fleet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
