# Empty compiler generated dependencies file for system_test.
# This may be replaced when dependencies are built.
