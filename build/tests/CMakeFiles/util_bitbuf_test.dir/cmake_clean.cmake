file(REMOVE_RECURSE
  "CMakeFiles/util_bitbuf_test.dir/util_bitbuf_test.cc.o"
  "CMakeFiles/util_bitbuf_test.dir/util_bitbuf_test.cc.o.d"
  "util_bitbuf_test"
  "util_bitbuf_test.pdb"
  "util_bitbuf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bitbuf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
