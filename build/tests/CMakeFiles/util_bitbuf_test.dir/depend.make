# Empty dependencies file for util_bitbuf_test.
# This may be replaced when dependencies are built.
