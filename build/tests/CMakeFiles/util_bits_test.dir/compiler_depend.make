# Empty compiler generated dependencies file for util_bits_test.
# This may be replaced when dependencies are built.
