file(REMOVE_RECURSE
  "CMakeFiles/util_bits_test.dir/util_bits_test.cc.o"
  "CMakeFiles/util_bits_test.dir/util_bits_test.cc.o.d"
  "util_bits_test"
  "util_bits_test.pdb"
  "util_bits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
