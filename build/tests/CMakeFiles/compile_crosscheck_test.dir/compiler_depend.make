# Empty compiler generated dependencies file for compile_crosscheck_test.
# This may be replaced when dependencies are built.
