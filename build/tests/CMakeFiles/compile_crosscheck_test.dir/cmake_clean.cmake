file(REMOVE_RECURSE
  "CMakeFiles/compile_crosscheck_test.dir/compile_crosscheck_test.cc.o"
  "CMakeFiles/compile_crosscheck_test.dir/compile_crosscheck_test.cc.o.d"
  "compile_crosscheck_test"
  "compile_crosscheck_test.pdb"
  "compile_crosscheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
