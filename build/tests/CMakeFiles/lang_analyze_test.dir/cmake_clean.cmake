file(REMOVE_RECURSE
  "CMakeFiles/lang_analyze_test.dir/lang_analyze_test.cc.o"
  "CMakeFiles/lang_analyze_test.dir/lang_analyze_test.cc.o.d"
  "lang_analyze_test"
  "lang_analyze_test.pdb"
  "lang_analyze_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_analyze_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
