# Empty dependencies file for lang_analyze_test.
# This may be replaced when dependencies are built.
