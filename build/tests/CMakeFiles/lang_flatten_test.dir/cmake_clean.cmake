file(REMOVE_RECURSE
  "CMakeFiles/lang_flatten_test.dir/lang_flatten_test.cc.o"
  "CMakeFiles/lang_flatten_test.dir/lang_flatten_test.cc.o.d"
  "lang_flatten_test"
  "lang_flatten_test.pdb"
  "lang_flatten_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_flatten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
