file(REMOVE_RECURSE
  "CMakeFiles/misc_robustness_test.dir/misc_robustness_test.cc.o"
  "CMakeFiles/misc_robustness_test.dir/misc_robustness_test.cc.o.d"
  "misc_robustness_test"
  "misc_robustness_test.pdb"
  "misc_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
