# Empty compiler generated dependencies file for misc_robustness_test.
# This may be replaced when dependencies are built.
