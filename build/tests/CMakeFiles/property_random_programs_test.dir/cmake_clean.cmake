file(REMOVE_RECURSE
  "CMakeFiles/property_random_programs_test.dir/property_random_programs_test.cc.o"
  "CMakeFiles/property_random_programs_test.dir/property_random_programs_test.cc.o.d"
  "property_random_programs_test"
  "property_random_programs_test.pdb"
  "property_random_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_random_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
