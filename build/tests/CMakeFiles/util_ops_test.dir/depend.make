# Empty dependencies file for util_ops_test.
# This may be replaced when dependencies are built.
