# Empty compiler generated dependencies file for memctl_test.
# This may be replaced when dependencies are built.
