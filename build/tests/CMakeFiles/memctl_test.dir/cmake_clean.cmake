file(REMOVE_RECURSE
  "CMakeFiles/memctl_test.dir/memctl_test.cc.o"
  "CMakeFiles/memctl_test.dir/memctl_test.cc.o.d"
  "memctl_test"
  "memctl_test.pdb"
  "memctl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
