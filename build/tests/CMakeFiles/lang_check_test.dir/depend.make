# Empty dependencies file for lang_check_test.
# This may be replaced when dependencies are built.
