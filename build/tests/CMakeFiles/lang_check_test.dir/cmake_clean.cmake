file(REMOVE_RECURSE
  "CMakeFiles/lang_check_test.dir/lang_check_test.cc.o"
  "CMakeFiles/lang_check_test.dir/lang_check_test.cc.o.d"
  "lang_check_test"
  "lang_check_test.pdb"
  "lang_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
