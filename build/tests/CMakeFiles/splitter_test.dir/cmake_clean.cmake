file(REMOVE_RECURSE
  "CMakeFiles/splitter_test.dir/splitter_test.cc.o"
  "CMakeFiles/splitter_test.dir/splitter_test.cc.o.d"
  "splitter_test"
  "splitter_test.pdb"
  "splitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
