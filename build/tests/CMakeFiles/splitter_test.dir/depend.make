# Empty dependencies file for splitter_test.
# This may be replaced when dependencies are built.
