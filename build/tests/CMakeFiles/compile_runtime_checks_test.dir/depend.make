# Empty dependencies file for compile_runtime_checks_test.
# This may be replaced when dependencies are built.
