file(REMOVE_RECURSE
  "CMakeFiles/compile_runtime_checks_test.dir/compile_runtime_checks_test.cc.o"
  "CMakeFiles/compile_runtime_checks_test.dir/compile_runtime_checks_test.cc.o.d"
  "compile_runtime_checks_test"
  "compile_runtime_checks_test.pdb"
  "compile_runtime_checks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_runtime_checks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
