# Empty compiler generated dependencies file for param_sweeps_test.
# This may be replaced when dependencies are built.
