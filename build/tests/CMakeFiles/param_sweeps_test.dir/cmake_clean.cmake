file(REMOVE_RECURSE
  "CMakeFiles/param_sweeps_test.dir/param_sweeps_test.cc.o"
  "CMakeFiles/param_sweeps_test.dir/param_sweeps_test.cc.o.d"
  "param_sweeps_test"
  "param_sweeps_test.pdb"
  "param_sweeps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_sweeps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
