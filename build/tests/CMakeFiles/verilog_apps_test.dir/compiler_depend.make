# Empty compiler generated dependencies file for verilog_apps_test.
# This may be replaced when dependencies are built.
