file(REMOVE_RECURSE
  "CMakeFiles/verilog_apps_test.dir/verilog_apps_test.cc.o"
  "CMakeFiles/verilog_apps_test.dir/verilog_apps_test.cc.o.d"
  "verilog_apps_test"
  "verilog_apps_test.pdb"
  "verilog_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
