file(REMOVE_RECURSE
  "CMakeFiles/lang_builder_test.dir/lang_builder_test.cc.o"
  "CMakeFiles/lang_builder_test.dir/lang_builder_test.cc.o.d"
  "lang_builder_test"
  "lang_builder_test.pdb"
  "lang_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
