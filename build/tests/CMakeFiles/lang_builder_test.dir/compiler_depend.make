# Empty compiler generated dependencies file for lang_builder_test.
# This may be replaced when dependencies are built.
