file(REMOVE_RECURSE
  "libfleet_lang.a"
)
