file(REMOVE_RECURSE
  "CMakeFiles/fleet_lang.dir/analyze.cc.o"
  "CMakeFiles/fleet_lang.dir/analyze.cc.o.d"
  "CMakeFiles/fleet_lang.dir/ast.cc.o"
  "CMakeFiles/fleet_lang.dir/ast.cc.o.d"
  "CMakeFiles/fleet_lang.dir/builder.cc.o"
  "CMakeFiles/fleet_lang.dir/builder.cc.o.d"
  "CMakeFiles/fleet_lang.dir/check.cc.o"
  "CMakeFiles/fleet_lang.dir/check.cc.o.d"
  "CMakeFiles/fleet_lang.dir/flatten.cc.o"
  "CMakeFiles/fleet_lang.dir/flatten.cc.o.d"
  "CMakeFiles/fleet_lang.dir/stdlib.cc.o"
  "CMakeFiles/fleet_lang.dir/stdlib.cc.o.d"
  "libfleet_lang.a"
  "libfleet_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
