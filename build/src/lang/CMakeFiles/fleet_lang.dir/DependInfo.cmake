
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/analyze.cc" "src/lang/CMakeFiles/fleet_lang.dir/analyze.cc.o" "gcc" "src/lang/CMakeFiles/fleet_lang.dir/analyze.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/lang/CMakeFiles/fleet_lang.dir/ast.cc.o" "gcc" "src/lang/CMakeFiles/fleet_lang.dir/ast.cc.o.d"
  "/root/repo/src/lang/builder.cc" "src/lang/CMakeFiles/fleet_lang.dir/builder.cc.o" "gcc" "src/lang/CMakeFiles/fleet_lang.dir/builder.cc.o.d"
  "/root/repo/src/lang/check.cc" "src/lang/CMakeFiles/fleet_lang.dir/check.cc.o" "gcc" "src/lang/CMakeFiles/fleet_lang.dir/check.cc.o.d"
  "/root/repo/src/lang/flatten.cc" "src/lang/CMakeFiles/fleet_lang.dir/flatten.cc.o" "gcc" "src/lang/CMakeFiles/fleet_lang.dir/flatten.cc.o.d"
  "/root/repo/src/lang/stdlib.cc" "src/lang/CMakeFiles/fleet_lang.dir/stdlib.cc.o" "gcc" "src/lang/CMakeFiles/fleet_lang.dir/stdlib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fleet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
