# Empty dependencies file for fleet_lang.
# This may be replaced when dependencies are built.
