file(REMOVE_RECURSE
  "CMakeFiles/fleet_baseline.dir/cpu.cc.o"
  "CMakeFiles/fleet_baseline.dir/cpu.cc.o.d"
  "CMakeFiles/fleet_baseline.dir/hls.cc.o"
  "CMakeFiles/fleet_baseline.dir/hls.cc.o.d"
  "CMakeFiles/fleet_baseline.dir/simt.cc.o"
  "CMakeFiles/fleet_baseline.dir/simt.cc.o.d"
  "CMakeFiles/fleet_baseline.dir/timing.cc.o"
  "CMakeFiles/fleet_baseline.dir/timing.cc.o.d"
  "libfleet_baseline.a"
  "libfleet_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
