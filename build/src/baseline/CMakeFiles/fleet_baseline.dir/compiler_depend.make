# Empty compiler generated dependencies file for fleet_baseline.
# This may be replaced when dependencies are built.
