file(REMOVE_RECURSE
  "libfleet_baseline.a"
)
