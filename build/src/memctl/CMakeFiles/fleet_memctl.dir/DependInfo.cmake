
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memctl/input_controller.cc" "src/memctl/CMakeFiles/fleet_memctl.dir/input_controller.cc.o" "gcc" "src/memctl/CMakeFiles/fleet_memctl.dir/input_controller.cc.o.d"
  "/root/repo/src/memctl/output_controller.cc" "src/memctl/CMakeFiles/fleet_memctl.dir/output_controller.cc.o" "gcc" "src/memctl/CMakeFiles/fleet_memctl.dir/output_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/fleet_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fleet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
