file(REMOVE_RECURSE
  "CMakeFiles/fleet_memctl.dir/input_controller.cc.o"
  "CMakeFiles/fleet_memctl.dir/input_controller.cc.o.d"
  "CMakeFiles/fleet_memctl.dir/output_controller.cc.o"
  "CMakeFiles/fleet_memctl.dir/output_controller.cc.o.d"
  "libfleet_memctl.a"
  "libfleet_memctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_memctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
