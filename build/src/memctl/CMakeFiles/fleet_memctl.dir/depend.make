# Empty dependencies file for fleet_memctl.
# This may be replaced when dependencies are built.
