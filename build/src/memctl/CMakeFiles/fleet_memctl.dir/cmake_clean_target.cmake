file(REMOVE_RECURSE
  "libfleet_memctl.a"
)
