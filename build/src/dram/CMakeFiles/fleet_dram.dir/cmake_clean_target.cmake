file(REMOVE_RECURSE
  "libfleet_dram.a"
)
