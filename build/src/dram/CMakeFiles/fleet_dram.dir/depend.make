# Empty dependencies file for fleet_dram.
# This may be replaced when dependencies are built.
