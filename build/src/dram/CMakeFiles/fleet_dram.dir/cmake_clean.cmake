file(REMOVE_RECURSE
  "CMakeFiles/fleet_dram.dir/dram.cc.o"
  "CMakeFiles/fleet_dram.dir/dram.cc.o.d"
  "libfleet_dram.a"
  "libfleet_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
