# Empty compiler generated dependencies file for fleet_sim.
# This may be replaced when dependencies are built.
