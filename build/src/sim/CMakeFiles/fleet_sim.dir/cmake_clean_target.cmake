file(REMOVE_RECURSE
  "libfleet_sim.a"
)
