file(REMOVE_RECURSE
  "CMakeFiles/fleet_sim.dir/simulator.cc.o"
  "CMakeFiles/fleet_sim.dir/simulator.cc.o.d"
  "libfleet_sim.a"
  "libfleet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
