file(REMOVE_RECURSE
  "CMakeFiles/fleet_system.dir/fleet_system.cc.o"
  "CMakeFiles/fleet_system.dir/fleet_system.cc.o.d"
  "CMakeFiles/fleet_system.dir/pu_fast.cc.o"
  "CMakeFiles/fleet_system.dir/pu_fast.cc.o.d"
  "CMakeFiles/fleet_system.dir/pu_rtl.cc.o"
  "CMakeFiles/fleet_system.dir/pu_rtl.cc.o.d"
  "CMakeFiles/fleet_system.dir/pu_testbench.cc.o"
  "CMakeFiles/fleet_system.dir/pu_testbench.cc.o.d"
  "CMakeFiles/fleet_system.dir/splitter.cc.o"
  "CMakeFiles/fleet_system.dir/splitter.cc.o.d"
  "libfleet_system.a"
  "libfleet_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
