file(REMOVE_RECURSE
  "libfleet_system.a"
)
