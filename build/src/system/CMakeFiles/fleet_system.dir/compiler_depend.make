# Empty compiler generated dependencies file for fleet_system.
# This may be replaced when dependencies are built.
