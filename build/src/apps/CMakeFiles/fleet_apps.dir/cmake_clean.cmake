file(REMOVE_RECURSE
  "CMakeFiles/fleet_apps.dir/bloom.cc.o"
  "CMakeFiles/fleet_apps.dir/bloom.cc.o.d"
  "CMakeFiles/fleet_apps.dir/dtree.cc.o"
  "CMakeFiles/fleet_apps.dir/dtree.cc.o.d"
  "CMakeFiles/fleet_apps.dir/intcode.cc.o"
  "CMakeFiles/fleet_apps.dir/intcode.cc.o.d"
  "CMakeFiles/fleet_apps.dir/json.cc.o"
  "CMakeFiles/fleet_apps.dir/json.cc.o.d"
  "CMakeFiles/fleet_apps.dir/regex.cc.o"
  "CMakeFiles/fleet_apps.dir/regex.cc.o.d"
  "CMakeFiles/fleet_apps.dir/regex_nfa.cc.o"
  "CMakeFiles/fleet_apps.dir/regex_nfa.cc.o.d"
  "CMakeFiles/fleet_apps.dir/registry.cc.o"
  "CMakeFiles/fleet_apps.dir/registry.cc.o.d"
  "CMakeFiles/fleet_apps.dir/sw.cc.o"
  "CMakeFiles/fleet_apps.dir/sw.cc.o.d"
  "libfleet_apps.a"
  "libfleet_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
