file(REMOVE_RECURSE
  "libfleet_apps.a"
)
