
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bloom.cc" "src/apps/CMakeFiles/fleet_apps.dir/bloom.cc.o" "gcc" "src/apps/CMakeFiles/fleet_apps.dir/bloom.cc.o.d"
  "/root/repo/src/apps/dtree.cc" "src/apps/CMakeFiles/fleet_apps.dir/dtree.cc.o" "gcc" "src/apps/CMakeFiles/fleet_apps.dir/dtree.cc.o.d"
  "/root/repo/src/apps/intcode.cc" "src/apps/CMakeFiles/fleet_apps.dir/intcode.cc.o" "gcc" "src/apps/CMakeFiles/fleet_apps.dir/intcode.cc.o.d"
  "/root/repo/src/apps/json.cc" "src/apps/CMakeFiles/fleet_apps.dir/json.cc.o" "gcc" "src/apps/CMakeFiles/fleet_apps.dir/json.cc.o.d"
  "/root/repo/src/apps/regex.cc" "src/apps/CMakeFiles/fleet_apps.dir/regex.cc.o" "gcc" "src/apps/CMakeFiles/fleet_apps.dir/regex.cc.o.d"
  "/root/repo/src/apps/regex_nfa.cc" "src/apps/CMakeFiles/fleet_apps.dir/regex_nfa.cc.o" "gcc" "src/apps/CMakeFiles/fleet_apps.dir/regex_nfa.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/fleet_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/fleet_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/sw.cc" "src/apps/CMakeFiles/fleet_apps.dir/sw.cc.o" "gcc" "src/apps/CMakeFiles/fleet_apps.dir/sw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/fleet_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fleet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
