# Empty dependencies file for fleet_apps.
# This may be replaced when dependencies are built.
