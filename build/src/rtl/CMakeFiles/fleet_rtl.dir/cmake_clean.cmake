file(REMOVE_RECURSE
  "CMakeFiles/fleet_rtl.dir/circuit.cc.o"
  "CMakeFiles/fleet_rtl.dir/circuit.cc.o.d"
  "CMakeFiles/fleet_rtl.dir/sim.cc.o"
  "CMakeFiles/fleet_rtl.dir/sim.cc.o.d"
  "CMakeFiles/fleet_rtl.dir/verilog.cc.o"
  "CMakeFiles/fleet_rtl.dir/verilog.cc.o.d"
  "libfleet_rtl.a"
  "libfleet_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
