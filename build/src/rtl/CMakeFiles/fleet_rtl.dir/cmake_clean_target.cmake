file(REMOVE_RECURSE
  "libfleet_rtl.a"
)
