# Empty dependencies file for fleet_rtl.
# This may be replaced when dependencies are built.
