# Empty dependencies file for fleet_compile.
# This may be replaced when dependencies are built.
