file(REMOVE_RECURSE
  "CMakeFiles/fleet_compile.dir/compiler.cc.o"
  "CMakeFiles/fleet_compile.dir/compiler.cc.o.d"
  "libfleet_compile.a"
  "libfleet_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
