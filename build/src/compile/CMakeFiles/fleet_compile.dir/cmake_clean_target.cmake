file(REMOVE_RECURSE
  "libfleet_compile.a"
)
