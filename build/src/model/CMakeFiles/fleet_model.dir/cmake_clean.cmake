file(REMOVE_RECURSE
  "CMakeFiles/fleet_model.dir/area.cc.o"
  "CMakeFiles/fleet_model.dir/area.cc.o.d"
  "CMakeFiles/fleet_model.dir/power.cc.o"
  "CMakeFiles/fleet_model.dir/power.cc.o.d"
  "libfleet_model.a"
  "libfleet_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
