# Empty compiler generated dependencies file for fleet_model.
# This may be replaced when dependencies are built.
