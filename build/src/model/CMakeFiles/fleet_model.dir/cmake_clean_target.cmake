file(REMOVE_RECURSE
  "libfleet_model.a"
)
