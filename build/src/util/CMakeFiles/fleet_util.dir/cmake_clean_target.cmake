file(REMOVE_RECURSE
  "libfleet_util.a"
)
