file(REMOVE_RECURSE
  "CMakeFiles/fleet_util.dir/bitbuf.cc.o"
  "CMakeFiles/fleet_util.dir/bitbuf.cc.o.d"
  "CMakeFiles/fleet_util.dir/loc.cc.o"
  "CMakeFiles/fleet_util.dir/loc.cc.o.d"
  "CMakeFiles/fleet_util.dir/logging.cc.o"
  "CMakeFiles/fleet_util.dir/logging.cc.o.d"
  "CMakeFiles/fleet_util.dir/ops.cc.o"
  "CMakeFiles/fleet_util.dir/ops.cc.o.d"
  "CMakeFiles/fleet_util.dir/table.cc.o"
  "CMakeFiles/fleet_util.dir/table.cc.o.d"
  "libfleet_util.a"
  "libfleet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
