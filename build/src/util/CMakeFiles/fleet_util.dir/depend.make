# Empty dependencies file for fleet_util.
# This may be replaced when dependencies are built.
