#include <gtest/gtest.h>

#include <regex>

#include "apps/bloom.h"
#include "apps/dtree.h"
#include "apps/intcode.h"
#include "apps/json.h"
#include "apps/regex.h"
#include "apps/registry.h"
#include "apps/sw.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "system/pu_fast.h"
#include "system/pu_rtl.h"
#include "system/pu_testbench.h"
#include "util/rng.h"

namespace fleet {
namespace apps {
namespace {

/** Functional simulator output must equal the golden reference. */
void
checkFunctionalMatchesGolden(const Application &app, uint64_t seed,
                             uint64_t bytes)
{
    Rng rng(seed);
    BitBuffer stream = app.generateStream(rng, bytes);
    BitBuffer expected = app.golden(stream);
    sim::FunctionalSimulator simulator(app.program());
    sim::RunResult result = simulator.run(stream);
    ASSERT_TRUE(result.output == expected)
        << app.name() << " seed " << seed << ": functional output ("
        << result.output.sizeBits() << " bits) != golden ("
        << expected.sizeBits() << " bits)";
}

/** Compiled RTL and the fast replay model must agree with the golden. */
void
checkBackendsMatchGolden(const Application &app, uint64_t seed,
                         uint64_t bytes)
{
    Rng rng(seed);
    BitBuffer stream = app.generateStream(rng, bytes);
    BitBuffer expected = app.golden(stream);

    system::RtlPu rtl_pu(app.program());
    system::FastPu fast_pu(app.program(), stream);
    system::TestbenchOptions stalls{0.8, 0.8, seed + 1, 1ULL << 30};

    auto rtl_result = system::runPu(rtl_pu, stream, stalls);
    auto fast_result = system::runPu(fast_pu, stream, stalls);
    ASSERT_TRUE(rtl_result.output == expected)
        << app.name() << ": RTL output mismatch";
    ASSERT_EQ(rtl_result.cycles, fast_result.cycles)
        << app.name() << ": RTL and fast model cycle counts differ";
}

class AllApps : public ::testing::TestWithParam<int>
{
  protected:
    std::unique_ptr<Application>
    app() const
    {
        auto apps = allApplications();
        return std::move(apps[GetParam()]);
    }
};

TEST_P(AllApps, FunctionalMatchesGolden)
{
    auto application = app();
    for (uint64_t seed : {101u, 202u, 303u})
        checkFunctionalMatchesGolden(*application, seed, 6000);
}

TEST_P(AllApps, RtlAndFastMatchGoldenUnderStalls)
{
    auto application = app();
    checkBackendsMatchGolden(*application, 404, 1500);
}

TEST_P(AllApps, FullSystemEndToEnd)
{
    auto application = app();
    Rng rng(505);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 5; ++p)
        streams.push_back(application->generateStream(rng, 2500));

    system::SystemConfig config;
    config.numChannels = 2;
    system::FleetSystem fleet_system(application->program(), config,
                                     streams);
    fleet_system.run();
    for (int p = 0; p < 5; ++p) {
        ASSERT_TRUE(fleet_system.output(p) ==
                    application->golden(streams[p]))
            << application->name() << " PU " << p;
    }
}

TEST_P(AllApps, ProgramCompiles)
{
    auto application = app();
    EXPECT_NO_THROW(compile::compileProgram(application->program()));
}

INSTANTIATE_TEST_SUITE_P(Suite, AllApps, ::testing::Range(0, 6),
                         [](const auto &info) {
                             auto apps = allApplications();
                             return apps[info.param]->name();
                         });

// ---------------------------------------------------------------------------
// Application-specific behaviour
// ---------------------------------------------------------------------------

TEST(IntcodeApp, RoundTripThroughDecoder)
{
    IntcodeApp app;
    for (uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        BitBuffer stream = app.generateStream(rng, 4096);
        BitBuffer encoded = app.golden(stream);
        auto decoded = IntcodeApp::decode(encoded);
        uint64_t count = stream.sizeBits() / 32;
        ASSERT_EQ(decoded.size(), count);
        for (uint64_t i = 0; i < count; ++i)
            ASSERT_EQ(decoded[i], stream.readBits(i * 32, 32))
                << "int " << i;
    }
}

TEST(IntcodeApp, CompressesSmallValues)
{
    IntcodeApp app(IntcodeParams{5});
    Rng rng(7);
    BitBuffer stream = app.generateStream(rng, 8192);
    BitBuffer encoded = app.golden(stream);
    // 5-bit values in 4-int blocks: ~1 header + 4x6-bit fields per 16
    // input bytes => at least 2.5x compression.
    EXPECT_LT(encoded.sizeBits() * 5, stream.sizeBits() * 2);
}

TEST(IntcodeApp, IncompressibleValuesExpandOnlySlightly)
{
    IntcodeApp app(IntcodeParams{32});
    Rng rng(8);
    BitBuffer stream = app.generateStream(rng, 8192);
    BitBuffer encoded = app.golden(stream);
    EXPECT_LT(encoded.sizeBits(), stream.sizeBits() * 11 / 10);
}

TEST(IntcodeApp, VarByteBits)
{
    EXPECT_EQ(IntcodeApp::varByteBits(0), 8);
    EXPECT_EQ(IntcodeApp::varByteBits(127), 8);
    EXPECT_EQ(IntcodeApp::varByteBits(128), 16);
    EXPECT_EQ(IntcodeApp::varByteBits((1u << 14) - 1), 16);
    EXPECT_EQ(IntcodeApp::varByteBits(1u << 14), 24);
    EXPECT_EQ(IntcodeApp::varByteBits(0xffffffffu), 40);
}

TEST(RegexApp, GoldenAgreesWithStdRegex)
{
    RegexApp app;
    std::regex std_pattern("[\\w.+-]+@[\\w.-]+\\.[\\w.-]+");
    Rng rng(11);
    BitBuffer stream = app.generateStream(rng, 3000);
    std::string text = stream.toString();

    // Collect match-end positions from our NFA.
    BitBuffer ours = app.golden(stream);
    std::set<uint64_t> end_positions;
    for (uint64_t i = 0; i < ours.sizeBits() / 32; ++i)
        end_positions.insert(ours.readBits(i * 32, 32));

    // Every std::regex match's end-1 must be reported by the NFA (the
    // NFA reports all match ends, std::regex reports leftmost-longest
    // non-overlapping ones).
    auto begin = std::sregex_iterator(text.begin(), text.end(),
                                      std_pattern);
    int matches = 0;
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        uint64_t end = it->position() + it->length() - 1;
        EXPECT_TRUE(end_positions.count(end))
            << "std::regex match ending at " << end << " missed";
        ++matches;
    }
    EXPECT_GT(matches, 3);
}

TEST(RegexApp, SimplePatterns)
{
    struct Case
    {
        const char *pattern;
        const char *text;
        std::vector<uint64_t> ends;
    };
    const Case cases[] = {
        {"abc", "xxabcxabc", {4, 8}},
        {"a+b", "aab ab b", {2, 5}},
        {"a|bb", "abba", {0, 2, 3}},
        {"x[0-9]*y", "xy x1y x12z", {1, 5}},
        {"(ab)+c", "ababc abc", {4, 8}},
        {"a.c", "abc a\nc axc", {2, 10}},
    };
    for (const auto &c : cases) {
        RegexApp app(RegexParams{c.pattern});
        BitBuffer stream = BitBuffer::fromString(c.text);
        BitBuffer out = app.golden(stream);
        std::vector<uint64_t> got;
        for (uint64_t i = 0; i < out.sizeBits() / 32; ++i)
            got.push_back(out.readBits(i * 32, 32));
        EXPECT_EQ(got, c.ends) << "pattern " << c.pattern;
    }
}

TEST(RegexApp, NullablePatternRejected)
{
    EXPECT_THROW(RegexApp(RegexParams{"a*"}), FatalError);
}

TEST(RegexApp, MalformedPatternsRejected)
{
    EXPECT_THROW(buildRegexNfa("a("), FatalError);
    EXPECT_THROW(buildRegexNfa("[a"), FatalError);
    EXPECT_THROW(buildRegexNfa("*a"), FatalError);
    EXPECT_THROW(buildRegexNfa("a\\"), FatalError);
}

TEST(RegexApp, ClassIntervals)
{
    std::bitset<256> cls;
    cls.set('a');
    cls.set('b');
    cls.set('c');
    cls.set('x');
    auto intervals = classIntervals(cls);
    ASSERT_EQ(intervals.size(), 2u);
    EXPECT_EQ(intervals[0], std::make_pair(int('a'), int('c')));
    EXPECT_EQ(intervals[1], std::make_pair(int('x'), int('x')));
}

TEST(SwApp, FindsPlantedMatches)
{
    SwApp app;
    Rng rng(13);
    BitBuffer stream = app.generateStream(rng, 20000);
    BitBuffer out = app.golden(stream);
    // The generator plants near-matches with probability 1/500 per char,
    // so a 20 kB text should produce hits.
    EXPECT_GT(out.sizeBits(), 0u);
}

TEST(SwApp, ExactMatchScoresFullLength)
{
    SwParams params;
    params.targetLen = 4;
    SwApp app(params);
    BitBuffer stream;
    for (char c : std::string("ACGT"))
        stream.appendBits(uint8_t(c), 8);
    stream.appendBits(8, 8); // threshold = 4 matches x 2
    for (char c : std::string("xxACGTxx"))
        stream.appendBits(uint8_t(c), 8);
    BitBuffer out = app.golden(stream);
    ASSERT_EQ(out.sizeBits(), 32u);
    EXPECT_EQ(out.readBits(0, 32), 5u); // match ends at text index 5
}

TEST(SwApp, GappedMatchStillScores)
{
    // One deletion: threshold reachable via the gap penalty.
    SwParams params;
    params.targetLen = 6;
    SwApp app(params);
    BitBuffer stream;
    for (char c : std::string("AACCGG"))
        stream.appendBits(uint8_t(c), 8);
    stream.appendBits(8, 8); // score 10 - gap 1 - ... comfortably > 8
    for (char c : std::string("ttAACGGtt")) // 'C' deleted
        stream.appendBits(uint8_t(c), 8);
    BitBuffer out = app.golden(stream);
    EXPECT_GT(out.sizeBits(), 0u);
}

TEST(BloomApp, NoFalseNegatives)
{
    BloomApp app;
    Rng rng(17);
    BitBuffer stream = app.generateStream(rng, 3 * 512 * 4);
    BitBuffer filters = app.golden(stream);
    const auto &params = app.params();
    int words = params.filterBits / params.wordBits;
    ASSERT_EQ(filters.sizeBits(),
              uint64_t(3) * words * params.wordBits);
    int index_bits = bitsToRepresent(uint64_t(params.filterBits) - 1);
    for (int block = 0; block < 3; ++block) {
        for (int i = 0; i < params.blockItems; ++i) {
            uint32_t item = uint32_t(stream.readBits(
                (uint64_t(block) * params.blockItems + i) * 32, 32));
            for (int h = 0; h < params.numHashes; ++h) {
                uint32_t bit =
                    uint32_t(item * BloomApp::hashConstant(h)) >>
                    (32 - index_bits);
                uint64_t word = filters.readBits(
                    (uint64_t(block) * words + bit / params.wordBits) *
                        params.wordBits,
                    params.wordBits);
                ASSERT_TRUE(word & (uint64_t(1) << (bit % params.wordBits)))
                    << "block " << block << " item " << i;
            }
        }
    }
}

TEST(DtreeApp, MatchesDirectEvaluation)
{
    DtreeApp app;
    Rng rng(19);
    BitBuffer stream = app.generateStream(rng, 4000);
    BitBuffer out = app.golden(stream);
    EXPECT_GT(out.sizeBits(), 0u);
    EXPECT_EQ(out.sizeBits() % 32, 0u);
}

TEST(JsonApp, ExtractsExpectedFields)
{
    JsonApp app;
    std::string text =
        "{\"user\":{\"name\":\"ada\",\"geo\":{\"city\":\"zurich\"}},"
        "\"id\":\"42\",\"status\":\"ok\"}\n"
        "{\"meta\":{\"tag\":\"x1\"},\"namex\":\"no\",\"na\":\"no\"}\n";
    BitBuffer stream;
    for (uint8_t byte : app.trieConfig())
        stream.appendBits(byte, 8);
    stream.appendBuffer(BitBuffer::fromString(text));

    BitBuffer expected = app.golden(stream);
    EXPECT_EQ(expected.toString(), "ada\nzurich\n42\nx1\n");

    sim::FunctionalSimulator simulator(app.program());
    EXPECT_EQ(simulator.run(stream).output.toString(),
              "ada\nzurich\n42\nx1\n");
}

TEST(JsonApp, DecoyKeysDoNotMatch)
{
    JsonApp app(JsonParams{{"ab"}, 256, 64});
    std::string text =
        "{\"a\":\"no\",\"abc\":\"no\",\"ab\":\"yes\","
        "\"ab\":{\"x\":\"no\"}}\n";
    BitBuffer stream;
    for (uint8_t byte : app.trieConfig())
        stream.appendBits(byte, 8);
    stream.appendBuffer(BitBuffer::fromString(text));
    sim::FunctionalSimulator simulator(app.program());
    EXPECT_EQ(simulator.run(stream).output.toString(), "yes\n");
}

TEST(JsonApp, SiblingGroupsWalkCorrectly)
{
    // Paths sharing a level exercise the consecutive-sibling walk.
    JsonApp app(JsonParams{{"aa", "ab", "b"}, 256, 64});
    std::string text = "{\"ab\":\"1\",\"b\":\"2\",\"aa\":\"3\","
                       "\"ba\":\"no\",\"a\":\"no\"}\n";
    BitBuffer stream;
    for (uint8_t byte : app.trieConfig())
        stream.appendBits(byte, 8);
    stream.appendBuffer(BitBuffer::fromString(text));
    sim::FunctionalSimulator simulator(app.program());
    EXPECT_EQ(simulator.run(stream).output.toString(), "1\n2\n3\n");
}

TEST(Registry, MakeByName)
{
    EXPECT_EQ(makeApplication("Regex")->name(), "Regex");
    EXPECT_THROW(makeApplication("NoSuchApp"), FatalError);
}

} // namespace
} // namespace apps
} // namespace fleet
