#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rtl/batch_sim.h"
#include "rtl/circuit.h"
#include "rtl/opt.h"
#include "rtl/sim.h"
#include "rtl/tape.h"
#include "util/rng.h"

/**
 * Optimizer purity and engine-equivalence tests on randomized circuits
 * (ISSUE 4). The optimizer (rtl/opt.h) may only rewrite a circuit into
 * one with identical observable behaviour: every output, register, and
 * BRAM word must match the unoptimized interpreter cycle for cycle. The
 * same random circuits double as an equivalence suite for the tape and
 * batched evaluators, independent of the compiler front end feeding
 * them processing-unit circuits.
 */

namespace fleet {
namespace {

using rtl::BatchSimulator;
using rtl::Circuit;
using rtl::NodeId;
using rtl::OptResult;
using rtl::Simulator;
using rtl::TapeProgram;
using rtl::TapeSimulator;

/** Random well-formed circuit: a node soup over a few inputs, registers,
 * and BRAMs, with constants mixed in to give the folder something to do,
 * plus deliberately unreferenced nodes for DCE to remove. */
Circuit
randomCircuit(uint64_t seed)
{
    Rng rng(seed);
    Circuit c("rand" + std::to_string(seed));

    struct Pool
    {
        std::vector<NodeId> nodes;
        const Circuit &c;
        Rng &rng;
        NodeId any() { return nodes[rng.nextBelow(nodes.size())]; }
        int width(NodeId n) { return c.width(n); }
    };
    Pool pool{{}, c, rng};

    int num_inputs = 1 + static_cast<int>(rng.nextBelow(3));
    for (int i = 0; i < num_inputs; ++i) {
        int w = 1 + static_cast<int>(rng.nextBelow(24));
        pool.nodes.push_back(c.addInput("in" + std::to_string(i), w));
    }
    int num_regs = 1 + static_cast<int>(rng.nextBelow(3));
    for (int i = 0; i < num_regs; ++i) {
        int w = 1 + static_cast<int>(rng.nextBelow(16));
        int r = c.addReg("r" + std::to_string(i), w,
                         rng.next() & mask64(w));
        pool.nodes.push_back(c.regOut(r));
    }
    int num_brams = static_cast<int>(rng.nextBelow(3));
    for (int i = 0; i < num_brams; ++i) {
        int elements = 4 << rng.nextBelow(3);
        int b = c.addBram("m" + std::to_string(i), elements,
                          4 + static_cast<int>(rng.nextBelow(8)));
        pool.nodes.push_back(c.bramRdData(b));
    }

    int num_ops = 24 + static_cast<int>(rng.nextBelow(40));
    for (int i = 0; i < num_ops; ++i) {
        // A third of operands are constants (often 0/1/all-ones) so the
        // identity/absorption rules actually fire.
        auto operand = [&]() -> NodeId {
            if (rng.nextChance(1, 3)) {
                int w = 1 + static_cast<int>(rng.nextBelow(16));
                uint64_t v;
                switch (rng.nextBelow(4)) {
                  case 0: v = 0; break;
                  case 1: v = 1; break;
                  case 2: v = mask64(w); break;
                  default: v = rng.next() & mask64(w); break;
                }
                return c.makeConst(v, w);
            }
            return pool.any();
        };
        NodeId a = operand();
        NodeId n;
        switch (rng.nextBelow(8)) {
          case 0:
          case 1:
          case 2: {
            static const BinOp kOps[] = {
                BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And,
                BinOp::Or,  BinOp::Xor, BinOp::Shl, BinOp::Shr,
                BinOp::Eq,  BinOp::Ne,  BinOp::Ult, BinOp::Ule,
                BinOp::Ugt, BinOp::Uge, BinOp::Slt, BinOp::Sle,
                BinOp::Sgt, BinOp::Sge, BinOp::LAnd, BinOp::LOr,
            };
            n = c.makeBin(kOps[rng.nextBelow(std::size(kOps))], a,
                          operand());
            break;
          }
          case 3:
            n = c.makeUn(rng.nextChance(1, 3)
                             ? UnOp::Neg
                             : (rng.nextChance(1, 2) ? UnOp::Not
                                                     : UnOp::LNot),
                         a);
            break;
          case 4:
            n = c.makeMux(operand(), a, operand());
            break;
          case 5: {
            int w = pool.width(a);
            int lo = static_cast<int>(rng.nextBelow(w));
            int hi = lo + static_cast<int>(rng.nextBelow(w - lo));
            n = c.makeSlice(a, hi, lo);
            break;
          }
          case 6: {
            NodeId b = operand();
            if (pool.width(a) + pool.width(b) <= 64)
                n = c.makeConcat(a, b);
            else
                n = c.makeResize(a, 8);
            break;
          }
          default:
            n = c.makeResize(a, 1 + static_cast<int>(rng.nextBelow(32)));
            break;
        }
        pool.nodes.push_back(n);
    }

    for (int i = 0; i < num_regs; ++i) {
        NodeId next = c.makeResize(pool.any(), c.regs()[i].width);
        NodeId enable =
            rng.nextChance(1, 2) ? rtl::kNoNode : c.makeResize(pool.any(), 1);
        c.setRegNext(i, next, enable);
    }
    for (int i = 0; i < num_brams; ++i) {
        const auto &b = c.brams()[i];
        c.setBramPorts(i, c.makeResize(pool.any(), b.addrWidth),
                       c.makeResize(pool.any(), 1),
                       c.makeResize(pool.any(), b.addrWidth),
                       c.makeResize(pool.any(), b.width));
    }
    int num_outputs = 2 + static_cast<int>(rng.nextBelow(4));
    for (int i = 0; i < num_outputs; ++i)
        c.addOutput("out" + std::to_string(i), pool.any());

    c.validate();
    return c;
}

/** Drive `cycles` cycles of common random input through both simulators
 * (templated so Simulator/TapeSimulator mix freely), comparing every
 * output each cycle and the full architectural state at the end. */
template <typename SimA, typename SimB>
void
lockstep(const Circuit &ca, SimA &sa, const Circuit &cb, SimB &sb,
         uint64_t seed, int cycles)
{
    ASSERT_EQ(ca.outputs().size(), cb.outputs().size());
    Rng rng(seed);
    sa.reset();
    sb.reset();
    for (int cycle = 0; cycle < cycles; ++cycle) {
        for (size_t p = 0; p < ca.inputs().size(); ++p) {
            uint64_t v = rng.next() & mask64(ca.inputs()[p].width);
            sa.setInput(static_cast<int>(p), v);
            sb.setInput(static_cast<int>(p), v);
        }
        sa.evalComb();
        sb.evalComb();
        for (size_t o = 0; o < ca.outputs().size(); ++o)
            ASSERT_EQ(sa.value(ca.outputs()[o].node),
                      sb.value(cb.outputs()[o].node))
                << "seed " << seed << " cycle " << cycle << " output "
                << ca.outputs()[o].name;
        sa.step();
        sb.step();
    }
    for (size_t r = 0; r < ca.regs().size(); ++r)
        ASSERT_EQ(sa.regValue(static_cast<int>(r)),
                  sb.regValue(static_cast<int>(r)))
            << "seed " << seed << " reg " << ca.regs()[r].name;
    for (size_t b = 0; b < ca.brams().size(); ++b)
        for (int addr = 0; addr < ca.brams()[b].elements; ++addr)
            ASSERT_EQ(sa.bramWord(static_cast<int>(b), addr),
                      sb.bramWord(static_cast<int>(b), addr))
                << "seed " << seed << " bram " << ca.brams()[b].name
                << " addr " << addr;
}

class RtlOptRandom : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RtlOptRandom, OptimizerPreservesObservableBehaviour)
{
    uint64_t seed = GetParam();
    Circuit source = randomCircuit(seed);
    size_t source_nodes = source.nodes().size();

    OptResult opt = rtl::optimize(source);
    // The source circuit is read-only to the optimizer (Verilog and area
    // accounting keep reading it).
    EXPECT_EQ(source.nodes().size(), source_nodes);
    EXPECT_EQ(opt.stats.sourceNodes, source_nodes);
    EXPECT_EQ(opt.stats.resultNodes, opt.circuit.nodes().size());

    Simulator golden(source);
    Simulator optimized(opt.circuit);
    lockstep(source, golden, opt.circuit, optimized, seed * 31 + 7, 300);
}

TEST_P(RtlOptRandom, TapeMatchesInterpreter)
{
    uint64_t seed = GetParam();
    Circuit source = randomCircuit(seed);
    Simulator golden(source);
    TapeSimulator tape(source);
    lockstep(source, golden, source, tape, seed * 37 + 5, 300);
}

TEST_P(RtlOptRandom, UnoptimizedTapeMatchesInterpreter)
{
    uint64_t seed = GetParam();
    Circuit source = randomCircuit(seed);
    Simulator golden(source);
    TapeSimulator tape(source, /*optimize=*/false);
    lockstep(source, golden, source, tape, seed * 41 + 3, 200);
}

TEST_P(RtlOptRandom, BatchLanesMatchInterpreter)
{
    uint64_t seed = GetParam();
    Circuit source = randomCircuit(seed);
    auto program = std::make_shared<const TapeProgram>(
        TapeProgram::compile(source));

    // Each lane runs an independent random input sequence; every lane
    // must match its own scalar interpreter exactly even though all
    // lanes advance through one evalAll()/step() pair per cycle.
    constexpr int kLanes = 5;
    BatchSimulator batch(program, kLanes);
    std::vector<std::unique_ptr<Simulator>> refs;
    std::vector<Rng> rngs;
    for (int l = 0; l < kLanes; ++l) {
        refs.push_back(std::make_unique<Simulator>(source));
        rngs.emplace_back(seed * 1000 + l);
    }
    batch.reset();
    for (auto &ref : refs)
        ref->reset();

    for (int cycle = 0; cycle < 200; ++cycle) {
        for (int l = 0; l < kLanes; ++l)
            for (size_t p = 0; p < source.inputs().size(); ++p) {
                uint64_t v =
                    rngs[l].next() & mask64(source.inputs()[p].width);
                batch.setInput(l, static_cast<int>(p), v);
                refs[l]->setInput(static_cast<int>(p), v);
            }
        batch.evalAll();
        for (int l = 0; l < kLanes; ++l) {
            refs[l]->evalComb();
            for (const auto &out : source.outputs())
                ASSERT_EQ(batch.value(l, out.node),
                          refs[l]->value(out.node))
                    << "seed " << seed << " cycle " << cycle << " lane "
                    << l << " output " << out.name;
        }
        batch.step();
        for (auto &ref : refs)
            ref->step();
    }
    for (int l = 0; l < kLanes; ++l) {
        for (size_t r = 0; r < source.regs().size(); ++r)
            ASSERT_EQ(batch.regValue(l, static_cast<int>(r)),
                      refs[l]->regValue(static_cast<int>(r)))
                << "seed " << seed << " lane " << l;
        for (size_t b = 0; b < source.brams().size(); ++b)
            for (int addr = 0; addr < source.brams()[b].elements; ++addr)
                ASSERT_EQ(batch.bramWord(l, static_cast<int>(b), addr),
                          refs[l]->bramWord(static_cast<int>(b), addr))
                    << "seed " << seed << " lane " << l;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlOptRandom,
                         ::testing::Range<uint64_t>(1, 33));

TEST(RtlOpt, FoldsConstantExpressions)
{
    Circuit c("fold");
    NodeId x = c.addInput("x", 8);
    // (x + 0) ^ 0 | (3 * 4 sliced to 8) — the additive identities vanish
    // and the constant product folds, leaving a small core.
    NodeId sum = c.makeBin(BinOp::Add, x, c.makeConst(0, 8));
    NodeId v = c.makeBin(BinOp::Xor, sum, c.makeConst(0, 8));
    NodeId prod = c.makeBin(BinOp::Mul, c.makeConst(3, 4),
                            c.makeConst(4, 4));
    c.addOutput("o", c.makeBin(BinOp::Or, v, c.makeResize(prod, 8)));
    c.validate();

    OptResult opt = rtl::optimize(c);
    EXPECT_LT(opt.circuit.nodes().size(), c.nodes().size());

    Simulator a(c), b(opt.circuit);
    lockstep(c, a, opt.circuit, b, 99, 50);
}

TEST(RtlOpt, EliminatesDeadNodes)
{
    Circuit c("dce");
    NodeId x = c.addInput("x", 8);
    NodeId y = c.addInput("y", 8);
    // A chain of unreferenced work plus one live output.
    NodeId dead = c.makeBin(BinOp::Mul, x, y);
    dead = c.makeBin(BinOp::Add, dead, x);
    c.makeUn(UnOp::Not, dead);
    c.addOutput("o", c.makeBin(BinOp::Xor, x, y));
    c.validate();

    OptResult opt = rtl::optimize(c);
    EXPECT_GT(opt.stats.deadNodes, 0u);
    EXPECT_LT(opt.stats.resultNodes, opt.stats.sourceNodes);

    Simulator a(c), b(opt.circuit);
    lockstep(c, a, opt.circuit, b, 123, 50);
}

TEST(RtlOpt, TapeAliasesZeroExtensions)
{
    // {0, x} must not cost a tape op: the zero-extension aliases the
    // operand's slot (values are stored already masked).
    Circuit c("zext");
    NodeId x = c.addInput("x", 8);
    NodeId wide = c.makeResize(x, 20);
    c.addOutput("o", wide);
    c.validate();

    TapeProgram t = TapeProgram::compile(c, /*optimize=*/false);
    EXPECT_TRUE(t.ops.empty());
    EXPECT_EQ(t.slotOf(wide), t.slotOf(x));
}

} // namespace
} // namespace fleet
