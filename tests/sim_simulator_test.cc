#include <gtest/gtest.h>

#include "lang/builder.h"
#include "sim/simulator.h"
#include "test_programs.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fleet {
namespace sim {
namespace {

using lang::Bram;
using lang::Program;
using lang::ProgramBuilder;
using lang::Value;
using lang::VecReg;
using lang::mux;

BitBuffer
tokens8(std::initializer_list<uint64_t> values)
{
    BitBuffer buf;
    for (uint64_t v : values)
        buf.appendBits(v, 8);
    return buf;
}

TEST(Simulator, IdentityEchoesStream)
{
    FunctionalSimulator simulator(testprogs::identity());
    BitBuffer input = BitBuffer::fromString("hello fleet");
    RunResult result = simulator.run(input);
    EXPECT_EQ(result.output.toString(), "hello fleet");
    EXPECT_EQ(result.tokens, 11u);
    // One virtual cycle per token plus the cleanup cycle.
    EXPECT_EQ(result.vcycles, 12u);
    EXPECT_EQ(result.emits, 11u);
}

TEST(Simulator, IdentityEmptyStream)
{
    FunctionalSimulator simulator(testprogs::identity());
    RunResult result = simulator.run(BitBuffer());
    EXPECT_EQ(result.output.sizeBits(), 0u);
    EXPECT_EQ(result.tokens, 0u);
    EXPECT_EQ(result.vcycles, 1u); // cleanup cycle only
}

TEST(Simulator, StreamSumEmitsOnCleanup)
{
    FunctionalSimulator simulator(testprogs::streamSum());
    RunResult result = simulator.run(tokens8({1, 2, 3, 200, 250}));
    ASSERT_EQ(result.emits, 1u);
    EXPECT_EQ(result.output.readBits(0, 32), 456u);
}

TEST(Simulator, HistogramMatchesReference)
{
    const int block = 100;
    FunctionalSimulator simulator(testprogs::blockFrequencies(block));
    Rng rng(11);
    BitBuffer input;
    std::vector<uint64_t> values;
    // Whole number of blocks: the paper notes the final (full) block's
    // histogram is emitted by the stream_finished execution of the logic.
    for (int i = 0; i < 3 * block; ++i) {
        uint64_t v = rng.nextBelow(16); // concentrate to get counts > 1
        values.push_back(v);
        input.appendBits(v, 8);
    }
    RunResult result = simulator.run(input);

    std::vector<std::vector<int>> expected_blocks;
    std::vector<int> hist(256, 0);
    int in_block = 0;
    for (uint64_t v : values) {
        hist[v]++;
        if (++in_block == block) {
            expected_blocks.push_back(hist);
            hist.assign(256, 0);
            in_block = 0;
        }
    }
    ASSERT_EQ(expected_blocks.size(), 3u);

    ASSERT_EQ(result.emits, expected_blocks.size() * 256);
    uint64_t offset = 0;
    for (const auto &block_hist : expected_blocks) {
        for (int v = 0; v < 256; ++v) {
            ASSERT_EQ(result.output.readBits(offset, 8),
                      uint64_t(block_hist[v]))
                << "value " << v;
            offset += 8;
        }
    }
}

TEST(Simulator, WhileLoopTakesExtraVcycles)
{
    // Emit each token, then count down from it without consuming input.
    ProgramBuilder b("countdown", 8, 8);
    Value remaining = b.reg("remaining", 8, 0);
    Value started = b.reg("started", 1, 0);
    b.while_(remaining != 0, [&] {
        b.assign(remaining, remaining - 1);
    });
    b.if_(!b.streamFinished(), [&] {
        b.assign(remaining, b.input());
        b.assign(started, Value::lit(1, 1));
        b.emit(b.input());
    });
    FunctionalSimulator simulator(b.finish());
    RunResult result = simulator.run(tokens8({3, 0, 2}));
    EXPECT_EQ(result.output.readBits(0, 8), 3u);
    // Token 0 takes 1 vcycle (loop not yet active), then 3 loop vcycles
    // precede token 1, etc. Total: 1 + (3+1) + (0+1)... compute:
    // t0: loop inactive -> 1 vcycle. t1: 3 loop + 1 = 4. t2: 0 loop + 1 = 1.
    // cleanup: 2 loop + 1 = 3. Total = 9.
    EXPECT_EQ(result.vcycles, 9u);
    EXPECT_EQ(result.tokens, 3u);
}

TEST(Simulator, WhileConditionWithPathGating)
{
    // The histogram's while only runs when the enclosing if condition
    // holds; verified via vcycle counts.
    FunctionalSimulator simulator(testprogs::blockFrequencies(4));
    BitBuffer input = tokens8({1, 2, 3, 4, 5});
    RunResult result = simulator.run(input);
    // Tokens 0-3: 1 vcycle each. Token 4: counter==4 -> 256 loop + 1.
    // Cleanup: counter==1 != 4 -> ... wait, cleanup runs the histogram
    // emission only when itemCounter == 4; after token 4 the counter is 1
    // (it reset after emitting), so cleanup is 1 vcycle... but then the
    // final partial block would be lost. The paper's unit only emits
    // full-block histograms at block boundaries; the Figure 3 text notes
    // the final block is emitted because block length divides the stream
    // in their usage. Here 5 % 4 != 0 so no cleanup emission.
    EXPECT_EQ(result.vcycles, 4u + 256u + 1u + 1u);
    EXPECT_EQ(result.emits, 256u);
}

TEST(Simulator, MultipleEmitsViolation)
{
    ProgramBuilder b("bad", 8, 8);
    b.emit(b.input());
    b.emit(b.input());
    FunctionalSimulator simulator(b.finish());
    EXPECT_THROW(simulator.run(tokens8({1})), FatalError);
}

TEST(Simulator, MutuallyExclusiveEmitsAllowed)
{
    ProgramBuilder b("ok", 8, 8);
    b.if_(b.input() < 128, [&] { b.emit(b.input()); })
        .else_([&] { b.emit(Value::lit(0, 8)); });
    FunctionalSimulator simulator(b.finish());
    RunResult result = simulator.run(tokens8({5, 200, 7}));
    EXPECT_EQ(result.output.readBits(0, 8), 5u);
    EXPECT_EQ(result.output.readBits(8, 8), 0u);
    EXPECT_EQ(result.output.readBits(16, 8), 7u);
    // Cleanup cycle: input is the dummy zero token, < 128, so the unit
    // emits one extra 0. This mirrors hardware, where the cleanup virtual
    // cycle runs the same logic.
    EXPECT_EQ(result.emits, 4u);
}

TEST(Simulator, DoubleRegisterWriteViolation)
{
    ProgramBuilder b("bad", 8, 8);
    Value r = b.reg("r", 8);
    b.assign(r, 1);
    b.assign(r, 2);
    FunctionalSimulator simulator(b.finish());
    EXPECT_THROW(simulator.run(tokens8({1})), FatalError);
}

TEST(Simulator, ConditionalDoubleWriteAllowedWhenExclusive)
{
    ProgramBuilder b("ok", 8, 8);
    Value r = b.reg("r", 8);
    b.if_(b.input() == 0, [&] { b.assign(r, 1); });
    b.if_(b.input() != 0, [&] { b.assign(r, 2); });
    FunctionalSimulator simulator(b.finish());
    EXPECT_NO_THROW(simulator.run(tokens8({0, 1})));
}

TEST(Simulator, TwoBramReadAddressesViolation)
{
    ProgramBuilder b("bad", 8, 8);
    Bram m = b.bram("m", 16, 8);
    Value r = b.reg("r", 8);
    b.assign(r, (m[Value::lit(0, 4)] + m[Value::lit(1, 4)]).resize(8));
    FunctionalSimulator simulator(b.finish());
    EXPECT_THROW(simulator.run(tokens8({1})), FatalError);
}

TEST(Simulator, SameBramAddressTwiceAllowed)
{
    ProgramBuilder b("ok", 8, 8);
    Bram m = b.bram("m", 256, 8);
    b.assign(m[b.input()], m[b.input()] + 1);
    FunctionalSimulator simulator(b.finish());
    EXPECT_NO_THROW(simulator.run(tokens8({7, 7, 9})));
}

TEST(Simulator, TwoBramWritesViolation)
{
    ProgramBuilder b("bad", 8, 8);
    Bram m = b.bram("m", 16, 8);
    b.assign(m[Value::lit(0, 4)], 1);
    b.assign(m[Value::lit(1, 4)], 2);
    FunctionalSimulator simulator(b.finish());
    EXPECT_THROW(simulator.run(tokens8({1})), FatalError);
}

TEST(Simulator, BramWriteOutOfRangeViolation)
{
    ProgramBuilder b("bad", 8, 8);
    Bram m = b.bram("m", 10, 8); // non-power-of-two
    b.assign(m[b.input().slice(3, 0)], 1);
    FunctionalSimulator simulator(b.finish());
    EXPECT_THROW(simulator.run(tokens8({15})), FatalError);
    EXPECT_NO_THROW(simulator.run(tokens8({9})));
}

TEST(Simulator, VecRegParallelElementWrites)
{
    // All elements of a vector register update in one virtual cycle
    // (the Smith-Waterman row pattern).
    const int kElems = 4;
    ProgramBuilder b("vec", 8, 8);
    VecReg row = b.vreg("row", kElems, 8);
    for (int j = 0; j < kElems; ++j) {
        Value prev = j == 0 ? b.input() : row[Value::lit(j - 1, 2)];
        b.assign(row[Value::lit(j, 2)], prev);
    }
    b.emit(row[Value::lit(kElems - 1, 2)]);
    FunctionalSimulator simulator(b.finish());
    RunResult result = simulator.run(tokens8({10, 20, 30, 40, 50}));
    // The register chain delays input by kElems-1... all assignments read
    // pre-cycle state, so row[3] after t tokens holds token[t-4].
    // Emitted values: 0,0,0,0,10 then cleanup emits 20.
    EXPECT_EQ(result.output.readBits(4 * 8, 8), 10u);
    EXPECT_EQ(result.output.readBits(5 * 8, 8), 20u);
}

TEST(Simulator, VecRegSameElementTwiceViolation)
{
    ProgramBuilder b("bad", 8, 8);
    VecReg v = b.vreg("v", 4, 8);
    b.assign(v[Value::lit(0, 2)], 1);
    b.assign(v[Value::lit(0, 2)], 2);
    FunctionalSimulator simulator(b.finish());
    EXPECT_THROW(simulator.run(tokens8({1})), FatalError);
}

TEST(Simulator, ConcurrentSemanticsReadOldValues)
{
    // Classic register swap.
    ProgramBuilder b("swap", 8, 8);
    Value a = b.reg("a", 8, 1);
    Value c = b.reg("c", 8, 2);
    b.assign(a, c);
    b.assign(c, a);
    b.if_(b.streamFinished(), [&] { b.emit(a); });
    FunctionalSimulator simulator(b.finish());
    RunResult result = simulator.run(tokens8({0}));
    // One swap during token 0; during cleanup a==2 is emitted after one
    // more swap is gathered but emit reads pre-cycle value: a was 2 after
    // token 0's swap... initial a=1,c=2; after t0: a=2,c=1; cleanup reads
    // a=2.
    EXPECT_EQ(result.output.readBits(0, 8), 2u);
}

TEST(Simulator, BramReadAfterWritePreviousVcycleFlagged)
{
    ProgramBuilder b("fwd", 8, 8);
    Bram m = b.bram("m", 256, 8);
    b.assign(m[b.input()], 1);
    b.emit(m[b.input()]);
    FunctionalSimulator simulator(b.finish());
    // Same address in consecutive virtual cycles: forwarding required.
    RunResult result = simulator.run(tokens8({5, 5}));
    EXPECT_TRUE(result.usedBramForwarding);
    // Distinct addresses: no forwarding needed.
    RunResult result2 = simulator.run(tokens8({1, 2, 3}));
    EXPECT_FALSE(result2.usedBramForwarding);
}

TEST(Simulator, InfiniteWhileLoopDetected)
{
    ProgramBuilder b("spin", 8, 8);
    Value r = b.reg("r", 1, 0);
    b.while_(r == 0, [&] {
        // Never changes r.
        b.assign(r, Value::lit(0, 1));
    });
    SimOptions options;
    options.maxVcyclesPerToken = 1000;
    FunctionalSimulator simulator(b.finish(), options);
    EXPECT_THROW(simulator.run(tokens8({1})), FatalError);
}

TEST(Simulator, MisalignedStreamRejected)
{
    lang::ProgramBuilder b("t", 16, 16);
    b.emit(b.input());
    FunctionalSimulator simulator(b.finish());
    BitBuffer input;
    input.appendBits(0, 24); // not a multiple of 16
    EXPECT_THROW(simulator.run(input), FatalError);
}

TEST(Simulator, TraceRecordsConsumeAndEmit)
{
    SimOptions options;
    options.recordTrace = true;
    FunctionalSimulator simulator(testprogs::identity(), options);
    RunResult result = simulator.run(tokens8({1, 2}));
    ASSERT_EQ(result.trace.size(), 3u);
    EXPECT_EQ(result.trace[0], kVcycleConsumesToken | kVcycleEmits);
    EXPECT_EQ(result.trace[1], kVcycleConsumesToken | kVcycleEmits);
    EXPECT_EQ(result.trace[2], kVcycleConsumesToken); // cleanup, no emit
}

TEST(Simulator, RunIsRepeatable)
{
    FunctionalSimulator simulator(testprogs::blockFrequencies(10));
    BitBuffer input = tokens8({1, 1, 2, 3, 5, 8, 13, 21, 34, 55});
    RunResult first = simulator.run(input);
    RunResult second = simulator.run(input);
    EXPECT_TRUE(first.output == second.output);
    EXPECT_EQ(first.vcycles, second.vcycles);
}

} // namespace
} // namespace sim
} // namespace fleet
