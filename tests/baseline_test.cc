#include <gtest/gtest.h>

#include "apps/registry.h"
#include "baseline/cpu.h"
#include "baseline/hls.h"
#include "baseline/simt.h"
#include "baseline/timing.h"
#include "compile/compiler.h"
#include "model/area.h"
#include "model/power.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace baseline {
namespace {

// ---------------------------------------------------------------------------
// CPU kernels must be bit-identical to the golden references.
// ---------------------------------------------------------------------------

class CpuKernels : public ::testing::TestWithParam<int>
{
};

TEST_P(CpuKernels, MatchesGolden)
{
    auto apps = apps::allApplications();
    auto &app = *apps[GetParam()];
    auto kernel = makeCpuKernel(app.name());
    for (uint64_t seed : {21u, 42u}) {
        Rng rng(seed);
        BitBuffer stream = app.generateStream(rng, 8000);
        auto expected = app.golden(stream).toBytes();
        auto got = kernel->run(stream.toBytes());
        ASSERT_EQ(got, expected) << app.name() << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, CpuKernels, ::testing::Range(0, 6),
                         [](const auto &info) {
                             auto apps = apps::allApplications();
                             return apps[info.param]->name();
                         });

TEST(CpuKernels, BloomScalarAndVectorizedAgree)
{
    auto app = apps::makeApplication("BloomFilter");
    Rng rng(5);
    auto stream = app->generateStream(rng, 16384).toBytes();
    auto scalar = makeCpuKernel("BloomFilter", false)->run(stream);
    auto vectorized = makeCpuKernel("BloomFilter", true)->run(stream);
    EXPECT_EQ(scalar, vectorized);
}

TEST(CpuKernels, MeasureProducesSaneThroughput)
{
    auto app = apps::makeApplication("Regex");
    auto kernel = makeCpuKernel("Regex");
    Rng rng(6);
    std::vector<std::vector<uint8_t>> streams;
    for (int i = 0; i < 4; ++i)
        streams.push_back(app->generateStream(rng, 1 << 16).toBytes());
    MeasureOptions options;
    options.threads = 2;
    options.repeats = 2;
    auto result = measureCpu(*kernel, streams, options);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_EQ(result.inputBytes, uint64_t(4) << 16);
    EXPECT_GT(result.gbps(), 0.001);
    EXPECT_LT(result.gbps(), 100.0);
}

// ---------------------------------------------------------------------------
// SIMT divergence model.
// ---------------------------------------------------------------------------

TEST(Simt, IdenticalLanesDoNotDiverge)
{
    auto app = apps::makeApplication("JsonParsing");
    Rng rng(7);
    BitBuffer one = app->generateStream(rng, 2000);
    std::vector<BitBuffer> identical(32, one);
    SimtResult result = simulateWarps(app->program(), identical);
    EXPECT_NEAR(result.divergenceFactor(), 1.0, 1e-9);
}

TEST(Simt, DistinctStreamsDiverge)
{
    auto app = apps::makeApplication("JsonParsing");
    Rng rng(8);
    std::vector<BitBuffer> streams;
    for (int l = 0; l < 32; ++l)
        streams.push_back(app->generateStream(rng, 2000));
    SimtResult result = simulateWarps(app->program(), streams);
    // The paper measured a 2.33x improvement for identical JSON streams;
    // the model should show substantial divergence, in that ballpark.
    EXPECT_GT(result.divergenceFactor(), 1.5);
    EXPECT_LT(result.divergenceFactor(), 8.0);
}

TEST(Simt, RegularAppsDivergeLess)
{
    // Smith-Waterman executes the same row update for every character:
    // its divergence should be far below JSON parsing's.
    Rng rng(9);
    auto json = apps::makeApplication("JsonParsing");
    auto sw = apps::makeApplication("SmithWaterman");
    std::vector<BitBuffer> json_streams, sw_streams;
    for (int l = 0; l < 32; ++l) {
        json_streams.push_back(json->generateStream(rng, 1500));
        sw_streams.push_back(sw->generateStream(rng, 1500));
    }
    double json_div =
        simulateWarps(json->program(), json_streams).divergenceFactor();
    double sw_div =
        simulateWarps(sw->program(), sw_streams).divergenceFactor();
    EXPECT_GT(json_div, sw_div);
    EXPECT_LT(sw_div, 1.6);
}

TEST(Simt, ThroughputModelIsFinite)
{
    auto app = apps::makeApplication("BloomFilter");
    Rng rng(10);
    std::vector<BitBuffer> streams;
    for (int l = 0; l < 32; ++l)
        streams.push_back(app->generateStream(rng, 8192));
    SimtParams params;
    SimtResult result = simulateWarps(app->program(), streams, params);
    EXPECT_GT(result.gbps(params), 0.1);
    EXPECT_LT(result.gbps(params), 2000.0);
}

// ---------------------------------------------------------------------------
// HLS models.
// ---------------------------------------------------------------------------

TEST(Hls, MemoryModelMatchesPaperScale)
{
    HlsMemoryParams params;
    double pipelined = hlsMemoryMBps(params, false);
    double unrolled = hlsMemoryMBps(params, true);
    // Paper: 524.84 and 675.06 MB/s on one channel.
    EXPECT_NEAR(pipelined, 525.0, 15.0);
    EXPECT_NEAR(unrolled, 675.0, 15.0);
    EXPECT_NEAR(hlsMemoryCeilingMBps(), 1000.0, 1.0);
}

TEST(Hls, FleetProgramsScheduleAtIntervalOne)
{
    // Fleet's guarantee: one virtual cycle per clock. The conservative
    // HLS schedule only matches it for trivially conflict-free units.
    EXPECT_EQ(hlsInitiationInterval(testprogs::identity()), 1);
    EXPECT_EQ(hlsInitiationInterval(testprogs::streamSum()), 1);
}

TEST(Hls, ApplicationsScheduleFarAboveOne)
{
    for (auto &app : apps::allApplications()) {
        int ii = hlsInitiationInterval(app->program());
        // Regex is pure registers + one emit and genuinely schedules at
        // 1; every array-using application conflicts.
        int floor = app->name() == "Regex" ? 1 : 2;
        EXPECT_GE(ii, floor) << app->name();
        EXPECT_LE(ii, 200) << app->name();
    }
    // The two applications the paper highlights (II 15 and 18 for their
    // CUDA-derived OpenCL ports; our leaner DSL units conflict less but
    // still schedule far above Fleet's guaranteed 1).
    int json_ii =
        hlsInitiationInterval(apps::makeApplication("JsonParsing")
                                  ->program());
    int intcode_ii =
        hlsInitiationInterval(apps::makeApplication("IntegerCoding")
                                  ->program());
    EXPECT_GE(json_ii, 3);
    EXPECT_GE(intcode_ii, 4);
}

TEST(Hls, AreaPessimismIsSubstantial)
{
    auto app = apps::makeApplication("JsonParsing");
    auto compiled = compile::compileProgram(app->program());
    memctl::ControllerParams ctrl;
    auto fleet_area = model::estimatePuResources(compiled.circuit, ctrl);
    auto hls_area = hlsAreaEstimate(compiled.circuit, app->program(), ctrl);
    // Paper: 4.6x more logic cells for JSON parsing.
    double factor = double(hls_area.luts) / double(fleet_area.luts);
    EXPECT_GT(factor, 1.5);
    EXPECT_LT(factor, 12.0);
}

// ---------------------------------------------------------------------------
// Area and power models.
// ---------------------------------------------------------------------------

TEST(AreaModel, HundredsOfPusFit)
{
    model::Device device;
    memctl::ControllerParams ctrl;
    for (auto &app : apps::allApplications()) {
        auto compiled = compile::compileProgram(app->program());
        auto per_pu = model::estimatePuResources(compiled.circuit, ctrl);
        int pus = model::maxProcessingUnits(device, per_pu, ctrl);
        EXPECT_GE(pus, 64) << app->name();
        EXPECT_LE(pus, 4096) << app->name();
        EXPECT_EQ(pus % device.memoryChannels, 0) << app->name();
    }
}

TEST(AreaModel, BramAspectSelection)
{
    model::Device device;
    memctl::ControllerParams ctrl;
    // A unit with a large BRAM must fit fewer copies than one without.
    lang::ProgramBuilder big("big", 8, 8);
    lang::Bram m = big.bram("m", 32768, 32);
    big.assign(m[big.input().resize(15)], big.input().resize(32));
    auto big_unit = compile::compileProgram(big.finish());
    auto big_res = model::estimatePuResources(big_unit.circuit, ctrl);

    auto small_unit = compile::compileProgram(testprogs::identity());
    auto small_res = model::estimatePuResources(small_unit.circuit, ctrl);

    EXPECT_GT(big_res.bram36, small_res.bram36 + 20);
    EXPECT_LT(model::maxProcessingUnits(device, big_res, ctrl),
              model::maxProcessingUnits(device, small_res, ctrl));
}

TEST(PowerModel, ScalesWithPus)
{
    model::PowerParams params;
    model::Resources per_pu{2000, 1500, 4, 0};
    model::Resources controllers{100000, 140000, 0, 0};
    double p128 = model::fpgaPackagePower(params, per_pu, 128, controllers);
    double p512 = model::fpgaPackagePower(params, per_pu, 512, controllers);
    EXPECT_GT(p512, p128);
    EXPECT_GT(p128, params.fpgaStaticW);
    // Full-chip designs should land in the paper's observed range.
    EXPECT_GT(p512, 10.0);
    EXPECT_LT(p512, 40.0);
}

} // namespace
} // namespace baseline
} // namespace fleet
