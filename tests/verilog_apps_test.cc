#include <gtest/gtest.h>

#include "apps/registry.h"
#include "compile/compiler.h"
#include "rtl/verilog.h"
#include "test_programs.h"

namespace fleet {
namespace {

/** Minimal structural lint of emitted Verilog: balanced begin/end and
 * module/endmodule, every declared wire referenced, ports present. */
void
lintVerilog(const std::string &verilog, const std::string &name)
{
    EXPECT_NE(verilog.find("module " + name), std::string::npos);
    EXPECT_NE(verilog.find("endmodule"), std::string::npos);
    for (const char *port :
         {"input_token", "input_valid", "input_finished", "output_ready",
          "input_ready", "output_token", "output_valid",
          "output_finished"}) {
        EXPECT_NE(verilog.find(port), std::string::npos) << port;
    }
    // Balanced always-block structure: count standalone keywords only
    // (identifiers like "pendingLoad" contain "end" as a substring).
    auto count_keyword = [&](const std::string &word) {
        auto is_ident = [](char c) {
            return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
        };
        size_t count = 0, pos = 0;
        while ((pos = verilog.find(word, pos)) != std::string::npos) {
            bool left_ok = pos == 0 || !is_ident(verilog[pos - 1]);
            size_t after = pos + word.size();
            bool right_ok =
                after >= verilog.size() || !is_ident(verilog[after]);
            if (left_ok && right_ok)
                ++count;
            pos = after;
        }
        return count;
    };
    EXPECT_EQ(count_keyword("begin"), count_keyword("end")) << name;
    EXPECT_EQ(count_keyword("module"), count_keyword("endmodule"))
        << name;
}

TEST(VerilogApps, AllSixApplicationsEmit)
{
    for (auto &app : apps::allApplications()) {
        auto unit = compile::compileProgram(app->program());
        std::string verilog = rtl::emitVerilog(unit.circuit);
        lintVerilog(verilog, app->program().name);
        // Every BRAM appears as an inferred memory.
        for (const auto &bram : unit.circuit.brams()) {
            EXPECT_NE(verilog.find("mem_" + bram.name),
                      std::string::npos)
                << app->name() << " " << bram.name;
        }
    }
}

TEST(VerilogApps, ViolationPortEmittedWithRuntimeChecks)
{
    compile::CompileOptions options;
    options.insertRuntimeChecks = true;
    auto unit = compile::compileProgram(testprogs::blockFrequencies(16),
                                        options);
    std::string verilog = rtl::emitVerilog(unit.circuit);
    EXPECT_NE(verilog.find("output violation"), std::string::npos);
    EXPECT_NE(verilog.find("assign violation = "), std::string::npos);
}

TEST(VerilogApps, DeterministicEmission)
{
    auto program = testprogs::blockFrequencies(32);
    auto a = rtl::emitVerilog(compile::compileProgram(program).circuit);
    auto b = rtl::emitVerilog(compile::compileProgram(program).circuit);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace fleet
