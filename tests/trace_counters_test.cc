/**
 * @file
 * Counter-conservation harness for the observability layer (ISSUE 3).
 * The trace counters are not independent gauges — they are different
 * views of the same physical events, so they must agree exactly across
 * layer boundaries:
 *
 *   - bits: sum of per-PU delivered bits == input-controller total ==
 *     sum of stream bits; DRAM beats x bus width == bursts x burst
 *     size on both the read and write paths; output-controller
 *     collected bits == sum of what the units emitted == what was
 *     flushed to memory.
 *   - cycles: every (PU, cycle) lands in exactly one taxonomy phase,
 *     so the five phase counters sum to the channel cycle count; the
 *     DRAM occupancy histograms hold exactly one sample per cycle and
 *     their weighted sum equals the legacy occupancy integrals.
 *   - determinism: serial and worker-pool runs produce equal
 *     TraceReports, and tracing itself is purely observational —
 *     traced and untraced runs have bit-identical outputs and cycle
 *     counts.
 *
 * All invariants are checked for every application on both PU backends
 * at one and several host threads.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/registry.h"
#include "system/fleet_system.h"
#include "util/rng.h"

namespace fleet {
namespace system {
namespace {

std::vector<BitBuffer>
appStreams(const apps::Application &app, int count, uint64_t bytes,
           uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < count; ++p)
        streams.push_back(app.generateStream(rng, bytes));
    return streams;
}

SystemConfig
configFor(PuBackend backend, int threads, bool counters, bool events)
{
    SystemConfig config;
    config.numChannels = 3; // Uneven PU division across channels.
    config.numThreads = threads;
    config.backend = backend;
    config.dram.readLatency = 20;
    config.trace.counters = counters;
    config.trace.events = events;
    return config;
}

/** "ch2/pu7" -> 7, or -1 for non-PU components. */
int
globalPuOf(const std::string &component)
{
    size_t slash = component.find('/');
    if (slash == std::string::npos ||
        component.compare(slash + 1, 2, "pu") != 0)
        return -1;
    return std::atoi(component.c_str() + slash + 3);
}

uint64_t
phaseCycleSum(const trace::CounterSet &pu)
{
    uint64_t sum = 0;
    for (int p = 0; p < trace::kNumPuPhases; ++p) {
        auto phase = static_cast<trace::PuPhase>(p);
        std::string key =
            std::string(trace::puPhaseName(phase)) + "_cycles";
        EXPECT_TRUE(pu.has(key)) << pu.name << " missing " << key;
        sum += pu.get(key);
    }
    return sum;
}

/**
 * Check every cross-layer conservation law on a completed, fault-free
 * traced run.
 */
void
verifyConservation(FleetSystem &fleet, const RunReport &report,
                   const std::string &label)
{
    ASSERT_TRUE(report.allOk()) << label << ": " << report.summary();
    ASSERT_NE(report.trace, nullptr) << label;
    const trace::TraceReport &tr = *report.trace;
    SystemStats stats = fleet.stats();
    ASSERT_EQ(tr.channels.size(), stats.channels.size()) << label;

    uint64_t seen_pus = 0;
    for (const trace::ChannelTrace &ch : tr.channels) {
        SCOPED_TRACE(label + " channel " + std::to_string(ch.channel));
        const ChannelStats &legacy = stats.channels[ch.channel];
        ASSERT_EQ(ch.cycles, legacy.cycles);

        const trace::CounterSet *dram = nullptr;
        const trace::CounterSet *input = nullptr;
        const trace::CounterSet *output = nullptr;
        uint64_t pu_stream_bits = 0, pu_delivered_bits = 0;
        uint64_t pu_emitted_bits = 0, pu_flushed_bits = 0;
        int channel_pus = 0;
        for (const trace::CounterSet &set : ch.counters) {
            if (set.name.ends_with("/dram"))
                dram = &set;
            else if (set.name.ends_with("/input_ctrl"))
                input = &set;
            else if (set.name.ends_with("/output_ctrl"))
                output = &set;
            int g = globalPuOf(set.name);
            if (g < 0)
                continue;
            ++channel_pus;
            ++seen_pus;
            SCOPED_TRACE(set.name);

            // Every cycle of this PU's life is in exactly one phase.
            EXPECT_EQ(phaseCycleSum(set), ch.cycles);

            // The taxonomy phases are exclusive; the legacy stall
            // counters are not (a cycle can be both starved and
            // blocked), so the phase counts are lower bounds.
            const PuStats &ps = fleet.puStats(g);
            EXPECT_LE(set.get("input-starved_cycles"),
                      ps.inputStarvedCycles);
            EXPECT_LE(set.get("output-blocked_cycles"),
                      ps.outputBlockedCycles);
            EXPECT_EQ(set.get("finished_at_cycle"), ps.finishedAtCycle);
            EXPECT_EQ(set.get("contained"), 0u);

            // A completed unit consumed its whole stream and had its
            // whole emission flushed to channel memory.
            EXPECT_EQ(set.get("delivered_bits"), set.get("stream_bits"));
            EXPECT_EQ(set.get("flushed_payload_bits"),
                      set.get("emitted_bits"));
            EXPECT_EQ(set.get("flushed_payload_bits"),
                      report.pus[g].outputBits);
            EXPECT_EQ(set.get("flushed_payload_bits"),
                      fleet.output(g).sizeBits());

            pu_stream_bits += set.get("stream_bits");
            pu_delivered_bits += set.get("delivered_bits");
            pu_emitted_bits += set.get("emitted_bits");
            pu_flushed_bits += set.get("flushed_payload_bits");
        }
        ASSERT_NE(dram, nullptr);
        ASSERT_NE(input, nullptr);
        ASSERT_NE(output, nullptr);
        ASSERT_GT(channel_pus, 0);

        // Read path: PU bits == controller bits == stream bits, and the
        // DRAM moved whole bursts covering them (the only slack is
        // burst-tail padding, strictly under one burst per PU).
        EXPECT_EQ(input->get("bits_delivered"), pu_delivered_bits);
        EXPECT_EQ(input->get("stream_bits_total"), pu_stream_bits);
        EXPECT_EQ(input->get("pus_contained"), 0u);
        EXPECT_EQ(input->get("inflight_bursts"), 0u);
        uint64_t read_bits = dram->get("beats_delivered") *
                             dram->get("bus_width_bits");
        EXPECT_EQ(read_bits, dram->get("read_bursts_accepted") *
                                 input->get("burst_bits"));
        EXPECT_EQ(dram->get("read_bursts_accepted"),
                  input->get("read_bursts_issued"));
        EXPECT_GE(read_bits, pu_delivered_bits);
        EXPECT_LT(read_bits - pu_delivered_bits,
                  uint64_t(channel_pus) * input->get("burst_bits"));
        EXPECT_EQ(dram->get("bytes_read") * 8, read_bits);

        // Write path: everything the units emitted was collected and
        // committed, and the DRAM wrote whole bursts covering it.
        EXPECT_EQ(output->get("bits_accepted"), pu_emitted_bits);
        EXPECT_EQ(output->get("bits_collected"), pu_flushed_bits);
        EXPECT_EQ(output->get("pus_contained"), 0u);
        EXPECT_EQ(output->get("pending_bursts"), 0u);
        uint64_t written_bits = dram->get("beats_written") *
                                dram->get("bus_width_bits");
        EXPECT_EQ(written_bits, dram->get("write_bursts_accepted") *
                                    output->get("burst_bits"));
        EXPECT_EQ(dram->get("write_bursts_accepted"),
                  output->get("write_bursts_issued"));
        EXPECT_GE(written_bits, pu_flushed_bits);

        // Legacy ChannelStats and the trace describe the same run.
        EXPECT_EQ(dram->get("beats_delivered"), legacy.beatsDelivered);
        EXPECT_EQ(dram->get("beats_written"), legacy.beatsWritten);
        EXPECT_EQ(input->get("bits_delivered"), legacy.inputBytes * 8);
        EXPECT_EQ(dram->get("cycles"), legacy.cycles);

        // Occupancy histograms: one sample per cycle, and the mass
        // integral matches the legacy occupancy sums exactly.
        ASSERT_EQ(ch.histograms.size(), 2u);
        for (const trace::Histogram &h : ch.histograms)
            EXPECT_EQ(h.samples(), ch.cycles) << h.name;
        EXPECT_EQ(ch.histograms[0].name, "dram_read_queue_depth");
        EXPECT_EQ(ch.histograms[0].weightedSum(),
                  legacy.readQueueOccupancySum);
        EXPECT_EQ(ch.histograms[1].weightedSum(),
                  legacy.writeQueueOccupancySum);

        // TraceReport::find resolves the hierarchical names.
        EXPECT_EQ(tr.find(dram->name), dram);
        EXPECT_EQ(tr.find("no/such"), nullptr);
    }
    EXPECT_EQ(seen_pus, uint64_t(fleet.numPus())) << label;
}

void
runAllInvariants(const lang::Program &program,
                 const std::vector<BitBuffer> &streams, PuBackend backend,
                 const std::string &label)
{
    // Counters-mode runs at one and several host threads: all
    // conservation laws hold and the collected traces are equal.
    FleetSystem serial(program,
                       configFor(backend, 1, /*counters=*/true,
                                 /*events=*/false),
                       streams);
    const RunReport &serial_report = serial.run();
    verifyConservation(serial, serial_report, label + "/serial");

    FleetSystem parallel(program,
                         configFor(backend, 4, true, false), streams);
    const RunReport &parallel_report = parallel.run();
    verifyConservation(parallel, parallel_report, label + "/parallel");

    ASSERT_TRUE(serial_report == parallel_report)
        << label << ": traced reports diverge across thread counts";

    // Tracing is purely observational: an untraced run is bit- and
    // cycle-identical to the traced ones.
    FleetSystem plain(program, configFor(backend, 1, false, false),
                      streams);
    plain.run();
    EXPECT_EQ(plain.report().trace, nullptr) << label;
    EXPECT_EQ(plain.stats().cycles, serial.stats().cycles) << label;
    EXPECT_EQ(plain.stats().outputBytes, serial.stats().outputBytes)
        << label;
    for (int p = 0; p < plain.numPus(); ++p)
        EXPECT_TRUE(plain.output(p) == serial.output(p))
            << label << " PU " << p
            << ": tracing changed the output bytes";
}

class AllAppsConservation : public ::testing::TestWithParam<int>
{
};

TEST_P(AllAppsConservation, FastBackend)
{
    auto apps = apps::allApplications();
    auto &app = *apps[GetParam()];
    auto streams = appStreams(app, 5, 1800, 42);
    runAllInvariants(app.program(), streams, PuBackend::Fast,
                     app.name() + "/Fast");
}

TEST_P(AllAppsConservation, RtlBackend)
{
    auto apps = apps::allApplications();
    auto &app = *apps[GetParam()];
    // RTL interpretation is ~two orders slower; keep streams small.
    auto streams = appStreams(app, 4, 700, 43);
    runAllInvariants(app.program(), streams, PuBackend::Rtl,
                     app.name() + "/Rtl");
}

INSTANTIATE_TEST_SUITE_P(Suite, AllAppsConservation, ::testing::Range(0, 6),
                         [](const auto &info) {
                             auto apps = apps::allApplications();
                             return apps[info.param]->name();
                         });

TEST(TraceModes, CountersOnlyCollectsNoEvents)
{
    auto apps = apps::allApplications();
    auto streams = appStreams(*apps[0], 4, 900, 7);
    FleetSystem fleet(apps[0]->program(),
                      configFor(PuBackend::Fast, 1, true, false), streams);
    const RunReport &report = fleet.run();
    ASSERT_NE(report.trace, nullptr);
    for (const trace::ChannelTrace &ch : report.trace->channels) {
        EXPECT_FALSE(ch.counters.empty());
        EXPECT_FALSE(ch.histograms.empty());
        EXPECT_TRUE(ch.lanes.empty());
        EXPECT_TRUE(ch.tracks.empty());
    }
    // No events recorded -> Chrome export is refused, not garbage.
    EXPECT_EQ(report.writeTrace("/nonexistent-dir/t.json").code,
              StatusCode::InvalidArgument);
}

TEST(TraceModes, EventsLanesCoverTheRunExactly)
{
    auto apps = apps::allApplications();
    auto streams = appStreams(*apps[0], 5, 1200, 11);
    FleetSystem fleet(apps[0]->program(),
                      configFor(PuBackend::Fast, 1, true, true), streams);
    const RunReport &report = fleet.run();
    ASSERT_NE(report.trace, nullptr);
    for (const trace::ChannelTrace &ch : report.trace->channels) {
        ASSERT_FALSE(ch.lanes.empty());
        for (const trace::Lane &lane : ch.lanes) {
            SCOPED_TRACE("PU " + std::to_string(lane.globalPu));
            ASSERT_FALSE(lane.spans.empty());
            EXPECT_EQ(lane.droppedSpans, 0u);
            // Spans are sorted, non-overlapping, and start at cycle 0.
            // Gaps are allowed only where the unit was Done.
            EXPECT_EQ(lane.spans.front().beginCycle, 0u);
            uint64_t prev_end = 0;
            uint64_t span_cycles = 0;
            for (const trace::Span &span : lane.spans) {
                EXPECT_GE(span.beginCycle, prev_end);
                EXPECT_GT(span.endCycle, span.beginCycle);
                EXPECT_NE(span.phase, trace::PuPhase::Done);
                prev_end = span.endCycle;
                span_cycles += span.endCycle - span.beginCycle;
            }
            EXPECT_LE(prev_end, ch.cycles);

            // The span timeline is the counter view minus Done time.
            const trace::CounterSet *pu = report.trace->find(
                "ch" + std::to_string(ch.channel) + "/pu" +
                std::to_string(lane.globalPu));
            ASSERT_NE(pu, nullptr);
            EXPECT_EQ(span_cycles, ch.cycles - pu->get("done_cycles"));
        }
        // DRAM queue-depth tracks sample on the configured quantum.
        ASSERT_EQ(ch.tracks.size(), 2u);
        for (const trace::CounterTrack &track : ch.tracks) {
            uint64_t prev = 0;
            bool first = true;
            for (const auto &[cycle, value] : track.samples) {
                if (!first)
                    EXPECT_GT(cycle, prev) << track.name;
                prev = cycle;
                first = false;
            }
        }
    }
}

TEST(TraceModes, SpanCapCountsDroppedSpansInsteadOfGrowing)
{
    auto apps = apps::allApplications();
    auto streams = appStreams(*apps[0], 3, 1500, 13);
    SystemConfig config = configFor(PuBackend::Fast, 1, true, true);
    config.trace.maxSpansPerLane = 4;
    FleetSystem fleet(apps[0]->program(), config, streams);
    const RunReport &report = fleet.run();
    ASSERT_NE(report.trace, nullptr);
    uint64_t dropped = 0;
    for (const trace::ChannelTrace &ch : report.trace->channels)
        for (const trace::Lane &lane : ch.lanes) {
            EXPECT_LE(lane.spans.size(), 4u);
            dropped += lane.droppedSpans;
        }
    EXPECT_GT(dropped, 0u);
}

} // namespace
} // namespace system
} // namespace fleet
