/**
 * @file
 * Scheduler property harness (ISSUE 8). Three families of properties
 * over seeded random tenant mixes:
 *
 *  1. *Schedule determinism*: for every policy, the job→slot schedule,
 *     the JobReports, and the settled RunReport (traces included) are
 *     bit-identical across PU backends ({Fast, RtlTape}) and host
 *     thread counts ({1, N}).
 *  2. *Work conservation*: after any scheduler round, no parked live
 *     slot coexists with a queued job its program binding could run —
 *     the second arm sweep relaxes placement hints precisely so hints
 *     can steer work but never idle a slot.
 *  3. *WFQ no-starvation*: a paced victim tenant sharing the pool with
 *     a flood tenant drains within a bounded horizon, and its worst
 *     job latency under WFQ beats FIFO's (which serves the entire
 *     flood backlog first).
 *
 * Plus direct unit fuzz of the pure policies (valid, deterministic,
 * compatible picks) and the multi-program area/width checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "model/area.h"
#include "runtime/scheduler.h"
#include "runtime/session.h"
#include "sim/simulator.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace runtime {
namespace {

BitBuffer
randomStream(Rng &rng, uint64_t bytes)
{
    BitBuffer stream;
    for (uint64_t i = 0; i < bytes; ++i)
        stream.appendBits(rng.next(), 8);
    return stream;
}

BitBuffer
goldenOutput(const lang::Program &program, const BitBuffer &stream)
{
    sim::FunctionalSimulator simulator(program);
    return simulator.run(stream).output;
}

// ---------------------------------------------------------------------------
// Unit fuzz: every policy picks a valid, compatible candidate, and two
// schedulers replaying the same history agree on every pick.
// ---------------------------------------------------------------------------

QueuedJobView
randomJobView(Rng &rng, uint64_t id, uint32_t num_programs)
{
    QueuedJobView job;
    job.id = id;
    job.enqueueCycle = rng.nextBelow(10000);
    job.streamBits = 8 * (1 + rng.nextBelow(4096));
    job.tag.tenant = static_cast<uint32_t>(rng.nextBelow(4));
    job.tag.programIndex =
        static_cast<uint32_t>(rng.nextBelow(num_programs));
    job.tag.priority = static_cast<uint32_t>(rng.nextBelow(3));
    job.tag.preferredLane =
        rng.nextBelow(3) == 0 ? static_cast<int>(rng.nextBelow(2)) : -1;
    return job;
}

TEST(SchedulerFuzz, PicksAreValidCompatibleAndDeterministic)
{
    const SchedulerPolicy policies[] = {
        SchedulerPolicy::Fifo, SchedulerPolicy::Priority,
        SchedulerPolicy::Sjf, SchedulerPolicy::Wfq};
    for (SchedulerPolicy policy : policies) {
        for (uint64_t seed = 1; seed <= 5; ++seed) {
            SchedulerConfig config;
            config.policy = policy;
            config.weights = {{0, 4}, {1, 1}, {2, 2}};
            auto a = makeScheduler(config);
            auto b = makeScheduler(config);
            ASSERT_NE(a, nullptr);
            EXPECT_STREQ(a->name(), b->name());

            Rng rng(seed * 71);
            uint64_t next_id = 0;
            for (int round = 0; round < 40; ++round) {
                std::vector<QueuedJobView> queued;
                size_t depth = 1 + rng.nextBelow(12);
                for (size_t i = 0; i < depth; ++i)
                    queued.push_back(
                        randomJobView(rng, next_id++, 2));
                SlotView slot;
                slot.pu = static_cast<int>(rng.nextBelow(8));
                slot.programIndex =
                    static_cast<uint32_t>(rng.nextBelow(2));
                slot.lane = static_cast<int>(rng.nextBelow(2));
                bool relax = rng.nextBelow(2) == 1;
                uint64_t now = rng.nextBelow(100000);

                int pick_a = a->pick(slot, queued, now, relax);
                int pick_b = b->pick(slot, queued, now, relax);
                ASSERT_EQ(pick_a, pick_b)
                    << schedulerPolicyName(policy) << " seed " << seed
                    << " round " << round << ": twin schedulers with "
                       "identical histories disagree";
                if (pick_a < 0) {
                    // -1 only when no queued job is compatible.
                    for (const QueuedJobView &job : queued) {
                        bool compatible =
                            job.tag.programIndex == slot.programIndex &&
                            (relax || job.tag.preferredLane < 0 ||
                             job.tag.preferredLane == slot.lane);
                        EXPECT_FALSE(compatible)
                            << schedulerPolicyName(policy)
                            << ": refused a compatible job";
                    }
                    continue;
                }
                ASSERT_LT(static_cast<size_t>(pick_a), queued.size());
                const QueuedJobView &picked = queued[pick_a];
                EXPECT_EQ(picked.tag.programIndex, slot.programIndex);
                if (!relax && picked.tag.preferredLane >= 0) {
                    EXPECT_EQ(picked.tag.preferredLane, slot.lane);
                }
                a->onArm(picked, now);
                b->onArm(picked, now);
            }
        }
    }
}

TEST(SchedulerFuzz, PolicyOrderings)
{
    // Priority: the lowest priority value wins regardless of position;
    // SJF: fewest stream bits; FIFO: always index 0; ties to arrival.
    std::vector<QueuedJobView> queued(3);
    for (int i = 0; i < 3; ++i)
        queued[i].id = static_cast<uint64_t>(i);
    queued[0].tag.priority = 2;
    queued[1].tag.priority = 0;
    queued[2].tag.priority = 0;
    queued[0].streamBits = 64;
    queued[1].streamBits = 512;
    queued[2].streamBits = 64;
    SlotView slot;

    SchedulerConfig config;
    config.policy = SchedulerPolicy::Fifo;
    EXPECT_EQ(makeScheduler(config)->pick(slot, queued, 0, false), 0);
    config.policy = SchedulerPolicy::Priority;
    EXPECT_EQ(makeScheduler(config)->pick(slot, queued, 0, false), 1);
    config.policy = SchedulerPolicy::Sjf;
    EXPECT_EQ(makeScheduler(config)->pick(slot, queued, 0, false), 0);
}

TEST(SchedulerFuzz, WfqWeightsBiasService)
{
    // Two tenants with 4:1 weights and equal-cost jobs: over a long
    // alternating-arm history, the heavy tenant must be armed roughly
    // four times as often.
    SchedulerConfig config;
    config.policy = SchedulerPolicy::Wfq;
    config.weights = {{0, 4}, {1, 1}};
    auto scheduler = makeScheduler(config);
    SlotView slot;
    std::map<uint32_t, int> armed;
    for (int round = 0; round < 100; ++round) {
        // Both tenants always have a head-of-line job waiting.
        std::vector<QueuedJobView> queued(2);
        queued[0].id = static_cast<uint64_t>(2 * round);
        queued[0].streamBits = 1024;
        queued[0].tag.tenant = 0;
        queued[1].id = static_cast<uint64_t>(2 * round + 1);
        queued[1].streamBits = 1024;
        queued[1].tag.tenant = 1;
        int pick = scheduler->pick(slot, queued, round, false);
        ASSERT_GE(pick, 0);
        scheduler->onArm(queued[pick], round);
        ++armed[queued[pick].tag.tenant];
    }
    ASSERT_GT(armed[0], 0);
    ASSERT_GT(armed[1], 0);
    double ratio = static_cast<double>(armed[0]) / armed[1];
    EXPECT_GT(ratio, 3.0) << "weight-4 tenant served " << armed[0]
                          << " vs " << armed[1];
    EXPECT_LT(ratio, 5.0);
}

// ---------------------------------------------------------------------------
// Session properties over seeded random tenant mixes.
// ---------------------------------------------------------------------------

SessionConfig
poolConfig(system::PuBackend backend, int threads)
{
    SessionConfig config;
    config.system.numChannels = 3;
    config.system.numThreads = threads;
    config.system.backend = backend;
    config.system.inputRegionBytes = 4096;
    config.numSlots = 6;
    config.epochCycles = 512;
    return config;
}

struct TaggedJob
{
    BitBuffer stream;
    JobTag tag;
};

std::vector<TaggedJob>
randomTenantMix(uint64_t seed, int jobs)
{
    Rng rng(seed);
    std::vector<TaggedJob> mix;
    for (int j = 0; j < jobs; ++j) {
        TaggedJob job;
        job.stream = randomStream(rng, 30 + rng.nextBelow(150));
        job.tag.tenant = static_cast<uint32_t>(rng.nextBelow(3));
        job.tag.priority = static_cast<uint32_t>(rng.nextBelow(3));
        job.tag.preferredLane =
            rng.nextBelow(4) == 0 ? static_cast<int>(rng.nextBelow(2))
                                  : -1;
        mix.push_back(std::move(job));
    }
    return mix;
}

TEST(SchedProperty, ScheduleBitIdenticalAcrossBackendsAndThreads)
{
    // The tentpole fence: for every policy, the same tagged mix must
    // produce identical JobReports (schedule, cycles, outputs, tenant
    // stamps) and an identical settled RunReport on the fast model and
    // the scalar RTL tape, at 1 and 4 host threads.
    auto program = testprogs::blockFrequencies(32);
    const SchedulerPolicy policies[] = {
        SchedulerPolicy::Fifo, SchedulerPolicy::Priority,
        SchedulerPolicy::Sjf, SchedulerPolicy::Wfq};
    std::vector<TaggedJob> mix = randomTenantMix(2024, 24);

    for (SchedulerPolicy policy : policies) {
        auto runAll = [&](system::PuBackend backend, int threads) {
            SessionConfig config = poolConfig(backend, threads);
            config.scheduler.policy = policy;
            config.scheduler.weights = {{0, 4}, {1, 1}, {2, 2}};
            config.system.trace.events = true;
            Session session(program, config);
            for (const TaggedJob &job : mix)
                session.submitJob(job.stream, job.tag,
                                  session.cycles());
            system::RunReport report = session.finish();
            return std::make_pair(session.reports(),
                                  std::move(report));
        };

        auto [base, base_report] =
            runAll(system::PuBackend::Fast, 1);
        for (uint64_t j = 0; j < mix.size(); ++j) {
            ASSERT_TRUE(base[j].ok())
                << schedulerPolicyName(policy) << " job " << j << ": "
                << base[j].status.toString();
            ASSERT_EQ(base[j].tenant, mix[j].tag.tenant);
            ASSERT_TRUE(base[j].output ==
                        goldenOutput(program, mix[j].stream))
                << schedulerPolicyName(policy) << " job " << j;
        }

        struct Variant
        {
            system::PuBackend backend;
            int threads;
            const char *label;
        };
        const Variant variants[] = {
            {system::PuBackend::Fast, 4, "Fast/4"},
            {system::PuBackend::RtlTape, 1, "RtlTape/1"},
            {system::PuBackend::RtlTape, 4, "RtlTape/4"},
        };
        for (const Variant &variant : variants) {
            auto [reports, run_report] =
                runAll(variant.backend, variant.threads);
            ASSERT_EQ(reports.size(), base.size());
            for (uint64_t j = 0; j < reports.size(); ++j)
                ASSERT_TRUE(reports[j] == base[j])
                    << schedulerPolicyName(policy) << " "
                    << variant.label << ": job " << j
                    << " diverges from Fast/1";
            ASSERT_TRUE(run_report == base_report)
                << schedulerPolicyName(policy) << " " << variant.label
                << ": RunReport (traces included) diverges";
        }
    }
}

TEST(SchedProperty, WorkConservationUnderEveryPolicy)
{
    // After any round's arm phase, a parked live slot and a queued job
    // bound to its program may not coexist: the relaxed second sweep
    // must have matched them. Checked at every step of a drain under
    // every policy.
    auto program = testprogs::blockFrequencies(32);
    const SchedulerPolicy policies[] = {
        SchedulerPolicy::Fifo, SchedulerPolicy::Priority,
        SchedulerPolicy::Sjf, SchedulerPolicy::Wfq};
    for (SchedulerPolicy policy : policies) {
        SessionConfig config = poolConfig(system::PuBackend::Fast, 2);
        config.scheduler.policy = policy;
        Session session(program, config);
        std::vector<TaggedJob> mix = randomTenantMix(99, 40);
        for (const TaggedJob &job : mix)
            session.submitJob(job.stream, job.tag, session.cycles());

        int rounds = 0;
        while (session.step()) {
            ++rounds;
            for (int pu = 0; pu < config.numSlots; ++pu) {
                Session::SlotStateView slot = session.slotState(pu);
                if (slot.busy || slot.dead || slot.quarantined)
                    continue;
                for (size_t i = 0; i < session.queue().size(); ++i) {
                    const PendingJob &job = session.queue().at(i);
                    EXPECT_NE(job.tag.programIndex, slot.programIndex)
                        << schedulerPolicyName(policy) << " round "
                        << rounds << ": slot " << pu
                        << " idles while job " << job.id
                        << " (same program) waits";
                }
            }
        }
        session.finish();
        EXPECT_EQ(session.jobsFinished(), mix.size());
    }
}

TEST(SchedProperty, WfqBoundsVictimLatencyUnderFlood)
{
    // No-starvation: tenant 1 (victim) submits a handful of small jobs
    // behind tenant 0's flood. Under FIFO the victim waits out the
    // whole backlog; under WFQ its jobs interleave, so its worst-case
    // completion is strictly earlier — and the drain horizon is
    // bounded (finish() terminates with every job reported).
    auto program = testprogs::blockFrequencies(32);
    Rng rng(4242);
    std::vector<BitBuffer> flood, victim;
    for (int j = 0; j < 36; ++j)
        flood.push_back(randomStream(rng, 200 + rng.nextBelow(100)));
    for (int j = 0; j < 6; ++j)
        victim.push_back(randomStream(rng, 40 + rng.nextBelow(40)));

    auto worstVictimCompletion = [&](SchedulerPolicy policy) {
        SessionConfig config = poolConfig(system::PuBackend::Fast, 2);
        config.scheduler.policy = policy;
        config.scheduler.weights = {{0, 1}, {1, 4}};
        Session session(program, config);
        JobTag flood_tag, victim_tag;
        flood_tag.tenant = 0;
        victim_tag.tenant = 1;
        std::vector<uint64_t> victim_ids;
        for (const BitBuffer &stream : flood)
            session.submitJob(stream, flood_tag, 0);
        for (const BitBuffer &stream : victim)
            victim_ids.push_back(
                session.submitJob(stream, victim_tag, 0));
        session.finish();
        uint64_t worst = 0;
        for (uint64_t id : victim_ids) {
            const JobReport &report = session.report(id);
            EXPECT_TRUE(report.ok()) << report.status.toString();
            EXPECT_EQ(report.tenant, 1u);
            worst = std::max(worst, report.completedCycle);
        }
        EXPECT_EQ(session.jobsFinished(),
                  flood.size() + victim.size());
        auto stats = session.tenantStats();
        EXPECT_EQ(stats.at(0).completed, flood.size());
        EXPECT_EQ(stats.at(1).completed, victim.size());
        return worst;
    };

    uint64_t fifo_worst = worstVictimCompletion(SchedulerPolicy::Fifo);
    uint64_t wfq_worst = worstVictimCompletion(SchedulerPolicy::Wfq);
    EXPECT_LT(wfq_worst, fifo_worst)
        << "WFQ should complete the victim before FIFO drains the "
           "flood backlog (wfq=" << wfq_worst
        << " fifo=" << fifo_worst << ")";
}

// ---------------------------------------------------------------------------
// Multi-program sessions: per-slot binding, placement hints, and the
// configure-time mix checks.
// ---------------------------------------------------------------------------

TEST(MultiProgram, SlotBindingRoutesJobsToTheirProgram)
{
    // identity on slots 0..2 (lane 0), blockFrequencies on slots 3..5
    // (lane 1): jobs tagged per program must land only on their
    // program's slots and match that program's golden output.
    auto ident = testprogs::identity(8);
    auto histo = testprogs::blockFrequencies(8);
    std::vector<system::SlotBinding> bindings(6);
    for (int p = 0; p < 6; ++p) {
        bindings[p].program = p < 3 ? 0 : 1;
        bindings[p].lane = p < 3 ? 0 : 1;
    }
    SessionConfig config = poolConfig(system::PuBackend::Fast, 2);
    Session session({ident, histo}, config, bindings);

    Rng rng(31);
    std::vector<TaggedJob> mix;
    for (int j = 0; j < 20; ++j) {
        TaggedJob job;
        job.tag.programIndex = static_cast<uint32_t>(j % 2);
        job.stream = randomStream(rng, 24 + 8 * rng.nextBelow(10));
        mix.push_back(std::move(job));
    }
    for (const TaggedJob &job : mix)
        session.submitJob(job.stream, job.tag, session.cycles());
    session.finish();

    for (uint64_t j = 0; j < mix.size(); ++j) {
        const JobReport &report = session.report(j);
        ASSERT_TRUE(report.ok())
            << "job " << j << ": " << report.status.toString();
        EXPECT_EQ(report.programIndex, mix[j].tag.programIndex);
        const lang::Program &program =
            mix[j].tag.programIndex == 0 ? ident : histo;
        if (mix[j].tag.programIndex == 0) {
            EXPECT_GE(report.pu, 0);
            EXPECT_LT(report.pu, 3);
        } else {
            EXPECT_GE(report.pu, 3);
            EXPECT_LT(report.pu, 6);
        }
        EXPECT_TRUE(report.output ==
                    goldenOutput(program, mix[j].stream))
            << "job " << j;
    }
}

TEST(MultiProgram, PlacementHintsSteerButNeverIdleSlots)
{
    // One program bound across two lanes (slots 0..2 lane 0, slots
    // 3..5 lane 1). Eight jobs all hinted to lane 1: the first sweep
    // fills the three lane-1 slots, the relaxed sweep spills the rest
    // onto lane 0 — every slot takes work in round one.
    auto program = testprogs::identity(8);
    std::vector<system::SlotBinding> bindings(6);
    for (int p = 0; p < 6; ++p)
        bindings[p].lane = p < 3 ? 0 : 1;
    SessionConfig config = poolConfig(system::PuBackend::Fast, 1);
    Session session({program}, config, bindings);

    Rng rng(7);
    JobTag hinted;
    hinted.preferredLane = 1;
    for (int j = 0; j < 6; ++j)
        session.submitJob(randomStream(rng, 64), hinted,
                          session.cycles());
    session.step();
    // All six slots armed in one round; the three hinted slots (lane
    // 1) took the first three jobs in queue order.
    for (int pu = 0; pu < 6; ++pu)
        EXPECT_TRUE(session.slotState(pu).busy) << "slot " << pu;
    EXPECT_EQ(session.slotState(3).jobId, 0u);
    EXPECT_EQ(session.slotState(4).jobId, 1u);
    EXPECT_EQ(session.slotState(5).jobId, 2u);
    session.finish();
    for (uint64_t j = 0; j < 6; ++j)
        EXPECT_TRUE(session.report(j).ok());
}

TEST(MultiProgram, MixedBackendsPerSlotStayBitIdentical)
{
    // Placement the issue asks for: latency lanes on the Fast backend,
    // audit lanes on the scalar RTL tape — in one session. Outputs
    // still match the functional golden, and the whole schedule is
    // invariant to host thread count.
    auto program = testprogs::blockFrequencies(16);
    std::vector<system::SlotBinding> bindings(6);
    for (int p = 0; p < 6; ++p) {
        bindings[p].lane = p < 3 ? 0 : 1;
        bindings[p].backend = p < 3 ? system::PuBackend::Fast
                                    : system::PuBackend::RtlTape;
    }
    Rng rng(55);
    std::vector<BitBuffer> streams;
    for (int j = 0; j < 18; ++j)
        streams.push_back(randomStream(rng, 32 + rng.nextBelow(64)));

    auto runAll = [&](int threads) {
        SessionConfig config =
            poolConfig(system::PuBackend::Fast, threads);
        Session session({program}, config, bindings);
        for (const BitBuffer &stream : streams)
            session.submitJob(stream, JobTag{}, session.cycles());
        session.finish();
        return session.reports();
    };
    std::vector<JobReport> one = runAll(1);
    std::vector<JobReport> four = runAll(4);
    ASSERT_EQ(one.size(), streams.size());
    for (uint64_t j = 0; j < streams.size(); ++j) {
        ASSERT_TRUE(one[j].ok()) << "job " << j;
        EXPECT_TRUE(one[j].output ==
                    goldenOutput(program, streams[j]))
            << "job " << j;
        ASSERT_TRUE(one[j] == four[j]) << "job " << j;
    }
}

TEST(MultiProgram, OrphanedJobsReportInsteadOfWaitingForever)
{
    auto ident = testprogs::identity(8);
    auto histo = testprogs::blockFrequencies(8);
    std::vector<system::SlotBinding> bindings(6);
    for (int p = 0; p < 6; ++p)
        bindings[p].program = p < 3 ? 0 : 1;
    SessionConfig config = poolConfig(system::PuBackend::Fast, 1);
    Session session({ident, histo}, config, bindings);

    Rng rng(12);
    JobTag unknown;
    unknown.programIndex = 9;
    uint64_t bad = session.submitJob(randomStream(rng, 32), unknown,
                                     session.cycles());
    uint64_t good = session.submitJob(randomStream(rng, 32), JobTag{},
                                      session.cycles());
    session.finish();
    EXPECT_EQ(session.report(bad).status.code,
              StatusCode::InvalidArgument);
    EXPECT_NE(session.report(bad).status.message.find(
                  "unknown program index"),
              std::string::npos);
    EXPECT_TRUE(session.report(good).ok());
}

TEST(MultiProgram, MismatchedTokenWidthsRejectedAtConstruction)
{
    // identity is 8->8, streamSum is 8->32: a session's programs must
    // share both token widths (one splitter geometry per channel).
    auto ident = testprogs::identity(8);
    auto sum = testprogs::streamSum(8, 32);
    SessionConfig config = poolConfig(system::PuBackend::Fast, 1);
    try {
        Session session({ident, sum}, config,
                        std::vector<system::SlotBinding>(6));
        FAIL() << "mismatched output widths should throw";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code, StatusCode::InvalidArgument);
        EXPECT_NE(error.status().message.find("share"),
                  std::string::npos);
    }
}

TEST(MultiProgram, AreaModelRejectsOvercommittedMix)
{
    // The vu9p fits this mix easily; a toy device with a few thousand
    // LUTs does not. checkProgramMix is the configure-time gate.
    auto ident = testprogs::identity(8);
    auto histo = testprogs::blockFrequencies(8);
    std::vector<system::SlotBinding> bindings(6);
    for (int p = 0; p < 6; ++p)
        bindings[p].program = p % 2;
    system::SystemConfig config;
    config.numChannels = 3;

    Status fits = system::FleetSystem::checkProgramMix(
        {ident, histo}, bindings, config, model::Device{});
    EXPECT_TRUE(fits.ok()) << fits.toString();

    model::Device tiny;
    tiny.name = "toy";
    tiny.luts = 3000;
    tiny.ffs = 6000;
    tiny.bram36 = 8;
    tiny.dsps = 16;
    Status rejected = system::FleetSystem::checkProgramMix(
        {ident, histo}, bindings, config, tiny);
    EXPECT_EQ(rejected.code, StatusCode::ResourceExhausted);
    EXPECT_NE(rejected.message.find("does not fit"),
              std::string::npos);
}

} // namespace
} // namespace runtime
} // namespace fleet
