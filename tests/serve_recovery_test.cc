/**
 * @file
 * Self-healing serving (ISSUE 7): deterministic retry of transient
 * failures, per-job deadlines in simulated cycles, slot quarantine,
 * and halted-channel requeue. The recovery machinery's promises are
 * the same shape as the serving layer's: every ticket completes
 * exactly once with an honest terminal status, a retried job's Ok
 * output is bit-identical to the fault-free golden, and the entire
 * recovery schedule — retry cycles, deadline kills, requeues — is a
 * pure function of simulated state, fenced across PU backends and
 * host thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "serve/service.h"
#include "sim/simulator.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace serve {
namespace {

BitBuffer
randomStream(Rng &rng, uint64_t bytes)
{
    BitBuffer stream;
    for (uint64_t i = 0; i < bytes; ++i)
        stream.appendBits(rng.next(), 8);
    return stream;
}

BitBuffer
goldenOutput(const lang::Program &program, const BitBuffer &stream)
{
    sim::FunctionalSimulator simulator(program);
    return simulator.run(stream).output;
}

/** Paced single-slot config: one channel, one PU, deterministic. */
ServiceConfig
pacedConfig(int num_channels = 1, int num_slots = 1,
            uint64_t epoch_cycles = 512)
{
    ServiceConfig config;
    config.backgroundThread = false;
    config.maxQueueDepth = 64;
    config.session.system.numChannels = num_channels;
    config.session.system.numThreads = 1;
    config.session.system.inputRegionBytes = 4096;
    config.session.numSlots = num_slots;
    config.session.epochCycles = epoch_cycles;
    return config;
}

void
drain(FleetService &service)
{
    while (service.pump()) {
    }
    service.shutdown();
}

/**
 * Find a truncation-only plan whose per-job hash truncates session
 * job 0 but leaves session job 1 whole — the retry-succeeds recipe:
 * attempt 1 (job id 0) comes back StreamTruncated, the retry runs
 * under fresh id 1 and streams in full. Pure function of the seed, so
 * the scan is deterministic and the chosen plan reproducible.
 */
fault::FaultPlan
truncateFirstAttemptPlan(uint64_t tokens)
{
    for (uint64_t seed = 1; seed < 100000; ++seed) {
        fault::FaultPlan plan;
        plan.seed = seed;
        plan.truncatePermille = 400;
        if (fault::truncatedJobTokens(plan, 0, tokens) < tokens &&
            fault::truncatedJobTokens(plan, 1, tokens) == tokens)
            return plan;
    }
    ADD_FAILURE() << "no seed truncates job 0 but not job 1";
    return {};
}

// ---------------------------------------------------------------------------
// Deterministic retry
// ---------------------------------------------------------------------------

TEST(ServeRetry, TransientFailureRetriesAndMatchesFaultFreeGolden)
{
    constexpr uint64_t kTokens = 96;
    auto program = testprogs::identity();
    ServiceConfig config = pacedConfig();
    config.session.system.faults = truncateFirstAttemptPlan(kTokens);
    config.retry.maxAttempts = 3;
    config.retry.backoffCycles = 32;
    FleetService service(program, config);

    Rng rng(17);
    BitBuffer stream = randomStream(rng, kTokens);
    JobTicket ticket = service.submit(stream);
    drain(service);

    // The first attempt was truncated (transient), the retry ran the
    // stream whole: the final report is Ok, its output bit-identical
    // to the fault-free golden, and the attempt count is visible.
    const runtime::JobReport &report = ticket.report();
    ASSERT_EQ(report.status.code, StatusCode::Ok)
        << report.status.toString();
    EXPECT_TRUE(report.output == goldenOutput(program, stream));
    EXPECT_EQ(report.attempts, 2u);
    EXPECT_EQ(service.stats().retries, 1u);
    EXPECT_EQ(service.stats().completed, 1u);

    // The session saw two jobs: the truncated attempt and the retry.
    const auto &reports = service.session().reports();
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].status.code, StatusCode::StreamTruncated);
    EXPECT_EQ(reports[1].status.code, StatusCode::Ok);
}

TEST(ServeRetry, ExhaustedAttemptsReportTheLastFailure)
{
    // Truncate *every* job: each retry rolls fresh dice and loses.
    // With maxAttempts = 2 the ticket completes with the second
    // attempt's StreamTruncated report and attempts == 2.
    constexpr uint64_t kTokens = 96;
    auto program = testprogs::identity();
    ServiceConfig config = pacedConfig();
    config.session.system.faults.seed = 9;
    config.session.system.faults.truncatePermille = 1000;
    config.retry.maxAttempts = 2;
    FleetService service(program, config);

    Rng rng(19);
    JobTicket ticket = service.submit(randomStream(rng, kTokens));
    drain(service);

    const runtime::JobReport &report = ticket.report();
    EXPECT_EQ(report.status.code, StatusCode::StreamTruncated);
    EXPECT_EQ(report.attempts, 2u);
    EXPECT_EQ(service.stats().retries, 1u);
    EXPECT_EQ(service.session().reports().size(), 2u);
}

TEST(ServeRetry, RecoveryScheduleBitIdenticalAcrossBackendsAndThreads)
{
    // The recovery extension of the determinism fence: under a fault
    // storm with retries enabled, the *entire* session history —
    // failed attempts, retry re-submissions, timestamps, outputs — is
    // bit-identical across PU backends and host thread counts.
    auto program = testprogs::identity();
    auto runStorm = [&](system::PuBackend backend, int threads) {
        ServiceConfig config = pacedConfig(2, 4, 256);
        config.session.system.backend = backend;
        config.session.system.numThreads = threads;
        config.session.system.faults = fault::FaultPlan::fromSeed(2026);
        config.retry.maxAttempts = 3;
        config.retry.backoffCycles = 64;
        FleetService service(program, config);
        Rng rng(23); // same streams every variant
        for (int j = 0; j < 12; ++j)
            service.submitAt(randomStream(rng, 48 + rng.nextBelow(160)),
                             0);
        drain(service);
        return service.session().reports();
    };

    auto reference = runStorm(system::PuBackend::Fast, 1);
    ASSERT_GE(reference.size(), 12u);
    struct Variant
    {
        system::PuBackend backend;
        int threads;
        const char *label;
    };
    const Variant variants[] = {
        {system::PuBackend::Fast, 4, "Fast/4"},
        {system::PuBackend::RtlTape, 1, "RtlTape/1"},
        {system::PuBackend::Rtl, 4, "RtlBatch/4"},
    };
    for (const Variant &variant : variants) {
        auto reports = runStorm(variant.backend, variant.threads);
        ASSERT_EQ(reports.size(), reference.size()) << variant.label;
        for (size_t j = 0; j < reports.size(); ++j)
            ASSERT_TRUE(reports[j] == reference[j])
                << variant.label << ": session job " << j
                << " diverges (recovery determinism fence)";
    }
}

// ---------------------------------------------------------------------------
// Per-job deadlines
// ---------------------------------------------------------------------------

TEST(ServeDeadline, ExpiresJobStillWaitingInQueue)
{
    // One slot: a long job holds it while a short job with a 1-cycle
    // deadline waits behind it — the waiter must be cancelled in-queue
    // (never armed) with DeadlineExceeded.
    auto program = testprogs::identity();
    FleetService service(program, pacedConfig());

    Rng rng(29);
    JobTicket longJob = service.submit(randomStream(rng, 2048));
    SubmitOptions options;
    options.deadlineCycles = 1;
    JobTicket expired = service.submit(randomStream(rng, 64), options);
    drain(service);

    EXPECT_TRUE(longJob.report().ok());
    const runtime::JobReport &report = expired.report();
    EXPECT_EQ(report.status.code, StatusCode::DeadlineExceeded);
    EXPECT_EQ(report.pu, -1) << "expired in-queue, never armed";
    EXPECT_FALSE(statusCodeTransient(report.status.code))
        << "a deadline kill must never be retried";
    EXPECT_EQ(service.stats().deadlineKilled, 1u);
    EXPECT_EQ(service.stats().completed, 2u);
}

TEST(ServeDeadline, ReclaimsSlotFromJobExpiredMidFlight)
{
    // A job whose service time exceeds its deadline is abandoned
    // mid-flight through the containment path: its ticket completes
    // DeadlineExceeded and the slot serves the next job normally.
    auto program = testprogs::identity();
    FleetService service(program, pacedConfig());

    Rng rng(31);
    SubmitOptions options;
    options.deadlineCycles = 600; // < the ~3000-cycle service time
    JobTicket doomed =
        service.submit(randomStream(rng, 3000), options);
    BitBuffer healthyStream = randomStream(rng, 64);
    JobTicket healthy = service.submit(healthyStream);
    drain(service);

    const runtime::JobReport &report = doomed.report();
    EXPECT_EQ(report.status.code, StatusCode::DeadlineExceeded);
    EXPECT_EQ(report.pu, 0) << "the job was armed before it expired";
    ASSERT_TRUE(healthy.report().ok())
        << healthy.report().status.toString();
    EXPECT_TRUE(healthy.report().output ==
                goldenOutput(program, healthyStream))
        << "slot not cleanly reclaimed after the mid-flight kill";
    EXPECT_EQ(service.stats().deadlineKilled, 1u);
}

// ---------------------------------------------------------------------------
// Slot quarantine
// ---------------------------------------------------------------------------

TEST(ServeQuarantine, RepeatedParityFaultsPullTheSlotFromThePool)
{
    // Every delivered beat carries a parity error: the single slot
    // fails job after job until the health registry quarantines it at
    // the configured threshold; later jobs strand (no live capacity)
    // instead of burning through the flaky slot forever.
    auto program = testprogs::identity();
    ServiceConfig config = pacedConfig();
    config.session.system.faults.seed = 7;
    config.session.system.faults.corruptBeatPerMillion = 1000000;
    config.session.quarantineAfterFaults = 2;
    FleetService service(program, config);

    Rng rng(37);
    std::vector<JobTicket> tickets;
    for (int j = 0; j < 4; ++j)
        tickets.push_back(service.submit(randomStream(rng, 64)));
    drain(service);

    int parity = 0, stranded = 0;
    for (auto &ticket : tickets) {
        ASSERT_TRUE(ticket.ready());
        StatusCode code = ticket.report().status.code;
        if (code == StatusCode::ParityError)
            ++parity;
        else if (code == StatusCode::InvalidState)
            ++stranded;
    }
    EXPECT_EQ(parity, 2) << "exactly quarantineAfterFaults jobs fail "
                            "on the slot before it is pulled";
    EXPECT_EQ(stranded, 2);
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.quarantinedSlots, 1);
    EXPECT_EQ(stats.liveSlots, 0)
        << "a quarantined slot is not live capacity";
    EXPECT_EQ(stats.completed, 4u);
}

// ---------------------------------------------------------------------------
// Halted-channel requeue
// ---------------------------------------------------------------------------

TEST(ServeRequeue, InjectedChannelHaltRequeuesInFlightJobsOntoSurvivors)
{
    // Two channels, one slot each, requeue enabled. Arm jobs on both,
    // then force channel 0 into the Halted state mid-flight (exactly a
    // watchdog trip's landing): its in-flight job must be re-queued at
    // the front of the FIFO and re-run on the surviving channel — every
    // ticket completes Ok with the golden output, none strand — and the
    // stats reflect the degraded capacity.
    auto program = testprogs::identity();
    ServiceConfig config = pacedConfig(2, 2, 256);
    config.session.requeueStranded = true;
    FleetService service(program, config);

    Rng rng(41);
    std::vector<BitBuffer> streams;
    std::vector<JobTicket> tickets;
    for (int j = 0; j < 6; ++j)
        streams.push_back(randomStream(rng, 700));
    for (const auto &stream : streams)
        tickets.push_back(service.submit(stream));

    // One round arms a job on each channel; 700 tokens over a
    // 256-cycle epoch leaves both still streaming.
    ASSERT_TRUE(service.pump());
    service.injectChannelHalt(0);
    drain(service);

    for (size_t j = 0; j < tickets.size(); ++j) {
        const runtime::JobReport &report = tickets[j].report();
        ASSERT_TRUE(report.ok())
            << "job " << j << " stranded by the halt: "
            << report.status.toString();
        EXPECT_TRUE(report.output == goldenOutput(program, streams[j]))
            << "job " << j;
        EXPECT_EQ(report.channel, 1)
            << "job " << j << " served on the dead channel?";
    }
    ServiceStats stats = service.stats();
    EXPECT_GE(stats.requeued, 1u);
    EXPECT_EQ(stats.liveSlots, 1)
        << "live capacity must reflect the lost channel";
    EXPECT_EQ(stats.completed, 6u);
    // The requeue is visible in the survivor's report.
    uint32_t max_requeues = 0;
    for (const auto &report : service.session().reports())
        max_requeues = std::max(max_requeues, report.requeues);
    EXPECT_GE(max_requeues, 1u);
}

// ---------------------------------------------------------------------------
// JobTicket edges
// ---------------------------------------------------------------------------

TEST(ServeTicketEdge, WaitForTimesOutThenCompletes)
{
    // Paced mode with nobody pumping: waitFor must time out (false)
    // without touching the simulated schedule, then succeed once the
    // caller pumps the job through.
    auto program = testprogs::identity();
    FleetService service(program, pacedConfig());
    Rng rng(43);
    JobTicket ticket = service.submit(randomStream(rng, 64));

    EXPECT_FALSE(ticket.waitFor(std::chrono::milliseconds(1)));
    EXPECT_FALSE(ticket.ready());
    while (service.pump()) {
    }
    EXPECT_TRUE(ticket.waitFor(std::chrono::milliseconds(1)));
    EXPECT_TRUE(ticket.report().ok());
    service.shutdown();

    JobTicket invalid;
    EXPECT_THROW(invalid.waitFor(std::chrono::milliseconds(1)),
                 StatusError);
}

TEST(ServeTicketEdge, ReportOutlivesShutdownAndDoubleWaitAgrees)
{
    // Two threads wait on the same ticket; both must see the same
    // final report, and the report stays readable after shutdown —
    // including a second wait(), which returns immediately.
    auto program = testprogs::identity();
    FleetService service(program, pacedConfig());
    Rng rng(47);
    BitBuffer stream = randomStream(rng, 128);
    JobTicket ticket = service.submit(stream);

    uint64_t seenA = 0, seenB = 0;
    std::thread waiterA([&] { seenA = ticket.wait().jobId; });
    std::thread waiterB([&] { seenB = ticket.wait().jobId; });
    drain(service); // paced: this thread serves the waiters
    waiterA.join();
    waiterB.join();
    EXPECT_EQ(seenA, seenB);

    // After shutdown the ticket's shared state is still alive.
    EXPECT_TRUE(ticket.ready());
    EXPECT_EQ(ticket.wait().jobId, seenA); // immediate
    EXPECT_TRUE(ticket.report().output ==
                goldenOutput(program, stream));
}

} // namespace
} // namespace serve
} // namespace fleet
