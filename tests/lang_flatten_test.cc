#include <gtest/gtest.h>

#include "lang/builder.h"
#include "lang/flatten.h"
#include "test_programs.h"

namespace fleet {
namespace lang {
namespace {

TEST(Flatten, Identity)
{
    Program p = testprogs::identity();
    FlatProgram flat = flatten(p);
    EXPECT_TRUE(flat.whileConds.empty());
    EXPECT_TRUE(flat.assigns.empty());
    ASSERT_EQ(flat.emits.size(), 1u);
    EXPECT_FALSE(flat.emits[0].insideWhile);
    ASSERT_TRUE(flat.emits[0].cond != nullptr);
}

TEST(Flatten, HistogramStructure)
{
    Program p = testprogs::blockFrequencies();
    FlatProgram flat = flatten(p);
    // One while loop, whose effective condition includes the enclosing if.
    ASSERT_EQ(flat.whileConds.size(), 1u);
    std::string cond = exprToString(flat.whileConds[0]);
    EXPECT_NE(cond.find("=="), std::string::npos); // itemCounter == block
    EXPECT_NE(cond.find("<"), std::string::npos);  // idx < 256

    // Assignments: 2 inside the loop, 3 outside (idx reset, bram update,
    // counter update).
    int inside = 0, outside = 0;
    for (const auto &assign : flat.assigns)
        (assign.insideWhile ? inside : outside)++;
    EXPECT_EQ(inside, 2);
    EXPECT_EQ(outside, 3);

    ASSERT_EQ(flat.emits.size(), 1u);
    EXPECT_TRUE(flat.emits[0].insideWhile);

    // BRAM reads: the loop-body emit read, plus the two frequencies[input]
    // reads (value and write-address collection also records the read
    // inside the assignment's value).
    int loop_reads = 0, main_reads = 0;
    for (const auto &read : flat.bramReads)
        (read.insideWhile ? loop_reads : main_reads)++;
    EXPECT_EQ(loop_reads, 1);
    EXPECT_GE(main_reads, 1);
}

TEST(Flatten, ElseArmsGetNegatedConditions)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    Value s = b.reg("s", 8);
    b.if_(r == 0, [&] { b.assign(s, 1); })
        .elseIf(r == 1, [&] { b.assign(s, 2); })
        .else_([&] { b.assign(s, 3); });
    FlatProgram flat = flatten(b.finish());
    ASSERT_EQ(flat.assigns.size(), 3u);
    // First arm: plain condition.
    EXPECT_EQ(exprToString(flat.assigns[0].cond), "(r0 == 0'1)");
    // Second arm: negation of first, conjoined with its own.
    std::string second = exprToString(flat.assigns[1].cond);
    EXPECT_NE(second.find("!"), std::string::npos);
    EXPECT_NE(second.find("== 1'1"), std::string::npos);
    // Else arm: both negations, no positive condition.
    std::string third = exprToString(flat.assigns[2].cond);
    EXPECT_NE(third.find("!"), std::string::npos);
}

TEST(Flatten, NestedIfConditionsConjoined)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    Value s = b.reg("s", 8);
    b.if_(r == 0, [&] {
        b.if_(s == 0, [&] { b.assign(s, 1); });
    });
    FlatProgram flat = flatten(b.finish());
    ASSERT_EQ(flat.assigns.size(), 1u);
    std::string cond = exprToString(flat.assigns[0].cond);
    EXPECT_NE(cond.find("r0"), std::string::npos);
    EXPECT_NE(cond.find("r1"), std::string::npos);
    EXPECT_NE(cond.find("&&"), std::string::npos);
}

TEST(Flatten, MuxPathsGateBramReads)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    Value s = b.reg("s", 8);
    Bram m = b.bram("m", 16, 8);
    // Reads of m gated by the mux select on r.
    b.assign(s, mux(r == 0, m[Value::lit(0, 4)], m[Value::lit(1, 4)]));
    FlatProgram flat = flatten(b.finish());
    ASSERT_EQ(flat.bramReads.size(), 2u);
    std::string c0 = exprToString(flat.bramReads[0].cond);
    std::string c1 = exprToString(flat.bramReads[1].cond);
    EXPECT_NE(c0.find("=="), std::string::npos);
    EXPECT_NE(c1.find("!"), std::string::npos);
}

TEST(Flatten, WideConditionNormalizedToNonZeroTest)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    Value s = b.reg("s", 8);
    b.if_(r, [&] { b.assign(s, 1); }); // 8-bit condition
    FlatProgram flat = flatten(b.finish());
    ASSERT_EQ(flat.assigns.size(), 1u);
    EXPECT_EQ(flat.assigns[0].cond->width, 1);
}

TEST(Flatten, AndCondNullHandling)
{
    EXPECT_EQ(andCond(nullptr, nullptr), nullptr);
    Expr one = constExpr(1, 1);
    EXPECT_EQ(andCond(one, nullptr), one);
    EXPECT_EQ(andCond(nullptr, one), one);
    Expr both = andCond(one, one);
    ASSERT_TRUE(both != nullptr);
    EXPECT_EQ(both->kind, ExprKind::Bin);
}

} // namespace
} // namespace lang
} // namespace fleet
