#include <gtest/gtest.h>

#include "util/ops.h"
#include "util/rng.h"

namespace fleet {
namespace {

TEST(Ops, WidthRules)
{
    EXPECT_EQ(binOpWidth(BinOp::Add, 8, 3), 8);
    EXPECT_EQ(binOpWidth(BinOp::Sub, 3, 9), 9);
    EXPECT_EQ(binOpWidth(BinOp::Mul, 8, 8), 16);
    EXPECT_EQ(binOpWidth(BinOp::Mul, 40, 40), 64);
    EXPECT_EQ(binOpWidth(BinOp::Shl, 8, 4), 8);
    EXPECT_EQ(binOpWidth(BinOp::Eq, 8, 8), 1);
    EXPECT_EQ(binOpWidth(BinOp::LAnd, 8, 8), 1);
    EXPECT_EQ(unOpWidth(UnOp::Not, 8), 8);
    EXPECT_EQ(unOpWidth(UnOp::LNot, 8), 1);
    EXPECT_EQ(unOpWidth(UnOp::Neg, 8), 8);
}

TEST(Ops, ModularArithmetic)
{
    // 8-bit wrap-around.
    EXPECT_EQ(evalBinOp(BinOp::Add, 0xff, 8, 1, 8), 0u);
    EXPECT_EQ(evalBinOp(BinOp::Sub, 0, 8, 1, 8), 0xffu);
    EXPECT_EQ(evalBinOp(BinOp::Mul, 16, 8, 16, 8), 256u); // grows to 16 bits
    EXPECT_EQ(evalBinOp(BinOp::Add, 200, 8, 100, 8), 44u);
}

TEST(Ops, MixedWidthAdd)
{
    // Result width is max(8, 3) = 8.
    EXPECT_EQ(evalBinOp(BinOp::Add, 0xff, 8, 0x7, 3), 0x06u);
}

TEST(Ops, Shifts)
{
    EXPECT_EQ(evalBinOp(BinOp::Shl, 1, 8, 7, 3), 0x80u);
    EXPECT_EQ(evalBinOp(BinOp::Shl, 1, 8, 8, 4), 0u);  // shifted out
    EXPECT_EQ(evalBinOp(BinOp::Shr, 0x80, 8, 7, 3), 1u);
    EXPECT_EQ(evalBinOp(BinOp::Shr, 0x80, 8, 8, 4), 0u);
    EXPECT_EQ(evalBinOp(BinOp::Shl, 1, 64, 63, 6), uint64_t(1) << 63);
    EXPECT_EQ(evalBinOp(BinOp::Shr, ~uint64_t(0), 64, 100, 7), 0u);
}

TEST(Ops, UnsignedComparisons)
{
    EXPECT_EQ(evalBinOp(BinOp::Ult, 3, 8, 5, 8), 1u);
    EXPECT_EQ(evalBinOp(BinOp::Ult, 5, 8, 3, 8), 0u);
    EXPECT_EQ(evalBinOp(BinOp::Uge, 5, 8, 5, 8), 1u);
    EXPECT_EQ(evalBinOp(BinOp::Eq, 0xff, 8, 0xff, 16), 1u);
    EXPECT_EQ(evalBinOp(BinOp::Ne, 0, 1, 1, 1), 1u);
}

TEST(Ops, SignedComparisons)
{
    // 0xff as signed 8-bit is -1.
    EXPECT_EQ(evalBinOp(BinOp::Slt, 0xff, 8, 0, 8), 1u);
    EXPECT_EQ(evalBinOp(BinOp::Sgt, 1, 8, 0xff, 8), 1u);
    EXPECT_EQ(evalBinOp(BinOp::Sle, 0x80, 8, 0x7f, 8), 1u); // -128 <= 127
    // Mixed widths sign-extend independently: 3-bit 0b111 == -1.
    EXPECT_EQ(evalBinOp(BinOp::Sge, 0, 8, 0b111, 3), 1u);
}

TEST(Ops, Logical)
{
    EXPECT_EQ(evalBinOp(BinOp::LAnd, 2, 8, 4, 8), 1u);
    EXPECT_EQ(evalBinOp(BinOp::LAnd, 2, 8, 0, 8), 0u);
    EXPECT_EQ(evalBinOp(BinOp::LOr, 0, 8, 0, 8), 0u);
    EXPECT_EQ(evalBinOp(BinOp::LOr, 0, 8, 9, 8), 1u);
    EXPECT_EQ(evalUnOp(UnOp::LNot, 0, 8), 1u);
    EXPECT_EQ(evalUnOp(UnOp::LNot, 3, 8), 0u);
}

TEST(Ops, UnaryBitwise)
{
    EXPECT_EQ(evalUnOp(UnOp::Not, 0b1010, 4), 0b0101u);
    EXPECT_EQ(evalUnOp(UnOp::Neg, 1, 8), 0xffu);
    EXPECT_EQ(evalUnOp(UnOp::Neg, 0, 8), 0u);
}

TEST(Ops, ResultsAlwaysMasked)
{
    Rng rng(1);
    const BinOp all_ops[] = {
        BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or,
        BinOp::Xor, BinOp::Shl, BinOp::Shr, BinOp::Eq, BinOp::Ne,
        BinOp::Ult, BinOp::Ule, BinOp::Ugt, BinOp::Uge, BinOp::Slt,
        BinOp::Sle, BinOp::Sgt, BinOp::Sge, BinOp::LAnd, BinOp::LOr,
    };
    for (int trial = 0; trial < 2000; ++trial) {
        BinOp op = all_ops[rng.nextBelow(std::size(all_ops))];
        int wa = static_cast<int>(rng.nextInRange(1, 64));
        int wb = static_cast<int>(rng.nextInRange(1, 64));
        uint64_t a = rng.next() & mask64(wa);
        uint64_t b = rng.next() & mask64(wb);
        uint64_t r = evalBinOp(op, a, wa, b, wb);
        int w = binOpWidth(op, wa, wb);
        ASSERT_EQ(r, r & mask64(w))
            << binOpName(op) << " widths " << wa << "," << wb;
    }
}

} // namespace
} // namespace fleet
