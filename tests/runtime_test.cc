/**
 * @file
 * The multi-stream job runtime (ISSUE 5): a Session must serve queues
 * far deeper than the PU pool, re-arming slots as jobs drain, with
 * per-job reports that are bit-identical across PU backends and host
 * thread counts — the same fences the one-shot path lives under, now
 * over an arbitrary job mix. Golden outputs come from the functional
 * simulator, so the whole re-arm path (controllers, backends, fault
 * plumbing) is checked end to end, not just for self-consistency.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/registry.h"
#include "runtime/session.h"
#include "sim/simulator.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace runtime {
namespace {

BitBuffer
randomStream(Rng &rng, uint64_t bytes)
{
    BitBuffer stream;
    for (uint64_t i = 0; i < bytes; ++i)
        stream.appendBits(rng.next(), 8);
    return stream;
}

BitBuffer
goldenOutput(const lang::Program &program, const BitBuffer &stream)
{
    sim::FunctionalSimulator simulator(program);
    return simulator.run(stream).output;
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(JobQueue, FifoWithSequentialIds)
{
    JobQueue queue;
    EXPECT_TRUE(queue.empty());
    BitBuffer a, b;
    a.appendBits(1, 8);
    b.appendBits(2, 8);
    EXPECT_EQ(queue.push(a), 0u);
    EXPECT_EQ(queue.push(b), 1u);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.pushed(), 2u);
    EXPECT_EQ(queue.front().id, 0u);
    PendingJob first = queue.pop();
    EXPECT_EQ(first.id, 0u);
    EXPECT_TRUE(first.stream == a);
    EXPECT_EQ(queue.pop().id, 1u);
    EXPECT_TRUE(queue.empty());
    EXPECT_THROW(queue.pop(), PanicError);
    EXPECT_THROW(queue.front(), PanicError);
    EXPECT_EQ(queue.push(std::move(a)), 2u); // ids keep counting
}

TEST(JobQueue, TakeExpiredEdgeCases)
{
    JobQueue queue;
    // Empty queue: nothing to expire, no side effects.
    EXPECT_TRUE(queue.takeExpired(1000).empty());
    EXPECT_TRUE(queue.empty());

    // Mixed deadlines: 0 means "no deadline" and never expires, even
    // at a huge now; expiry is inclusive (deadline <= now).
    BitBuffer stream;
    stream.appendBits(0xAB, 8);
    queue.push(stream, nullptr, 10, 0, 0);   // id 0: no deadline
    queue.push(stream, nullptr, 11, 0, 500); // id 1: expires at 500
    queue.push(stream, nullptr, 12, 0, 200); // id 2: expires at 200
    queue.push(stream, nullptr, 13, 0, 900); // id 3: survives
    std::vector<PendingJob> expired = queue.takeExpired(500);
    ASSERT_EQ(expired.size(), 2u);
    // FIFO order among the expired, not deadline order.
    EXPECT_EQ(expired[0].id, 1u);
    EXPECT_EQ(expired[1].id, 2u);
    // Survivors keep their relative order.
    ASSERT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.at(0).id, 0u);
    EXPECT_EQ(queue.at(0).enqueueCycle, 10u);
    EXPECT_EQ(queue.at(1).id, 3u);

    // All-expired: the queue empties in one call.
    EXPECT_EQ(queue.takeExpired(0).size(), 0u); // now too early
    std::vector<PendingJob> rest = queue.takeExpired(UINT64_MAX);
    ASSERT_EQ(rest.size(), 1u); // only id 3 carries a deadline
    EXPECT_EQ(rest[0].id, 3u);
    EXPECT_EQ(queue.size(), 1u); // id 0 (deadline 0) waits forever
}

TEST(JobQueue, RequeueFrontPreservesIdentityAndOrder)
{
    JobQueue queue;
    BitBuffer stream;
    stream.appendBits(0xCD, 8);
    queue.push(stream, nullptr, 5, 0, 0);
    queue.push(stream, nullptr, 6, 0, 0);

    // A popped job goes back to the *front* under its original id,
    // arrival cycle, and requeue count — and ids keep counting from
    // where push left off.
    PendingJob job = queue.pop();
    EXPECT_EQ(job.id, 0u);
    job.requeues = 3;
    job.tag.tenant = 7;
    queue.requeueFront(std::move(job));
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.front().id, 0u);
    EXPECT_EQ(queue.front().enqueueCycle, 5u);
    EXPECT_EQ(queue.front().requeues, 3u);
    EXPECT_EQ(queue.front().tag.tenant, 7u);
    EXPECT_EQ(queue.push(stream), 2u);

    // A foreign id (never assigned by this queue's push) panics.
    PendingJob foreign;
    foreign.id = 99;
    EXPECT_THROW(queue.requeueFront(std::move(foreign)), PanicError);
}

TEST(JobQueue, RequeueThenExpireStillHonoursDeadline)
{
    // The recovery path re-queues a stranded job at the front; if its
    // deadline has meanwhile passed, the next expiry sweep must still
    // claim it (position in the deque is irrelevant to expiry).
    JobQueue queue;
    BitBuffer stream;
    stream.appendBits(0xEF, 8);
    queue.push(stream, nullptr, 0, 0, 300); // id 0
    queue.push(stream, nullptr, 0, 0, 0);   // id 1: no deadline
    PendingJob job = queue.pop();
    job.requeues = 1;
    queue.requeueFront(std::move(job));
    std::vector<PendingJob> expired = queue.takeExpired(300);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].id, 0u);
    EXPECT_EQ(expired[0].requeues, 1u);
    ASSERT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.front().id, 1u);
}

TEST(JobQueue, TakeByIndexMatchesSchedulerContract)
{
    // take(0) == pop(); take(i) removes exactly the i-th job and
    // preserves everyone else's order — what Session::armSweep relies
    // on when honouring a scheduler pick.
    JobQueue queue;
    BitBuffer stream;
    stream.appendBits(0x11, 8);
    for (int j = 0; j < 4; ++j)
        queue.push(stream, nullptr, static_cast<uint64_t>(j));
    PendingJob second = queue.take(1);
    EXPECT_EQ(second.id, 1u);
    ASSERT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.at(0).id, 0u);
    EXPECT_EQ(queue.at(1).id, 2u);
    EXPECT_EQ(queue.at(2).id, 3u);
    EXPECT_EQ(queue.take(0).id, 0u); // take(0) behaves like pop()
    EXPECT_THROW(queue.take(5), PanicError);
    EXPECT_THROW(queue.at(5), PanicError);
}

// ---------------------------------------------------------------------------
// Session basics: deep queues over a small pool.
// ---------------------------------------------------------------------------

SessionConfig
smallConfig(system::PuBackend backend, int threads)
{
    SessionConfig config;
    config.system.numChannels = 3; // uneven slot division
    config.system.numThreads = threads;
    config.system.backend = backend;
    config.system.inputRegionBytes = 4096;
    config.numSlots = 8;
    config.epochCycles = 512;
    return config;
}

TEST(RuntimeSession, SixtyFourJobsOverEightSlots)
{
    // 64 mixed-size jobs over 8 slots: every slot serves many jobs in
    // sequence, and each output must match the functional simulator
    // over exactly that job's stream (a stateful program, so any
    // leakage of a previous job's registers or BRAM contents through
    // the re-arm path shows up immediately).
    auto program = testprogs::blockFrequencies(32);
    Rng rng(1234);
    std::vector<BitBuffer> streams;
    for (int j = 0; j < 64; ++j)
        streams.push_back(randomStream(rng, 40 + rng.nextBelow(360)));

    Session session(program, smallConfig(system::PuBackend::Fast, 2));
    for (auto &stream : streams)
        session.submit(stream);
    EXPECT_EQ(session.jobsSubmitted(), 64u);
    const system::RunReport &report = session.finish();

    EXPECT_TRUE(report.allOk()) << report.summary();
    EXPECT_EQ(session.jobsFinished(), 64u);
    EXPECT_EQ(session.jobsPending(), 0u);
    std::vector<uint64_t> jobs_per_slot(8, 0);
    for (uint64_t j = 0; j < 64; ++j) {
        const JobReport &job = session.report(j);
        EXPECT_EQ(job.jobId, j);
        ASSERT_TRUE(job.ok()) << "job " << j << ": "
                              << job.status.toString();
        ASSERT_GE(job.pu, 0);
        ASSERT_LT(job.pu, 8);
        EXPECT_EQ(job.channel, job.pu % 3);
        EXPECT_EQ(job.streamBits, streams[j].sizeBits());
        EXPECT_GT(job.retireCycle, job.armCycle);
        EXPECT_TRUE(job.output == goldenOutput(program, streams[j]))
            << "job " << j << " output diverges from functional sim";
        EXPECT_EQ(job.outputBits, job.output.sizeBits());
        ++jobs_per_slot[job.pu];
    }
    // More jobs than slots forces re-arm on every slot.
    for (int p = 0; p < 8; ++p)
        EXPECT_GT(jobs_per_slot[p], 1u) << "slot " << p << " never reused";
}

TEST(RuntimeSession, BitIdenticalAcrossBackendsAndThreadCounts)
{
    // The acceptance fence: the same job mix must produce *identical*
    // JobReports — outputs, cycles, stall counters — on the fast
    // model, the scalar RTL tape, and the batched RTL engine, at 1 and
    // 4 host threads. Six full runs compared field by field.
    auto program = testprogs::blockFrequencies(32);
    Rng rng(77);
    std::vector<BitBuffer> streams;
    for (int j = 0; j < 24; ++j)
        streams.push_back(randomStream(rng, 30 + rng.nextBelow(150)));

    auto runAll = [&](system::PuBackend backend, int threads) {
        Session session(program, smallConfig(backend, threads));
        for (auto &stream : streams)
            session.submit(stream);
        system::RunReport report = session.finish();
        return std::make_pair(session.reports(), std::move(report));
    };

    auto [fast1, fast1_report] = runAll(system::PuBackend::Fast, 1);
    ASSERT_TRUE(fast1_report.allOk()) << fast1_report.summary();
    for (uint64_t j = 0; j < streams.size(); ++j)
        ASSERT_TRUE(fast1[j].output == goldenOutput(program, streams[j]))
            << "job " << j;

    struct Variant
    {
        system::PuBackend backend;
        int threads;
        const char *label;
    };
    const Variant variants[] = {
        {system::PuBackend::Fast, 4, "Fast/4"},
        {system::PuBackend::RtlTape, 1, "RtlTape/1"},
        {system::PuBackend::RtlTape, 4, "RtlTape/4"},
        {system::PuBackend::Rtl, 1, "RtlBatch/1"},
        {system::PuBackend::Rtl, 4, "RtlBatch/4"},
    };
    for (const Variant &variant : variants) {
        auto [reports, run_report] =
            runAll(variant.backend, variant.threads);
        ASSERT_EQ(reports.size(), fast1.size()) << variant.label;
        for (uint64_t j = 0; j < reports.size(); ++j)
            ASSERT_TRUE(reports[j] == fast1[j])
                << variant.label << ": job " << j
                << " diverges from Fast/1";
        ASSERT_TRUE(run_report == fast1_report)
            << variant.label << ": RunReport diverges from Fast/1";
    }
}

TEST(RuntimeSession, MixedAppsAcrossSessions)
{
    // Heterogeneous traffic across the six evaluation apps: one
    // Session per program (a session's circuit is fixed), 12 jobs
    // each, every output checked against the functional simulator.
    auto apps = apps::allApplications();
    Rng rng(5150);
    int total_jobs = 0;
    for (const auto &app : apps) {
        SessionConfig config = smallConfig(system::PuBackend::Fast, 2);
        config.numSlots = 4;
        config.system.inputRegionBytes = 8192;
        Session session(app->program(), config);
        std::vector<BitBuffer> streams;
        for (int j = 0; j < 12; ++j) {
            streams.push_back(
                app->generateStream(rng, 100 + rng.nextBelow(500)));
            session.submit(streams.back());
        }
        const system::RunReport &report = session.finish();
        ASSERT_TRUE(report.allOk())
            << app->name() << ": " << report.summary();
        for (uint64_t j = 0; j < streams.size(); ++j) {
            const JobReport &job = session.report(j);
            ASSERT_TRUE(job.ok()) << app->name() << " job " << j;
            ASSERT_TRUE(job.output ==
                        goldenOutput(app->program(), streams[j]))
                << app->name() << " job " << j;
        }
        total_jobs += static_cast<int>(streams.size());
    }
    EXPECT_GE(total_jobs, 64); // mixed apps + sizes, more jobs than PUs
}

TEST(RuntimeSession, SubmitWhileServing)
{
    // Jobs arriving mid-serve (the server shape): the first wave is in
    // flight when the second wave lands; everything still completes
    // with golden outputs.
    auto program = testprogs::streamSum();
    Rng rng(9);
    std::vector<BitBuffer> streams;
    for (int j = 0; j < 30; ++j)
        streams.push_back(randomStream(rng, 20 + rng.nextBelow(200)));

    Session session(program, smallConfig(system::PuBackend::Fast, 2));
    for (int j = 0; j < 10; ++j)
        session.submit(streams[j]);
    for (int round = 0; round < 3; ++round)
        session.step();
    for (int j = 10; j < 30; ++j)
        session.submit(streams[j]);
    session.finish();

    EXPECT_EQ(session.jobsFinished(), 30u);
    for (uint64_t j = 0; j < 30; ++j) {
        const JobReport &job = session.report(j);
        ASSERT_TRUE(job.ok()) << "job " << j;
        ASSERT_TRUE(job.output == goldenOutput(program, streams[j]))
            << "job " << j;
    }
}

TEST(RuntimeSession, CallbacksFireWithFinalReports)
{
    auto program = testprogs::identity();
    Rng rng(3);
    Session session(program, smallConfig(system::PuBackend::Fast, 1));
    std::vector<uint64_t> seen;
    for (int j = 0; j < 12; ++j) {
        BitBuffer stream = randomStream(rng, 50);
        session.submit(stream, [&seen](const JobReport &job) {
            seen.push_back(job.jobId);
            EXPECT_TRUE(job.ok());
        });
    }
    session.finish();
    ASSERT_EQ(seen.size(), 12u);
    for (uint64_t j = 0; j < 12; ++j)
        EXPECT_TRUE(session.done(j));
    // Each callback fired exactly once, with the stored report.
    std::vector<uint64_t> sorted = seen;
    std::sort(sorted.begin(), sorted.end());
    for (uint64_t j = 0; j < 12; ++j)
        EXPECT_EQ(sorted[j], j);
}

// ---------------------------------------------------------------------------
// Error paths.
// ---------------------------------------------------------------------------

TEST(RuntimeSession, BadJobsFailAloneQueueContinues)
{
    auto program = testprogs::identity();
    Rng rng(8);
    SessionConfig config = smallConfig(system::PuBackend::Fast, 1);
    config.system.inputRegionBytes = 1024;
    Session session(program, config);

    BitBuffer good_a = randomStream(rng, 100);
    BitBuffer misaligned;
    misaligned.appendBits(3, 5); // not a whole 8-bit token
    BitBuffer oversized = randomStream(rng, 5000); // > 1 KiB region
    BitBuffer good_b = randomStream(rng, 200);

    uint64_t id_a = session.submit(good_a);
    uint64_t id_bad = session.submit(std::move(misaligned));
    uint64_t id_big = session.submit(std::move(oversized));
    uint64_t id_b = session.submit(good_b);
    session.finish();

    EXPECT_EQ(session.report(id_bad).status.code,
              StatusCode::InvalidArgument);
    EXPECT_EQ(session.report(id_big).status.code,
              StatusCode::InvalidArgument);
    EXPECT_NE(session.report(id_big).status.message.find(
                  "inputRegionBytes"),
              std::string::npos);
    // The good jobs around them are untouched.
    EXPECT_TRUE(session.report(id_a).ok());
    EXPECT_TRUE(session.report(id_a).output == good_a);
    EXPECT_TRUE(session.report(id_b).ok());
    EXPECT_TRUE(session.report(id_b).output == good_b);
}

TEST(RuntimeSession, ProtocolMisuse)
{
    auto program = testprogs::identity();
    Session session(program, smallConfig(system::PuBackend::Fast, 1));
    Rng rng(4);
    uint64_t id = session.submit(randomStream(rng, 40));

    // Report before the job finished.
    try {
        session.report(id);
        FAIL() << "report() on an in-flight job should throw";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code, StatusCode::InvalidState);
    }
    EXPECT_FALSE(session.done(id));
    EXPECT_FALSE(session.done(999)); // unknown ids are just not done

    session.finish();
    EXPECT_TRUE(session.done(id));
    EXPECT_THROW(session.submit(randomStream(rng, 8)), StatusError);
    EXPECT_THROW(session.step(), StatusError);
}

// ---------------------------------------------------------------------------
// Failure containment: a halted channel strands only its own jobs.
// ---------------------------------------------------------------------------

namespace {

/** The deadlock recipe from the watchdog suite: a threshold filter
 * under blocking output addressing; divergent emit rates wedge the
 * channel. */
lang::Program
thresholdFilter()
{
    using lang::Value;
    lang::ProgramBuilder b("filter", 8, 8);
    Value threshold = b.reg("threshold", 8, 0);
    Value configured = b.reg("configured", 1, 0);
    b.if_(!b.streamFinished(), [&] {
        b.if_(configured == 0, [&] {
            b.assign(threshold, b.input());
            b.assign(configured, Value::lit(1, 1));
        }).elseIf(b.input() < threshold, [&] { b.emit(b.input()); });
    });
    return b.finish();
}

/** A filter stream: first byte is the threshold, then random tokens. */
BitBuffer
filterStream(Rng &rng, uint8_t threshold, uint64_t tokens)
{
    BitBuffer stream;
    stream.appendBits(threshold, 8);
    for (uint64_t t = 0; t < tokens; ++t)
        stream.appendBits(rng.next(), 8);
    return stream;
}

} // namespace

TEST(RuntimeSession, HaltedChannelStrandsItsJobsOthersKeepServing)
{
    auto program = thresholdFilter();

    auto runScenario = [&](int threads) {
        SessionConfig config;
        config.system.numChannels = 2;
        config.system.numThreads = threads;
        config.system.outputCtrl.blockingAddressing = true;
        config.system.watchdogCycles = 20000;
        config.system.inputRegionBytes = 64 * 1024;
        config.numSlots = 8;
        config.epochCycles = 2048;
        Session session(program, config);

        // Slots alternate channels (slot p → channel p % 2). Jobs
        // 0..7 land on slots 0..7: give channel 0's slots (even jobs)
        // the divergent-rate mix that deadlocks under blocking
        // addressing, channel 1's slots (odd jobs) healthy mid-rate
        // filters; then queue more healthy work behind them.
        Rng rng(11);
        for (int j = 0; j < 8; ++j) {
            uint8_t threshold = j % 2 == 0
                                    ? (j % 4 == 0 ? 2 : 250) // channel 0
                                    : 128;                   // channel 1
            uint64_t tokens = j % 2 == 0 ? 40000 : 2000;
            session.submit(filterStream(rng, threshold, tokens));
        }
        for (int j = 8; j < 20; ++j)
            session.submit(filterStream(rng, 128, 1500));
        system::RunReport report = session.finish();
        return std::make_pair(session.reports(), std::move(report));
    };

    auto [reports, report] = runScenario(1);
    // Channel 0 tripped its watchdog; channel 1 finished clean.
    ASSERT_EQ(report.channels.size(), 2u);
    EXPECT_EQ(report.channels[0].status.code, StatusCode::WatchdogStall);
    EXPECT_TRUE(report.channels[1].status.ok())
        << report.channels[1].status.toString();

    ASSERT_EQ(reports.size(), 20u);
    int stranded = 0, completed = 0;
    for (const JobReport &job : reports) {
        if (job.status.code == StatusCode::WatchdogStall) {
            ++stranded;
            EXPECT_EQ(job.channel, 0) << "job " << job.jobId;
            EXPECT_NE(job.status.message.find("stranded"),
                      std::string::npos);
        } else {
            ++completed;
            ASSERT_TRUE(job.ok())
                << "job " << job.jobId << ": " << job.status.toString();
            EXPECT_EQ(job.channel, 1) << "job " << job.jobId;
        }
    }
    // The four channel-0 jobs strand; every other job completes on
    // channel 1 (the queue drains around the dead channel).
    EXPECT_EQ(stranded, 4);
    EXPECT_EQ(completed, 16);

    // The whole failure scenario is thread-count invariant too.
    auto [reports4, report4] = runScenario(4);
    ASSERT_EQ(reports4.size(), reports.size());
    for (size_t j = 0; j < reports.size(); ++j)
        ASSERT_TRUE(reports4[j] == reports[j])
            << "job " << j << " diverges at 4 threads";
    ASSERT_TRUE(report4 == report);
}

} // namespace
} // namespace runtime
} // namespace fleet
