#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "compile/compiler.h"
#include "lang/builder.h"
#include "rtl/batch_sim.h"
#include "rtl/jit.h"
#include "rtl/tape.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "system/pu_fast.h"
#include "system/pu_rtl.h"
#include "system/pu_rtl_batch.h"
#include "rtl/sim.h"
#include "system/pu_testbench.h"
#include "util/rng.h"

/**
 * Property test: generate random restriction-respecting Fleet programs and
 * verify that the functional simulator, the compiled RTL, and the fast
 * replay model agree on outputs (and the two cycle models on exact cycle
 * counts) across stall profiles. This is the reproduction of the paper's
 * cross-checking test infrastructure (Section 6), generalized from six
 * hand-written applications to a program family.
 *
 * The same program family also feeds the observability layer (ISSUE 3):
 * random programs run under the full system with tracing enabled must
 * satisfy the counter-conservation invariants, and tracing must never
 * change the simulation (trace-on and trace-off runs bit-identical).
 */

namespace fleet {
namespace {

using lang::Bram;
using lang::Program;
using lang::ProgramBuilder;
using lang::Value;
using lang::VecReg;
using lang::mux;

/** Generates one random program per seed. */
class RandomProgramGenerator
{
  public:
    explicit RandomProgramGenerator(uint64_t seed) : rng_(seed) {}

    Program
    generate()
    {
        int token_width = pick({4, 8, 8, 16});
        int out_width = pick({4, 8, 8, 12});
        ProgramBuilder b("rand", token_width, out_width);

        // State elements.
        int num_regs = 1 + static_cast<int>(rng_.nextBelow(4));
        std::vector<Value> regs;
        for (int i = 0; i < num_regs; ++i) {
            int w = 2 + static_cast<int>(rng_.nextBelow(11));
            regs.push_back(b.reg("r" + std::to_string(i), w,
                                 rng_.next() & mask64(w)));
        }
        std::vector<VecReg> vregs;
        if (rng_.nextChance(1, 2))
            vregs.push_back(b.vreg("v0", 4 << rng_.nextBelow(2), 8));
        std::vector<Bram> brams;
        int num_brams = static_cast<int>(rng_.nextBelow(3));
        for (int i = 0; i < num_brams; ++i)
            brams.push_back(b.bram("m" + std::to_string(i),
                                   8 << rng_.nextBelow(3), 8));

        // One fixed read-address expression per BRAM guarantees the
        // one-read-per-virtual-cycle restriction by construction.
        ctx_ = Ctx{&b, regs, vregs, brams, {}};
        for (const auto &bram : brams) {
            int aw = indexWidth(bram.elements());
            ctx_.bramReadAddr.push_back(
                bramFreeExpr(3).resize(aw + 2) &
                Value::lit(bram.elements() - 1, aw + 2).resize(aw + 2));
        }

        // Program body: a couple of top-level statements, possibly an
        // if/else tree, one optional while loop, one emit.
        emitPlaced_ = false;
        std::vector<int> unassigned;
        for (int i = 0; i < num_regs; ++i)
            unassigned.push_back(i);
        // Reserve reg 0 as the while counter if we place a loop.
        bool use_while = rng_.nextChance(2, 3);
        if (use_while) {
            Value counter = regs[0];
            int cw = counter.width();
            b.while_(counter != 0, [&] {
                b.assign(counter, counter - 1);
                if (!emitPlaced_ && rng_.nextChance(1, 2)) {
                    b.emit(anyExpr(2).resize(out_width));
                    emitPlaced_ = true;
                }
            });
            // Reload the counter outside the loop from the input.
            b.assign(counter,
                     b.input().resize(cw) &
                         Value::lit(7, cw > 3 ? cw : 3).resize(cw));
            unassigned.erase(unassigned.begin());
        }

        genBlock(unassigned, out_width, 0);

        // Make sure every BRAM's read address is actually exercised and
        // each BRAM gets one write site.
        for (size_t m = 0; m < brams.size(); ++m) {
            b.assign(brams[m][ctx_.bramReadAddr[m]],
                     (brams[m][ctx_.bramReadAddr[m]] + bramFreeExpr(1))
                         .resize(8));
        }
        if (!vregs.empty()) {
            int iw = indexWidth(vregs[0].elements());
            b.assign(vregs[0][bramFreeExpr(2).resize(iw)],
                     bramFreeExpr(2).resize(8));
        }
        if (!emitPlaced_)
            b.emit(anyExpr(2).resize(out_width));

        return b.finish();
    }

  private:
    struct Ctx
    {
        ProgramBuilder *b;
        std::vector<Value> regs;
        std::vector<VecReg> vregs;
        std::vector<Bram> brams;
        std::vector<Value> bramReadAddr;
    };

    int
    pick(std::initializer_list<int> options)
    {
        auto it = options.begin();
        std::advance(it, rng_.nextBelow(options.size()));
        return *it;
    }

    /** Random expression with no BRAM reads (usable in conditions). */
    Value
    bramFreeExpr(int depth)
    {
        if (depth == 0 || rng_.nextChance(1, 3)) {
            switch (rng_.nextBelow(3)) {
              case 0:
                return ctx_.b->input();
              case 1:
                return ctx_.regs[rng_.nextBelow(ctx_.regs.size())];
              default:
                return Value::lit(rng_.next() & mask64(6), 6);
            }
        }
        Value a = bramFreeExpr(depth - 1);
        Value c = bramFreeExpr(depth - 1);
        return combine(a, c, depth);
    }

    /** Random expression that may read BRAMs (value positions only). */
    Value
    anyExpr(int depth)
    {
        if (!ctx_.brams.empty() && rng_.nextChance(1, 3)) {
            size_t m = rng_.nextBelow(ctx_.brams.size());
            return ctx_.brams[m][ctx_.bramReadAddr[m]];
        }
        if (!ctx_.vregs.empty() && rng_.nextChance(1, 4)) {
            int iw = indexWidth(ctx_.vregs[0].elements());
            return ctx_.vregs[0][bramFreeExpr(1).resize(iw)];
        }
        if (depth == 0)
            return bramFreeExpr(0);
        Value a = anyExpr(depth - 1);
        Value c = anyExpr(depth - 1);
        return combine(a, c, depth);
    }

    Value
    combine(const Value &a, const Value &c, int depth)
    {
        switch (rng_.nextBelow(10)) {
          case 0: return a + c;
          case 1: return a - c;
          case 2: return a ^ c;
          case 3: return a & c;
          case 4: return a | c;
          case 5: return (a == c).resize(1);
          case 6: return (a < c).resize(1);
          case 7: return mux(bramFreeExpr(depth - 1), a, c);
          case 8: return (a >> Value::lit(rng_.nextBelow(4), 2));
          default: return ~a;
        }
    }

    /** Emit statements assigning each register in `targets` exactly once,
     * possibly nested under random if/else arms. */
    void
    genBlock(const std::vector<int> &targets, int out_width, int depth)
    {
        ProgramBuilder &b = *ctx_.b;
        size_t i = 0;
        while (i < targets.size()) {
            if (depth < 2 && targets.size() - i >= 2 &&
                rng_.nextChance(1, 2)) {
                // Split the remaining targets across if/else arms: the
                // arms are mutually exclusive so each register still
                // commits at most once per virtual cycle.
                std::vector<int> arm_a, arm_b;
                for (size_t j = i; j < targets.size(); ++j)
                    (rng_.nextChance(1, 2) ? arm_a : arm_b)
                        .push_back(targets[j]);
                Value cond = bramFreeExpr(2);
                b.if_(cond, [&] {
                    genBlock(arm_a, out_width, depth + 1);
                    maybeEmit(out_width);
                }).else_([&] {
                    genBlock(arm_b, out_width, depth + 1);
                    maybeEmit(out_width);
                });
                return;
            }
            int r = targets[i];
            int w = ctx_.regs[r].width();
            b.assign(ctx_.regs[r], anyExpr(2).resize(w));
            ++i;
        }
    }

    void
    maybeEmit(int out_width)
    {
        if (!emitPlaced_ && rng_.nextChance(1, 3)) {
            ctx_.b->emit(anyExpr(2).resize(out_width));
            emitPlaced_ = true;
        }
    }

    Rng rng_;
    Ctx ctx_{nullptr, {}, {}, {}, {}};
    bool emitPlaced_ = false;
};

class RandomProgramCrossCheck : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgramCrossCheck, AllBackendsAgree)
{
    uint64_t seed = GetParam();
    RandomProgramGenerator generator(seed);
    Program program = generator.generate();

    Rng rng(seed * 7919 + 1);
    BitBuffer input;
    int tokens = 120 + static_cast<int>(rng.nextBelow(100));
    for (int i = 0; i < tokens; ++i)
        input.appendBits(rng.next(), program.inputTokenWidth);

    sim::FunctionalSimulator functional(program);
    sim::RunResult golden = functional.run(input);

    system::RtlPu rtl_pu(program);
    system::FastPu fast_pu(program, input);
    auto engine = std::make_shared<const system::RtlTapeEngine>(program);
    system::TapeRtlPu tape_pu(engine);
    auto batch = std::make_shared<system::RtlBatch>(engine, 4);
    system::RtlBatchLane batch_pu(batch, 2);

    const system::TestbenchOptions profiles[] = {
        {1.0, 1.0, seed + 1, 1ULL << 26},
        {0.6, 0.7, seed + 2, 1ULL << 26},
    };
    for (const auto &profile : profiles) {
        auto rtl_result = system::runPu(rtl_pu, input, profile);
        auto fast_result = system::runPu(fast_pu, input, profile);
        auto tape_result = system::runPu(tape_pu, input, profile);
        auto batch_result = system::runPu(batch_pu, input, profile);
        ASSERT_TRUE(rtl_result.output == golden.output)
            << "seed " << seed << ": RTL output mismatch";
        ASSERT_TRUE(fast_result.output == golden.output)
            << "seed " << seed << ": fast-model output mismatch";
        ASSERT_TRUE(tape_result.output == golden.output)
            << "seed " << seed << ": tape-engine output mismatch";
        ASSERT_TRUE(batch_result.output == golden.output)
            << "seed " << seed << ": batched-engine output mismatch";
        ASSERT_EQ(rtl_result.cycles, fast_result.cycles)
            << "seed " << seed << ": cycle-count mismatch";
        ASSERT_EQ(rtl_result.cycles, tape_result.cycles)
            << "seed " << seed << ": interpreter/tape cycle mismatch";
        ASSERT_EQ(rtl_result.cycles, batch_result.cycles)
            << "seed " << seed << ": interpreter/batch cycle mismatch";
    }

    // Property: the generator only produces restriction-respecting
    // programs (the functional run above would have thrown otherwise),
    // so the compiler's inserted runtime checks must never fire.
    compile::CompileOptions check_options;
    check_options.insertRuntimeChecks = true;
    auto checked = compile::compileProgram(program, check_options);
    rtl::Simulator sim(checked.circuit);
    rtl::NodeId violation = checked.circuit.outputNode("violation");
    uint64_t token_count = input.sizeBits() / program.inputTokenWidth;
    uint64_t next = 0;
    for (uint64_t cycle = 0; cycle < token_count + 200; ++cycle) {
        bool have = next < token_count;
        sim.setInput(checked.inInputToken,
                     have ? input.readBits(next * program.inputTokenWidth,
                                           program.inputTokenWidth)
                          : 0);
        sim.setInput(checked.inInputValid, have ? 1 : 0);
        sim.setInput(checked.inInputFinished, have ? 0 : 1);
        sim.setInput(checked.inOutputReady, 1);
        sim.evalComb();
        ASSERT_EQ(sim.value(violation), 0u)
            << "seed " << seed << ": runtime check fired at cycle "
            << cycle;
        if (sim.value(checked.outOutputFinished) != 0)
            break;
        if (sim.value(checked.outInputReady) != 0 && have)
            ++next;
        sim.step();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramCrossCheck,
                         ::testing::Range<uint64_t>(1, 41));

class RandomProgramTraceConservation
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgramTraceConservation, InvariantsHoldAndTracingIsPure)
{
    uint64_t seed = GetParam();
    RandomProgramGenerator generator(seed);
    Program program = generator.generate();

    // A handful of streams of random whole tokens, unevenly sized so
    // the channels finish at different cycles.
    Rng rng(seed * 6271 + 5);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 5; ++p) {
        BitBuffer stream;
        int tokens = 90 + static_cast<int>(rng.nextBelow(120));
        for (int i = 0; i < tokens; ++i)
            stream.appendBits(rng.next(), program.inputTokenWidth);
        streams.push_back(std::move(stream));
    }

    // Note bufferBursts stays at the paper's 1: non-dividing token
    // widths (e.g. 12-bit outputs against 1024-bit bursts) are handled
    // by the controllers' one-token skid (memctl/params.h tokenBits),
    // not by doubling the buffer.
    auto config = [](int threads, bool traced) {
        system::SystemConfig c;
        c.numChannels = 3;
        c.numThreads = threads;
        c.trace.counters = traced;
        c.trace.events = traced;
        return c;
    };

    system::FleetSystem traced(program, config(1, true), streams);
    const system::RunReport &report = traced.run();
    ASSERT_TRUE(report.allOk()) << "seed " << seed << ": "
                                << report.summary();
    ASSERT_NE(report.trace, nullptr);

    // Conservation: every (PU, cycle) in exactly one phase; delivered
    // bits equal stream bits at both the PU and controller level; the
    // occupancy histograms hold one sample per cycle.
    for (const trace::ChannelTrace &ch : report.trace->channels) {
        uint64_t pu_delivered = 0;
        const trace::CounterSet *input = nullptr;
        for (const trace::CounterSet &set : ch.counters) {
            if (set.name.ends_with("/input_ctrl"))
                input = &set;
            if (set.name.find("/pu") == std::string::npos)
                continue;
            uint64_t phase_sum = 0;
            for (int p = 0; p < trace::kNumPuPhases; ++p)
                phase_sum += set.get(
                    std::string(trace::puPhaseName(
                        static_cast<trace::PuPhase>(p))) +
                    "_cycles");
            EXPECT_EQ(phase_sum, ch.cycles)
                << "seed " << seed << " " << set.name;
            EXPECT_EQ(set.get("delivered_bits"), set.get("stream_bits"))
                << "seed " << seed << " " << set.name;
            pu_delivered += set.get("delivered_bits");
        }
        ASSERT_NE(input, nullptr) << "seed " << seed;
        EXPECT_EQ(input->get("bits_delivered"), pu_delivered)
            << "seed " << seed << " channel " << ch.channel;
        for (const trace::Histogram &h : ch.histograms)
            EXPECT_EQ(h.samples(), ch.cycles)
                << "seed " << seed << " " << h.name;
    }

    // Determinism: the worker-pool run collects the identical trace.
    system::FleetSystem parallel(program, config(4, true), streams);
    const system::RunReport &parallel_report = parallel.run();
    ASSERT_TRUE(report == parallel_report)
        << "seed " << seed << ": traced reports diverge across threads";

    // Purity: switching tracing off changes nothing observable.
    system::FleetSystem plain(program, config(1, false), streams);
    plain.run();
    EXPECT_EQ(plain.stats().cycles, traced.stats().cycles)
        << "seed " << seed;
    for (int p = 0; p < plain.numPus(); ++p)
        EXPECT_TRUE(plain.output(p) == traced.output(p))
            << "seed " << seed << " PU " << p
            << ": tracing changed the output bytes";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTraceConservation,
                         ::testing::Range<uint64_t>(1, 17));

/** Drop the engine-identity counters (which name the backend and its
 * compile statistics) so the remaining counters — handshakes, phases,
 * controller and DRAM activity — can be compared across engines. */
trace::CounterSet
stripEngineKeys(const trace::CounterSet &in)
{
    static const char *const engine_keys[] = {
        "backend_rtl",  "backend_rtl_tape", "backend_rtl_jit",
        "circuit_nodes", "tape_ops",        "nodes_eliminated",
        "batch_width",
    };
    trace::CounterSet out;
    out.name = in.name;
    for (const auto &kv : in.values) {
        bool engine_key =
            std::any_of(std::begin(engine_keys), std::end(engine_keys),
                        [&](const char *k) { return kv.first == k; });
        if (!engine_key)
            out.values.push_back(kv);
    }
    return out;
}

class RandomProgramEngineEquivalence
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgramEngineEquivalence, RtlEnginesBitIdentical)
{
    uint64_t seed = GetParam();
    RandomProgramGenerator generator(seed);
    Program program = generator.generate();

    Rng rng(seed * 104729 + 11);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 4; ++p) {
        BitBuffer stream;
        int tokens = 60 + static_cast<int>(rng.nextBelow(80));
        for (int i = 0; i < tokens; ++i)
            stream.appendBits(rng.next(), program.inputTokenWidth);
        streams.push_back(std::move(stream));
    }

    auto config = [](system::PuBackend backend, int threads) {
        system::SystemConfig c;
        c.numChannels = 2;
        c.numThreads = threads;
        c.backend = backend;
        c.trace.counters = true;
        return c;
    };

    // The per-node interpreter is the reference; the tape and batched
    // engines must match it bit for bit — outputs, cycle count, and
    // every trace counter that is not an engine-identity key — at one
    // thread and at N threads.
    system::FleetSystem interp(program,
                               config(system::PuBackend::RtlInterp, 1),
                               streams);
    const system::RunReport &interp_report = interp.run();
    ASSERT_TRUE(interp_report.allOk())
        << "seed " << seed << ": " << interp_report.summary();

    // RtlJit exercises the native kernel when a host toolchain is
    // available and the documented fallback demotion to RtlTape when
    // not (e.g. the FLEET_JIT_DISABLE=1 CI leg) — identical outputs
    // either way, so the assertion holds in both modes.
    const system::PuBackend engines[] = {system::PuBackend::RtlTape,
                                         system::PuBackend::Rtl,
                                         system::PuBackend::RtlJit};
    for (system::PuBackend backend : engines) {
        for (int threads : {1, 4}) {
            system::FleetSystem sys(program, config(backend, threads),
                                    streams);
            const system::RunReport &report = sys.run();
            ASSERT_TRUE(report.allOk())
                << "seed " << seed << ": " << report.summary();
            EXPECT_EQ(sys.stats().cycles, interp.stats().cycles)
                << "seed " << seed << ": cycle-count mismatch";
            for (int p = 0; p < sys.numPus(); ++p)
                ASSERT_TRUE(sys.output(p) == interp.output(p))
                    << "seed " << seed << " PU " << p
                    << ": output mismatch vs interpreter";
            ASSERT_NE(report.trace, nullptr);
            ASSERT_EQ(report.trace->channels.size(),
                      interp_report.trace->channels.size());
            for (size_t ch = 0; ch < report.trace->channels.size();
                 ++ch) {
                const auto &a = report.trace->channels[ch];
                const auto &b = interp_report.trace->channels[ch];
                EXPECT_EQ(a.cycles, b.cycles) << "seed " << seed;
                ASSERT_EQ(a.counters.size(), b.counters.size());
                for (size_t s = 0; s < a.counters.size(); ++s)
                    EXPECT_TRUE(stripEngineKeys(a.counters[s]) ==
                                stripEngineKeys(b.counters[s]))
                        << "seed " << seed << ": counter set "
                        << a.counters[s].name
                        << " differs between engines";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEngineEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

class RandomProgramJitBitIdentity
    : public ::testing::TestWithParam<uint64_t>
{
};

/**
 * JIT vs interpreter bit-identity at the BatchSimulator level, on the
 * exactly-observed state: output ports each cycle, every register and
 * every BRAM word at the end. Non-power-of-two lane counts exercise
 * the generated vector main loop plus its scalar tail; a mid-run
 * resetLane models containPu slot reuse after a kill/quarantine, and a
 * single-lane catch-up drives the jit's [lane, lane+1) range — the
 * shape stepRange uses when lanes die mid-run.
 */
TEST_P(RandomProgramJitBitIdentity, MatchesInterpreterLaneForLane)
{
    uint64_t seed = GetParam();
    RandomProgramGenerator generator(seed);
    Program program = generator.generate();
    auto unit = compile::compileProgram(program);
    auto tape = std::make_shared<const rtl::TapeProgram>(
        rtl::TapeProgram::compile(unit.circuit));

    for (int lanes : {5, 11}) {
        rtl::JitOptions jopts;
        jopts.lanes = lanes;
        Status jit_status;
        auto jit = rtl::JitProgram::compile(*tape, jopts, &jit_status);
        if (!jit)
            GTEST_SKIP() << "jit unavailable: " << jit_status.toString();

        rtl::BatchSimulator ref(tape, lanes);
        rtl::BatchSimulator jbs(tape, lanes);
        jbs.attachJit(jit);

        std::vector<Rng> rngs;
        for (int l = 0; l < lanes; ++l)
            rngs.emplace_back(seed * 31 + l);
        auto feed = [&](int l) {
            uint64_t tok =
                rngs[l].next() & mask64(program.inputTokenWidth);
            for (rtl::BatchSimulator *s : {&ref, &jbs}) {
                s->setInput(l, unit.inInputToken, tok);
                s->setInput(l, unit.inInputValid, 1);
                s->setInput(l, unit.inInputFinished, 0);
                s->setInput(l, unit.inOutputReady, 1);
            }
        };
        auto expect_outputs = [&](int l, const char *where) {
            for (rtl::NodeId out :
                 {unit.outInputReady, unit.outOutputToken,
                  unit.outOutputValid, unit.outOutputFinished})
                ASSERT_EQ(jbs.value(l, out), ref.value(l, out))
                    << "seed " << seed << " lanes " << lanes << " lane "
                    << l << " " << where;
        };

        const int reset_lane = int(seed % uint64_t(lanes));
        for (int cycle = 0; cycle < 140; ++cycle) {
            if (cycle == 60) {
                // containPu slot reuse: the lane is reset and re-armed
                // with a fresh stream while its neighbours keep state.
                ref.resetLane(reset_lane);
                jbs.resetLane(reset_lane);
                rngs[reset_lane] = Rng(seed * 131 + 7);
            }
            for (int l = 0; l < lanes; ++l)
                feed(l);
            ref.evalAll();
            jbs.evalAll();
            for (int l = 0; l < lanes; ++l)
                expect_outputs(l, "full-width");
            ref.step();
            jbs.step();
        }

        // Single-lane catch-up (the other lanes are dead or drained).
        for (int cycle = 0; cycle < 20; ++cycle) {
            feed(reset_lane);
            ref.evalLane(reset_lane);
            jbs.evalLane(reset_lane);
            expect_outputs(reset_lane, "single-lane");
            ref.stepLane(reset_lane);
            jbs.stepLane(reset_lane);
        }

        for (int l = 0; l < lanes; ++l) {
            for (size_t r = 0; r < tape->regs.size(); ++r)
                ASSERT_EQ(jbs.regValue(l, int(r)),
                          ref.regValue(l, int(r)))
                    << "seed " << seed << " lanes " << lanes << " lane "
                    << l << " reg " << r;
            for (size_t m = 0; m < tape->brams.size(); ++m)
                for (uint32_t a = 0; a < tape->brams[m].elements; ++a)
                    ASSERT_EQ(jbs.bramWord(l, int(m), int(a)),
                              ref.bramWord(l, int(m), int(a)))
                        << "seed " << seed << " lanes " << lanes
                        << " lane " << l << " bram " << m << " addr "
                        << a;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramJitBitIdentity,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
} // namespace fleet
