#include <gtest/gtest.h>

#include "apps/registry.h"
#include "lang/analyze.h"
#include "lang/builder.h"
#include "test_programs.h"

namespace fleet {
namespace lang {
namespace {

TEST(Analyze, IdentityIsFullySafe)
{
    auto analysis = analyzeProgram(testprogs::identity());
    EXPECT_TRUE(analysis.allSafe());
    EXPECT_EQ(analysis.report(testprogs::identity()),
              "all restrictions statically guaranteed");
}

TEST(Analyze, HistogramIsFullySafe)
{
    // Loop-body actions and post-loop actions are separated by
    // while_done; the two frequencies addresses (loop index vs input)
    // are on opposite sides of that divide.
    Program p = testprogs::blockFrequencies();
    auto analysis = analyzeProgram(p);
    EXPECT_TRUE(analysis.allSafe()) << analysis.report(p);
}

TEST(Analyze, IfArmsAreExclusive)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    b.if_(b.input() == 0, [&] { b.emit(r); })
        .elseIf(b.input() == 1, [&] { b.emit(r + 1); })
        .else_([&] { b.emit(r + 2); });
    auto p = b.finish();
    EXPECT_TRUE(analyzeProgram(p).emitsExclusive);
}

TEST(Analyze, SiblingIfsNotProvable)
{
    // Dynamically exclusive (conditions are complementary) but not
    // structurally: two separate if statements.
    ProgramBuilder b("t", 8, 8);
    b.if_(b.input() == 0, [&] { b.emit(b.input()); });
    b.if_(b.input() != 0, [&] { b.emit(b.input()); });
    auto p = b.finish();
    auto analysis = analyzeProgram(p);
    EXPECT_FALSE(analysis.emitsExclusive);
    EXPECT_NE(analysis.report(p).find("emits"), std::string::npos);
}

TEST(Analyze, NestedArmsOfSameIfExclusive)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    b.if_(b.input() < 100, [&] {
        b.if_(r == 0, [&] { b.assign(r, 1); }).else_([&] {
            b.assign(r, 2);
        });
    }).else_([&] {
        b.assign(r, 3);
    });
    auto p = b.finish();
    EXPECT_TRUE(analyzeProgram(p).regAssignsExclusive[0]);
}

TEST(Analyze, SameBlockDoubleAssignNotProvable)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    b.if_(b.input() == 0, [&] { b.assign(r, 1); });
    b.assign(r, 2);
    auto p = b.finish();
    EXPECT_FALSE(analyzeProgram(p).regAssignsExclusive[0]);
}

TEST(Analyze, WhileVsPostLoopExclusive)
{
    ProgramBuilder b("t", 8, 8);
    Value count = b.reg("count", 4, 0);
    Bram m = b.bram("m", 16, 8);
    b.while_(count != 0, [&] {
        b.assign(m[count], Value::lit(0, 8));
        b.assign(count, count - 1);
    });
    b.assign(m[b.input().slice(3, 0)], b.input());
    b.assign(count, b.input().slice(3, 0));
    auto p = b.finish();
    auto analysis = analyzeProgram(p);
    EXPECT_TRUE(analysis.bramWritesExclusive[0]) << analysis.report(p);
    EXPECT_TRUE(analysis.regAssignsExclusive[0]);
}

TEST(Analyze, TwoWhilesNotExclusive)
{
    // Two while loops can be active in the same virtual cycle.
    ProgramBuilder b("t", 8, 8);
    Value a = b.reg("a", 4, 0);
    Value c = b.reg("c", 4, 0);
    Bram m = b.bram("m", 16, 8);
    b.while_(a != 0, [&] {
        b.assign(a, a - 1);
        b.assign(m[a], Value::lit(1, 8));
    });
    b.while_(c != 0, [&] {
        b.assign(c, c - 1);
        b.assign(m[c], Value::lit(2, 8));
    });
    auto p = b.finish();
    EXPECT_FALSE(analyzeProgram(p).bramWritesExclusive[0]);
}

TEST(Analyze, DistinctReadAddressesInSameBlockNotProvable)
{
    ProgramBuilder b("t", 8, 8);
    Bram m = b.bram("m", 16, 8);
    Value x = b.reg("x", 8);
    Value y = b.reg("y", 8);
    b.if_(b.input() == 0, [&] { b.assign(x, m[Value::lit(0, 4)]); });
    b.if_(b.input() == 1, [&] { b.assign(y, m[Value::lit(1, 4)]); });
    auto p = b.finish();
    EXPECT_FALSE(analyzeProgram(p).bramReadsExclusive[0]);
}

TEST(Analyze, SameAddressReadsAlwaysSafe)
{
    ProgramBuilder b("t", 8, 8);
    Bram m = b.bram("m", 256, 8);
    b.assign(m[b.input()], m[b.input()] + 1);
    b.emit(m[b.input()]);
    auto p = b.finish();
    EXPECT_TRUE(analyzeProgram(p).bramReadsExclusive[0]);
}

TEST(Analyze, FourOfSixApplicationsAreStaticallySafe)
{
    // Four of the six evaluation units are "well-structured" in the
    // paper's sense: every restriction is structurally provable. The
    // JSON extractor and the Bloom filter each use two while loops made
    // mutually exclusive only through a register condition (pendingLoad
    // == 0 / !emitActive), which is beyond structural analysis —
    // exactly the cases the paper leaves to the software simulator's
    // dynamic checks (or to inserted runtime checks).
    for (auto &app : apps::allApplications()) {
        lang::Program p = app->program();
        auto analysis = analyzeProgram(p);
        bool condition_exclusive_only = app->name() == "JsonParsing" ||
                                        app->name() == "BloomFilter";
        if (condition_exclusive_only) {
            EXPECT_FALSE(analysis.allSafe()) << app->name();
        } else {
            EXPECT_TRUE(analysis.allSafe())
                << app->name() << ":\n" << analysis.report(p);
        }
    }
}

} // namespace
} // namespace lang
} // namespace fleet
