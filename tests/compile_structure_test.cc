#include <gtest/gtest.h>

#include "compile/compiler.h"
#include "rtl/sim.h"
#include "test_programs.h"

namespace fleet {
namespace compile {
namespace {

/**
 * Structural reproduction of the paper's Figure 4: the compiled
 * histogram unit must contain the generated-RTL elements the figure
 * shows — the i/v/f handshake registers, the per-BRAM forwarding
 * register pair, and the held read address.
 */
TEST(CompiledStructure, HistogramHasFigure4Elements)
{
    auto unit = compileProgram(testprogs::blockFrequencies());
    const auto &circuit = unit.circuit;

    auto has_reg = [&](const std::string &name) {
        for (const auto &reg : circuit.regs())
            if (reg.name == name)
                return true;
        return false;
    };
    // Handshake state (Figure 4 lines 4-6).
    EXPECT_TRUE(has_reg("i"));
    EXPECT_TRUE(has_reg("v"));
    EXPECT_TRUE(has_reg("f"));
    // User registers.
    EXPECT_TRUE(has_reg("u_itemCounter"));
    EXPECT_TRUE(has_reg("u_frequenciesIdx"));
    // Forwarding registers (lines 10-11) and the stall-hold address.
    EXPECT_TRUE(has_reg("frequencies_lastWrAddr"));
    EXPECT_TRUE(has_reg("frequencies_lastWrData"));
    EXPECT_TRUE(has_reg("frequencies_rdAddrHold"));

    ASSERT_EQ(circuit.brams().size(), 1u);
    EXPECT_EQ(circuit.brams()[0].elements, 256);

    // The IO interface of Section 4, exactly.
    ASSERT_EQ(circuit.inputs().size(), 4u);
    EXPECT_EQ(circuit.inputs()[0].name, "input_token");
    EXPECT_EQ(circuit.inputs()[1].name, "input_valid");
    EXPECT_EQ(circuit.inputs()[2].name, "input_finished");
    EXPECT_EQ(circuit.inputs()[3].name, "output_ready");
    ASSERT_EQ(circuit.outputs().size(), 4u);
}

TEST(CompiledStructure, ForwardingRegisterCatchesAdjacentRmw)
{
    // Drive the compiled read-modify-write unit with a run of identical
    // tokens; without the forwarding register each increment would read
    // the stale BRAM value. Verify the memory ends up with the exact
    // count — i.e. forwarding really happened in the RTL.
    lang::ProgramBuilder b("rmw", 8, 8);
    lang::Bram m = b.bram("m", 16, 8);
    b.assign(m[b.input().slice(3, 0)], m[b.input().slice(3, 0)] + 1);
    auto unit = compileProgram(b.finish());

    rtl::Simulator sim(unit.circuit);
    const int kTokens = 9;
    int sent = 0;
    for (int cycle = 0; cycle < kTokens + 20; ++cycle) {
        bool have = sent < kTokens;
        sim.setInput(unit.inInputToken, 5);
        sim.setInput(unit.inInputValid, have ? 1 : 0);
        sim.setInput(unit.inInputFinished, have ? 0 : 1);
        sim.setInput(unit.inOutputReady, 1);
        sim.evalComb();
        if (sim.value(unit.outOutputFinished) != 0)
            break;
        if (sim.value(unit.outInputReady) != 0 && have)
            ++sent;
        sim.step();
    }
    EXPECT_EQ(sim.bramWord(0, 5), uint64_t(kTokens));
}

TEST(CompiledStructure, CseSharesRepeatedSubexpressions)
{
    // The same expression built twice must not enlarge the circuit.
    lang::ProgramBuilder b1("once", 8, 8);
    lang::Value r1 = b1.reg("r", 8);
    b1.assign(r1, ((r1 * r1).resize(8) ^ b1.input()));
    auto unit1 = compileProgram(b1.finish());

    lang::ProgramBuilder b2("twice", 8, 8);
    lang::Value r2 = b2.reg("r", 8);
    lang::Value s2 = b2.reg("s", 8);
    b2.assign(r2, ((r2 * r2).resize(8) ^ b2.input()));
    b2.assign(s2, ((r2 * r2).resize(8) ^ b2.input()));
    auto unit2 = compileProgram(b2.finish());

    // One extra register and its plumbing, but the shared datapath is
    // emitted once: far less than double.
    EXPECT_LT(unit2.circuit.nodes().size(),
              unit1.circuit.nodes().size() + 12);
}

} // namespace
} // namespace compile
} // namespace fleet
