#include <gtest/gtest.h>

#include "lang/builder.h"
#include "lang/check.h"
#include "util/logging.h"

namespace fleet {
namespace lang {
namespace {

TEST(Check, DependentReadInAddressRejected)
{
    ProgramBuilder b("t", 8, 8);
    Bram a = b.bram("a", 16, 4);
    Bram c = b.bram("c", 16, 8);
    Value s = b.reg("s", 8);
    // a[c[0]] is the paper's canonical dependent-read example.
    b.assign(s, a[c[Value::lit(0, 4)]].resize(8));
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Check, DependentReadViaConditionRejected)
{
    ProgramBuilder b("t", 8, 8);
    Bram a = b.bram("a", 16, 8);
    Bram c = b.bram("c", 16, 1);
    Value x = b.reg("x", 8);
    // if (c[0]) x = a[0] else x = a[1] -- the paper's second example.
    b.if_(c[Value::lit(0, 4)], [&] {
        b.assign(x, a[Value::lit(0, 4)]);
    }).else_([&] {
        b.assign(x, a[Value::lit(1, 4)]);
    });
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Check, DependentReadViaMuxRejected)
{
    ProgramBuilder b("t", 8, 8);
    Bram a = b.bram("a", 16, 8);
    Bram c = b.bram("c", 16, 1);
    Value x = b.reg("x", 8);
    b.assign(x, mux(c[Value::lit(0, 4)], a[Value::lit(0, 4)],
                    a[Value::lit(1, 4)]));
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Check, ReadGatingNonReadActionsAllowed)
{
    // A BRAM read in a condition is fine when the gated statements do not
    // themselves read BRAMs (register assignment, emit of a register).
    ProgramBuilder b("t", 8, 8);
    Bram table = b.bram("table", 256, 8);
    Value state = b.reg("state", 8);
    b.if_(table[state] == b.input(), [&] {
        b.assign(state, state + 1);
        b.emit(state);
    });
    EXPECT_NO_THROW(b.finish());
}

TEST(Check, BramReadInWhileCondAllowedForSingleAddressBram)
{
    // A single-address BRAM's read is issued unconditionally, so its data
    // may even drive the while condition.
    ProgramBuilder b("t", 8, 8);
    Bram m = b.bram("m", 16, 8);
    Value i = b.reg("i", 4, 0);
    b.while_(m[i] != 0, [&] { b.assign(i, i + 1); });
    EXPECT_NO_THROW(b.finish());
}

TEST(Check, BramReadInWhileCondRejectedForMultiAddressBram)
{
    ProgramBuilder b("t", 8, 8);
    Bram m = b.bram("m", 16, 8);
    Value i = b.reg("i", 4, 0);
    Value x = b.reg("x", 8, 0);
    b.while_(m[i] != 0, [&] { b.assign(i, i + 1); });
    // A second distinct read address makes the while condition illegal.
    b.assign(x, m[Value::lit(3, 4)]);
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Check, WideAssignmentRejected)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    EXPECT_THROW(
        {
            b.assign(r, r * r); // 16-bit value into 8-bit register
            b.finish();
        },
        FatalError);
}

TEST(Check, NarrowAssignmentZeroExtends)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    b.assign(r, Value::lit(1, 1));
    EXPECT_NO_THROW(b.finish());
}

TEST(Check, EmitWidthMismatchRejected)
{
    ProgramBuilder b("t", 8, 16);
    b.emit(b.input()); // 8-bit emit into 16-bit output
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Check, EmitResizedAccepted)
{
    ProgramBuilder b("t", 8, 16);
    b.emit(b.input().resize(16));
    EXPECT_NO_THROW(b.finish());
}

TEST(Check, ReadInsideWhileBodyAllowed)
{
    ProgramBuilder b("t", 8, 8);
    Bram m = b.bram("m", 256, 8);
    Value i = b.reg("i", 9, 0);
    b.while_(i < 256, [&] {
        b.emit(m[i.slice(7, 0)]);
        b.assign(i, i + 1);
    });
    EXPECT_NO_THROW(b.finish());
}

TEST(Check, SameAddressReadAndWriteAllowed)
{
    // The histogram pattern: read and write frequencies[input] in one
    // virtual cycle.
    ProgramBuilder b("t", 8, 8);
    Bram m = b.bram("m", 256, 8);
    b.assign(m[b.input()], m[b.input()] + 1);
    EXPECT_NO_THROW(b.finish());
}

TEST(Check, WriteAddressMayDependOnReadData)
{
    // Write addresses are stage-2 signals: a write address computed from
    // BRAM read data is legal (only read addresses are restricted).
    ProgramBuilder b("t", 8, 8);
    Bram idx = b.bram("idx", 16, 4);
    Bram data = b.bram("data", 16, 8);
    Value r = b.reg("r", 4, 0);
    b.assign(data[idx[r]], b.input());
    b.assign(r, r + 1);
    EXPECT_NO_THROW(b.finish());
}

} // namespace
} // namespace lang
} // namespace fleet
