#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <memory>
#include <string>
#include <vector>

#include "compile/compiler.h"
#include "rtl/batch_sim.h"
#include "rtl/jit.h"
#include "rtl/tape.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "test_programs.h"
#include "util/bitbuf.h"
#include "util/rng.h"

/**
 * Cache and failure-containment tests for the native tape compiler
 * (rtl/jit.h, ISSUE 9). Bit-identity against the interpreter is
 * covered exhaustively by the random-program property suite; this file
 * pins the operational contract: artifacts are reused across processes
 * via the on-disk cache, a corrupted cache entry triggers a fresh
 * compile instead of loading garbage, and every failure path
 * (FLEET_JIT_DISABLE, missing toolchain, compile error) degrades to
 * the interpreter via a Status — never an abort.
 */

namespace fleet {
namespace {

/** Scoped environment-variable override, restored on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = ::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool had_ = false;
};

std::shared_ptr<const rtl::TapeProgram>
sumTape()
{
    auto unit = compile::compileProgram(testprogs::streamSum());
    return std::make_shared<const rtl::TapeProgram>(
        rtl::TapeProgram::compile(unit.circuit));
}

std::string
freshCacheDir(const std::string &leaf)
{
    // Wiped so reruns start cold; JitProgram::compile recreates it.
    std::string dir = ::testing::TempDir() + "fleet_jit_test_" + leaf;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

/** Drive a few hundred cycles on a jit-backed and an interpreted batch
 * and require identical outputs — proves a (re)compiled artifact is
 * actually functional, not merely loadable. */
void
expectFunctional(std::shared_ptr<const rtl::TapeProgram> tape,
                 std::shared_ptr<const rtl::JitProgram> jit)
{
    auto unit = compile::compileProgram(testprogs::streamSum());
    const int lanes = jit->lanes();
    rtl::BatchSimulator ref(tape, lanes);
    rtl::BatchSimulator jbs(tape, lanes);
    jbs.attachJit(jit);
    Rng rng(7);
    for (int cycle = 0; cycle < 200; ++cycle) {
        for (int l = 0; l < lanes; ++l) {
            uint64_t tok = rng.next() & 0xffu;
            for (rtl::BatchSimulator *s : {&ref, &jbs}) {
                s->setInput(l, unit.inInputToken, tok);
                s->setInput(l, unit.inInputValid, 1);
                s->setInput(l, unit.inInputFinished, 0);
                s->setInput(l, unit.inOutputReady, 1);
            }
        }
        ref.evalAll();
        jbs.evalAll();
        for (int l = 0; l < lanes; ++l)
            for (rtl::NodeId out :
                 {unit.outInputReady, unit.outOutputToken,
                  unit.outOutputValid, unit.outOutputFinished})
                ASSERT_EQ(jbs.value(l, out), ref.value(l, out))
                    << "cycle " << cycle << " lane " << l;
        ref.step();
        jbs.step();
    }
}

TEST(RtlJitCache, SameTapeSharesOneInProcessInstance)
{
    auto tape = sumTape();
    rtl::JitOptions opts;
    opts.lanes = 4;
    opts.cacheDir = freshCacheDir("share");
    Status status;
    auto first = rtl::JitProgram::compile(*tape, opts, &status);
    if (!first)
        GTEST_SKIP() << "jit unavailable: " << status.toString();
    auto second = rtl::JitProgram::compile(*tape, opts, &status);
    EXPECT_EQ(first.get(), second.get())
        << "second compile of the same (tape, lanes) must reuse the "
           "in-process instance";
    // A different lane count is a different specialization.
    rtl::JitOptions other = opts;
    other.lanes = 5;
    auto third = rtl::JitProgram::compile(*tape, other, &status);
    ASSERT_NE(third, nullptr) << status.toString();
    EXPECT_NE(first.get(), third.get());
    EXPECT_NE(rtl::JitProgram::cacheKey(*tape, 4),
              rtl::JitProgram::cacheKey(*tape, 5));
}

TEST(RtlJitCache, DiskArtifactReusedWithoutRecompiling)
{
    auto tape = sumTape();
    rtl::JitOptions opts;
    opts.lanes = 4;
    opts.cacheDir = freshCacheDir("disk");
    Status status;
    auto first = rtl::JitProgram::compile(*tape, opts, &status);
    if (!first)
        GTEST_SKIP() << "jit unavailable: " << status.toString();
    EXPECT_FALSE(first->fromDiskCache());
    const std::string artifact = first->artifactPath();
    first.reset();

    rtl::JitProgram::dropInProcessCacheForTests();
    auto second = rtl::JitProgram::compile(*tape, opts, &status);
    ASSERT_NE(second, nullptr) << status.toString();
    EXPECT_TRUE(second->fromDiskCache())
        << "expected the cached artifact at " << artifact
        << " to be reused";
    EXPECT_EQ(second->artifactPath(), artifact);
    expectFunctional(tape, second);
}

TEST(RtlJitCache, CorruptedArtifactTriggersFreshCompile)
{
    auto tape = sumTape();
    rtl::JitOptions opts;
    opts.lanes = 4;
    opts.cacheDir = freshCacheDir("corrupt");
    Status status;
    auto first = rtl::JitProgram::compile(*tape, opts, &status);
    if (!first)
        GTEST_SKIP() << "jit unavailable: " << status.toString();
    const std::string artifact = first->artifactPath();
    first.reset();
    rtl::JitProgram::dropInProcessCacheForTests();

    {
        std::ofstream f(artifact,
                        std::ios::binary | std::ios::trunc);
        f << "not an ELF shared object";
    }

    auto second = rtl::JitProgram::compile(*tape, opts, &status);
    ASSERT_NE(second, nullptr)
        << "corrupted cache entry must fall back to a fresh compile: "
        << status.toString();
    EXPECT_FALSE(second->fromDiskCache());
    expectFunctional(tape, second);
}

TEST(RtlJitFallback, DisableEnvReportsUnavailable)
{
    ScopedEnv disable("FLEET_JIT_DISABLE", "1");
    auto tape = sumTape();
    rtl::JitOptions opts;
    opts.lanes = 4;
    opts.cacheDir = freshCacheDir("disabled");
    EXPECT_FALSE(rtl::JitProgram::availability(opts).ok());
    Status status;
    auto jit = rtl::JitProgram::compile(*tape, opts, &status);
    EXPECT_EQ(jit, nullptr);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code, StatusCode::InvalidArgument)
        << status.toString();
}

TEST(RtlJitFallback, MissingCompilerFailsWithStatusNotAbort)
{
    auto tape = sumTape();
    rtl::JitOptions opts;
    opts.lanes = 4;
    opts.cacheDir = freshCacheDir("nocc");
    opts.compiler = "/nonexistent/fleet-test-has-no-such-compiler";
    opts.forceRecompile = true;
    Status status;
    auto jit = rtl::JitProgram::compile(*tape, opts, &status);
    EXPECT_EQ(jit, nullptr);
    EXPECT_FALSE(status.ok()) << "a bogus compiler must surface as a "
                                 "Status, never an abort";
}

/** The system-level contract for the FLEET_JIT_DISABLE CI leg: a
 * RtlJit binding silently runs on the RtlTape interpreter, with
 * correct outputs and slotBackend() reporting the demotion. */
TEST(RtlJitFallback, SystemDemotesToRtlTapeAndStillCompletes)
{
    ScopedEnv disable("FLEET_JIT_DISABLE", "1");
    lang::Program program = testprogs::streamSum();
    Rng rng(11);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 4; ++p) {
        BitBuffer stream;
        for (int t = 0; t < 64; ++t)
            stream.appendBits(rng.next(), 8);
        streams.push_back(std::move(stream));
    }

    system::SystemConfig config;
    config.numChannels = 2;
    config.backend = system::PuBackend::RtlJit;
    system::FleetSystem system(program, config, streams);
    ASSERT_TRUE(system.run().allOk());
    for (int p = 0; p < int(streams.size()); ++p)
        EXPECT_EQ(system.slotBackend(p), system::PuBackend::RtlTape)
            << "PU " << p << " should have been demoted";

    sim::FunctionalSimulator functional(program);
    for (size_t p = 0; p < streams.size(); ++p) {
        sim::RunResult golden = functional.run(streams[p]);
        ASSERT_TRUE(system.output(p) == golden.output)
            << "PU " << p << " output mismatch under jit fallback";
    }
}

TEST(RtlJitEmit, SourceIsDeterministic)
{
    auto tape = sumTape();
    EXPECT_EQ(rtl::JitProgram::emitSource(*tape, 4),
              rtl::JitProgram::emitSource(*tape, 4));
    EXPECT_NE(rtl::JitProgram::emitSource(*tape, 4),
              rtl::JitProgram::emitSource(*tape, 8))
        << "lane count must be baked into the generated code";
}

} // namespace
} // namespace fleet
