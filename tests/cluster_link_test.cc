/**
 * @file
 * Unit suite for the inter-device link model (ISSUE 10): the timing
 * contract (serialization + latency, store-and-forward), bandwidth
 * saturation against the credit window, in-order delivery under seeded
 * latency spikes, the partition window, and the determinism fence —
 * identical offer schedules must produce bit-identical counters on any
 * host.
 */

#include <gtest/gtest.h>

#include "cluster/link.h"

namespace fleet {
namespace cluster {
namespace {

BitBuffer
payloadBytes(uint64_t bytes, uint8_t fill = 0xa5)
{
    BitBuffer b;
    for (uint64_t i = 0; i < bytes; ++i)
        b.appendBits(fill, 8);
    return b;
}

LinkMessage
message(uint64_t job, uint64_t bytes)
{
    LinkMessage msg;
    msg.jobId = job;
    msg.payload = payloadBytes(bytes);
    return msg;
}

TEST(ClusterLink, TimingContractSerializationPlusLatency)
{
    LinkParams params;
    params.latencyCycles = 100;
    params.bytesPerCycle = 8;
    Link link("test", params);

    // 64 bytes at 8 B/cycle: txEnd = 8, deliver = 8 + 100.
    ASSERT_TRUE(link.offer(message(0, 64), 0));
    EXPECT_FALSE(link.deliverable(107));
    ASSERT_TRUE(link.deliverable(108));
    LinkMessage got = link.pop();
    EXPECT_EQ(got.deliverCycle, 108u);
    EXPECT_EQ(got.offerCycle, 0u);
    EXPECT_EQ(link.counters().busyCycles, 8u);
    EXPECT_EQ(link.counters().bytesAccepted, 64u);
    EXPECT_EQ(link.counters().bitsDelivered, 64u * 8);
}

TEST(ClusterLink, StoreAndForwardSharesTheSerializer)
{
    // Two messages offered the same cycle serialize back to back: the
    // second's txStart is the first's txEnd, so its delivery lags by a
    // full serialization term even though both were offered at once.
    LinkParams params;
    params.latencyCycles = 10;
    params.bytesPerCycle = 4;
    Link link("test", params);
    ASSERT_TRUE(link.offer(message(0, 40), 0)); // txEnd 10, deliver 20.
    ASSERT_TRUE(link.offer(message(1, 40), 0)); // txEnd 20, deliver 30.
    ASSERT_TRUE(link.deliverable(20));
    EXPECT_EQ(link.pop().deliverCycle, 20u);
    EXPECT_FALSE(link.deliverable(29));
    ASSERT_TRUE(link.deliverable(30));
    EXPECT_EQ(link.pop().deliverCycle, 30u);
    EXPECT_EQ(link.counters().busyCycles, 20u);
}

TEST(ClusterLink, UnlimitedBandwidthSkipsSerialization)
{
    LinkParams params;
    params.latencyCycles = 7;
    params.bytesPerCycle = 0; // Same-device edge: no serialization.
    Link link("test", params);
    ASSERT_TRUE(link.offer(message(0, 1 << 20), 5));
    ASSERT_TRUE(link.deliverable(12));
    EXPECT_EQ(link.pop().deliverCycle, 12u);
    EXPECT_EQ(link.counters().busyCycles, 0u);
}

TEST(ClusterLink, WindowSaturationRefusesAndRecovers)
{
    LinkParams params;
    params.latencyCycles = 0;
    params.bytesPerCycle = 1;
    params.windowBytes = 100;
    Link link("test", params);
    ASSERT_TRUE(link.offer(message(0, 60), 0));
    ASSERT_TRUE(link.offer(message(1, 40), 0)); // Window exactly full.
    EXPECT_FALSE(link.offer(message(2, 1), 0)); // Refused: no credit.
    EXPECT_EQ(link.counters().offersRefused, 1u);
    EXPECT_EQ(link.inFlightBytes(), 100u);

    // Delivering frees credits; the refused sender retries and wins.
    ASSERT_TRUE(link.deliverable(60));
    link.pop();
    EXPECT_EQ(link.inFlightBytes(), 40u);
    EXPECT_TRUE(link.offer(message(2, 1), 60));
    EXPECT_EQ(link.counters().messagesAccepted, 3u);
}

TEST(ClusterLink, OversizedMessagePassesAnEmptyLink)
{
    // A single message larger than the whole window must not deadlock:
    // it is accepted once the link is empty (the window bounds
    // concurrency, not message size).
    LinkParams params;
    params.latencyCycles = 0;
    params.bytesPerCycle = 0;
    params.windowBytes = 16;
    Link link("test", params);
    ASSERT_TRUE(link.offer(message(0, 64), 0)); // Empty link: passes.
    // While the oversized message holds the (over-committed) window,
    // everything else waits — including another oversized message.
    EXPECT_FALSE(link.offer(message(1, 8), 0));
    EXPECT_FALSE(link.offer(message(2, 64), 0));
    ASSERT_TRUE(link.deliverable(0));
    link.pop();
    EXPECT_TRUE(link.offer(message(2, 64), 0)); // Empty again: passes.
    EXPECT_EQ(link.counters().offersRefused, 2u);
}

TEST(ClusterLink, InOrderDeliveryUnderSpikes)
{
    // Every message spiked or not, delivery cycles are nondecreasing
    // and pop order equals offer order — the in-order floor holds even
    // when a spike hits message k and not k+1.
    LinkParams params;
    params.latencyCycles = 20;
    params.bytesPerCycle = 8;
    params.windowBytes = 0;
    params.seed = 0xfee7;
    params.spikePermille = 500; // ~half the messages spiked.
    params.spikeCycles = 1000;
    Link link("test", params);
    const int kMessages = 32;
    for (int m = 0; m < kMessages; ++m)
        ASSERT_TRUE(link.offer(message(m, 16), m * 2));
    uint64_t last_deliver = 0;
    for (int m = 0; m < kMessages; ++m) {
        ASSERT_TRUE(link.deliverable(~0ULL));
        LinkMessage got = link.pop();
        EXPECT_EQ(got.jobId, static_cast<uint64_t>(m))
            << "delivery reordered";
        EXPECT_GE(got.deliverCycle, last_deliver);
        last_deliver = got.deliverCycle;
    }
    EXPECT_GT(link.counters().spikes, 0u);
    EXPECT_LT(link.counters().spikes, static_cast<uint64_t>(kMessages));
}

TEST(ClusterLink, SpikeAddsLatency)
{
    LinkParams clean_params;
    clean_params.latencyCycles = 50;
    clean_params.bytesPerCycle = 8;
    LinkParams spiked_params = clean_params;
    spiked_params.spikePermille = 1000; // Every message spiked.
    spiked_params.spikeCycles = 777;
    Link clean("clean", clean_params);
    Link spiked("spiked", spiked_params);
    ASSERT_TRUE(clean.offer(message(0, 8), 0));
    ASSERT_TRUE(spiked.offer(message(0, 8), 0));
    uint64_t clean_cycle = (clean.deliverable(~0ULL), clean.pop().deliverCycle);
    uint64_t spiked_cycle =
        (spiked.deliverable(~0ULL), spiked.pop().deliverCycle);
    EXPECT_EQ(spiked_cycle, clean_cycle + 777);
    EXPECT_EQ(spiked.counters().spikes, 1u);
}

TEST(ClusterLink, PartitionDelaysSerializationStart)
{
    LinkParams params;
    params.latencyCycles = 10;
    params.bytesPerCycle = 8;
    params.partitionBeginCycle = 100;
    params.partitionEndCycle = 400;
    Link link("test", params);
    // Before the partition: normal timing.
    ASSERT_TRUE(link.offer(message(0, 8), 0));
    ASSERT_TRUE(link.deliverable(11));
    link.pop();
    // Inside the partition: serialization cannot start until it ends.
    ASSERT_TRUE(link.offer(message(1, 8), 150));
    EXPECT_FALSE(link.deliverable(410));
    ASSERT_TRUE(link.deliverable(411)); // 400 + 1 + 10.
    EXPECT_EQ(link.pop().deliverCycle, 411u);
}

TEST(ClusterLink, DeterministicAcrossInstances)
{
    // Two links with identical parameters given the identical offer
    // schedule must agree on every counter and every delivery cycle —
    // the link-side half of the cluster determinism fence.
    LinkParams params;
    params.latencyCycles = 33;
    params.bytesPerCycle = 4;
    params.windowBytes = 256;
    params.seed = 42;
    params.spikePermille = 250;
    params.spikeCycles = 100;
    Link a("a", params);
    Link b("b", params);
    uint64_t now = 0;
    for (int m = 0; m < 64; ++m) {
        now += (m * 7) % 5;
        bool accepted_a = a.offer(message(m, 1 + (m % 37)), now);
        bool accepted_b = b.offer(message(m, 1 + (m % 37)), now);
        ASSERT_EQ(accepted_a, accepted_b) << "message " << m;
        while (a.deliverable(now)) {
            ASSERT_TRUE(b.deliverable(now));
            EXPECT_EQ(a.pop().deliverCycle, b.pop().deliverCycle);
        }
        ASSERT_FALSE(b.deliverable(now));
    }
    while (a.deliverable(~0ULL)) {
        ASSERT_TRUE(b.deliverable(~0ULL));
        a.pop();
        b.pop();
    }
    EXPECT_TRUE(a.counters() == b.counters());
}

TEST(ClusterLink, CounterSetExportsTheAccounting)
{
    LinkParams params;
    params.latencyCycles = 1;
    params.bytesPerCycle = 0;
    Link link("link/d0->d1", params);
    ASSERT_TRUE(link.offer(message(0, 10), 0));
    ASSERT_TRUE(link.deliverable(1));
    link.pop();
    trace::CounterSet set = link.counterSet();
    EXPECT_EQ(set.name, "link/d0->d1");
    EXPECT_EQ(set.get("payload_bits_delivered"), 80u);
    EXPECT_EQ(set.get("messages_delivered"), 1u);
    EXPECT_EQ(set.get("bytes_accepted"), 10u);
}

} // namespace
} // namespace cluster
} // namespace fleet
