#include <gtest/gtest.h>

#include "dram/dram.h"
#include "memctl/bitfifo.h"
#include "memctl/input_controller.h"
#include "memctl/output_controller.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fleet {
namespace memctl {
namespace {

// ---------------------------------------------------------------------------
// BitFifo
// ---------------------------------------------------------------------------

TEST(BitFifo, PushPopBasics)
{
    BitFifo fifo(64);
    EXPECT_TRUE(fifo.empty());
    fifo.push(0xab, 8);
    fifo.push(0xcd, 8);
    EXPECT_EQ(fifo.sizeBits(), 16u);
    EXPECT_EQ(fifo.freeBits(), 48u);
    EXPECT_EQ(fifo.peek(8), 0xabu);
    EXPECT_EQ(fifo.pop(8), 0xabu);
    EXPECT_EQ(fifo.pop(8), 0xcdu);
    EXPECT_TRUE(fifo.empty());
}

TEST(BitFifo, OverflowUnderflowPanic)
{
    BitFifo fifo(16);
    fifo.push(0xffff, 16);
    EXPECT_THROW(fifo.push(1, 1), PanicError);
    fifo.pop(16);
    EXPECT_THROW(fifo.pop(1), PanicError);
}

TEST(BitFifo, WrapAroundPreservesOrder)
{
    BitFifo fifo(100);
    Rng rng(3);
    std::vector<std::pair<uint64_t, int>> inflight;
    uint64_t pushed = 0, popped = 0;
    for (int step = 0; step < 10000; ++step) {
        if (rng.nextChance(1, 2)) {
            int width = 1 + static_cast<int>(rng.nextBelow(33));
            if (fifo.freeBits() >= uint64_t(width)) {
                uint64_t value = rng.next() & mask64(width);
                fifo.push(value, width);
                inflight.emplace_back(value, width);
                ++pushed;
            }
        } else if (!inflight.empty()) {
            auto [value, width] = inflight.front();
            if (fifo.sizeBits() >= uint64_t(width)) {
                ASSERT_EQ(fifo.pop(width), value) << "at step " << step;
                inflight.erase(inflight.begin());
                ++popped;
            }
        }
    }
    EXPECT_GT(pushed, 1000u);
    EXPECT_GT(popped, 1000u);
}

TEST(BitFifo, MisalignedWidthsAcrossWrap)
{
    BitFifo fifo(130); // not a multiple of common widths
    for (int round = 0; round < 50; ++round) {
        fifo.push(round & 0x7f, 7);
        fifo.push(round & 0x1ff, 9);
        EXPECT_EQ(fifo.pop(7), uint64_t(round & 0x7f));
        EXPECT_EQ(fifo.pop(9), uint64_t(round & 0x1ff));
    }
}

// ---------------------------------------------------------------------------
// Input controller
// ---------------------------------------------------------------------------

dram::DramParams
fastDram()
{
    dram::DramParams params;
    params.readLatency = 8;
    params.perRequestOverhead = 0.0;
    params.refreshDuration = 0;
    return params;
}

/** Fill channel memory regions with a counting byte pattern. */
void
fillPattern(std::vector<uint8_t> &mem, const StreamRegion &region)
{
    for (uint64_t i = 0; i < ceilDiv(region.streamBits, 8); ++i)
        mem[region.baseAddr + i] = uint8_t((region.baseAddr + i) * 7 + 1);
}

TEST(InputController, DeliversExactStreamBits)
{
    dram::DramChannel ch(fastDram(), 1 << 20);
    ControllerParams params;
    params.burstBits = 1024;
    params.portWidth = 32;
    params.numBurstRegs = 4;

    // Three PUs with different stream sizes, including a non-burst-aligned
    // tail and an empty stream.
    std::vector<StreamRegion> regions = {
        {0, 2048, 2048 * 8},   // exactly 16 bursts... 2048B = 16 bursts
        {2048, 1024, 1000 * 8}, // partial tail burst
        {3072, 1024, 0},        // empty stream
    };
    for (const auto &region : regions)
        fillPattern(ch.memory(), region);

    InputController ctrl(ch, params, regions);
    EXPECT_TRUE(ctrl.streamExhausted(2)); // empty stream from the start

    std::vector<std::vector<uint8_t>> received(3);
    for (int cycle = 0; cycle < 20000 && !ctrl.done(); ++cycle) {
        // PUs consume 8 bits per cycle when available.
        for (int p = 0; p < 3; ++p) {
            if (ctrl.buffer(p).sizeBits() >= 8)
                received[p].push_back(uint8_t(ctrl.buffer(p).pop(8)));
        }
        ctrl.tick();
        ch.tick();
    }
    // Drain leftovers.
    for (int p = 0; p < 3; ++p)
        while (ctrl.buffer(p).sizeBits() >= 8)
            received[p].push_back(uint8_t(ctrl.buffer(p).pop(8)));

    EXPECT_TRUE(ctrl.done());
    ASSERT_EQ(received[0].size(), 2048u);
    ASSERT_EQ(received[1].size(), 1000u);
    ASSERT_EQ(received[2].size(), 0u);
    for (int p = 0; p < 2; ++p) {
        for (size_t i = 0; i < received[p].size(); ++i) {
            ASSERT_EQ(received[p][i],
                      uint8_t((regions[p].baseAddr + i) * 7 + 1))
                << "pu " << p << " byte " << i;
        }
        EXPECT_TRUE(ctrl.streamExhausted(p));
    }
}

TEST(InputController, RoundRobinServesAllPusFairly)
{
    dram::DramChannel ch(fastDram(), 1 << 20);
    ControllerParams params;
    params.numBurstRegs = 16;
    const int pus = 8;
    std::vector<StreamRegion> regions;
    for (int p = 0; p < pus; ++p)
        regions.push_back({uint64_t(p) * 4096, 4096, 4096 * 8});
    InputController ctrl(ch, params, regions);

    std::vector<uint64_t> consumed(pus, 0);
    for (int cycle = 0; cycle < 3000; ++cycle) {
        for (int p = 0; p < pus; ++p) {
            if (ctrl.buffer(p).sizeBits() >= 32) {
                ctrl.buffer(p).pop(32);
                consumed[p] += 32;
            }
        }
        ctrl.tick();
        ch.tick();
    }
    uint64_t min_c = ~0ull, max_c = 0;
    for (int p = 0; p < pus; ++p) {
        min_c = std::min(min_c, consumed[p]);
        max_c = std::max(max_c, consumed[p]);
    }
    EXPECT_GT(min_c, 0u);
    // Fair service: no PU more than one burst ahead of another.
    EXPECT_LE(max_c - min_c, 2048u);
}

TEST(InputController, SyncAddressingMuchSlower)
{
    auto measure = [](bool async_supply) {
        dram::DramParams dparams;
        dparams.readLatency = 62;
        dparams.perRequestOverhead = 0.22;
        dparams.refreshDuration = 55;
        dram::DramChannel ch(dparams, 4 << 20);
        ControllerParams params;
        params.asyncAddressSupply = async_supply;
        params.numBurstRegs = async_supply ? 16 : 1;
        const int pus = 16;
        std::vector<StreamRegion> regions;
        for (int p = 0; p < pus; ++p)
            regions.push_back({uint64_t(p) * 65536, 65536, 65536 * 8});
        InputController ctrl(ch, params, regions);
        const int cycles = 20000;
        for (int cycle = 0; cycle < cycles; ++cycle) {
            for (int p = 0; p < pus; ++p) {
                // Consume eagerly (drop-all probe).
                auto &buf = ctrl.buffer(p);
                if (buf.sizeBits() >= 32)
                    buf.pop(32);
            }
            ctrl.tick();
            ch.tick();
        }
        return double(ctrl.bitsDelivered()) / cycles; // bits per cycle
    };
    double sync_bpc = measure(false);
    double async_bpc = measure(true);
    // Figure 9's first gap: asynchronous supply + burst registers is an
    // order of magnitude faster than fully synchronous operation.
    EXPECT_GT(async_bpc / sync_bpc, 8.0);
}

// ---------------------------------------------------------------------------
// Output controller
// ---------------------------------------------------------------------------

TEST(OutputController, CollectsAndFlushesAllOutput)
{
    dram::DramChannel ch(fastDram(), 1 << 20);
    ControllerParams params;
    params.blockingAddressing = false;
    const int pus = 3;
    std::vector<StreamRegion> regions = {
        {0, 8192, 0}, {8192, 8192, 0}, {16384, 8192, 0}};
    OutputController ctrl(ch, params, regions);

    // PU p emits (1000 + 700*p) bytes of a counting pattern, at
    // different rates.
    std::vector<uint64_t> total = {1000, 1700, 2400};
    std::vector<uint64_t> emitted(pus, 0);
    Rng rng(9);
    bool all_done = false;
    for (int cycle = 0; cycle < 100000 && !all_done; ++cycle) {
        for (int p = 0; p < pus; ++p) {
            if (emitted[p] < total[p] && ctrl.buffer(p).freeBits() >= 8 &&
                rng.nextChance(1, p + 1)) {
                ctrl.buffer(p).push(uint8_t(emitted[p] * 3 + p), 8);
                if (++emitted[p] == total[p])
                    ctrl.setPuFinished(p);
            }
        }
        ctrl.tick();
        ch.tick();
        all_done = ctrl.done();
        for (int p = 0; p < pus; ++p)
            all_done = all_done && emitted[p] == total[p];
    }
    ASSERT_TRUE(all_done);
    for (int p = 0; p < pus; ++p) {
        EXPECT_EQ(ctrl.payloadBits(p), total[p] * 8);
        for (uint64_t i = 0; i < total[p]; ++i) {
            ASSERT_EQ(ch.memory()[regions[p].baseAddr + i],
                      uint8_t(i * 3 + p))
                << "pu " << p << " byte " << i;
        }
    }
}

TEST(OutputController, NonDividingTokenWidthNeedsNoDoubleBuffer)
{
    // Regression for the bufferBursts = 1 wedge: with 12-bit tokens and
    // 1024-bit bursts (1024 % 12 = 4), an exactly-one-burst buffer fills
    // to 1020 bits — too full to accept another token, not full enough
    // for the addressing unit to issue — and the system deadlocks. The
    // tokenBits skid (one token minus one bit of extra capacity) is the
    // fix; doubling the buffer is not required.
    const int kTokenBits = 12;
    const uint64_t kTokens = 400;

    auto run = [&](int token_bits_param) {
        dram::DramChannel ch(fastDram(), 1 << 20);
        ControllerParams params;
        params.blockingAddressing = false;
        params.bufferBursts = 1;
        params.tokenBits = token_bits_param;
        std::vector<StreamRegion> regions = {{0, 8192, 0}};
        OutputController ctrl(ch, params, regions);

        uint64_t emitted = 0;
        bool done = false;
        for (int cycle = 0; cycle < 30000 && !done; ++cycle) {
            if (emitted < kTokens &&
                ctrl.buffer(0).freeBits() >= kTokenBits) {
                ctrl.buffer(0).push((emitted * 5 + 3) & mask64(kTokenBits),
                                    kTokenBits);
                if (++emitted == kTokens)
                    ctrl.setPuFinished(0);
            }
            ctrl.tick();
            ch.tick();
            done = ctrl.done() && emitted == kTokens;
        }
        return std::make_pair(done, ch.memory()); // memory copied out
    };

    // Without the skid the controller wedges (this is the bug)...
    auto [wedged_done, wedged_mem] = run(0);
    EXPECT_FALSE(wedged_done);

    // ... and with it every token flushes to memory, bit-exact.
    auto [done, mem] = run(kTokenBits);
    ASSERT_TRUE(done);
    for (uint64_t t = 0; t < kTokens; ++t) {
        uint64_t expect = (t * 5 + 3) & mask64(kTokenBits);
        uint64_t got = 0;
        for (int bit = 0; bit < kTokenBits; ++bit) {
            uint64_t i = t * kTokenBits + bit;
            got |= uint64_t((mem[i / 8] >> (i % 8)) & 1) << bit;
        }
        ASSERT_EQ(got, expect) << "token " << t;
    }
}

TEST(InputController, NonDividingTokenWidthNeedsNoDoubleBuffer)
{
    // Input-side analogue of the wedge: after a burst drains, the buffer
    // holds a sub-token residue (1024 = 85 * 12 + 4 bits) the PU cannot
    // pop, and without the skid creditAvailable() never clears
    // residue + burstBits <= capacity, so the stream stalls after the
    // first burst.
    const int kTokenBits = 12;
    const uint64_t kTokens = 3000; // 36000 bits ≈ 35.2 bursts

    auto run = [&](int token_bits_param) {
        dram::DramChannel ch(fastDram(), 1 << 20);
        ControllerParams params;
        params.bufferBursts = 1;
        params.tokenBits = token_bits_param;
        std::vector<StreamRegion> regions = {
            {0, 8192, kTokens * kTokenBits}};
        fillPattern(ch.memory(), regions[0]);
        InputController ctrl(ch, params, regions);

        std::vector<uint64_t> tokens;
        for (int cycle = 0; cycle < 60000; ++cycle) {
            if (ctrl.buffer(0).sizeBits() >= kTokenBits)
                tokens.push_back(ctrl.buffer(0).pop(kTokenBits));
            ctrl.tick();
            ch.tick();
            if (ctrl.done() && tokens.size() == kTokens)
                break;
        }
        return std::make_pair(std::move(tokens), ch.memory());
    };

    auto [wedged_tokens, wedged_mem] = run(0);
    EXPECT_LT(wedged_tokens.size(), kTokens); // the bug: stalls early

    auto [tokens, mem] = run(kTokenBits);
    ASSERT_EQ(tokens.size(), kTokens);
    for (uint64_t t = 0; t < kTokens; ++t) {
        uint64_t expect = 0;
        for (int bit = 0; bit < kTokenBits; ++bit) {
            uint64_t i = t * kTokenBits + bit;
            expect |= uint64_t((mem[i / 8] >> (i % 8)) & 1) << bit;
        }
        ASSERT_EQ(tokens[t], expect) << "token " << t;
    }
}

TEST(OutputController, DividingTokenWidthGetsNoSkid)
{
    // Setting tokenBits must not change behaviour when the token width
    // divides the burst: the buffer capacity stays exactly one burst, so
    // dividing-width runs remain bit-identical to the field left at 0.
    dram::DramChannel ch(fastDram(), 1 << 16);
    ControllerParams params;
    params.tokenBits = 8; // 1024 % 8 == 0
    std::vector<StreamRegion> regions = {{0, 4096, 0}};
    OutputController ctrl(ch, params, regions);
    EXPECT_EQ(ctrl.buffer(0).capacityBits(), uint64_t(params.burstBits));
}

TEST(OutputController, ZeroOutputPuCompletesImmediately)
{
    dram::DramChannel ch(fastDram(), 1 << 16);
    ControllerParams params;
    params.blockingAddressing = false;
    std::vector<StreamRegion> regions = {{0, 4096, 0}};
    OutputController ctrl(ch, params, regions);
    ctrl.setPuFinished(0);
    for (int cycle = 0; cycle < 10; ++cycle) {
        ctrl.tick();
        ch.tick();
    }
    EXPECT_TRUE(ctrl.done());
    EXPECT_EQ(ctrl.payloadBits(0), 0u);
}

TEST(OutputController, NonblockingSkipsSlowProducer)
{
    // One PU produces nothing for a long time; with non-blocking
    // addressing the other PU's output still flows.
    dram::DramChannel ch(fastDram(), 1 << 20);
    ControllerParams params;
    params.blockingAddressing = false;
    std::vector<StreamRegion> regions = {{0, 65536, 0}, {65536, 65536, 0}};
    OutputController ctrl(ch, params, regions);

    uint64_t flushed_mid = 0;
    for (int cycle = 0; cycle < 4000; ++cycle) {
        // PU 0 silent; PU 1 emits 32 bits/cycle.
        if (ctrl.buffer(1).freeBits() >= 32)
            ctrl.buffer(1).push(cycle, 32);
        ctrl.tick();
        ch.tick();
        if (cycle == 3999)
            flushed_mid = ch.beatsWritten();
    }
    EXPECT_GT(flushed_mid, 50u);

    // Same setup but blocking: PU 0 blocks the address unit; nothing
    // flushes.
    dram::DramChannel ch2(fastDram(), 1 << 20);
    ControllerParams blocking = params;
    blocking.blockingAddressing = true;
    OutputController ctrl2(ch2, blocking, regions);
    for (int cycle = 0; cycle < 4000; ++cycle) {
        if (ctrl2.buffer(1).freeBits() >= 32)
            ctrl2.buffer(1).push(cycle, 32);
        ctrl2.tick();
        ch2.tick();
    }
    EXPECT_EQ(ch2.beatsWritten(), 0u);
}

TEST(OutputController, OverflowingRegionContained)
{
    dram::DramChannel ch(fastDram(), 1 << 16);
    ControllerParams params;
    params.blockingAddressing = false;
    // Region fits exactly one burst.
    std::vector<StreamRegion> regions = {{0, 128, 0}};
    OutputController ctrl(ch, params, regions);
    for (int cycle = 0; cycle < 2000; ++cycle) {
        if (ctrl.buffer(0).freeBits() >= 32)
            ctrl.buffer(0).push(0xdeadbeef, 32);
        ctrl.tick();
        ch.tick();
    }
    // The second burst would exceed the 128-byte region: the PU is
    // contained (not fatal), the event is surfaced once, and the first
    // burst's data still flushes to memory.
    EXPECT_TRUE(ctrl.puFailed(0));
    auto event = ctrl.takeOverflowEvent();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->pu, 0);
    EXPECT_EQ(event->regionBytes, 128u);
    EXPECT_FALSE(ctrl.takeOverflowEvent().has_value());
    EXPECT_EQ(ctrl.payloadBits(0), 1024u); // Exactly one committed burst.
    EXPECT_GT(ch.beatsWritten(), 0u);
    EXPECT_TRUE(ctrl.done());
}

// ---------------------------------------------------------------------------
// Controller re-arm (ISSUE 5): per-PU stream state must fully reset
// between consecutive streams on the same lane.
// ---------------------------------------------------------------------------

namespace {

/** Pop whole tokens until the controller drains `want` of them (or the
 * cycle budget runs out); returns the tokens in arrival order. */
std::vector<uint64_t>
drainTokens(InputController &ctrl, dram::DramChannel &ch, int token_bits,
            uint64_t want)
{
    std::vector<uint64_t> tokens;
    for (int cycle = 0; cycle < 120000; ++cycle) {
        if (ctrl.buffer(0).sizeBits() >= uint64_t(token_bits))
            tokens.push_back(ctrl.buffer(0).pop(token_bits));
        ctrl.tick();
        ch.tick();
        if (ctrl.done() && tokens.size() == want && ctrl.puIdle(0))
            break;
    }
    return tokens;
}

/** Token `t` of the bit-packed stream at `base` in `mem`. */
uint64_t
memoryToken(const std::vector<uint8_t> &mem, uint64_t base, int token_bits,
            uint64_t t)
{
    uint64_t value = 0;
    for (int bit = 0; bit < token_bits; ++bit) {
        uint64_t i = t * uint64_t(token_bits) + bit;
        value |= uint64_t((mem[base + i / 8] >> (i % 8)) & 1) << bit;
    }
    return value;
}

} // namespace

TEST(InputController, RearmDeliversConsecutiveStreamsBitExact)
{
    // The re-arm seam the job runtime rides on: run stream A to
    // completion, re-arm the lane, run a *longer* stream B from the
    // same region base — with the non-power-of-two token width from
    // PR 4 (12 bits, 1024 % 12 != 0), so the skid/residue path resets
    // too. Both streams must arrive bit-exact.
    const int kTokenBits = 12;
    const uint64_t kTokensA = 2000, kTokensB = 3333;
    dram::DramChannel ch(fastDram(), 1 << 20);
    ControllerParams params;
    params.tokenBits = kTokenBits;
    params.bufferBursts = 1;
    std::vector<StreamRegion> regions = {{0, 8192, kTokensA * kTokenBits}};
    fillPattern(ch.memory(), regions[0]);
    InputController ctrl(ch, params, regions);

    auto tokens_a = drainTokens(ctrl, ch, kTokenBits, kTokensA);
    ASSERT_EQ(tokens_a.size(), kTokensA);
    ASSERT_TRUE(ctrl.done());
    ASSERT_TRUE(ctrl.streamExhausted(0));
    ASSERT_TRUE(ctrl.puIdle(0));
    for (uint64_t t = 0; t < kTokensA; ++t)
        ASSERT_EQ(tokens_a[t], memoryToken(ch.memory(), 0, kTokenBits, t))
            << "stream A token " << t;

    // Overwrite the region with stream B's payload, then re-arm: the
    // input_finished protocol must start over.
    for (uint64_t i = 0; i < ceilDiv(kTokensB * kTokenBits, 8); ++i)
        ch.memory()[i] = uint8_t(i * 13 + 5);
    ctrl.rearmPu(0, kTokensB * kTokenBits);
    EXPECT_FALSE(ctrl.done());
    EXPECT_FALSE(ctrl.streamExhausted(0));
    EXPECT_TRUE(ctrl.buffer(0).empty());

    auto tokens_b = drainTokens(ctrl, ch, kTokenBits, kTokensB);
    ASSERT_EQ(tokens_b.size(), kTokensB);
    EXPECT_TRUE(ctrl.streamExhausted(0));
    for (uint64_t t = 0; t < kTokensB; ++t)
        ASSERT_EQ(tokens_b[t], memoryToken(ch.memory(), 0, kTokenBits, t))
            << "stream B token " << t;
}

TEST(InputController, RearmAfterKillDiscardsOldStream)
{
    // Containment then reuse: kill the lane mid-stream (undrained
    // bursts discard, the buffer still holds stale bits), wait for
    // idle, re-arm. None of stream A's bits may leak into stream B.
    const int kTokenBits = 12;
    const uint64_t kTokensA = 4000, kTokensB = 500;
    dram::DramChannel ch(fastDram(), 1 << 20);
    ControllerParams params;
    params.tokenBits = kTokenBits;
    std::vector<StreamRegion> regions = {{0, 8192, kTokensA * kTokenBits}};
    fillPattern(ch.memory(), regions[0]);
    InputController ctrl(ch, params, regions);

    // Let the first burst drain but kill while later bursts are still
    // in flight (32 bits/cycle drain → burst 1 is mid-drain at 40).
    for (int cycle = 0; cycle < 40; ++cycle) {
        ctrl.tick();
        ch.tick();
    }
    EXPECT_GT(ctrl.buffer(0).sizeBits(), 0u);
    ASSERT_GT(ctrl.inflightBursts(), 0);
    ctrl.killPu(0);
    EXPECT_THROW(ctrl.rearmPu(0, 8), PanicError); // not yet idle
    for (int cycle = 0; cycle < 5000 && !ctrl.puIdle(0); ++cycle) {
        ctrl.tick();
        ch.tick();
    }
    ASSERT_TRUE(ctrl.puIdle(0));

    for (uint64_t i = 0; i < ceilDiv(kTokensB * kTokenBits, 8); ++i)
        ch.memory()[i] = uint8_t(i * 31 + 7);
    ctrl.rearmPu(0, kTokensB * kTokenBits);
    EXPECT_TRUE(ctrl.buffer(0).empty()); // stale bits discarded

    auto tokens_b = drainTokens(ctrl, ch, kTokenBits, kTokensB);
    ASSERT_EQ(tokens_b.size(), kTokensB);
    for (uint64_t t = 0; t < kTokensB; ++t)
        ASSERT_EQ(tokens_b[t], memoryToken(ch.memory(), 0, kTokenBits, t))
            << "stream B token " << t;
}

TEST(OutputController, RearmFlushesConsecutiveStreamsBitExact)
{
    // Output side: finished / flushIssued were one-way within a job;
    // re-arm must reset them so a second stream (different length,
    // 12-bit tokens → partial final burst + skid) flushes cleanly over
    // the same region.
    const int kTokenBits = 12;
    dram::DramChannel ch(fastDram(), 1 << 20);
    ControllerParams params;
    params.blockingAddressing = false;
    params.bufferBursts = 1;
    params.tokenBits = kTokenBits;
    std::vector<StreamRegion> regions = {{0, 8192, 0}};
    OutputController ctrl(ch, params, regions);

    auto emitStream = [&](uint64_t tokens, uint64_t mult, uint64_t add) {
        uint64_t emitted = 0;
        for (int cycle = 0; cycle < 60000; ++cycle) {
            if (emitted < tokens &&
                ctrl.buffer(0).freeBits() >= uint64_t(kTokenBits)) {
                ctrl.buffer(0).push((emitted * mult + add) &
                                        mask64(kTokenBits),
                                    kTokenBits);
                if (++emitted == tokens)
                    ctrl.setPuFinished(0);
            }
            ctrl.tick();
            ch.tick();
            if (emitted == tokens && ctrl.done() && ctrl.puFlushed(0))
                break;
        }
        return emitted == tokens && ctrl.puFlushed(0);
    };

    const uint64_t kTokensA = 700;
    ASSERT_TRUE(emitStream(kTokensA, 5, 3));
    EXPECT_EQ(ctrl.payloadBits(0), kTokensA * kTokenBits);
    for (uint64_t t = 0; t < kTokensA; ++t)
        ASSERT_EQ(memoryToken(ch.memory(), 0, kTokenBits, t),
                  (t * 5 + 3) & mask64(kTokenBits))
            << "stream A token " << t;

    ctrl.rearmPu(0);
    EXPECT_EQ(ctrl.payloadBits(0), 0u);
    EXPECT_FALSE(ctrl.puFlushed(0)); // protocol restarted

    const uint64_t kTokensB = 1100;
    ASSERT_TRUE(emitStream(kTokensB, 11, 9));
    EXPECT_EQ(ctrl.payloadBits(0), kTokensB * kTokenBits);
    for (uint64_t t = 0; t < kTokensB; ++t)
        ASSERT_EQ(memoryToken(ch.memory(), 0, kTokenBits, t),
                  (t * 11 + 9) & mask64(kTokenBits))
            << "stream B token " << t;
}

TEST(OutputController, RearmAfterOverflowClearsContainment)
{
    // An overflow-contained lane (failed, uncommitted remainder
    // dropped) must re-arm into a fully healthy lane.
    dram::DramChannel ch(fastDram(), 1 << 16);
    ControllerParams params;
    params.blockingAddressing = false;
    std::vector<StreamRegion> regions = {{0, 128, 0}};
    OutputController ctrl(ch, params, regions);
    for (int cycle = 0; cycle < 2000; ++cycle) {
        if (ctrl.buffer(0).freeBits() >= 32)
            ctrl.buffer(0).push(0xdeadbeef, 32);
        ctrl.tick();
        ch.tick();
    }
    ASSERT_TRUE(ctrl.puFailed(0));
    ASSERT_TRUE(ctrl.puFlushed(0));

    ctrl.rearmPu(0);
    EXPECT_FALSE(ctrl.puFailed(0));
    EXPECT_EQ(ctrl.payloadBits(0), 0u);

    // A fitting second stream completes with no residue of the failure.
    uint64_t emitted = 0;
    const uint64_t kWords = 16; // 64 bytes < 128-byte region
    for (int cycle = 0; cycle < 4000; ++cycle) {
        if (emitted < kWords && ctrl.buffer(0).freeBits() >= 32) {
            ctrl.buffer(0).push(emitted * 9 + 1, 32);
            if (++emitted == kWords)
                ctrl.setPuFinished(0);
        }
        ctrl.tick();
        ch.tick();
        if (emitted == kWords && ctrl.done() && ctrl.puFlushed(0))
            break;
    }
    EXPECT_FALSE(ctrl.puFailed(0));
    EXPECT_EQ(ctrl.payloadBits(0), kWords * 32);
    for (uint64_t w = 0; w < kWords; ++w) {
        uint32_t got = 0;
        for (int byte = 0; byte < 4; ++byte)
            got |= uint32_t(ch.memory()[w * 4 + byte]) << (8 * byte);
        ASSERT_EQ(got, uint32_t(w * 9 + 1)) << "word " << w;
    }
}

TEST(OutputController, RearmBeforeFlushPanics)
{
    dram::DramChannel ch(fastDram(), 1 << 16);
    ControllerParams params;
    params.blockingAddressing = false;
    std::vector<StreamRegion> regions = {{0, 4096, 0}};
    OutputController ctrl(ch, params, regions);
    ctrl.buffer(0).push(0xff, 8); // un-flushed output in flight
    EXPECT_THROW(ctrl.rearmPu(0), PanicError);
}

} // namespace
} // namespace memctl
} // namespace fleet
