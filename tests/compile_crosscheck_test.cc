#include <gtest/gtest.h>

#include <memory>

#include "lang/builder.h"
#include "sim/simulator.h"
#include "system/pu_fast.h"
#include "system/pu_rtl.h"
#include "system/pu_rtl_batch.h"
#include "system/pu_testbench.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace {

using lang::Bram;
using lang::Program;
using lang::ProgramBuilder;
using lang::Value;
using lang::VecReg;
using lang::mux;
using system::FastPu;
using system::RtlBatch;
using system::RtlBatchLane;
using system::RtlPu;
using system::RtlTapeEngine;
using system::TapeRtlPu;
using system::TestbenchOptions;
using system::TestbenchResult;
using system::runPu;

BitBuffer
randomStream(int token_width, int tokens, uint64_t seed)
{
    Rng rng(seed);
    BitBuffer buf;
    for (int i = 0; i < tokens; ++i)
        buf.appendBits(rng.next(), token_width);
    return buf;
}

/**
 * The core cross-check of the paper's testing infrastructure: the
 * functional simulator, all three compiled-RTL engines (per-node
 * interpreter, scalar op tape, batched SoA evaluator), and the fast
 * replay model must produce identical outputs, and every cycle model
 * must agree on the exact cycle count, under every stall profile.
 */
void
crossCheck(const Program &program, const BitBuffer &input)
{
    sim::FunctionalSimulator functional(program);
    sim::RunResult golden = functional.run(input);

    RtlPu rtl_pu(program);
    FastPu fast_pu(program, input);
    auto engine = std::make_shared<const RtlTapeEngine>(program);
    TapeRtlPu tape_pu(engine);
    // Exercise the batched engine at an interior lane so slot striding
    // (values[node][pu]) is actually tested, not just lane 0.
    auto batch = std::make_shared<RtlBatch>(engine, 3);
    RtlBatchLane batch_pu(batch, 1);

    const TestbenchOptions profiles[] = {
        {1.0, 1.0, 1, 1ULL << 28},   // no stalls
        {0.7, 1.0, 7, 1ULL << 28},   // input underruns
        {1.0, 0.6, 11, 1ULL << 28},  // output backpressure
        {0.5, 0.5, 13, 1ULL << 28},  // both
    };
    for (const auto &profile : profiles) {
        TestbenchResult rtl_result = runPu(rtl_pu, input, profile);
        TestbenchResult fast_result = runPu(fast_pu, input, profile);
        TestbenchResult tape_result = runPu(tape_pu, input, profile);
        TestbenchResult batch_result = runPu(batch_pu, input, profile);
        ASSERT_TRUE(rtl_result.output == golden.output)
            << program.name << ": RTL output mismatch (validProb="
            << profile.inputValidProb << ")";
        ASSERT_TRUE(fast_result.output == golden.output)
            << program.name << ": fast-model output mismatch";
        ASSERT_TRUE(tape_result.output == golden.output)
            << program.name << ": tape-engine output mismatch (validProb="
            << profile.inputValidProb << ")";
        ASSERT_TRUE(batch_result.output == golden.output)
            << program.name << ": batched-engine output mismatch "
            << "(validProb=" << profile.inputValidProb << ")";
        ASSERT_EQ(rtl_result.cycles, fast_result.cycles)
            << program.name << ": cycle-count mismatch between RTL and "
            << "fast model (validProb=" << profile.inputValidProb
            << ", readyProb=" << profile.outputReadyProb << ")";
        ASSERT_EQ(rtl_result.cycles, tape_result.cycles)
            << program.name << ": cycle-count mismatch between "
            << "interpreter and tape engine";
        ASSERT_EQ(rtl_result.cycles, batch_result.cycles)
            << program.name << ": cycle-count mismatch between "
            << "interpreter and batched engine";
        ASSERT_EQ(rtl_result.inputTokens, tape_result.inputTokens);
        ASSERT_EQ(rtl_result.outputTokens, tape_result.outputTokens);
        ASSERT_EQ(rtl_result.inputTokens, batch_result.inputTokens);
        ASSERT_EQ(rtl_result.outputTokens, batch_result.outputTokens);
    }
}

TEST(CrossCheck, Identity)
{
    crossCheck(testprogs::identity(), randomStream(8, 500, 3));
}

TEST(CrossCheck, IdentityEmptyStream)
{
    crossCheck(testprogs::identity(), BitBuffer());
}

TEST(CrossCheck, StreamSum)
{
    crossCheck(testprogs::streamSum(), randomStream(8, 300, 4));
}

TEST(CrossCheck, Histogram)
{
    // Includes a while loop nested in an if, BRAM read+write at the same
    // address, and a cleanup-cycle emission.
    BitBuffer input;
    Rng rng(5);
    for (int i = 0; i < 64 * 3; ++i)
        input.appendBits(rng.nextBelow(8), 8);
    crossCheck(testprogs::blockFrequencies(64), input);
}

TEST(CrossCheck, DropAll)
{
    crossCheck(testprogs::dropAll(), randomStream(32, 200, 6));
}

TEST(CrossCheck, WhileCountdown)
{
    ProgramBuilder b("countdown", 8, 8);
    Value remaining = b.reg("remaining", 4, 0);
    b.while_(remaining != 0, [&] { b.assign(remaining, remaining - 1); });
    b.if_(!b.streamFinished(), [&] {
        b.assign(remaining, b.input().slice(3, 0));
        b.emit(b.input());
    });
    crossCheck(b.finish(), randomStream(8, 100, 7));
}

TEST(CrossCheck, EmitInsideWhile)
{
    // Emits inside a loop stress the output_valid / v_done interaction.
    ProgramBuilder b("burst", 8, 8);
    Value count = b.reg("count", 4, 0);
    b.while_(count != 0, [&] {
        b.emit(count.resize(8));
        b.assign(count, count - 1);
    });
    b.if_(!b.streamFinished(), [&] {
        b.assign(count, b.input().slice(2, 0).resize(4));
    });
    crossCheck(b.finish(), randomStream(8, 80, 8));
}

TEST(CrossCheck, BramForwarding)
{
    // Read-after-write of the same BRAM address in consecutive virtual
    // cycles exercises the forwarding registers.
    ProgramBuilder b("rmw", 8, 8);
    Bram m = b.bram("m", 16, 8);
    b.assign(m[b.input().slice(3, 0)], m[b.input().slice(3, 0)] + 1);
    b.emit(m[b.input().slice(3, 0)]);
    BitBuffer input;
    // Long runs of identical tokens force back-to-back same-address
    // read-modify-writes.
    for (int i = 0; i < 200; ++i)
        input.appendBits((i / 17) % 16, 8);
    crossCheck(b.finish(), input);
}

TEST(CrossCheck, VecRegRotate)
{
    ProgramBuilder b("rot", 8, 8);
    VecReg v = b.vreg("v", 8, 8);
    Value idx = b.reg("idx", 3, 0);
    b.assign(v[idx], b.input());
    b.assign(idx, idx + 1);
    b.emit(v[idx]);
    crossCheck(b.finish(), randomStream(8, 150, 9));
}

TEST(CrossCheck, ConditionalEmitWithBramCondition)
{
    // A BRAM read inside an if condition (allowed: it gates only
    // register updates and emits).
    ProgramBuilder b("filter", 8, 8);
    Bram table = b.bram("table", 256, 1);
    Value init = b.reg("init", 9, 0);
    // First 256 tokens program the table; the rest are filtered by it.
    b.if_(init < 256, [&] {
        b.assign(table[init.slice(7, 0)], b.input().slice(0, 0));
        b.assign(init, init + 1);
    }).elseIf(table[b.input()] == 1, [&] {
        b.emit(b.input());
    });
    BitBuffer input;
    Rng rng(10);
    for (int i = 0; i < 700; ++i)
        input.appendBits(rng.next(), 8);
    crossCheck(b.finish(), input);
}

TEST(CrossCheck, MultiWhileLoops)
{
    // Two while loops: loop virtual cycles run until BOTH conditions
    // are false.
    ProgramBuilder b("two_loops", 8, 8);
    Value a = b.reg("a", 4, 0);
    Value c = b.reg("c", 4, 0);
    b.while_(a != 0, [&] { b.assign(a, a - 1); });
    b.while_(c != 0, [&] { b.assign(c, c - 1); });
    b.if_(!b.streamFinished(), [&] {
        b.assign(a, b.input().slice(3, 0));
        b.assign(c, b.input().slice(7, 4));
        b.emit(b.input());
    });
    crossCheck(b.finish(), randomStream(8, 60, 12));
}

TEST(CrossCheck, SingleTokenStream)
{
    BitBuffer one;
    one.appendBits(0x5a, 8);
    crossCheck(testprogs::blockFrequencies(1), one);
}

TEST(CrossCheck, RtlThroughputIsOneVcyclePerCycle)
{
    // The paper's guarantee: one virtual cycle per real cycle in the
    // absence of stalls. For the identity unit, N tokens therefore take
    // N + (pipeline handshake) cycles.
    Program p = testprogs::identity();
    RtlPu pu(p);
    BitBuffer input = randomStream(8, 1000, 20);
    TestbenchResult r = runPu(pu, input);
    // 1000 token vcycles + 1 cleanup vcycle + 1 initial handshake cycle
    // + 1 final cycle to deassert v.
    EXPECT_LE(r.cycles, 1000u + 4u);
    EXPECT_GE(r.cycles, 1000u);
}

} // namespace
} // namespace fleet
