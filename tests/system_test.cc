#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace system {
namespace {

std::vector<BitBuffer>
randomStreams(int count, int token_width, int min_tokens, int max_tokens,
              uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < count; ++p) {
        int tokens = min_tokens +
                     static_cast<int>(rng.nextBelow(
                         uint64_t(max_tokens - min_tokens + 1)));
        BitBuffer stream;
        for (int t = 0; t < tokens; ++t)
            stream.appendBits(rng.next(), token_width);
        streams.push_back(std::move(stream));
    }
    return streams;
}

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.numChannels = 2;
    config.dram.readLatency = 20;
    return config;
}

void
expectOutputsMatchFunctional(const lang::Program &program,
                             const std::vector<BitBuffer> &streams,
                             FleetSystem &system)
{
    sim::FunctionalSimulator functional(program);
    for (size_t p = 0; p < streams.size(); ++p) {
        sim::RunResult golden = functional.run(streams[p]);
        ASSERT_TRUE(system.output(p) == golden.output)
            << "PU " << p << " output mismatch";
    }
}

TEST(FleetSystem, IdentityEndToEnd)
{
    auto program = testprogs::identity();
    auto streams = randomStreams(7, 8, 100, 900, 21);
    FleetSystem system(program, smallConfig(), streams);
    system.run();
    expectOutputsMatchFunctional(program, streams, system);
    auto stats = system.stats();
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.inputBytes, stats.outputBytes);
}

TEST(FleetSystem, HistogramEndToEnd)
{
    auto program = testprogs::blockFrequencies(64);
    // Streams a multiple of the block size.
    std::vector<BitBuffer> streams;
    Rng rng(22);
    for (int p = 0; p < 5; ++p) {
        BitBuffer s;
        int blocks = 1 + static_cast<int>(rng.nextBelow(4));
        for (int t = 0; t < 64 * blocks; ++t)
            s.appendBits(rng.nextBelow(32), 8);
        streams.push_back(std::move(s));
    }
    FleetSystem system(program, smallConfig(), streams);
    system.run();
    expectOutputsMatchFunctional(program, streams, system);
}

TEST(FleetSystem, StreamSumManyPus)
{
    auto program = testprogs::streamSum();
    auto streams = randomStreams(33, 8, 10, 400, 23);
    FleetSystem system(program, smallConfig(), streams);
    system.run();
    expectOutputsMatchFunctional(program, streams, system);
    // Each PU emits exactly one 32-bit sum.
    for (int p = 0; p < system.numPus(); ++p)
        EXPECT_EQ(system.output(p).sizeBits(), 32u);
}

TEST(FleetSystem, EmptyAndTinyStreams)
{
    auto program = testprogs::identity();
    std::vector<BitBuffer> streams(4);
    streams[1].appendBits(0xab, 8);
    // streams[0], [2] empty; [3] has a few tokens.
    for (int t = 0; t < 5; ++t)
        streams[3].appendBits(t, 8);
    FleetSystem system(program, smallConfig(), streams);
    system.run();
    expectOutputsMatchFunctional(program, streams, system);
    EXPECT_EQ(system.output(0).sizeBits(), 0u);
    EXPECT_EQ(system.output(1).sizeBits(), 8u);
}

TEST(FleetSystem, SkewedStreamSizes)
{
    // The paper notes streams should be similar in size since there is no
    // load balancing; completion time tracks the largest stream. Verify
    // correctness under skew.
    auto program = testprogs::identity();
    std::vector<BitBuffer> streams;
    Rng rng(25);
    for (int p = 0; p < 4; ++p) {
        BitBuffer s;
        int tokens = p == 0 ? 4000 : 50;
        for (int t = 0; t < tokens; ++t)
            s.appendBits(rng.next(), 8);
        streams.push_back(std::move(s));
    }
    FleetSystem system(program, smallConfig(), streams);
    system.run();
    expectOutputsMatchFunctional(program, streams, system);
}

TEST(FleetSystem, RtlAndFastBackendsAgreeExactly)
{
    auto program = testprogs::blockFrequencies(32);
    std::vector<BitBuffer> streams;
    Rng rng(26);
    for (int p = 0; p < 4; ++p) {
        BitBuffer s;
        for (int t = 0; t < 32 * 3; ++t)
            s.appendBits(rng.nextBelow(16), 8);
        streams.push_back(std::move(s));
    }

    SystemConfig fast_config = smallConfig();
    fast_config.backend = PuBackend::Fast;
    FleetSystem fast_system(program, fast_config, streams);
    fast_system.run();

    SystemConfig rtl_config = smallConfig();
    rtl_config.backend = PuBackend::Rtl;
    FleetSystem rtl_system(program, rtl_config, streams);
    rtl_system.run();

    // The fast model must be cycle-exact against interpreted RTL at the
    // full-system level, not just in isolation.
    EXPECT_EQ(fast_system.stats().cycles, rtl_system.stats().cycles);
    for (int p = 0; p < fast_system.numPus(); ++p)
        EXPECT_TRUE(fast_system.output(p) == rtl_system.output(p));
    expectOutputsMatchFunctional(program, streams, fast_system);
}

TEST(FleetSystem, WideTokensEndToEnd)
{
    // 32-bit tokens exercise portWidth == tokenWidth paths.
    auto program = testprogs::streamSum(32, 64);
    auto streams = randomStreams(6, 32, 64, 256, 27);
    FleetSystem system(program, smallConfig(), streams);
    system.run();
    expectOutputsMatchFunctional(program, streams, system);
}

TEST(FleetSystem, SingleChannelSinglePu)
{
    SystemConfig config = smallConfig();
    config.numChannels = 1;
    auto program = testprogs::identity();
    auto streams = randomStreams(1, 8, 2000, 2000, 28);
    FleetSystem system(program, config, streams);
    system.run();
    expectOutputsMatchFunctional(program, streams, system);
}

TEST(FleetSystem, ThroughputScalesWithPus)
{
    // More PUs per channel should increase aggregate throughput until the
    // memory system saturates.
    auto program = testprogs::dropAll();
    auto run_gbps = [&](int pus) {
        auto streams = randomStreams(pus, 32, 4096, 4096, 29);
        SystemConfig config;
        config.numChannels = 1;
        FleetSystem system(program, config, streams);
        system.run();
        return system.stats().inputGBps();
    };
    double one = run_gbps(1);
    double four = run_gbps(4);
    double sixteen = run_gbps(16);
    EXPECT_GT(four, 1.9 * one);
    EXPECT_GT(sixteen, 1.9 * four);
}

} // namespace
} // namespace system
} // namespace fleet
