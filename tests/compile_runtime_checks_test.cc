#include <gtest/gtest.h>

#include "compile/compiler.h"
#include "lang/builder.h"
#include "rtl/sim.h"
#include "test_programs.h"

namespace fleet {
namespace compile {
namespace {

using lang::Bram;
using lang::ProgramBuilder;
using lang::Value;

/** Drive a compiled unit over a byte stream and return the cycles (if
 * any) in which the violation output asserted. */
std::vector<uint64_t>
violationCycles(const CompiledUnit &unit,
                const std::vector<uint64_t> &tokens)
{
    rtl::Simulator sim(unit.circuit);
    rtl::NodeId violation = unit.circuit.outputNode("violation");
    std::vector<uint64_t> fired;
    size_t next = 0;
    for (uint64_t cycle = 0; cycle < tokens.size() + 50; ++cycle) {
        bool have = next < tokens.size();
        sim.setInput(unit.inInputToken, have ? tokens[next] : 0);
        sim.setInput(unit.inInputValid, have ? 1 : 0);
        sim.setInput(unit.inInputFinished, have ? 0 : 1);
        sim.setInput(unit.inOutputReady, 1);
        sim.evalComb();
        if (sim.value(violation) != 0)
            fired.push_back(cycle);
        if (sim.value(unit.outOutputFinished) != 0)
            break;
        if (sim.value(unit.outInputReady) != 0 && have)
            ++next;
        sim.step();
    }
    return fired;
}

TEST(RuntimeChecks, DoubleEmitDetected)
{
    ProgramBuilder b("bad", 8, 8);
    // Both emits fire whenever input >= 128 (overlapping conditions).
    b.if_(b.input() >= 128, [&] { b.emit(b.input()); });
    b.if_(b.input() >= 64, [&] { b.emit(b.input()); });
    CompileOptions options;
    options.insertRuntimeChecks = true;
    auto unit = compileProgram(b.finish(), options);
    ASSERT_NE(unit.outViolation, rtl::kNoNode);

    EXPECT_TRUE(violationCycles(unit, {10, 70, 10}).empty());
    EXPECT_FALSE(violationCycles(unit, {10, 200, 10}).empty());
}

TEST(RuntimeChecks, DoubleRegisterAssignDetected)
{
    ProgramBuilder b("bad", 8, 8);
    Value r = b.reg("r", 8);
    b.if_(b.input() >= 100, [&] { b.assign(r, 1); });
    b.if_(b.input() >= 50, [&] { b.assign(r, 2); });
    CompileOptions options;
    options.insertRuntimeChecks = true;
    auto unit = compileProgram(b.finish(), options);
    EXPECT_TRUE(violationCycles(unit, {49, 75}).empty());
    EXPECT_FALSE(violationCycles(unit, {49, 150}).empty());
}

TEST(RuntimeChecks, DoubleBramWriteDetected)
{
    ProgramBuilder b("bad", 8, 8);
    Bram m = b.bram("m", 16, 8);
    b.if_(b.input().bit(0) == 1, [&] {
        b.assign(m[Value::lit(0, 4)], 1);
    });
    b.if_(b.input().bit(1) == 1, [&] {
        b.assign(m[Value::lit(1, 4)], 2);
    });
    CompileOptions options;
    options.insertRuntimeChecks = true;
    auto unit = compileProgram(b.finish(), options);
    EXPECT_TRUE(violationCycles(unit, {1, 2}).empty());
    EXPECT_FALSE(violationCycles(unit, {3}).empty());
}

TEST(RuntimeChecks, TwoReadAddressesDetected)
{
    ProgramBuilder b("bad", 8, 8);
    Bram m = b.bram("m", 16, 8);
    Value x = b.reg("x", 8);
    Value y = b.reg("y", 8);
    b.if_(b.input().bit(0) == 1, [&] {
        b.assign(x, m[Value::lit(0, 4)]);
    });
    b.if_(b.input().bit(1) == 1, [&] {
        b.assign(y, m[Value::lit(1, 4)]);
    });
    CompileOptions options;
    options.insertRuntimeChecks = true;
    auto unit = compileProgram(b.finish(), options);
    EXPECT_TRUE(violationCycles(unit, {1, 2, 0}).empty());
    EXPECT_FALSE(violationCycles(unit, {3}).empty());
}

TEST(RuntimeChecks, CleanProgramsNeverFire)
{
    CompileOptions options;
    options.insertRuntimeChecks = true;
    auto unit = compileProgram(testprogs::blockFrequencies(16), options);
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 64; ++i)
        tokens.push_back(i % 7);
    EXPECT_TRUE(violationCycles(unit, tokens).empty());
}

TEST(RuntimeChecks, OffByDefault)
{
    auto unit = compileProgram(testprogs::identity());
    EXPECT_EQ(unit.outViolation, rtl::kNoNode);
    EXPECT_THROW(unit.circuit.outputNode("violation"), PanicError);
}

} // namespace
} // namespace compile
} // namespace fleet
