/**
 * @file
 * Forward-progress watchdog (ISSUE 2): a processing unit that spins
 * forever inside a `while` must trip the per-channel watchdog and
 * produce a diagnostic dump naming the stuck unit and its stall
 * reason — while fault-free applications never trip it, and the cycle
 * limit is likewise a contained outcome rather than an exception.
 */

#include <gtest/gtest.h>

#include <string>

#include "apps/registry.h"
#include "lang/builder.h"
#include "system/fleet_system.h"
#include "test_programs.h"
#include "trace/taxonomy.h"
#include "util/rng.h"

namespace fleet {
namespace system {
namespace {

using lang::ProgramBuilder;
using lang::Value;

/** Spins forever in a while loop on the first token: the loop body
 * never changes the (false) exit condition. */
lang::Program
infiniteWhileUnit()
{
    ProgramBuilder b("spin", 8, 8);
    Value stuck = b.reg("stuck", 1, 0);
    b.while_(stuck == 0, [&] { b.assign(stuck, Value::lit(0, 1)); });
    return b.finish();
}

TEST(Watchdog, InfiniteWhileProgramTripsWatchdog)
{
    // Rtl backend: the fast model would hang pre-computing its
    // functional trace over the non-terminating program, exactly the
    // class of hang the watchdog exists to catch at the system level.
    SystemConfig config;
    config.numChannels = 1;
    config.backend = PuBackend::Rtl;
    config.watchdogCycles = 2000;

    std::vector<BitBuffer> streams(1);
    for (int i = 0; i < 8; ++i)
        streams[0].appendBits(i, 8);

    FleetSystem fleet(infiniteWhileUnit(), config, streams);
    const RunReport &report = fleet.run();

    EXPECT_FALSE(report.allOk());
    ASSERT_EQ(report.channels.size(), 1u);
    const Status &status = report.channels[0].status;
    EXPECT_EQ(status.code, StatusCode::WatchdogStall);
    // The dump names the stuck unit and classifies its stall with the
    // shared taxonomy (trace/taxonomy.h): the unit neither consumes
    // nor produces, i.e. it spins internally.
    EXPECT_NE(status.message.find("PU 0"), std::string::npos)
        << status.message;
    EXPECT_NE(status.message.find(std::string(trace::stallCauseName(
                  trace::StallCause::InternalSpin))),
              std::string::npos)
        << status.message;
    EXPECT_NE(status.message.find("no forward progress"),
              std::string::npos)
        << status.message;
    ASSERT_EQ(report.pus.size(), 1u);
    EXPECT_EQ(report.pus[0].status.code, StatusCode::WatchdogStall);
    // The hang was contained: cycles reflect an early stop, not the
    // 2^40-cycle default limit.
    EXPECT_LT(report.channels[0].cycles, uint64_t(100000));
}

TEST(Watchdog, HealthyChannelUnaffectedByStuckChannel)
{
    // Two channels: PUs on channel 0 spin forever, PUs on channel 1 run
    // identity. The stuck channel reports WatchdogStall; the healthy
    // channel completes with correct output — per-channel containment.
    SystemConfig config;
    config.numChannels = 2;
    config.backend = PuBackend::Rtl;
    config.watchdogCycles = 2000;

    // PU 0 -> channel 0, PU 1 -> channel 1 (round-robin assignment).
    // A single program runs on all PUs, so make the spin data-dependent:
    // token 0xff enters an infinite loop, anything else is echoed.
    ProgramBuilder b("spin_on_ff", 8, 8);
    Value stuck = b.reg("stuck", 1, 0);
    b.if_(!b.streamFinished(), [&] {
        b.while_((stuck == 0) && (b.input() == 0xff),
                 [&] { b.assign(stuck, Value::lit(0, 1)); });
        b.emit(b.input());
    });
    auto program = b.finish();

    std::vector<BitBuffer> streams(2);
    streams[0].appendBits(0xff, 8); // Spins forever.
    for (int i = 0; i < 16; ++i)
        streams[1].appendBits(i + 1, 8); // Healthy echo.

    FleetSystem fleet(program, config, streams);
    const RunReport &report = fleet.run();

    ASSERT_EQ(report.channels.size(), 2u);
    EXPECT_EQ(report.channels[0].status.code, StatusCode::WatchdogStall);
    EXPECT_TRUE(report.channels[1].ok());
    EXPECT_EQ(report.pus[0].status.code, StatusCode::WatchdogStall);
    EXPECT_EQ(report.pus[1].status.code, StatusCode::Ok);
    EXPECT_TRUE(fleet.output(1) == streams[1]);
}

TEST(Watchdog, FaultFreeAppsNeverTrip)
{
    // Every registry application under the default watchdog completes
    // without tripping it, on both thread modes.
    auto apps = apps::allApplications();
    for (const auto &app : apps) {
        Rng rng(61);
        std::vector<BitBuffer> streams;
        for (int p = 0; p < 4; ++p)
            streams.push_back(app->generateStream(rng, 1200));
        SystemConfig config;
        config.numChannels = 2;
        FleetSystem fleet(app->program(), config, streams);
        const RunReport &report = fleet.run();
        EXPECT_TRUE(report.allOk()) << app->name() << ": "
                                    << report.summary();
    }
}

TEST(Watchdog, ThresholdScalesWithArmedJobSize)
{
    // ISSUE 7 regression: a fixed watchdog threshold that is sane for
    // small jobs false-trips on a large job whose DRAM reads are hit
    // by injected latency spikes — each spike stalls the channel
    // longer than the fixed threshold even though the unit is making
    // forward progress between spikes. watchdogStreamFactor scales
    // the effective threshold with the largest armed stream, so the
    // same storm completes; factor 0 keeps the legacy fixed budget.
    SystemConfig config;
    config.numChannels = 1;
    config.watchdogCycles = 150;
    config.inputRegionBytes = 8192;
    config.faults.seed = 5;
    config.faults.latencySpikePermille = 1000; // every read spiked
    config.faults.latencySpikeCycles = 400;

    std::vector<BitBuffer> streams(1);
    Rng rng(67);
    for (int i = 0; i < 2048; ++i)
        streams[0].appendBits(rng.next(), 8);

    {
        FleetSystem fixed(testprogs::identity(), config, streams);
        const RunReport &report = fixed.run();
        ASSERT_EQ(report.channels.size(), 1u);
        EXPECT_EQ(report.channels[0].status.code,
                  StatusCode::WatchdogStall)
            << "fixed threshold should false-trip under the spikes: "
            << report.summary();
    }
    {
        SystemConfig scaled = config;
        scaled.watchdogStreamFactor = 1.0; // budget >= 2048 cycles
        FleetSystem fleet(testprogs::identity(), scaled, streams);
        const RunReport &report = fleet.run();
        EXPECT_TRUE(report.allOk()) << report.summary();
        EXPECT_TRUE(fleet.output(0) == streams[0]);
    }
}

TEST(Watchdog, CycleLimitIsContainedOutcome)
{
    // An impossibly small maxCycles ends the run with a
    // CycleLimitExceeded outcome instead of an exception.
    SystemConfig config;
    config.numChannels = 1;
    config.maxCycles = 50;

    std::vector<BitBuffer> streams(1);
    for (int i = 0; i < 512; ++i)
        streams[0].appendBits(i, 8);

    FleetSystem fleet(testprogs::identity(), config, streams);
    const RunReport &report = fleet.run();
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.channels[0].status.code,
              StatusCode::CycleLimitExceeded);
    EXPECT_EQ(report.channels[0].cycles, 50u);
}

} // namespace
} // namespace system
} // namespace fleet
