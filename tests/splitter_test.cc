#include <gtest/gtest.h>

#include "apps/json.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "system/splitter.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace system {
namespace {

TEST(Splitter, DelimiterSplitCutsOnlyAfterDelimiters)
{
    std::string text = "aa\nbbbb\ncc\ndddddd\ne\n";
    auto streams = splitAtDelimiter(text, 3, '\n');
    ASSERT_GE(streams.size(), 2u);
    std::string rebuilt;
    for (const auto &stream : streams) {
        std::string piece = stream.toString();
        ASSERT_FALSE(piece.empty());
        EXPECT_EQ(piece.back(), '\n');
        rebuilt += piece;
    }
    EXPECT_EQ(rebuilt, text);
}

TEST(Splitter, DelimiterSplitHandlesFewRecords)
{
    auto streams = splitAtDelimiter("one\n", 8, '\n');
    ASSERT_EQ(streams.size(), 1u);
    EXPECT_EQ(streams[0].toString(), "one\n");
}

TEST(Splitter, DelimiterSplitTrailingPartialRecord)
{
    std::string text = "aaa\nbb"; // no trailing newline
    auto streams = splitAtDelimiter(text, 2, '\n');
    std::string rebuilt;
    for (const auto &stream : streams)
        rebuilt += stream.toString();
    EXPECT_EQ(rebuilt, text);
}

TEST(Splitter, ProloguePrependedToEverySplit)
{
    std::vector<uint8_t> prologue = {0x11, 0x22};
    auto streams = splitAtDelimiter("x\ny\nz\n", 3, '\n', prologue);
    for (const auto &stream : streams) {
        EXPECT_EQ(stream.readBits(0, 8), 0x11u);
        EXPECT_EQ(stream.readBits(8, 8), 0x22u);
    }
}

TEST(Splitter, FixedSplitBalancesTokens)
{
    BitBuffer data;
    for (int i = 0; i < 10; ++i)
        data.appendBits(i, 32);
    auto streams = splitFixed(data, 4, 32);
    ASSERT_EQ(streams.size(), 4u);
    EXPECT_EQ(streams[0].sizeBits(), 3u * 32);
    EXPECT_EQ(streams[1].sizeBits(), 3u * 32);
    EXPECT_EQ(streams[2].sizeBits(), 2u * 32);
    EXPECT_EQ(streams[3].sizeBits(), 2u * 32);
    // Order preserved across the concatenation.
    uint64_t expected = 0;
    for (const auto &stream : streams) {
        for (uint64_t t = 0; t < stream.sizeBits() / 32; ++t)
            EXPECT_EQ(stream.readBits(t * 32, 32), expected++);
    }
}

TEST(Splitter, FixedSplitRejectsMisalignment)
{
    BitBuffer data;
    data.appendBits(0, 20);
    EXPECT_THROW(splitFixed(data, 2, 32), FatalError);
    EXPECT_THROW(splitFixed(data, 0, 20), FatalError);
}

TEST(Splitter, JsonEndToEndThroughSplitter)
{
    // The full Section 2 flow: one big record batch, split at newlines
    // with the trie prologue, run, concatenated outputs equal the
    // unsplit golden.
    apps::JsonApp app;
    Rng rng(61);
    BitBuffer batch = app.generateStream(rng, 60000);
    std::string text = batch.toString().substr(app.trieConfig().size());

    auto streams = splitAtDelimiter(text, 6, '\n', app.trieConfig());
    SystemConfig config;
    config.numChannels = 2;
    FleetSystem fleet_system(app.program(), config, streams);
    fleet_system.run();

    std::string combined;
    for (int p = 0; p < fleet_system.numPus(); ++p)
        combined += fleet_system.output(p).toString();
    EXPECT_EQ(combined, app.golden(batch).toString());
}

TEST(PuStatsTracking, SkewAndBackpressureAreVisible)
{
    // One long stream and several short ones: the long PU should finish
    // last; identity emits 1:1 so output blocking occurs while bursts
    // flush.
    auto program = testprogs::identity();
    Rng rng(62);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 4; ++p) {
        BitBuffer stream;
        int tokens = p == 0 ? 20000 : 500;
        for (int t = 0; t < tokens; ++t)
            stream.appendBits(rng.next(), 8);
        streams.push_back(std::move(stream));
    }
    SystemConfig config;
    config.numChannels = 1;
    FleetSystem fleet_system(program, config, streams);
    fleet_system.run();

    auto total = fleet_system.stats();
    for (int p = 0; p < 4; ++p) {
        const auto &stats = fleet_system.puStats(p);
        EXPECT_LE(stats.inputStarvedCycles + stats.outputBlockedCycles,
                  total.cycles);
        EXPECT_GT(stats.finishedAtCycle, 0u);
    }
    // The long stream's PU finishes last.
    for (int p = 1; p < 4; ++p) {
        EXPECT_GT(fleet_system.puStats(0).finishedAtCycle,
                  fleet_system.puStats(p).finishedAtCycle);
    }
}

} // namespace
} // namespace system
} // namespace fleet
