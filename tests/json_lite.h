#ifndef FLEET_TESTS_JSON_LITE_H
#define FLEET_TESTS_JSON_LITE_H

/**
 * @file
 * Minimal recursive-descent JSON parser for test assertions — just
 * enough to parse the artifacts the repo emits (Chrome trace_event
 * files, BENCH_PR.json) back into a tree and validate them against
 * their schema. Test-only: optimises for clear error positions, not
 * speed, and keeps object members in file order so golden tests can
 * assert on ordering.
 */

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fleet {
namespace testjson {

struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key (first match, file order), or null. */
    const Value *find(std::string_view key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
    bool has(std::string_view key) const { return find(key) != nullptr; }

    /** Member as integer; `fallback` if absent or not a number. */
    int64_t getInt(std::string_view key, int64_t fallback = -1) const
    {
        const Value *v = find(key);
        return v && v->isNumber() ? int64_t(v->number) : fallback;
    }
    /** Member as string; empty if absent or not a string. */
    std::string getString(std::string_view key) const
    {
        const Value *v = find(key);
        return v && v->isString() ? v->str : std::string();
    }
};

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    /** Parse the whole input as one JSON value. False on any error;
     * `error()` then describes what went wrong and where. */
    bool parse(Value &out)
    {
        pos_ = 0;
        error_.clear();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing data after top-level value");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    bool fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    bool parseLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (no surrogate pairs;
                // the repo's emitters never produce them).
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xC0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(char(0xE0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                }
                break;
            }
            default: return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(Value &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out.kind = Value::Kind::Number;
        out.number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return fail("malformed number");
        return true;
    }

    bool parseValue(Value &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case '{': {
            ++pos_;
            out.kind = Value::Kind::Object;
            if (consume('}'))
                return true;
            do {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':' in object");
                Value member;
                if (!parseValue(member))
                    return false;
                out.object.emplace_back(std::move(key), std::move(member));
            } while (consume(','));
            if (!consume('}'))
                return fail("expected '}' or ','");
            return true;
        }
        case '[': {
            ++pos_;
            out.kind = Value::Kind::Array;
            if (consume(']'))
                return true;
            do {
                Value element;
                if (!parseValue(element))
                    return false;
                out.array.push_back(std::move(element));
            } while (consume(','));
            if (!consume(']'))
                return fail("expected ']' or ','");
            return true;
        }
        case '"':
            out.kind = Value::Kind::String;
            return parseString(out.str);
        case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return parseLiteral("true");
        case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return parseLiteral("false");
        case 'n':
            out.kind = Value::Kind::Null;
            return parseLiteral("null");
        default: return parseNumber(out);
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string error_;
};

inline bool
parse(std::string_view text, Value &out, std::string *error = nullptr)
{
    Parser parser(text);
    bool ok = parser.parse(out);
    if (!ok && error)
        *error = parser.error();
    return ok;
}

} // namespace testjson
} // namespace fleet

#endif // FLEET_TESTS_JSON_LITE_H
