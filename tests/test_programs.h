#ifndef FLEET_TESTS_TEST_PROGRAMS_H
#define FLEET_TESTS_TEST_PROGRAMS_H

/**
 * @file
 * Small Fleet programs shared across test suites, including the paper's
 * Figure 3 histogram unit and the identity unit from Section 3.
 */

#include "lang/builder.h"

namespace fleet {
namespace testprogs {

/** The identity unit from Section 3: emits the input stream unchanged. */
inline lang::Program
identity(int token_width = 8)
{
    lang::ProgramBuilder b("Identity", token_width, token_width);
    b.if_(!b.streamFinished(), [&] { b.emit(b.input()); });
    return b.finish();
}

/**
 * The paper's Figure 3 unit: a 256-entry histogram emitted and cleared
 * after every `block` 8-bit tokens.
 */
inline lang::Program
blockFrequencies(int block = 100)
{
    using lang::Value;
    lang::ProgramBuilder b("BlockFrequencies", 8, 8);
    Value itemCounter = b.reg("itemCounter", 7, 0);
    lang::Bram frequencies = b.bram("frequencies", 256, 8);
    Value frequenciesIdx = b.reg("frequenciesIdx", 9, 0);

    b.if_(itemCounter == uint64_t(block), [&] {
        b.while_(frequenciesIdx < 256, [&] {
            b.emit(frequencies[frequenciesIdx]);
            b.assign(frequencies[frequenciesIdx], 0);
            b.assign(frequenciesIdx, frequenciesIdx + 1);
        });
        b.assign(frequenciesIdx, 0);
    });
    b.assign(frequencies[b.input()], frequencies[b.input()] + 1);
    b.assign(itemCounter, lang::mux(itemCounter == uint64_t(block), 1,
                                    itemCounter + 1));
    // 256 histogram entries per `block` input tokens.
    b.maxOutputExpansion(256.0 / block);
    return b.finish();
}

/** Sums all tokens and emits the total in the cleanup cycle. */
inline lang::Program
streamSum(int token_width = 8, int sum_width = 32)
{
    using lang::Value;
    lang::ProgramBuilder b("StreamSum", token_width, sum_width);
    Value sum = b.reg("sum", sum_width, 0);
    b.if_(b.streamFinished(), [&] { b.emit(sum); })
        .else_([&] {
            b.assign(sum, sum + b.input().resize(sum_width));
        });
    return b.finish();
}

/** Drops every token and produces no output (memory-bench probe PU). */
inline lang::Program
dropAll(int token_width = 32)
{
    lang::ProgramBuilder b("DropAll", token_width, token_width);
    lang::Value seen = b.reg("seen", 1, 0);
    b.assign(seen, lang::Value::lit(1, 1));
    return b.finish();
}

} // namespace testprogs
} // namespace fleet

#endif // FLEET_TESTS_TEST_PROGRAMS_H
