#include <gtest/gtest.h>

#include "util/loc.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"

namespace fleet {
namespace {

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad thing ", 42), FatalError);
    try {
        fatal("value is ", 7, "!");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value is 7!");
    }
}

TEST(Logging, PanicThrows)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.nextInRange(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Table, BasicLayout)
{
    Table t({"App", "GB/s"});
    t.row().cell("JSON").cell(21.39);
    t.row().cell("Regex").cell(27.24);
    std::string s = t.str();
    EXPECT_NE(s.find("| App   | GB/s  |"), std::string::npos);
    EXPECT_NE(s.find("21.39"), std::string::npos);
    EXPECT_NE(s.find("27.24"), std::string::npos);
}

TEST(Table, TooManyCellsPanics)
{
    Table t({"one"});
    t.row().cell("a");
    EXPECT_THROW(t.cell("b"), PanicError);
}

TEST(Table, CellBeforeRowPanics)
{
    Table t({"one"});
    EXPECT_THROW(t.cell("a"), PanicError);
}

TEST(Loc, CountsCodeLines)
{
    std::string src =
        "// comment only\n"
        "int x = 1; // trailing\n"
        "\n"
        "/* block\n"
        "   comment */\n"
        "int y = 2; /* inline */ int z = 3;\n"
        "   \n"
        "}\n";
    EXPECT_EQ(countCodeLines(src), 3);
}

TEST(Loc, StringLiteralsNotComments)
{
    std::string src = "const char *s = \"// not a comment\";\n";
    EXPECT_EQ(countCodeLines(src), 1);
}

TEST(Loc, BlockCommentSpanningCodeLines)
{
    std::string src =
        "int a; /* start\n"
        "still comment\n"
        "end */ int b;\n";
    EXPECT_EQ(countCodeLines(src), 2);
}

TEST(Loc, EmptySource)
{
    EXPECT_EQ(countCodeLines(""), 0);
    EXPECT_EQ(countCodeLines("\n\n\n"), 0);
}

TEST(Loc, MissingFileThrows)
{
    EXPECT_THROW(countCodeLinesInFile("/nonexistent/file.cc"), FatalError);
}

} // namespace
} // namespace fleet
