/**
 * @file
 * The channel-parallel engine's central guarantee: because channels share
 * nothing (Section 5), stepping the shards on a worker pool must be
 * bit-for-bit identical to the single-threaded run — same output bytes,
 * same cycle count, same per-PU stall stats — for every application and
 * both PU backends.
 */

#include <gtest/gtest.h>

#include "apps/registry.h"
#include "fault/fault.h"
#include "runtime/session.h"
#include "system/fleet_system.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace system {
namespace {

std::vector<BitBuffer>
appStreams(const apps::Application &app, int count, uint64_t bytes,
           uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < count; ++p)
        streams.push_back(app.generateStream(rng, bytes));
    return streams;
}

SystemConfig
configFor(PuBackend backend, int threads)
{
    SystemConfig config;
    config.numChannels = 3; // Uneven PU division across channels.
    config.numThreads = threads;
    config.backend = backend;
    config.dram.readLatency = 20;
    return config;
}

void
expectIdenticalRuns(const lang::Program &program,
                    const std::vector<BitBuffer> &streams,
                    PuBackend backend, const std::string &label)
{
    FleetSystem serial(program, configFor(backend, 1), streams);
    serial.run();
    FleetSystem parallel(program, configFor(backend, 4), streams);
    parallel.run();

    ASSERT_EQ(serial.stats().cycles, parallel.stats().cycles)
        << label << ": cycle counts diverge across thread counts";
    ASSERT_EQ(serial.stats().outputBytes, parallel.stats().outputBytes)
        << label << ": output sizes diverge across thread counts";
    for (int p = 0; p < serial.numPus(); ++p) {
        ASSERT_TRUE(serial.output(p) == parallel.output(p))
            << label << " PU " << p
            << ": output bytes diverge across thread counts";
        const PuStats &a = serial.puStats(p);
        const PuStats &b = parallel.puStats(p);
        ASSERT_EQ(a.finishedAtCycle, b.finishedAtCycle)
            << label << " PU " << p;
        ASSERT_EQ(a.inputStarvedCycles, b.inputStarvedCycles)
            << label << " PU " << p;
        ASSERT_EQ(a.outputBlockedCycles, b.outputBlockedCycles)
            << label << " PU " << p;
    }
    // Per-shard stats must merge identically too.
    auto serial_stats = serial.stats();
    auto parallel_stats = parallel.stats();
    ASSERT_EQ(serial_stats.channels.size(), parallel_stats.channels.size());
    for (size_t c = 0; c < serial_stats.channels.size(); ++c) {
        const ChannelStats &a = serial_stats.channels[c];
        const ChannelStats &b = parallel_stats.channels[c];
        EXPECT_EQ(a.cycles, b.cycles) << label << " channel " << c;
        EXPECT_EQ(a.beatsDelivered, b.beatsDelivered)
            << label << " channel " << c;
        EXPECT_EQ(a.beatsWritten, b.beatsWritten)
            << label << " channel " << c;
        EXPECT_EQ(a.readQueueOccupancySum, b.readQueueOccupancySum)
            << label << " channel " << c;
    }
}

class AllAppsDeterminism : public ::testing::TestWithParam<int>
{
};

TEST_P(AllAppsDeterminism, FastBackendThreadCountInvariant)
{
    auto apps = apps::allApplications();
    auto &app = *apps[GetParam()];
    auto streams = appStreams(app, 5, 1800, 42);
    expectIdenticalRuns(app.program(), streams, PuBackend::Fast,
                        app.name() + "/Fast");
}

TEST_P(AllAppsDeterminism, RtlBackendThreadCountInvariant)
{
    auto apps = apps::allApplications();
    auto &app = *apps[GetParam()];
    // RTL interpretation is ~two orders slower; keep streams small.
    auto streams = appStreams(app, 4, 700, 43);
    expectIdenticalRuns(app.program(), streams, PuBackend::Rtl,
                        app.name() + "/Rtl");
}

INSTANTIATE_TEST_SUITE_P(Suite, AllAppsDeterminism, ::testing::Range(0, 6),
                         [](const auto &info) {
                             auto apps = apps::allApplications();
                             return apps[info.param]->name();
                         });

TEST(Determinism, ManyPusAcrossManyThreads)
{
    // More PUs than channels and more threads than cores exercises the
    // work-queue scheduling paths of the pool.
    auto program = testprogs::blockFrequencies(32);
    std::vector<BitBuffer> streams;
    Rng rng(99);
    for (int p = 0; p < 13; ++p) {
        BitBuffer s;
        int blocks = 1 + static_cast<int>(rng.nextBelow(3));
        for (int t = 0; t < 32 * blocks; ++t)
            s.appendBits(rng.nextBelow(16), 8);
        streams.push_back(std::move(s));
    }
    expectIdenticalRuns(program, streams, PuBackend::Fast, "histogram");
}

TEST(Determinism, AutoThreadCountMatchesSerial)
{
    // numThreads = 0 (one per hardware thread) must also be identical.
    auto program = testprogs::streamSum();
    std::vector<BitBuffer> streams;
    Rng rng(7);
    for (int p = 0; p < 6; ++p) {
        BitBuffer s;
        for (int t = 0; t < 200; ++t)
            s.appendBits(rng.next(), 8);
        streams.push_back(std::move(s));
    }
    SystemConfig serial_config;
    serial_config.numChannels = 4;
    serial_config.numThreads = 1;
    FleetSystem serial(program, serial_config, streams);
    serial.run();

    SystemConfig auto_config;
    auto_config.numChannels = 4;
    auto_config.numThreads = 0;
    FleetSystem automatic(program, auto_config, streams);
    automatic.run();

    EXPECT_EQ(serial.stats().cycles, automatic.stats().cycles);
    for (int p = 0; p < serial.numPus(); ++p)
        EXPECT_TRUE(serial.output(p) == automatic.output(p)) << "PU " << p;
}

TEST(Determinism, ShardStatsAggregateConsistently)
{
    auto program = testprogs::identity();
    std::vector<BitBuffer> streams;
    Rng rng(17);
    for (int p = 0; p < 9; ++p) {
        BitBuffer s;
        for (int t = 0; t < 300 + int(rng.nextBelow(300)); ++t)
            s.appendBits(rng.next(), 8);
        streams.push_back(std::move(s));
    }
    SystemConfig config;
    config.numChannels = 4;
    config.numThreads = 2;
    FleetSystem system(program, config, streams);
    system.run();
    auto stats = system.stats();

    ASSERT_EQ(stats.channels.size(), 4u);
    uint64_t in_bytes = 0, out_bytes = 0, max_cycles = 0;
    int pus = 0;
    for (const auto &ch : stats.channels) {
        in_bytes += ch.inputBytes;
        out_bytes += ch.outputBytes;
        max_cycles = std::max(max_cycles, ch.cycles);
        pus += ch.numPus;
        EXPECT_GT(ch.cycles, 0u);
        EXPECT_GE(ch.busUtilization(), 0.0);
        EXPECT_LE(ch.busUtilization(), 1.0);
    }
    EXPECT_EQ(in_bytes, stats.inputBytes);
    EXPECT_EQ(out_bytes, stats.outputBytes);
    EXPECT_EQ(max_cycles, stats.cycles);
    EXPECT_EQ(pus, system.numPus());
    EXPECT_EQ(stats.threadsUsed, 2);
    EXPECT_GT(stats.wallSeconds, 0.0);
}

TEST(Determinism, SessionJobMixTracedThreadCountInvariant)
{
    // ISSUE 5 extension of the fence: a multi-job mix served through
    // the incremental runtime — mixed stream lengths, more jobs than
    // slots, tracing enabled, with and without a fault plan — must
    // produce identical JobReports and an identical RunReport (trace
    // included, job spans and all) at 1 and 4 host threads.
    auto program = testprogs::blockFrequencies(32);
    Rng stream_rng(21);
    std::vector<BitBuffer> streams;
    for (int j = 0; j < 20; ++j) {
        BitBuffer s;
        uint64_t bytes = 40 + stream_rng.nextBelow(400);
        for (uint64_t i = 0; i < bytes; ++i)
            s.appendBits(stream_rng.next(), 8);
        streams.push_back(std::move(s));
    }

    for (bool faulty : {false, true}) {
        auto runSession = [&](int threads) {
            runtime::SessionConfig config;
            config.system.numChannels = 3;
            config.system.numThreads = threads;
            config.system.trace.counters = true;
            config.system.trace.events = true;
            config.system.inputRegionBytes = 4096;
            if (faulty)
                config.system.faults =
                    fault::FaultPlan::fromSeed(0xf1ee7);
            config.numSlots = 6;
            config.epochCycles = 512;
            runtime::Session session(program, config);
            for (const auto &stream : streams)
                session.submit(stream);
            RunReport report = session.finish();
            return std::make_pair(session.reports(), std::move(report));
        };
        const std::string label = faulty ? "faulty" : "clean";
        auto [serial_jobs, serial_report] = runSession(1);
        auto [parallel_jobs, parallel_report] = runSession(4);
        ASSERT_TRUE(serial_report == parallel_report)
            << label << ": session RunReport (with trace) diverges "
                        "across thread counts";
        ASSERT_EQ(serial_jobs.size(), parallel_jobs.size());
        for (size_t j = 0; j < serial_jobs.size(); ++j)
            ASSERT_TRUE(serial_jobs[j] == parallel_jobs[j])
                << label << ": job " << j
                << " diverges across thread counts";
        ASSERT_NE(serial_report.trace, nullptr);
    }
}

TEST(Determinism, TwoDeviceClusterSessionThreadCountInvariant)
{
    // ISSUE 10 extension of the session fence: the same job mix
    // scheduled across a 2-device cluster — tracing on, fault plan on,
    // more jobs than the doubled slot pool — must produce identical
    // JobReports (device placement included) and an identical
    // ClusterReport (every device's RunReport, the link counters, and
    // the link tracks) at 1 and 4 host threads.
    auto program = testprogs::blockFrequencies(32);
    Rng stream_rng(77);
    std::vector<BitBuffer> streams;
    for (int j = 0; j < 24; ++j) {
        BitBuffer s;
        uint64_t bytes = 40 + stream_rng.nextBelow(400);
        for (uint64_t i = 0; i < bytes; ++i)
            s.appendBits(stream_rng.next(), 8);
        streams.push_back(std::move(s));
    }

    for (bool faulty : {false, true}) {
        auto runSession = [&](int threads) {
            runtime::SessionConfig config;
            config.system.numChannels = 3;
            config.system.numThreads = threads;
            config.system.trace.counters = true;
            config.system.trace.events = true;
            config.system.inputRegionBytes = 4096;
            if (faulty)
                config.system.faults =
                    fault::FaultPlan::fromSeed(0xc1a57e);
            config.numSlots = 4;
            config.numDevices = 2;
            config.epochCycles = 512;
            runtime::Session session(program, config);
            for (const auto &stream : streams)
                session.submit(stream);
            cluster::ClusterReport report = session.finishCluster();
            return std::make_pair(session.reports(), std::move(report));
        };
        const std::string label = faulty ? "faulty" : "clean";
        auto [serial_jobs, serial_report] = runSession(1);
        auto [parallel_jobs, parallel_report] = runSession(4);
        ASSERT_TRUE(serial_report == parallel_report)
            << label << ": 2-device ClusterReport diverges across "
                        "thread counts";
        ASSERT_EQ(serial_jobs.size(), parallel_jobs.size());
        bool used_second_device = false;
        for (size_t j = 0; j < serial_jobs.size(); ++j) {
            ASSERT_TRUE(serial_jobs[j] == parallel_jobs[j])
                << label << ": job " << j
                << " (device placement included) diverges across "
                   "thread counts";
            used_second_device |= serial_jobs[j].device == 1;
        }
        ASSERT_TRUE(used_second_device)
            << label << ": the fence never exercised device 1";
        ASSERT_EQ(serial_report.devices.size(), 2u);
        for (const auto &device : serial_report.devices)
            ASSERT_NE(device.trace, nullptr);
    }
}

TEST(Determinism, TwoDeviceClusterSessionBackendInvariantSchedule)
{
    // The placement schedule (job -> device/slot and all simulated
    // timestamps) must survive a PU backend swap: Fast and RtlInterp
    // differ in how a unit computes, never in when the scheduler acts.
    auto program = testprogs::identity();
    Rng stream_rng(91);
    std::vector<BitBuffer> streams;
    for (int j = 0; j < 12; ++j) {
        BitBuffer s;
        uint64_t bytes = 30 + stream_rng.nextBelow(120);
        for (uint64_t i = 0; i < bytes; ++i)
            s.appendBits(stream_rng.next(), 8);
        streams.push_back(std::move(s));
    }
    auto runSession = [&](PuBackend backend) {
        runtime::SessionConfig config;
        config.system.numChannels = 2;
        config.system.numThreads = 2;
        config.system.backend = backend;
        config.system.inputRegionBytes = 2048;
        config.numSlots = 3;
        config.numDevices = 2;
        runtime::Session session(program, config);
        for (const auto &stream : streams)
            session.submit(stream);
        session.finish();
        return session.reports();
    };
    auto fast = runSession(PuBackend::Fast);
    auto rtl = runSession(PuBackend::RtlInterp);
    ASSERT_EQ(fast.size(), rtl.size());
    for (size_t j = 0; j < fast.size(); ++j)
        ASSERT_TRUE(fast[j] == rtl[j])
            << "job " << j
            << ": 2-device schedule diverges across PU backends";
}

} // namespace
} // namespace system
} // namespace fleet
