#include <gtest/gtest.h>

#include "rtl/circuit.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"
#include "util/logging.h"

namespace fleet {
namespace rtl {
namespace {

TEST(RtlCircuit, CombinationalEvaluation)
{
    Circuit c("comb");
    NodeId a = c.addInput("a", 8);
    NodeId b = c.addInput("b", 8);
    NodeId sum = c.makeBin(BinOp::Add, a, b);
    NodeId both = c.makeBin(BinOp::LAnd, a, b);
    NodeId sel = c.makeMux(both, sum, c.makeConst(0, 8));
    c.addOutput("sum", sum);
    c.addOutput("sel", sel);

    Simulator sim(c);
    sim.setInput(0, 200);
    sim.setInput(1, 100);
    sim.evalComb();
    EXPECT_EQ(sim.value(sum), 44u); // 8-bit wrap
    EXPECT_EQ(sim.value(sel), 44u);
    sim.setInput(1, 0);
    sim.evalComb();
    EXPECT_EQ(sim.value(sel), 0u);
}

TEST(RtlCircuit, RegisterWithEnable)
{
    Circuit c("reg");
    NodeId d = c.addInput("d", 8);
    NodeId en = c.addInput("en", 1);
    int r = c.addReg("r", 8, 0x55);
    c.setRegNext(r, d, en);
    c.addOutput("q", c.regOut(r));

    Simulator sim(c);
    sim.evalComb();
    EXPECT_EQ(sim.regValue(r), 0x55u); // init value

    sim.setInput(0, 0xaa);
    sim.setInput(1, 0);
    sim.evalComb();
    sim.step();
    EXPECT_EQ(sim.regValue(r), 0x55u); // enable low: held

    sim.setInput(1, 1);
    sim.evalComb();
    sim.step();
    EXPECT_EQ(sim.regValue(r), 0xaau); // enable high: captured

    sim.reset();
    EXPECT_EQ(sim.regValue(r), 0x55u);
}

TEST(RtlCircuit, RegisterChainShiftsOnePerCycle)
{
    Circuit c("chain");
    NodeId d = c.addInput("d", 4);
    int r0 = c.addReg("r0", 4, 0);
    int r1 = c.addReg("r1", 4, 0);
    c.setRegNext(r0, d);
    c.setRegNext(r1, c.regOut(r0));

    Simulator sim(c);
    for (uint64_t v : {1u, 2u, 3u}) {
        sim.setInput(0, v);
        sim.evalComb();
        sim.step();
    }
    EXPECT_EQ(sim.regValue(r0), 3u);
    EXPECT_EQ(sim.regValue(r1), 2u);
}

TEST(RtlCircuit, BramReadLatencyAndReadFirst)
{
    Circuit c("bram");
    NodeId rd_addr = c.addInput("rd_addr", 4);
    NodeId wr_en = c.addInput("wr_en", 1);
    NodeId wr_addr = c.addInput("wr_addr", 4);
    NodeId wr_data = c.addInput("wr_data", 8);
    int m = c.addBram("m", 16, 8);
    c.setBramPorts(m, rd_addr, wr_en, wr_addr, wr_data);
    NodeId rd = c.bramRdData(m);
    c.addOutput("rd_data", rd);

    Simulator sim(c);
    // Cycle 0: write 0xbe to addr 3 while reading addr 3 (read-first).
    sim.setInput(0, 3);
    sim.setInput(1, 1);
    sim.setInput(2, 3);
    sim.setInput(3, 0xbe);
    sim.evalComb();
    EXPECT_EQ(sim.value(rd), 0u); // nothing latched yet
    sim.step();
    EXPECT_EQ(sim.bramWord(m, 3), 0xbeu);

    // Cycle 1: rd_data shows the OLD value at addr 3 (read-first).
    sim.setInput(1, 0);
    sim.evalComb();
    EXPECT_EQ(sim.value(rd), 0u);
    sim.step();

    // Cycle 2: now the written value is visible.
    sim.evalComb();
    EXPECT_EQ(sim.value(rd), 0xbeu);
}

TEST(RtlCircuit, BramOutOfRangeReadsZero)
{
    Circuit c("bram2");
    NodeId rd_addr = c.addInput("rd_addr", 8);
    NodeId zero1 = c.makeConst(0, 1);
    NodeId zero4 = c.makeConst(0, 4);
    NodeId zero8 = c.makeConst(0, 8);
    int m = c.addBram("m", 10, 8);
    c.setBramPorts(m, rd_addr, zero1, zero4, zero8);
    Simulator sim(c);
    sim.setInput(0, 200);
    sim.evalComb();
    sim.step();
    sim.evalComb();
    EXPECT_EQ(sim.value(c.bramRdData(m)), 0u);
}

TEST(RtlCircuit, ValidationCatchesUnwiredState)
{
    Circuit c("bad");
    c.addReg("r", 8, 0);
    EXPECT_THROW(Simulator sim(c), PanicError);
}

TEST(RtlCircuit, ValidationCatchesUnwiredBram)
{
    Circuit c("bad2");
    c.addBram("m", 16, 8);
    EXPECT_THROW(c.validate(), PanicError);
}

TEST(RtlCircuit, DoubleWiringPanics)
{
    Circuit c("bad3");
    NodeId k = c.makeConst(1, 8);
    int r = c.addReg("r", 8, 0);
    c.setRegNext(r, k);
    EXPECT_THROW(c.setRegNext(r, k), PanicError);
}

TEST(RtlCircuit, ResizeAndConcat)
{
    Circuit c("rs");
    NodeId a = c.addInput("a", 4);
    NodeId wide = c.makeResize(a, 8);
    NodeId narrow = c.makeSlice(a, 1, 0);
    NodeId catd = c.makeConcat(a, a);
    c.addOutput("w", wide);
    Simulator sim(c);
    sim.setInput(0, 0b1010);
    sim.evalComb();
    EXPECT_EQ(sim.value(wide), 0b1010u);
    EXPECT_EQ(sim.value(narrow), 0b10u);
    EXPECT_EQ(sim.value(catd), 0b10101010u);
}

TEST(RtlCircuit, OrReduceEmptyIsZero)
{
    Circuit c("or");
    NodeId r = c.makeOrReduce({});
    Simulator sim(c);
    sim.evalComb();
    EXPECT_EQ(sim.value(r), 0u);
    EXPECT_EQ(c.width(r), 1);
}

TEST(RtlVerilog, EmitsPlausibleModule)
{
    Circuit c("MyUnit");
    NodeId a = c.addInput("a", 8);
    int r = c.addReg("state", 8, 3);
    c.setRegNext(r, c.makeBin(BinOp::Add, c.regOut(r), a));
    int m = c.addBram("mem", 32, 8);
    NodeId zero1 = c.makeConst(0, 1);
    c.setBramPorts(m, c.makeResize(a, 5), zero1, c.makeConst(0, 5),
                   c.makeConst(0, 8));
    c.addOutput("q", c.regOut(r));

    std::string v = rtl::emitVerilog(c);
    EXPECT_NE(v.find("module MyUnit"), std::string::npos);
    EXPECT_NE(v.find("input [7:0] a"), std::string::npos);
    EXPECT_NE(v.find("reg [7:0] r_state;"), std::string::npos);
    EXPECT_NE(v.find("mem_mem [0:31]"), std::string::npos);
    EXPECT_NE(v.find("always @(posedge clock)"), std::string::npos);
    EXPECT_NE(v.find("r_state <= 8'd3;"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    // Balanced structure: every wire is declared once.
    EXPECT_EQ(v.find("wire  n"), std::string::npos); // no empty widths
}

} // namespace
} // namespace rtl
} // namespace fleet
