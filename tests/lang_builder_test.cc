#include <gtest/gtest.h>

#include "lang/builder.h"
#include "test_programs.h"
#include "util/logging.h"

namespace fleet {
namespace lang {
namespace {

TEST(Builder, IdentityProgramShape)
{
    Program p = testprogs::identity();
    EXPECT_EQ(p.name, "Identity");
    EXPECT_EQ(p.inputTokenWidth, 8);
    EXPECT_EQ(p.outputTokenWidth, 8);
    EXPECT_TRUE(p.regs.empty());
    EXPECT_TRUE(p.brams.empty());
    ASSERT_EQ(p.body.size(), 1u);
    EXPECT_TRUE(std::holds_alternative<IfStmt>(p.body[0]->node));
}

TEST(Builder, HistogramProgramShape)
{
    Program p = testprogs::blockFrequencies();
    ASSERT_EQ(p.regs.size(), 2u);
    EXPECT_EQ(p.regs[0].name, "itemCounter");
    EXPECT_EQ(p.regs[0].width, 7);
    EXPECT_EQ(p.regs[1].name, "frequenciesIdx");
    EXPECT_EQ(p.regs[1].width, 9);
    ASSERT_EQ(p.brams.size(), 1u);
    EXPECT_EQ(p.brams[0].elements, 256);
    EXPECT_EQ(p.brams[0].width, 8);
    EXPECT_EQ(p.brams[0].addrWidth, 8);
    EXPECT_EQ(p.body.size(), 3u);
}

TEST(Builder, LiteralWidths)
{
    EXPECT_EQ(Value(0).width(), 1);
    EXPECT_EQ(Value(1).width(), 1);
    EXPECT_EQ(Value(255).width(), 8);
    EXPECT_EQ(Value(256).width(), 9);
    EXPECT_EQ(Value::lit(5, 16).width(), 16);
}

TEST(Builder, LiteralTooWideThrows)
{
    EXPECT_THROW(Value::lit(256, 8), FatalError);
}

TEST(Builder, OperatorWidths)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    EXPECT_EQ((r + 1).width(), 8);
    EXPECT_EQ((r * r).width(), 16);
    EXPECT_EQ((r == 3).width(), 1);
    EXPECT_EQ((r && r).width(), 1);
    EXPECT_EQ((!r).width(), 1);
    EXPECT_EQ((~r).width(), 8);
    EXPECT_EQ(r.slice(3, 0).width(), 4);
    EXPECT_EQ(r.bit(7).width(), 1);
    EXPECT_EQ(cat(r, r).width(), 16);
    EXPECT_EQ(r.resize(12).width(), 12);
    EXPECT_EQ(r.resize(4).width(), 4);
}

TEST(Builder, MuxEqualizesLegWidths)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    Value m = mux(r == 0, 1, r);
    EXPECT_EQ(m.width(), 8);
}

TEST(Builder, SliceOutOfRangeThrows)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    EXPECT_THROW(r.slice(8, 0), FatalError);
    EXPECT_THROW(r.slice(2, 3), FatalError);
}

TEST(Builder, NonLValueAssignThrows)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    EXPECT_THROW(b.assign(r + 1, r), FatalError);
    EXPECT_THROW(b.assign(b.input(), r), FatalError);
}

TEST(Builder, NestedWhileThrows)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    EXPECT_THROW(b.while_(r != 0, [&] {
        b.while_(r != 1, [&] { b.assign(r, r + 1); });
    }),
                 FatalError);
}

TEST(Builder, ElseIfChain)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    b.if_(r == 0, [&] { b.assign(r, 1); })
        .elseIf(r == 1, [&] { b.assign(r, 2); })
        .else_([&] { b.assign(r, 0); });
    Program p = b.finish();
    ASSERT_EQ(p.body.size(), 1u);
    const auto &if_stmt = std::get<IfStmt>(p.body[0]->node);
    EXPECT_EQ(if_stmt.arms.size(), 2u);
    EXPECT_EQ(if_stmt.elseBlock.size(), 1u);
}

TEST(Builder, DoubleElseThrows)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    auto chain = b.if_(r == 0, [&] {});
    chain.else_([&] { b.assign(r, 1); });
    EXPECT_THROW(chain.else_([&] {}), FatalError);
}

TEST(Builder, UseAfterFinishThrows)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    b.assign(r, 1);
    b.finish();
    EXPECT_THROW(b.assign(r, 2), FatalError);
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Builder, BadWidthsThrow)
{
    EXPECT_THROW(ProgramBuilder("t", 0, 8), FatalError);
    EXPECT_THROW(ProgramBuilder("t", 8, 65), FatalError);
    ProgramBuilder b("t", 8, 8);
    EXPECT_THROW(b.reg("r", 0), FatalError);
    EXPECT_THROW(b.reg("r", 65), FatalError);
    EXPECT_THROW(b.reg("r", 4, 16), FatalError); // init does not fit
    EXPECT_THROW(b.bram("m", 0, 8), FatalError);
    EXPECT_THROW(b.vreg("v", 4, 0), FatalError);
}

TEST(Builder, ExprToStringSmoke)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    Bram m = b.bram("m", 16, 8);
    std::string s = exprToString((m[r] + 1).expr());
    EXPECT_NE(s.find("m0["), std::string::npos);
    EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(Builder, ExprEquality)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    Bram m = b.bram("m", 16, 8);
    EXPECT_TRUE(exprEqual(m[r].expr(), m[r].expr()));
    EXPECT_FALSE(exprEqual(m[r].expr(), m[r + 1].expr()));
    EXPECT_TRUE(exprEqual((r + 1).expr(), (r + 1).expr()));
    EXPECT_FALSE(exprEqual((r + 1).expr(), (r - 1).expr()));
}

TEST(Builder, ContainsBramRead)
{
    ProgramBuilder b("t", 8, 8);
    Value r = b.reg("r", 8);
    Bram m = b.bram("m", 16, 8);
    EXPECT_TRUE(containsBramRead((m[r] + 1).expr()));
    EXPECT_TRUE(containsBramRead(mux(r == 0, m[r], Value::lit(0, 8)).expr()));
    EXPECT_FALSE(containsBramRead((r + 1).expr()));
}

} // namespace
} // namespace lang
} // namespace fleet
