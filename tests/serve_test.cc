/**
 * @file
 * Fleet-as-a-service admission and liveness (ISSUE 6). The serving
 * layer's promises are behavioural, not throughput numbers: every
 * ticket completes exactly once (reject, shed, strand, or serve — never
 * a hang), admission policies fire deterministically at the configured
 * depth, blocked submitters wake in FIFO order, and the simulated
 * latency decomposition is bit-identical across PU backends and host
 * thread counts (host wall-time fields excluded — they are observational).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "serve/load_gen.h"
#include "serve/service.h"
#include "sim/simulator.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace serve {
namespace {

BitBuffer
randomStream(Rng &rng, uint64_t bytes)
{
    BitBuffer stream;
    for (uint64_t i = 0; i < bytes; ++i)
        stream.appendBits(rng.next(), 8);
    return stream;
}

BitBuffer
goldenOutput(const lang::Program &program, const BitBuffer &stream)
{
    sim::FunctionalSimulator simulator(program);
    return simulator.run(stream).output;
}

ServiceConfig
smallConfig(system::PuBackend backend = system::PuBackend::Fast,
            int threads = 1)
{
    ServiceConfig config;
    config.session.system.numChannels = 2;
    config.session.system.numThreads = threads;
    config.session.system.backend = backend;
    config.session.system.inputRegionBytes = 4096;
    config.session.numSlots = 4;
    config.session.epochCycles = 512;
    return config;
}

/** Spin until the service's stats satisfy `done` (background mode). */
template <typename Pred>
void
awaitStats(FleetService &service, Pred done)
{
    for (int spin = 0; spin < 100000; ++spin) {
        if (done(service.stats()))
            return;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    FAIL() << "stats predicate never satisfied";
}

// ---------------------------------------------------------------------------
// Tickets and end-to-end serving
// ---------------------------------------------------------------------------

TEST(ServeTicket, InvalidAndUnreadyTicketsThrow)
{
    JobTicket invalid;
    EXPECT_FALSE(invalid.valid());
    EXPECT_FALSE(invalid.ready());
    EXPECT_THROW(invalid.report(), StatusError);
    EXPECT_THROW(invalid.wait(), StatusError);

    auto program = testprogs::blockFrequencies(32);
    ServiceConfig config = smallConfig();
    config.backgroundThread = false;
    FleetService service(program, config);
    Rng rng(7);
    JobTicket ticket = service.submit(randomStream(rng, 64));
    EXPECT_TRUE(ticket.valid());
    EXPECT_FALSE(ticket.ready());
    EXPECT_THROW(ticket.report(), StatusError); // not served yet
    while (service.pump()) {
    }
    EXPECT_TRUE(ticket.ready());
    EXPECT_TRUE(ticket.report().ok()) << ticket.report().status.toString();
    service.shutdown();
}

TEST(ServeService, BackgroundThreadServesConcurrentClients)
{
    // Four client threads, 10 jobs each, against the background service
    // thread — every ticket must complete with the functional
    // simulator's output for exactly its own stream.
    auto program = testprogs::blockFrequencies(32);
    FleetService service(program, smallConfig());

    constexpr int kClients = 4, kJobsPerClient = 10;
    std::vector<std::vector<BitBuffer>> streams(kClients);
    std::vector<std::vector<JobTicket>> tickets(kClients);
    for (int c = 0; c < kClients; ++c) {
        Rng rng(100 + c);
        for (int j = 0; j < kJobsPerClient; ++j)
            streams[c].push_back(randomStream(rng, 40 + rng.nextBelow(200)));
    }
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            for (const auto &stream : streams[c])
                tickets[c].push_back(service.submit(stream));
        });
    for (auto &client : clients)
        client.join();

    for (int c = 0; c < kClients; ++c)
        for (int j = 0; j < kJobsPerClient; ++j) {
            const runtime::JobReport &report = tickets[c][j].wait();
            ASSERT_TRUE(report.ok())
                << "client " << c << " job " << j << ": "
                << report.status.toString();
            EXPECT_TRUE(report.output ==
                        goldenOutput(program, streams[c][j]))
                << "client " << c << " job " << j;
        }
    service.shutdown();
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, uint64_t(kClients * kJobsPerClient));
    EXPECT_EQ(stats.completed, uint64_t(kClients * kJobsPerClient));
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.queueDepth, 0u);
    EXPECT_TRUE(service.runReport().allOk())
        << service.runReport().summary();
}

// ---------------------------------------------------------------------------
// Admission edge cases
// ---------------------------------------------------------------------------

TEST(ServeAdmission, SubmitAfterShutdownReturnsCancelled)
{
    auto program = testprogs::blockFrequencies(32);
    FleetService service(program, smallConfig());
    Rng rng(3);
    JobTicket before = service.submit(randomStream(rng, 64));
    service.shutdown();
    EXPECT_TRUE(before.ready());
    EXPECT_TRUE(before.report().ok());

    JobTicket after = service.submit(randomStream(rng, 64));
    ASSERT_TRUE(after.valid());
    ASSERT_TRUE(after.ready()); // refused synchronously
    EXPECT_EQ(after.report().status.code, StatusCode::Cancelled);
    EXPECT_FALSE(statusCodeTransient(after.report().status.code));
    EXPECT_EQ(service.stats().submitted, 2u);
    EXPECT_EQ(service.stats().admitted, 1u);

    // shutdown is idempotent.
    service.shutdown();
}

TEST(ServeAdmission, RejectFiresDeterministicallyAtConfiguredDepth)
{
    // Paced mode, never pumped: the wait queue fills to exactly
    // maxQueueDepth and every further submit is refused with
    // ResourceExhausted — deterministically, no timing involved.
    auto program = testprogs::blockFrequencies(32);
    ServiceConfig config = smallConfig();
    config.backgroundThread = false;
    config.maxQueueDepth = 5;
    config.policy = AdmissionPolicy::Reject;
    FleetService service(program, config);

    Rng rng(9);
    std::vector<JobTicket> tickets;
    for (int j = 0; j < 9; ++j)
        tickets.push_back(service.submit(randomStream(rng, 64)));

    for (int j = 0; j < 9; ++j) {
        if (j < 5) {
            EXPECT_FALSE(tickets[j].ready()) << "job " << j;
        } else {
            ASSERT_TRUE(tickets[j].ready()) << "job " << j;
            EXPECT_EQ(tickets[j].report().status.code,
                      StatusCode::ResourceExhausted)
                << "job " << j;
        }
    }
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 9u);
    EXPECT_EQ(stats.admitted, 5u);
    EXPECT_EQ(stats.rejected, 4u);
    EXPECT_EQ(stats.queueDepth, 5u);
    EXPECT_TRUE(stats.saturated);

    // The admitted five still serve to completion.
    service.shutdown();
    for (int j = 0; j < 5; ++j)
        EXPECT_TRUE(tickets[j].report().ok()) << "job " << j;
    EXPECT_EQ(service.stats().completed, 5u);
}

TEST(ServeAdmission, ShedOldestDropsTheOldestWaitingJob)
{
    auto program = testprogs::blockFrequencies(32);
    ServiceConfig config = smallConfig();
    config.backgroundThread = false;
    config.maxQueueDepth = 2;
    config.policy = AdmissionPolicy::ShedOldest;
    FleetService service(program, config);

    Rng rng(21);
    JobTicket a = service.submit(randomStream(rng, 64));
    JobTicket b = service.submit(randomStream(rng, 64));
    JobTicket c = service.submit(randomStream(rng, 64)); // sheds a

    ASSERT_TRUE(a.ready());
    EXPECT_EQ(a.report().status.code, StatusCode::Shed);
    EXPECT_FALSE(statusCodeTransient(a.report().status.code));
    EXPECT_FALSE(b.ready());
    EXPECT_FALSE(c.ready());
    EXPECT_EQ(service.stats().shed, 1u);
    EXPECT_EQ(service.stats().queueDepth, 2u);

    service.shutdown();
    EXPECT_TRUE(b.report().ok());
    EXPECT_TRUE(c.report().ok());
}

TEST(ServeAdmission, BlockedSubmittersWakeInFifoOrder)
{
    // Paced mode with a depth-1 queue: stage three submitter threads
    // one at a time (waiting for blockedSubmitters to tick up), so the
    // park order is known exactly; FIFO wake then requires their jobs
    // to take strictly increasing session job ids.
    auto program = testprogs::blockFrequencies(32);
    ServiceConfig config = smallConfig();
    config.backgroundThread = false;
    config.maxQueueDepth = 1;
    config.policy = AdmissionPolicy::Block;
    FleetService service(program, config);

    Rng rng(31);
    JobTicket filler = service.submit(randomStream(rng, 64));
    EXPECT_EQ(service.stats().queueDepth, 1u);

    constexpr int kBlocked = 3;
    std::vector<JobTicket> tickets(kBlocked);
    std::vector<std::thread> submitters;
    std::vector<BitBuffer> streams;
    for (int t = 0; t < kBlocked; ++t)
        streams.push_back(randomStream(rng, 64 + 16 * t));
    for (int t = 0; t < kBlocked; ++t) {
        submitters.emplace_back(
            [&, t] { tickets[t] = service.submit(streams[t]); });
        awaitStats(service, [&](const ServiceStats &s) {
            return s.blockedSubmitters == uint64_t(t + 1);
        });
    }

    // Pump on this thread until everything drains; each round frees
    // queue space and must wake exactly the head-of-line submitter.
    while (service.pump() || service.stats().blockedSubmitters > 0) {
    }
    for (auto &submitter : submitters)
        submitter.join();
    service.shutdown();

    ASSERT_TRUE(filler.report().ok());
    std::vector<uint64_t> ids;
    for (int t = 0; t < kBlocked; ++t) {
        ASSERT_TRUE(tickets[t].valid());
        ASSERT_TRUE(tickets[t].ready());
        ASSERT_TRUE(tickets[t].report().ok())
            << tickets[t].report().status.toString();
        ids.push_back(tickets[t].report().jobId);
    }
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()))
        << "blocked submitters admitted out of FIFO order: " << ids[0]
        << ", " << ids[1] << ", " << ids[2];
    EXPECT_EQ(service.stats().blockedSubmitters, 0u);
}

TEST(ServeAdmission, ShutdownReleasesBlockedSubmitters)
{
    // A submitter parked on a full queue must not hang shutdown: it is
    // released with Cancelled and the queue drains normally.
    auto program = testprogs::blockFrequencies(32);
    ServiceConfig config = smallConfig();
    config.maxQueueDepth = 1;
    config.policy = AdmissionPolicy::Block;
    config.backgroundThread = false;
    FleetService service(program, config);

    Rng rng(41);
    JobTicket filler = service.submit(randomStream(rng, 64));
    JobTicket blocked;
    std::thread submitter(
        [&] { blocked = service.submit(randomStream(rng, 64)); });
    awaitStats(service, [](const ServiceStats &s) {
        return s.blockedSubmitters == 1;
    });

    service.shutdown();
    submitter.join();
    ASSERT_TRUE(blocked.valid());
    ASSERT_TRUE(blocked.ready());
    EXPECT_EQ(blocked.report().status.code, StatusCode::Cancelled);
    EXPECT_TRUE(filler.report().ok());
}

// ---------------------------------------------------------------------------
// Halted-channel liveness
// ---------------------------------------------------------------------------

namespace {

/** The deadlock recipe from the watchdog suite: a threshold filter
 * under blocking output addressing; divergent emit rates wedge the
 * channel. */
lang::Program
thresholdFilter()
{
    using lang::Value;
    lang::ProgramBuilder b("filter", 8, 8);
    Value threshold = b.reg("threshold", 8, 0);
    Value configured = b.reg("configured", 1, 0);
    b.if_(!b.streamFinished(), [&] {
        b.if_(configured == 0, [&] {
            b.assign(threshold, b.input());
            b.assign(configured, Value::lit(1, 1));
        }).elseIf(b.input() < threshold, [&] { b.emit(b.input()); });
    });
    return b.finish();
}

BitBuffer
filterStream(Rng &rng, uint8_t threshold, uint64_t tokens)
{
    BitBuffer stream;
    stream.appendBits(threshold, 8);
    for (uint64_t t = 0; t < tokens; ++t)
        stream.appendBits(rng.next(), 8);
    return stream;
}

} // namespace

TEST(ServeLiveness, HaltedChannelCompletesStrandedTicketsWithoutHang)
{
    // One channel, wedged by the watchdog recipe, with far more jobs
    // submitted than the service will ever feed the session: every
    // ticket — in flight, queued in the session, or still in the
    // service's wait queue — must complete with a containment status;
    // wait() must never hang. Background thread: this is the true
    // async-liveness test.
    ServiceConfig config;
    config.session.system.numChannels = 1;
    config.session.system.numThreads = 1;
    config.session.system.outputCtrl.blockingAddressing = true;
    config.session.system.watchdogCycles = 20000;
    config.session.system.inputRegionBytes = 64 * 1024;
    config.session.numSlots = 4;
    config.session.epochCycles = 2048;
    config.maxQueueDepth = 64;
    config.policy = AdmissionPolicy::Reject;
    FleetService service(thresholdFilter(), config);

    Rng rng(11);
    std::vector<JobTicket> tickets;
    // Divergent-rate mix wedges the channel under blocking addressing.
    for (int j = 0; j < 4; ++j)
        tickets.push_back(service.submit(
            filterStream(rng, j % 2 == 0 ? 2 : 250, 40000)));
    // Healthy work queued behind the wedge — it can never be served.
    for (int j = 0; j < 16; ++j)
        tickets.push_back(
            service.submit(filterStream(rng, 128, 1000)));

    int stranded = 0;
    for (size_t j = 0; j < tickets.size(); ++j) {
        const runtime::JobReport &report = tickets[j].wait(); // no hang
        EXPECT_FALSE(report.ok()) << "job " << j
                                  << " served on a wedged channel?";
        if (report.status.code == StatusCode::WatchdogStall ||
            report.status.code == StatusCode::InvalidState)
            ++stranded;
    }
    EXPECT_EQ(stranded, int(tickets.size()));
    service.shutdown();
    EXPECT_EQ(service.stats().completed + service.stats().rejected +
                  service.stats().shed,
              uint64_t(tickets.size()));
    EXPECT_EQ(service.stats().liveSlots, 0);
}

// ---------------------------------------------------------------------------
// Latency decomposition and its determinism fence
// ---------------------------------------------------------------------------

TEST(ServeLatency, DecompositionIsOrderedAndQueueWaitShowsUnderLoad)
{
    auto program = testprogs::blockFrequencies(32);
    ServiceConfig config = smallConfig();
    config.backgroundThread = false;
    config.maxQueueDepth = 64;
    FleetService service(program, config);

    Rng rng(55);
    std::vector<JobTicket> tickets;
    for (int j = 0; j < 24; ++j) // deep queue over 4 slots
        tickets.push_back(
            service.submit(randomStream(rng, 60 + rng.nextBelow(120))));
    while (service.pump()) {
    }
    service.shutdown();

    uint64_t total_wait = 0;
    for (size_t j = 0; j < tickets.size(); ++j) {
        const runtime::JobReport &report = tickets[j].report();
        ASSERT_TRUE(report.ok()) << "job " << j;
        EXPECT_LE(report.enqueueCycle, report.admittedCycle)
            << "job " << j;
        EXPECT_LE(report.admittedCycle, report.completedCycle)
            << "job " << j;
        EXPECT_GE(report.totalCycles(), report.queueWaitCycles())
            << "job " << j;
        EXPECT_GT(report.serviceCycles(), 0u) << "job " << j;
        EXPECT_GT(report.hostDoneNs, 0u) << "job " << j;
        EXPECT_GE(report.hostDoneNs, report.hostSubmitNs)
            << "job " << j;
        total_wait += report.queueWaitCycles();
    }
    // 24 jobs over 4 slots: the tail of the queue must actually wait.
    EXPECT_GT(total_wait, 0u);
}

TEST(ServeLatency, SimulatedLatenciesBitIdenticalAcrossBackendsAndThreads)
{
    // The serving-layer extension of the runtime determinism fence:
    // identical open-loop schedules must produce identical simulated
    // latency tuples on every backend and host thread count. Host
    // wall-time fields are excluded (JobReport::operator== omits them).
    auto program = testprogs::blockFrequencies(32);
    LoadSpec spec;
    spec.jobs = 20;
    spec.meanInterarrivalCycles = 400;
    spec.minJobBytes = 48;
    spec.maxJobBytes = 256;
    auto arrivals = makeArrivals(spec);

    auto runSchedule = [&](system::PuBackend backend, int threads) {
        ServiceConfig config = smallConfig(backend, threads);
        config.backgroundThread = false;
        config.maxQueueDepth = 64;
        FleetService service(program, config);
        Rng rng(77); // same streams every variant
        size_t next = 0;
        for (;;) {
            uint64_t now = service.stats().simCycles;
            while (next < arrivals.size() &&
                   arrivals[next].cycle <= now) {
                service.submitAt(
                    randomStream(rng, arrivals[next].streamBytes),
                    arrivals[next].cycle);
                ++next;
            }
            bool work = service.pump();
            if (!work) {
                if (next >= arrivals.size())
                    break;
                // Idle gap: release the next arrival when simulated
                // time cannot reach it (single deterministic warp).
                service.submitAt(
                    randomStream(rng, arrivals[next].streamBytes),
                    now);
                ++next;
            }
        }
        service.shutdown();
        return service.session().reports();
    };

    auto reference = runSchedule(system::PuBackend::Fast, 1);
    ASSERT_EQ(reference.size(), spec.jobs);
    for (const auto &report : reference)
        ASSERT_TRUE(report.ok()) << report.status.toString();

    struct Variant
    {
        system::PuBackend backend;
        int threads;
        const char *label;
    };
    const Variant variants[] = {
        {system::PuBackend::Fast, 4, "Fast/4"},
        {system::PuBackend::RtlTape, 1, "RtlTape/1"},
        {system::PuBackend::Rtl, 4, "RtlBatch/4"},
    };
    for (const Variant &variant : variants) {
        auto reports = runSchedule(variant.backend, variant.threads);
        ASSERT_EQ(reports.size(), reference.size()) << variant.label;
        for (size_t j = 0; j < reports.size(); ++j)
            ASSERT_TRUE(reports[j] == reference[j])
                << variant.label << ": job " << j
                << " diverges (simulated latency fence)";
    }
}

// ---------------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------------

TEST(ServeLoadGen, SchedulesAreDeterministicSortedAndShaped)
{
    LoadSpec spec;
    spec.jobs = 500;
    spec.meanInterarrivalCycles = 200;
    auto a = makeArrivals(spec);
    auto b = makeArrivals(spec);
    ASSERT_EQ(a.size(), 500u);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(),
                           [](const Arrival &x, const Arrival &y) {
                               return x.cycle == y.cycle &&
                                      x.streamBytes == y.streamBytes;
                           }));
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].cycle, a[i - 1].cycle);
    for (const auto &arrival : a) {
        EXPECT_GE(arrival.streamBytes, spec.minJobBytes);
        EXPECT_LE(arrival.streamBytes, spec.maxJobBytes);
    }
    // Mean interarrival within 15% of the configured mean.
    double mean = double(a.back().cycle) / double(a.size());
    EXPECT_NEAR(mean, spec.meanInterarrivalCycles,
                0.15 * spec.meanInterarrivalCycles);

    spec.seed ^= 1;
    auto c = makeArrivals(spec);
    EXPECT_FALSE(std::equal(c.begin(), c.end(), a.begin(),
                            [](const Arrival &x, const Arrival &y) {
                                return x.cycle == y.cycle;
                            }))
        << "different seeds produced an identical schedule";

    // Bursty keeps the window mean but with far burstier gaps: its
    // maximum gap should dwarf Poisson's minimum gap regime.
    LoadSpec bursty = spec;
    bursty.process = ArrivalProcess::Bursty;
    auto d = makeArrivals(bursty);
    ASSERT_EQ(d.size(), 500u);
    double bursty_mean = double(d.back().cycle) / double(d.size());
    EXPECT_NEAR(bursty_mean, spec.meanInterarrivalCycles,
                0.35 * spec.meanInterarrivalCycles);

    LoadSpec bad = spec;
    bad.process = ArrivalProcess::Bursty;
    bad.burstBoost = 8.0;
    bad.burstDuty = 0.25; // duty*boost = 2: infeasible
    EXPECT_THROW(makeArrivals(bad), PanicError);
}

// ---------------------------------------------------------------------------
// Multi-tenant serving (ISSUE 8): per-tenant conservation and the
// scheduler-choice determinism fence.
// ---------------------------------------------------------------------------

/** The TenantStats conservation law: every submit() sits in exactly
 * one terminal or live bucket at any instant. */
void
expectTenantConservation(const ServiceStats &stats, const char *where)
{
    for (const auto &entry : stats.tenants) {
        const TenantStats &t = entry.second;
        EXPECT_EQ(t.submitted, t.rejected + t.cancelled + t.shed +
                                   t.completed + t.waiting +
                                   t.retryBacklog + t.inSession)
            << where << ": tenant " << entry.first
            << " leaks jobs (submitted=" << t.submitted
            << " rejected=" << t.rejected << " cancelled=" << t.cancelled
            << " shed=" << t.shed << " completed=" << t.completed
            << " waiting=" << t.waiting
            << " retryBacklog=" << t.retryBacklog
            << " inSession=" << t.inSession << ")";
        EXPECT_LE(t.admitted, t.submitted);
    }
}

TEST(ServeTenants, ConservationHoldsAtEveryPumpUnderFaultStorm)
{
    // Three tenants share a deliberately hostile service: a seeded
    // fault storm (stream truncation => transient retries), tight
    // deadlines on one tenant, a shallow ShedOldest admission queue,
    // and WFQ scheduling. The per-tenant conservation law must hold
    // after every single submit and pump step, and close exactly at
    // shutdown.
    auto program = testprogs::blockFrequencies(32);
    ServiceConfig config = smallConfig(system::PuBackend::Fast, 2);
    config.backgroundThread = false;
    config.maxQueueDepth = 6;
    config.policy = AdmissionPolicy::ShedOldest;
    config.retry.maxAttempts = 3;
    config.retry.backoffCycles = 256;
    config.session.scheduler.policy = runtime::SchedulerPolicy::Wfq;
    config.session.scheduler.weights = {{0, 1}, {1, 4}, {2, 2}};
    config.session.system.faults.seed = 5;
    config.session.system.faults.truncatePermille = 250;
    FleetService service(program, config);

    Rng rng(606);
    const int waves = 10, per_wave = 6;
    for (int wave = 0; wave < waves; ++wave) {
        for (int j = 0; j < per_wave; ++j) {
            SubmitOptions options;
            options.tag.tenant = static_cast<uint32_t>(rng.nextBelow(3));
            options.tag.priority =
                static_cast<uint32_t>(rng.nextBelow(2));
            if (options.tag.tenant == 2)
                options.deadlineCycles = 4000 + rng.nextBelow(4000);
            service.submit(randomStream(rng, 40 + rng.nextBelow(160)),
                           options);
            expectTenantConservation(service.stats(), "after submit");
        }
        for (int round = 0; round < 3; ++round) {
            service.pump();
            expectTenantConservation(service.stats(), "after pump");
        }
    }
    while (service.pump())
        expectTenantConservation(service.stats(), "during drain");
    service.shutdown();

    // One late submit lands in the cancelled bucket, and the law still
    // closes with every live bucket empty.
    SubmitOptions late;
    late.tag.tenant = 1;
    JobTicket refused =
        service.submit(randomStream(rng, 32), late);
    EXPECT_EQ(refused.report().status.code, StatusCode::Cancelled);
    ServiceStats final_stats = service.stats();
    expectTenantConservation(final_stats, "after shutdown");
    uint64_t total_submitted = 0, total_retries = 0;
    for (const auto &entry : final_stats.tenants) {
        const TenantStats &t = entry.second;
        EXPECT_EQ(t.waiting, 0u);
        EXPECT_EQ(t.retryBacklog, 0u);
        EXPECT_EQ(t.inSession, 0u);
        total_submitted += t.submitted;
        total_retries += t.retries;
    }
    EXPECT_EQ(total_submitted,
              static_cast<uint64_t>(waves * per_wave) + 1);
    EXPECT_GT(total_retries, 0u)
        << "the fault storm should have provoked at least one retry";
    // Completed tenants carry the cycle breakdown.
    for (const auto &entry : final_stats.tenants) {
        if (entry.second.completed > 0) {
            EXPECT_GT(entry.second.serviceCycles, 0u)
                << "tenant " << entry.first;
        }
    }
}

TEST(ServeTenants, SchedulerChoiceIsDeterministicAcrossHosts)
{
    // The serve-layer extension of the scheduler fence: one tagged
    // admitted sequence, replayed per policy across backends and
    // thread counts, must yield identical per-job reports — and
    // distinct policies genuinely reorder service (FIFO vs WFQ differ
    // under a flood).
    auto program = testprogs::blockFrequencies(32);
    Rng streams_rng(88);
    std::vector<BitBuffer> streams;
    std::vector<runtime::JobTag> tags;
    for (int j = 0; j < 24; ++j) {
        streams.push_back(
            randomStream(streams_rng, 60 + streams_rng.nextBelow(120)));
        runtime::JobTag tag;
        tag.tenant = static_cast<uint32_t>(j < 18 ? 0 : 1);
        tags.push_back(tag);
    }

    auto runPolicy = [&](runtime::SchedulerPolicy policy,
                         system::PuBackend backend, int threads) {
        ServiceConfig config = smallConfig(backend, threads);
        config.backgroundThread = false;
        config.maxQueueDepth = 64;
        config.session.scheduler.policy = policy;
        config.session.scheduler.weights = {{0, 1}, {1, 4}};
        FleetService service(program, config);
        for (size_t j = 0; j < streams.size(); ++j) {
            SubmitOptions options;
            options.tag = tags[j];
            service.submitAt(streams[j], 0, options);
        }
        service.shutdown();
        return service.session().reports();
    };

    const runtime::SchedulerPolicy policies[] = {
        runtime::SchedulerPolicy::Fifo, runtime::SchedulerPolicy::Wfq};
    std::vector<std::vector<runtime::JobReport>> per_policy;
    for (runtime::SchedulerPolicy policy : policies) {
        auto base = runPolicy(policy, system::PuBackend::Fast, 1);
        ASSERT_EQ(base.size(), streams.size());
        for (const auto &report : base)
            ASSERT_TRUE(report.ok()) << report.status.toString();
        auto fast4 = runPolicy(policy, system::PuBackend::Fast, 4);
        auto tape1 = runPolicy(policy, system::PuBackend::RtlTape, 1);
        for (size_t j = 0; j < base.size(); ++j) {
            ASSERT_TRUE(fast4[j] == base[j])
                << runtime::schedulerPolicyName(policy) << " Fast/4 job "
                << j;
            ASSERT_TRUE(tape1[j] == base[j])
                << runtime::schedulerPolicyName(policy)
                << " RtlTape/1 job " << j;
        }
        per_policy.push_back(std::move(base));
    }
    // The crosscheck: FIFO and WFQ must *disagree* somewhere on this
    // flood-plus-minority mix, or the policy plumbing is inert.
    bool any_difference = false;
    for (size_t j = 0; j < streams.size(); ++j)
        any_difference |= !(per_policy[0][j] == per_policy[1][j]);
    EXPECT_TRUE(any_difference)
        << "FIFO and WFQ produced identical schedules on a mix that "
           "should separate them";
}

} // namespace
} // namespace serve
} // namespace fleet
