#include <gtest/gtest.h>

#include "apps/bloom.h"
#include "apps/dtree.h"
#include "apps/intcode.h"
#include "apps/regex.h"
#include "apps/sw.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace {

// ---------------------------------------------------------------------------
// Full-system configuration grid: every (channels, burst registers,
// backend, blocking-mode) combination must deliver bit-correct outputs.
// ---------------------------------------------------------------------------

struct SystemGridParam
{
    int channels;
    int burstRegs;
    system::PuBackend backend;
    bool blockingOutput;
    int bufferBursts = 1;
};

class SystemGrid : public ::testing::TestWithParam<SystemGridParam>
{
};

TEST_P(SystemGrid, HistogramCorrectEverywhere)
{
    auto param = GetParam();
    auto program = testprogs::blockFrequencies(32);
    Rng rng(31);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < param.channels * 3; ++p) {
        BitBuffer stream;
        for (int t = 0; t < 32 * 4; ++t)
            stream.appendBits(rng.nextBelow(64), 8);
        streams.push_back(std::move(stream));
    }

    system::SystemConfig config;
    config.numChannels = param.channels;
    config.inputCtrl.numBurstRegs = param.burstRegs;
    config.outputCtrl.numBurstRegs = param.burstRegs;
    config.outputCtrl.blockingAddressing = param.blockingOutput;
    config.inputCtrl.bufferBursts = param.bufferBursts;
    config.outputCtrl.bufferBursts = param.bufferBursts;
    config.backend = param.backend;
    config.dram.readLatency = 25;

    system::FleetSystem fleet_system(program, config, streams);
    fleet_system.run();

    sim::FunctionalSimulator functional(program);
    for (size_t p = 0; p < streams.size(); ++p) {
        ASSERT_TRUE(fleet_system.output(p) ==
                    functional.run(streams[p]).output)
            << "PU " << p;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystemGrid,
    ::testing::Values(
        SystemGridParam{1, 1, system::PuBackend::Fast, false},
        SystemGridParam{1, 16, system::PuBackend::Fast, false},
        SystemGridParam{2, 4, system::PuBackend::Fast, false},
        SystemGridParam{4, 16, system::PuBackend::Fast, false},
        SystemGridParam{2, 16, system::PuBackend::Fast, true},
        SystemGridParam{1, 2, system::PuBackend::Rtl, false},
        SystemGridParam{2, 16, system::PuBackend::Rtl, true},
        SystemGridParam{2, 8, system::PuBackend::Fast, false, 2},
        SystemGridParam{1, 16, system::PuBackend::Fast, false, 4}),
    [](const auto &info) {
        const auto &p = info.param;
        return "ch" + std::to_string(p.channels) + "_r" +
               std::to_string(p.burstRegs) + "_" +
               (p.backend == system::PuBackend::Rtl ? "rtl" : "fast") +
               (p.blockingOutput ? "_blocking" : "_nonblocking") + "_buf" +
               std::to_string(p.bufferBursts);
    });

// ---------------------------------------------------------------------------
// Application parameter sweeps: the units are generators, so parameter
// variants must stay golden-correct.
// ---------------------------------------------------------------------------

class SwLengths : public ::testing::TestWithParam<int>
{
};

TEST_P(SwLengths, GoldenAcrossTargetLengths)
{
    apps::SwParams params;
    params.targetLen = GetParam();
    apps::SwApp app(params);
    Rng rng(41);
    BitBuffer stream = app.generateStream(rng, 3000);
    sim::FunctionalSimulator simulator(app.program());
    EXPECT_TRUE(simulator.run(stream).output == app.golden(stream));
}

INSTANTIATE_TEST_SUITE_P(Lengths, SwLengths,
                         ::testing::Values(4, 8, 16, 24));

class BloomShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(BloomShapes, GoldenAcrossFilterShapes)
{
    auto [block, bits, hashes] = GetParam();
    apps::BloomParams params;
    params.blockItems = block;
    params.filterBits = bits;
    params.numHashes = hashes;
    apps::BloomApp app(params);
    Rng rng(43);
    BitBuffer stream = app.generateStream(rng, uint64_t(block) * 4 * 2);
    sim::FunctionalSimulator simulator(app.program());
    EXPECT_TRUE(simulator.run(stream).output == app.golden(stream));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BloomShapes,
    ::testing::Values(std::make_tuple(64, 1024, 4),
                      std::make_tuple(512, 4096, 8),
                      std::make_tuple(128, 8192, 12),
                      std::make_tuple(256, 2048, 2)));

class IntcodeRanges : public ::testing::TestWithParam<int>
{
};

TEST_P(IntcodeRanges, GoldenAndRoundTripAcrossRanges)
{
    apps::IntcodeApp app(apps::IntcodeParams{GetParam()});
    Rng rng(47);
    BitBuffer stream = app.generateStream(rng, 2048);
    sim::FunctionalSimulator simulator(app.program());
    BitBuffer encoded = simulator.run(stream).output;
    ASSERT_TRUE(encoded == app.golden(stream));
    auto decoded = apps::IntcodeApp::decode(encoded);
    uint64_t count = stream.sizeBits() / 32;
    ASSERT_EQ(decoded.size(), count);
    for (uint64_t i = 0; i < count; ++i)
        ASSERT_EQ(decoded[i], stream.readBits(i * 32, 32));
}

INSTANTIATE_TEST_SUITE_P(Ranges, IntcodeRanges,
                         ::testing::Values(1, 5, 10, 15, 20, 25, 31, 32));

class DtreeShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(DtreeShapes, GoldenAcrossEnsembleShapes)
{
    auto [trees, depth, features] = GetParam();
    apps::DtreeParams params;
    params.genTrees = trees;
    params.genDepth = depth;
    params.genFeatures = features;
    apps::DtreeApp app(params);
    Rng rng(53);
    BitBuffer stream = app.generateStream(rng, 4000);
    sim::FunctionalSimulator simulator(app.program());
    EXPECT_TRUE(simulator.run(stream).output == app.golden(stream));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DtreeShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(2, 8, 4),
                      std::make_tuple(16, 5, 12),
                      std::make_tuple(8, 3, 64)));

class RegexPatterns : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RegexPatterns, GoldenAcrossPatterns)
{
    apps::RegexApp app(apps::RegexParams{GetParam()});
    Rng rng(59);
    BitBuffer stream = app.generateStream(rng, 2500);
    sim::FunctionalSimulator simulator(app.program());
    EXPECT_TRUE(simulator.run(stream).output == app.golden(stream));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RegexPatterns,
    ::testing::Values("[\\w.+-]+@[\\w.-]+\\.[\\w.-]+", "warning",
                      "(for|from) user", "fail(ed)?", "[a-z]+@[a-z]+",
                      "a(b|c)*d?e"));

} // namespace
} // namespace fleet
