/**
 * @file
 * Fault-injection layer (ISSUE 2): determinism across host thread
 * counts, timing-only fault classes leaving outputs untouched, stream
 * truncation surfacing as StreamTruncated with whole-token partial
 * coverage, parity errors containing to the affected PU, and disabled
 * plans being bit-identical to fault-free runs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/registry.h"
#include "fault/fault.h"
#include "runtime/session.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "test_programs.h"
#include "trace/taxonomy.h"
#include "util/rng.h"

namespace fleet {
namespace system {
namespace {

std::vector<BitBuffer>
randomStreams(int count, int bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < count; ++p) {
        BitBuffer s;
        for (int i = 0; i < bytes; ++i)
            s.appendBits(rng.next(), 8);
        streams.push_back(std::move(s));
    }
    return streams;
}

SystemConfig
faultConfig(const fault::FaultPlan &plan, int threads)
{
    SystemConfig config;
    config.numChannels = 3; // Uneven PU division across channels.
    config.numThreads = threads;
    config.faults = plan;
    return config;
}

TEST(FaultInjection, ReportDeterministicAcrossThreadCounts)
{
    // The same seed and fault plan must produce the same RunReport —
    // and the same outputs and cycle counts — at every host thread
    // count. Every fault decision is a pure hash, so this holds by
    // construction; this test is the regression fence.
    auto plan = fault::FaultPlan::fromSeed(0xf1ee7);
    auto program = testprogs::blockFrequencies(32);
    auto streams = randomStreams(7, 1024, 11);

    FleetSystem serial(program, faultConfig(plan, 1), streams);
    const RunReport serial_report = serial.run();
    FleetSystem dual(program, faultConfig(plan, 2), streams);
    const RunReport dual_report = dual.run();
    FleetSystem automatic(program, faultConfig(plan, 0), streams);
    const RunReport auto_report = automatic.run();

    EXPECT_TRUE(serial_report == dual_report);
    EXPECT_TRUE(serial_report == auto_report);
    EXPECT_EQ(serial.stats().cycles, dual.stats().cycles);
    EXPECT_EQ(serial.stats().cycles, automatic.stats().cycles);
    for (int p = 0; p < serial.numPus(); ++p) {
        EXPECT_TRUE(serial.output(p) == dual.output(p)) << "PU " << p;
        EXPECT_TRUE(serial.output(p) == automatic.output(p)) << "PU " << p;
    }
}

TEST(FaultInjection, TimingFaultsChangeCyclesNotOutputs)
{
    // Latency spikes and backpressure windows perturb *when* data
    // moves, never *what* moves: outputs stay bit-identical to the
    // fault-free run and the run still completes cleanly.
    fault::FaultPlan plan;
    plan.seed = 77;
    plan.latencySpikePermille = 200; // 20% of reads +400 cycles.
    plan.backpressurePermille = 300; // 30% of windows stall.
    plan.backpressureWindow = 512;
    plan.backpressureDuration = 128;

    auto program = testprogs::blockFrequencies(32);
    auto streams = randomStreams(6, 2048, 12);

    SystemConfig clean_config;
    clean_config.numChannels = 3;
    FleetSystem clean(program, clean_config, streams);
    const RunReport &clean_report = clean.run();
    ASSERT_TRUE(clean_report.allOk());

    FleetSystem faulty(program, faultConfig(plan, 0), streams);
    const RunReport &faulty_report = faulty.run();
    EXPECT_TRUE(faulty_report.allOk());
    EXPECT_EQ(faulty_report.truncatedPuCount(), 0);
    EXPECT_GT(faulty.stats().cycles, clean.stats().cycles)
        << "injected stalls should cost cycles";
    for (int p = 0; p < clean.numPus(); ++p)
        EXPECT_TRUE(clean.output(p) == faulty.output(p)) << "PU " << p;
}

TEST(FaultInjection, TruncatedStreamsReportedWithPartialOutputs)
{
    // Force truncation on every PU: each completes with a
    // StreamTruncated outcome, and its output equals the functional
    // simulation of exactly the kept whole-token prefix.
    fault::FaultPlan plan;
    plan.seed = 31337;
    plan.truncatePermille = 1000;

    auto program = testprogs::streamSum(8, 32);
    auto streams = randomStreams(5, 600, 13);

    FleetSystem fleet(program, faultConfig(plan, 0), streams);
    const RunReport &report = fleet.run();
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.truncatedPuCount(), fleet.numPus());

    sim::FunctionalSimulator functional(program);
    for (int p = 0; p < fleet.numPus(); ++p) {
        ASSERT_EQ(report.pus[p].status.code, StatusCode::StreamTruncated)
            << "PU " << p;
        uint64_t tokens = streams[p].sizeBits() / 8;
        uint64_t kept = fault::truncatedStreamTokens(plan, p, tokens);
        ASSERT_LT(kept, tokens) << "PU " << p;
        ASSERT_GE(kept, 1u) << "PU " << p;
        BitBuffer prefix = streams[p];
        prefix.resizeBits(kept * 8);
        auto golden = functional.run(prefix);
        EXPECT_TRUE(fleet.output(p) == golden.output) << "PU " << p;
    }
}

TEST(FaultInjection, ParityErrorContainsToAffectedPu)
{
    // Corrupted read beats are caught by the input controller's parity
    // check; the affected PU is quarantined while its channel-mates
    // complete with correct, fault-free-identical outputs.
    fault::FaultPlan plan;
    plan.seed = 4242;
    plan.corruptBeatPerMillion = 60000; // 6% of delivered beats.

    auto program = testprogs::identity();
    auto streams = randomStreams(8, 4096, 14);

    SystemConfig clean_config;
    clean_config.numChannels = 2;
    FleetSystem clean(program, clean_config, streams);
    clean.run();

    SystemConfig faulty_config = clean_config;
    faulty_config.faults = plan;
    FleetSystem faulty(program, faulty_config, streams);
    const RunReport &report = faulty.run();

    int parity_failures = 0;
    for (int p = 0; p < faulty.numPus(); ++p) {
        if (report.pus[p].status.code == StatusCode::ParityError) {
            ++parity_failures;
            // Partial output is readable and, for the identity unit, a
            // prefix of the fault-free output.
            BitBuffer partial = faulty.output(p);
            BitBuffer full = clean.output(p);
            ASSERT_LE(partial.sizeBits(), full.sizeBits());
            for (uint64_t bit = 0; bit < partial.sizeBits(); bit += 8) {
                int chunk = static_cast<int>(
                    std::min<uint64_t>(8, partial.sizeBits() - bit));
                ASSERT_EQ(partial.readBits(bit, chunk),
                          full.readBits(bit, chunk))
                    << "PU " << p << " bit " << bit;
            }
        } else {
            ASSERT_EQ(report.pus[p].status.code, StatusCode::Ok)
                << "PU " << p;
            EXPECT_TRUE(faulty.output(p) == clean.output(p)) << "PU " << p;
        }
    }
    // At this rate the chosen seed corrupts at least one beat; if the
    // hash mix ever changes, re-pick the seed rather than the rate.
    EXPECT_GT(parity_failures, 0);
    EXPECT_EQ(report.failedPuCount(), parity_failures);
    EXPECT_FALSE(report.allOk());
    for (const auto &channel : report.channels)
        EXPECT_TRUE(channel.ok()) << "channel-level status stays Ok; only "
                                     "PUs are contained";
}

TEST(FaultInjection, DisabledPlanBitIdenticalToFaultFree)
{
    // A plan with a seed but all rates zero is disabled: the injector
    // is never constructed and the run is bit-identical to the default
    // configuration.
    fault::FaultPlan plan;
    plan.seed = 999; // Seed alone does not enable anything.
    ASSERT_FALSE(plan.enabled());

    auto program = testprogs::blockFrequencies(32);
    auto streams = randomStreams(6, 1500, 15);

    SystemConfig clean_config;
    clean_config.numChannels = 3;
    FleetSystem clean(program, clean_config, streams);
    const RunReport &clean_report = clean.run();

    FleetSystem gated(program, faultConfig(plan, 0), streams);
    const RunReport &gated_report = gated.run();

    EXPECT_TRUE(clean_report == gated_report);
    EXPECT_TRUE(clean_report.allOk());
    EXPECT_EQ(clean.stats().cycles, gated.stats().cycles);
    for (int p = 0; p < clean.numPus(); ++p)
        EXPECT_TRUE(clean.output(p) == gated.output(p)) << "PU " << p;
}

TEST(FaultInjection, TracedRunRecordsContainmentInSharedTaxonomy)
{
    // Tracing a faulty run (ISSUE 3): tracing stays purely
    // observational under containment, and the trace records the
    // containment in the shared taxonomy — the quarantined unit's
    // remaining cycles land in the Done phase (so the phase counters
    // still sum to the channel cycle count), its counter set flags
    // `contained`, and its lane carries a marker naming the status.
    fault::FaultPlan plan;
    plan.seed = 4242;
    plan.corruptBeatPerMillion = 60000; // Same plan as the parity test.

    auto program = testprogs::identity();
    auto streams = randomStreams(8, 4096, 14);

    SystemConfig plain_config;
    plain_config.numChannels = 2;
    plain_config.faults = plan;
    FleetSystem plain(program, plain_config, streams);
    const RunReport &plain_report = plain.run();
    ASSERT_GT(plain_report.failedPuCount(), 0);

    SystemConfig traced_config = plain_config;
    traced_config.trace.counters = true;
    traced_config.trace.events = true;
    FleetSystem traced(program, traced_config, streams);
    const RunReport &traced_report = traced.run();

    // Purity under faults: same outcomes, cycles, and outputs.
    EXPECT_EQ(plain.stats().cycles, traced.stats().cycles);
    ASSERT_EQ(plain_report.pus.size(), traced_report.pus.size());
    for (int p = 0; p < plain.numPus(); ++p) {
        EXPECT_TRUE(plain_report.pus[p] == traced_report.pus[p])
            << "PU " << p;
        EXPECT_TRUE(plain.output(p) == traced.output(p)) << "PU " << p;
    }

    ASSERT_NE(traced_report.trace, nullptr);
    int contained_seen = 0;
    for (const trace::ChannelTrace &ch : traced_report.trace->channels) {
        for (const trace::CounterSet &set : ch.counters) {
            size_t pu_pos = set.name.find("/pu");
            if (pu_pos == std::string::npos)
                continue;
            int g = std::atoi(set.name.c_str() + pu_pos + 3);
            bool failed = !traced_report.pus[g].ok();
            EXPECT_EQ(set.get("contained"), failed ? 1u : 0u)
                << set.name;

            uint64_t phase_sum = 0;
            for (int ph = 0; ph < trace::kNumPuPhases; ++ph)
                phase_sum += set.get(
                    std::string(trace::puPhaseName(
                        static_cast<trace::PuPhase>(ph))) +
                    "_cycles");
            EXPECT_EQ(phase_sum, ch.cycles) << set.name;
            if (!failed)
                continue;
            ++contained_seen;
            EXPECT_GT(set.get(std::string(trace::puPhaseName(
                          trace::PuPhase::Done)) +
                          "_cycles"),
                      0u)
                << set.name << ": quarantined cycles must count as Done";

            // The unit's lane carries the containment marker, labelled
            // with the status name the report carries.
            std::string want =
                std::string("contained: ") +
                statusCodeName(traced_report.pus[g].status.code);
            bool found = false;
            for (const trace::Lane &lane : ch.lanes) {
                if (lane.globalPu != g)
                    continue;
                for (const trace::Marker &marker : lane.markers)
                    found = found || marker.label == want;
            }
            EXPECT_TRUE(found)
                << set.name << ": missing marker \"" << want << "\"";
        }
    }
    EXPECT_EQ(contained_seen, traced_report.failedPuCount());
}

TEST(FaultInjection, RegistryAppsDeterministicUnderMixedPlan)
{
    // The CI fault smoke: every registry application, mixed plan,
    // serial vs parallel — identical reports and outputs.
    auto plan = fault::FaultPlan::fromSeed(2026);
    auto apps = apps::allApplications();
    for (const auto &app : apps) {
        Rng rng(51);
        std::vector<BitBuffer> streams;
        for (int p = 0; p < 5; ++p)
            streams.push_back(app->generateStream(rng, 900));

        FleetSystem serial(app->program(), faultConfig(plan, 1), streams);
        const RunReport serial_report = serial.run();
        FleetSystem parallel(app->program(), faultConfig(plan, 4),
                             streams);
        const RunReport parallel_report = parallel.run();
        EXPECT_TRUE(serial_report == parallel_report) << app->name();
        for (int p = 0; p < serial.numPus(); ++p)
            EXPECT_TRUE(serial.output(p) == parallel.output(p))
                << app->name() << " PU " << p;
    }
}

// ---------------------------------------------------------------------------
// Faults under the multi-stream job runtime (ISSUE 5).
// ---------------------------------------------------------------------------

TEST(FaultInjection, SessionJobTruncationKeyedByJobId)
{
    // Per-job stream truncation is keyed by job id (not by the slot the
    // job happens to land on): each truncated job completes with a
    // StreamTruncated report, keptTokens matching the plan's hash, and
    // output equal to the functional simulation of exactly the kept
    // prefix — while untruncated jobs in the same queue run whole.
    fault::FaultPlan plan;
    plan.seed = 31337;
    plan.truncatePermille = 600;

    auto program = testprogs::streamSum(8, 32);
    auto streams = randomStreams(16, 500, 23);

    runtime::SessionConfig config;
    config.system.numChannels = 2;
    config.system.faults = plan;
    config.system.inputRegionBytes = 1024;
    config.numSlots = 4;
    config.epochCycles = 512;
    runtime::Session session(program, config);
    for (const auto &stream : streams)
        session.submit(stream);
    const RunReport &report = session.finish();
    ASSERT_TRUE(report.allOk()) << report.summary();

    sim::FunctionalSimulator functional(program);
    int truncated = 0, whole = 0;
    for (uint64_t j = 0; j < streams.size(); ++j) {
        const runtime::JobReport &job = session.report(j);
        uint64_t tokens = streams[j].sizeBits() / 8;
        uint64_t kept = fault::truncatedJobTokens(plan, j, tokens);
        ASSERT_EQ(job.originalTokens, tokens) << "job " << j;
        ASSERT_EQ(job.keptTokens, kept) << "job " << j;
        BitBuffer prefix = streams[j];
        prefix.resizeBits(kept * 8);
        EXPECT_TRUE(job.output == functional.run(prefix).output)
            << "job " << j;
        if (kept < tokens) {
            ++truncated;
            EXPECT_EQ(job.status.code, StatusCode::StreamTruncated)
                << "job " << j;
        } else {
            ++whole;
            EXPECT_EQ(job.status.code, StatusCode::Ok) << "job " << j;
        }
    }
    // The seed must exercise both fates; re-pick it if the hash mix
    // ever changes.
    EXPECT_GT(truncated, 0);
    EXPECT_GT(whole, 0);
}

TEST(FaultInjection, SessionParityContainmentThenSlotReuse)
{
    // A parity-contained job is quarantined alone: its report carries
    // ParityError with a clean prefix of the fault-free output, the
    // slot is re-armed, and later jobs on the *same slot* complete
    // with golden outputs — containment does not leak across jobs.
    fault::FaultPlan plan;
    plan.seed = 4242;
    plan.corruptBeatPerMillion = 8000; // ~0.8% of delivered beats.

    auto program = testprogs::identity();
    auto streams = randomStreams(12, 4096, 14);

    auto makeConfig = [&](bool faulty) {
        runtime::SessionConfig config;
        config.system.numChannels = 2;
        config.system.inputRegionBytes = 8192;
        if (faulty)
            config.system.faults = plan;
        config.numSlots = 4;
        config.epochCycles = 1024;
        return config;
    };

    runtime::Session faulty(program, makeConfig(true));
    for (const auto &stream : streams)
        faulty.submit(stream);
    faulty.finish();

    sim::FunctionalSimulator functional(program);
    int failures = 0;
    std::vector<uint64_t> last_failed_arm(4, 0);
    std::vector<bool> slot_failed(4, false), reused_after_fail(4, false);
    for (uint64_t j = 0; j < streams.size(); ++j) {
        const runtime::JobReport &job = faulty.report(j);
        BitBuffer golden = functional.run(streams[j]).output;
        ASSERT_GE(job.pu, 0);
        if (job.status.code == StatusCode::ParityError) {
            ++failures;
            slot_failed[job.pu] = true;
            last_failed_arm[job.pu] = job.armCycle;
            // Partial output is a clean prefix of the golden stream.
            ASSERT_LE(job.output.sizeBits(), golden.sizeBits());
            for (uint64_t bit = 0; bit < job.output.sizeBits();
                 bit += 8) {
                int chunk = static_cast<int>(
                    std::min<uint64_t>(8, job.output.sizeBits() - bit));
                ASSERT_EQ(job.output.readBits(bit, chunk),
                          golden.readBits(bit, chunk))
                    << "job " << j << " bit " << bit;
            }
        } else {
            ASSERT_EQ(job.status.code, StatusCode::Ok) << "job " << j;
            EXPECT_TRUE(job.output == golden) << "job " << j;
            if (slot_failed[job.pu] &&
                job.armCycle > last_failed_arm[job.pu])
                reused_after_fail[job.pu] = true;
        }
    }
    // The chosen seed corrupts at least one job's stream AND leaves a
    // later job on that same slot healthy; if the hash mix changes,
    // re-pick the seed rather than the rate.
    EXPECT_GT(failures, 0);
    bool any_reuse = false;
    for (int p = 0; p < 4; ++p)
        any_reuse = any_reuse || reused_after_fail[p];
    EXPECT_TRUE(any_reuse)
        << "no slot served a healthy job after a contained one";
}

} // namespace
} // namespace system
} // namespace fleet
