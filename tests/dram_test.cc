#include <gtest/gtest.h>

#include "dram/dram.h"
#include "util/logging.h"

namespace fleet {
namespace dram {
namespace {

DramParams
quietParams()
{
    DramParams params;
    params.readLatency = 10;
    params.perRequestOverhead = 0.0;
    params.refreshDuration = 0;
    return params;
}

TEST(Dram, ReadLatencyRespected)
{
    DramChannel ch(quietParams(), 4096);
    ch.memory()[128] = 0xab;
    ch.arPush(128, 1);
    for (int c = 0; c < 10; ++c) {
        EXPECT_FALSE(ch.rValid()) << "cycle " << c;
        ch.tick();
    }
    ASSERT_TRUE(ch.rValid());
    EXPECT_EQ(ch.rPeek().addr, 128u);
    EXPECT_TRUE(ch.rPeek().last);
    ch.rPop();
    EXPECT_FALSE(ch.rValid());
}

TEST(Dram, BeatsReturnInOrderOnePerCycle)
{
    DramChannel ch(quietParams(), 4096);
    ch.arPush(0, 2);
    ch.arPush(1024, 2);
    std::vector<uint64_t> addrs;
    for (int c = 0; c < 40 && addrs.size() < 4; ++c) {
        if (ch.rValid()) {
            addrs.push_back(ch.rPeek().addr);
            ch.rPop();
        }
        ch.tick();
    }
    ASSERT_EQ(addrs.size(), 4u);
    EXPECT_EQ(addrs[0], 0u);
    EXPECT_EQ(addrs[1], 64u);
    EXPECT_EQ(addrs[2], 1024u);
    EXPECT_EQ(addrs[3], 1088u);
}

TEST(Dram, PipelinedRequestsSaturateBus)
{
    // With zero overhead and requests issued every cycle, the bus should
    // deliver one beat per cycle after the initial latency.
    DramParams params = quietParams();
    DramChannel ch(params, 1 << 20);
    uint64_t addr = 0;
    uint64_t delivered = 0;
    const int cycles = 2000;
    for (int c = 0; c < cycles; ++c) {
        if (ch.arReady() && addr + 128 <= (1 << 20)) {
            ch.arPush(addr, 2);
            addr += 128;
        }
        if (ch.rValid()) {
            ch.rPop();
            ++delivered;
        }
        ch.tick();
    }
    // Expect ~ (cycles - latency) beats.
    EXPECT_GE(delivered, uint64_t(cycles) - 20);
}

TEST(Dram, PerRequestOverheadReducesBandwidth)
{
    DramParams params = quietParams();
    params.perRequestOverhead = 1.0; // one lost cycle per 2-beat burst
    DramChannel ch(params, 1 << 20);
    uint64_t addr = 0;
    uint64_t delivered = 0;
    const int cycles = 3000;
    for (int c = 0; c < cycles; ++c) {
        if (ch.arReady() && addr + 128 <= (1 << 20)) {
            ch.arPush(addr, 2);
            addr += 128;
        }
        if (ch.rValid()) {
            ch.rPop();
            ++delivered;
        }
        ch.tick();
    }
    double efficiency = double(delivered) / cycles;
    EXPECT_LT(efficiency, 0.72); // 2 of 3 cycles carry data
    EXPECT_GT(efficiency, 0.60);
}

TEST(Dram, RefreshBlocksBus)
{
    DramParams params = quietParams();
    params.refreshPeriod = 100;
    params.refreshDuration = 50; // half the time refreshing
    DramChannel ch(params, 1 << 20);
    uint64_t addr = 0;
    uint64_t delivered = 0;
    const int cycles = 5000;
    for (int c = 0; c < cycles; ++c) {
        if (ch.arReady() && addr + 128 <= (1 << 20)) {
            ch.arPush(addr, 2);
            addr += 128;
        }
        if (ch.rValid()) {
            ch.rPop();
            ++delivered;
        }
        ch.tick();
    }
    double efficiency = double(delivered) / cycles;
    EXPECT_LT(efficiency, 0.60);
    EXPECT_GT(efficiency, 0.40);
}

TEST(Dram, LargerBurstsMoreEfficient)
{
    auto measure = [](int burst_beats) {
        DramParams params;
        params.readLatency = 60;
        params.perRequestOverhead = 0.25;
        params.refreshPeriod = 975;
        params.refreshDuration = 55;
        DramChannel ch(params, 16 << 20);
        uint64_t addr = 0;
        uint64_t delivered = 0;
        const int cycles = 20000;
        uint64_t burst_bytes = uint64_t(burst_beats) * 64;
        for (int c = 0; c < cycles; ++c) {
            if (ch.arReady() && addr + burst_bytes <= (16u << 20)) {
                ch.arPush(addr, burst_beats);
                addr += burst_bytes;
            }
            if (ch.rValid()) {
                ch.rPop();
                ++delivered;
            }
            ch.tick();
        }
        return double(delivered) / cycles;
    };
    double eff2 = measure(2);
    double eff64 = measure(64);
    EXPECT_GT(eff64, eff2);
    // Calibration targets (paper Section 7.3): 64-beat bursts sustain
    // ~94% of theoretical peak; 2-beat bursts land in the mid-80s%.
    EXPECT_NEAR(eff64, 0.94, 0.02);
    EXPECT_NEAR(eff2, 0.86, 0.03);
}

TEST(Dram, WritesCommitToMemory)
{
    DramChannel ch(quietParams(), 4096);
    std::vector<uint8_t> beat(64);
    for (int i = 0; i < 64; ++i)
        beat[i] = uint8_t(i);
    ch.awPush(256, 2);
    ASSERT_TRUE(ch.wReady());
    ch.wPush(beat.data());
    ch.tick();
    ASSERT_TRUE(ch.wReady());
    ch.wPush(beat.data());
    ch.tick();
    EXPECT_FALSE(ch.wReady()); // burst complete, no AW outstanding
    EXPECT_EQ(ch.memory()[256 + 5], 5);
    EXPECT_EQ(ch.memory()[256 + 64 + 7], 7);
    EXPECT_EQ(ch.beatsWritten(), 2u);
}

TEST(Dram, WritesContendWithReads)
{
    auto measure = [](bool with_writes) {
        DramParams params;
        params.readLatency = 60;
        params.perRequestOverhead = 0.25;
        params.refreshDuration = 55;
        DramChannel ch(params, 16 << 20);
        std::vector<uint8_t> beat(64, 0xff);
        uint64_t raddr = 0, waddr = 8 << 20;
        uint64_t delivered = 0;
        for (int c = 0; c < 20000; ++c) {
            if (ch.arReady() && raddr + 128 <= (8u << 20)) {
                ch.arPush(raddr, 2);
                raddr += 128;
            }
            if (with_writes) {
                if (ch.awReady() && !ch.wReady() &&
                    waddr + 128 <= (16u << 20)) {
                    ch.awPush(waddr, 2);
                    waddr += 128;
                }
                if (ch.wReady())
                    ch.wPush(beat.data());
            }
            if (ch.rValid()) {
                ch.rPop();
                ++delivered;
            }
            ch.tick();
        }
        return double(delivered) / 20000;
    };
    double read_only = measure(false);
    double read_write = measure(true);
    EXPECT_LT(read_write, 0.75 * read_only);
}

TEST(Dram, BackpressureBoundsOutstanding)
{
    DramParams params = quietParams();
    params.maxOutstandingReads = 4;
    DramChannel ch(params, 1 << 20);
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        if (ch.arReady()) {
            ch.arPush(uint64_t(i) * 128, 2);
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, 4);
}

TEST(Dram, MisalignedAddressRejected)
{
    DramChannel ch(quietParams(), 4096);
    EXPECT_THROW(ch.arPush(13, 1), FatalError);
    EXPECT_THROW(ch.awPush(13, 1), FatalError);
    EXPECT_THROW(ch.arPush(4096, 1), FatalError); // past end
}

} // namespace
} // namespace dram
} // namespace fleet
