/**
 * @file
 * Cluster + pipeline suite (ISSUE 10). Pins the acceptance criteria:
 * a 1-device cluster is cycle-exact with driving FleetSystem directly;
 * a two-stage pipeline across two devices produces exactly the
 * sequential composition of its stages; the conservation law (bits out
 * of stage k == bits onto the edge == bits off the edge == bits into
 * stage k+1) holds on every edge, cross-device and local; a slow link
 * backpressures the upstream stage end to end; and the whole thing is
 * bit-identical across host thread counts and PU backends.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/pipeline.h"
#include "runtime/session.h"
#include "test_programs.h"
#include "util/rng.h"

namespace fleet {
namespace cluster {
namespace {

std::vector<BitBuffer>
byteStreams(int count, uint64_t max_bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitBuffer> streams;
    for (int j = 0; j < count; ++j) {
        BitBuffer s;
        uint64_t bytes = 16 + rng.nextBelow(max_bytes);
        for (uint64_t i = 0; i < bytes; ++i)
            s.appendBits(rng.next(), 8);
        streams.push_back(std::move(s));
    }
    return streams;
}

uint32_t
byteSum(const BitBuffer &stream)
{
    uint32_t sum = 0;
    for (uint64_t off = 0; off < stream.sizeBits(); off += 8)
        sum += static_cast<uint32_t>(stream.readBits(off, 8));
    return sum;
}

TEST(Cluster, OneDeviceClusterIsCycleExactWithTheSystem)
{
    // The refactor's contract: wrapping a FleetSystem in a 1-device
    // cluster adds indexing, not behaviour — same outputs, same cycle
    // counts, same RunReport (trace included).
    auto program = testprogs::blockFrequencies(32);
    auto streams = byteStreams(6, 300, 7);

    system::SystemConfig config;
    config.numChannels = 3;
    config.numThreads = 2;
    config.trace.counters = true;
    config.trace.events = true;
    config.inputRegionBytes = 4096;

    // Direct session-mode FleetSystem drive.
    system::FleetSystem direct(
        std::vector<lang::Program>(1, program), config, 6, {});
    direct.beginSession();
    for (size_t j = 0; j < streams.size(); ++j)
        ASSERT_TRUE(
            direct.armJob(static_cast<int>(j), streams[j], j).ok());
    while (true) {
        bool all = true;
        for (size_t j = 0; j < streams.size(); ++j)
            all &= direct.puDrained(static_cast<int>(j));
        if (all)
            break;
        direct.stepEpoch(512);
    }
    std::vector<BitBuffer> direct_outputs;
    for (size_t j = 0; j < streams.size(); ++j) {
        direct_outputs.push_back(direct.jobOutput(static_cast<int>(j)));
        direct.retireJob(static_cast<int>(j));
    }
    const system::RunReport &direct_report = direct.finishSession();

    // The same drive through a 1-device cluster, global indices.
    Cluster cluster(std::vector<lang::Program>(1, program), config, 6,
                    {}, 1, LinkParams{});
    cluster.beginSession();
    for (size_t j = 0; j < streams.size(); ++j)
        ASSERT_TRUE(
            cluster.armJob(static_cast<int>(j), streams[j], j).ok());
    while (true) {
        bool all = true;
        for (size_t j = 0; j < streams.size(); ++j)
            all &= cluster.puDrained(static_cast<int>(j));
        if (all)
            break;
        cluster.stepEpoch(512);
    }
    for (size_t j = 0; j < streams.size(); ++j) {
        EXPECT_TRUE(cluster.jobOutput(static_cast<int>(j)) ==
                    direct_outputs[j])
            << "job " << j << ": outputs diverge through the cluster";
        cluster.retireJob(static_cast<int>(j));
    }
    const ClusterReport &report = cluster.finishSession();
    ASSERT_EQ(report.devices.size(), 1u);
    EXPECT_TRUE(report.devices[0] == direct_report)
        << "1-device ClusterReport is not cycle-exact with the "
           "direct FleetSystem drive";
    EXPECT_TRUE(report.allOk());
}

TEST(Cluster, TwoDeviceSessionSchedulesAcrossDevices)
{
    // A 2-device session doubles the slot pool; with more jobs than
    // one device's slots, both devices must take work, and every
    // report's (device, channel, pu) triple must be consistent under
    // the global device-major indexing.
    auto program = testprogs::identity();
    auto streams = byteStreams(24, 400, 11);

    runtime::SessionConfig config;
    config.system.numChannels = 2;
    config.system.numThreads = 2;
    config.system.inputRegionBytes = 4096;
    config.numSlots = 4;
    config.numDevices = 2;
    runtime::Session session(program, config);
    ASSERT_EQ(session.numDevices(), 2);
    ASSERT_EQ(session.cluster().numSlots(), 8);
    for (const auto &stream : streams)
        session.submit(stream);
    session.finish();

    std::vector<uint64_t> per_device(2, 0);
    for (const auto &report : session.reports()) {
        ASSERT_TRUE(report.ok()) << report.status.toString();
        ASSERT_GE(report.device, 0);
        ASSERT_LT(report.device, 2);
        ++per_device[report.device];
        EXPECT_EQ(report.device,
                  session.cluster().slotDevice(report.pu));
        EXPECT_EQ(report.channel,
                  session.cluster().slotChannel(report.pu));
        EXPECT_TRUE(report.output == streams[report.jobId])
            << "identity output mismatch for job " << report.jobId;
    }
    EXPECT_GT(per_device[0], 0u) << "device 0 took no jobs";
    EXPECT_GT(per_device[1], 0u) << "device 1 took no jobs";

    const ClusterReport &report = session.clusterReport();
    ASSERT_EQ(report.devices.size(), 2u);
    EXPECT_TRUE(report.allOk());
}

TEST(Cluster, PreferredDeviceHintSteersPlacement)
{
    auto program = testprogs::identity();
    runtime::SessionConfig config;
    config.system.numChannels = 2;
    config.system.numThreads = 1;
    config.system.inputRegionBytes = 4096;
    config.numSlots = 4;
    config.numDevices = 2;
    runtime::Session session(program, config);
    auto streams = byteStreams(8, 100, 3);
    for (size_t j = 0; j < streams.size(); ++j) {
        runtime::JobTag tag;
        tag.preferredDevice = static_cast<int>(j % 2);
        session.submitJob(streams[j], tag, session.cycles());
    }
    session.finish();
    for (const auto &report : session.reports()) {
        ASSERT_TRUE(report.ok());
        // 8 jobs, 8 slots, hints honoured in sweep one: every job
        // lands on its preferred device.
        EXPECT_EQ(report.device, static_cast<int>(report.jobId % 2))
            << "job " << report.jobId << " ignored its device hint";
    }
}

TEST(Pipeline, TwoStageAcrossTwoDevicesComputesTheComposition)
{
    // identity (device 0) -> streamSum (device 1): the pipeline's
    // output must equal running the stages sequentially, i.e. the
    // byte-sum of each input stream.
    auto streams = byteStreams(10, 500, 23);

    PipelineConfig config;
    config.system.numChannels = 2;
    config.system.numThreads = 2;
    config.system.inputRegionBytes = 4096;
    config.link.latencyCycles = 200;
    config.link.bytesPerCycle = 8;
    std::vector<StageSpec> stages;
    stages.push_back({testprogs::identity(), 0, 2});
    stages.push_back({testprogs::streamSum(), 1, 2});
    Pipeline pipeline(stages, config);
    for (const auto &stream : streams)
        pipeline.submit(stream);
    const ClusterReport &report = pipeline.finish();
    ASSERT_EQ(report.devices.size(), 2u);

    for (size_t j = 0; j < streams.size(); ++j) {
        const PipelineJobReport &job = pipeline.report(j);
        ASSERT_TRUE(job.ok()) << "job " << j << ": "
                              << job.status.toString();
        ASSERT_EQ(job.output.sizeBits(), 32u);
        EXPECT_EQ(static_cast<uint32_t>(job.output.readBits(0, 32)),
                  byteSum(streams[j]))
            << "job " << j << " pipeline result != composition";
        EXPECT_GT(job.linkBits, 0u) << "job crossed no link?";
        EXPECT_GT(job.doneCycle, job.submitCycle);
    }
}

TEST(Pipeline, ConservationLawHoldsOnEveryEdge)
{
    auto streams = byteStreams(8, 600, 31);
    PipelineConfig config;
    config.system.numChannels = 2;
    config.system.numThreads = 2;
    config.system.inputRegionBytes = 4096;
    config.link.latencyCycles = 100;
    config.link.bytesPerCycle = 4;
    config.chunkBytes = 64; // Many chunks per stream.
    // Three identity stages so every byte flows through whole: edge 0
    // crosses devices, edge 1 is device-local (stages sharing device 1
    // must share token widths, so both of its stages are identity).
    std::vector<StageSpec> stages;
    stages.push_back({testprogs::identity(), 0, 2});
    stages.push_back({testprogs::identity(), 1, 2});
    stages.push_back({testprogs::identity(), 1, 2});
    Pipeline pipeline(stages, config);
    uint64_t total_bits = 0;
    for (const auto &stream : streams) {
        total_bits += stream.sizeBits();
        pipeline.submit(stream);
    }
    pipeline.run();
    for (size_t j = 0; j < streams.size(); ++j)
        ASSERT_TRUE(pipeline.report(j).ok());

    // Edge 0 crosses devices; edge 1 is device-local. The law holds on
    // both, and the cross-device edge's accounting must agree with the
    // cluster link's own counters.
    for (int e = 0; e < 2; ++e) {
        auto law = pipeline.edgeConservation(e);
        EXPECT_EQ(law.stageOutBits, law.linkBitsAccepted) << "edge " << e;
        EXPECT_EQ(law.linkBitsAccepted, law.linkBitsDelivered)
            << "edge " << e;
        EXPECT_EQ(law.linkBitsDelivered, law.stageInBits) << "edge " << e;
        // identity stages: everything submitted flows through whole.
        EXPECT_EQ(law.stageOutBits, total_bits) << "edge " << e;
    }
    EXPECT_TRUE(pipeline.edgeConservation(0).crossDevice);
    EXPECT_FALSE(pipeline.edgeConservation(1).crossDevice);
    const Link &link = pipeline.cluster().link(0, 1);
    EXPECT_EQ(link.counters().bitsAccepted, total_bits);
    EXPECT_EQ(link.counters().bitsDelivered, total_bits);
    EXPECT_EQ(link.counters().messagesAccepted,
              link.counters().messagesDelivered);
}

TEST(Pipeline, SlowLinkBackpressuresTheUpstreamStage)
{
    // The same job mix through a wide and a narrow link: the narrow
    // link must (a) keep its serializer busy far longer, and (b) delay
    // later jobs' *stage-0 arms* — upstream slots stay busy holding
    // output the edge cannot take yet, which is exactly end-to-end
    // backpressure through the bounded queues.
    auto streams = byteStreams(12, 800, 47);
    auto run = [&](uint64_t bytes_per_cycle) {
        PipelineConfig config;
        config.system.numChannels = 1;
        config.system.numThreads = 1;
        config.system.inputRegionBytes = 4096;
        config.link.latencyCycles = 50;
        config.link.bytesPerCycle = bytes_per_cycle;
        config.link.windowBytes = 1024;
        config.chunkBytes = 256;
        config.stageQueueDepth = 1; // Tight credits: stalls bite fast.
        std::vector<StageSpec> stages;
        stages.push_back({testprogs::identity(), 0, 1});
        stages.push_back({testprogs::streamSum(), 1, 1});
        Pipeline pipeline(stages, config);
        for (const auto &stream : streams)
            pipeline.submit(stream);
        pipeline.run();
        uint64_t last_arm = 0, done = 0;
        for (size_t j = 0; j < streams.size(); ++j) {
            const PipelineJobReport &job = pipeline.report(j);
            EXPECT_TRUE(job.ok()) << job.status.toString();
            last_arm = std::max(last_arm, job.stageArmCycle[0]);
            done = std::max(done, job.doneCycle);
        }
        return std::make_tuple(
            last_arm, done,
            pipeline.cluster().link(0, 1).counters().busyCycles);
    };
    auto [wide_arm, wide_done, wide_busy] = run(64);
    auto [narrow_arm, narrow_done, narrow_busy] = run(1);
    EXPECT_GT(narrow_busy, wide_busy);
    EXPECT_GT(narrow_done, wide_done)
        << "a 64x narrower link did not stretch completion";
    EXPECT_GT(narrow_arm, wide_arm)
        << "backpressure never reached stage 0's arm schedule";
}

TEST(Pipeline, DeterministicAcrossThreadCountsAndBackends)
{
    // The full fence: PipelineJobReports and the settled ClusterReport
    // (traces, link counters, link tracks) are bit-identical across
    // host thread counts; and the schedule-defining fields survive a
    // backend swap (Fast vs RtlInterp run the same placement).
    auto streams = byteStreams(9, 350, 59);
    auto run = [&](int threads, system::PuBackend backend) {
        PipelineConfig config;
        config.system.numChannels = 2;
        config.system.numThreads = threads;
        config.system.backend = backend;
        config.system.trace.counters = true;
        config.system.trace.events = true;
        config.system.inputRegionBytes = 4096;
        config.link.latencyCycles = 150;
        config.link.bytesPerCycle = 8;
        config.link.seed = 9;
        config.link.spikePermille = 200;
        config.link.spikeCycles = 500;
        config.chunkBytes = 128;
        std::vector<StageSpec> stages;
        stages.push_back({testprogs::identity(), 0, 2});
        stages.push_back({testprogs::streamSum(), 1, 2});
        Pipeline pipeline(stages, config);
        for (const auto &stream : streams)
            pipeline.submit(stream);
        ClusterReport report = pipeline.finish();
        return std::make_pair(pipeline.reports(), std::move(report));
    };
    auto [serial_jobs, serial_report] =
        run(1, system::PuBackend::Fast);
    auto [parallel_jobs, parallel_report] =
        run(4, system::PuBackend::Fast);
    ASSERT_TRUE(serial_report == parallel_report)
        << "pipeline ClusterReport diverges across thread counts";
    ASSERT_EQ(serial_jobs.size(), parallel_jobs.size());
    for (size_t j = 0; j < serial_jobs.size(); ++j) {
        const PipelineJobReport &a = serial_jobs[j];
        const PipelineJobReport &b = parallel_jobs[j];
        EXPECT_EQ(a.submitCycle, b.submitCycle) << "job " << j;
        EXPECT_EQ(a.doneCycle, b.doneCycle) << "job " << j;
        EXPECT_EQ(a.linkBits, b.linkBits) << "job " << j;
        EXPECT_TRUE(a.stageArmCycle == b.stageArmCycle) << "job " << j;
        EXPECT_TRUE(a.stageRetireCycle == b.stageRetireCycle)
            << "job " << j;
        EXPECT_TRUE(a.output == b.output) << "job " << j;
    }
    // Backend swap: identical outputs and identical link traffic (the
    // placement/transfer schedule is backend-independent).
    auto [rtl_jobs, rtl_report] =
        run(2, system::PuBackend::RtlInterp);
    ASSERT_EQ(rtl_jobs.size(), serial_jobs.size());
    for (size_t j = 0; j < serial_jobs.size(); ++j) {
        EXPECT_TRUE(rtl_jobs[j].output == serial_jobs[j].output)
            << "job " << j << " output diverges across backends";
        EXPECT_EQ(rtl_jobs[j].linkBits, serial_jobs[j].linkBits)
            << "job " << j;
    }
    ASSERT_EQ(rtl_report.linkCounters.size(),
              serial_report.linkCounters.size());
    for (size_t l = 0; l < serial_report.linkCounters.size(); ++l)
        EXPECT_TRUE(rtl_report.linkCounters[l] ==
                    serial_report.linkCounters[l])
            << "link " << l << " counters diverge across backends";
}

TEST(Pipeline, LinkFaultSpikesDelayButNeverCorrupt)
{
    auto streams = byteStreams(6, 400, 71);
    auto run = [&](uint32_t spike_permille) {
        PipelineConfig config;
        config.system.numChannels = 1;
        config.system.numThreads = 2;
        config.system.inputRegionBytes = 4096;
        config.link.latencyCycles = 100;
        config.link.bytesPerCycle = 8;
        config.link.seed = 1234;
        config.link.spikePermille = spike_permille;
        config.link.spikeCycles = 5000;
        config.chunkBytes = 64;
        std::vector<StageSpec> stages;
        stages.push_back({testprogs::identity(), 0, 1});
        stages.push_back({testprogs::streamSum(), 1, 1});
        Pipeline pipeline(stages, config);
        for (const auto &stream : streams)
            pipeline.submit(stream);
        pipeline.run();
        uint64_t done = 0;
        for (size_t j = 0; j < streams.size(); ++j) {
            const PipelineJobReport &job = pipeline.report(j);
            EXPECT_TRUE(job.ok());
            EXPECT_EQ(static_cast<uint32_t>(job.output.readBits(0, 32)),
                      byteSum(streams[j]))
                << "spikes corrupted job " << j;
            done = std::max(done, job.doneCycle);
        }
        return std::make_pair(
            done, pipeline.cluster().link(0, 1).counters().spikes);
    };
    auto [clean_done, clean_spikes] = run(0);
    auto [spiked_done, spiked_spikes] = run(800);
    EXPECT_EQ(clean_spikes, 0u);
    EXPECT_GT(spiked_spikes, 0u);
    EXPECT_GT(spiked_done, clean_done)
        << "latency spikes did not slow the pipeline";
}

TEST(Pipeline, TokenWidthMismatchIsRejectedAtConstruction)
{
    PipelineConfig config;
    config.system.numChannels = 1;
    std::vector<StageSpec> stages;
    stages.push_back({testprogs::streamSum(), 0, 1}); // Emits 32-bit.
    stages.push_back({testprogs::identity(), 1, 1});  // Consumes 8-bit.
    try {
        Pipeline pipeline(stages, config);
        FAIL() << "mismatched stage widths must throw";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code, StatusCode::InvalidArgument);
    }
}

TEST(Pipeline, MergedTraceCarriesDeviceRowsAndLinkTracks)
{
    auto streams = byteStreams(4, 200, 83);
    PipelineConfig config;
    config.system.numChannels = 2;
    config.system.numThreads = 1;
    config.system.trace.counters = true;
    config.system.trace.events = true;
    config.system.inputRegionBytes = 4096;
    config.link.latencyCycles = 50;
    config.link.bytesPerCycle = 8;
    std::vector<StageSpec> stages;
    stages.push_back({testprogs::identity(), 0, 1});
    stages.push_back({testprogs::streamSum(), 1, 1});
    Pipeline pipeline(stages, config);
    for (const auto &stream : streams)
        pipeline.submit(stream);
    const ClusterReport &report = pipeline.finish();
    ASSERT_EQ(report.devices.size(), 2u);
    for (const auto &device : report.devices)
        ASSERT_NE(device.trace, nullptr);
    // Link-utilization tracks exist (events mode) and the link between
    // the stage devices saw traffic.
    ASSERT_FALSE(report.linkTracks.empty());
    bool saw_link_track = false;
    for (const auto &track : report.linkTracks)
        saw_link_track |=
            track.name == "link/d0->d1/inflight_bytes" &&
            !track.samples.empty();
    EXPECT_TRUE(saw_link_track);
    bool saw_link_counters = false;
    for (const auto &set : report.linkCounters)
        saw_link_counters |= set.name == "link/d0->d1" &&
                             set.get("payload_bits_delivered") > 0;
    EXPECT_TRUE(saw_link_counters);
}

} // namespace
} // namespace cluster
} // namespace fleet
