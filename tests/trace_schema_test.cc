/**
 * @file
 * Golden-schema test for the Chrome trace_event export (ISSUE 3): write
 * a real traced run with RunReport::writeTrace, parse the file back
 * with the test-local JSON parser, and validate the schema Perfetto /
 * chrome://tracing relies on — event phases, pid/tid mapping to
 * channels and PU lanes, metadata naming, and monotonically
 * non-decreasing timestamps within every (pid, tid) lane. The event
 * counts are also cross-checked against the in-memory TraceReport so
 * the export is known to be lossless.
 *
 * Labelled trace-golden (not tier1): exercises filesystem round-trips
 * that the sanitizer CI jobs don't need to repeat.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "apps/registry.h"
#include "json_lite.h"
#include "system/fleet_system.h"
#include "util/rng.h"

namespace fleet {
namespace system {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Run one app traced with events and export the Chrome JSON. */
class TraceSchemaTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        auto apps = apps::allApplications();
        const apps::Application &app = *apps[0];
        Rng rng(23);
        std::vector<BitBuffer> streams;
        for (int p = 0; p < 5; ++p)
            streams.push_back(app.generateStream(rng, 1500));

        SystemConfig config;
        config.numChannels = 3;
        config.numThreads = 1;
        config.trace.counters = true;
        config.trace.events = true;
        fleet_ = std::make_unique<FleetSystem>(app.program(), config,
                                               streams);
        report_ = &fleet_->run();
        ASSERT_TRUE(report_->allOk()) << report_->summary();

        // Unique per test case: ctest runs the cases as concurrent
        // processes, and a shared path races (corrupt reads).
        path_ = ::testing::TempDir() + "fleet_trace_schema_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".json";
        Status written = report_->writeTrace(path_);
        ASSERT_TRUE(written.ok()) << written.message;

        std::string text = readFile(path_);
        ASSERT_FALSE(text.empty());
        std::string error;
        ASSERT_TRUE(testjson::parse(text, root_, &error)) << error;
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::unique_ptr<FleetSystem> fleet_;
    const RunReport *report_ = nullptr;
    std::string path_;
    testjson::Value root_;
};

TEST_F(TraceSchemaTest, TopLevelEnvelope)
{
    ASSERT_TRUE(root_.isObject());
    EXPECT_EQ(root_.getString("displayTimeUnit"), "ms");

    const testjson::Value *events = root_.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_FALSE(events->array.empty());

    const testjson::Value *other = root_.find("otherData");
    ASSERT_NE(other, nullptr);
    ASSERT_TRUE(other->isObject());
    EXPECT_EQ(other->getInt("cycles_per_us"), 1);
    EXPECT_EQ(other->getInt("dropped_spans"), 0);
    const testjson::Value *mhz = other->find("clock_mhz");
    ASSERT_NE(mhz, nullptr);
    EXPECT_DOUBLE_EQ(mhz->number, report_->trace->clockMHz);
}

TEST_F(TraceSchemaTest, EveryEventIsWellFormed)
{
    static const std::set<std::string> known_phases = {"M", "X", "i", "C"};
    for (const testjson::Value &event : root_.find("traceEvents")->array) {
        ASSERT_TRUE(event.isObject());
        std::string ph = event.getString("ph");
        EXPECT_TRUE(known_phases.count(ph)) << "unknown ph " << ph;
        EXPECT_GE(event.getInt("pid"), 0);
        EXPECT_GE(event.getInt("tid"), 0);
        EXPECT_FALSE(event.getString("name").empty());
        if (ph == "M")
            continue;
        EXPECT_GE(event.getInt("ts"), 0) << "ph " << ph;
        if (ph == "X") {
            EXPECT_GT(event.getInt("dur"), 0);
        }
        if (ph == "i") {
            EXPECT_EQ(event.getString("s"), "t");
        }
        if (ph == "C") {
            const testjson::Value *args = event.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_GE(args->getInt("depth"), 0);
        }
    }
}

TEST_F(TraceSchemaTest, MetadataNamesChannelsAndLanes)
{
    std::map<int64_t, std::string> process_names;
    std::map<std::pair<int64_t, int64_t>, std::string> thread_names;
    for (const testjson::Value &event : root_.find("traceEvents")->array) {
        if (event.getString("ph") != "M")
            continue;
        std::string name = event.find("args")->getString("name");
        if (event.getString("name") == "process_name")
            process_names[event.getInt("pid")] = name;
        else if (event.getString("name") == "thread_name")
            thread_names[{event.getInt("pid"), event.getInt("tid")}] =
                name;
    }

    const trace::TraceReport &tr = *report_->trace;
    ASSERT_EQ(process_names.size(), tr.channels.size());
    for (const trace::ChannelTrace &ch : tr.channels) {
        EXPECT_EQ(process_names[ch.channel],
                  "channel " + std::to_string(ch.channel));
        // tid 0 is the channel's DRAM counter track.
        EXPECT_EQ((thread_names[{ch.channel, 0}]), "dram");
        for (size_t l = 0; l < ch.lanes.size(); ++l)
            EXPECT_EQ((thread_names[{ch.channel, int64_t(l) + 1}]),
                      "PU " + std::to_string(ch.lanes[l].globalPu));
    }
}

TEST_F(TraceSchemaTest, TimestampsMonotonicPerLane)
{
    std::map<std::pair<int64_t, int64_t>, int64_t> last_ts;
    for (const testjson::Value &event : root_.find("traceEvents")->array) {
        std::string ph = event.getString("ph");
        if (ph == "M")
            continue;
        auto lane = std::make_pair(event.getInt("pid"), event.getInt("tid"));
        int64_t ts = event.getInt("ts");
        auto it = last_ts.find(lane);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second)
                << "ts regressed on pid " << lane.first << " tid "
                << lane.second;
        }
        last_ts[lane] = ts;
    }
}

TEST_F(TraceSchemaTest, ExportIsLossless)
{
    // Count exported events per kind and compare against the in-memory
    // TraceReport: every span, marker, and counter sample made it out.
    uint64_t spans = 0, markers = 0, samples = 0;
    std::set<std::string> span_names;
    for (const testjson::Value &event : root_.find("traceEvents")->array) {
        std::string ph = event.getString("ph");
        if (ph == "X") {
            ++spans;
            span_names.insert(event.getString("name"));
        } else if (ph == "i") {
            ++markers;
        } else if (ph == "C") {
            ++samples;
        }
    }

    uint64_t want_spans = 0, want_markers = 0, want_samples = 0;
    for (const trace::ChannelTrace &ch : report_->trace->channels) {
        for (const trace::Lane &lane : ch.lanes) {
            want_spans += lane.spans.size();
            want_markers += lane.markers.size();
        }
        for (const trace::CounterTrack &track : ch.tracks)
            want_samples += track.samples.size();
    }
    EXPECT_EQ(spans, want_spans);
    EXPECT_EQ(markers, want_markers);
    EXPECT_EQ(samples, want_samples);

    // Span names are exactly the non-Done taxonomy phase names.
    for (const std::string &name : span_names) {
        bool known = false;
        for (int p = 0; p < trace::kNumPuPhases; ++p)
            if (name ==
                trace::puPhaseName(static_cast<trace::PuPhase>(p)))
                known = true;
        EXPECT_TRUE(known) << "unknown span phase name " << name;
        EXPECT_NE(name, trace::puPhaseName(trace::PuPhase::Done));
    }
}

TEST(TraceSchemaErrors, UnwritablePathReportsIoError)
{
    auto apps = apps::allApplications();
    Rng rng(5);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 2; ++p)
        streams.push_back(apps[0]->generateStream(rng, 400));
    SystemConfig config;
    config.numChannels = 2;
    config.numThreads = 1;
    config.trace.events = true;
    FleetSystem fleet(apps[0]->program(), config, streams);
    const RunReport &report = fleet.run();
    Status status = report.writeTrace("/nonexistent-dir/trace.json");
    EXPECT_EQ(status.code, StatusCode::IoError);
}

} // namespace
} // namespace system
} // namespace fleet
