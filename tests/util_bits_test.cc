#include <gtest/gtest.h>

#include "util/bits.h"

namespace fleet {
namespace {

TEST(Bits, Mask64)
{
    EXPECT_EQ(mask64(0), 0u);
    EXPECT_EQ(mask64(1), 1u);
    EXPECT_EQ(mask64(8), 0xffu);
    EXPECT_EQ(mask64(63), ~uint64_t(0) >> 1);
    EXPECT_EQ(mask64(64), ~uint64_t(0));
}

TEST(Bits, TruncTo)
{
    EXPECT_EQ(truncTo(0x1ff, 8), 0xffu);
    EXPECT_EQ(truncTo(0x1ff, 9), 0x1ffu);
    EXPECT_EQ(truncTo(~uint64_t(0), 64), ~uint64_t(0));
    EXPECT_EQ(truncTo(~uint64_t(0), 1), 1u);
}

TEST(Bits, GuardedShifts)
{
    // Shifting a uint64_t by >= 64 is undefined behaviour in C++; the
    // guarded helpers define it as 0 (the hardware-width semantics the
    // RTL engines need, e.g. for a Concat whose low part is 64 bits
    // wide). Regression for the former raw `<<` in the Concat eval.
    EXPECT_EQ(shl64(0xff, 0), 0xffu);
    EXPECT_EQ(shl64(1, 63), uint64_t(1) << 63);
    EXPECT_EQ(shl64(0xff, 64), 0u);
    EXPECT_EQ(shl64(~uint64_t(0), 65), 0u);
    EXPECT_EQ(shr64(0xff00, 8), 0xffu);
    EXPECT_EQ(shr64(uint64_t(1) << 63, 63), 1u);
    EXPECT_EQ(shr64(~uint64_t(0), 64), 0u);
    EXPECT_EQ(shr64(~uint64_t(0), 100), 0u);
}

TEST(Bits, BitsOf)
{
    EXPECT_EQ(bitsOf(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bitsOf(0xabcd, 0, 4), 0xdu);
    EXPECT_EQ(bitsOf(0xabcd, 12, 4), 0xau);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend64(0x80, 8), -128);
    EXPECT_EQ(signExtend64(0x7f, 8), 127);
    EXPECT_EQ(signExtend64(1, 1), -1);
    EXPECT_EQ(signExtend64(0, 1), 0);
    EXPECT_EQ(signExtend64(uint64_t(1) << 63, 64),
              std::numeric_limits<int64_t>::min());
}

TEST(Bits, BitsToRepresent)
{
    EXPECT_EQ(bitsToRepresent(0), 1);
    EXPECT_EQ(bitsToRepresent(1), 1);
    EXPECT_EQ(bitsToRepresent(2), 2);
    EXPECT_EQ(bitsToRepresent(255), 8);
    EXPECT_EQ(bitsToRepresent(256), 9);
    EXPECT_EQ(bitsToRepresent(~uint64_t(0)), 64);
}

TEST(Bits, IndexWidth)
{
    EXPECT_EQ(indexWidth(1), 1);
    EXPECT_EQ(indexWidth(2), 1);
    EXPECT_EQ(indexWidth(3), 2);
    EXPECT_EQ(indexWidth(256), 8);
    EXPECT_EQ(indexWidth(257), 9);
}

TEST(Bits, CeilDivRoundUp)
{
    EXPECT_EQ(ceilDiv(0, 8), 0u);
    EXPECT_EQ(ceilDiv(1, 8), 1u);
    EXPECT_EQ(ceilDiv(8, 8), 1u);
    EXPECT_EQ(ceilDiv(9, 8), 2u);
    EXPECT_EQ(roundUp(9, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
}

} // namespace
} // namespace fleet
