#include <gtest/gtest.h>

#include <fstream>

#include "lang/builder.h"
#include "lang/stdlib.h"
#include "sim/simulator.h"
#include "system/fleet_system.h"
#include "system/pu_fast.h"
#include "system/pu_rtl.h"
#include "system/pu_testbench.h"
#include "test_programs.h"
#include "util/loc.h"
#include "util/rng.h"

namespace fleet {
namespace {

using lang::Bram;
using lang::ProgramBuilder;
using lang::Value;

// ---------------------------------------------------------------------------
// BitPacker library component.
// ---------------------------------------------------------------------------

TEST(BitPacker, PacksVariableWidthFields)
{
    // Pack each input token at a data-dependent width (its low 3 bits
    // select 1..8 bits), then flush at end of stream: a miniature of the
    // integer coder's emission loop.
    ProgramBuilder b("pack", 8, 8);
    lang::lib::BitPacker packer(b, "pk", 8, 64);
    Value flushed = b.reg("flushed", 1, 0);
    // Drain whole output bytes in loop virtual cycles, then append the
    // current token's field in the consuming cycle.
    b.while_(packer.hasToken(), [&] { packer.emitToken(); });
    b.if_(!b.streamFinished(), [&] {
        Value bits = (b.input().slice(2, 0).resize(4) + 1).resize(4);
        Value masked =
            b.input() & ~((Value::lit(0xff, 8) << bits).resize(8));
        packer.push(masked, bits);
    }).elseIf(packer.pending() && flushed == 0, [&] {
        packer.emitPadded();
        b.assign(flushed, Value::lit(1, 1));
    });
    auto program = b.finish();

    // Reference packing.
    Rng rng(9);
    BitBuffer input, expected_bits;
    for (int i = 0; i < 200; ++i) {
        uint64_t v = rng.nextBelow(256);
        input.appendBits(v, 8);
        int bits = int(v & 7) + 1;
        expected_bits.appendBits(v & mask64(bits), bits);
    }
    expected_bits.padToMultipleOf(8);

    sim::FunctionalSimulator simulator(program);
    auto result = simulator.run(input);
    // The packer only flushes during stream_finished; tokens still in
    // flight when the cleanup cycle ends are expected to have been
    // drained by the while-free structure... here emission is gated on
    // hasToken during the stream, so at most 7 bits remain and one
    // padded byte covers them.
    EXPECT_TRUE(result.output == expected_bits)
        << result.output.sizeBits() << " vs " << expected_bits.sizeBits();
}

TEST(BitPacker, BadTokenWidthRejected)
{
    ProgramBuilder b("bad", 8, 8);
    EXPECT_THROW(lang::lib::BitPacker(b, "pk", 0, 64), FatalError);
    EXPECT_THROW(lang::lib::BitPacker(b, "pk2", 65, 64), FatalError);
}

// ---------------------------------------------------------------------------
// Relaxed dependent-read rule: BRAM read in a while condition
// (single-address BRAM) must agree across all three backends.
// ---------------------------------------------------------------------------

TEST(RelaxedReads, WhileConditionBramReadCrossCheck)
{
    // Linked-list walk: each token selects a list head; the while loop
    // follows next-pointers stored in a BRAM until it hits zero,
    // counting steps. The while condition reads the BRAM.
    ProgramBuilder b("chase", 8, 8);
    Bram next = b.bram("next", 16, 4);
    Value cursor = b.reg("cursor", 4, 0);
    Value steps = b.reg("steps", 8, 0);
    Value init = b.reg("init", 5, 0);

    b.if_(init < 16, [&] {
        // Config: first 16 tokens fill the next-pointer table.
        b.assign(next[init.resize(4)], b.input().slice(3, 0));
        b.assign(init, init + 1);
    }).else_([&] {
        b.while_(next[cursor] != 0, [&] {
            b.assign(cursor, next[cursor]);
            b.assign(steps, (steps + 1).resize(8));
        });
        b.if_(!b.streamFinished(), [&] {
            b.emit(steps);
            b.assign(steps, Value::lit(0, 8));
            b.assign(cursor, b.input().slice(3, 0));
        });
    });
    auto program = b.finish();

    // Acyclic pointer table (entry i points to something < i, or 0).
    Rng rng(10);
    BitBuffer input;
    input.appendBits(0, 8);
    for (int i = 1; i < 16; ++i)
        input.appendBits(rng.nextBelow(i), 8);
    for (int i = 0; i < 120; ++i)
        input.appendBits(rng.nextBelow(16), 8);

    sim::FunctionalSimulator functional(program);
    auto golden = functional.run(input);
    EXPECT_GT(golden.emits, 0u);

    system::RtlPu rtl_pu(program);
    system::FastPu fast_pu(program, input);
    for (double ready : {1.0, 0.6}) {
        system::TestbenchOptions options{1.0, ready, 5, 1ULL << 26};
        auto rtl_result = system::runPu(rtl_pu, input, options);
        auto fast_result = system::runPu(fast_pu, input, options);
        ASSERT_TRUE(rtl_result.output == golden.output);
        ASSERT_EQ(rtl_result.cycles, fast_result.cycles);
    }
}

// ---------------------------------------------------------------------------
// FleetSystem robustness.
// ---------------------------------------------------------------------------

TEST(FleetSystemRobustness, WatchdogDetectsDeadlock)
{
    // Blocking output addressing + divergent output rates deadlocks (see
    // bench/ablation_memctl.cc); the watchdog must report it — as a
    // contained WatchdogStall outcome with a diagnostic dump, not an
    // exception — instead of spinning forever.
    ProgramBuilder b("filter", 8, 8);
    Value threshold = b.reg("threshold", 8, 0);
    Value configured = b.reg("configured", 1, 0);
    b.if_(!b.streamFinished(), [&] {
        b.if_(configured == 0, [&] {
            b.assign(threshold, b.input());
            b.assign(configured, Value::lit(1, 1));
        }).elseIf(b.input() < threshold, [&] { b.emit(b.input()); });
    });
    auto program = b.finish();

    system::SystemConfig config;
    config.numChannels = 1;
    config.outputCtrl.blockingAddressing = true;
    config.watchdogCycles = 20000;
    Rng rng(11);
    std::vector<BitBuffer> streams;
    for (int p = 0; p < 8; ++p) {
        BitBuffer stream;
        stream.appendBits(p % 2 == 0 ? 2 : 250, 8);
        for (int i = 0; i < 20000; ++i)
            stream.appendBits(rng.next(), 8);
        streams.push_back(std::move(stream));
    }
    system::FleetSystem fleet_system(program, config, streams);
    const auto &report = fleet_system.run();
    EXPECT_FALSE(report.allOk());
    ASSERT_EQ(report.channels.size(), 1u);
    EXPECT_EQ(report.channels[0].status.code, StatusCode::WatchdogStall);
    // The dump classifies the stuck units: the heavy filters wedge on a
    // full output buffer behind the blocked addressing unit.
    EXPECT_NE(report.channels[0].status.message.find("output-blocked"),
              std::string::npos);
    // Stranded PUs inherit the channel status; partial outputs are
    // still readable.
    for (int p = 0; p < 8; ++p) {
        EXPECT_EQ(report.pus[p].status.code, StatusCode::WatchdogStall);
        EXPECT_NO_THROW(fleet_system.output(p));
    }
}

TEST(FleetSystemRobustness, OutputBeforeRunRejected)
{
    std::vector<BitBuffer> streams(1);
    streams[0].appendBits(1, 8);
    system::FleetSystem fleet_system(testprogs::identity(),
                                     system::SystemConfig{}, streams);
    // Stale-access misuse is a structured InvalidState error (ISSUE 5),
    // not a process abort.
    try {
        fleet_system.output(0);
        FAIL() << "output() before run() should throw";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code, StatusCode::InvalidState);
    }
    try {
        fleet_system.report();
        FAIL() << "report() before run() should throw";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code, StatusCode::InvalidState);
    }
}

TEST(FleetSystemRobustness, DoubleRunRejected)
{
    std::vector<BitBuffer> streams(1);
    streams[0].appendBits(1, 8);
    system::FleetSystem fleet_system(testprogs::identity(),
                                     system::SystemConfig{}, streams);
    ASSERT_TRUE(fleet_system.run().allOk());
    BitBuffer first = fleet_system.output(0);
    // A second run() is refused with InvalidState — re-running in place
    // would clobber the first run's report and output regions.
    try {
        fleet_system.run();
        FAIL() << "run() called twice should throw";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code, StatusCode::InvalidState);
    }
    // The first run's results survive the refused re-run.
    EXPECT_TRUE(fleet_system.report().allOk());
    EXPECT_EQ(fleet_system.output(0), first);
}

TEST(FleetSystemRobustness, SessionApiOnOneShotSystemRejected)
{
    std::vector<BitBuffer> streams(1);
    streams[0].appendBits(1, 8);
    system::FleetSystem fleet_system(testprogs::identity(),
                                     system::SystemConfig{}, streams);
    BitBuffer job;
    job.appendBits(2, 8);
    Status armed = fleet_system.armJob(0, job, 0);
    EXPECT_EQ(armed.code, StatusCode::InvalidState);
    EXPECT_THROW(fleet_system.finishSession(), StatusError);
}

TEST(FleetSystemRobustness, MisalignedStreamRejected)
{
    std::vector<BitBuffer> streams(1);
    streams[0].appendBits(1, 5); // not a whole 8-bit token
    EXPECT_THROW(system::FleetSystem(testprogs::identity(),
                                     system::SystemConfig{}, streams),
                 FatalError);
}

TEST(FastPuRobustness, OverfeedPanics)
{
    BitBuffer stream;
    stream.appendBits(0xab, 8);
    system::FastPu pu(testprogs::identity(), stream);
    pu.reset();
    auto feed = [&] {
        system::PuInputs in;
        in.inputValid = true;
        in.inputToken = 0xab;
        in.outputReady = true;
        for (int cycle = 0; cycle < 10; ++cycle) {
            pu.eval(in);
            pu.step();
        }
    };
    EXPECT_THROW(feed(), PanicError);
}

// ---------------------------------------------------------------------------
// Utility coverage.
// ---------------------------------------------------------------------------

TEST(LocRegion, CountsFunctionBody)
{
    std::string path = std::string("/tmp/fleet_loc_region_test.cc");
    std::ofstream out(path);
    out << "// header comment\n"
           "int before() { return 1; }\n"
           "int\n"
           "target_function(int x)\n"
           "{\n"
           "    // inner comment\n"
           "    const char *s = \"} not a close\";\n"
           "    if (x) {\n"
           "        return 2;\n"
           "    }\n"
           "    return 3;\n"
           "}\n"
           "int after() { return 4; }\n";
    out.close();
    // Body braces: {, string line, if {, return, }, return, } = code
    // lines excluding the comment.
    EXPECT_EQ(countRegionLines(path, "target_function"), 7);
    EXPECT_THROW(countRegionLines(path, "missing_marker"), FatalError);
}

TEST(LocRegion, UnbalancedBracesRejected)
{
    std::string path = "/tmp/fleet_loc_region_bad.cc";
    std::ofstream out(path);
    out << "void f() { int x = 1;\n"; // never closed
    out.close();
    EXPECT_THROW(countRegionLines(path, "f()"), FatalError);
}

} // namespace
} // namespace fleet
