#include <gtest/gtest.h>

#include "util/bitbuf.h"
#include "util/bits.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fleet {
namespace {

TEST(BitBuffer, Empty)
{
    BitBuffer buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.sizeBits(), 0u);
}

TEST(BitBuffer, AppendAndReadAligned)
{
    BitBuffer buf;
    buf.appendBits(0xab, 8);
    buf.appendBits(0xcd, 8);
    EXPECT_EQ(buf.sizeBits(), 16u);
    EXPECT_EQ(buf.readBits(0, 8), 0xabu);
    EXPECT_EQ(buf.readBits(8, 8), 0xcdu);
    EXPECT_EQ(buf.readBits(0, 16), 0xcdabu);
}

TEST(BitBuffer, AppendUnaligned)
{
    BitBuffer buf;
    buf.appendBits(0b101, 3);
    buf.appendBits(0b11, 2);
    buf.appendBits(0x7f, 7);
    EXPECT_EQ(buf.sizeBits(), 12u);
    EXPECT_EQ(buf.readBits(0, 3), 0b101u);
    EXPECT_EQ(buf.readBits(3, 2), 0b11u);
    EXPECT_EQ(buf.readBits(5, 7), 0x7fu);
}

TEST(BitBuffer, CrossesWordBoundary)
{
    BitBuffer buf;
    buf.appendBits(0, 60);
    buf.appendBits(0xff, 8);
    EXPECT_EQ(buf.readBits(60, 8), 0xffu);
    EXPECT_EQ(buf.readBits(56, 12), 0xff0u);
}

TEST(BitBuffer, Full64BitValues)
{
    BitBuffer buf;
    buf.appendBits(~uint64_t(0), 64);
    buf.appendBits(0x123456789abcdef0ULL, 64);
    EXPECT_EQ(buf.readBits(0, 64), ~uint64_t(0));
    EXPECT_EQ(buf.readBits(64, 64), 0x123456789abcdef0ULL);
    // Unaligned 64-bit read across the two words.
    EXPECT_EQ(buf.readBits(32, 64), 0x9abcdef0ffffffffULL);
}

TEST(BitBuffer, AppendMasksValue)
{
    BitBuffer buf;
    buf.appendBits(0xffff, 4);
    EXPECT_EQ(buf.readBits(0, 4), 0xfu);
    EXPECT_EQ(buf.sizeBits(), 4u);
}

TEST(BitBuffer, WriteBits)
{
    BitBuffer buf(32);
    buf.writeBits(4, 0xab, 8);
    EXPECT_EQ(buf.readBits(4, 8), 0xabu);
    EXPECT_EQ(buf.readBits(0, 4), 0u);
    buf.writeBits(4, 0x5, 4);
    EXPECT_EQ(buf.readBits(4, 8), 0xa5u);
}

TEST(BitBuffer, WriteBitsAcrossWords)
{
    BitBuffer buf(128);
    buf.writeBits(60, 0xdeadbeefcafef00dULL, 64);
    EXPECT_EQ(buf.readBits(60, 64), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(buf.readBits(0, 60), 0u);
    EXPECT_EQ(buf.readBits(120, 4), 0xdu);
    EXPECT_EQ(buf.readBits(124, 4), 0u);
}

TEST(BitBuffer, ReadPastEndThrows)
{
    BitBuffer buf;
    buf.appendBits(0xff, 8);
    EXPECT_THROW(buf.readBits(4, 8), PanicError);
    EXPECT_EQ(buf.readBits(4, 8, /*allow_pad=*/true), 0xfu);
    EXPECT_EQ(buf.readBits(100, 8, /*allow_pad=*/true), 0u);
}

TEST(BitBuffer, FromBytesAndToString)
{
    BitBuffer buf = BitBuffer::fromString("hi!");
    EXPECT_EQ(buf.sizeBits(), 24u);
    EXPECT_EQ(buf.readBits(0, 8), uint64_t('h'));
    EXPECT_EQ(buf.readBits(8, 8), uint64_t('i'));
    EXPECT_EQ(buf.toString(), "hi!");
}

TEST(BitBuffer, ToBytesPartial)
{
    BitBuffer buf;
    buf.appendBits(0b1011, 4);
    auto bytes = buf.toBytes();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0b1011);
}

TEST(BitBuffer, ResizeShrinkClearsTail)
{
    BitBuffer buf;
    buf.appendBits(0xff, 8);
    buf.resizeBits(4);
    buf.resizeBits(8);
    EXPECT_EQ(buf.readBits(0, 8), 0x0fu);
}

TEST(BitBuffer, PadToMultipleOf)
{
    BitBuffer buf;
    buf.appendBits(0x3, 2);
    buf.padToMultipleOf(8);
    EXPECT_EQ(buf.sizeBits(), 8u);
    buf.padToMultipleOf(8);
    EXPECT_EQ(buf.sizeBits(), 8u);
    buf.padToMultipleOf(1024);
    EXPECT_EQ(buf.sizeBits(), 1024u);
}

TEST(BitBuffer, AppendBuffer)
{
    BitBuffer a;
    a.appendBits(0b101, 3);
    BitBuffer b;
    b.appendBits(0xabcd, 16);
    a.appendBuffer(b);
    EXPECT_EQ(a.sizeBits(), 19u);
    EXPECT_EQ(a.readBits(3, 16), 0xabcdu);
}

TEST(BitBuffer, Equality)
{
    BitBuffer a, b;
    a.appendBits(0x12345, 20);
    b.appendBits(0x12345, 20);
    EXPECT_TRUE(a == b);
    b.appendBits(0, 1);
    EXPECT_FALSE(a == b);
}

TEST(BitBuffer, RandomizedRoundTrip)
{
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        BitBuffer buf;
        std::vector<std::pair<uint64_t, int>> pieces;
        for (int i = 0; i < 200; ++i) {
            int width = static_cast<int>(rng.nextInRange(1, 64));
            uint64_t value = rng.next() & mask64(width);
            pieces.emplace_back(value, width);
            buf.appendBits(value, width);
        }
        uint64_t offset = 0;
        for (const auto &[value, width] : pieces) {
            EXPECT_EQ(buf.readBits(offset, width), value);
            offset += width;
        }
        EXPECT_EQ(buf.sizeBits(), offset);
    }
}

TEST(BitBuffer, RandomizedWriteRead)
{
    Rng rng(7);
    BitBuffer buf(4096);
    std::vector<uint64_t> shadow(4096, 0);
    for (int i = 0; i < 1000; ++i) {
        int width = static_cast<int>(rng.nextInRange(1, 64));
        uint64_t offset = rng.nextBelow(4096 - width);
        uint64_t value = rng.next() & mask64(width);
        buf.writeBits(offset, value, width);
        for (int b = 0; b < width; ++b)
            shadow[offset + b] = (value >> b) & 1;
    }
    for (uint64_t b = 0; b < 4096; ++b)
        ASSERT_EQ(buf.readBits(b, 1), shadow[b]) << "bit " << b;
}

} // namespace
} // namespace fleet
