#ifndef FLEET_SIM_SIMULATOR_H
#define FLEET_SIM_SIMULATOR_H

/**
 * @file
 * Functional ("software") simulator for Fleet programs, corresponding to
 * the software simulator of Sections 3 and 6 of the paper. It executes
 * virtual cycles directly on the AST with concurrent semantics, produces
 * the output token stream, and detects the dynamic restriction violations
 * the language imposes:
 *
 *  - more than one distinct BRAM read address per BRAM per virtual cycle,
 *  - more than one write per BRAM per virtual cycle,
 *  - more than one emit per virtual cycle,
 *  - more than one assignment to a register or vector element per cycle,
 *  - out-of-range BRAM/vector writes or gated BRAM reads.
 *
 * It can also record a per-virtual-cycle trace (token consumed? token
 * emitted?) which the fast full-system PU timing model replays
 * (system/pu_fast.h), and it reports whether any virtual cycle read a BRAM
 * address written by the immediately preceding virtual cycle — the paper's
 * check for eliding the BRAM forwarding register.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "lang/flatten.h"
#include "util/bitbuf.h"

namespace fleet {
namespace sim {

/** Per-virtual-cycle trace flags (for the fast timing model). */
enum VcycleFlags : uint8_t
{
    kVcycleConsumesToken = 1 << 0, ///< Final virtual cycle for its token.
    kVcycleEmits = 1 << 1,         ///< Emits one output token.
};

struct SimOptions
{
    /** Record the per-virtual-cycle trace in RunResult::trace. */
    bool recordTrace = false;
    /** Abort if a single token takes more virtual cycles than this. */
    uint64_t maxVcyclesPerToken = 1ULL << 22;
};

struct RunResult
{
    BitBuffer output;           ///< Emitted tokens, packed.
    uint64_t tokens = 0;        ///< Input tokens consumed.
    uint64_t vcycles = 0;       ///< Total virtual cycles (incl. cleanup).
    uint64_t emits = 0;         ///< Output tokens produced.
    std::vector<uint8_t> trace; ///< Per-vcycle flags if recordTrace.
    /**
     * True if some virtual cycle read a BRAM address written by the
     * previous virtual cycle; if false for all example streams, the
     * compiler's forwarding register could be elided (paper, Section 4).
     */
    bool usedBramForwarding = false;
};

class FunctionalSimulator
{
  public:
    explicit FunctionalSimulator(const lang::Program &program,
                                 SimOptions options = {});

    /**
     * Run the program over a complete input stream (tokens packed at the
     * program's input token width), including the stream-finished cleanup
     * virtual cycles. Throws FatalError on a restriction violation.
     */
    RunResult run(const BitBuffer &input);

    /// @name Single-step interface (used by the SIMT divergence model).
    /// @{
    /** Reset state and begin a new stream. */
    void beginStream(const BitBuffer &input);
    /** True once the cleanup virtual cycles have completed. */
    bool streamDone() const { return phase_ == Phase::Done; }
    /**
     * Execute one virtual cycle. If `signature` is non-null it receives
     * one byte per flattened action (assignments then emits), 1 if the
     * action executed — the per-lane control signature the SIMT model
     * groups on. Returns the VcycleFlags of the cycle.
     */
    uint8_t stepVcycle(std::vector<uint8_t> *signature = nullptr);
    /** Results accumulated since beginStream(). */
    const RunResult &partialResult() const { return result_; }
    /// @}

    const lang::Program &program() const { return program_; }
    const lang::FlatProgram &flat() const { return flat_; }

  private:
    struct State
    {
        std::vector<uint64_t> regs;
        std::vector<std::vector<uint64_t>> vregs;
        std::vector<std::vector<uint64_t>> brams;
    };

    enum class Phase { Tokens, Cleanup, Done };

    void reset();
    uint64_t eval(const lang::Expr &e) const;
    uint64_t evalUncached(const lang::Expr &e) const;
    bool evalGate(const lang::Expr &cond, bool inside_while,
                  bool while_active) const;
    /** Execute one virtual cycle; returns true if the token was consumed. */
    bool runVcycle(RunResult &result, std::vector<uint8_t> *signature);
    [[noreturn]] void violation(const std::string &message) const;

    lang::Program program_;
    lang::FlatProgram flat_;
    SimOptions options_;

    State state_;
    uint64_t currentToken_ = 0;
    bool streamFinished_ = false;
    uint64_t tokenIndex_ = 0;

    // Single-step stream state.
    BitBuffer input_;
    uint64_t tokenCount_ = 0;
    Phase phase_ = Phase::Done;
    uint64_t vcyclesThisToken_ = 0;
    RunResult result_;

    /** (bramId, addr) written by the previous virtual cycle, or addr==-1. */
    std::vector<int64_t> prevWriteAddr_;

    /**
     * Per-virtual-cycle evaluation memo. Expressions are DAGs with heavy
     * sharing (e.g. the Smith-Waterman row chain), so values are cached
     * per node per virtual cycle; the epoch counter invalidates the cache
     * without clearing it.
     */
    mutable std::vector<uint64_t> evalCache_;
    mutable std::vector<uint64_t> evalEpochs_;
    uint64_t evalEpoch_ = 1;
};

} // namespace sim
} // namespace fleet

#endif // FLEET_SIM_SIMULATOR_H
