#include "sim/simulator.h"

#include <algorithm>

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace sim {

using lang::Expr;
using lang::ExprKind;
using lang::LValue;

FunctionalSimulator::FunctionalSimulator(const lang::Program &program,
                                         SimOptions options)
    : program_(program), flat_(lang::flatten(program_)), options_(options)
{
    reset();
}

void
FunctionalSimulator::reset()
{
    state_.regs.clear();
    for (const auto &reg : program_.regs)
        state_.regs.push_back(reg.init);
    state_.vregs.clear();
    for (const auto &vreg : program_.vregs) {
        state_.vregs.emplace_back(vreg.elements, vreg.init);
    }
    state_.brams.clear();
    for (const auto &bram : program_.brams)
        state_.brams.emplace_back(bram.elements, 0);
    prevWriteAddr_.assign(program_.brams.size(), -1);
    currentToken_ = 0;
    streamFinished_ = false;
    tokenIndex_ = 0;
}

void
FunctionalSimulator::violation(const std::string &message) const
{
    fatal(program_.name, ": restriction violation at ",
          streamFinished_ ? "cleanup cycle" : "token",
          streamFinished_ ? std::string() : " " + std::to_string(tokenIndex_),
          ": ", message);
}

uint64_t
FunctionalSimulator::eval(const Expr &e) const
{
    // Leaves are cheaper to recompute than to cache.
    switch (e->kind) {
      case ExprKind::Const:
      case ExprKind::Input:
      case ExprKind::StreamFinished:
      case ExprKind::RegRead:
        return evalUncached(e);
      default:
        break;
    }
    int64_t id = lang::exprEvalId(e.get());
    if (uint64_t(id) >= evalCache_.size()) {
        evalCache_.resize(id + 64, 0);
        evalEpochs_.resize(id + 64, 0);
    }
    if (evalEpochs_[id] == evalEpoch_)
        return evalCache_[id];
    uint64_t value = evalUncached(e);
    evalEpochs_[id] = evalEpoch_;
    evalCache_[id] = value;
    return value;
}

uint64_t
FunctionalSimulator::evalUncached(const Expr &e) const
{
    switch (e->kind) {
      case ExprKind::Const:
        return e->value;
      case ExprKind::Input:
        return currentToken_;
      case ExprKind::StreamFinished:
        return streamFinished_ ? 1 : 0;
      case ExprKind::RegRead:
        return state_.regs[e->stateId];
      case ExprKind::VecRegRead: {
        uint64_t idx = eval(e->a);
        const auto &vec = state_.vregs[e->stateId];
        // Out-of-range reads return 0, matching the hardware mux tree's
        // don't-care behaviour.
        return idx < vec.size() ? vec[idx] : 0;
      }
      case ExprKind::BramRead: {
        uint64_t addr = eval(e->a);
        const auto &mem = state_.brams[e->stateId];
        return addr < mem.size() ? mem[addr] : 0;
      }
      case ExprKind::Bin:
        return evalBinOp(e->binOp, eval(e->a), e->a->width, eval(e->b),
                         e->b->width);
      case ExprKind::Un:
        return evalUnOp(e->unOp, eval(e->a), e->a->width);
      case ExprKind::Mux:
        // Only the selected leg is evaluated; read accounting is handled
        // separately via the flattened BramReadOcc list, whose gating
        // conditions replicate exactly this mux-path behaviour.
        return eval(e->c) != 0 ? eval(e->a) : eval(e->b);
      case ExprKind::Slice:
        return bitsOf(eval(e->a), e->sliceLo, e->width);
      case ExprKind::Concat:
        return (eval(e->a) << e->b->width) | eval(e->b);
    }
    panic("FunctionalSimulator::eval: unknown expression kind");
}

bool
FunctionalSimulator::evalGate(const Expr &cond, bool inside_while,
                              bool while_active) const
{
    if (!inside_while && while_active)
        return false;
    return !cond || eval(cond) != 0;
}

bool
FunctionalSimulator::runVcycle(RunResult &result,
                               std::vector<uint8_t> *signature)
{
    if (signature)
        signature->assign(flat_.assigns.size() + flat_.emits.size(), 0);

    // New virtual cycle: invalidate the expression memo.
    ++evalEpoch_;

    // 1. Evaluate while conditions: while any holds, only loop bodies run
    //    and the input token is not consumed.
    bool while_active = false;
    for (const auto &cond : flat_.whileConds)
        while_active = while_active || eval(cond) != 0;

    // 2. BRAM read accounting: at most one distinct address per BRAM.
    std::vector<int64_t> read_addr(program_.brams.size(), -1);
    for (const auto &occ : flat_.bramReads) {
        if (!evalGate(occ.cond, occ.insideWhile, while_active))
            continue;
        const auto &bram = program_.bram(occ.bramId);
        uint64_t addr = eval(occ.addr);
        if (addr >= uint64_t(bram.elements)) {
            violation("BRAM " + bram.name + " read address " +
                      std::to_string(addr) + " out of range (" +
                      std::to_string(bram.elements) + " elements)");
        }
        if (read_addr[occ.bramId] >= 0 &&
            read_addr[occ.bramId] != int64_t(addr)) {
            violation("BRAM " + bram.name +
                      " read at two addresses in one virtual cycle (" +
                      std::to_string(read_addr[occ.bramId]) + " and " +
                      std::to_string(addr) + ")");
        }
        read_addr[occ.bramId] = int64_t(addr);
        if (prevWriteAddr_[occ.bramId] == int64_t(addr))
            result.usedBramForwarding = true;
    }

    // 3. Gather assignments (committed only at the end of the cycle).
    struct PendingWrite
    {
        LValue::Kind kind;
        int stateId;
        uint64_t index;
        uint64_t value;
    };
    std::vector<PendingWrite> writes;
    std::vector<bool> reg_written(program_.regs.size(), false);
    std::vector<int64_t> bram_write_addr(program_.brams.size(), -1);
    // Vector-register elements allow concurrent writes to distinct
    // elements; track (id, index) pairs.
    std::vector<std::pair<int, uint64_t>> vreg_written;

    for (size_t a = 0; a < flat_.assigns.size(); ++a) {
        const auto &assign = flat_.assigns[a];
        if (!evalGate(assign.cond, assign.insideWhile, while_active))
            continue;
        if (signature)
            (*signature)[a] = 1;
        PendingWrite write;
        write.kind = assign.target.kind;
        write.stateId = assign.target.stateId;
        write.index = 0;
        switch (assign.target.kind) {
          case LValue::Kind::Reg:
            if (reg_written[write.stateId]) {
                violation("register " + program_.reg(write.stateId).name +
                          " assigned twice in one virtual cycle");
            }
            reg_written[write.stateId] = true;
            break;
          case LValue::Kind::VecElem: {
            const auto &vreg = program_.vreg(write.stateId);
            write.index = eval(assign.target.index);
            if (write.index >= uint64_t(vreg.elements)) {
                violation("vector register " + vreg.name + " write index " +
                          std::to_string(write.index) + " out of range");
            }
            auto key = std::make_pair(write.stateId, write.index);
            if (std::find(vreg_written.begin(), vreg_written.end(), key) !=
                vreg_written.end()) {
                violation("vector register " + vreg.name + " element " +
                          std::to_string(write.index) +
                          " assigned twice in one virtual cycle");
            }
            vreg_written.push_back(key);
            break;
          }
          case LValue::Kind::BramElem: {
            const auto &bram = program_.bram(write.stateId);
            write.index = eval(assign.target.index);
            if (write.index >= uint64_t(bram.elements)) {
                violation("BRAM " + bram.name + " write address " +
                          std::to_string(write.index) + " out of range");
            }
            if (bram_write_addr[write.stateId] >= 0) {
                violation("BRAM " + bram.name +
                          " written twice in one virtual cycle");
            }
            bram_write_addr[write.stateId] = int64_t(write.index);
            break;
          }
        }
        uint64_t value = eval(assign.value);
        int target_width = 0;
        switch (assign.target.kind) {
          case LValue::Kind::Reg:
            target_width = program_.reg(write.stateId).width;
            break;
          case LValue::Kind::VecElem:
            target_width = program_.vreg(write.stateId).width;
            break;
          case LValue::Kind::BramElem:
            target_width = program_.bram(write.stateId).width;
            break;
        }
        write.value = truncTo(value, target_width);
        writes.push_back(write);
    }

    // 4. Emits: at most one per virtual cycle.
    bool emitted = false;
    for (size_t m = 0; m < flat_.emits.size(); ++m) {
        const auto &emit = flat_.emits[m];
        if (!evalGate(emit.cond, emit.insideWhile, while_active))
            continue;
        if (emitted)
            violation("multiple emits in one virtual cycle");
        if (signature)
            (*signature)[flat_.assigns.size() + m] = 1;
        emitted = true;
        result.output.appendBits(eval(emit.value),
                                 program_.outputTokenWidth);
        ++result.emits;
    }

    // 5. Commit.
    for (const auto &write : writes) {
        switch (write.kind) {
          case LValue::Kind::Reg:
            state_.regs[write.stateId] = write.value;
            break;
          case LValue::Kind::VecElem:
            state_.vregs[write.stateId][write.index] = write.value;
            break;
          case LValue::Kind::BramElem:
            state_.brams[write.stateId][write.index] = write.value;
            break;
        }
    }
    prevWriteAddr_ = bram_write_addr;

    ++result.vcycles;
    if (options_.recordTrace) {
        uint8_t flags = 0;
        if (!while_active)
            flags |= kVcycleConsumesToken;
        if (emitted)
            flags |= kVcycleEmits;
        result.trace.push_back(flags);
    }
    return !while_active;
}

void
FunctionalSimulator::beginStream(const BitBuffer &input)
{
    if (input.sizeBits() % program_.inputTokenWidth != 0) {
        fatal(program_.name, ": input stream of ", input.sizeBits(),
              " bits is not a whole number of ", program_.inputTokenWidth,
              "-bit tokens");
    }
    reset();
    input_ = input;
    tokenCount_ = input.sizeBits() / program_.inputTokenWidth;
    result_ = RunResult();
    vcyclesThisToken_ = 0;
    if (tokenCount_ == 0) {
        phase_ = Phase::Cleanup;
        streamFinished_ = true;
        currentToken_ = 0;
    } else {
        phase_ = Phase::Tokens;
        currentToken_ = input_.readBits(0, program_.inputTokenWidth);
    }
}

uint8_t
FunctionalSimulator::stepVcycle(std::vector<uint8_t> *signature)
{
    if (phase_ == Phase::Done)
        fatal(program_.name, ": stepVcycle after stream completion");
    uint64_t emits_before = result_.emits;
    bool consumed = runVcycle(result_, signature);
    uint8_t flags = 0;
    if (consumed)
        flags |= kVcycleConsumesToken;
    if (result_.emits != emits_before)
        flags |= kVcycleEmits;

    if (!consumed) {
        if (++vcyclesThisToken_ > options_.maxVcyclesPerToken) {
            fatal(program_.name, ": while loop exceeded ",
                  options_.maxVcyclesPerToken,
                  " virtual cycles for one token (infinite loop?)");
        }
        return flags;
    }
    vcyclesThisToken_ = 0;
    if (phase_ == Phase::Tokens) {
        ++result_.tokens;
        ++tokenIndex_;
        if (tokenIndex_ < tokenCount_) {
            currentToken_ = input_.readBits(
                tokenIndex_ * program_.inputTokenWidth,
                program_.inputTokenWidth);
        } else {
            // Stream-finished cleanup: the logic runs once more with a
            // dummy token, including any while iterations it triggers.
            phase_ = Phase::Cleanup;
            streamFinished_ = true;
            currentToken_ = 0;
        }
    } else {
        phase_ = Phase::Done;
    }
    return flags;
}

RunResult
FunctionalSimulator::run(const BitBuffer &input)
{
    beginStream(input);
    while (!streamDone())
        stepVcycle();
    return std::move(result_);
}

} // namespace sim
} // namespace fleet
