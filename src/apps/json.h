#ifndef FLEET_APPS_JSON_H
#define FLEET_APPS_JSON_H

/**
 * @file
 * JSON field extraction (Section 7.1). The unit reads a list of fields to
 * extract (e.g. a.b, a.c), encoded as a character trie at the start of
 * its input stream, stores the transition table in a BRAM, and then emits
 * the values of those fields for the (potentially nested) JSON records in
 * the remainder of the stream. Most of the unit is the state machine that
 * decides whether a field match has been reached and handles the JSON
 * control characters, exactly as the paper describes.
 *
 * Restricted record grammar (the workload generator only produces this):
 *   record := '{' pair (',' pair)* '}' '\n'        (or '{}')
 *   pair   := '"' key '"' ':' value
 *   value  := '"' chars '"' | record-object
 * with no whitespace and no escape sequences.
 *
 * Trie encoding (config prologue): one count byte N, then N four-byte
 * entries [char][within][down][flags]: `within` points to the candidate
 * group for the next character of the same key segment, `down` to the
 * candidate group of the next path segment (object nesting), 0xFF meaning
 * none. Alternative candidates at one position are stored consecutively;
 * flags bit0 marks an accepting leaf (capture the value) and bit1 the
 * last entry of its sibling group.
 *
 * Output: the characters of each matched field value, '\n' terminated.
 */

#include "apps/app.h"

namespace fleet {
namespace apps {

struct JsonParams
{
    std::vector<std::string> fields = {"user.name", "user.geo.city", "id",
                                       "meta.tag"};
    int maxTrieNodes = 256;
    int maxDepth = 64;
};

class JsonApp : public Application
{
  public:
    explicit JsonApp(JsonParams params = {});

    std::string name() const override { return "JsonParsing"; }
    lang::Program program() const override;
    BitBuffer generateStream(Rng &rng, uint64_t approx_bytes) const override;
    BitBuffer golden(const BitBuffer &stream) const override;

    /** Serialized trie prologue for this field set. */
    const std::vector<uint8_t> &trieConfig() const { return config_; }

  private:
    JsonParams params_;
    std::vector<uint8_t> config_;
};

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_JSON_H
