#ifndef FLEET_APPS_INTCODE_H
#define FLEET_APPS_INTCODE_H

/**
 * @file
 * Integer coding (Section 7.1). The unit compresses blocks of four
 * consecutive 32-bit integers: sixteen candidate fixed widths (2, 4, ...,
 * 32 bits) are costed in parallel in a single virtual cycle; integers
 * that fit the chosen width go to a main section and the rest to an
 * exception section coded with variable-byte encoding — the OptPFD-style
 * scheme the paper describes. Output tokens are 8 bits (the paper notes
 * dynamic shifts are expensive, so output words are assembled a byte at
 * a time), and each block is byte-aligned for decodability.
 *
 * Block format: header byte (low nibble = width index, high nibble =
 * exception bitmap), main section (fitting integers packed at the chosen
 * width, in order), exception section (var-byte, 7 data bits per byte,
 * bit 7 = continuation), zero-padded to a byte boundary.
 *
 * A software decoder (decode()) round-trips the format in tests.
 */

#include "apps/app.h"

namespace fleet {
namespace apps {

struct IntcodeParams
{
    /** Integers drawn uniformly from [0, 2^maxValueBits). The paper's
     * experiment averages runs over maxValueBits in {5,10,15,20,25}. */
    int maxValueBits = 15;
};

class IntcodeApp : public Application
{
  public:
    static constexpr int kBlockInts = 4;

    explicit IntcodeApp(IntcodeParams params = {}) : params_(params) {}

    std::string name() const override { return "IntegerCoding"; }
    lang::Program program() const override;
    BitBuffer generateStream(Rng &rng, uint64_t approx_bytes) const override;
    BitBuffer golden(const BitBuffer &stream) const override;

    /** Decode an encoded stream back to the original integers. */
    static std::vector<uint32_t> decode(const BitBuffer &encoded);

    /** Cost (in bits) of var-byte coding a value. */
    static int varByteBits(uint32_t value);

  private:
    IntcodeParams params_;
};

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_INTCODE_H
