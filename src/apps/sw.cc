#include "apps/sw.h"

#include <algorithm>

#include "lang/builder.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace apps {

using lang::ProgramBuilder;
using lang::Value;
using lang::VecReg;
using lang::mux;

lang::Program
SwApp::program() const
{
    const int m = params_.targetLen;
    const int w = params_.cellBits;
    const uint64_t cell_max = mask64(w);
    if (params_.matchScore <= 0 || params_.mismatchScore > 0 ||
        params_.gapScore > 0) {
        fatal("SwApp: expects positive match and non-positive "
              "mismatch/gap scores");
    }
    const uint64_t ms = uint64_t(params_.matchScore);
    const uint64_t mp = uint64_t(-params_.mismatchScore);
    const uint64_t gp = uint64_t(-params_.gapScore);

    ProgramBuilder b("SmithWaterman", 8, 32);
    VecReg target = b.vreg("target", m, 8);
    VecReg row = b.vreg("row", m, w);
    Value threshold = b.reg("threshold", 8, 255);
    Value cfgIdx = b.reg("cfgIdx", bitsToRepresent(uint64_t(m + 1)), 0);
    Value index = b.reg("index", 32, 0);

    // Saturating helpers on w-bit cells.
    auto sat_add = [&](const Value &x, uint64_t k) {
        return mux(x >= Value::lit(cell_max - k + 1, w),
                   Value::lit(cell_max, w), (x + Value::lit(k, w)).resize(w));
    };
    auto sat_sub = [&](const Value &x, uint64_t k) {
        if (k == 0)
            return x;
        return mux(x >= Value::lit(k, w), (x - Value::lit(k, w)).resize(w),
                   Value::lit(0, w));
    };
    auto max2 = [&](const Value &a, const Value &c) {
        return mux(a >= c, a, c);
    };

    Value in_config = cfgIdx <= uint64_t(m);
    b.if_(in_config && !b.streamFinished(), [&] {
        b.if_(cfgIdx < uint64_t(m), [&] {
            b.assign(target[cfgIdx.resize(indexWidth(m))], b.input());
        }).else_([&] {
            b.assign(threshold, b.input());
        });
        b.assign(cfgIdx, cfgIdx + 1);
    }).elseIf(!b.streamFinished(), [&] {
        // One DP row update per text character; the left-neighbour term
        // uses the *new* value of the previous cell, giving the classic
        // single-row systolic update.
        std::vector<Value> new_cells;
        Value any_hit = Value::lit(0, 1);
        for (int j = 0; j < m; ++j) {
            Value diag_old = j == 0 ? Value::lit(0, w)
                                    : row[Value::lit(j - 1, indexWidth(m))];
            Value up_old = row[Value::lit(j, indexWidth(m))];
            Value match = target[Value::lit(j, indexWidth(m))] == b.input();
            Value diag_cand =
                mux(match, sat_add(diag_old, ms), sat_sub(diag_old, mp));
            Value up_cand = sat_sub(up_old, gp);
            Value cell = max2(diag_cand, up_cand);
            if (j > 0)
                cell = max2(cell, sat_sub(new_cells[j - 1], gp));
            new_cells.push_back(cell);
            any_hit = any_hit || (cell >= threshold.resize(w));
        }
        for (int j = 0; j < m; ++j)
            b.assign(row[Value::lit(j, indexWidth(m))], new_cells[j]);
        b.if_(any_hit, [&] { b.emit(index); });
        b.assign(index, (index + 1).resize(32));
    });

    return b.finish();
}

BitBuffer
SwApp::generateStream(Rng &rng, uint64_t approx_bytes) const
{
    static const char kAlphabet[] = "ACGT";
    BitBuffer stream;
    // Target: a random DNA-like pattern.
    std::vector<uint8_t> target;
    for (int j = 0; j < params_.targetLen; ++j)
        target.push_back(kAlphabet[rng.nextBelow(4)]);
    for (uint8_t c : target)
        stream.appendBits(c, 8);
    // Threshold: requires a strong (but not exact) alignment.
    uint64_t threshold = uint64_t(params_.matchScore) *
                         (params_.targetLen - 3);
    stream.appendBits(threshold, 8);
    // Text: random with occasional near-matches of the target planted.
    uint64_t text_len = approx_bytes;
    for (uint64_t i = 0; i < text_len;) {
        if (rng.nextChance(1, 500) && i + target.size() < text_len) {
            for (uint8_t c : target) {
                // ~10% mutation rate.
                uint8_t out = rng.nextChance(1, 10)
                                  ? kAlphabet[rng.nextBelow(4)]
                                  : c;
                stream.appendBits(out, 8);
                ++i;
            }
        } else {
            stream.appendBits(kAlphabet[rng.nextBelow(4)], 8);
            ++i;
        }
    }
    return stream;
}

BitBuffer
SwApp::golden(const BitBuffer &stream) const
{
    const int m = params_.targetLen;
    const uint64_t cell_max = mask64(params_.cellBits);
    const uint64_t ms = uint64_t(params_.matchScore);
    const uint64_t mp = uint64_t(-params_.mismatchScore);
    const uint64_t gp = uint64_t(-params_.gapScore);

    BitBuffer out;
    uint64_t tokens = stream.sizeBits() / 8;
    if (tokens < uint64_t(m) + 1)
        return out;
    std::vector<uint8_t> target(m);
    for (int j = 0; j < m; ++j)
        target[j] = uint8_t(stream.readBits(j * 8, 8));
    uint64_t threshold = stream.readBits(uint64_t(m) * 8, 8);

    auto sat_add = [&](uint64_t x, uint64_t k) {
        return std::min(cell_max, x + k);
    };
    auto sat_sub = [&](uint64_t x, uint64_t k) {
        return x >= k ? x - k : 0;
    };

    std::vector<uint64_t> row(m, 0);
    uint64_t index = 0;
    for (uint64_t t = uint64_t(m) + 1; t < tokens; ++t) {
        uint8_t c = uint8_t(stream.readBits(t * 8, 8));
        std::vector<uint64_t> next(m, 0);
        bool hit = false;
        for (int j = 0; j < m; ++j) {
            uint64_t diag_old = j == 0 ? 0 : row[j - 1];
            uint64_t diag_cand = target[j] == c ? sat_add(diag_old, ms)
                                                : sat_sub(diag_old, mp);
            uint64_t cell = std::max(diag_cand, sat_sub(row[j], gp));
            if (j > 0)
                cell = std::max(cell, sat_sub(next[j - 1], gp));
            next[j] = cell;
            hit = hit || cell >= threshold;
        }
        row = next;
        if (hit)
            out.appendBits(index, 32);
        ++index;
    }
    return out;
}

} // namespace apps
} // namespace fleet
