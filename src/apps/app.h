#ifndef FLEET_APPS_APP_H
#define FLEET_APPS_APP_H

/**
 * @file
 * Common interface for the six evaluation applications (Section 7.1 of
 * the paper): JSON field extraction, integer coding, gradient-boosted
 * decision trees, Smith-Waterman fuzzy matching, regex matching, and
 * Bloom filter construction. Each application provides:
 *
 *  - program(): the processing unit written in the Fleet language;
 *  - generateStream(): a representative workload stream (one per PU);
 *  - golden(): a straightforward reference implementation used to verify
 *    every backend's output.
 *
 * The registry (registry.h) exposes all six for the test suites and the
 * benchmark harnesses.
 */

#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "util/bitbuf.h"
#include "util/rng.h"

namespace fleet {
namespace apps {

class Application
{
  public:
    virtual ~Application() = default;

    virtual std::string name() const = 0;

    /** The Fleet processing-unit program. */
    virtual lang::Program program() const = 0;

    /**
     * Generate one input stream of roughly `approx_bytes` payload
     * (config prologue included). Streams are independent per PU, as in
     * the paper's model.
     */
    virtual BitBuffer generateStream(Rng &rng,
                                     uint64_t approx_bytes) const = 0;

    /** Reference output for a stream (must match all backends). */
    virtual BitBuffer golden(const BitBuffer &stream) const = 0;
};

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_APP_H
