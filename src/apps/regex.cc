#include "apps/regex.h"

#include "lang/builder.h"
#include "util/logging.h"

namespace fleet {
namespace apps {

using lang::ProgramBuilder;
using lang::Value;

lang::Program
RegexApp::program() const
{
    const int positions = nfa_.numPositions();
    ProgramBuilder b("Regex", 8, 32);

    std::vector<Value> state;
    for (int p = 0; p < positions; ++p)
        state.push_back(b.reg("s" + std::to_string(p), 1, 0));
    Value index = b.reg("index", 32, 0);

    // Character-class tests as comparator trees on the input token.
    auto class_match = [&](int p) {
        Value match = Value::lit(0, 1);
        for (auto [lo, hi] : classIntervals(nfa_.positionClass[p])) {
            Value term = lo == hi
                             ? (b.input() == Value::lit(lo, 8))
                             : (b.input() >= Value::lit(lo, 8) &&
                                b.input() <= Value::lit(hi, 8));
            match = match || term;
        }
        return match;
    };

    // Precompute predecessor lists: pred(p) = { q : p in follow(q) }.
    std::vector<std::vector<int>> preds(positions);
    for (int q = 0; q < positions; ++q)
        for (int p : nfa_.follow[q])
            preds[p].push_back(q);

    b.if_(!b.streamFinished(), [&] {
        std::vector<Value> next;
        for (int p = 0; p < positions; ++p) {
            Value feed = nfa_.first[p] ? Value::lit(1, 1) : Value::lit(0, 1);
            for (int q : preds[p])
                feed = feed || state[q];
            next.push_back(class_match(p) && feed);
        }
        Value any_match = Value::lit(0, 1);
        for (int p = 0; p < positions; ++p) {
            if (nfa_.last[p])
                any_match = any_match || next[p];
            b.assign(state[p], next[p]);
        }
        b.if_(any_match, [&] { b.emit(index); });
        b.assign(index, (index + 1).resize(32));
    });

    return b.finish();
}

BitBuffer
RegexApp::generateStream(Rng &rng, uint64_t approx_bytes) const
{
    // Log-like lines with emails sprinkled in.
    static const char *kWords[] = {"request", "from", "user", "at",
                                   "warning", "failed", "login", "for"};
    static const char *kUsers[] = {"alice", "bob", "carol.d", "eve+spam"};
    static const char *kHosts[] = {"example.com", "mail.net",
                                   "lists.acm.org"};
    std::string text;
    while (text.size() < approx_bytes) {
        int words = 3 + static_cast<int>(rng.nextBelow(8));
        for (int w = 0; w < words; ++w) {
            if (rng.nextChance(1, 12)) {
                text += kUsers[rng.nextBelow(4)];
                text += '@';
                text += kHosts[rng.nextBelow(3)];
            } else {
                text += kWords[rng.nextBelow(8)];
            }
            text += ' ';
        }
        text += '\n';
    }
    text.resize(approx_bytes);
    return BitBuffer::fromString(text);
}

BitBuffer
RegexApp::golden(const BitBuffer &stream) const
{
    BitBuffer out;
    std::vector<bool> state(nfa_.numPositions(), false);
    uint64_t tokens = stream.sizeBits() / 8;
    for (uint64_t i = 0; i < tokens; ++i) {
        uint8_t c = uint8_t(stream.readBits(i * 8, 8));
        if (nfa_.step(state, c))
            out.appendBits(i, 32);
    }
    return out;
}

} // namespace apps
} // namespace fleet
