#ifndef FLEET_APPS_REGEX_H
#define FLEET_APPS_REGEX_H

/**
 * @file
 * Regex matching (Section 7.1). The unit is generated at compile time
 * from a regex string following the NFA-circuit construction of Sidhu &
 * Prasanna: one single-bit register per Glushkov position, character
 * class tests as comparator trees on the input token, and an emit of the
 * current stream index whenever any accepting position fires. The default
 * pattern is the email regex from the benchmark suite the paper cites.
 */

#include "apps/app.h"
#include "apps/regex_nfa.h"

namespace fleet {
namespace apps {

struct RegexParams
{
    std::string pattern = "[\\w.+-]+@[\\w.-]+\\.[\\w.-]+";
};

class RegexApp : public Application
{
  public:
    explicit RegexApp(RegexParams params = {})
        : params_(std::move(params)), nfa_(buildRegexNfa(params_.pattern))
    {
    }

    std::string name() const override { return "Regex"; }
    lang::Program program() const override;
    BitBuffer generateStream(Rng &rng, uint64_t approx_bytes) const override;
    BitBuffer golden(const BitBuffer &stream) const override;

    const RegexNfa &nfa() const { return nfa_; }

  private:
    RegexParams params_;
    RegexNfa nfa_;
};

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_REGEX_H
