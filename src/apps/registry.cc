#include "apps/registry.h"

#include "apps/bloom.h"
#include "apps/dtree.h"
#include "apps/intcode.h"
#include "apps/json.h"
#include "apps/regex.h"
#include "apps/sw.h"
#include "util/logging.h"

namespace fleet {
namespace apps {

std::vector<std::unique_ptr<Application>>
allApplications()
{
    std::vector<std::unique_ptr<Application>> apps;
    apps.push_back(std::make_unique<JsonApp>());
    apps.push_back(std::make_unique<IntcodeApp>());
    apps.push_back(std::make_unique<DtreeApp>());
    apps.push_back(std::make_unique<SwApp>());
    apps.push_back(std::make_unique<RegexApp>());
    apps.push_back(std::make_unique<BloomApp>());
    return apps;
}

std::unique_ptr<Application>
makeApplication(const std::string &name)
{
    for (auto &app : allApplications())
        if (app->name() == name)
            return std::move(app);
    fatal("unknown application '", name, "'");
}

} // namespace apps
} // namespace fleet
