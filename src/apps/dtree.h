#ifndef FLEET_APPS_DTREE_H
#define FLEET_APPS_DTREE_H

/**
 * @file
 * Gradient-boosted decision tree evaluation (Section 7.1). The unit loads
 * the tree nodes (located at the start of the stream) into a BRAM, then
 * evaluates the ensemble on each datapoint — a runtime-configurable
 * number of 32-bit features — emitting one 32-bit score per datapoint.
 *
 * Tree walking alternates two virtual-cycle phases (node fetch, feature
 * test) so that each BRAM is read at most once per virtual cycle and no
 * read depends on another read in the same cycle — this is the paper's
 * "one comparison per BRAM read" behaviour that makes the application
 * BRAM-throughput-bound.
 *
 * Stream layout (32-bit tokens):
 *   [numTrees][numFeatures][numNodes][roots x numTrees]
 *   [2 tokens per node: meta, value] [datapoints: numFeatures tokens each]
 * Node meta: bit31 = isLeaf, bits30..20 = featureIdx, bits19..10 = left,
 * bits9..0 = right. Value: threshold for interior nodes (unsigned
 * compare, feature <= threshold goes left), additive leaf score for
 * leaves (mod 2^32).
 */

#include "apps/app.h"

namespace fleet {
namespace apps {

struct DtreeParams
{
    int maxNodes = 1024;
    int maxFeatures = 256;
    int maxTrees = 16;
    // Workload shape for generateStream. The default ensemble keeps the
    // application BRAM-throughput-bound, as in the paper ("does only one
    // comparison for each BRAM read"): 16 trees of depth <= 5 mean a
    // datapoint's evaluation takes far more virtual cycles than its
    // feature loading.
    int genTrees = 16;
    int genDepth = 5;
    int genFeatures = 12;
};

class DtreeApp : public Application
{
  public:
    explicit DtreeApp(DtreeParams params = {}) : params_(params) {}

    std::string name() const override { return "DecisionTree"; }
    lang::Program program() const override;
    BitBuffer generateStream(Rng &rng, uint64_t approx_bytes) const override;
    BitBuffer golden(const BitBuffer &stream) const override;

    const DtreeParams &params() const { return params_; }

  private:
    DtreeParams params_;
};

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_DTREE_H
