#include "apps/intcode.h"

#include "lang/builder.h"
#include "lang/stdlib.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace apps {

using lang::ProgramBuilder;
using lang::Value;
using lang::VecReg;
using lang::mux;

int
IntcodeApp::varByteBits(uint32_t value)
{
    int bytes = 1;
    while (value >= 128) {
        value >>= 7;
        ++bytes;
    }
    return bytes * 8;
}

lang::Program
IntcodeApp::program() const
{
    constexpr int kWidths = 16; // 2, 4, ..., 32 bits.
    constexpr int B = kBlockInts;

    ProgramBuilder b("IntegerCoding", 32, 8);
    VecReg blk = b.vreg("blk", B, 32);
    Value blkIdx = b.reg("blkIdx", 2, 0);
    Value busy = b.reg("busy", 1, 0);
    Value phase = b.reg("phase", 3, 0); // 0=hdr 1=main 2=exc 3=flush
    Value fieldIdx = b.reg("fieldIdx", 3, 0);
    Value widthIdx = b.reg("widthIdx", 4, 0);
    Value bitmap = b.reg("bitmap", B, 0);
    lang::lib::BitPacker packer(b, "out", 8, 64);
    Value excVal = b.reg("excVal", 32, 0);
    Value excActive = b.reg("excActive", 1, 0);

    // Var-byte cost of a 32-bit value, as a combinational priority chain.
    auto vb_bits = [&](const Value &v) {
        Value bits = Value::lit(40, 6);
        bits = mux(v < Value::lit(1ull << 28, 32), 32, bits);
        bits = mux(v < Value::lit(1ull << 21, 32), 24, bits);
        bits = mux(v < Value::lit(1ull << 14, 32), 16, bits);
        bits = mux(v < Value::lit(1ull << 7, 32), 8, bits);
        return bits;
    };
    auto fits = [&](const Value &v, int width_bits) {
        if (width_bits >= 32)
            return Value::lit(1, 1);
        return (v >> Value::lit(width_bits, 6)) == Value::lit(0, 32);
    };

    // --- Block collection (one integer per final virtual cycle) ---------
    // The fourth integer of a block is `input` during its collection
    // cycle, so the parallel cost evaluation uses three vector-register
    // reads plus the live token.
    std::vector<Value> ints = {blk[Value::lit(0, 2)], blk[Value::lit(1, 2)],
                               blk[Value::lit(2, 2)], b.input()};

    // Parallel costing of all sixteen widths (the "tries sixteen fixed
    // width encodings in parallel" of Section 7.1, fused into one cycle).
    Value best_idx = Value::lit(kWidths - 1, 4);
    Value best_cost = Value::lit(0, 9);
    Value best_map = Value::lit(0, B);
    {
        std::vector<Value> costs, maps;
        for (int i = 0; i < kWidths; ++i) {
            int width_bits = 2 * (i + 1);
            Value cost = Value::lit(0, 9);
            Value map = Value::lit(0, B);
            for (int j = 0; j < B; ++j) {
                Value fit = fits(ints[j], width_bits);
                cost = (cost +
                        mux(fit, Value::lit(width_bits, 6),
                            vb_bits(ints[j])))
                           .resize(9);
                map = (map | (mux(fit, Value::lit(0, 1), Value::lit(1, 1))
                                  .resize(B)
                              << Value::lit(j, 2)))
                          .resize(B);
            }
            costs.push_back(cost);
            maps.push_back(map);
        }
        best_cost = costs[kWidths - 1];
        best_map = maps[kWidths - 1];
        for (int i = kWidths - 2; i >= 0; --i) {
            Value take = costs[i] <= best_cost;
            best_idx = mux(take, Value::lit(i, 4), best_idx);
            best_cost = mux(take, costs[i], best_cost);
            best_map = mux(take, maps[i], best_map);
        }
    }

    b.if_(!b.streamFinished(), [&] {
        b.assign(blk[blkIdx], b.input());
        b.assign(blkIdx, blkIdx + 1);
        b.if_(blkIdx == 3, [&] {
            b.assign(widthIdx, best_idx);
            b.assign(bitmap, best_map);
            b.assign(busy, Value::lit(1, 1));
            b.assign(phase, Value::lit(0, 3));
            b.assign(fieldIdx, Value::lit(0, 3));
            packer.clear();
        });
    });

    // --- Block emission state machine ------------------------------------
    Value chosen_bits = ((widthIdx.resize(6) + 1) << Value::lit(1, 1));
    Value cur_int = blk[fieldIdx.resize(2)];

    b.while_(busy == 1, [&] {
        b.if_(packer.hasToken(), [&] {
            packer.emitToken();
        }).elseIf(phase == 0, [&] {
            // Header byte: low nibble width index, high nibble bitmap.
            packer.pushFixed(lang::cat(bitmap, widthIdx), 8);
            b.assign(phase, Value::lit(1, 3));
            b.assign(fieldIdx, Value::lit(0, 3));
        }).elseIf(phase == 1, [&] {
            b.if_(fieldIdx == uint64_t(B), [&] {
                b.assign(phase, Value::lit(2, 3));
                b.assign(fieldIdx, Value::lit(0, 3));
            }).elseIf((bitmap >> fieldIdx.resize(2)).slice(0, 0) == 0, [&] {
                // Main section: pack the fitting integer.
                packer.push(cur_int, chosen_bits);
                b.assign(fieldIdx, fieldIdx + 1);
            }).else_([&] {
                b.assign(fieldIdx, fieldIdx + 1);
            });
        }).elseIf(phase == 2, [&] {
            b.if_(fieldIdx == uint64_t(B), [&] {
                b.assign(phase, Value::lit(3, 3));
            }).elseIf(!excActive &&
                          (bitmap >> fieldIdx.resize(2)).slice(0, 0) == 0,
                      [&] {
                          b.assign(fieldIdx, fieldIdx + 1);
                      })
                .else_([&] {
                    // Var-byte emission, one byte per virtual cycle.
                    Value v = mux(excActive, excVal, cur_int);
                    Value more = (v >> Value::lit(7, 3)) != Value::lit(0, 32);
                    packer.pushFixed(lang::cat(more, v.slice(6, 0)), 8);
                    b.assign(excVal, (v >> Value::lit(7, 3)).resize(32));
                    b.assign(excActive, more);
                    b.if_(!more, [&] {
                        b.assign(fieldIdx, fieldIdx + 1);
                    });
                });
        }).else_([&] {
            // Flush: pad the final partial byte, then finish the block.
            b.if_(packer.pending(), [&] {
                packer.emitPadded();
            }).else_([&] {
                b.assign(busy, Value::lit(0, 1));
            });
        });
    });

    return b.finish();
}

BitBuffer
IntcodeApp::generateStream(Rng &rng, uint64_t approx_bytes) const
{
    uint64_t ints = std::max<uint64_t>(approx_bytes / 4, kBlockInts);
    ints = ints / kBlockInts * kBlockInts;
    BitBuffer stream;
    for (uint64_t i = 0; i < ints; ++i)
        stream.appendBits(rng.next() & mask64(params_.maxValueBits), 32);
    return stream;
}

BitBuffer
IntcodeApp::golden(const BitBuffer &stream) const
{
    constexpr int kWidths = 16;
    BitBuffer out;
    uint64_t count = stream.sizeBits() / 32;
    for (uint64_t base = 0; base + kBlockInts <= count;
         base += kBlockInts) {
        uint32_t ints[kBlockInts];
        for (int j = 0; j < kBlockInts; ++j)
            ints[j] = uint32_t(stream.readBits((base + j) * 32, 32));

        // Cost all widths; prefer the smallest on ties (matching the
        // unit's fold direction).
        int best_idx = kWidths - 1;
        int best_cost = -1;
        uint32_t best_map = 0;
        for (int i = kWidths - 1; i >= 0; --i) {
            int width_bits = 2 * (i + 1);
            int cost = 0;
            uint32_t map = 0;
            for (int j = 0; j < kBlockInts; ++j) {
                bool fit = width_bits >= 32 ||
                           (ints[j] >> width_bits) == 0;
                cost += fit ? width_bits : varByteBits(ints[j]);
                if (!fit)
                    map |= 1u << j;
            }
            if (best_cost < 0 || cost <= best_cost) {
                best_cost = cost;
                best_idx = i;
                best_map = map;
            }
        }

        // Emit the block, byte-aligned.
        BitBuffer block;
        block.appendBits(uint64_t(best_idx) | (uint64_t(best_map) << 4),
                         8);
        int width_bits = 2 * (best_idx + 1);
        for (int j = 0; j < kBlockInts; ++j)
            if (!(best_map & (1u << j)))
                block.appendBits(ints[j], width_bits);
        for (int j = 0; j < kBlockInts; ++j) {
            if (best_map & (1u << j)) {
                uint32_t v = ints[j];
                while (true) {
                    bool more = v >= 128;
                    block.appendBits((v & 0x7f) | (more ? 0x80 : 0), 8);
                    if (!more)
                        break;
                    v >>= 7;
                }
            }
        }
        block.padToMultipleOf(8);
        out.appendBuffer(block);
    }
    return out;
}

std::vector<uint32_t>
IntcodeApp::decode(const BitBuffer &encoded)
{
    std::vector<uint32_t> out;
    uint64_t pos = 0;
    while (pos + 8 <= encoded.sizeBits()) {
        uint64_t header = encoded.readBits(pos, 8);
        pos += 8;
        int width_idx = int(header & 0xf);
        uint32_t map = uint32_t(header >> 4);
        int width_bits = 2 * (width_idx + 1);
        uint32_t ints[kBlockInts];
        for (int j = 0; j < kBlockInts; ++j) {
            if (!(map & (1u << j))) {
                ints[j] = uint32_t(encoded.readBits(pos, width_bits));
                pos += width_bits;
            }
        }
        for (int j = 0; j < kBlockInts; ++j) {
            if (map & (1u << j)) {
                uint32_t v = 0;
                int shift = 0;
                while (true) {
                    uint64_t byte = encoded.readBits(pos, 8);
                    pos += 8;
                    v |= uint32_t(byte & 0x7f) << shift;
                    shift += 7;
                    if (!(byte & 0x80))
                        break;
                }
                ints[j] = v;
            }
        }
        pos = roundUp(pos, 8);
        for (int j = 0; j < kBlockInts; ++j)
            out.push_back(ints[j]);
    }
    return out;
}

} // namespace apps
} // namespace fleet
