#ifndef FLEET_APPS_BLOOM_H
#define FLEET_APPS_BLOOM_H

/**
 * @file
 * Bloom filter construction (Section 7.1). The unit hashes each 32-bit
 * item with k multiply-shift hash functions and sets bits in a BRAM-based
 * bitfield; after every block of items it emits the filter words and
 * clears them. Because a BRAM supports only one write per virtual cycle,
 * each item takes k virtual cycles (k-1 loop iterations plus the final
 * cycle) — the behaviour the paper cites when explaining the Bloom
 * filter's CPU-vectorizable structure (k identical hash computations per
 * token).
 *
 * Stream layout: 32-bit items only (no config prologue). Streams should
 * be a whole number of blocks so the final filter is emitted by the
 * stream-finished execution.
 */

#include "apps/app.h"

namespace fleet {
namespace apps {

struct BloomParams
{
    int blockItems = 512;   ///< Items per filter block.
    int filterBits = 4096;  ///< Bitfield size (power of two).
    int wordBits = 32;      ///< BRAM word width (= output token width).
    int numHashes = 8;      ///< k.
};

class BloomApp : public Application
{
  public:
    explicit BloomApp(BloomParams params = {}) : params_(params) {}

    std::string name() const override { return "BloomFilter"; }
    lang::Program program() const override;
    BitBuffer generateStream(Rng &rng, uint64_t approx_bytes) const override;
    BitBuffer golden(const BitBuffer &stream) const override;

    const BloomParams &params() const { return params_; }

    /** The k multiply-shift constants (shared with baselines). */
    static uint32_t hashConstant(int i);

  private:
    BloomParams params_;
};

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_BLOOM_H
