#include "apps/json.h"

#include <functional>
#include <map>
#include <memory>

#include "lang/builder.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace apps {

using lang::Bram;
using lang::ProgramBuilder;
using lang::Value;
using lang::mux;

namespace {

constexpr uint8_t kNone = 0xff;
constexpr uint32_t kFlagAccept = 1;
constexpr uint32_t kFlagLastSibling = 2;

/** In-memory trie used to build the config prologue. */
struct TrieLevel
{
    // Within one key segment: char -> continuation.
    struct Entry
    {
        std::unique_ptr<TrieLevel> within; ///< Longer keys this segment.
        std::unique_ptr<TrieLevel> down;   ///< Next segment (nested obj).
        bool accept = false;               ///< Full path ends here.
    };
    std::map<char, Entry> entries;
};

void
addPath(TrieLevel &level, const std::string &path, size_t pos)
{
    if (pos >= path.size())
        fatal("JsonApp: empty field path segment in '", path, "'");
    char c = path[pos];
    if (c == '.')
        fatal("JsonApp: empty segment in field path '", path, "'");
    TrieLevel::Entry &entry = level.entries[c];
    if (pos + 1 == path.size()) {
        entry.accept = true;
        return;
    }
    if (path[pos + 1] == '.') {
        if (!entry.down)
            entry.down = std::make_unique<TrieLevel>();
        addPath(*entry.down, path, pos + 2);
        return;
    }
    if (!entry.within)
        entry.within = std::make_unique<TrieLevel>();
    addPath(*entry.within, path, pos + 1);
}

struct FlatEntry
{
    uint8_t ch, within, down, flags;
};

/** Serialize levels depth-first: each sibling group occupies consecutive
 * entries (the unit walks a group by incrementing the index until it sees
 * the last-sibling flag). Returns the group's head index. */
uint8_t
flattenLevel(const TrieLevel &level, std::vector<FlatEntry> &out)
{
    size_t head = out.size();
    if (level.entries.empty())
        panic("JsonApp: empty trie level");
    if (head + level.entries.size() > 255)
        fatal("JsonApp: field set exceeds 255 trie nodes");
    out.resize(head + level.entries.size());
    size_t idx = head;
    for (const auto &[c, entry] : level.entries) {
        out[idx].ch = static_cast<uint8_t>(c);
        out[idx].flags = entry.accept ? kFlagAccept : 0;
        ++idx;
    }
    out[idx - 1].flags |= kFlagLastSibling;
    idx = head;
    for (const auto &[c, entry] : level.entries) {
        out[idx].within =
            entry.within ? flattenLevel(*entry.within, out) : kNone;
        out[idx].down = entry.down ? flattenLevel(*entry.down, out) : kNone;
        ++idx;
    }
    return static_cast<uint8_t>(head);
}

std::vector<uint8_t>
buildConfig(const std::vector<std::string> &fields)
{
    TrieLevel root;
    for (const auto &field : fields)
        addPath(root, field, 0);
    std::vector<FlatEntry> flat;
    uint8_t head = flattenLevel(root, flat);
    if (head != 0)
        panic("JsonApp: root group must start at entry 0");
    std::vector<uint8_t> config;
    config.push_back(static_cast<uint8_t>(flat.size()));
    for (const auto &entry : flat) {
        config.push_back(entry.ch);
        config.push_back(entry.within);
        config.push_back(entry.down);
        config.push_back(entry.flags);
    }
    return config;
}

// Parser modes for the text state machine.
enum Mode : uint64_t
{
    kIdle = 0,      // between records
    kExpectKey = 1, // after '{' or ','
    kKey = 2,       // inside a key string
    kAfterKey = 3,  // expecting ':'
    kValue = 4,     // expecting '"' or '{'
    kStr = 5,       // inside a string value
    kAfterVal = 6,  // expecting ',' or '}'
};

} // namespace

JsonApp::JsonApp(JsonParams params)
    : params_(std::move(params)), config_(buildConfig(params_.fields))
{
}

lang::Program
JsonApp::program() const
{
    ProgramBuilder b("JsonParsing", 8, 8);
    Bram trie = b.bram("trie", params_.maxTrieNodes, 32);
    Bram stack = b.bram("stack", params_.maxDepth, 8);

    // Config loading.
    Value cfgDone = b.reg("cfgDone", 1, 0);
    Value cfgN = b.reg("cfgN", 8, 0);
    Value cfgEntry = b.reg("cfgEntry", 8, 0);
    Value cfgByte = b.reg("cfgByte", 2, 0);
    Value cfgAccum = b.reg("cfgAccum", 24, 0);
    Value cfgHaveN = b.reg("cfgHaveN", 1, 0);

    // Candidate cache: the trie entry currently under consideration.
    Value candNode = b.reg("candNode", 8, 0);
    Value candChar = b.reg("candChar", 8, 0);
    Value candWithin = b.reg("candWithin", 8, 0);
    Value candDown = b.reg("candDown", 8, 0);
    Value candAccept = b.reg("candAccept", 1, 0);
    Value candLast = b.reg("candLast", 1, 0);
    Value candValid = b.reg("candValid", 1, 0);
    Value pendingLoad = b.reg("pendingLoad", 1, 0);
    Value loadAddr = b.reg("loadAddr", 8, 0);

    // Parser state.
    Value mode = b.reg("mode", 3, kIdle);
    Value ctx = b.reg("ctx", 8, kNone);
    Value depth = b.reg("depth", 7, 0);
    Value kLive = b.reg("kLive", 1, 0);
    Value mAccept = b.reg("mAccept", 1, 0);
    Value mDown = b.reg("mDown", 8, kNone);
    Value mSegEnd = b.reg("mSegEnd", 1, 0);
    Value capturing = b.reg("capturing", 1, 0);

    auto load_entry = [&](const Value &entry, const Value &node) {
        b.assign(candNode, node);
        b.assign(candChar, entry.slice(7, 0));
        b.assign(candWithin, entry.slice(15, 8));
        b.assign(candDown, entry.slice(23, 16));
        b.assign(candAccept, entry.bit(24));
        b.assign(candLast, entry.bit(25));
        b.assign(candValid, Value::lit(1, 1));
    };

    // --- Candidate refill (runs before the next token's final cycle) ----
    b.while_(pendingLoad == 1, [&] {
        load_entry(trie[loadAddr], loadAddr);
        b.assign(pendingLoad, Value::lit(0, 1));
    });

    // --- Sibling walk: mismatched candidate, more alternatives ----------
    Value walk = (pendingLoad == 0) && (mode == uint64_t(kKey)) &&
                 (kLive == 1) && (candValid == 1) &&
                 (candChar != b.input()) && (candLast == 0) &&
                 (b.input() != uint64_t('"')) && !b.streamFinished();
    b.while_(walk, [&] {
        Value next = (candNode + 1).resize(8);
        load_entry(trie[next], next);
    });

    // --- One token per final virtual cycle ------------------------------
    Value ch = b.input();
    auto is = [&](char c) { return ch == uint64_t(uint8_t(c)); };

    // Candidate group reload request (used at expect-key transitions).
    auto request_load = [&](const Value &addr) {
        b.assign(pendingLoad, (addr != uint64_t(kNone)).resize(1));
        b.assign(loadAddr, addr);
        b.assign(candValid, Value::lit(0, 1));
    };

    b.if_(!b.streamFinished(), [&] {
        b.if_(cfgDone == 0, [&] {
            b.if_(cfgHaveN == 0, [&] {
                b.assign(cfgN, ch);
                b.assign(cfgHaveN, Value::lit(1, 1));
                b.if_(ch == 0, [&] {
                    b.assign(cfgDone, Value::lit(1, 1));
                });
            }).else_([&] {
                b.if_(cfgByte == 3, [&] {
                    b.assign(trie[cfgEntry], lang::cat(ch, cfgAccum));
                    b.assign(cfgByte, Value::lit(0, 2));
                    b.assign(cfgAccum, Value::lit(0, 24));
                    b.if_((cfgEntry + 1).resize(8) == cfgN, [&] {
                        b.assign(cfgDone, Value::lit(1, 1));
                    });
                    b.assign(cfgEntry, cfgEntry + 1);
                }).else_([&] {
                    // Accumulate low-to-high: byte k lands at bits 8k.
                    b.assign(cfgAccum,
                             cfgAccum |
                                 (ch.resize(24)
                                  << lang::cat(cfgByte, Value::lit(0, 3))));
                    b.assign(cfgByte, cfgByte + 1);
                });
            });
        }).elseIf(mode == uint64_t(kIdle), [&] {
            b.if_(is('{'), [&] {
                b.assign(stack[depth.slice(5, 0)], ctx);
                b.assign(depth, depth + 1);
                Value root = mux(cfgN != 0, Value::lit(0, 8),
                                 Value::lit(kNone, 8));
                b.assign(ctx, root);
                request_load(root);
                b.assign(mode, Value::lit(kExpectKey, 3));
            });
        }).elseIf(mode == uint64_t(kExpectKey), [&] {
            b.if_(is('"'), [&] {
                b.assign(mode, Value::lit(kKey, 3));
                b.assign(kLive, (ctx != uint64_t(kNone)).resize(1));
                b.assign(mAccept, Value::lit(0, 1));
                b.assign(mDown, Value::lit(kNone, 8));
                b.assign(mSegEnd, Value::lit(0, 1));
            }).elseIf(is('}'), [&] {
                // Empty object.
                b.assign(depth, depth - 1);
                b.assign(ctx, stack[(depth - 1).slice(5, 0)]);
                b.assign(mode, mux(depth == 1, Value::lit(kIdle, 3),
                                   Value::lit(kAfterVal, 3)));
            });
        }).elseIf(mode == uint64_t(kKey), [&] {
            b.if_(is('"'), [&] {
                b.assign(mode, Value::lit(kAfterKey, 3));
            }).else_([&] {
                Value match = kLive && candValid && (candChar == ch);
                b.if_(match, [&] {
                    b.assign(mAccept, candAccept);
                    b.assign(mDown, candDown);
                    b.assign(mSegEnd,
                             candAccept ||
                                 (candDown != uint64_t(kNone)).resize(1));
                    request_load(candWithin);
                }).else_([&] {
                    // Walk already exhausted the sibling group.
                    b.assign(kLive, Value::lit(0, 1));
                    b.assign(mSegEnd, Value::lit(0, 1));
                });
            });
        }).elseIf(mode == uint64_t(kAfterKey), [&] {
            b.if_(is(':'), [&] {
                b.assign(mode, Value::lit(kValue, 3));
            });
        }).elseIf(mode == uint64_t(kValue), [&] {
            b.if_(is('"'), [&] {
                b.assign(mode, Value::lit(kStr, 3));
                b.assign(capturing, kLive && mSegEnd && mAccept);
            }).elseIf(is('{'), [&] {
                b.assign(stack[depth.slice(5, 0)], ctx);
                b.assign(depth, depth + 1);
                Value newctx = mux(kLive && mSegEnd, mDown,
                                   Value::lit(kNone, 8));
                b.assign(ctx, newctx);
                request_load(newctx);
                b.assign(mode, Value::lit(kExpectKey, 3));
            });
        }).elseIf(mode == uint64_t(kStr), [&] {
            b.if_(is('"'), [&] {
                b.if_(capturing == 1, [&] {
                    b.emit(Value::lit('\n', 8));
                });
                b.assign(capturing, Value::lit(0, 1));
                b.assign(mode, Value::lit(kAfterVal, 3));
            }).else_([&] {
                b.if_(capturing == 1, [&] { b.emit(ch); });
            });
        }).else_([&] { // kAfterVal
            b.if_(is(','), [&] {
                b.assign(mode, Value::lit(kExpectKey, 3));
                request_load(ctx);
            }).elseIf(is('}'), [&] {
                b.assign(depth, depth - 1);
                b.assign(ctx, stack[(depth - 1).slice(5, 0)]);
                b.assign(mode, mux(depth == 1, Value::lit(kIdle, 3),
                                   Value::lit(kAfterVal, 3)));
            });
        });
    });

    return b.finish();
}

BitBuffer
JsonApp::generateStream(Rng &rng, uint64_t approx_bytes) const
{
    // Key pool: the field-path segments plus decoys (including prefixes
    // and extensions of real segments to stress the trie walk).
    std::vector<std::string> segments;
    for (const auto &field : params_.fields) {
        size_t start = 0;
        while (start < field.size()) {
            size_t dot = field.find('.', start);
            if (dot == std::string::npos)
                dot = field.size();
            segments.push_back(field.substr(start, dot - start));
            start = dot + 1;
        }
    }
    std::vector<std::string> decoys = {"status", "x", "na", "namex",
                                       "userx", "idx", "i", "geoz"};
    static const char kValueChars[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 -_";

    std::string text;
    auto random_value = [&] {
        std::string v;
        int len = 1 + static_cast<int>(rng.nextBelow(12));
        for (int i = 0; i < len; ++i)
            v += kValueChars[rng.nextBelow(sizeof(kValueChars) - 1)];
        return v;
    };

    std::function<void(int)> gen_object = [&](int depth) {
        text += '{';
        int pairs = 1 + static_cast<int>(rng.nextBelow(4));
        for (int i = 0; i < pairs; ++i) {
            if (i > 0)
                text += ',';
            const std::string &key =
                rng.nextChance(1, 2)
                    ? segments[rng.nextBelow(segments.size())]
                    : decoys[rng.nextBelow(decoys.size())];
            text += '"';
            text += key;
            text += "\":";
            if (depth < 3 && rng.nextChance(1, 3)) {
                gen_object(depth + 1);
            } else {
                text += '"';
                text += random_value();
                text += '"';
            }
        }
        text += '}';
    };

    while (text.size() < approx_bytes) {
        gen_object(0);
        text += '\n';
    }

    BitBuffer stream;
    for (uint8_t byte : config_)
        stream.appendBits(byte, 8);
    stream.appendBuffer(BitBuffer::fromString(text));
    return stream;
}

BitBuffer
JsonApp::golden(const BitBuffer &stream) const
{
    // Skip the config prologue.
    uint64_t pos = (1 + 4 * uint64_t(config_[0])) * 8;
    std::string text;
    while (pos + 8 <= stream.sizeBits()) {
        text += static_cast<char>(stream.readBits(pos, 8));
        pos += 8;
    }

    // Direct recursive-descent reference: emit values whose full dotted
    // path is in the field set (independent of the trie encoding, so the
    // trie construction itself is under test).
    std::string out;
    size_t i = 0;
    std::function<void(const std::string &)> parse_object =
        [&](const std::string &prefix) {
            ++i; // '{'
            if (i < text.size() && text[i] == '}') {
                ++i;
                return;
            }
            while (i < text.size()) {
                ++i; // '"'
                std::string key;
                while (i < text.size() && text[i] != '"')
                    key += text[i++];
                ++i; // '"'
                ++i; // ':'
                std::string path =
                    prefix.empty() ? key : prefix + "." + key;
                if (text[i] == '{') {
                    parse_object(path);
                } else {
                    ++i; // '"'
                    std::string value;
                    while (i < text.size() && text[i] != '"')
                        value += text[i++];
                    ++i; // '"'
                    for (const auto &field : params_.fields) {
                        if (field == path) {
                            out += value;
                            out += '\n';
                            break;
                        }
                    }
                }
                if (text[i] == ',') {
                    ++i;
                    continue;
                }
                ++i; // '}'
                return;
            }
        };
    while (i < text.size()) {
        if (text[i] == '{')
            parse_object("");
        else
            ++i;
    }
    return BitBuffer::fromString(out);
}

} // namespace apps
} // namespace fleet
