#ifndef FLEET_APPS_REGISTRY_H
#define FLEET_APPS_REGISTRY_H

/**
 * @file
 * Registry of the six evaluation applications, in the order of the
 * paper's Figure 7.
 */

#include <memory>
#include <vector>

#include "apps/app.h"

namespace fleet {
namespace apps {

/** All six applications with default parameters. */
std::vector<std::unique_ptr<Application>> allApplications();

/** One application by name (throws FatalError if unknown). */
std::unique_ptr<Application> makeApplication(const std::string &name);

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_REGISTRY_H
