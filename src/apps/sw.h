#ifndef FLEET_APPS_SW_H
#define FLEET_APPS_SW_H

/**
 * @file
 * Smith-Waterman fuzzy matching (Section 7.1). The unit holds one row of
 * the dynamic-programming matrix in m vector-register cells (m = 16 in
 * the paper's experiments), updating all of them in a single virtual
 * cycle per stream character, and emits the current stream index whenever
 * any cell meets the runtime-provided score threshold.
 *
 * Stream layout: m bytes of target string, 1 byte threshold, then the
 * text. Affine gaps are not modelled: linear gap penalty, as in the
 * classic recurrence H[i][j] = max(0, H[i-1][j-1]+s, H[i-1][j]-g,
 * H[i][j-1]-g).
 */

#include "apps/app.h"

namespace fleet {
namespace apps {

struct SwParams
{
    int targetLen = 16;    ///< m.
    int matchScore = 2;
    int mismatchScore = -1;
    int gapScore = -1;
    int cellBits = 8;      ///< DP cell width (scores saturate below 2^8).
};

class SwApp : public Application
{
  public:
    explicit SwApp(SwParams params = {}) : params_(params) {}

    std::string name() const override { return "SmithWaterman"; }
    lang::Program program() const override;
    BitBuffer generateStream(Rng &rng, uint64_t approx_bytes) const override;
    BitBuffer golden(const BitBuffer &stream) const override;

    const SwParams &params() const { return params_; }

  private:
    SwParams params_;
};

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_SW_H
