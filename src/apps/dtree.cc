#include "apps/dtree.h"

#include "lang/builder.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace apps {

using lang::Bram;
using lang::ProgramBuilder;
using lang::Value;
using lang::VecReg;
using lang::mux;

lang::Program
DtreeApp::program() const
{
    const int node_addr = indexWidth(params_.maxNodes);
    const int feat_addr = indexWidth(params_.maxFeatures);
    const int tree_idx_bits = bitsToRepresent(uint64_t(params_.maxTrees));

    ProgramBuilder b("DecisionTree", 32, 32);
    Bram nodes = b.bram("nodes", params_.maxNodes, 64);
    Bram features = b.bram("features", params_.maxFeatures, 32);
    VecReg roots = b.vreg("roots", params_.maxTrees, node_addr);

    // Configuration registers.
    Value mode = b.reg("mode", 2, 0); // 0=counts 1=roots 2=nodes 3=data
    Value cfgCount = b.reg("cfgCount", 2, 0);
    Value numTrees = b.reg("numTrees", tree_idx_bits, 0);
    Value numFeatures = b.reg("numFeatures", feat_addr + 1, 0);
    Value numNodes = b.reg("numNodes", node_addr + 1, 0);
    Value loadCount = b.reg("loadCount", node_addr + 1, 0);
    Value pairPhase = b.reg("pairPhase", 1, 0);
    Value pendingMeta = b.reg("pendingMeta", 32, 0);

    // Evaluation registers.
    Value featIdx = b.reg("featIdx", feat_addr + 1, 0);
    Value busy = b.reg("busy", 1, 0);
    Value evalPhase = b.reg("evalPhase", 1, 0); // 0=fetch node 1=test
    Value treeIdx = b.reg("treeIdx", tree_idx_bits, 0);
    Value curNode = b.reg("curNode", node_addr, 0);
    Value nodeFeat = b.reg("nodeFeat", feat_addr, 0);
    Value nodeLeft = b.reg("nodeLeft", node_addr, 0);
    Value nodeRight = b.reg("nodeRight", node_addr, 0);
    Value nodeThresh = b.reg("nodeThresh", 32, 0);
    Value sum = b.reg("sum", 32, 0);

    // --- Ensemble evaluation (runs between datapoints) ------------------
    b.while_(busy == 1, [&] {
        b.if_(evalPhase == 0, [&] {
            Value entry = nodes[curNode];
            Value meta = entry.slice(31, 0);
            Value value = entry.slice(63, 32);
            Value is_leaf = meta.bit(31);
            b.if_(is_leaf, [&] {
                Value new_sum = (sum + value).resize(32);
                b.if_(treeIdx == (numTrees - 1).resize(tree_idx_bits), [&] {
                    b.emit(new_sum);
                    b.assign(busy, Value::lit(0, 1));
                }).else_([&] {
                    b.assign(treeIdx, treeIdx + 1);
                    b.assign(curNode, roots[(treeIdx + 1)
                                                .resize(tree_idx_bits)
                                                .resize(indexWidth(
                                                    params_.maxTrees))]);
                });
                b.assign(sum, new_sum);
            }).else_([&] {
                b.assign(nodeFeat, meta.slice(30, 20).resize(feat_addr));
                b.assign(nodeLeft, meta.slice(19, 10).resize(node_addr));
                b.assign(nodeRight, meta.slice(9, 0).resize(node_addr));
                b.assign(nodeThresh, value);
                b.assign(evalPhase, Value::lit(1, 1));
            });
        }).else_([&] {
            Value f = features[nodeFeat];
            b.assign(curNode, mux(f <= nodeThresh, nodeLeft, nodeRight));
            b.assign(evalPhase, Value::lit(0, 1));
        });
    });

    // --- Stream parsing (one token per final virtual cycle) -------------
    b.if_(!b.streamFinished(), [&] {
        b.if_(mode == 0, [&] {
            b.if_(cfgCount == 0, [&] {
                b.assign(numTrees, b.input().resize(tree_idx_bits));
            }).elseIf(cfgCount == 1, [&] {
                b.assign(numFeatures, b.input().resize(feat_addr + 1));
            }).else_([&] {
                b.assign(numNodes, b.input().resize(node_addr + 1));
                b.assign(mode, Value::lit(1, 2));
                b.assign(loadCount, Value::lit(0, node_addr + 1));
            });
            b.assign(cfgCount, cfgCount + 1);
        }).elseIf(mode == 1, [&] {
            b.assign(roots[loadCount.resize(indexWidth(params_.maxTrees))],
                     b.input().resize(node_addr));
            b.if_((loadCount + 1).resize(node_addr + 1) ==
                      numTrees.resize(node_addr + 1), [&] {
                b.assign(mode, Value::lit(2, 2));
                b.assign(loadCount, Value::lit(0, node_addr + 1));
            }).else_([&] {
                b.assign(loadCount, loadCount + 1);
            });
        }).elseIf(mode == 2, [&] {
            b.if_(pairPhase == 0, [&] {
                b.assign(pendingMeta, b.input());
                b.assign(pairPhase, Value::lit(1, 1));
            }).else_([&] {
                b.assign(nodes[loadCount.resize(node_addr)],
                         lang::cat(b.input(), pendingMeta));
                b.assign(pairPhase, Value::lit(0, 1));
                b.if_((loadCount + 1).resize(node_addr + 1) == numNodes,
                      [&] {
                          b.assign(mode, Value::lit(3, 2));
                          b.assign(loadCount, Value::lit(0, node_addr + 1));
                      })
                    .else_([&] { b.assign(loadCount, loadCount + 1); });
            });
        }).else_([&] {
            // Datapoint feature loading.
            b.assign(features[featIdx.resize(feat_addr)], b.input());
            b.if_((featIdx + 1).resize(feat_addr + 1) == numFeatures, [&] {
                b.assign(featIdx, Value::lit(0, feat_addr + 1));
                b.assign(busy, Value::lit(1, 1));
                b.assign(evalPhase, Value::lit(0, 1));
                b.assign(treeIdx, Value::lit(0, tree_idx_bits));
                b.assign(curNode,
                         roots[Value::lit(0,
                                          indexWidth(params_.maxTrees))]);
                b.assign(sum, Value::lit(0, 32));
            }).else_([&] {
                b.assign(featIdx, featIdx + 1);
            });
        });
    });

    return b.finish();
}

namespace {

struct TreeNode
{
    bool isLeaf;
    uint32_t featureIdx;
    uint32_t left, right;
    uint32_t value; ///< Threshold or leaf score.
};

uint32_t
buildRandomTree(Rng &rng, std::vector<TreeNode> &nodes, int depth,
                int num_features)
{
    uint32_t idx = static_cast<uint32_t>(nodes.size());
    nodes.push_back({});
    if (depth == 0 || rng.nextChance(1, 5)) {
        nodes[idx] = TreeNode{true, 0, 0, 0,
                              uint32_t(rng.nextBelow(1000))};
        return idx;
    }
    uint32_t feat = uint32_t(rng.nextBelow(uint64_t(num_features)));
    uint32_t thresh = uint32_t(rng.next());
    uint32_t left = buildRandomTree(rng, nodes, depth - 1, num_features);
    uint32_t right = buildRandomTree(rng, nodes, depth - 1, num_features);
    nodes[idx] = TreeNode{false, feat, left, right, thresh};
    return idx;
}

} // namespace

BitBuffer
DtreeApp::generateStream(Rng &rng, uint64_t approx_bytes) const
{
    std::vector<TreeNode> nodes;
    std::vector<uint32_t> tree_roots;
    for (int t = 0; t < params_.genTrees; ++t)
        tree_roots.push_back(buildRandomTree(rng, nodes, params_.genDepth,
                                             params_.genFeatures));
    if (nodes.size() > uint64_t(params_.maxNodes))
        fatal("DtreeApp: generated ensemble too large");

    BitBuffer stream;
    stream.appendBits(tree_roots.size(), 32);
    stream.appendBits(uint64_t(params_.genFeatures), 32);
    stream.appendBits(nodes.size(), 32);
    for (uint32_t root : tree_roots)
        stream.appendBits(root, 32);
    for (const auto &node : nodes) {
        uint32_t meta = (node.isLeaf ? 0x80000000u : 0) |
                        ((node.featureIdx & 0x7ff) << 20) |
                        ((node.left & 0x3ff) << 10) | (node.right & 0x3ff);
        stream.appendBits(meta, 32);
        stream.appendBits(node.value, 32);
    }

    uint64_t header_bytes = stream.sizeBits() / 8;
    uint64_t point_bytes = uint64_t(params_.genFeatures) * 4;
    uint64_t points = approx_bytes > header_bytes
                          ? (approx_bytes - header_bytes) / point_bytes
                          : 1;
    points = std::max<uint64_t>(points, 1);
    for (uint64_t i = 0; i < points * uint64_t(params_.genFeatures); ++i)
        stream.appendBits(rng.next() & 0xffffffffu, 32);
    return stream;
}

BitBuffer
DtreeApp::golden(const BitBuffer &stream) const
{
    uint64_t pos = 0;
    auto next = [&] {
        uint64_t v = stream.readBits(pos, 32);
        pos += 32;
        return v;
    };
    uint64_t num_trees = next();
    uint64_t num_features = next();
    uint64_t num_nodes = next();
    std::vector<uint32_t> tree_roots;
    for (uint64_t t = 0; t < num_trees; ++t)
        tree_roots.push_back(uint32_t(next()));
    std::vector<std::pair<uint32_t, uint32_t>> nodes; // (meta, value)
    for (uint64_t n = 0; n < num_nodes; ++n) {
        uint32_t meta = uint32_t(next());
        uint32_t value = uint32_t(next());
        nodes.emplace_back(meta, value);
    }

    BitBuffer out;
    std::vector<uint32_t> point(num_features);
    while (pos + num_features * 32 <= stream.sizeBits()) {
        for (uint64_t f = 0; f < num_features; ++f)
            point[f] = uint32_t(next());
        uint32_t sum = 0;
        for (uint32_t root : tree_roots) {
            uint32_t cur = root;
            while (true) {
                auto [meta, value] = nodes[cur];
                if (meta & 0x80000000u) {
                    sum += value;
                    break;
                }
                uint32_t feat = (meta >> 20) & 0x7ff;
                uint32_t left = (meta >> 10) & 0x3ff;
                uint32_t right = meta & 0x3ff;
                cur = point[feat] <= value ? left : right;
            }
        }
        out.appendBits(sum, 32);
    }
    return out;
}

} // namespace apps
} // namespace fleet
