#include "apps/bloom.h"

#include "lang/builder.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace apps {

using lang::Bram;
using lang::ProgramBuilder;
using lang::Value;
using lang::mux;

uint32_t
BloomApp::hashConstant(int i)
{
    // Odd multiplicative constants (Knuth-style), fixed for
    // reproducibility across the unit, golden model, and baselines.
    static const uint32_t kConstants[] = {
        0x9e3779b1u, 0x85ebca77u, 0xc2b2ae3du, 0x27d4eb2fu,
        0x165667b1u, 0xd3a2646du, 0xfd7046c5u, 0xb55a4f09u,
        0x8da6b343u, 0xd8163841u, 0xcb1ab31fu, 0x165667b5u,
    };
    return kConstants[i % (sizeof(kConstants) / sizeof(kConstants[0]))];
}

lang::Program
BloomApp::program() const
{
    const int block = params_.blockItems;
    const int words = params_.filterBits / params_.wordBits;
    const int index_bits = bitsToRepresent(uint64_t(params_.filterBits) - 1);
    const int word_addr_bits = indexWidth(words);
    const int offset_bits = bitsToRepresent(uint64_t(params_.wordBits) - 1);
    const int k = params_.numHashes;
    if (params_.filterBits % params_.wordBits != 0)
        fatal("BloomApp: filterBits must be a multiple of wordBits");

    ProgramBuilder b("BloomFilter", 32, params_.wordBits);
    Bram filter = b.bram("filter", words, params_.wordBits);
    Value itemCounter = b.reg("itemCounter",
                              bitsToRepresent(uint64_t(block)), 0);
    Value hashIdx = b.reg("hashIdx", bitsToRepresent(uint64_t(k - 1)), 0);
    Value emitIdx = b.reg("emitIdx", bitsToRepresent(uint64_t(words)), 0);

    // Select the hash for the current hashIdx: bit index =
    // (item * C_i) >> (32 - log2(filterBits)).
    auto hash_bit_index = [&](const Value &idx) {
        Value result = Value::lit(0, index_bits);
        for (int i = 0; i < k; ++i) {
            Value h = (b.input() * Value::lit(hashConstant(i), 32))
                          .slice(31, 0)
                          .slice(31, 32 - index_bits);
            result = mux(idx == uint64_t(i), h, result);
        }
        return result;
    };

    Value blockDone = itemCounter == uint64_t(block);
    Value emitActive = blockDone && (emitIdx < uint64_t(words));

    // Phase 1: emit and clear the filter at a block boundary.
    b.while_(emitActive, [&] {
        b.emit(filter[emitIdx.resize(word_addr_bits)]);
        b.assign(filter[emitIdx.resize(word_addr_bits)],
                 Value::lit(0, params_.wordBits));
        b.assign(emitIdx, emitIdx + 1);
    });

    // Phase 2: the first k-1 hash insertions for the current item.
    Value hashing = !emitActive && (hashIdx != uint64_t(k - 1)) &&
                    !b.streamFinished();
    b.while_(hashing, [&] {
        Value bit = hash_bit_index(hashIdx);
        Value word = bit.slice(index_bits - 1, offset_bits);
        Value offset = bit.slice(offset_bits - 1, 0);
        b.assign(filter[word],
                 filter[word] |
                     (Value::lit(1, params_.wordBits) << offset));
        b.assign(hashIdx, hashIdx + 1);
    });

    // Final virtual cycle: the k-th insertion, counter updates.
    b.if_(!b.streamFinished(), [&] {
        Value bit = hash_bit_index(Value::lit(k - 1, hashIdx.width()));
        Value word = bit.slice(index_bits - 1, offset_bits);
        Value offset = bit.slice(offset_bits - 1, 0);
        b.assign(filter[word],
                 filter[word] |
                     (Value::lit(1, params_.wordBits) << offset));
        b.assign(itemCounter,
                 mux(blockDone, 1, itemCounter + 1));
        b.assign(hashIdx, Value::lit(0, hashIdx.width()));
    });
    b.if_(blockDone, [&] {
        b.assign(emitIdx, Value::lit(0, emitIdx.width()));
    });

    return b.finish();
}

BitBuffer
BloomApp::generateStream(Rng &rng, uint64_t approx_bytes) const
{
    uint64_t items = std::max<uint64_t>(
        1, approx_bytes / 4 / params_.blockItems) *
        params_.blockItems;
    BitBuffer stream;
    for (uint64_t i = 0; i < items; ++i)
        stream.appendBits(rng.next() & 0xffffffffu, 32);
    return stream;
}

BitBuffer
BloomApp::golden(const BitBuffer &stream) const
{
    const int words = params_.filterBits / params_.wordBits;
    const int index_bits = bitsToRepresent(uint64_t(params_.filterBits) - 1);
    BitBuffer out;
    std::vector<uint64_t> filter(words, 0);
    uint64_t items = stream.sizeBits() / 32;
    uint64_t in_block = 0;
    auto flush = [&] {
        for (int w = 0; w < words; ++w) {
            out.appendBits(filter[w], params_.wordBits);
            filter[w] = 0;
        }
    };
    for (uint64_t i = 0; i < items; ++i) {
        if (in_block == uint64_t(params_.blockItems)) {
            flush();
            in_block = 0;
        }
        uint32_t item = static_cast<uint32_t>(stream.readBits(i * 32, 32));
        for (int h = 0; h < params_.numHashes; ++h) {
            uint32_t bit = (uint32_t(item * hashConstant(h))) >>
                           (32 - index_bits);
            filter[bit / params_.wordBits] |=
                uint64_t(1) << (bit % params_.wordBits);
        }
        ++in_block;
    }
    if (in_block == uint64_t(params_.blockItems))
        flush(); // Final full block emitted during stream_finished.
    return out;
}

} // namespace apps
} // namespace fleet
