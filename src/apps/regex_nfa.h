#ifndef FLEET_APPS_REGEX_NFA_H
#define FLEET_APPS_REGEX_NFA_H

/**
 * @file
 * Regex parsing and Glushkov (position) NFA construction, the host-side
 * metaprogramming behind the regex application: the paper generates the
 * matching circuit from a compile-time regex specification following
 * Sidhu & Prasanna, with one single-bit register per NFA position. The
 * same NFA drives the golden software matcher, so the generated circuit
 * and the reference share one construction.
 *
 * Supported syntax: literals, '.', escapes (\w \d \s \. etc.), character
 * classes with ranges ([A-Za-z0-9_.-]), grouping (...), alternation '|',
 * and the postfix operators '*', '+', '?'.
 */

#include <bitset>
#include <string>
#include <vector>

namespace fleet {
namespace apps {

struct RegexNfa
{
    /** Character class of each position (index = position id). */
    std::vector<std::bitset<256>> positionClass;
    /** Positions that can start a match. */
    std::vector<bool> first;
    /** Positions that can end a match. */
    std::vector<bool> last;
    /** follow[q] = positions reachable immediately after q. */
    std::vector<std::vector<int>> follow;
    /** True if the regex matches the empty string (rejected for Fleet). */
    bool nullable = false;

    int numPositions() const
    {
        return static_cast<int>(positionClass.size());
    }

    /**
     * Advance the unanchored matcher by one character; `state` holds one
     * bool per position. Returns true if a match ends at this character.
     */
    bool step(std::vector<bool> &state, uint8_t c) const;
};

/** Parse a regex and build its position NFA. Throws FatalError on
 * malformed patterns. */
RegexNfa buildRegexNfa(const std::string &pattern);

/** Decompose a character class into inclusive [lo, hi] byte intervals. */
std::vector<std::pair<int, int>>
classIntervals(const std::bitset<256> &cls);

} // namespace apps
} // namespace fleet

#endif // FLEET_APPS_REGEX_NFA_H
