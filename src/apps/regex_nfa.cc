#include "apps/regex_nfa.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace fleet {
namespace apps {

namespace {

std::bitset<256>
namedClass(char c)
{
    std::bitset<256> cls;
    auto add_range = [&](int lo, int hi) {
        for (int i = lo; i <= hi; ++i)
            cls.set(i);
    };
    switch (c) {
      case 'w':
        add_range('a', 'z');
        add_range('A', 'Z');
        add_range('0', '9');
        cls.set('_');
        break;
      case 'd':
        add_range('0', '9');
        break;
      case 's':
        cls.set(' ');
        cls.set('\t');
        cls.set('\r');
        cls.set('\n');
        break;
      default:
        // Escaped literal (\., \\, \+, ...).
        cls.set(static_cast<unsigned char>(c));
        break;
    }
    return cls;
}

// Regex AST used only during construction.
struct Node
{
    enum class Kind { Class, Concat, Alt, Star, Plus, Opt, Epsilon };
    Kind kind;
    std::bitset<256> cls;
    int position = -1;
    std::unique_ptr<Node> a, b;
};

using NodePtr = std::unique_ptr<Node>;

class Parser
{
  public:
    Parser(const std::string &pattern, RegexNfa &nfa)
        : pattern_(pattern), nfa_(nfa)
    {
    }

    NodePtr
    parse()
    {
        NodePtr node = parseAlt();
        if (pos_ != pattern_.size())
            fatal("regex: unexpected '", pattern_[pos_], "' at ", pos_);
        return node;
    }

  private:
    bool atEnd() const { return pos_ >= pattern_.size(); }
    char peek() const { return pattern_[pos_]; }

    NodePtr
    makeClass(const std::bitset<256> &cls)
    {
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Class;
        node->cls = cls;
        node->position = nfa_.numPositions();
        nfa_.positionClass.push_back(cls);
        return node;
    }

    NodePtr
    makeBinary(Node::Kind kind, NodePtr a, NodePtr b)
    {
        auto node = std::make_unique<Node>();
        node->kind = kind;
        node->a = std::move(a);
        node->b = std::move(b);
        return node;
    }

    NodePtr
    makeUnary(Node::Kind kind, NodePtr a)
    {
        auto node = std::make_unique<Node>();
        node->kind = kind;
        node->a = std::move(a);
        return node;
    }

    NodePtr
    parseAlt()
    {
        NodePtr node = parseConcat();
        while (!atEnd() && peek() == '|') {
            ++pos_;
            node = makeBinary(Node::Kind::Alt, std::move(node),
                              parseConcat());
        }
        return node;
    }

    NodePtr
    parseConcat()
    {
        NodePtr node;
        while (!atEnd() && peek() != '|' && peek() != ')') {
            NodePtr atom = parseRepeat();
            node = node ? makeBinary(Node::Kind::Concat, std::move(node),
                                     std::move(atom))
                        : std::move(atom);
        }
        if (!node) {
            node = std::make_unique<Node>();
            node->kind = Node::Kind::Epsilon;
        }
        return node;
    }

    NodePtr
    parseRepeat()
    {
        NodePtr node = parseAtom();
        while (!atEnd()) {
            if (peek() == '*')
                node = makeUnary(Node::Kind::Star, std::move(node));
            else if (peek() == '+')
                node = makeUnary(Node::Kind::Plus, std::move(node));
            else if (peek() == '?')
                node = makeUnary(Node::Kind::Opt, std::move(node));
            else
                break;
            ++pos_;
        }
        return node;
    }

    NodePtr
    parseAtom()
    {
        if (atEnd())
            fatal("regex: unexpected end of pattern");
        char c = peek();
        if (c == '(') {
            ++pos_;
            NodePtr node = parseAlt();
            if (atEnd() || peek() != ')')
                fatal("regex: missing ')'");
            ++pos_;
            return node;
        }
        if (c == '[')
            return makeClass(parseClass());
        if (c == '.') {
            ++pos_;
            std::bitset<256> cls;
            cls.set();
            cls.reset('\n');
            return makeClass(cls);
        }
        if (c == '\\') {
            ++pos_;
            if (atEnd())
                fatal("regex: trailing backslash");
            char e = pattern_[pos_++];
            return makeClass(namedClass(e));
        }
        if (c == '*' || c == '+' || c == '?' || c == '|' || c == ')')
            fatal("regex: misplaced '", c, "'");
        ++pos_;
        std::bitset<256> cls;
        cls.set(static_cast<unsigned char>(c));
        return makeClass(cls);
    }

    std::bitset<256>
    parseClass()
    {
        ++pos_; // consume '['
        std::bitset<256> cls;
        bool first_char = true;
        while (!atEnd() && peek() != ']') {
            char c = peek();
            if (c == '\\') {
                ++pos_;
                if (atEnd())
                    fatal("regex: trailing backslash in class");
                cls |= namedClass(pattern_[pos_++]);
                first_char = false;
                continue;
            }
            // Range c-hi (a '-' as first or last char is a literal).
            if (pos_ + 2 < pattern_.size() && pattern_[pos_ + 1] == '-' &&
                pattern_[pos_ + 2] != ']') {
                char hi = pattern_[pos_ + 2];
                if (hi < c)
                    fatal("regex: bad range in class");
                for (int i = c; i <= hi; ++i)
                    cls.set(i);
                pos_ += 3;
                first_char = false;
                continue;
            }
            cls.set(static_cast<unsigned char>(c));
            ++pos_;
            first_char = false;
        }
        if (atEnd())
            fatal("regex: missing ']'");
        ++pos_; // consume ']'
        if (first_char)
            fatal("regex: empty character class");
        return cls;
    }

    const std::string &pattern_;
    RegexNfa &nfa_;
    size_t pos_ = 0;
};

struct GlushkovSets
{
    bool nullable;
    std::vector<int> first;
    std::vector<int> last;
};

GlushkovSets
computeSets(const Node &node, RegexNfa &nfa)
{
    switch (node.kind) {
      case Node::Kind::Epsilon:
        return {true, {}, {}};
      case Node::Kind::Class:
        return {false, {node.position}, {node.position}};
      case Node::Kind::Concat: {
        GlushkovSets a = computeSets(*node.a, nfa);
        GlushkovSets b = computeSets(*node.b, nfa);
        for (int q : a.last)
            for (int p : b.first)
                nfa.follow[q].push_back(p);
        GlushkovSets out;
        out.nullable = a.nullable && b.nullable;
        out.first = a.first;
        if (a.nullable)
            out.first.insert(out.first.end(), b.first.begin(),
                             b.first.end());
        out.last = b.last;
        if (b.nullable)
            out.last.insert(out.last.end(), a.last.begin(), a.last.end());
        return out;
      }
      case Node::Kind::Alt: {
        GlushkovSets a = computeSets(*node.a, nfa);
        GlushkovSets b = computeSets(*node.b, nfa);
        GlushkovSets out;
        out.nullable = a.nullable || b.nullable;
        out.first = a.first;
        out.first.insert(out.first.end(), b.first.begin(), b.first.end());
        out.last = a.last;
        out.last.insert(out.last.end(), b.last.begin(), b.last.end());
        return out;
      }
      case Node::Kind::Star:
      case Node::Kind::Plus:
      case Node::Kind::Opt: {
        GlushkovSets a = computeSets(*node.a, nfa);
        if (node.kind != Node::Kind::Opt) {
            for (int q : a.last)
                for (int p : a.first)
                    nfa.follow[q].push_back(p);
        }
        GlushkovSets out = a;
        out.nullable = node.kind == Node::Kind::Plus ? a.nullable : true;
        return out;
      }
    }
    panic("regex: unknown AST node");
}

} // namespace

RegexNfa
buildRegexNfa(const std::string &pattern)
{
    RegexNfa nfa;
    Parser parser(pattern, nfa);
    NodePtr root = parser.parse();
    nfa.follow.resize(nfa.numPositions());
    GlushkovSets sets = computeSets(*root, nfa);
    nfa.nullable = sets.nullable;
    if (nfa.nullable)
        fatal("regex: pattern matches the empty string; not supported");
    nfa.first.assign(nfa.numPositions(), false);
    for (int p : sets.first)
        nfa.first[p] = true;
    nfa.last.assign(nfa.numPositions(), false);
    for (int p : sets.last)
        nfa.last[p] = true;
    // Deduplicate follow lists.
    for (auto &list : nfa.follow) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return nfa;
}

bool
RegexNfa::step(std::vector<bool> &state, uint8_t c) const
{
    std::vector<bool> next(numPositions(), false);
    for (int p = 0; p < numPositions(); ++p) {
        if (!positionClass[p].test(c))
            continue;
        bool active = first[p]; // Unanchored: any position may start.
        if (!active) {
            for (int q = 0; q < numPositions() && !active; ++q) {
                if (state[q]) {
                    for (int f : follow[q]) {
                        if (f == p) {
                            active = true;
                            break;
                        }
                    }
                }
            }
        }
        next[p] = active;
    }
    bool match = false;
    for (int p = 0; p < numPositions(); ++p)
        if (next[p] && last[p])
            match = true;
    state = std::move(next);
    return match;
}

std::vector<std::pair<int, int>>
classIntervals(const std::bitset<256> &cls)
{
    std::vector<std::pair<int, int>> intervals;
    int start = -1;
    for (int c = 0; c <= 256; ++c) {
        bool in = c < 256 && cls.test(c);
        if (in && start < 0)
            start = c;
        if (!in && start >= 0) {
            intervals.emplace_back(start, c - 1);
            start = -1;
        }
    }
    return intervals;
}

} // namespace apps
} // namespace fleet
