#include "system/pu_rtl.h"

namespace fleet {
namespace system {

RtlPu::RtlPu(const lang::Program &program)
    : RtlPu(compile::compileProgram(program))
{
}

RtlPu::RtlPu(compile::CompiledUnit unit) : unit_(std::move(unit))
{
    sim_ = std::make_unique<rtl::Simulator>(unit_.circuit);
}

void
RtlPu::reset()
{
    sim_->reset();
}

PuOutputs
RtlPu::eval(const PuInputs &inputs)
{
    sim_->setInput(unit_.inInputToken, inputs.inputToken);
    sim_->setInput(unit_.inInputValid, inputs.inputValid ? 1 : 0);
    sim_->setInput(unit_.inInputFinished, inputs.inputFinished ? 1 : 0);
    sim_->setInput(unit_.inOutputReady, inputs.outputReady ? 1 : 0);
    sim_->evalComb();

    PuOutputs out;
    out.inputReady = sim_->value(unit_.outInputReady) != 0;
    out.outputToken = sim_->value(unit_.outOutputToken);
    out.outputValid = sim_->value(unit_.outOutputValid) != 0;
    out.outputFinished = sim_->value(unit_.outOutputFinished) != 0;
    return out;
}

void
RtlPu::step()
{
    sim_->step();
}

void
RtlPu::appendCounters(trace::CounterSet &out) const
{
    out.set("backend_rtl", 1);
    out.set("circuit_nodes", unit_.circuit.nodes().size());
}

} // namespace system
} // namespace fleet
