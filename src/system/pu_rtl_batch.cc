#include "system/pu_rtl_batch.h"

namespace fleet {
namespace system {

RtlTapeEngine::RtlTapeEngine(const lang::Program &program)
    : RtlTapeEngine(compile::compileProgram(program))
{
}

RtlTapeEngine::RtlTapeEngine(compile::CompiledUnit unit)
    : unit_(std::move(unit)),
      tape_(std::make_shared<const rtl::TapeProgram>(
          rtl::TapeProgram::compile(unit_.circuit)))
{
}

void
RtlTapeEngine::appendCounters(trace::CounterSet &out, int batch_width) const
{
    out.set("backend_rtl_tape", 1);
    out.set("tape_ops", tape_->ops.size());
    out.set("nodes_eliminated", tape_->nodesEliminated);
    out.set("batch_width", uint64_t(batch_width));
}

TapeRtlPu::TapeRtlPu(std::shared_ptr<const RtlTapeEngine> engine)
    : engine_(std::move(engine)), sim_(engine_->tape())
{
}

TapeRtlPu::TapeRtlPu(const lang::Program &program)
    : TapeRtlPu(std::make_shared<const RtlTapeEngine>(program))
{
}

void
TapeRtlPu::reset()
{
    sim_.reset();
}

PuOutputs
TapeRtlPu::eval(const PuInputs &inputs)
{
    const auto &unit = engine_->unit();
    sim_.setInput(unit.inInputToken, inputs.inputToken);
    sim_.setInput(unit.inInputValid, inputs.inputValid ? 1 : 0);
    sim_.setInput(unit.inInputFinished, inputs.inputFinished ? 1 : 0);
    sim_.setInput(unit.inOutputReady, inputs.outputReady ? 1 : 0);
    sim_.evalComb();

    PuOutputs out;
    out.inputReady = sim_.value(unit.outInputReady) != 0;
    out.outputToken = sim_.value(unit.outOutputToken);
    out.outputValid = sim_.value(unit.outOutputValid) != 0;
    out.outputFinished = sim_.value(unit.outOutputFinished) != 0;
    return out;
}

void
TapeRtlPu::step()
{
    sim_.step();
}

void
TapeRtlPu::appendCounters(trace::CounterSet &out) const
{
    engine_->appendCounters(out, 1);
}

RtlBatch::RtlBatch(std::shared_ptr<const RtlTapeEngine> engine, int lanes)
    : engine_(std::move(engine)), sim_(engine_->tape(), lanes)
{
}

void
RtlBatch::setLaneInputs(int lane, const PuInputs &in)
{
    const auto &unit = engine_->unit();
    sim_.setInput(lane, unit.inInputToken, in.inputToken);
    sim_.setInput(lane, unit.inInputValid, in.inputValid ? 1 : 0);
    sim_.setInput(lane, unit.inInputFinished, in.inputFinished ? 1 : 0);
    sim_.setInput(lane, unit.inOutputReady, in.outputReady ? 1 : 0);
}

void
RtlBatch::evalAll()
{
    sim_.evalAll();
}

void
RtlBatch::evalLane(int lane)
{
    sim_.evalLane(lane);
}

PuOutputs
RtlBatch::laneOutputs(int lane) const
{
    const auto &unit = engine_->unit();
    PuOutputs out;
    out.inputReady = sim_.value(lane, unit.outInputReady) != 0;
    out.outputToken = sim_.value(lane, unit.outOutputToken);
    out.outputValid = sim_.value(lane, unit.outOutputValid) != 0;
    out.outputFinished = sim_.value(lane, unit.outOutputFinished) != 0;
    return out;
}

void
RtlBatch::step()
{
    sim_.step();
}

void
RtlBatch::stepLane(int lane)
{
    sim_.stepLane(lane);
}

void
RtlBatch::resetLane(int lane)
{
    sim_.resetLane(lane);
}

RtlBatchLane::RtlBatchLane(std::shared_ptr<RtlBatch> batch, int lane)
    : batch_(std::move(batch)), lane_(lane)
{
}

void
RtlBatchLane::reset()
{
    batch_->resetLane(lane_);
}

PuOutputs
RtlBatchLane::eval(const PuInputs &inputs)
{
    batch_->setLaneInputs(lane_, inputs);
    batch_->evalLane(lane_);
    return batch_->laneOutputs(lane_);
}

void
RtlBatchLane::step()
{
    batch_->stepLane(lane_);
}

void
RtlBatchLane::appendCounters(trace::CounterSet &out) const
{
    batch_->engine().appendCounters(out, batch_->lanes());
    if (batch_->jitAttached())
        out.set("backend_rtl_jit", 1);
}

} // namespace system
} // namespace fleet
