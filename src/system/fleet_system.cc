#include "system/fleet_system.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "compile/compiler.h"
#include "model/area.h"
#include "rtl/jit.h"
#include "system/pu_fast.h"
#include "system/pu_rtl.h"
#include "system/pu_rtl_batch.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace system {

namespace {

int
hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

/**
 * Run fn(0..jobs-1) on up to `threads` workers. Jobs must be mutually
 * independent. Exceptions are captured per job and the lowest-index one
 * is rethrown after the pool joins, matching the error a sequential loop
 * would surface first.
 */
void
parallelFor(int threads, int jobs, const std::function<void(int)> &fn)
{
    if (jobs <= 0)
        return;
    if (threads <= 1 || jobs == 1) {
        for (int i = 0; i < jobs; ++i)
            fn(i);
        return;
    }
    std::atomic<int> next{0};
    std::vector<std::exception_ptr> errors(jobs);
    {
        std::vector<std::jthread> pool;
        pool.reserve(std::min(threads, jobs));
        for (int t = 0; t < std::min(threads, jobs); ++t) {
            pool.emplace_back([&] {
                for (int i = next.fetch_add(1); i < jobs;
                     i = next.fetch_add(1)) {
                    try {
                        fn(i);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            });
        }
    } // jthreads join here.
    for (auto &error : errors)
        if (error)
            std::rethrow_exception(error);
}

} // namespace

int
FleetSystem::resolveThreads(int jobs) const
{
    int threads = config_.numThreads;
    if (threads <= 0)
        threads = hardwareThreads();
    return std::max(1, std::min(threads, jobs));
}

FleetSystem::FleetSystem(const lang::Program &program,
                         const SystemConfig &config,
                         std::vector<BitBuffer> streams)
    : programs_(1, program), config_(config), streams_(std::move(streams))
{
    if (streams_.empty())
        fatal("FleetSystem: needs at least one stream");
    bindings_.resize(streams_.size());
    build(static_cast<int>(streams_.size()));
}

FleetSystem::FleetSystem(const lang::Program &program,
                         const SystemConfig &config, int num_slots)
    : FleetSystem(std::vector<lang::Program>(1, program), config,
                  num_slots)
{
}

FleetSystem::FleetSystem(std::vector<lang::Program> programs,
                         const SystemConfig &config, int num_slots,
                         std::vector<SlotBinding> bindings)
    : programs_(std::move(programs)), config_(config),
      bindings_(std::move(bindings)), sessionMode_(true)
{
    if (programs_.empty())
        fatal("FleetSystem: session needs at least one program");
    if (num_slots < 1)
        fatal("FleetSystem: session needs at least one slot");
    if (bindings_.empty())
        bindings_.resize(num_slots);
    if (static_cast<int>(bindings_.size()) != num_slots) {
        std::ostringstream os;
        os << "FleetSystem: " << bindings_.size() << " slot bindings for "
           << num_slots << " slots";
        throw StatusError(
            Status::make(StatusCode::InvalidArgument, os.str()));
    }
    for (size_t p = 0; p < bindings_.size(); ++p) {
        if (bindings_[p].program >= programs_.size()) {
            std::ostringstream os;
            os << "FleetSystem: slot " << p
               << " binds unknown program index " << bindings_[p].program
               << " (have " << programs_.size() << ")";
            throw StatusError(
                Status::make(StatusCode::InvalidArgument, os.str()));
        }
    }
    // One channel-wide controller configuration serves every slot, so
    // the hosted programs must agree on both token widths.
    for (size_t g = 1; g < programs_.size(); ++g) {
        if (programs_[g].inputTokenWidth != programs_[0].inputTokenWidth ||
            programs_[g].outputTokenWidth !=
                programs_[0].outputTokenWidth) {
            std::ostringstream os;
            os << "FleetSystem: program " << g << " token widths ("
               << programs_[g].inputTokenWidth << " in, "
               << programs_[g].outputTokenWidth
               << " out) differ from program 0 ("
               << programs_[0].inputTokenWidth << " in, "
               << programs_[0].outputTokenWidth
               << " out); a session's programs must share widths";
            throw StatusError(
                Status::make(StatusCode::InvalidArgument, os.str()));
        }
    }
    // A genuine mix must fit the device: every slot's unit coexists on
    // the fabric at once (per-slot program binding is static).
    if (programs_.size() > 1) {
        Status fit = checkProgramMix(programs_, bindings_, config_);
        if (!fit.ok())
            throw StatusError(std::move(fit));
    }
    build(num_slots);
}

Status
FleetSystem::checkProgramMix(const std::vector<lang::Program> &programs,
                             const std::vector<SlotBinding> &bindings,
                             const SystemConfig &config,
                             const model::Device &device)
{
    if (programs.empty())
        return Status::make(StatusCode::InvalidArgument,
                            "checkProgramMix: no programs");
    std::vector<bool> used(programs.size(), false);
    for (const SlotBinding &b : bindings) {
        if (b.program >= programs.size()) {
            std::ostringstream os;
            os << "checkProgramMix: binding references unknown program "
               << b.program;
            return Status::make(StatusCode::InvalidArgument, os.str());
        }
        used[b.program] = true;
    }

    // Per-program PU cost, estimated from the compiled circuit exactly
    // as the single-program area model does (model/area.h); compile
    // each distinct bound program once.
    std::vector<model::Resources> per(programs.size());
    for (size_t g = 0; g < programs.size(); ++g) {
        if (!used[g])
            continue;
        compile::CompiledUnit unit =
            compile::compileProgram(programs[g]);
        per[g] = model::estimatePuResources(unit.circuit,
                                            config.inputCtrl);
    }

    model::Resources total;
    for (const SlotBinding &b : bindings)
        total += per[b.program];
    model::Resources ctrl =
        model::estimateControllerResources(config.inputCtrl);
    for (int c = 0; c < config.numChannels; ++c)
        total += ctrl;

    auto budget = [&](uint64_t raw) {
        uint64_t shell = static_cast<uint64_t>(raw *
                                               device.shellFraction);
        return raw > shell ? raw - shell : 0;
    };
    struct Check
    {
        const char *what;
        uint64_t need, have;
    };
    const Check checks[] = {
        {"LUTs", total.luts, budget(device.luts)},
        {"FFs", total.ffs, budget(device.ffs)},
        {"BRAM36", total.bram36, budget(device.bram36)},
        {"DSPs", total.dsps, budget(device.dsps)},
    };
    for (const Check &check : checks) {
        if (check.need > check.have) {
            std::ostringstream os;
            os << "program mix does not fit " << device.name << ": needs "
               << check.need << " " << check.what << " but only "
               << check.have << " remain net of the shell ("
               << bindings.size() << " slots, " << config.numChannels
               << " channels); bind fewer slots or smaller programs";
            return Status::make(StatusCode::ResourceExhausted, os.str());
        }
    }
    return Status::make(StatusCode::Ok);
}

void
FleetSystem::build(int num_slots)
{
    if (config_.numChannels < 1)
        fatal("FleetSystem: needs at least one channel");

    const uint64_t burst_bytes = config_.inputCtrl.burstBits / 8;
    const int channels = config_.numChannels;

    // Tell the controllers the PU token widths so the per-PU buffers
    // can carry the one-token skid space that keeps non-dividing token
    // widths from wedging at bufferBursts = 1 (memctl/params.h). The
    // hosted programs are validated width-equal, so program 0 speaks
    // for all.
    config_.inputCtrl.tokenBits = programs_[0].inputTokenWidth;
    config_.outputCtrl.tokenBits = programs_[0].outputTokenWidth;

    // Resolve each slot's backend: the binding override or the global.
    slotBackends_.resize(num_slots);
    for (int p = 0; p < num_slots; ++p)
        slotBackends_[p] =
            bindings_[p].backend.value_or(config_.backend);

    // Fault injection: stream truncation models a short or interrupted
    // upload. It must happen before memory layout *and* before FastPu
    // construction (the fast model pre-computes its trace over the
    // exact stream), so it is the very first transformation. Session
    // mode truncates per job at armJob() instead — same hash, keyed by
    // job id.
    truncation_.resize(num_slots);
    for (int p = 0; p < num_slots; ++p) {
        if (sessionMode_) {
            truncation_[p] = {0, 0};
            continue;
        }
        const BitBuffer &stream = streams_[p];
        const int in_width = slotProgram(p).inputTokenWidth;
        if (stream.sizeBits() % in_width != 0)
            fatal("FleetSystem: stream ", p,
                  " is not a whole number of tokens");
        uint64_t tokens = stream.sizeBits() / in_width;
        truncation_[p] = {tokens, tokens};
        if (!config_.faults.enabled())
            continue;
        uint64_t keep = fault::truncatedStreamTokens(
            config_.faults, static_cast<int>(p), tokens);
        if (keep != tokens) {
            streams_[p].resizeBits(keep * in_width);
            truncation_[p].first = keep;
        }
    }

    // Session slots get a fixed-size input region every job must fit
    // (the stream is re-uploaded to the region base at each arm).
    const uint64_t session_region_bytes = roundUp(
        config_.inputRegionBytes ? config_.inputRegionBytes : 256 * 1024,
        burst_bytes);

    // Lay out each channel's memory: all of its PUs' input regions,
    // then their output regions.
    struct Layout
    {
        std::vector<memctl::StreamRegion> inputs;
        std::vector<memctl::StreamRegion> outputs;
        std::vector<int> globalPu;
        uint64_t bytes = 0;
    };
    std::vector<Layout> layouts(channels);

    inputRegions_.resize(num_slots);
    outputRegions_.resize(num_slots);
    puShard_.resize(num_slots);
    puLocal_.resize(num_slots);
    for (int p = 0; p < num_slots; ++p) {
        int ch = p % channels;
        Layout &layout = layouts[ch];
        puShard_[p] = ch;
        puLocal_[p] = static_cast<int>(layout.globalPu.size());

        memctl::StreamRegion in;
        in.baseAddr = layout.bytes;
        in.streamBits = sessionMode_ ? 0 : streams_[p].sizeBits();
        in.regionBytes =
            sessionMode_ ? session_region_bytes
                         : roundUp(ceilDiv(streams_[p].sizeBits(), 8),
                                   burst_bytes);
        layout.bytes += in.regionBytes;

        memctl::StreamRegion out;
        // Auto sizing honors the program's declared worst-case output
        // expansion (never below the historical 2x), plus slack for
        // cleanup-cycle output that is independent of stream length.
        double expansion = std::max(2.0, slotProgram(p).maxOutputExpansion);
        uint64_t out_bytes =
            config_.outputRegionBytes != 0
                ? config_.outputRegionBytes
                : static_cast<uint64_t>(
                      std::ceil(double(in.regionBytes) * expansion)) +
                      8192;
        out.baseAddr = 0; // Assigned after all input regions.
        out.regionBytes = roundUp(out_bytes, burst_bytes);
        out.streamBits = 0;

        layout.inputs.push_back(in);
        layout.outputs.push_back(out);
        layout.globalPu.push_back(p);
    }
    for (auto &layout : layouts) {
        for (auto &out : layout.outputs) {
            out.baseAddr = layout.bytes;
            layout.bytes += out.regionBytes;
        }
    }

    // Instantiate one self-contained shard per channel and copy its
    // streams into channel memory (session jobs upload at arm time).
    for (int ch = 0; ch < channels; ++ch) {
        Layout &layout = layouts[ch];
        auto shard = std::make_unique<ChannelShard>(
            ch, config_.dram, config_.inputCtrl, config_.outputCtrl,
            layout.inputs, layout.outputs,
            std::max<uint64_t>(layout.bytes, burst_bytes),
            config_.faults, config_.trace);
        shard->setWatchdogStreamFactor(config_.watchdogStreamFactor);
        auto &mem = shard->channel().memory();
        for (size_t l = 0; l < layout.inputs.size(); ++l) {
            if (!sessionMode_) {
                const BitBuffer &stream = streams_[layout.globalPu[l]];
                auto bytes = stream.toBytes();
                std::copy(bytes.begin(), bytes.end(),
                          mem.begin() + layout.inputs[l].baseAddr);
            }
            inputRegions_[layout.globalPu[l]] = layout.inputs[l];
            outputRegions_[layout.globalPu[l]] = layout.outputs[l];
        }
        shards_.push_back(std::move(shard));
    }

    // Instantiate the processing units. Each hosted program's RTL is
    // compiled exactly once (circuit, and for the tape engines the
    // optimizer + tape) and shared by every slot bound to it. FastPu
    // construction pre-runs the functional simulator over the unit's
    // whole stream — the dominant construction cost — and units are
    // independent, so build them on the worker pool (the shared tables
    // below are finalized serially first). Session slots start with an
    // empty stream; armJob re-targets the unit per job.
    std::vector<std::optional<compile::CompiledUnit>> compiled(
        programs_.size());
    std::vector<std::shared_ptr<const RtlTapeEngine>> engines(
        programs_.size());
    auto needCompiled = [&](uint32_t g) {
        if (!compiled[g])
            compiled[g].emplace(compile::compileProgram(programs_[g]));
    };
    auto needEngine = [&](uint32_t g) {
        if (!engines[g])
            engines[g] =
                std::make_shared<const RtlTapeEngine>(programs_[g]);
    };
    // Group the SoA-batched slots by (channel, program): one RtlBatch
    // per group, attached with the channel-local lanes it drives. A
    // single-program all-Rtl session degenerates to the legacy one
    // whole-channel batch. RtlJit groups identically — the native
    // kernel rides inside the group's BatchSimulator — but is kept in
    // its own group map so a mixed Rtl + RtlJit binding never silently
    // upgrades the interpreter slots.
    std::vector<std::map<uint32_t, std::vector<int>>> rtlGroups(channels);
    std::vector<std::map<uint32_t, std::vector<int>>> jitGroups(channels);
    for (int p = 0; p < num_slots; ++p) {
        const uint32_t g = bindings_[p].program;
        switch (slotBackends_[p]) {
          case PuBackend::Fast:
            break;
          case PuBackend::RtlInterp:
            needCompiled(g);
            break;
          case PuBackend::RtlTape:
            needEngine(g);
            break;
          case PuBackend::Rtl:
            needEngine(g);
            rtlGroups[puShard_[p]][g].push_back(p);
            break;
          case PuBackend::RtlJit:
            needEngine(g);
            jitGroups[puShard_[p]][g].push_back(p);
            break;
        }
    }
    // Per-slot (batch, lane-in-batch) for RtlBatchLane construction.
    std::vector<std::pair<std::shared_ptr<RtlBatch>, int>> slotBatch(
        num_slots);
    auto attachGroup = [&](int ch, uint32_t g,
                           const std::vector<int> &globals,
                           std::shared_ptr<const rtl::JitProgram> jit) {
        auto batch = std::make_shared<RtlBatch>(
            engines[g], static_cast<int>(globals.size()));
        if (jit)
            batch->attachJit(std::move(jit));
        std::vector<int> locals;
        locals.reserve(globals.size());
        for (size_t lane = 0; lane < globals.size(); ++lane) {
            locals.push_back(puLocal_[globals[lane]]);
            slotBatch[globals[lane]] = {batch, static_cast<int>(lane)};
        }
        shards_[ch]->attachBatch(std::move(batch), std::move(locals));
    };
    for (int ch = 0; ch < channels; ++ch)
        for (auto &[g, globals] : rtlGroups[ch])
            attachGroup(ch, g, globals, nullptr);
    // Arm-time native compilation (ISSUE 9): one kernel per
    // (program, lane count), deduplicated across channels by the
    // in-process registry and across processes by the on-disk artifact
    // cache. Compilation is best-effort: any failure (FLEET_JIT_DISABLE,
    // no toolchain, compile/dlopen error) demotes the group to the
    // scalar tape interpreter with one structured log line per program
    // — never an abort — and slotBackend() reports the demotion.
    std::vector<char> jitFallbackLogged(programs_.size(), 0);
    for (int ch = 0; ch < channels; ++ch) {
        for (auto &[g, globals] : jitGroups[ch]) {
            rtl::JitOptions jopts;
            jopts.lanes = static_cast<int>(globals.size());
            Status jit_status;
            auto jit = rtl::JitProgram::compile(*engines[g]->tape(),
                                                jopts, &jit_status);
            if (jit) {
                attachGroup(ch, g, globals, std::move(jit));
                continue;
            }
            if (!jitFallbackLogged[g]) {
                jitFallbackLogged[g] = 1;
                inform("rtl-jit: fallback backend=rtltape program=", g,
                       " reason=", jit_status.toString());
            }
            for (int p : globals)
                slotBackends_[p] = PuBackend::RtlTape;
        }
    }
    std::vector<std::unique_ptr<ProcessingUnit>> pus(num_slots);
    parallelFor(resolveThreads(num_slots), num_slots, [&](int p) {
        const uint32_t g = bindings_[p].program;
        switch (slotBackends_[p]) {
          case PuBackend::Fast:
            pus[p] = std::make_unique<FastPu>(
                programs_[g], sessionMode_ ? BitBuffer{} : streams_[p]);
            break;
          case PuBackend::RtlInterp:
            pus[p] = std::make_unique<RtlPu>(*compiled[g]);
            break;
          case PuBackend::RtlTape:
            pus[p] = std::make_unique<TapeRtlPu>(engines[g]);
            break;
          case PuBackend::Rtl:
          case PuBackend::RtlJit:
            pus[p] = std::make_unique<RtlBatchLane>(slotBatch[p].first,
                                                    slotBatch[p].second);
            break;
        }
    });
    for (int p = 0; p < num_slots; ++p) {
        shards_[puShard_[p]]->addPu(
            std::move(pus[p]), p,
            sessionMode_ ? 0 : streams_[p].sizeBits());
        if (sessionMode_)
            shards_[puShard_[p]]->parkPu(puLocal_[p]);
    }
}

FleetSystem::~FleetSystem() = default;

const RunReport &
FleetSystem::run()
{
    // Protocol misuse is a structured error, not a silent re-run: the
    // report and the DRAM output regions still hold the first run's
    // results, and re-running in place would clobber them. Re-use of a
    // system across many streams is what session mode is for.
    if (sessionMode_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "FleetSystem::run() on a session-mode system; arm jobs and "
            "step epochs instead (runtime/session.h)"));
    if (ran_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "FleetSystem::run() called twice; construct a fresh system "
            "or serve many streams through runtime::Session"));
    auto start = std::chrono::steady_clock::now();
    const int in_width = programs_[0].inputTokenWidth;
    const int out_width = programs_[0].outputTokenWidth;

    // Channels never communicate (Section 5), so each shard runs its
    // whole simulation independently; the system's cycle count is the
    // slowest channel's. This is exactly what the old global lockstep
    // loop computed — finished channels only idled until the last one
    // drained — so outputs, stats, and cycles are bit-identical.
    // Failures are contained per shard: each worker writes only its own
    // ChannelOutcome slot, and shard run loops never throw.
    report_ = RunReport{};
    report_.channels.resize(numShards());
    report_.pus.resize(numPus());
    threadsUsed_ = resolveThreads(numShards());
    parallelFor(threadsUsed_, numShards(), [&](int s) {
        report_.channels[s] = shards_[s]->run(
            in_width, out_width, config_.maxCycles,
            config_.watchdogCycles);
    });

    for (int p = 0; p < numPus(); ++p) {
        PuOutcome outcome = shards_[puShard_[p]]->puOutcome(puLocal_[p]);
        auto [kept, original] = truncation_[p];
        if (outcome.status.code == StatusCode::Ok && kept != original) {
            // The unit completed, but over an injected short stream:
            // surface that so callers don't mistake partial coverage
            // for a full run.
            std::ostringstream os;
            os << "PU " << p << ": input stream truncated to " << kept
               << " of " << original << " tokens";
            outcome.status =
                Status::make(StatusCode::StreamTruncated, os.str());
        }
        report_.pus[p] = outcome;
    }

    // Assemble the observability report on the calling thread, in
    // channel order — deterministic regardless of how many workers
    // stepped the shards.
    if (config_.trace.enabled()) {
        auto trace_report = std::make_shared<trace::TraceReport>();
        trace_report->config = config_.trace;
        trace_report->clockMHz = config_.clockMHz;
        for (auto &shard : shards_)
            trace_report->channels.push_back(shard->takeTrace());
        report_.trace = std::move(trace_report);
    }

    cycles_ = 0;
    for (const auto &shard : shards_)
        cycles_ = std::max(cycles_, shard->cycles());
    wallSeconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    ran_ = true;
    return report_;
}

const RunReport &
FleetSystem::report() const
{
    if (!ran_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "FleetSystem::report() before a run produced one"));
    return report_;
}

BitBuffer
FleetSystem::readOutput(int pu, uint64_t bits) const
{
    const auto &mem = shards_[puShard_[pu]]->channel().memory();
    const auto &region = outputRegions_[pu];
    BitBuffer out;
    for (uint64_t offset = 0; offset < bits;) {
        int chunk = static_cast<int>(std::min<uint64_t>(64, bits - offset));
        uint64_t byte = region.baseAddr + offset / 8;
        // Offsets are multiples of the token width; assemble from bytes.
        uint64_t value = 0;
        int got = 0;
        int shift = offset % 8;
        while (got < chunk) {
            int piece = std::min(chunk - got, 8 - shift);
            value |= (uint64_t(mem[byte]) >> shift & mask64(piece)) << got;
            got += piece;
            shift = 0;
            ++byte;
        }
        out.appendBits(value, chunk);
        offset += chunk;
    }
    return out;
}

BitBuffer
FleetSystem::output(int pu) const
{
    if (!ran_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "FleetSystem::output() before a run produced one"));
    const ChannelShard &shard = *shards_[puShard_[pu]];
    int local = puLocal_[pu];
    uint64_t bits = shard.flushedPayloadBits(local);
    // A contained or stranded unit legitimately flushed less than it
    // emitted — its output is the partial prefix. Only a *successful*
    // unit losing bits would be a framework bug.
    if (report_.pus[pu].ok() && bits != shard.emittedBits(local))
        panic("FleetSystem: controller flushed ", bits,
              " bits but the unit emitted ", shard.emittedBits(local));
    return readOutput(pu, bits);
}

// ---------------------------------------------------------------------------
// Session mode (driven by runtime::Session)

void
FleetSystem::beginSession()
{
    if (!sessionMode_ || sessionBegun_)
        return;
    const int in_width = programs_[0].inputTokenWidth;
    const int out_width = programs_[0].outputTokenWidth;
    for (auto &shard : shards_)
        shard->beginRun(in_width, out_width, config_.maxCycles,
                        config_.watchdogCycles);
    sessionBegun_ = true;
}

Status
FleetSystem::armJob(int pu, BitBuffer stream, uint64_t job_id)
{
    if (!sessionMode_)
        return Status::make(StatusCode::InvalidState,
                            "armJob: system was built one-shot; use the "
                            "session constructor");
    if (pu < 0 || pu >= numPus())
        return Status::make(StatusCode::InvalidArgument,
                            "armJob: no such slot");
    beginSession();
    ChannelShard &shard = *shards_[puShard_[pu]];
    const int local = puLocal_[pu];
    if (shard.state() == ShardState::Halted) {
        std::ostringstream os;
        os << "armJob: channel " << puShard_[pu]
           << " halted: " << shard.haltStatus().toString();
        return Status::make(StatusCode::InvalidState, os.str());
    }
    if (!shard.puParked(local)) {
        std::ostringstream os;
        os << "armJob: slot " << pu << " still holds job "
           << shard.puOutcome(local).jobId
           << " (retire the drained job first)";
        return Status::make(StatusCode::InvalidState, os.str());
    }
    const int in_width = slotProgram(pu).inputTokenWidth;
    if (stream.sizeBits() % in_width != 0) {
        std::ostringstream os;
        os << "armJob: job " << job_id
           << "'s stream is not a whole number of tokens";
        return Status::make(StatusCode::InvalidArgument, os.str());
    }

    // Per-job stream truncation — the same upload-fault hash the
    // one-shot path applies, keyed by job id instead of PU index, so a
    // job's fate is independent of which slot it lands on.
    uint64_t tokens = stream.sizeBits() / in_width;
    truncation_[pu] = {tokens, tokens};
    if (config_.faults.enabled()) {
        uint64_t keep =
            fault::truncatedJobTokens(config_.faults, job_id, tokens);
        if (keep != tokens) {
            stream.resizeBits(keep * in_width);
            truncation_[pu].first = keep;
        }
    }

    if (ceilDiv(stream.sizeBits(), 8) > inputRegions_[pu].regionBytes) {
        std::ostringstream os;
        os << "armJob: job " << job_id << "'s stream ("
           << ceilDiv(stream.sizeBits(), 8) << " bytes) exceeds the "
           << inputRegions_[pu].regionBytes
           << "-byte input region (raise "
              "SystemConfig::inputRegionBytes)";
        return Status::make(StatusCode::InvalidArgument, os.str());
    }

    // Upload the stream to the slot's region base, re-target the
    // stream-specialized unit, then re-arm the controller lanes.
    auto bytes = stream.toBytes();
    auto &mem = shard.channel().memory();
    std::copy(bytes.begin(), bytes.end(),
              mem.begin() + inputRegions_[pu].baseAddr);
    if (slotBackends_[pu] == PuBackend::Fast)
        static_cast<FastPu &>(shard.processingUnit(local)).rearm(stream);
    shard.rearmPu(local, stream.sizeBits(), job_id);
    return Status::make(StatusCode::Ok);
}

void
FleetSystem::stepEpoch(uint64_t epoch_cycles)
{
    auto start = std::chrono::steady_clock::now();
    threadsUsed_ = resolveThreads(numShards());
    parallelFor(threadsUsed_, numShards(),
                [&](int s) { shards_[s]->step(epoch_cycles); });
    wallSeconds_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
}

bool
FleetSystem::puDrained(int pu) const
{
    return shards_[puShard_[pu]]->puDrained(puLocal_[pu]);
}

BitBuffer
FleetSystem::jobOutput(int pu) const
{
    if (!puDrained(pu))
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "jobOutput: read before the slot's job drained"));
    return readOutput(pu,
                      shards_[puShard_[pu]]->flushedPayloadBits(
                          puLocal_[pu]));
}

RetiredJob
FleetSystem::retireJob(int pu)
{
    RetiredJob job = shards_[puShard_[pu]]->retireJob(puLocal_[pu]);
    auto [kept, original] = truncation_[pu];
    job.keptTokens = kept;
    job.originalTokens = original;
    if (job.outcome.status.code == StatusCode::Ok && kept != original) {
        // The job completed, but over an injected short stream:
        // surface that so callers don't mistake partial coverage for a
        // full run — mirroring the one-shot report remap.
        std::ostringstream os;
        os << "job " << job.jobId << ": input stream truncated to "
           << kept << " of " << original << " tokens";
        job.outcome.status =
            Status::make(StatusCode::StreamTruncated, os.str());
    }
    return job;
}

Status
FleetSystem::cancelJob(int pu, Status status)
{
    if (!sessionMode_)
        return Status::make(StatusCode::InvalidState,
                            "cancelJob: system was built one-shot");
    if (pu < 0 || pu >= numPus())
        return Status::make(StatusCode::InvalidArgument,
                            "cancelJob: no such slot");
    if (!shards_[puShard_[pu]]->cancelPu(puLocal_[pu],
                                         std::move(status))) {
        std::ostringstream os;
        os << "cancelJob: slot " << pu
           << " holds no cancellable in-flight job";
        return Status::make(StatusCode::InvalidState, os.str());
    }
    return Status::make(StatusCode::Ok);
}

void
FleetSystem::forceHaltChannel(int c, Status status)
{
    if (c < 0 || c >= numShards())
        throw StatusError(Status::make(StatusCode::InvalidArgument,
                                       "forceHaltChannel: no such "
                                       "channel"));
    shards_[c]->forceHalt(std::move(status));
}

const RunReport &
FleetSystem::finishSession()
{
    if (!sessionMode_)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "finishSession: system was built one-shot; use run()"));
    if (ran_)
        throw StatusError(Status::make(
            StatusCode::InvalidState, "finishSession() called twice"));
    beginSession();
    report_ = RunReport{};
    report_.channels.resize(numShards());
    report_.pus.resize(numPus());
    for (int s = 0; s < numShards(); ++s)
        report_.channels[s] = shards_[s]->finishRun();
    for (int p = 0; p < numPus(); ++p)
        report_.pus[p] = shards_[puShard_[p]]->puOutcome(puLocal_[p]);

    if (config_.trace.enabled()) {
        auto trace_report = std::make_shared<trace::TraceReport>();
        trace_report->config = config_.trace;
        trace_report->clockMHz = config_.clockMHz;
        for (auto &shard : shards_)
            trace_report->channels.push_back(shard->takeTrace());
        trace_report->sessionTracks = std::move(sessionTracks_);
        report_.trace = std::move(trace_report);
    }

    cycles_ = 0;
    for (const auto &shard : shards_)
        cycles_ = std::max(cycles_, shard->cycles());
    ran_ = true;
    return report_;
}

void
FleetSystem::setSessionTracks(std::vector<trace::CounterTrack> tracks)
{
    sessionTracks_ = std::move(tracks);
}

SystemStats
FleetSystem::stats() const
{
    SystemStats stats;
    stats.cycles = cycles_;
    stats.clockMHz = config_.clockMHz;
    stats.threadsUsed = threadsUsed_;
    stats.wallSeconds = wallSeconds_;
    if (sessionMode_) {
        // Cumulative across every job served (finalized per shard by
        // finishSession; zeros before it).
        for (const auto &shard : shards_) {
            stats.inputBytes += shard->stats().inputBytes;
            stats.outputBytes += shard->stats().outputBytes;
        }
    } else {
        for (const auto &stream : streams_)
            stats.inputBytes += ceilDiv(stream.sizeBits(), 8);
        for (size_t p = 0; p < streams_.size(); ++p)
            stats.outputBytes += ceilDiv(
                shards_[puShard_[p]]->emittedBits(puLocal_[p]), 8);
    }
    if (ran_)
        for (const auto &shard : shards_)
            stats.channels.push_back(shard->stats());
    return stats;
}

} // namespace system
} // namespace fleet
