#include "system/fleet_system.h"

#include <optional>

#include "compile/compiler.h"
#include "system/pu_fast.h"
#include "system/pu_rtl.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace system {

FleetSystem::FleetSystem(const lang::Program &program,
                         const SystemConfig &config,
                         std::vector<BitBuffer> streams)
    : program_(program), config_(config), streams_(std::move(streams))
{
    if (streams_.empty())
        fatal("FleetSystem: needs at least one stream");
    if (config_.numChannels < 1)
        fatal("FleetSystem: needs at least one channel");

    const uint64_t burst_bytes = config_.inputCtrl.burstBits / 8;
    const int channels = config_.numChannels;

    // Lay out each channel's memory: all of its PUs' input regions,
    // then their output regions.
    struct Layout
    {
        std::vector<memctl::StreamRegion> inputs;
        std::vector<memctl::StreamRegion> outputs;
        std::vector<int> globalPu;
        uint64_t bytes = 0;
    };
    std::vector<Layout> layouts(channels);

    outputRegions_.resize(streams_.size());
    for (size_t p = 0; p < streams_.size(); ++p) {
        const BitBuffer &stream = streams_[p];
        if (stream.sizeBits() % program_.inputTokenWidth != 0)
            fatal("FleetSystem: stream ", p,
                  " is not a whole number of tokens");
        int ch = static_cast<int>(p) % channels;
        Layout &layout = layouts[ch];

        memctl::StreamRegion in;
        in.baseAddr = layout.bytes;
        in.streamBits = stream.sizeBits();
        in.regionBytes = roundUp(ceilDiv(stream.sizeBits(), 8),
                                 burst_bytes);
        layout.bytes += in.regionBytes;

        memctl::StreamRegion out;
        uint64_t out_bytes = config_.outputRegionBytes != 0
                                 ? config_.outputRegionBytes
                                 : 2 * in.regionBytes + 8192;
        out.baseAddr = 0; // Assigned after all input regions.
        out.regionBytes = roundUp(out_bytes, burst_bytes);
        out.streamBits = 0;

        layout.inputs.push_back(in);
        layout.outputs.push_back(out);
        layout.globalPu.push_back(static_cast<int>(p));
    }
    for (auto &layout : layouts) {
        for (auto &out : layout.outputs) {
            out.baseAddr = layout.bytes;
            layout.bytes += out.regionBytes;
        }
    }

    // Instantiate channels and controllers; copy streams into memory.
    for (int ch = 0; ch < channels; ++ch) {
        Layout &layout = layouts[ch];
        auto channel = std::make_unique<dram::DramChannel>(
            config_.dram, std::max<uint64_t>(layout.bytes, burst_bytes));
        for (size_t l = 0; l < layout.inputs.size(); ++l) {
            const BitBuffer &stream = streams_[layout.globalPu[l]];
            auto bytes = stream.toBytes();
            std::copy(bytes.begin(), bytes.end(),
                      channel->memory().begin() +
                          layout.inputs[l].baseAddr);
            outputRegions_[layout.globalPu[l]] = layout.outputs[l];
        }
        inputCtrls_.push_back(std::make_unique<memctl::InputController>(
            *channel, config_.inputCtrl, layout.inputs));
        outputCtrls_.push_back(std::make_unique<memctl::OutputController>(
            *channel, config_.outputCtrl, layout.outputs));
        channels_.push_back(std::move(channel));
    }

    // Instantiate the processing units.
    std::optional<compile::CompiledUnit> compiled;
    if (config_.backend == PuBackend::Rtl)
        compiled.emplace(compile::compileProgram(program_));
    std::vector<int> local_count(channels, 0);
    for (size_t p = 0; p < streams_.size(); ++p) {
        PuSlot slot;
        slot.channel = static_cast<int>(p) % channels;
        slot.localIndex = local_count[slot.channel]++;
        if (config_.backend == PuBackend::Rtl)
            slot.pu = std::make_unique<RtlPu>(*compiled);
        else
            slot.pu = std::make_unique<FastPu>(program_, streams_[p]);
        pus_.push_back(std::move(slot));
    }
}

FleetSystem::~FleetSystem() = default;

void
FleetSystem::run()
{
    const int in_width = program_.inputTokenWidth;
    const int out_width = program_.outputTokenWidth;

    // Forward-progress watchdog: a configuration can genuinely deadlock
    // (e.g. blocking output addressing with divergent filter rates, the
    // pathology Section 5's non-blocking default avoids); detect it
    // rather than spinning to maxCycles.
    uint64_t last_activity_cycle = 0;
    uint64_t last_beats = 0;

    for (cycles_ = 0; cycles_ < config_.maxCycles; ++cycles_) {
        bool activity = false;
        bool all_finished = true;
        for (auto &slot : pus_) {
            auto &in_ctrl = *inputCtrls_[slot.channel];
            auto &out_ctrl = *outputCtrls_[slot.channel];
            auto &in_buf = in_ctrl.buffer(slot.localIndex);
            auto &out_buf = out_ctrl.buffer(slot.localIndex);

            PuInputs in;
            in.inputValid = in_buf.sizeBits() >= uint64_t(in_width);
            in.inputToken = in.inputValid ? in_buf.peek(in_width) : 0;
            in.inputFinished =
                in_ctrl.streamExhausted(slot.localIndex) && in_buf.empty();
            in.outputReady = out_buf.freeBits() >= uint64_t(out_width);

            PuOutputs out = slot.pu->eval(in);

            if (out.outputValid && in.outputReady) {
                out_buf.push(out.outputToken, out_width);
                slot.emittedBits += out_width;
                activity = true;
            }
            if (out.inputReady && in.inputValid) {
                in_buf.pop(in_width);
                activity = true;
            }
            if (out.outputFinished && !slot.finishedSeen) {
                out_ctrl.setPuFinished(slot.localIndex);
                slot.finishedSeen = true;
                slot.stats.finishedAtCycle = cycles_;
                activity = true;
            }
            if (!slot.finishedSeen) {
                if (out.inputReady && !in.inputValid && !in.inputFinished)
                    ++slot.stats.inputStarvedCycles;
                if (out.outputValid && !in.outputReady)
                    ++slot.stats.outputBlockedCycles;
            }
            all_finished = all_finished && slot.finishedSeen;
        }

        for (int ch = 0; ch < config_.numChannels; ++ch) {
            inputCtrls_[ch]->tick();
            outputCtrls_[ch]->tick();
            channels_[ch]->tick();
        }
        for (auto &slot : pus_)
            slot.pu->step();

        uint64_t beats = 0;
        for (int ch = 0; ch < config_.numChannels; ++ch) {
            beats += channels_[ch]->beatsDelivered() +
                     channels_[ch]->beatsWritten();
        }
        if (activity || beats != last_beats) {
            last_activity_cycle = cycles_;
            last_beats = beats;
        } else if (cycles_ - last_activity_cycle > 200000) {
            fatal("FleetSystem: no forward progress for 200000 cycles "
                  "(deadlocked configuration?)");
        }

        if (all_finished) {
            bool drained = true;
            for (int ch = 0; ch < config_.numChannels; ++ch)
                drained = drained && outputCtrls_[ch]->done();
            if (drained) {
                ++cycles_;
                ran_ = true;
                return;
            }
        }
    }
    fatal("FleetSystem: did not finish within ", config_.maxCycles,
          " cycles");
}

BitBuffer
FleetSystem::output(int pu) const
{
    if (!ran_)
        fatal("FleetSystem: output() before run()");
    const PuSlot &slot = pus_[pu];
    const auto &out_ctrl = *outputCtrls_[slot.channel];
    uint64_t bits = out_ctrl.payloadBits(slot.localIndex);
    if (bits != slot.emittedBits)
        panic("FleetSystem: controller flushed ", bits,
              " bits but the unit emitted ", slot.emittedBits);
    const auto &mem = channels_[slot.channel]->memory();
    const auto &region = outputRegions_[pu];
    BitBuffer out;
    for (uint64_t offset = 0; offset < bits;) {
        int chunk = static_cast<int>(std::min<uint64_t>(64, bits - offset));
        uint64_t byte = region.baseAddr + offset / 8;
        // Offsets are multiples of the token width; assemble from bytes.
        uint64_t value = 0;
        int got = 0;
        int shift = offset % 8;
        while (got < chunk) {
            int piece = std::min(chunk - got, 8 - shift);
            value |= (uint64_t(mem[byte]) >> shift & mask64(piece)) << got;
            got += piece;
            shift = 0;
            ++byte;
        }
        out.appendBits(value, chunk);
        offset += chunk;
    }
    return out;
}

SystemStats
FleetSystem::stats() const
{
    SystemStats stats;
    stats.cycles = cycles_;
    stats.clockMHz = config_.clockMHz;
    for (const auto &stream : streams_)
        stats.inputBytes += ceilDiv(stream.sizeBits(), 8);
    for (const auto &slot : pus_)
        stats.outputBytes += ceilDiv(slot.emittedBits, 8);
    return stats;
}

} // namespace system
} // namespace fleet
