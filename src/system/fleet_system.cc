#include "system/fleet_system.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <optional>
#include <sstream>
#include <thread>

#include "compile/compiler.h"
#include "system/pu_fast.h"
#include "system/pu_rtl.h"
#include "system/pu_rtl_batch.h"
#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace system {

namespace {

int
hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

/**
 * Run fn(0..jobs-1) on up to `threads` workers. Jobs must be mutually
 * independent. Exceptions are captured per job and the lowest-index one
 * is rethrown after the pool joins, matching the error a sequential loop
 * would surface first.
 */
void
parallelFor(int threads, int jobs, const std::function<void(int)> &fn)
{
    if (jobs <= 0)
        return;
    if (threads <= 1 || jobs == 1) {
        for (int i = 0; i < jobs; ++i)
            fn(i);
        return;
    }
    std::atomic<int> next{0};
    std::vector<std::exception_ptr> errors(jobs);
    {
        std::vector<std::jthread> pool;
        pool.reserve(std::min(threads, jobs));
        for (int t = 0; t < std::min(threads, jobs); ++t) {
            pool.emplace_back([&] {
                for (int i = next.fetch_add(1); i < jobs;
                     i = next.fetch_add(1)) {
                    try {
                        fn(i);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            });
        }
    } // jthreads join here.
    for (auto &error : errors)
        if (error)
            std::rethrow_exception(error);
}

} // namespace

int
FleetSystem::resolveThreads(int jobs) const
{
    int threads = config_.numThreads;
    if (threads <= 0)
        threads = hardwareThreads();
    return std::max(1, std::min(threads, jobs));
}

FleetSystem::FleetSystem(const lang::Program &program,
                         const SystemConfig &config,
                         std::vector<BitBuffer> streams)
    : program_(program), config_(config), streams_(std::move(streams))
{
    if (streams_.empty())
        fatal("FleetSystem: needs at least one stream");
    if (config_.numChannels < 1)
        fatal("FleetSystem: needs at least one channel");

    const uint64_t burst_bytes = config_.inputCtrl.burstBits / 8;
    const int channels = config_.numChannels;

    // Tell the controllers the PU token widths so the per-PU buffers
    // can carry the one-token skid space that keeps non-dividing token
    // widths from wedging at bufferBursts = 1 (memctl/params.h).
    config_.inputCtrl.tokenBits = program_.inputTokenWidth;
    config_.outputCtrl.tokenBits = program_.outputTokenWidth;

    // Fault injection: stream truncation models a short or interrupted
    // upload. It must happen before memory layout *and* before FastPu
    // construction (the fast model pre-computes its trace over the
    // exact stream), so it is the very first transformation.
    truncation_.resize(streams_.size());
    for (size_t p = 0; p < streams_.size(); ++p) {
        const BitBuffer &stream = streams_[p];
        if (stream.sizeBits() % program_.inputTokenWidth != 0)
            fatal("FleetSystem: stream ", p,
                  " is not a whole number of tokens");
        uint64_t tokens = stream.sizeBits() / program_.inputTokenWidth;
        truncation_[p] = {tokens, tokens};
        if (!config_.faults.enabled())
            continue;
        uint64_t keep = fault::truncatedStreamTokens(
            config_.faults, static_cast<int>(p), tokens);
        if (keep != tokens) {
            streams_[p].resizeBits(keep * program_.inputTokenWidth);
            truncation_[p].first = keep;
        }
    }

    // Lay out each channel's memory: all of its PUs' input regions,
    // then their output regions.
    struct Layout
    {
        std::vector<memctl::StreamRegion> inputs;
        std::vector<memctl::StreamRegion> outputs;
        std::vector<int> globalPu;
        uint64_t bytes = 0;
    };
    std::vector<Layout> layouts(channels);

    outputRegions_.resize(streams_.size());
    puShard_.resize(streams_.size());
    puLocal_.resize(streams_.size());
    for (size_t p = 0; p < streams_.size(); ++p) {
        const BitBuffer &stream = streams_[p];
        int ch = static_cast<int>(p) % channels;
        Layout &layout = layouts[ch];
        puShard_[p] = ch;
        puLocal_[p] = static_cast<int>(layout.globalPu.size());

        memctl::StreamRegion in;
        in.baseAddr = layout.bytes;
        in.streamBits = stream.sizeBits();
        in.regionBytes = roundUp(ceilDiv(stream.sizeBits(), 8),
                                 burst_bytes);
        layout.bytes += in.regionBytes;

        memctl::StreamRegion out;
        // Auto sizing honors the program's declared worst-case output
        // expansion (never below the historical 2x), plus slack for
        // cleanup-cycle output that is independent of stream length.
        double expansion = std::max(2.0, program_.maxOutputExpansion);
        uint64_t out_bytes =
            config_.outputRegionBytes != 0
                ? config_.outputRegionBytes
                : static_cast<uint64_t>(
                      std::ceil(double(in.regionBytes) * expansion)) +
                      8192;
        out.baseAddr = 0; // Assigned after all input regions.
        out.regionBytes = roundUp(out_bytes, burst_bytes);
        out.streamBits = 0;

        layout.inputs.push_back(in);
        layout.outputs.push_back(out);
        layout.globalPu.push_back(static_cast<int>(p));
    }
    for (auto &layout : layouts) {
        for (auto &out : layout.outputs) {
            out.baseAddr = layout.bytes;
            layout.bytes += out.regionBytes;
        }
    }

    // Instantiate one self-contained shard per channel and copy its
    // streams into channel memory.
    for (int ch = 0; ch < channels; ++ch) {
        Layout &layout = layouts[ch];
        auto shard = std::make_unique<ChannelShard>(
            ch, config_.dram, config_.inputCtrl, config_.outputCtrl,
            layout.inputs, layout.outputs,
            std::max<uint64_t>(layout.bytes, burst_bytes),
            config_.faults, config_.trace);
        auto &mem = shard->channel().memory();
        for (size_t l = 0; l < layout.inputs.size(); ++l) {
            const BitBuffer &stream = streams_[layout.globalPu[l]];
            auto bytes = stream.toBytes();
            std::copy(bytes.begin(), bytes.end(),
                      mem.begin() + layout.inputs[l].baseAddr);
            outputRegions_[layout.globalPu[l]] = layout.outputs[l];
        }
        shards_.push_back(std::move(shard));
    }

    // Instantiate the processing units. The RTL program is compiled
    // exactly once (circuit, and for the tape engines the optimizer +
    // tape) and shared by every replica. FastPu construction pre-runs
    // the functional simulator over the unit's whole stream — the
    // dominant construction cost — and units are independent, so build
    // them on the worker pool.
    std::optional<compile::CompiledUnit> compiled;
    std::shared_ptr<const RtlTapeEngine> engine;
    std::vector<std::shared_ptr<RtlBatch>> batches(channels);
    switch (config_.backend) {
      case PuBackend::Fast:
        break;
      case PuBackend::RtlInterp:
        compiled.emplace(compile::compileProgram(program_));
        break;
      case PuBackend::RtlTape:
        engine = std::make_shared<const RtlTapeEngine>(program_);
        break;
      case PuBackend::Rtl:
        engine = std::make_shared<const RtlTapeEngine>(program_);
        // One SoA batch per channel: lane l = the PU with local index l.
        for (int ch = 0; ch < channels; ++ch) {
            int lanes = static_cast<int>(layouts[ch].globalPu.size());
            if (lanes == 0)
                continue;
            batches[ch] = std::make_shared<RtlBatch>(engine, lanes);
            shards_[ch]->attachBatch(batches[ch]);
        }
        break;
    }
    std::vector<std::unique_ptr<ProcessingUnit>> pus(streams_.size());
    parallelFor(resolveThreads(static_cast<int>(streams_.size())),
                static_cast<int>(streams_.size()), [&](int p) {
                    switch (config_.backend) {
                      case PuBackend::Fast:
                        pus[p] = std::make_unique<FastPu>(program_,
                                                          streams_[p]);
                        break;
                      case PuBackend::RtlInterp:
                        pus[p] = std::make_unique<RtlPu>(*compiled);
                        break;
                      case PuBackend::RtlTape:
                        pus[p] = std::make_unique<TapeRtlPu>(engine);
                        break;
                      case PuBackend::Rtl:
                        pus[p] = std::make_unique<RtlBatchLane>(
                            batches[puShard_[p]], puLocal_[p]);
                        break;
                    }
                });
    for (size_t p = 0; p < streams_.size(); ++p)
        shards_[puShard_[p]]->addPu(std::move(pus[p]),
                                    static_cast<int>(p),
                                    streams_[p].sizeBits());
}

FleetSystem::~FleetSystem() = default;

const RunReport &
FleetSystem::run()
{
    auto start = std::chrono::steady_clock::now();
    const int in_width = program_.inputTokenWidth;
    const int out_width = program_.outputTokenWidth;

    // Channels never communicate (Section 5), so each shard runs its
    // whole simulation independently; the system's cycle count is the
    // slowest channel's. This is exactly what the old global lockstep
    // loop computed — finished channels only idled until the last one
    // drained — so outputs, stats, and cycles are bit-identical.
    // Failures are contained per shard: each worker writes only its own
    // ChannelOutcome slot, and shard run loops never throw.
    report_ = RunReport{};
    report_.channels.resize(numShards());
    report_.pus.resize(numPus());
    threadsUsed_ = resolveThreads(numShards());
    parallelFor(threadsUsed_, numShards(), [&](int s) {
        report_.channels[s] = shards_[s]->run(
            in_width, out_width, config_.maxCycles,
            config_.watchdogCycles);
    });

    for (int p = 0; p < numPus(); ++p) {
        PuOutcome outcome = shards_[puShard_[p]]->puOutcome(puLocal_[p]);
        auto [kept, original] = truncation_[p];
        if (outcome.status.code == StatusCode::Ok && kept != original) {
            // The unit completed, but over an injected short stream:
            // surface that so callers don't mistake partial coverage
            // for a full run.
            std::ostringstream os;
            os << "PU " << p << ": input stream truncated to " << kept
               << " of " << original << " tokens";
            outcome.status =
                Status::make(StatusCode::StreamTruncated, os.str());
        }
        report_.pus[p] = outcome;
    }

    // Assemble the observability report on the calling thread, in
    // channel order — deterministic regardless of how many workers
    // stepped the shards.
    if (config_.trace.enabled()) {
        auto trace_report = std::make_shared<trace::TraceReport>();
        trace_report->config = config_.trace;
        trace_report->clockMHz = config_.clockMHz;
        for (auto &shard : shards_)
            trace_report->channels.push_back(shard->takeTrace());
        report_.trace = std::move(trace_report);
    }

    cycles_ = 0;
    for (const auto &shard : shards_)
        cycles_ = std::max(cycles_, shard->cycles());
    wallSeconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    ran_ = true;
    return report_;
}

BitBuffer
FleetSystem::output(int pu) const
{
    if (!ran_)
        fatal("FleetSystem: output() before run()");
    const ChannelShard &shard = *shards_[puShard_[pu]];
    int local = puLocal_[pu];
    uint64_t bits = shard.flushedPayloadBits(local);
    // A contained or stranded unit legitimately flushed less than it
    // emitted — its output is the partial prefix. Only a *successful*
    // unit losing bits would be a framework bug.
    if (report_.pus[pu].ok() && bits != shard.emittedBits(local))
        panic("FleetSystem: controller flushed ", bits,
              " bits but the unit emitted ", shard.emittedBits(local));
    const auto &mem = shard.channel().memory();
    const auto &region = outputRegions_[pu];
    BitBuffer out;
    for (uint64_t offset = 0; offset < bits;) {
        int chunk = static_cast<int>(std::min<uint64_t>(64, bits - offset));
        uint64_t byte = region.baseAddr + offset / 8;
        // Offsets are multiples of the token width; assemble from bytes.
        uint64_t value = 0;
        int got = 0;
        int shift = offset % 8;
        while (got < chunk) {
            int piece = std::min(chunk - got, 8 - shift);
            value |= (uint64_t(mem[byte]) >> shift & mask64(piece)) << got;
            got += piece;
            shift = 0;
            ++byte;
        }
        out.appendBits(value, chunk);
        offset += chunk;
    }
    return out;
}

SystemStats
FleetSystem::stats() const
{
    SystemStats stats;
    stats.cycles = cycles_;
    stats.clockMHz = config_.clockMHz;
    stats.threadsUsed = threadsUsed_;
    stats.wallSeconds = wallSeconds_;
    for (const auto &stream : streams_)
        stats.inputBytes += ceilDiv(stream.sizeBits(), 8);
    for (size_t p = 0; p < streams_.size(); ++p)
        stats.outputBytes += ceilDiv(
            shards_[puShard_[p]]->emittedBits(puLocal_[p]), 8);
    if (ran_)
        for (const auto &shard : shards_)
            stats.channels.push_back(shard->stats());
    return stats;
}

} // namespace system
} // namespace fleet
