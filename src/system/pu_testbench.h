#ifndef FLEET_SYSTEM_PU_TESTBENCH_H
#define FLEET_SYSTEM_PU_TESTBENCH_H

/**
 * @file
 * Single-PU testbench: drives one processing unit with an input token
 * stream and collects its output, with configurable input-underrun and
 * output-backpressure patterns. Used by the cross-check suites (RTL vs.
 * fast model vs. functional simulator) and by microbenchmarks.
 */

#include "system/pu.h"
#include "util/bitbuf.h"

namespace fleet {
namespace system {

struct TestbenchOptions
{
    /** Probability that input data is presented on a given cycle. */
    double inputValidProb = 1.0;
    /** Probability that the output sink is ready on a given cycle. */
    double outputReadyProb = 1.0;
    uint64_t seed = 1;
    /** Abort if the unit does not finish within this many cycles. */
    uint64_t maxCycles = 1ULL << 28;
};

struct TestbenchResult
{
    BitBuffer output;
    uint64_t cycles = 0;      ///< Cycles until output_finished asserted.
    uint64_t inputTokens = 0; ///< Handshaked input tokens.
    uint64_t outputTokens = 0;
};

/** Run a unit over a full stream; resets the unit first. */
TestbenchResult runPu(ProcessingUnit &pu, const BitBuffer &input,
                      const TestbenchOptions &options = {});

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_PU_TESTBENCH_H
