#ifndef FLEET_SYSTEM_CHANNEL_SHARD_H
#define FLEET_SYSTEM_CHANNEL_SHARD_H

/**
 * @file
 * One memory channel's complete simulation state: the DRAM timing model,
 * the input and output controllers, and every processing unit assigned to
 * the channel. Section 5 of the paper observes that "the processing units
 * are simply divided among the channels ... no further coordination is
 * needed" — a shard is exactly that coordination-free partition, so the
 * full-system simulator can step each shard on its own host thread with
 * no shared mutable state and still be bit-for-bit identical to a
 * single-threaded run (per-shard cycle counts merge as a max at the end).
 *
 * A shard's run() loop is the reference semantics: the legacy
 * single-threaded FleetSystem::run() is now "run every shard in sequence
 * on the calling thread", which is why numThreads = 1 and numThreads = N
 * are byte-identical by construction (enforced by determinism_test).
 *
 * Failure containment (ISSUE 2): the shard is also the failure boundary.
 * Per-PU faults (parity errors on corrupted read beats, output-region
 * overflow) quarantine the single unit — it is killed in both
 * controllers and skipped thereafter while its channel-mates run to
 * completion. Channel-level faults (a forward-progress watchdog trip,
 * the cycle limit, an unexpected exception) end this shard's run with a
 * diagnostic ChannelOutcome; other shards are unaffected. run() never
 * throws for simulation failures — it reports.
 *
 * Incremental stepping (ISSUE 5): run() is the one-shot wrapper over a
 * resumable three-phase protocol — beginRun() initializes the loop
 * state, step(budget) advances up to `budget` cycles and parks at the
 * budget, on completion (Idle), or on a channel-level failure (Halted),
 * and finishRun() settles the ChannelOutcome. Between step() slices a
 * caller may retire a drained unit's job (retireJob) and re-arm the
 * slot with a fresh stream (rearmPu) without disturbing channel-mates
 * mid-flight — the multi-stream job runtime (runtime/session.h) is
 * built on exactly this seam. run() == beginRun + step(unbounded) +
 * finishRun, so the one-shot path is bit-identical by construction.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dram/dram.h"
#include "fault/fault.h"
#include "memctl/input_controller.h"
#include "memctl/output_controller.h"
#include "system/pu.h"
#include "system/run_report.h"
#include "trace/trace.h"

namespace fleet {
namespace system {

class RtlBatch;

/** Per-PU stall breakdown (valid after the shard has run). */
struct PuStats
{
    uint64_t inputStarvedCycles = 0;  ///< Wanted a token, buffer empty.
    uint64_t outputBlockedCycles = 0; ///< Emitting, buffer full.
    uint64_t finishedAtCycle = 0;
};

/**
 * Per-channel utilization counters, surfaced through SystemStats so the
 * benches can report where each channel's cycles went.
 */
struct ChannelStats
{
    uint64_t cycles = 0;
    int numPus = 0;
    uint64_t inputBytes = 0;
    uint64_t outputBytes = 0;
    /** Summed over the channel's PUs. */
    uint64_t inputStarvedCycles = 0;
    uint64_t outputBlockedCycles = 0;
    /** DRAM data-bus beats moved (512-bit each by default). */
    uint64_t beatsDelivered = 0;
    uint64_t beatsWritten = 0;
    /** Per-cycle samples of the DRAM queues (occupancy integrals). */
    uint64_t readQueueOccupancySum = 0;
    uint64_t writeQueueOccupancySum = 0;

    double avgReadQueueDepth() const
    {
        return cycles ? double(readQueueOccupancySum) / cycles : 0.0;
    }
    double avgWriteQueueDepth() const
    {
        return cycles ? double(writeQueueOccupancySum) / cycles : 0.0;
    }
    /** Fraction of cycles the DRAM data bus moved a beat. */
    double busUtilization() const
    {
        return cycles ? double(beatsDelivered + beatsWritten) / cycles
                      : 0.0;
    }
};

/** Where a shard's incremental run currently stands. */
enum class ShardState
{
    Unstarted, ///< beginRun() not yet called.
    Active,    ///< Work pending; step() advances the simulation.
    Idle, ///< Every armed slot drained and flushed; step() is a no-op
          ///< until a slot is re-armed.
    Halted, ///< Channel-level failure (watchdog, cycle limit,
            ///< exception); terminal.
};

/** Everything the job runtime needs to report one drained job. */
struct RetiredJob
{
    uint64_t jobId = 0;
    /** Ok / containment status, decided-at cycle, flushed output bits. */
    PuOutcome outcome;
    uint64_t armCycle = 0;
    uint64_t retireCycle = 0;
    uint64_t streamBits = 0;
    uint64_t emittedBits = 0;
    /** This job's slice of the slot's stall counters. */
    PuStats stats;
    /** Tokens kept / original when fault truncation applied (filled by
     * the system layer; equal when the stream ran whole). */
    uint64_t keptTokens = 0;
    uint64_t originalTokens = 0;
};

class ChannelShard
{
  public:
    /**
     * Build the channel's DRAM model and controllers. Input streams are
     * copied into channel memory by the caller (via memory()); PUs are
     * attached with addPu() in local-index order. A fault injector is
     * constructed only when the plan is enabled — a fault-free shard
     * never consults fault state.
     */
    ChannelShard(int channel_index, const dram::DramParams &dram_params,
                 const memctl::ControllerParams &input_params,
                 const memctl::ControllerParams &output_params,
                 std::vector<memctl::StreamRegion> input_regions,
                 std::vector<memctl::StreamRegion> output_regions,
                 uint64_t mem_bytes, const fault::FaultPlan &fault_plan,
                 const trace::TraceConfig &trace_config = {});

    /** Attach the next processing unit (local index = attach order). */
    void addPu(std::unique_ptr<ProcessingUnit> pu, int global_index,
               uint64_t stream_bits);

    /**
     * Attach a batched RTL engine whose lane l is the PU with local
     * index locals[l] (empty locals = identity: lane l is local l,
     * covering every PU — the legacy single-program arrangement). When
     * a local is covered by a batch, run() evaluates and steps it
     * through the batch's vectorized group calls instead of per-unit
     * eval()/step() — observably identical, since phase 1 of the cycle
     * loop only reads per-PU controller state. Multi-program sessions
     * (ISSUE 8) attach one batch per program hosted on the channel,
     * each covering the slots bound to that program.
     */
    void attachBatch(std::shared_ptr<RtlBatch> batch,
                     std::vector<int> locals = {});

    /**
     * Run this channel until all attached PUs are finished or contained
     * and all output is flushed to channel memory. Self-contained —
     * touches no state outside the shard, so shards may run
     * concurrently. Simulation failures (watchdog stall, cycle-limit
     * overrun, escaped exceptions) are returned as the ChannelOutcome,
     * never thrown. Exactly beginRun + step(unbounded) + finishRun.
     */
    ChannelOutcome run(int input_token_width, int output_token_width,
                       uint64_t max_cycles, uint64_t watchdog_cycles);

    /// @name Incremental stepping (the job runtime's driving seam).
    /// @{

    /** Initialize the cycle loop; the shard becomes Active. */
    void beginRun(int input_token_width, int output_token_width,
                  uint64_t max_cycles, uint64_t watchdog_cycles);

    /**
     * Advance up to `budget` cycles. Returns the state afterwards:
     * Active (budget exhausted, work remains), Idle (every armed slot
     * drained and all output flushed — re-arm or finish), or Halted
     * (watchdog / cycle limit / exception; the status is settled by
     * finishRun). Stepping a non-Active shard is a no-op.
     */
    ShardState step(uint64_t budget);

    /** Settle the ChannelOutcome (Ok when Idle). Call once, last. */
    ChannelOutcome finishRun();

    ShardState state() const { return state_; }
    /** The failure recorded when the shard halted (Ok otherwise). */
    const Status &haltStatus() const { return haltStatus_; }

    /**
     * Park a slot: it holds no job, is skipped by the cycle loop, and
     * never blocks channel completion. Session-mode construction parks
     * every slot; retireJob() parks the slot it retires. Arm with
     * rearmPu(). Call only before beginRun() or on a retired slot.
     */
    void parkPu(int local);

    /**
     * True once `local`'s armed job has fully drained: the unit
     * finished (or was contained), its input lane is idle, and every
     * output bit has been flushed to channel memory — so the output
     * region is readable and the slot is safe to retire + re-arm.
     */
    bool puDrained(int local) const;

    /**
     * Capture a drained job's outcome and park the slot. Closes the
     * job's trace span at the current cycle. The caller reads the
     * output region *before* the next rearmPu (the region is reused).
     */
    RetiredJob retireJob(int local);

    /**
     * Arm a parked slot with a fresh stream of `stream_bits` payload
     * bits (already written at the lane's region base by the caller,
     * who also re-targeted a stream-specialized unit — FastPu::rearm).
     * Resets both controller lanes and the unit, starts the job's trace
     * span, and re-bases the forward-progress watchdog. Channel-mates
     * are untouched mid-flight. The shard becomes Active.
     */
    void rearmPu(int local, uint64_t stream_bits, uint64_t job_id);

    /** The attached unit (the system layer re-targets FastPu here). */
    ProcessingUnit &processingUnit(int local) { return *pus_[local].pu; }

    /** True when the slot holds no job and can be armed. */
    bool puParked(int local) const { return pus_[local].parked; }

    /**
     * Abandon `local`'s in-flight job (ISSUE 7: deadline enforcement):
     * contain the unit with `status` exactly as a parity/overflow event
     * would — killed in both controllers, in-flight bursts discarded,
     * committed output flushed — so the slot drains within a few cycles
     * and retireJob() reclaims it for the next job. No-op if the slot
     * is parked, already drained/contained, or the shard is not Active.
     * Returns true if the cancel took effect.
     */
    bool cancelPu(int local, Status status);

    /**
     * Force a channel-level halt (ISSUE 7: the chaos harness's fault
     * drill): the shard transitions to Halted with `status`, exactly
     * as a watchdog trip would land it, so the recovery layer's
     * re-queue path can be exercised deterministically. No-op unless
     * the shard is Active or Idle.
     */
    void forceHalt(Status status);

    /**
     * Scale the forward-progress watchdog with armed job size
     * (ISSUE 7): the effective threshold is
     * max(watchdog_cycles, factor x largest armed stream's tokens),
     * re-computed whenever the armed set changes (beginRun / rearmPu /
     * retireJob), so a large job's naturally longer quiet stretches
     * (deep prefetch stalls, fault-injected latency storms) cannot
     * false-trip a threshold tuned for small jobs. 0 (default)
     * disables scaling — the threshold is watchdog_cycles verbatim.
     * Set before beginRun().
     */
    void setWatchdogStreamFactor(double factor)
    {
        watchdogStreamFactor_ = factor;
    }

    /// @}

    int channelIndex() const { return channelIndex_; }
    int numPus() const { return static_cast<int>(pus_.size()); }
    uint64_t cycles() const { return cycles_; }

    dram::DramChannel &channel() { return *channel_; }
    const dram::DramChannel &channel() const { return *channel_; }
    const memctl::InputController &inputController() const
    {
        return *inputCtrl_;
    }
    const memctl::OutputController &outputController() const
    {
        return *outputCtrl_;
    }

    /// @name Per-PU results, by local index (valid after run()).
    /// @{
    const PuStats &puStats(int local) const { return pus_[local].stats; }
    uint64_t emittedBits(int local) const { return pus_[local].emittedBits; }
    uint64_t flushedPayloadBits(int local) const
    {
        return outputCtrl_->payloadBits(local);
    }
    const PuOutcome &puOutcome(int local) const
    {
        return pus_[local].outcome;
    }
    /// @}

    /** Utilization counters (valid after run()). */
    const ChannelStats &stats() const { return stats_; }

    /** True if this shard carries a trace collector. */
    bool traceEnabled() const { return trace_ != nullptr; }

    /**
     * Freeze and take the channel's trace — spans closed at the final
     * cycle, component CounterSets harvested from the DRAM model, both
     * controllers, and every attached unit. Call once, after run().
     */
    trace::ChannelTrace takeTrace();

  private:
    struct PuSlot
    {
        std::unique_ptr<ProcessingUnit> pu;
        int globalIndex = -1;
        uint64_t streamBits = 0;
        uint64_t emittedBits = 0;
        bool finishedSeen = false;
        bool failed = false; ///< Contained: skipped until re-armed.
        bool parked = false; ///< No job: skipped, never blocks finish.
        /** Armed via rearmPu (job runtime) — a trace job span is open.
         * One-shot slots armed by addPu stay false: no job spans. */
        bool hasJob = false;
        uint64_t jobId = 0;
        uint64_t armCycle = 0;
        /** Retired jobs' bytes, rolled up for the channel stats. */
        uint64_t pastInputBytes = 0;
        uint64_t pastOutputBytes = 0;
        uint64_t jobsRetired = 0;
        PuStats stats;
        /** Snapshot at arm — per-job stall slices are deltas. */
        PuStats statsAtArm;
        PuOutcome outcome;
        /** Last cycle's handshake, for the watchdog's stall diagnosis. */
        PuInputs lastIn;
        PuOutputs lastOut;
    };

    /** Quarantine one PU: kill it in both controllers, record why. */
    void containPu(int local, Status status);
    /** Effective watchdog threshold for the currently armed set. */
    void recomputeWatchdogBudget();
    /** Fill stats_ from whatever state the run reached. */
    void finalizeStats();
    /** Multi-line forward-progress diagnostic for a watchdog trip. */
    std::string watchdogDump(uint64_t stalled_cycles) const;
    /** One PU's stall classification for the watchdog dump. */
    const char *stallReason(const PuSlot &slot) const;

    int channelIndex_;
    trace::TraceConfig traceConfig_;
    /** Null unless tracing is enabled — the null check is the entire
     * cost of the disabled mode, mirroring the fault layer. */
    std::unique_ptr<trace::ShardTrace> trace_;
    std::optional<fault::ChannelFaults> faults_;
    std::unique_ptr<dram::DramChannel> channel_;
    std::unique_ptr<memctl::InputController> inputCtrl_;
    std::unique_ptr<memctl::OutputController> outputCtrl_;
    std::vector<PuSlot> pus_;
    /** One batched RTL engine + the local PU index behind each of its
     * lanes. Locals covered by a binding are group-evaluated. */
    struct BatchBinding
    {
        std::shared_ptr<RtlBatch> batch;
        std::vector<int> locals; ///< Empty = identity over all PUs.
    };
    std::vector<BatchBinding> batches_;
    /** Per-local (batch index, lane in batch); (-1, -1) = unbatched,
     * evaluated per-unit. Resolved by beginRun(). */
    std::vector<std::pair<int, int>> laneOfLocal_;
    /** Per-cycle scratch: every live PU's gathered input ports. */
    std::vector<PuInputs> cycleIn_;
    uint64_t cycles_ = 0;
    ChannelStats stats_;

    // Resumable-run state, persisted across step() slices.
    ShardState state_ = ShardState::Unstarted;
    int inWidth_ = 0;
    int outWidth_ = 0;
    uint64_t maxCycles_ = 0;
    uint64_t watchdogCycles_ = 0;
    /** Stream-size scaling for the watchdog (0 = off). */
    double watchdogStreamFactor_ = 0.0;
    /** Effective threshold: max(watchdogCycles_, factor x max armed
     * stream tokens). Equals watchdogCycles_ when scaling is off. */
    uint64_t watchdogBudget_ = 0;
    uint64_t lastActivityCycle_ = 0;
    uint64_t lastBeats_ = 0;
    Status haltStatus_;
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_CHANNEL_SHARD_H
