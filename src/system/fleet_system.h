#ifndef FLEET_SYSTEM_FLEET_SYSTEM_H
#define FLEET_SYSTEM_FLEET_SYSTEM_H

/**
 * @file
 * Full-system simulator and host runtime: N copies of a compiled
 * processing unit, divided among the memory channels, each channel with
 * its own input and output controller (Section 5: "the processing units
 * are simply divided among the channels ... no further coordination is
 * needed"). Mirrors the paper's software runtime (Section 2): the user
 * supplies one stream per processing unit, the runtime places them in
 * (simulated) FPGA DRAM, kicks off the units, and reads back each unit's
 * output region when all units have finished.
 *
 * Because channels share nothing, each channel's simulation is owned by a
 * ChannelShard (channel_shard.h) and the shards are stepped concurrently
 * on a host worker pool (SystemConfig::numThreads). The parallel run is
 * bit-for-bit deterministic: outputs, per-PU stats, and the merged cycle
 * count (max over shards) are identical to the numThreads = 1 run.
 *
 * Failure model (ISSUE 2): run() returns a RunReport instead of
 * throwing. Per-PU faults — a parity error on a corrupted read beat, an
 * output-region overflow — quarantine that unit while its channel-mates
 * complete; channel-level failures (forward-progress watchdog, cycle
 * limit) end that channel with a diagnostic status. Deterministic fault
 * injection is configured via SystemConfig::faults (fault/fault.h);
 * with the plan disabled (the default) runs are bit-identical to the
 * pre-fault-layer simulator.
 *
 * Timing is cycle-accurate end to end; throughput in GB/s is
 * bytes / (cycles / clockMHz), the same accounting the paper uses at
 * 125 MHz.
 */

#include <memory>
#include <utility>
#include <vector>

#include "dram/dram.h"
#include "fault/fault.h"
#include "lang/ast.h"
#include "memctl/input_controller.h"
#include "memctl/output_controller.h"
#include "system/channel_shard.h"
#include "system/pu.h"
#include "system/run_report.h"
#include "util/bitbuf.h"

namespace fleet {
namespace system {

enum class PuBackend
{
    Fast, ///< Functional-trace replay (cross-checked against the RTL
          ///< engines).
    Rtl,  ///< Compiled RTL: optimizer + op tape, evaluated batched
          ///< (structure-of-arrays) across each channel's PUs. The
          ///< default cycle-accurate backend.
    RtlTape,   ///< Compiled RTL, one scalar tape evaluator per PU.
    RtlInterp, ///< Per-node RTL interpreter (the reference engine).
};

struct SystemConfig
{
    int numChannels = 4;
    memctl::ControllerParams inputCtrl;  ///< Blocking by default.
    memctl::ControllerParams outputCtrl; ///< Made non-blocking in ctor
                                         ///< unless explicitly configured.
    dram::DramParams dram;
    PuBackend backend = PuBackend::Fast;
    double clockMHz = 125.0;
    /** Per-PU output region; 0 = auto, sized from the program's declared
     * maxOutputExpansion (at least 2x input) plus 8 KiB of slack. */
    uint64_t outputRegionBytes = 0;
    uint64_t maxCycles = 1ULL << 40;
    /**
     * Deterministic fault-injection plan (fault/fault.h). Disabled by
     * default; a disabled plan is never consulted, so fault-free runs
     * are bit-identical to the pre-fault-layer simulator.
     */
    fault::FaultPlan faults;
    /**
     * Forward-progress watchdog: if a channel retires no token and moves
     * no DRAM beat for this many cycles, its run ends with a
     * WatchdogStall outcome carrying a diagnostic dump.
     */
    uint64_t watchdogCycles = 200000;
    /**
     * Cycle-level observability (ISSUE 3, trace/trace.h). Disabled by
     * default; disabled tracing allocates nothing and adds no per-cycle
     * work, and *enabled* tracing is purely observational — outputs,
     * stats, and cycle counts are bit-identical either way. The
     * collected TraceReport is attached to the RunReport.
     */
    trace::TraceConfig trace;
    /**
     * Host worker threads used to step the channel shards (and to
     * pre-compute the fast model's functional traces). 0 = one per
     * hardware thread; 1 = legacy single-threaded path (no pool).
     * Results are identical for every value — see channel_shard.h.
     */
    int numThreads = 0;

    SystemConfig() { outputCtrl.blockingAddressing = false; }
};

struct SystemStats
{
    uint64_t cycles = 0;
    uint64_t inputBytes = 0;
    uint64_t outputBytes = 0;
    double clockMHz = 125.0;
    /** Host worker threads the run actually used. */
    int threadsUsed = 1;
    /** Host wall-clock seconds spent inside run(). */
    double wallSeconds = 0.0;
    /** Per-channel utilization breakdown, indexed by channel. */
    std::vector<ChannelStats> channels;

    double seconds() const { return cycles / (clockMHz * 1e6); }
    /** Input-side processing throughput (the paper's headline metric). */
    double inputGBps() const
    {
        return inputBytes / seconds() / 1e9;
    }
    double outputGBps() const { return outputBytes / seconds() / 1e9; }
    double bytesPerCycle() const
    {
        return cycles ? double(inputBytes) / double(cycles) : 0.0;
    }
};

class FleetSystem
{
  public:
    /**
     * Build a system with one processing unit per input stream. Each
     * stream must be a whole number of input tokens.
     */
    FleetSystem(const lang::Program &program, const SystemConfig &config,
                std::vector<BitBuffer> streams);
    ~FleetSystem();

    /**
     * Run until every unit has finished or been contained and all output
     * is flushed. Simulation failures (parity errors, output overflow,
     * watchdog stalls, cycle-limit overruns) are *contained* — recorded
     * in the returned RunReport at per-channel / per-PU granularity —
     * not thrown.
     */
    const RunReport &run();

    /** The last run's report (valid after run()). */
    const RunReport &report() const { return report_; }

    /**
     * Output stream of one processing unit (valid after run()). For a
     * contained unit this is the partial output flushed before the
     * failure; for a unit on a truncated stream, the full output over
     * the truncated prefix.
     */
    BitBuffer output(int pu) const;

    SystemStats stats() const;

    /** Per-PU stall breakdown (valid after run()). */
    const PuStats &puStats(int pu) const
    {
        return shards_[puShard_[pu]]->puStats(puLocal_[pu]);
    }

    int numPus() const { return static_cast<int>(streams_.size()); }
    int numShards() const { return static_cast<int>(shards_.size()); }
    const dram::DramChannel &channel(int c) const
    {
        return shards_[c]->channel();
    }
    const ChannelShard &shard(int c) const { return *shards_[c]; }

  private:
    /** Worker threads to use for `jobs` independent jobs. */
    int resolveThreads(int jobs) const;

    lang::Program program_;
    SystemConfig config_;
    std::vector<BitBuffer> streams_;
    std::vector<std::unique_ptr<ChannelShard>> shards_;
    std::vector<int> puShard_; ///< Global PU index -> owning shard.
    std::vector<int> puLocal_; ///< Global PU index -> local index.
    std::vector<memctl::StreamRegion> outputRegions_; ///< Global PU index.
    /** Tokens kept / original per PU when fault truncation applied. */
    std::vector<std::pair<uint64_t, uint64_t>> truncation_;
    RunReport report_;
    uint64_t cycles_ = 0;
    int threadsUsed_ = 1;
    double wallSeconds_ = 0.0;
    bool ran_ = false;
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_FLEET_SYSTEM_H
