#ifndef FLEET_SYSTEM_FLEET_SYSTEM_H
#define FLEET_SYSTEM_FLEET_SYSTEM_H

/**
 * @file
 * Full-system simulator and host runtime: N copies of a compiled
 * processing unit, divided among the memory channels, each channel with
 * its own input and output controller (Section 5: "the processing units
 * are simply divided among the channels ... no further coordination is
 * needed"). Mirrors the paper's software runtime (Section 2): the user
 * supplies one stream per processing unit, the runtime places them in
 * (simulated) FPGA DRAM, kicks off the units, and reads back each unit's
 * output region when all units have finished.
 *
 * Timing is cycle-accurate end to end; throughput in GB/s is
 * bytes / (cycles / clockMHz), the same accounting the paper uses at
 * 125 MHz.
 */

#include <memory>
#include <vector>

#include "dram/dram.h"
#include "lang/ast.h"
#include "memctl/input_controller.h"
#include "memctl/output_controller.h"
#include "system/pu.h"
#include "util/bitbuf.h"

namespace fleet {
namespace system {

enum class PuBackend
{
    Fast, ///< Functional-trace replay (cross-checked against Rtl).
    Rtl,  ///< Interpreted compiled RTL.
};

struct SystemConfig
{
    int numChannels = 4;
    memctl::ControllerParams inputCtrl;  ///< Blocking by default.
    memctl::ControllerParams outputCtrl; ///< Made non-blocking in ctor
                                         ///< unless explicitly configured.
    dram::DramParams dram;
    PuBackend backend = PuBackend::Fast;
    double clockMHz = 125.0;
    /** Per-PU output region; 0 = auto (2x input + 8 KiB). */
    uint64_t outputRegionBytes = 0;
    uint64_t maxCycles = 1ULL << 40;

    SystemConfig() { outputCtrl.blockingAddressing = false; }
};

struct SystemStats
{
    uint64_t cycles = 0;
    uint64_t inputBytes = 0;
    uint64_t outputBytes = 0;
    double clockMHz = 125.0;

    double seconds() const { return cycles / (clockMHz * 1e6); }
    /** Input-side processing throughput (the paper's headline metric). */
    double inputGBps() const
    {
        return inputBytes / seconds() / 1e9;
    }
    double outputGBps() const { return outputBytes / seconds() / 1e9; }
};

class FleetSystem
{
  public:
    /**
     * Build a system with one processing unit per input stream. Each
     * stream must be a whole number of input tokens.
     */
    FleetSystem(const lang::Program &program, const SystemConfig &config,
                std::vector<BitBuffer> streams);
    ~FleetSystem();

    /** Run to completion (all units finished, all output flushed). */
    void run();

    /** Output stream of one processing unit (valid after run()). */
    BitBuffer output(int pu) const;

    SystemStats stats() const;

    /** Per-PU stall breakdown (valid after run()). */
    struct PuStats
    {
        uint64_t inputStarvedCycles = 0; ///< Wanted a token, buffer empty.
        uint64_t outputBlockedCycles = 0; ///< Emitting, buffer full.
        uint64_t finishedAtCycle = 0;
    };
    const PuStats &puStats(int pu) const { return pus_[pu].stats; }

    int numPus() const { return static_cast<int>(streams_.size()); }
    const dram::DramChannel &channel(int c) const { return *channels_[c]; }

  private:
    struct PuSlot
    {
        std::unique_ptr<ProcessingUnit> pu;
        int channel;
        int localIndex;
        uint64_t emittedBits = 0;
        bool finishedSeen = false;
        PuStats stats;
    };

    lang::Program program_;
    SystemConfig config_;
    std::vector<BitBuffer> streams_;
    std::vector<std::unique_ptr<dram::DramChannel>> channels_;
    std::vector<std::unique_ptr<memctl::InputController>> inputCtrls_;
    std::vector<std::unique_ptr<memctl::OutputController>> outputCtrls_;
    std::vector<PuSlot> pus_;
    std::vector<memctl::StreamRegion> outputRegions_; ///< Global PU index.
    uint64_t cycles_ = 0;
    bool ran_ = false;
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_FLEET_SYSTEM_H
