#ifndef FLEET_SYSTEM_FLEET_SYSTEM_H
#define FLEET_SYSTEM_FLEET_SYSTEM_H

/**
 * @file
 * Full-system simulator and host runtime: N copies of a compiled
 * processing unit, divided among the memory channels, each channel with
 * its own input and output controller (Section 5: "the processing units
 * are simply divided among the channels ... no further coordination is
 * needed"). Mirrors the paper's software runtime (Section 2): the user
 * supplies one stream per processing unit, the runtime places them in
 * (simulated) FPGA DRAM, kicks off the units, and reads back each unit's
 * output region when all units have finished.
 *
 * Because channels share nothing, each channel's simulation is owned by a
 * ChannelShard (channel_shard.h) and the shards are stepped concurrently
 * on a host worker pool (SystemConfig::numThreads). The parallel run is
 * bit-for-bit deterministic: outputs, per-PU stats, and the merged cycle
 * count (max over shards) are identical to the numThreads = 1 run.
 *
 * Failure model (ISSUE 2): run() returns a RunReport instead of
 * throwing. Per-PU faults — a parity error on a corrupted read beat, an
 * output-region overflow — quarantine that unit while its channel-mates
 * complete; channel-level failures (forward-progress watchdog, cycle
 * limit) end that channel with a diagnostic status. Deterministic fault
 * injection is configured via SystemConfig::faults (fault/fault.h);
 * with the plan disabled (the default) runs are bit-identical to the
 * pre-fault-layer simulator.
 *
 * Timing is cycle-accurate end to end; throughput in GB/s is
 * bytes / (cycles / clockMHz), the same accounting the paper uses at
 * 125 MHz.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dram/dram.h"
#include "fault/fault.h"
#include "lang/ast.h"
#include "memctl/input_controller.h"
#include "memctl/output_controller.h"
#include "model/device.h"
#include "system/channel_shard.h"
#include "system/device.h"
#include "system/pu.h"
#include "system/run_report.h"
#include "util/bitbuf.h"

namespace fleet {
namespace system {

// PuBackend, SlotBinding, and SystemStats moved to system/device.h
// (ISSUE 10) alongside the Device interface; this header re-exports
// them transitively for every existing include site.

struct SystemConfig
{
    int numChannels = 4;
    memctl::ControllerParams inputCtrl;  ///< Blocking by default.
    memctl::ControllerParams outputCtrl; ///< Made non-blocking in ctor
                                         ///< unless explicitly configured.
    dram::DramParams dram;
    PuBackend backend = PuBackend::Fast;
    double clockMHz = 125.0;
    /** Per-PU output region; 0 = auto, sized from the program's declared
     * maxOutputExpansion (at least 2x input) plus 8 KiB of slack. */
    uint64_t outputRegionBytes = 0;
    /**
     * Session mode only (runtime/session.h): fixed per-slot input
     * region size. Every job's stream must fit in one region — armJob
     * rejects longer streams with InvalidArgument. 0 = 256 KiB.
     */
    uint64_t inputRegionBytes = 0;
    uint64_t maxCycles = 1ULL << 40;
    /**
     * Deterministic fault-injection plan (fault/fault.h). Disabled by
     * default; a disabled plan is never consulted, so fault-free runs
     * are bit-identical to the pre-fault-layer simulator.
     */
    fault::FaultPlan faults;
    /**
     * Forward-progress watchdog: if a channel retires no token and moves
     * no DRAM beat for this many cycles, its run ends with a
     * WatchdogStall outcome carrying a diagnostic dump.
     */
    uint64_t watchdogCycles = 200000;
    /**
     * Scale the watchdog with armed job size (ISSUE 7): when nonzero,
     * each channel's effective threshold is
     * max(watchdogCycles, factor x largest armed stream's token count),
     * re-computed as jobs arm and retire — so a large job's naturally
     * longer quiet stretches cannot false-trip a threshold tuned for
     * small ones. 0 (default) = fixed watchdogCycles.
     */
    double watchdogStreamFactor = 0.0;
    /**
     * Cycle-level observability (ISSUE 3, trace/trace.h). Disabled by
     * default; disabled tracing allocates nothing and adds no per-cycle
     * work, and *enabled* tracing is purely observational — outputs,
     * stats, and cycle counts are bit-identical either way. The
     * collected TraceReport is attached to the RunReport.
     */
    trace::TraceConfig trace;
    /**
     * Host worker threads used to step the channel shards (and to
     * pre-compute the fast model's functional traces). 0 = one per
     * hardware thread; 1 = legacy single-threaded path (no pool).
     * Results are identical for every value — see channel_shard.h.
     */
    int numThreads = 0;

    SystemConfig() { outputCtrl.blockingAddressing = false; }
};

class FleetSystem : public Device
{
  public:
    /**
     * Build a system with one processing unit per input stream. Each
     * stream must be a whole number of input tokens.
     */
    FleetSystem(const lang::Program &program, const SystemConfig &config,
                std::vector<BitBuffer> streams);

    /**
     * Session mode (the multi-stream job runtime, runtime/session.h):
     * build `num_slots` parked units with fixed-size input regions
     * (SystemConfig::inputRegionBytes) and no streams. Jobs attach to
     * slots with armJob() and the simulation advances in stepEpoch()
     * slices; run() is unavailable (InvalidState).
     */
    FleetSystem(const lang::Program &program, const SystemConfig &config,
                int num_slots);

    /**
     * Multi-program session (ISSUE 8): host several compiled programs
     * at once, each slot pre-armed with the program its SlotBinding
     * names. Empty bindings = every slot runs programs[0] on lane 0
     * (the single-program behaviour). All programs must share input
     * and output token widths (one channel-wide controller
     * configuration serves every slot); a mix of two or more programs
     * is checked against the device area model at construction
     * (checkProgramMix) — violations throw
     * StatusError(ResourceExhausted / InvalidArgument).
     */
    FleetSystem(std::vector<lang::Program> programs,
                const SystemConfig &config, int num_slots,
                std::vector<SlotBinding> bindings = {});
    ~FleetSystem();

    /**
     * Configure-time area check for a program mix: estimates each bound
     * program's per-PU resources (model/area.h) plus the per-channel
     * controllers, and compares the total against the device net of its
     * shell. Pure — no system state; callable standalone (the property
     * tests exercise it against tiny synthetic devices). Returns Ok
     * when the mix fits, ResourceExhausted (with the limiting resource)
     * when it does not, InvalidArgument for malformed bindings.
     */
    static Status checkProgramMix(
        const std::vector<lang::Program> &programs,
        const std::vector<SlotBinding> &bindings,
        const SystemConfig &config, const model::Device &device = {});

    /**
     * Run until every unit has finished or been contained and all output
     * is flushed. Simulation failures (parity errors, output overflow,
     * watchdog stalls, cycle-limit overruns) are *contained* — recorded
     * in the returned RunReport at per-channel / per-PU granularity —
     * not thrown. Protocol misuse is not contained: calling run() twice
     * or on a session-mode system throws StatusError(InvalidState).
     */
    const RunReport &run();

    /** The last run's report. Throws StatusError(InvalidState) before a
     * run has produced one. */
    const RunReport &report() const;

    /**
     * Output stream of one processing unit (valid after run()). For a
     * contained unit this is the partial output flushed before the
     * failure; for a unit on a truncated stream, the full output over
     * the truncated prefix. Throws StatusError(InvalidState) before a
     * run.
     */
    BitBuffer output(int pu) const;

    /// @name Session mode (driven by runtime::Session).
    /// @{

    bool sessionMode() const { return sessionMode_; }

    /** Start the session clock: beginRun on every shard. */
    void beginSession() override;

    /**
     * Arm a parked slot with a job: applies the fault plan's per-job
     * stream truncation (keyed by job id), copies the stream into the
     * slot's input region, re-targets a stream-specialized unit
     * (FastPu), and re-arms the slot's controller lanes. Errors are
     * returned, not thrown: InvalidState when the system is not in
     * session mode / the slot is busy / its channel halted;
     * InvalidArgument when the stream is not whole tokens or exceeds
     * the input region.
     */
    Status armJob(int pu, BitBuffer stream, uint64_t job_id) override;

    /** Step every Active shard up to `epoch_cycles` cycles (worker
     * pool). Shards park early when they drain; the schedule depends
     * only on simulated state, so any thread count is bit-identical. */
    void stepEpoch(uint64_t epoch_cycles) override;

    /** True once `pu`'s armed job drained (finished or contained, input
     * lane idle, every output bit flushed — the region is readable). */
    bool puDrained(int pu) const override;

    /** Shard state of the channel owning `pu`. */
    ShardState puShardState(int pu) const override
    {
        return shards_[puShard_[pu]]->state();
    }
    /** The halt status of the channel owning `pu` (Ok if healthy). */
    const Status &puShardStatus(int pu) const override
    {
        return shards_[puShard_[pu]]->haltStatus();
    }

    /**
     * A drained job's flushed output. Read *before* retireJob +
     * re-arm: the slot's output region is reused by the next job.
     */
    BitBuffer jobOutput(int pu) const override;

    /** Retire a drained job: capture its outcome (with the truncation
     * surfaced as StreamTruncated, as in one-shot runs) and park the
     * slot for the next armJob. */
    RetiredJob retireJob(int pu) override;

    /**
     * Abandon `pu`'s in-flight job with `status` (ISSUE 7: per-job
     * deadlines): the unit is contained exactly like a parity event —
     * killed in both controllers, slot drains within a few cycles —
     * and the eventual retireJob reports the job with `status`.
     * Returns Ok when the cancel took effect; InvalidState when there
     * is nothing to cancel (slot parked, already drained, or its
     * channel not active).
     */
    Status cancelJob(int pu, Status status) override;

    /**
     * Force channel `c` into the Halted state with `status` (ISSUE 7:
     * the chaos harness's forced-failure drill). In-flight jobs on the
     * channel strand exactly as they would under a real watchdog trip,
     * exercising the recovery layer's re-queue path deterministically.
     */
    void forceHaltChannel(int c, Status status) override;

    /** Settle every shard and assemble the session's RunReport (channel
     * outcomes, last-job PU outcomes, trace). Call once, last. */
    const RunReport &finishSession() override;

    /**
     * Hand the scheduler's own observability tracks (queue depth, jobs
     * in flight — sampled on the session clock by runtime::Session) to
     * the trace assembly: finishSession attaches them to the
     * TraceReport as TraceReport::sessionTracks. No-op content-wise
     * when tracing is disabled. Call before finishSession.
     */
    void setSessionTracks(std::vector<trace::CounterTrack> tracks) override;

    /// @}

    SystemStats stats() const override;

    /** Per-PU stall breakdown (valid after run()). */
    const PuStats &puStats(int pu) const
    {
        return shards_[puShard_[pu]]->puStats(puLocal_[pu]);
    }

    int numPus() const override { return static_cast<int>(puShard_.size()); }
    int numShards() const override { return static_cast<int>(shards_.size()); }
    /** The memory channel that owns `pu`. */
    int puChannel(int pu) const override { return puShard_[pu]; }

    /// @name Per-slot program bindings (ISSUE 8).
    /// @{
    int numPrograms() const override
    {
        return static_cast<int>(programs_.size());
    }
    uint32_t slotProgramIndex(int pu) const override
    {
        return bindings_[pu].program;
    }
    int slotLane(int pu) const override { return bindings_[pu].lane; }
    PuBackend slotBackend(int pu) const override
    {
        return slotBackends_[pu];
    }
    const lang::Program &slotProgram(int pu) const
    {
        return programs_[bindings_[pu].program];
    }
    /// @}

    const dram::DramChannel &channel(int c) const
    {
        return shards_[c]->channel();
    }
    const ChannelShard &shard(int c) const { return *shards_[c]; }

    /** Live cycle count of channel `c`'s shard. */
    uint64_t shardCycles(int c) const override
    {
        return shards_[c]->cycles();
    }

  private:
    /** Worker threads to use for `jobs` independent jobs. */
    int resolveThreads(int jobs) const;
    /** Shared tail of both constructors: layout, shards, units. */
    void build(int num_slots);
    /** Read `bits` payload bits from `pu`'s output region. */
    BitBuffer readOutput(int pu, uint64_t bits) const;

    /** The hosted programs; one-shot and legacy session constructors
     * store exactly one. Token widths are validated equal across the
     * list, so programs_[0] defines the channel-wide widths. */
    std::vector<lang::Program> programs_;
    SystemConfig config_;
    /** One binding per slot (defaulted when the caller passes none). */
    std::vector<SlotBinding> bindings_;
    /** Resolved per-slot backend: binding override or the global. */
    std::vector<PuBackend> slotBackends_;
    std::vector<BitBuffer> streams_; ///< Empty in session mode.
    std::vector<std::unique_ptr<ChannelShard>> shards_;
    std::vector<int> puShard_; ///< Global PU index -> owning shard.
    std::vector<int> puLocal_; ///< Global PU index -> local index.
    std::vector<memctl::StreamRegion> inputRegions_;  ///< Global PU index.
    std::vector<memctl::StreamRegion> outputRegions_; ///< Global PU index.
    /** Tokens kept / original per PU when fault truncation applied; in
     * session mode, the per-slot values for the currently armed job. */
    std::vector<std::pair<uint64_t, uint64_t>> truncation_;
    /** Scheduler-level tracks pending attachment (session mode). */
    std::vector<trace::CounterTrack> sessionTracks_;
    RunReport report_;
    uint64_t cycles_ = 0;
    int threadsUsed_ = 1;
    double wallSeconds_ = 0.0;
    bool ran_ = false;
    bool sessionMode_ = false;
    bool sessionBegun_ = false;
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_FLEET_SYSTEM_H
