#include "system/run_report.h"

#include <sstream>

namespace fleet {
namespace system {

bool
RunReport::allOk() const
{
    for (const auto &channel : channels)
        if (!channel.ok())
            return false;
    for (const auto &pu : pus)
        if (!pu.ok())
            return false;
    return true;
}

int
RunReport::failedPuCount() const
{
    int count = 0;
    for (const auto &pu : pus)
        count += pu.ok() ? 0 : 1;
    return count;
}

int
RunReport::truncatedPuCount() const
{
    int count = 0;
    for (const auto &pu : pus)
        count += pu.status.code == StatusCode::StreamTruncated ? 1 : 0;
    return count;
}

std::string
RunReport::summary() const
{
    std::ostringstream os;
    if (allOk()) {
        os << "all " << pus.size() << " PUs completed";
        int truncated = truncatedPuCount();
        if (truncated)
            os << " (" << truncated << " on truncated streams)";
        return os.str();
    }
    for (size_t c = 0; c < channels.size(); ++c) {
        if (!channels[c].ok())
            os << "channel " << c << ": " << channels[c].status.toString()
               << "\n";
    }
    for (size_t p = 0; p < pus.size(); ++p) {
        if (!pus[p].ok())
            os << "PU " << p << ": " << pus[p].status.toString()
               << " (cycle " << pus[p].atCycle << ", " << pus[p].outputBits
               << " output bits flushed)\n";
    }
    os << failedPuCount() << "/" << pus.size() << " PUs failed";
    return os.str();
}

bool
operator==(const PuOutcome &a, const PuOutcome &b)
{
    return a.status == b.status && a.atCycle == b.atCycle &&
           a.outputBits == b.outputBits && a.jobId == b.jobId;
}

bool
operator==(const ChannelOutcome &a, const ChannelOutcome &b)
{
    return a.status == b.status && a.cycles == b.cycles;
}

Status
RunReport::writeTrace(const std::string &path) const
{
    if (!trace)
        return Status::make(StatusCode::InvalidArgument,
                            "writeTrace: run was not traced (enable "
                            "SystemConfig::trace.events)");
    return trace->writeChromeTrace(path);
}

bool
operator==(const RunReport &a, const RunReport &b)
{
    if (a.channels != b.channels || a.pus != b.pus)
        return false;
    if (!a.trace || !b.trace)
        return !a.trace && !b.trace;
    return *a.trace == *b.trace;
}

} // namespace system
} // namespace fleet
