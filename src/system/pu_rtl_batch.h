#ifndef FLEET_SYSTEM_PU_RTL_BATCH_H
#define FLEET_SYSTEM_PU_RTL_BATCH_H

/**
 * @file
 * Tape-compiled RTL processing-unit backends (see rtl/tape.h and
 * rtl/batch_sim.h):
 *
 *  - RtlTapeEngine: the program compiled once — circuit, optimizer run,
 *    tape — shared by every PU replica instead of re-deriving it per
 *    unit;
 *  - TapeRtlPu: a scalar tape-backed ProcessingUnit (drop-in for RtlPu,
 *    bit-identical to it on every cycle);
 *  - RtlBatch + RtlBatchLane: all PUs of a channel evaluated as lanes
 *    of one structure-of-arrays BatchSimulator. ChannelShard drives the
 *    whole group per cycle (setLaneInputs* -> evalAll -> laneOutputs*
 *    -> step); a lane still works standalone as a ProcessingUnit
 *    (single-PU testbenches), evaluating and stepping only itself.
 */

#include <memory>

#include "compile/compiler.h"
#include "rtl/batch_sim.h"
#include "rtl/tape.h"
#include "system/pu.h"

namespace fleet {
namespace system {

/** One program compiled to a tape, shared by every replica. */
class RtlTapeEngine
{
  public:
    explicit RtlTapeEngine(const lang::Program &program);
    explicit RtlTapeEngine(compile::CompiledUnit unit);

    const compile::CompiledUnit &unit() const { return unit_; }
    const std::shared_ptr<const rtl::TapeProgram> &tape() const
    {
        return tape_;
    }

    /** Trace counters shared by every tape-backed unit. */
    void appendCounters(trace::CounterSet &out, int batch_width) const;

  private:
    compile::CompiledUnit unit_;
    std::shared_ptr<const rtl::TapeProgram> tape_;
};

/** Scalar tape-compiled PU: RtlPu semantics, dense-dispatch evaluation. */
class TapeRtlPu : public ProcessingUnit
{
  public:
    explicit TapeRtlPu(std::shared_ptr<const RtlTapeEngine> engine);
    explicit TapeRtlPu(const lang::Program &program);

    void reset() override;
    PuOutputs eval(const PuInputs &inputs) override;
    void step() override;
    int inputTokenWidth() const override
    {
        return engine_->unit().inputTokenWidth;
    }
    int outputTokenWidth() const override
    {
        return engine_->unit().outputTokenWidth;
    }
    void appendCounters(trace::CounterSet &out) const override;

    const RtlTapeEngine &engine() const { return *engine_; }
    const rtl::TapeSimulator &sim() const { return sim_; }

  private:
    std::shared_ptr<const RtlTapeEngine> engine_;
    rtl::TapeSimulator sim_;
};

/**
 * A channel group of tape-compiled PUs evaluated together in SoA
 * layout. Lane l is the PU with local index l in its ChannelShard.
 */
class RtlBatch
{
  public:
    RtlBatch(std::shared_ptr<const RtlTapeEngine> engine, int lanes);

    int lanes() const { return sim_.lanes(); }
    const RtlTapeEngine &engine() const { return *engine_; }

    /** Attach a native kernel for this group (rtl/jit.h); see
     * rtl::BatchSimulator::attachJit for the matching contract. */
    void attachJit(std::shared_ptr<const rtl::JitProgram> jit)
    {
        sim_.attachJit(std::move(jit));
    }
    bool jitAttached() const { return sim_.jitAttached(); }

    void setLaneInputs(int lane, const PuInputs &in);
    /** Evaluate every lane (vectorized group path). */
    void evalAll();
    /** Evaluate one lane only (standalone-lane path). */
    void evalLane(int lane);
    PuOutputs laneOutputs(int lane) const;
    /** Clock edge for every lane. */
    void step();
    void stepLane(int lane);
    void resetLane(int lane);

  private:
    std::shared_ptr<const RtlTapeEngine> engine_;
    rtl::BatchSimulator sim_;
};

/**
 * ProcessingUnit view of one batch lane. When its ChannelShard has the
 * batch attached, eval()/step() are bypassed in favour of the group
 * calls; standalone (e.g. under the single-PU testbench) the lane
 * evaluates and steps only itself and is bit-identical to a scalar
 * TapeRtlPu.
 */
class RtlBatchLane : public ProcessingUnit
{
  public:
    RtlBatchLane(std::shared_ptr<RtlBatch> batch, int lane);

    void reset() override;
    PuOutputs eval(const PuInputs &inputs) override;
    void step() override;
    int inputTokenWidth() const override
    {
        return batch_->engine().unit().inputTokenWidth;
    }
    int outputTokenWidth() const override
    {
        return batch_->engine().unit().outputTokenWidth;
    }
    void appendCounters(trace::CounterSet &out) const override;

    RtlBatch &batch() { return *batch_; }
    int lane() const { return lane_; }

  private:
    std::shared_ptr<RtlBatch> batch_;
    int lane_;
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_PU_RTL_BATCH_H
