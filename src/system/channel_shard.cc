#include "system/channel_shard.h"

#include "util/bits.h"
#include "util/logging.h"

namespace fleet {
namespace system {

ChannelShard::ChannelShard(int channel_index,
                           const dram::DramParams &dram_params,
                           const memctl::ControllerParams &input_params,
                           const memctl::ControllerParams &output_params,
                           std::vector<memctl::StreamRegion> input_regions,
                           std::vector<memctl::StreamRegion> output_regions,
                           uint64_t mem_bytes)
    : channelIndex_(channel_index)
{
    channel_ = std::make_unique<dram::DramChannel>(dram_params, mem_bytes);
    inputCtrl_ = std::make_unique<memctl::InputController>(
        *channel_, input_params, std::move(input_regions));
    outputCtrl_ = std::make_unique<memctl::OutputController>(
        *channel_, output_params, std::move(output_regions));
}

void
ChannelShard::addPu(std::unique_ptr<ProcessingUnit> pu, int global_index,
                    uint64_t stream_bits)
{
    PuSlot slot;
    slot.pu = std::move(pu);
    slot.globalIndex = global_index;
    slot.streamBits = stream_bits;
    pus_.push_back(std::move(slot));
}

void
ChannelShard::run(int input_token_width, int output_token_width,
                  uint64_t max_cycles)
{
    const int in_width = input_token_width;
    const int out_width = output_token_width;

    // Forward-progress watchdog: a configuration can genuinely deadlock
    // (e.g. blocking output addressing with divergent filter rates, the
    // pathology Section 5's non-blocking default avoids); detect it
    // rather than spinning to maxCycles. Per-shard, the watchdog is
    // stricter than the old global one: a stuck channel can no longer
    // hide behind another channel's activity.
    uint64_t last_activity_cycle = 0;
    uint64_t last_beats = 0;

    for (cycles_ = 0; cycles_ < max_cycles; ++cycles_) {
        bool activity = false;
        bool all_finished = true;
        for (size_t l = 0; l < pus_.size(); ++l) {
            PuSlot &slot = pus_[l];
            auto &in_buf = inputCtrl_->buffer(static_cast<int>(l));
            auto &out_buf = outputCtrl_->buffer(static_cast<int>(l));

            PuInputs in;
            in.inputValid = in_buf.sizeBits() >= uint64_t(in_width);
            in.inputToken = in.inputValid ? in_buf.peek(in_width) : 0;
            in.inputFinished =
                inputCtrl_->streamExhausted(static_cast<int>(l)) &&
                in_buf.empty();
            in.outputReady = out_buf.freeBits() >= uint64_t(out_width);

            PuOutputs out = slot.pu->eval(in);

            if (out.outputValid && in.outputReady) {
                out_buf.push(out.outputToken, out_width);
                slot.emittedBits += out_width;
                activity = true;
            }
            if (out.inputReady && in.inputValid) {
                in_buf.pop(in_width);
                activity = true;
            }
            if (out.outputFinished && !slot.finishedSeen) {
                outputCtrl_->setPuFinished(static_cast<int>(l));
                slot.finishedSeen = true;
                slot.stats.finishedAtCycle = cycles_;
                activity = true;
            }
            if (!slot.finishedSeen) {
                if (out.inputReady && !in.inputValid && !in.inputFinished)
                    ++slot.stats.inputStarvedCycles;
                if (out.outputValid && !in.outputReady)
                    ++slot.stats.outputBlockedCycles;
            }
            all_finished = all_finished && slot.finishedSeen;
        }

        inputCtrl_->tick();
        outputCtrl_->tick();
        channel_->tick();
        for (auto &slot : pus_)
            slot.pu->step();

        stats_.readQueueOccupancySum += channel_->outstandingReads();
        stats_.writeQueueOccupancySum += channel_->outstandingWrites();

        uint64_t beats =
            channel_->beatsDelivered() + channel_->beatsWritten();
        if (activity || beats != last_beats) {
            last_activity_cycle = cycles_;
            last_beats = beats;
        } else if (cycles_ - last_activity_cycle > 200000) {
            fatal("ChannelShard: channel ", channelIndex_,
                  " made no forward progress for 200000 cycles "
                  "(deadlocked configuration?)");
        }

        if (all_finished && outputCtrl_->done()) {
            ++cycles_;
            stats_.cycles = cycles_;
            stats_.numPus = numPus();
            stats_.beatsDelivered = channel_->beatsDelivered();
            stats_.beatsWritten = channel_->beatsWritten();
            for (const auto &slot : pus_) {
                stats_.inputBytes += ceilDiv(slot.streamBits, 8);
                stats_.outputBytes += ceilDiv(slot.emittedBits, 8);
                stats_.inputStarvedCycles += slot.stats.inputStarvedCycles;
                stats_.outputBlockedCycles +=
                    slot.stats.outputBlockedCycles;
            }
            return;
        }
    }
    fatal("ChannelShard: channel ", channelIndex_,
          " did not finish within ", max_cycles, " cycles");
}

} // namespace system
} // namespace fleet
