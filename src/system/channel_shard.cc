#include "system/channel_shard.h"

#include <sstream>

#include "system/pu_rtl_batch.h"
#include "util/bits.h"
#include "util/logging.h"
#include "util/status.h"

namespace fleet {
namespace system {

ChannelShard::ChannelShard(int channel_index,
                           const dram::DramParams &dram_params,
                           const memctl::ControllerParams &input_params,
                           const memctl::ControllerParams &output_params,
                           std::vector<memctl::StreamRegion> input_regions,
                           std::vector<memctl::StreamRegion> output_regions,
                           uint64_t mem_bytes,
                           const fault::FaultPlan &fault_plan,
                           const trace::TraceConfig &trace_config)
    : channelIndex_(channel_index), traceConfig_(trace_config)
{
    // A fault-free shard carries no injector at all: the DRAM model's
    // null check is the only cost, so disabled-plan runs are
    // bit-identical to a build without the fault layer. The trace
    // collector follows the same discipline.
    if (trace_config.enabled())
        trace_ = std::make_unique<trace::ShardTrace>(
            channel_index, trace_config, dram_params.maxOutstandingReads,
            dram_params.maxOutstandingWrites);
    if (fault_plan.enabled())
        faults_.emplace(fault_plan, channel_index);
    channel_ = std::make_unique<dram::DramChannel>(
        dram_params, mem_bytes, faults_ ? &*faults_ : nullptr);
    inputCtrl_ = std::make_unique<memctl::InputController>(
        *channel_, input_params, std::move(input_regions));
    outputCtrl_ = std::make_unique<memctl::OutputController>(
        *channel_, output_params, std::move(output_regions));
}

void
ChannelShard::addPu(std::unique_ptr<ProcessingUnit> pu, int global_index,
                    uint64_t stream_bits)
{
    PuSlot slot;
    slot.pu = std::move(pu);
    slot.globalIndex = global_index;
    slot.streamBits = stream_bits;
    pus_.push_back(std::move(slot));
    if (trace_)
        trace_->addPu(global_index);
}

void
ChannelShard::attachBatch(std::shared_ptr<RtlBatch> batch)
{
    batch_ = std::move(batch);
}

void
ChannelShard::containPu(int local, Status status)
{
    PuSlot &slot = pus_[local];
    if (slot.failed)
        return;
    slot.failed = true;
    if (trace_)
        trace_->marker(local, cycles_,
                       std::string("contained: ") +
                           statusCodeName(status.code));
    slot.outcome.status = std::move(status);
    slot.outcome.atCycle = cycles_;
    // Kill it in both controllers so the shared burst registers and
    // addressing units keep flowing for the channel's healthy units:
    // no further input bursts (in-flight ones are discarded), and the
    // output side flushes what was already emitted as a final burst.
    inputCtrl_->killPu(local);
    outputCtrl_->setPuFinished(local);
}

ChannelOutcome
ChannelShard::run(int input_token_width, int output_token_width,
                  uint64_t max_cycles, uint64_t watchdog_cycles)
{
    const int in_width = input_token_width;
    const int out_width = output_token_width;

    ChannelOutcome channel_outcome;
    bool completed = false;

    // Forward-progress watchdog: a configuration can genuinely hang
    // (e.g. blocking output addressing with divergent filter rates, the
    // pathology Section 5's non-blocking default avoids — or a PU
    // program that spins in a `while` without retiring tokens). If no
    // PU retired a token and no DRAM beat moved for watchdog_cycles,
    // turn the hang into a WatchdogStall outcome with a diagnostic dump
    // instead of spinning to maxCycles. Per-shard, the watchdog is
    // stricter than a global one: a stuck channel cannot hide behind
    // another channel's activity.
    uint64_t last_activity_cycle = 0;
    uint64_t last_beats = 0;

    if (batch_ && batch_->lanes() != numPus())
        panic("system: batched RTL engine has ", batch_->lanes(),
              " lanes for ", numPus(), " PUs");
    cycleIn_.assign(pus_.size(), PuInputs{});

    try {
        for (cycles_ = 0; cycles_ < max_cycles; ++cycles_) {
            bool activity = false;
            bool all_finished = true;

            // Phase 1: latch every live PU's view of its controller
            // buffers. These are pure reads of per-PU state, so
            // gathering them all before any handshake acts is identical
            // to the interleaved order — and lets the batched engine
            // evaluate every lane in one vectorized sweep.
            for (size_t l = 0; l < pus_.size(); ++l) {
                PuSlot &slot = pus_[l];
                if (slot.failed)
                    continue;
                auto &in_buf = inputCtrl_->buffer(static_cast<int>(l));
                auto &out_buf = outputCtrl_->buffer(static_cast<int>(l));
                PuInputs in;
                in.inputValid = in_buf.sizeBits() >= uint64_t(in_width);
                in.inputToken = in.inputValid ? in_buf.peek(in_width) : 0;
                in.inputFinished =
                    inputCtrl_->streamExhausted(static_cast<int>(l)) &&
                    in_buf.empty();
                in.outputReady = out_buf.freeBits() >= uint64_t(out_width);
                cycleIn_[l] = in;
                if (batch_)
                    batch_->setLaneInputs(static_cast<int>(l), in);
            }
            if (batch_)
                batch_->evalAll();

            // Phase 2: act on each PU's outputs (handshakes mutate only
            // that PU's buffers), classify the cycle, track completion.
            for (size_t l = 0; l < pus_.size(); ++l) {
                PuSlot &slot = pus_[l];
                if (slot.failed) {
                    // Contained: quarantined from the loop.
                    if (trace_)
                        trace_->puCycle(static_cast<int>(l), cycles_,
                                        trace::PuPhase::Done);
                    continue;
                }
                const bool was_finished = slot.finishedSeen;
                auto &in_buf = inputCtrl_->buffer(static_cast<int>(l));
                auto &out_buf = outputCtrl_->buffer(static_cast<int>(l));

                const PuInputs &in = cycleIn_[l];
                PuOutputs out = batch_
                                    ? batch_->laneOutputs(static_cast<int>(l))
                                    : slot.pu->eval(in);
                slot.lastIn = in;
                slot.lastOut = out;

                bool produced = false, consumed = false;
                if (out.outputValid && in.outputReady) {
                    out_buf.push(out.outputToken, out_width);
                    slot.emittedBits += out_width;
                    produced = true;
                    activity = true;
                }
                if (out.inputReady && in.inputValid) {
                    in_buf.pop(in_width);
                    consumed = true;
                    activity = true;
                }
                if (out.outputFinished && !slot.finishedSeen) {
                    outputCtrl_->setPuFinished(static_cast<int>(l));
                    slot.finishedSeen = true;
                    slot.stats.finishedAtCycle = cycles_;
                    activity = true;
                }
                if (!slot.finishedSeen) {
                    // Shared taxonomy (trace/taxonomy.h). Note these two
                    // legacy counters are independent conditions, not
                    // the exclusive phase partition the trace records.
                    if (trace::inputStarved(out.inputReady, in.inputValid,
                                            in.inputFinished))
                        ++slot.stats.inputStarvedCycles;
                    if (trace::outputBlocked(out.outputValid,
                                             in.outputReady))
                        ++slot.stats.outputBlockedCycles;
                }
                if (trace_) {
                    trace::PuPhase phase;
                    if (was_finished)
                        phase = trace::PuPhase::Done;
                    else if (consumed || produced ||
                             (slot.finishedSeen && !was_finished))
                        phase = trace::PuPhase::Active;
                    else
                        phase = trace::phaseForStall(trace::classifyStall(
                            out.inputReady, in.inputValid,
                            in.inputFinished, out.outputValid,
                            in.outputReady));
                    trace_->puCycle(static_cast<int>(l), cycles_, phase);
                }
                all_finished = all_finished && slot.finishedSeen;
            }

            inputCtrl_->tick();
            outputCtrl_->tick();
            channel_->tick();
            if (batch_) {
                // One vectorized clock edge for the whole group. Failed
                // lanes advance too, but nothing observes them again.
                batch_->step();
            } else {
                for (auto &slot : pus_)
                    if (!slot.failed)
                        slot.pu->step();
            }

            // Containment events raised by this cycle's ticks. Polled
            // after the ticks so the kill takes effect from the next
            // cycle — the same point on every host thread count.
            while (auto parity = inputCtrl_->takeParityEvent()) {
                if (pus_[parity->pu].finishedSeen)
                    continue; // Already done; stale beat is harmless.
                std::ostringstream os;
                os << "PU " << pus_[parity->pu].globalIndex
                   << ": parity error on read beat at channel address "
                   << parity->addr;
                containPu(parity->pu,
                          Status::make(StatusCode::ParityError, os.str()));
                activity = true;
            }
            while (auto overflow = outputCtrl_->takeOverflowEvent()) {
                std::ostringstream os;
                os << "PU " << pus_[overflow->pu].globalIndex
                   << ": output exceeds its " << overflow->regionBytes
                   << "-byte region (declare a larger maxOutputExpansion "
                      "or set SystemConfig::outputRegionBytes)";
                containPu(overflow->pu,
                          Status::make(StatusCode::OutputOverflow,
                                       os.str()));
                activity = true;
            }

            stats_.readQueueOccupancySum += channel_->outstandingReads();
            stats_.writeQueueOccupancySum += channel_->outstandingWrites();
            if (trace_)
                trace_->dramCycle(cycles_, channel_->outstandingReads(),
                                  channel_->outstandingWrites());

            uint64_t beats =
                channel_->beatsDelivered() + channel_->beatsWritten();
            if (activity || beats != last_beats) {
                last_activity_cycle = cycles_;
                last_beats = beats;
            } else if (cycles_ - last_activity_cycle > watchdog_cycles) {
                channel_outcome.status = Status::make(
                    StatusCode::WatchdogStall,
                    watchdogDump(cycles_ - last_activity_cycle));
                break;
            }

            if (all_finished && outputCtrl_->done()) {
                ++cycles_;
                completed = true;
                break;
            }
        }
        if (!completed && channel_outcome.status.ok()) {
            std::ostringstream os;
            os << "channel " << channelIndex_ << " did not finish within "
               << max_cycles << " cycles";
            channel_outcome.status =
                Status::make(StatusCode::CycleLimitExceeded, os.str());
        }
    } catch (const StatusError &error) {
        channel_outcome.status = error.status();
    } catch (const std::exception &error) {
        channel_outcome.status =
            Status::make(StatusCode::InternalError, error.what());
    }

    channel_outcome.cycles = cycles_;
    finalizeStats();

    // Settle per-PU outcomes: contained units keep the status recorded
    // at containment; on a failed channel every other unit inherits the
    // channel status (even a unit that asserted output_finished may
    // have unflushed output stranded in its buffer); on a completed
    // channel every non-contained unit finished and fully flushed.
    for (size_t l = 0; l < pus_.size(); ++l) {
        PuSlot &slot = pus_[l];
        if (!slot.failed) {
            if (channel_outcome.status.ok()) {
                slot.outcome.status = Status::make(StatusCode::Ok);
                slot.outcome.atCycle = slot.stats.finishedAtCycle;
            } else {
                slot.outcome.status = channel_outcome.status;
                slot.outcome.atCycle = cycles_;
            }
        }
        slot.outcome.outputBits =
            outputCtrl_->payloadBits(static_cast<int>(l));
    }
    return channel_outcome;
}

void
ChannelShard::finalizeStats()
{
    stats_.cycles = cycles_;
    stats_.numPus = numPus();
    stats_.beatsDelivered = channel_->beatsDelivered();
    stats_.beatsWritten = channel_->beatsWritten();
    for (const auto &slot : pus_) {
        stats_.inputBytes += ceilDiv(slot.streamBits, 8);
        stats_.outputBytes += ceilDiv(slot.emittedBits, 8);
        stats_.inputStarvedCycles += slot.stats.inputStarvedCycles;
        stats_.outputBlockedCycles += slot.stats.outputBlockedCycles;
    }
}

const char *
ChannelShard::stallReason(const PuSlot &slot) const
{
    if (slot.failed)
        return "contained";
    if (slot.finishedSeen)
        return "finished";
    // Shared classification (trace/taxonomy.h) over the last cycle's
    // latched handshake — the same attribution the trace layer records.
    return trace::stallCauseName(trace::classifyStall(
        slot.lastOut.inputReady, slot.lastIn.inputValid,
        slot.lastIn.inputFinished, slot.lastOut.outputValid,
        slot.lastIn.outputReady));
}

trace::ChannelTrace
ChannelShard::takeTrace()
{
    trace::ChannelTrace out = trace_->finish(cycles_);
    if (!traceConfig_.counters)
        return out;

    auto component = [this](const char *suffix) {
        trace::CounterSet set;
        set.name = "ch" + std::to_string(channelIndex_) + "/" + suffix;
        return set;
    };

    trace::CounterSet dram = component("dram");
    channel_->exportCounters(dram);
    out.counters.push_back(std::move(dram));

    trace::CounterSet input = component("input_ctrl");
    inputCtrl_->exportCounters(input);
    out.counters.push_back(std::move(input));

    trace::CounterSet output = component("output_ctrl");
    outputCtrl_->exportCounters(output);
    out.counters.push_back(std::move(output));

    for (size_t l = 0; l < pus_.size(); ++l) {
        const PuSlot &slot = pus_[l];
        trace::CounterSet set = component(
            ("pu" + std::to_string(slot.globalIndex)).c_str());
        const int local = static_cast<int>(l);
        for (int p = 0; p < trace::kNumPuPhases; ++p) {
            auto phase = static_cast<trace::PuPhase>(p);
            set.set(std::string(trace::puPhaseName(phase)) + "_cycles",
                    trace_->phaseCycles(local, phase));
        }
        set.set("stream_bits", slot.streamBits);
        set.set("delivered_bits", inputCtrl_->puBitsDelivered(local));
        set.set("emitted_bits", slot.emittedBits);
        set.set("flushed_payload_bits", outputCtrl_->payloadBits(local));
        set.set("finished_at_cycle", slot.stats.finishedAtCycle);
        set.set("contained", slot.failed ? 1 : 0);
        slot.pu->appendCounters(set);
        out.counters.push_back(std::move(set));
    }
    return out;
}

std::string
ChannelShard::watchdogDump(uint64_t stalled_cycles) const
{
    std::ostringstream os;
    os << "channel " << channelIndex_ << " made no forward progress for "
       << stalled_cycles << " cycles (cycle " << cycles_
       << "): no PU retired a token and no DRAM beat moved\n";
    for (size_t l = 0; l < pus_.size(); ++l) {
        const PuSlot &slot = pus_[l];
        os << "  PU " << slot.globalIndex << " (local " << l
           << "): " << stallReason(slot) << "; in-fifo "
           << inputCtrl_->buffer(static_cast<int>(l)).sizeBits()
           << " bits, out-fifo "
           << outputCtrl_->buffer(static_cast<int>(l)).sizeBits()
           << " bits, emitted " << slot.emittedBits << " bits, starved "
           << slot.stats.inputStarvedCycles << " cycles, blocked "
           << slot.stats.outputBlockedCycles << " cycles\n";
    }
    os << "  input-ctrl in-flight bursts " << inputCtrl_->inflightBursts()
       << ", output-ctrl pending bursts " << outputCtrl_->pendingBursts()
       << ", DRAM outstanding reads " << channel_->outstandingReads()
       << " / writes " << channel_->outstandingWrites();
    return os.str();
}

} // namespace system
} // namespace fleet
