#include "system/channel_shard.h"

#include <algorithm>
#include <sstream>

#include "system/pu_rtl_batch.h"
#include "util/bits.h"
#include "util/logging.h"
#include "util/status.h"

namespace fleet {
namespace system {

ChannelShard::ChannelShard(int channel_index,
                           const dram::DramParams &dram_params,
                           const memctl::ControllerParams &input_params,
                           const memctl::ControllerParams &output_params,
                           std::vector<memctl::StreamRegion> input_regions,
                           std::vector<memctl::StreamRegion> output_regions,
                           uint64_t mem_bytes,
                           const fault::FaultPlan &fault_plan,
                           const trace::TraceConfig &trace_config)
    : channelIndex_(channel_index), traceConfig_(trace_config)
{
    // A fault-free shard carries no injector at all: the DRAM model's
    // null check is the only cost, so disabled-plan runs are
    // bit-identical to a build without the fault layer. The trace
    // collector follows the same discipline.
    if (trace_config.enabled())
        trace_ = std::make_unique<trace::ShardTrace>(
            channel_index, trace_config, dram_params.maxOutstandingReads,
            dram_params.maxOutstandingWrites);
    if (fault_plan.enabled())
        faults_.emplace(fault_plan, channel_index);
    channel_ = std::make_unique<dram::DramChannel>(
        dram_params, mem_bytes, faults_ ? &*faults_ : nullptr);
    inputCtrl_ = std::make_unique<memctl::InputController>(
        *channel_, input_params, std::move(input_regions));
    outputCtrl_ = std::make_unique<memctl::OutputController>(
        *channel_, output_params, std::move(output_regions));
}

void
ChannelShard::addPu(std::unique_ptr<ProcessingUnit> pu, int global_index,
                    uint64_t stream_bits)
{
    PuSlot slot;
    slot.pu = std::move(pu);
    slot.globalIndex = global_index;
    slot.streamBits = stream_bits;
    // One-shot runs arm one stream per unit: its job id is the global
    // PU index. Session arms overwrite this per job (rearmPu).
    slot.jobId = static_cast<uint64_t>(global_index);
    pus_.push_back(std::move(slot));
    if (trace_)
        trace_->addPu(global_index);
}

void
ChannelShard::attachBatch(std::shared_ptr<RtlBatch> batch,
                          std::vector<int> locals)
{
    batches_.push_back(BatchBinding{std::move(batch), std::move(locals)});
}

void
ChannelShard::containPu(int local, Status status)
{
    PuSlot &slot = pus_[local];
    if (slot.failed)
        return;
    slot.failed = true;
    if (trace_)
        trace_->marker(local, cycles_,
                       std::string("contained: ") +
                           statusCodeName(status.code));
    slot.outcome.status = std::move(status);
    slot.outcome.atCycle = cycles_;
    // Kill it in both controllers so the shared burst registers and
    // addressing units keep flowing for the channel's healthy units:
    // no further input bursts (in-flight ones are discarded), and the
    // output side flushes what was already emitted as a final burst.
    inputCtrl_->killPu(local);
    outputCtrl_->setPuFinished(local);
}

bool
ChannelShard::cancelPu(int local, Status status)
{
    PuSlot &slot = pus_[local];
    if (state_ != ShardState::Active)
        return false;
    if (slot.parked || slot.failed || !slot.hasJob)
        return false;
    if (puDrained(local))
        return false; // Already drained: the job won, retire it.
    containPu(local, std::move(status));
    return true;
}

void
ChannelShard::forceHalt(Status status)
{
    if (state_ != ShardState::Active && state_ != ShardState::Idle)
        return;
    haltStatus_ = std::move(status);
    state_ = ShardState::Halted;
}

void
ChannelShard::recomputeWatchdogBudget()
{
    watchdogBudget_ = watchdogCycles_;
    if (watchdogStreamFactor_ <= 0.0 || inWidth_ <= 0)
        return;
    uint64_t max_tokens = 0;
    for (const PuSlot &slot : pus_) {
        if (slot.parked)
            continue;
        max_tokens = std::max(
            max_tokens, slot.streamBits / uint64_t(inWidth_));
    }
    uint64_t scaled = static_cast<uint64_t>(watchdogStreamFactor_ *
                                            double(max_tokens));
    watchdogBudget_ = std::max(watchdogBudget_, scaled);
}

ChannelOutcome
ChannelShard::run(int input_token_width, int output_token_width,
                  uint64_t max_cycles, uint64_t watchdog_cycles)
{
    beginRun(input_token_width, output_token_width, max_cycles,
             watchdog_cycles);
    // The budget never binds before max_cycles does, so this is the
    // legacy single uninterrupted loop.
    step(UINT64_MAX);
    return finishRun();
}

void
ChannelShard::beginRun(int input_token_width, int output_token_width,
                       uint64_t max_cycles, uint64_t watchdog_cycles)
{
    inWidth_ = input_token_width;
    outWidth_ = output_token_width;
    maxCycles_ = max_cycles;
    watchdogCycles_ = watchdog_cycles;
    // Forward-progress watchdog: a configuration can genuinely hang
    // (e.g. blocking output addressing with divergent filter rates, the
    // pathology Section 5's non-blocking default avoids — or a PU
    // program that spins in a `while` without retiring tokens). If no
    // PU retired a token and no DRAM beat moved for watchdog_cycles,
    // turn the hang into a WatchdogStall outcome with a diagnostic dump
    // instead of spinning to maxCycles. Per-shard, the watchdog is
    // stricter than a global one: a stuck channel cannot hide behind
    // another channel's activity.
    lastActivityCycle_ = 0;
    lastBeats_ = 0;
    haltStatus_ = Status::make(StatusCode::Ok);
    cycles_ = 0;
    recomputeWatchdogBudget();

    // Resolve which batched engine lane (if any) drives each local PU.
    // An empty locals list is the legacy arrangement: lane l <-> local
    // l, covering the whole channel.
    laneOfLocal_.assign(pus_.size(), {-1, -1});
    for (size_t b = 0; b < batches_.size(); ++b) {
        BatchBinding &binding = batches_[b];
        if (binding.locals.empty() &&
            binding.batch->lanes() != numPus()) {
            panic("system: batched RTL engine has ",
                  binding.batch->lanes(), " lanes for ", numPus(),
                  " PUs");
        }
        int lanes = binding.batch->lanes();
        if (!binding.locals.empty() &&
            static_cast<int>(binding.locals.size()) != lanes) {
            panic("system: batched RTL engine has ", lanes,
                  " lanes but ", binding.locals.size(),
                  " bound local PUs");
        }
        for (int lane = 0; lane < lanes; ++lane) {
            int local = binding.locals.empty() ? lane
                                               : binding.locals[lane];
            if (local < 0 || local >= numPus())
                panic("system: batch lane ", lane,
                      " binds out-of-range local PU ", local);
            if (laneOfLocal_[local].first >= 0)
                panic("system: local PU ", local,
                      " bound to two batched engines");
            laneOfLocal_[local] = {static_cast<int>(b), lane};
        }
    }
    cycleIn_.assign(pus_.size(), PuInputs{});
    state_ = ShardState::Active;
}

ShardState
ChannelShard::step(uint64_t budget)
{
    if (state_ != ShardState::Active)
        return state_;
    const int in_width = inWidth_;
    const int out_width = outWidth_;

    try {
        for (; budget > 0 && cycles_ < maxCycles_; ++cycles_, --budget) {
            bool activity = false;
            bool all_finished = true;

            // Phase 1: latch every live PU's view of its controller
            // buffers. These are pure reads of per-PU state, so
            // gathering them all before any handshake acts is identical
            // to the interleaved order — and lets the batched engine
            // evaluate every lane in one vectorized sweep.
            for (size_t l = 0; l < pus_.size(); ++l) {
                PuSlot &slot = pus_[l];
                if (slot.failed || slot.parked)
                    continue;
                auto &in_buf = inputCtrl_->buffer(static_cast<int>(l));
                auto &out_buf = outputCtrl_->buffer(static_cast<int>(l));
                PuInputs in;
                in.inputValid = in_buf.sizeBits() >= uint64_t(in_width);
                in.inputToken = in.inputValid ? in_buf.peek(in_width) : 0;
                in.inputFinished =
                    inputCtrl_->streamExhausted(static_cast<int>(l)) &&
                    in_buf.empty();
                in.outputReady = out_buf.freeBits() >= uint64_t(out_width);
                cycleIn_[l] = in;
                if (laneOfLocal_[l].first >= 0) {
                    batches_[laneOfLocal_[l].first].batch->setLaneInputs(
                        laneOfLocal_[l].second, in);
                }
            }
            for (BatchBinding &binding : batches_)
                binding.batch->evalAll();

            // Phase 2: act on each PU's outputs (handshakes mutate only
            // that PU's buffers), classify the cycle, track completion.
            for (size_t l = 0; l < pus_.size(); ++l) {
                PuSlot &slot = pus_[l];
                if (slot.failed || slot.parked) {
                    // Contained or awaiting a job: quarantined from the
                    // loop until retired / re-armed.
                    if (trace_)
                        trace_->puCycle(static_cast<int>(l), cycles_,
                                        trace::PuPhase::Done);
                    continue;
                }
                const bool was_finished = slot.finishedSeen;
                auto &in_buf = inputCtrl_->buffer(static_cast<int>(l));
                auto &out_buf = outputCtrl_->buffer(static_cast<int>(l));

                const PuInputs &in = cycleIn_[l];
                PuOutputs out =
                    laneOfLocal_[l].first >= 0
                        ? batches_[laneOfLocal_[l].first]
                              .batch->laneOutputs(laneOfLocal_[l].second)
                        : slot.pu->eval(in);
                slot.lastIn = in;
                slot.lastOut = out;

                bool produced = false, consumed = false;
                if (out.outputValid && in.outputReady) {
                    out_buf.push(out.outputToken, out_width);
                    slot.emittedBits += out_width;
                    produced = true;
                    activity = true;
                }
                if (out.inputReady && in.inputValid) {
                    in_buf.pop(in_width);
                    consumed = true;
                    activity = true;
                }
                if (out.outputFinished && !slot.finishedSeen) {
                    outputCtrl_->setPuFinished(static_cast<int>(l));
                    slot.finishedSeen = true;
                    slot.stats.finishedAtCycle = cycles_;
                    activity = true;
                }
                if (!slot.finishedSeen) {
                    // Shared taxonomy (trace/taxonomy.h). Note these two
                    // legacy counters are independent conditions, not
                    // the exclusive phase partition the trace records.
                    if (trace::inputStarved(out.inputReady, in.inputValid,
                                            in.inputFinished))
                        ++slot.stats.inputStarvedCycles;
                    if (trace::outputBlocked(out.outputValid,
                                             in.outputReady))
                        ++slot.stats.outputBlockedCycles;
                }
                if (trace_) {
                    trace::PuPhase phase;
                    if (was_finished)
                        phase = trace::PuPhase::Done;
                    else if (consumed || produced ||
                             (slot.finishedSeen && !was_finished))
                        phase = trace::PuPhase::Active;
                    else
                        phase = trace::phaseForStall(trace::classifyStall(
                            out.inputReady, in.inputValid,
                            in.inputFinished, out.outputValid,
                            in.outputReady));
                    trace_->puCycle(static_cast<int>(l), cycles_, phase);
                }
                all_finished = all_finished && slot.finishedSeen;
            }

            inputCtrl_->tick();
            outputCtrl_->tick();
            channel_->tick();
            // One vectorized clock edge per batched group. Failed lanes
            // advance too, but nothing observes them again. Unbatched
            // slots step per-unit.
            for (BatchBinding &binding : batches_)
                binding.batch->step();
            for (size_t l = 0; l < pus_.size(); ++l) {
                PuSlot &slot = pus_[l];
                if (laneOfLocal_[l].first < 0 && !slot.failed &&
                    !slot.parked) {
                    slot.pu->step();
                }
            }

            // Containment events raised by this cycle's ticks. Polled
            // after the ticks so the kill takes effect from the next
            // cycle — the same point on every host thread count.
            while (auto parity = inputCtrl_->takeParityEvent()) {
                if (pus_[parity->pu].finishedSeen)
                    continue; // Already done; stale beat is harmless.
                std::ostringstream os;
                os << "PU " << pus_[parity->pu].globalIndex
                   << ": parity error on read beat at channel address "
                   << parity->addr;
                containPu(parity->pu,
                          Status::make(StatusCode::ParityError, os.str()));
                activity = true;
            }
            while (auto overflow = outputCtrl_->takeOverflowEvent()) {
                std::ostringstream os;
                os << "PU " << pus_[overflow->pu].globalIndex
                   << ": output exceeds its " << overflow->regionBytes
                   << "-byte region (declare a larger maxOutputExpansion "
                      "or set SystemConfig::outputRegionBytes)";
                containPu(overflow->pu,
                          Status::make(StatusCode::OutputOverflow,
                                       os.str()));
                activity = true;
            }

            stats_.readQueueOccupancySum += channel_->outstandingReads();
            stats_.writeQueueOccupancySum += channel_->outstandingWrites();
            if (trace_)
                trace_->dramCycle(cycles_, channel_->outstandingReads(),
                                  channel_->outstandingWrites());

            uint64_t beats =
                channel_->beatsDelivered() + channel_->beatsWritten();
            if (activity || beats != lastBeats_) {
                lastActivityCycle_ = cycles_;
                lastBeats_ = beats;
            } else if (cycles_ - lastActivityCycle_ > watchdogBudget_) {
                haltStatus_ = Status::make(
                    StatusCode::WatchdogStall,
                    watchdogDump(cycles_ - lastActivityCycle_));
                state_ = ShardState::Halted;
                return state_;
            }

            // Idle also waits for discarded in-flight bursts of
            // contained lanes to drain: a lane with reads still in
            // flight is not puIdle, so retiring its job (and re-arming
            // the slot) would be impossible once step() short-circuits.
            if (all_finished && outputCtrl_->done() &&
                inputCtrl_->inflightBursts() == 0) {
                ++cycles_;
                state_ = ShardState::Idle;
                return state_;
            }
        }
        if (cycles_ >= maxCycles_) {
            std::ostringstream os;
            os << "channel " << channelIndex_ << " did not finish within "
               << maxCycles_ << " cycles";
            haltStatus_ =
                Status::make(StatusCode::CycleLimitExceeded, os.str());
            state_ = ShardState::Halted;
        }
    } catch (const StatusError &error) {
        haltStatus_ = error.status();
        state_ = ShardState::Halted;
    } catch (const std::exception &error) {
        haltStatus_ =
            Status::make(StatusCode::InternalError, error.what());
        state_ = ShardState::Halted;
    }
    return state_;
}

ChannelOutcome
ChannelShard::finishRun()
{
    ChannelOutcome channel_outcome;
    channel_outcome.status = haltStatus_;
    channel_outcome.cycles = cycles_;

    // Close any job spans still open (jobs left armed at session end —
    // on a halted channel they inherit the channel status below).
    if (trace_) {
        for (size_t l = 0; l < pus_.size(); ++l) {
            PuSlot &slot = pus_[l];
            if (slot.hasJob)
                trace_->jobSpan(static_cast<int>(l), slot.jobId,
                                slot.armCycle, cycles_);
        }
    }

    finalizeStats();

    // Settle per-PU outcomes: contained units keep the status recorded
    // at containment; on a failed channel every other unit inherits the
    // channel status (even a unit that asserted output_finished may
    // have unflushed output stranded in its buffer); on a completed
    // channel every non-contained unit finished and fully flushed.
    for (size_t l = 0; l < pus_.size(); ++l) {
        PuSlot &slot = pus_[l];
        if (!slot.failed) {
            if (channel_outcome.status.ok()) {
                slot.outcome.status = Status::make(StatusCode::Ok);
                slot.outcome.atCycle = slot.stats.finishedAtCycle;
            } else {
                slot.outcome.status = channel_outcome.status;
                slot.outcome.atCycle = cycles_;
            }
        }
        slot.outcome.outputBits =
            outputCtrl_->payloadBits(static_cast<int>(l));
        slot.outcome.jobId = slot.jobId;
    }
    return channel_outcome;
}

bool
ChannelShard::puDrained(int local) const
{
    const PuSlot &slot = pus_[local];
    if (slot.parked || !slot.hasJob)
        return false;
    if (!slot.finishedSeen && !slot.failed)
        return false;
    return inputCtrl_->puIdle(local) && outputCtrl_->puFlushed(local);
}

RetiredJob
ChannelShard::retireJob(int local)
{
    PuSlot &slot = pus_[local];
    if (!puDrained(local))
        panic("ChannelShard: retireJob(", local,
              ") before the job drained");

    RetiredJob job;
    job.jobId = slot.jobId;
    job.armCycle = slot.armCycle;
    job.retireCycle = cycles_;
    job.streamBits = slot.streamBits;
    job.emittedBits = slot.emittedBits;
    job.stats.inputStarvedCycles = slot.stats.inputStarvedCycles -
                                   slot.statsAtArm.inputStarvedCycles;
    job.stats.outputBlockedCycles = slot.stats.outputBlockedCycles -
                                    slot.statsAtArm.outputBlockedCycles;
    job.stats.finishedAtCycle = slot.stats.finishedAtCycle;
    if (slot.failed) {
        job.outcome = slot.outcome; // Status recorded at containment.
    } else {
        job.outcome.status = Status::make(StatusCode::Ok);
        job.outcome.atCycle = slot.stats.finishedAtCycle;
    }
    job.outcome.outputBits = outputCtrl_->payloadBits(local);
    job.outcome.jobId = slot.jobId;

    if (trace_)
        trace_->jobSpan(local, slot.jobId, slot.armCycle, cycles_);

    // Roll the finished job into the cumulative channel accounting,
    // then park the slot. The controller lanes keep their drained
    // state (idle input, finished-and-flushed output) so the channel's
    // completion check and channel-mates are unaffected; the next
    // rearmPu resets them.
    slot.pastInputBytes += ceilDiv(slot.streamBits, 8);
    slot.pastOutputBytes += ceilDiv(slot.emittedBits, 8);
    ++slot.jobsRetired;
    slot.parked = true;
    slot.hasJob = false;
    slot.failed = false;
    slot.finishedSeen = false;
    slot.streamBits = 0;
    slot.emittedBits = 0;
    recomputeWatchdogBudget();
    return job;
}

void
ChannelShard::parkPu(int local)
{
    PuSlot &slot = pus_[local];
    slot.parked = true;
    slot.hasJob = false;
    slot.streamBits = 0;
    // A parked lane counts as finished-and-flushed so it never blocks
    // the channel's completion check.
    outputCtrl_->setPuFinished(local);
}

void
ChannelShard::rearmPu(int local, uint64_t stream_bits, uint64_t job_id)
{
    PuSlot &slot = pus_[local];
    if (state_ == ShardState::Unstarted || state_ == ShardState::Halted)
        panic("ChannelShard: rearmPu(", local,
              ") outside an active run");
    if (!slot.parked)
        panic("ChannelShard: rearmPu(", local,
              ") on a slot that still holds a job");

    inputCtrl_->rearmPu(local, stream_bits);
    outputCtrl_->rearmPu(local);
    slot.pu->reset();
    slot.parked = false;
    slot.hasJob = true;
    slot.jobId = job_id;
    slot.armCycle = cycles_;
    slot.streamBits = stream_bits;
    slot.emittedBits = 0;
    slot.finishedSeen = false;
    slot.failed = false;
    slot.statsAtArm = slot.stats;
    slot.stats.finishedAtCycle = 0;
    slot.outcome = PuOutcome{};
    slot.lastIn = PuInputs{};
    slot.lastOut = PuOutputs{};
    // Fresh work: the stretch the slot sat parked must not count
    // against the forward-progress watchdog.
    lastActivityCycle_ = cycles_;
    lastBeats_ = channel_->beatsDelivered() + channel_->beatsWritten();
    recomputeWatchdogBudget();
    state_ = ShardState::Active;
}

void
ChannelShard::finalizeStats()
{
    stats_.cycles = cycles_;
    stats_.numPus = numPus();
    stats_.beatsDelivered = channel_->beatsDelivered();
    stats_.beatsWritten = channel_->beatsWritten();
    for (const auto &slot : pus_) {
        // Past* are the retired jobs' roll-ups (always 0 one-shot).
        stats_.inputBytes += slot.pastInputBytes +
                             ceilDiv(slot.streamBits, 8);
        stats_.outputBytes += slot.pastOutputBytes +
                              ceilDiv(slot.emittedBits, 8);
        stats_.inputStarvedCycles += slot.stats.inputStarvedCycles;
        stats_.outputBlockedCycles += slot.stats.outputBlockedCycles;
    }
}

const char *
ChannelShard::stallReason(const PuSlot &slot) const
{
    if (slot.failed)
        return "contained";
    if (slot.parked)
        return "parked";
    if (slot.finishedSeen)
        return "finished";
    // Shared classification (trace/taxonomy.h) over the last cycle's
    // latched handshake — the same attribution the trace layer records.
    return trace::stallCauseName(trace::classifyStall(
        slot.lastOut.inputReady, slot.lastIn.inputValid,
        slot.lastIn.inputFinished, slot.lastOut.outputValid,
        slot.lastIn.outputReady));
}

trace::ChannelTrace
ChannelShard::takeTrace()
{
    trace::ChannelTrace out = trace_->finish(cycles_);
    if (!traceConfig_.counters)
        return out;

    auto component = [this](const char *suffix) {
        trace::CounterSet set;
        set.name = "ch" + std::to_string(channelIndex_) + "/" + suffix;
        return set;
    };

    trace::CounterSet dram = component("dram");
    channel_->exportCounters(dram);
    out.counters.push_back(std::move(dram));

    trace::CounterSet input = component("input_ctrl");
    inputCtrl_->exportCounters(input);
    out.counters.push_back(std::move(input));

    trace::CounterSet output = component("output_ctrl");
    outputCtrl_->exportCounters(output);
    out.counters.push_back(std::move(output));

    for (size_t l = 0; l < pus_.size(); ++l) {
        const PuSlot &slot = pus_[l];
        trace::CounterSet set = component(
            ("pu" + std::to_string(slot.globalIndex)).c_str());
        const int local = static_cast<int>(l);
        for (int p = 0; p < trace::kNumPuPhases; ++p) {
            auto phase = static_cast<trace::PuPhase>(p);
            set.set(std::string(trace::puPhaseName(phase)) + "_cycles",
                    trace_->phaseCycles(local, phase));
        }
        set.set("stream_bits", slot.streamBits);
        set.set("delivered_bits", inputCtrl_->puBitsDelivered(local));
        set.set("emitted_bits", slot.emittedBits);
        set.set("flushed_payload_bits", outputCtrl_->payloadBits(local));
        set.set("finished_at_cycle", slot.stats.finishedAtCycle);
        set.set("contained", slot.failed ? 1 : 0);
        set.set("jobs_retired", slot.jobsRetired);
        slot.pu->appendCounters(set);
        out.counters.push_back(std::move(set));
    }
    return out;
}

std::string
ChannelShard::watchdogDump(uint64_t stalled_cycles) const
{
    std::ostringstream os;
    os << "channel " << channelIndex_ << " made no forward progress for "
       << stalled_cycles << " cycles (cycle " << cycles_
       << "): no PU retired a token and no DRAM beat moved\n";
    for (size_t l = 0; l < pus_.size(); ++l) {
        const PuSlot &slot = pus_[l];
        os << "  PU " << slot.globalIndex << " (local " << l
           << "): " << stallReason(slot) << "; in-fifo "
           << inputCtrl_->buffer(static_cast<int>(l)).sizeBits()
           << " bits, out-fifo "
           << outputCtrl_->buffer(static_cast<int>(l)).sizeBits()
           << " bits, emitted " << slot.emittedBits << " bits, starved "
           << slot.stats.inputStarvedCycles << " cycles, blocked "
           << slot.stats.outputBlockedCycles << " cycles\n";
    }
    os << "  input-ctrl in-flight bursts " << inputCtrl_->inflightBursts()
       << ", output-ctrl pending bursts " << outputCtrl_->pendingBursts()
       << ", DRAM outstanding reads " << channel_->outstandingReads()
       << " / writes " << channel_->outstandingWrites();
    return os.str();
}

} // namespace system
} // namespace fleet
