#include "system/pu_fast.h"

#include "util/logging.h"

namespace fleet {
namespace system {

FastPu::FastPu(const lang::Program &program, const BitBuffer &stream)
    : inputTokenWidth_(program.inputTokenWidth),
      outputTokenWidth_(program.outputTokenWidth), program_(&program)
{
    rearm(stream);
}

void
FastPu::rearm(const BitBuffer &stream)
{
    sim::SimOptions options;
    options.recordTrace = true;
    sim::FunctionalSimulator simulator(*program_, options);
    result_ = simulator.run(stream);
    streamTokens_ = result_.tokens;
    reset();
}

void
FastPu::reset()
{
    v_ = false;
    f_ = false;
    traceIdx_ = 0;
    outBitPos_ = 0;
    tokensConsumed_ = 0;
}

PuOutputs
FastPu::eval(const PuInputs &inputs)
{
    bool emitting = false;
    bool consuming = false;
    if (v_) {
        if (traceIdx_ >= result_.trace.size())
            panic("FastPu: trace exhausted while active (environment fed "
                  "more tokens than the unit's stream?)");
        uint8_t flags = result_.trace[traceIdx_];
        emitting = flags & sim::kVcycleEmits;
        consuming = flags & sim::kVcycleConsumesToken;
    }

    PuOutputs out;
    out.outputValid = v_ && emitting;
    out.outputToken =
        out.outputValid ? result_.output.readBits(outBitPos_,
                                                  outputTokenWidth_)
                        : 0;
    bool output_ok = !out.outputValid || inputs.outputReady;
    bool v_done = v_ && output_ok;
    out.inputReady = !v_ || (consuming && output_ok);
    out.outputFinished = !v_ && f_;

    lastInputs_ = inputs;
    lastVdone_ = v_done;
    lastEmitting_ = emitting;
    lastInputReady_ = out.inputReady;
    return out;
}

void
FastPu::step()
{
    if (lastVdone_) {
        if (lastEmitting_)
            outBitPos_ += outputTokenWidth_;
        ++traceIdx_;
    }
    if (lastInputReady_) {
        if (lastInputs_.inputValid) {
            if (tokensConsumed_ >= streamTokens_)
                panic("FastPu: environment supplied a token beyond the "
                      "unit's stream");
            ++tokensConsumed_;
        }
        v_ = lastInputs_.inputValid ||
             (!f_ && lastInputs_.inputFinished);
        f_ = f_ || lastInputs_.inputFinished;
    }
}

void
FastPu::appendCounters(trace::CounterSet &out) const
{
    out.set("backend_fast", 1);
    out.set("tokens_consumed", tokensConsumed_);
    out.set("stream_tokens", streamTokens_);
    out.set("output_tokens", result_.emits);
    out.set("virtual_cycles", result_.vcycles);
    out.set("emitted_bits_functional",
            result_.emits * uint64_t(outputTokenWidth_));
}

} // namespace system
} // namespace fleet
