#ifndef FLEET_SYSTEM_SPLITTER_H
#define FLEET_SYSTEM_SPLITTER_H

/**
 * @file
 * Host-side input splitting (Section 2 of the paper): "users must have a
 * way to split up a large input into many smaller streams that can be
 * processed in parallel", e.g. a fast newline finder for JSON records,
 * or arbitrary-point splits for string search. These helpers implement
 * both, with an optional per-stream configuration prologue (the JSON
 * unit's field trie, for instance) prepended to every split.
 */

#include <string>
#include <vector>

#include "util/bitbuf.h"

namespace fleet {
namespace system {

/**
 * Split text into up to `parts` streams of roughly equal size, cutting
 * only immediately after `delimiter` so no record straddles streams.
 * Trailing text after the last delimiter goes to the final stream. Fewer
 * than `parts` streams are returned if the text has too few records;
 * callers should treat stream count as data-dependent.
 */
std::vector<BitBuffer>
splitAtDelimiter(const std::string &text, int parts, char delimiter,
                 const std::vector<uint8_t> &prologue = {});

/**
 * Split a token stream at arbitrary token boundaries into exactly
 * `parts` streams of near-equal length (string-search style: a small
 * host post-pass handles matches at boundaries). Streams may be empty
 * when there are fewer tokens than parts.
 */
std::vector<BitBuffer>
splitFixed(const BitBuffer &data, int parts, int token_bits,
           const std::vector<uint8_t> &prologue = {});

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_SPLITTER_H
