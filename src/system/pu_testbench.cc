#include "system/pu_testbench.h"

#include "util/logging.h"
#include "util/rng.h"

namespace fleet {
namespace system {

TestbenchResult
runPu(ProcessingUnit &pu, const BitBuffer &input,
      const TestbenchOptions &options)
{
    pu.reset();
    Rng rng(options.seed);
    TestbenchResult result;

    const int in_width = pu.inputTokenWidth();
    if (input.sizeBits() % in_width != 0)
        fatal("runPu: input stream is not a whole number of tokens");
    const uint64_t total_tokens = input.sizeBits() / in_width;
    uint64_t next_token = 0;

    for (uint64_t cycle = 0; cycle < options.maxCycles; ++cycle) {
        PuInputs in;
        bool have_data = next_token < total_tokens;
        bool present = have_data &&
                       (options.inputValidProb >= 1.0 ||
                        rng.nextDouble() < options.inputValidProb);
        in.inputValid = present;
        in.inputToken =
            present ? input.readBits(next_token * in_width, in_width) : 0;
        in.inputFinished = !have_data;
        in.outputReady = options.outputReadyProb >= 1.0 ||
                         rng.nextDouble() < options.outputReadyProb;

        PuOutputs out = pu.eval(in);

        if (out.outputFinished) {
            result.cycles = cycle;
            return result;
        }
        if (out.outputValid && in.outputReady) {
            result.output.appendBits(out.outputToken,
                                     pu.outputTokenWidth());
            ++result.outputTokens;
        }
        if (out.inputReady && in.inputValid) {
            ++next_token;
            ++result.inputTokens;
        }
        pu.step();
    }
    fatal("runPu: unit did not finish within ", options.maxCycles,
          " cycles");
}

} // namespace system
} // namespace fleet
