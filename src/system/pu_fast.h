#ifndef FLEET_SYSTEM_PU_FAST_H
#define FLEET_SYSTEM_PU_FAST_H

/**
 * @file
 * Fast processing-unit timing model. The functional simulator pre-computes
 * the program's per-virtual-cycle trace for the unit's entire stream
 * (which is legal because output backpressure can only delay, never
 * change, a Fleet program's behaviour); FastPu then replays that trace
 * through the same ready-valid handshake state machine the compiled RTL
 * implements. Cycle counts and port activity are identical to RtlPu —
 * enforced by the cross-check test suite — at a fraction of the
 * simulation cost, enabling the full-system benchmark sweeps.
 */

#include "lang/ast.h"
#include "sim/simulator.h"
#include "system/pu.h"
#include "util/bitbuf.h"

namespace fleet {
namespace system {

class FastPu : public ProcessingUnit
{
  public:
    /**
     * Pre-run the functional simulator on `stream` (the exact token
     * stream this unit will be fed) and build the replay model.
     */
    FastPu(const lang::Program &program, const BitBuffer &stream);

    /**
     * Re-target the replay model at a new stream (job runtime re-arm):
     * re-runs the functional simulator over `stream` and resets the
     * handshake state machine, exactly as constructing a fresh
     * FastPu(program, stream) would — construction is just rearm() over
     * the first stream.
     */
    void rearm(const BitBuffer &stream);

    void reset() override;
    PuOutputs eval(const PuInputs &inputs) override;
    void step() override;
    int inputTokenWidth() const override { return inputTokenWidth_; }
    int outputTokenWidth() const override { return outputTokenWidth_; }
    void appendCounters(trace::CounterSet &out) const override;

    /** The functional run backing this replay (outputs, counts). */
    const sim::RunResult &functionalResult() const { return result_; }

  private:
    int inputTokenWidth_;
    int outputTokenWidth_;
    /** Not owned; must outlive the unit (rearm() re-simulates it). */
    const lang::Program *program_;
    sim::RunResult result_;
    uint64_t streamTokens_;

    // Handshake state (mirrors the compiled RTL's v/f registers).
    bool v_ = false;
    bool f_ = false;
    uint64_t traceIdx_ = 0;
    uint64_t outBitPos_ = 0;
    uint64_t tokensConsumed_ = 0;

    // Latched from the last eval() for step().
    PuInputs lastInputs_;
    bool lastVdone_ = false;
    bool lastEmitting_ = false;
    bool lastInputReady_ = false;
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_PU_FAST_H
