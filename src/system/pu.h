#ifndef FLEET_SYSTEM_PU_H
#define FLEET_SYSTEM_PU_H

/**
 * @file
 * Cycle-level port interface of a Fleet processing unit — exactly the
 * ready-valid IO interface of Section 4 of the paper. Two implementations
 * exist and are cross-checked cycle-for-cycle, mirroring the paper's
 * "full-system RTL simulation vs. software simulator" testing setup:
 *
 *  - RtlPu (pu_rtl.h): interprets the compiled RTL circuit; and
 *  - FastPu (pu_fast.h): replays a functional-simulator virtual-cycle
 *    trace through the same handshake state machine (fast timing model
 *    for large full-system sweeps).
 *
 * Per simulated clock: call eval() with the cycle's input port values,
 * observe the output ports, let the environment act on the handshakes,
 * then call step() to advance to the next cycle.
 */

#include <cstdint>

#include "trace/trace.h"

namespace fleet {
namespace system {

struct PuInputs
{
    uint64_t inputToken = 0;
    bool inputValid = false;
    bool inputFinished = false;
    bool outputReady = false;
};

struct PuOutputs
{
    bool inputReady = false;
    uint64_t outputToken = 0;
    bool outputValid = false;
    bool outputFinished = false;
};

class ProcessingUnit
{
  public:
    virtual ~ProcessingUnit() = default;

    /** Reset all state to power-on values. */
    virtual void reset() = 0;

    /** Combinationally evaluate the cycle's outputs from the inputs. */
    virtual PuOutputs eval(const PuInputs &inputs) = 0;

    /** Clock edge; commits state using the inputs passed to eval(). */
    virtual void step() = 0;

    virtual int inputTokenWidth() const = 0;
    virtual int outputTokenWidth() const = 0;

    /**
     * Append backend-specific counters to the unit's trace CounterSet
     * (values derived from state the backend already keeps — the trace
     * layer adds no per-cycle work to a unit). Default: nothing.
     */
    virtual void appendCounters(trace::CounterSet &) const {}
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_PU_H
