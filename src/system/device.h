#ifndef FLEET_SYSTEM_DEVICE_H
#define FLEET_SYSTEM_DEVICE_H

/**
 * @file
 * The device abstraction (ISSUE 10): one simulated FPGA card — a fixed
 * pool of processing-unit slots behind the session-mode protocol that
 * runtime::Session speaks. Extracted from FleetSystem so the cluster
 * layer (src/cluster) can treat "a device" as an interface: a Cluster
 * owns N Devices plus the inter-device links and re-exports the same
 * protocol under global slot indices, and the runtime above it never
 * cares whether a slot lives on device 0 or device 7.
 *
 * Everything here is *simulated-state only*: a Device implementation
 * must keep the contract that armJob / stepEpoch / retireJob outcomes
 * are a pure function of (programs, config, arm sequence) — bit
 * identical across host thread counts and PU backends — or every
 * determinism fence above it breaks. FleetSystem (fleet_system.h) is
 * the one real implementation; the interface is the seam where a
 * remote device, an RTL-cosimulated card, or a recorded replay could
 * plug in without touching the runtime.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "system/channel_shard.h"
#include "system/run_report.h"
#include "trace/trace.h"
#include "util/bitbuf.h"
#include "util/status.h"

namespace fleet {
namespace system {

enum class PuBackend
{
    Fast, ///< Functional-trace replay (cross-checked against the RTL
          ///< engines).
    Rtl,  ///< Compiled RTL: optimizer + op tape, evaluated batched
          ///< (structure-of-arrays) across each channel's PUs. The
          ///< default cycle-accurate backend.
    RtlTape,   ///< Compiled RTL, one scalar tape evaluator per PU.
    RtlInterp, ///< Per-node RTL interpreter (the reference engine).
    RtlJit, ///< Compiled RTL lowered to native code (rtl/jit.h): each
            ///< channel's PU population runs a shared-object kernel
            ///< generated and compiled at construction (arm) time,
            ///< bit-identical to Rtl/RtlTape/RtlInterp. Falls back to
            ///< RtlTape per slot when no host toolchain is available
            ///< (slotBackend() reports the backend actually used).
};

/**
 * Session mode, multi-program hosting (ISSUE 8): which compiled program
 * a slot pre-arms, which placement lane it belongs to, and optionally a
 * per-slot PU backend override. All three are pure configuration —
 * frozen at construction and never derived from runtime state — so
 * schedules stay bit-identical across host thread counts and the
 * cross-backend fences hold.
 */
struct SlotBinding
{
    /** Index into the session's program list. */
    uint32_t program = 0;
    /**
     * Placement-lane label the scheduler's JobTag::preferredLane hints
     * match against (e.g. lane 0 = latency-critical Fast slots, lane 1
     * = audit RtlTape slots). Never inspected by the simulator itself.
     */
    int lane = 0;
    /** Per-slot backend; empty = SystemConfig::backend. */
    std::optional<PuBackend> backend;
};

struct SystemStats
{
    uint64_t cycles = 0;
    uint64_t inputBytes = 0;
    uint64_t outputBytes = 0;
    double clockMHz = 125.0;
    /** Host worker threads the run actually used. */
    int threadsUsed = 1;
    /** Host wall-clock seconds spent inside run(). */
    double wallSeconds = 0.0;
    /** Per-channel utilization breakdown, indexed by channel. */
    std::vector<ChannelStats> channels;

    double seconds() const { return cycles / (clockMHz * 1e6); }
    /** Input-side processing throughput (the paper's headline metric). */
    double inputGBps() const
    {
        return inputBytes / seconds() / 1e9;
    }
    double outputGBps() const { return outputBytes / seconds() / 1e9; }
    double bytesPerCycle() const
    {
        return cycles ? double(inputBytes) / double(cycles) : 0.0;
    }
};

/**
 * One simulated device's session-mode protocol (see FleetSystem for
 * the authoritative per-method documentation). Slot indices are local
 * to the device; the cluster layer maps global indices down.
 */
class Device
{
  public:
    virtual ~Device() = default;

    /** Start the session clock: beginRun on every shard. */
    virtual void beginSession() = 0;

    /** Arm a parked slot with a job (errors returned, not thrown). */
    virtual Status armJob(int pu, BitBuffer stream, uint64_t job_id) = 0;

    /** Step every Active shard up to `epoch_cycles` cycles. */
    virtual void stepEpoch(uint64_t epoch_cycles) = 0;

    /** True once `pu`'s armed job drained (output readable). */
    virtual bool puDrained(int pu) const = 0;

    /** Shard state of the channel owning `pu`. */
    virtual ShardState puShardState(int pu) const = 0;
    /** The halt status of the channel owning `pu` (Ok if healthy). */
    virtual const Status &puShardStatus(int pu) const = 0;

    /** A drained job's flushed output (read before retireJob). */
    virtual BitBuffer jobOutput(int pu) const = 0;

    /** Retire a drained job and park the slot. */
    virtual RetiredJob retireJob(int pu) = 0;

    /** Abandon `pu`'s in-flight job with `status`. */
    virtual Status cancelJob(int pu, Status status) = 0;

    /** Force channel `c` into the Halted state with `status`. */
    virtual void forceHaltChannel(int c, Status status) = 0;

    /** Settle every shard and assemble the session RunReport. */
    virtual const RunReport &finishSession() = 0;

    /** Attach scheduler-level tracks (call before finishSession). */
    virtual void setSessionTracks(
        std::vector<trace::CounterTrack> tracks) = 0;

    virtual SystemStats stats() const = 0;

    virtual int numPus() const = 0;
    virtual int numShards() const = 0;
    /** The memory channel that owns `pu`. */
    virtual int puChannel(int pu) const = 0;

    virtual int numPrograms() const = 0;
    virtual uint32_t slotProgramIndex(int pu) const = 0;
    virtual int slotLane(int pu) const = 0;
    virtual PuBackend slotBackend(int pu) const = 0;

    /** Live cycle count of channel `c`'s shard (the session clock is
     * the max over shards — see sessionCycles). */
    virtual uint64_t shardCycles(int c) const = 0;

    /** The device's session clock: max over its shards so far. */
    uint64_t sessionCycles() const
    {
        uint64_t max_cycles = 0;
        for (int c = 0; c < numShards(); ++c) {
            uint64_t cycles = shardCycles(c);
            if (cycles > max_cycles)
                max_cycles = cycles;
        }
        return max_cycles;
    }
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_DEVICE_H
