#ifndef FLEET_SYSTEM_PU_BACKEND_H
#define FLEET_SYSTEM_PU_BACKEND_H

/**
 * @file
 * The one backend-name <-> PuBackend mapping (ISSUE 9 satellite):
 * every CLI surface — fig7, micro_rtl_engines, the serve/chaos/tenant
 * benches, the examples — parses `--backend` through parsePuBackend()
 * and prints through puBackendName(), instead of each carrying its own
 * copy of the string switch. Parsing is case-insensitive and ignores
 * '-'/'_' separators, so the historical spellings ("rtl-tape",
 * "rtl-interp") keep working alongside the canonical ones.
 */

#include <cctype>
#include <optional>
#include <string>
#include <string_view>

#include "system/fleet_system.h"

namespace fleet {
namespace system {

/** Canonical spellings, for usage strings. */
inline constexpr const char kPuBackendChoices[] =
    "fast|rtl|rtltape|rtlinterp|rtljit";

inline std::optional<PuBackend>
parsePuBackend(std::string_view name)
{
    std::string n;
    for (char c : name)
        if (c != '-' && c != '_')
            n += char(std::tolower(static_cast<unsigned char>(c)));
    if (n == "fast")
        return PuBackend::Fast;
    if (n == "rtl" || n == "rtlbatch" || n == "batch")
        return PuBackend::Rtl;
    if (n == "rtltape" || n == "tape")
        return PuBackend::RtlTape;
    if (n == "rtlinterp" || n == "interp")
        return PuBackend::RtlInterp;
    if (n == "rtljit" || n == "jit")
        return PuBackend::RtlJit;
    return std::nullopt;
}

inline const char *
puBackendName(PuBackend b)
{
    switch (b) {
      case PuBackend::Fast:      return "fast";
      case PuBackend::Rtl:       return "rtl";
      case PuBackend::RtlTape:   return "rtltape";
      case PuBackend::RtlInterp: return "rtlinterp";
      case PuBackend::RtlJit:    return "rtljit";
    }
    return "unknown";
}

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_PU_BACKEND_H
