#include "system/splitter.h"

#include <algorithm>

#include "util/logging.h"

namespace fleet {
namespace system {

namespace {

BitBuffer
withPrologue(const std::vector<uint8_t> &prologue)
{
    BitBuffer stream;
    for (uint8_t byte : prologue)
        stream.appendBits(byte, 8);
    return stream;
}

} // namespace

std::vector<BitBuffer>
splitAtDelimiter(const std::string &text, int parts, char delimiter,
                 const std::vector<uint8_t> &prologue)
{
    if (parts < 1)
        fatal("splitAtDelimiter: parts must be positive");
    std::vector<BitBuffer> streams;
    size_t target = text.size() / parts + 1;
    size_t start = 0;
    for (int p = 0; p < parts && start < text.size(); ++p) {
        size_t end;
        if (p == parts - 1) {
            end = text.size();
        } else {
            end = std::min(text.size(), start + target);
            // Advance to just past the next delimiter.
            while (end < text.size() && text[end - 1] != delimiter)
                ++end;
        }
        BitBuffer stream = withPrologue(prologue);
        stream.appendBuffer(
            BitBuffer::fromString(text.substr(start, end - start)));
        streams.push_back(std::move(stream));
        start = end;
    }
    return streams;
}

std::vector<BitBuffer>
splitFixed(const BitBuffer &data, int parts, int token_bits,
           const std::vector<uint8_t> &prologue)
{
    if (parts < 1)
        fatal("splitFixed: parts must be positive");
    if (token_bits < 1 || data.sizeBits() % token_bits != 0)
        fatal("splitFixed: data is not a whole number of tokens");
    uint64_t tokens = data.sizeBits() / token_bits;
    uint64_t base = tokens / parts;
    uint64_t extra = tokens % parts;
    std::vector<BitBuffer> streams;
    uint64_t next = 0;
    for (int p = 0; p < parts; ++p) {
        uint64_t count = base + (uint64_t(p) < extra ? 1 : 0);
        BitBuffer stream = withPrologue(prologue);
        for (uint64_t t = 0; t < count; ++t, ++next)
            stream.appendBits(data.readBits(next * token_bits, token_bits),
                              token_bits);
        streams.push_back(std::move(stream));
    }
    return streams;
}

} // namespace system
} // namespace fleet
