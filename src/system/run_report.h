#ifndef FLEET_SYSTEM_RUN_REPORT_H
#define FLEET_SYSTEM_RUN_REPORT_H

/**
 * @file
 * Structured result of a full-system run (ISSUE 2). run() used to either
 * return nothing or throw — one stuck or misbehaving processing unit took
 * down the outputs of hundreds of healthy ones. A RunReport instead
 * records, per channel and per processing unit, whether it completed and
 * why it didn't, so the host can read back every healthy unit's output
 * and the partial output of contained failures.
 *
 * Reports compare exactly (operator==), which the fault-injection
 * determinism suite uses to assert that the same seed and fault plan
 * produce the same report at every host thread count.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/status.h"

namespace fleet {
namespace system {

/** Outcome of one processing unit. */
struct PuOutcome
{
    Status status;
    /** Channel cycle the outcome was decided (finish or containment). */
    uint64_t atCycle = 0;
    /** Payload bits flushed to channel memory (partial on failure). */
    uint64_t outputBits = 0;
    /**
     * The job whose outcome this is. One-shot runs arm exactly one
     * stream per unit, so the job id is the global PU index; under the
     * multi-stream runtime (runtime/session.h) it is the id of the last
     * job the slot ran, and per-job outcomes are reported through
     * runtime::JobReport instead.
     */
    uint64_t jobId = 0;

    /** Completed — possibly on a truncated stream. */
    bool ok() const
    {
        return status.code == StatusCode::Ok ||
               status.code == StatusCode::StreamTruncated;
    }
};

/** Outcome of one channel shard's run loop. */
struct ChannelOutcome
{
    Status status;
    uint64_t cycles = 0;

    bool ok() const { return status.ok(); }
};

struct RunReport
{
    std::vector<ChannelOutcome> channels;
    std::vector<PuOutcome> pus; ///< Indexed by global PU index.
    /**
     * Observability data, present iff SystemConfig::trace was enabled
     * (ISSUE 3). Shared so reports stay cheap to copy; the trace itself
     * is immutable once the run finishes. Compared by value in
     * operator== — serial and parallel runs must collect identical
     * traces, not just identical outcomes.
     */
    std::shared_ptr<const trace::TraceReport> trace;

    /**
     * Export the run as Chrome trace_event JSON for Perfetto /
     * chrome://tracing. Requires a run traced with events enabled.
     */
    Status writeTrace(const std::string &path) const;

    /** Every channel finished and every PU completed (truncated-stream
     * completions count as ok — the short stream was an input fault, the
     * unit itself ran it to the end). */
    bool allOk() const;
    int failedPuCount() const;
    int truncatedPuCount() const;

    /** Multi-line human-readable digest (one line per non-ok channel and
     * PU; a single "all N PUs completed" line when everything is ok). */
    std::string summary() const;
};

bool operator==(const PuOutcome &a, const PuOutcome &b);
bool operator==(const ChannelOutcome &a, const ChannelOutcome &b);
bool operator==(const RunReport &a, const RunReport &b);
inline bool
operator!=(const RunReport &a, const RunReport &b)
{
    return !(a == b);
}

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_RUN_REPORT_H
