#ifndef FLEET_SYSTEM_PU_RTL_H
#define FLEET_SYSTEM_PU_RTL_H

/**
 * @file
 * Processing-unit backend that interprets the compiled RTL circuit
 * cycle-accurately. This is the reference timing model: the fast model
 * (pu_fast.h) must match it cycle-for-cycle.
 */

#include <memory>

#include "compile/compiler.h"
#include "rtl/sim.h"
#include "system/pu.h"

namespace fleet {
namespace system {

class RtlPu : public ProcessingUnit
{
  public:
    /** Compile and wrap a program. */
    explicit RtlPu(const lang::Program &program);
    /** Wrap an already-compiled unit. */
    explicit RtlPu(compile::CompiledUnit unit);

    void reset() override;
    PuOutputs eval(const PuInputs &inputs) override;
    void step() override;
    int inputTokenWidth() const override { return unit_.inputTokenWidth; }
    int outputTokenWidth() const override { return unit_.outputTokenWidth; }
    void appendCounters(trace::CounterSet &out) const override;

    const compile::CompiledUnit &unit() const { return unit_; }

  private:
    compile::CompiledUnit unit_;
    std::unique_ptr<rtl::Simulator> sim_;
};

} // namespace system
} // namespace fleet

#endif // FLEET_SYSTEM_PU_RTL_H
