#ifndef FLEET_SERVE_LOAD_GEN_H
#define FLEET_SERVE_LOAD_GEN_H

/**
 * @file
 * Deterministic open-loop arrival schedules for the serving bench
 * (ISSUE 6). Open-loop means arrivals are scheduled *in advance* on the
 * simulated clock, independent of how fast the system serves — the only
 * regime in which queueing delay and tail latency are visible (a
 * closed-loop driver throttles itself and hides both, which is exactly
 * what bench/job_throughput does by design).
 *
 * All randomness comes from the repo's SplitMix64 Rng, so a (spec, seed)
 * pair produces the same arrival schedule on every platform; the bench's
 * determinism crosscheck replays one schedule across PU backends and
 * thread counts and fences the per-job simulated latencies bit-for-bit.
 */

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fleet {
namespace serve {

/** Arrival-process shapes the generator can emit. */
enum class ArrivalProcess
{
    Poisson, ///< Exponential i.i.d. interarrivals at the mean rate.
    /** Rate-modulated Poisson: within each burstPeriodCycles window the
     * first burstDuty fraction arrives burstBoost× faster than the
     * off-phase, holding the window's mean rate at the configured mean.
     * Stresses the admission queue far harder than Poisson at the same
     * offered load. */
    Bursty
};

const char *arrivalProcessName(ArrivalProcess process);

/** One scheduled arrival: when (simulated cycles) and how big. */
struct Arrival
{
    uint64_t cycle = 0;     ///< Session-clock arrival time.
    uint64_t streamBytes = 0; ///< Job size (whole input tokens' worth).
};

struct LoadSpec
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    /** Number of jobs to schedule. */
    uint64_t jobs = 256;
    /** Mean interarrival gap in simulated cycles — the offered load
     * knob: smaller gap = higher load. Must be >= 1. */
    double meanInterarrivalCycles = 1000.0;
    /**
     * Job sizes are drawn uniformly from [minJobBytes, maxJobBytes] and
     * rounded up to a whole input token — heterogeneous sizes are what
     * make tail latency interesting (a small job stuck behind a big one
     * is the classic p99 story).
     */
    uint64_t minJobBytes = 64;
    uint64_t maxJobBytes = 1024;
    uint64_t seed = 0xf1ee7;
    /** Bursty only: on-phase rate multiplier (> 1; duty*boost must
     * stay < 1 so the off-phase rate remains positive). */
    double burstBoost = 4.0;
    /** Bursty only: fraction of each period that is the on-phase. */
    double burstDuty = 0.2;
    /** Bursty only: modulation period in simulated cycles. */
    uint64_t burstPeriodCycles = 64 * 1024;
};

/**
 * Generate the full arrival schedule for `spec`, sorted by cycle
 * (non-decreasing; simultaneous arrivals keep generation order). Pure
 * function of the spec, including its seed.
 */
std::vector<Arrival> makeArrivals(const LoadSpec &spec);

} // namespace serve
} // namespace fleet

#endif // FLEET_SERVE_LOAD_GEN_H
