#ifndef FLEET_SERVE_SERVICE_H
#define FLEET_SERVE_SERVICE_H

/**
 * @file
 * Fleet-as-a-service (ISSUE 6): an in-process async client API over the
 * multi-stream job runtime. "Millions of users" is a queueing problem,
 * not a throughput problem — the serving layer is where queueing delay,
 * admission behaviour, and tail latency live, which the closed-loop
 * job_throughput bench structurally cannot see.
 *
 * A FleetService wraps a runtime::Session behind a thread-safe
 * submission boundary:
 *
 *  - *Clients* (any host thread) call submit() and get back a
 *    JobTicket — a future for the job's final runtime::JobReport.
 *  - A *service loop* — either a background thread (the default) or
 *    the caller pumping explicitly in paced mode — transfers admitted
 *    jobs into the Session and drives its scheduler rounds.
 *  - *Admission control*: the wait queue is bounded
 *    (ServiceConfig::maxQueueDepth). At the bound the configured
 *    policy kicks in: Block parks the submitter (FIFO wake order),
 *    Reject completes the ticket immediately with ResourceExhausted,
 *    ShedOldest drops the oldest waiting job (its ticket completes
 *    with ResourceExhausted) to make room for the newest.
 *  - *Backpressure signals*: stats() exposes queue depth, saturation,
 *    jobs in flight, and blocked submitters, so callers can throttle
 *    before admission control has to act.
 *
 * Determinism contract (DESIGN.md §5f): everything *simulated* — the
 * job→slot schedule, per-job cycle timestamps, outputs, traces — is a
 * pure function of (program, config, admission order, arrival cycles).
 * Host wall-clock only decides *when* rounds run, never what they
 * compute, so per-job simulated-cycle latencies are bit-identical
 * across PU backends and host thread counts. The open-loop bench
 * (bench/serve_latency) exploits this by running in paced mode with
 * arrival cycles from a seeded schedule (load_gen.h), making the whole
 * demand/latency curve reproducible; a free-running background thread
 * leaves the admission *order* up to host scheduling, but each
 * admitted sequence still replays exactly.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/session.h"

namespace fleet {
namespace serve {

/** What happens to a submit() when the wait queue is at its bound. */
enum class AdmissionPolicy
{
    Block,     ///< Park the submitter until space frees (FIFO order).
    Reject,    ///< Complete the ticket with ResourceExhausted now.
    ShedOldest ///< Drop the oldest waiting job; admit the new one.
};

const char *admissionPolicyName(AdmissionPolicy policy);

/**
 * Deterministic retry (ISSUE 7). A job whose report carries a
 * *transient* status (util::statusCodeTransient: parity quarantine,
 * truncation, watchdog stall, cycle limit, internal error) is
 * re-submitted — with its original stream and arrival cycle — until it
 * succeeds, fails permanently, runs out of attempts, or passes its
 * deadline. Backoff is measured in *simulated* cycles (attempt k waits
 * backoffCycles x k before re-entering the queue), so the retry
 * schedule is part of the simulated state and bit-identical across PU
 * backends and host thread counts. Each attempt runs under a fresh
 * session job id, so the fault plan's per-job hashes roll fresh dice —
 * a job truncated or corrupted on one attempt retries clean, and its
 * eventual Ok output is bit-identical to the fault-free golden.
 */
struct RetryPolicy
{
    /** Total attempts, the first included. 1 (default) = no retry. */
    int maxAttempts = 1;
    /** Simulated-cycle backoff unit; attempt k waits k x this. */
    uint64_t backoffCycles = 0;
};

/** Per-submission options (ISSUE 7). */
struct SubmitOptions
{
    /**
     * Deadline in simulated cycles *relative to the arrival cycle*;
     * 0 = none. A job past its deadline is cancelled in-queue or
     * abandoned mid-flight (the slot is reclaimed through the
     * containment path) and its ticket completes DeadlineExceeded.
     * The deadline also bounds retries: no attempt starts after it.
     */
    uint64_t deadlineCycles = 0;
    /**
     * Multi-tenant classification (ISSUE 8): tenant id for fair
     * queuing and per-tenant telemetry, program class (which of the
     * session's bound programs the job targets), strict priority, and
     * an optional placement hint. Carried through every attempt and
     * into the final JobReport.
     */
    runtime::JobTag tag;
};

struct ServiceConfig
{
    /** Program/slot-pool/backend/trace config for the inner Session. */
    runtime::SessionConfig session;
    /**
     * Bound on jobs *waiting* for a slot (the service's wait queue;
     * jobs already handed to the session — at most the live slot count
     * — are in service, not waiting). 0 is legal: every submit beyond
     * the slot pool's appetite hits the admission policy immediately.
     */
    size_t maxQueueDepth = 64;
    AdmissionPolicy policy = AdmissionPolicy::Block;
    /**
     * true: start() spawns a background service thread that pumps
     * scheduler rounds until shutdown. false: *paced mode* — the
     * caller drives rounds explicitly with pump(), which is what the
     * open-loop bench and the determinism tests use (simulated time
     * then advances only under the caller's control).
     */
    bool backgroundThread = true;
    /** Background thread: sleep this long when a round finds no work. */
    int idlePollMicros = 100;
    /** Transient-failure retry (ISSUE 7). Off by default. */
    RetryPolicy retry;
};

/**
 * Per-tenant serving telemetry (ISSUE 8). The counters obey a
 * conservation law that the serve tests assert at every pump step:
 *
 *   submitted == rejected + cancelled + shed + completed
 *              + waiting + retryBacklog + inSession
 *
 * i.e. every submit() is, at any instant, in exactly one terminal
 * bucket (rejected / cancelled / shed / completed) or one live bucket
 * (waiting in the admission queue, waiting out a retry backoff, or
 * inside the session).
 */
struct TenantStats
{
    uint64_t submitted = 0; ///< submit() calls for this tenant.
    uint64_t admitted = 0;  ///< Entered the wait queue.
    uint64_t rejected = 0;  ///< Turned away at the bound (Reject).
    uint64_t cancelled = 0; ///< Refused at/after shutdown.
    uint64_t shed = 0;      ///< Dropped to make room (ShedOldest).
    uint64_t completed = 0; ///< Tickets holding a final report.
    uint64_t waiting = 0;      ///< In the admission queue right now.
    uint64_t retryBacklog = 0; ///< Waiting out a retry backoff.
    uint64_t inSession = 0;    ///< Handed to the session, no report yet.
    uint64_t retries = 0;      ///< Transient failures re-submitted.
    uint64_t deadlineKilled = 0; ///< Completed DeadlineExceeded.
    /** Cumulative simulated queue-wait / service cycles over this
     * tenant's completed reports (the scheduler-side breakdown). */
    uint64_t queueWaitCycles = 0;
    uint64_t serviceCycles = 0;
};

/** Service-level telemetry snapshot (the backpressure signals). */
struct ServiceStats
{
    uint64_t submitted = 0; ///< submit() calls, including turned-away.
    uint64_t admitted = 0;  ///< Entered the wait queue.
    uint64_t rejected = 0;  ///< Turned away at the bound (Reject).
    uint64_t shed = 0;      ///< Dropped to make room (ShedOldest).
    /** Admitted tickets holding a final report — served, contained, or
     * stranded (shed and rejected tickets are counted separately). */
    uint64_t completed = 0;
    uint64_t queueDepth = 0;      ///< Waiting jobs right now.
    uint64_t blockedSubmitters = 0; ///< Parked in submit() (Block).
    int jobsInFlight = 0;         ///< Armed on slots.
    /** Slots still serving: neither on a halted channel nor
     * quarantined — the service's live capacity (ISSUE 7). */
    int liveSlots = 0;
    bool saturated = false;       ///< queueDepth >= maxQueueDepth.
    uint64_t simCycles = 0;       ///< Session clock (max over shards).
    /// @name Recovery telemetry (ISSUE 7).
    /// @{
    uint64_t retries = 0;        ///< Transient failures re-submitted.
    uint64_t retryBacklog = 0;   ///< Retries waiting out their backoff.
    uint64_t deadlineKilled = 0; ///< Jobs cancelled past their deadline.
    uint64_t requeued = 0;       ///< Jobs pulled off halted channels.
    int quarantinedSlots = 0;    ///< Slots pulled by the health registry.
    /// @}
    /** Per-tenant breakdown (ISSUE 8), sorted by tenant id. Tenants
     * appear on their first submit(). */
    std::vector<std::pair<uint32_t, TenantStats>> tenants;
    /// @name Cluster breakdown (ISSUE 10).
    /// @{
    int numDevices = 1; ///< Devices the session schedules across.
    /** Jobs completed per cluster device (index = device id); counts
     * only reports that actually armed on a slot, so refusals and
     * never-armed strandings appear in no device's bucket. */
    std::vector<uint64_t> deviceCompleted;
    /// @}
};

/**
 * Future for one submitted job. Cheap to copy (shared state). A ticket
 * from a turned-away submission (reject / shed / after shutdown) is
 * already complete, carrying only the refusal status.
 */
class JobTicket
{
  public:
    JobTicket() = default;

    /** False only for a default-constructed ticket. */
    bool valid() const { return state_ != nullptr; }

    /** True once the final report is in (never blocks). */
    bool ready() const;

    /**
     * Block until the report is final, then return it. Only meaningful
     * when something else is pumping (the background thread); in paced
     * mode call pump() until ready() instead — wait() would deadlock.
     */
    const runtime::JobReport &wait() const;

    /**
     * wait() with a host wall-clock timeout: true once the report is
     * final, false on timeout (the ticket stays valid — call again or
     * keep pumping). Host time here never touches the simulated
     * schedule; it only bounds how long the *caller* parks.
     */
    bool waitFor(std::chrono::nanoseconds timeout) const;

    /** The final report; throws StatusError(InvalidState) if !ready(). */
    const runtime::JobReport &report() const;

  private:
    friend class FleetService;

    struct State
    {
        mutable std::mutex mu;
        mutable std::condition_variable cv;
        bool ready = false;
        runtime::JobReport report;

        void complete(runtime::JobReport final);
    };

    std::shared_ptr<State> state_;
};

class FleetService
{
  public:
    /** Build the session and, unless paced, start the service thread. */
    FleetService(const lang::Program &program,
                 const ServiceConfig &config);
    /**
     * Multi-program service (ISSUE 8): host several compiled programs
     * behind one admission boundary, slots bound per `bindings` (see
     * runtime::Session's multi-program constructor — the mix is
     * area-checked against the device model at construction).
     */
    FleetService(std::vector<lang::Program> programs,
                 const ServiceConfig &config,
                 std::vector<system::SlotBinding> bindings = {});
    /** Calls shutdown() if the caller has not. */
    ~FleetService();

    FleetService(const FleetService &) = delete;
    FleetService &operator=(const FleetService &) = delete;

    /**
     * Submit a job from any thread. The arrival timestamp is the
     * current session cycle (monotonic snapshot). Returns the job's
     * ticket; if admission turned the job away the ticket is already
     * complete with ResourceExhausted (Reject at the bound) or
     * InvalidState (after shutdown began).
     */
    JobTicket submit(BitBuffer stream);
    /** submit() with per-job options (deadline, ISSUE 7). */
    JobTicket submit(BitBuffer stream, const SubmitOptions &options);

    /**
     * submit() with an explicit arrival cycle on the session clock —
     * the open-loop driver's entry point: pass the scheduled arrival
     * so queue-wait is measured from when the client *wanted* service.
     * Must be <= the current session cycle (the caller releases
     * arrivals as simulated time passes them).
     */
    JobTicket submitAt(BitBuffer stream, uint64_t arrival_cycle,
                       const SubmitOptions &options = {});

    /**
     * Paced mode: run one service round — transfer waiting jobs into
     * the session (up to its slot appetite), then one Session::step().
     * Returns true while jobs are waiting or in flight. Call from one
     * thread only. Illegal (InvalidState) with a background thread.
     */
    bool pump();

    /**
     * Stop accepting (submit() from now on returns InvalidState and
     * parked submitters are released with it), serve every already-
     * admitted job to completion, settle the session, and join the
     * service thread. Idempotent. In paced mode the calling thread
     * does the draining.
     */
    void shutdown();

    /** The settled RunReport. Throws InvalidState before shutdown(). */
    const system::RunReport &runReport() const;

    /** Telemetry snapshot (any thread, any time). */
    ServiceStats stats() const;
    /** True when the wait queue is at its configured bound. */
    bool saturated() const;

    /**
     * Chaos drill (ISSUE 7): force channel `c` into the Halted state,
     * exactly as a watchdog trip would land it. With
     * SessionConfig::requeueStranded the channel's in-flight jobs are
     * re-queued onto survivors on the next round; without it they
     * strand with the injected status. Paced mode only (the background
     * thread owns the session): throws InvalidState otherwise.
     */
    void injectChannelHalt(int c);

    /**
     * The inner session, for offline inspection of per-job reports and
     * cycle accounting. Only touch after shutdown() (or between paced
     * pumps): the service thread owns it while running.
     */
    const runtime::Session &session() const { return session_; }

  private:
    struct Waiting
    {
        BitBuffer stream;
        uint64_t arrivalCycle = 0;
        /** Absolute expiry on the session clock (0 = none). */
        uint64_t deadlineCycle = 0;
        /** Multi-tenant classification (ISSUE 8). */
        runtime::JobTag tag;
        std::shared_ptr<JobTicket::State> ticket;
    };

    /**
     * Per-job recovery state, shared between the session callback and
     * the retry queue: alive across attempts, so the original stream
     * and arrival cycle travel with the job while each attempt runs
     * under a fresh session job id.
     */
    struct Tracked
    {
        std::shared_ptr<JobTicket::State> ticket;
        /** Original stream; kept only while another attempt is
         * possible (retry enabled and attempts remain). */
        BitBuffer stream;
        uint64_t arrivalCycle = 0;
        uint64_t deadlineCycle = 0;
        /** Multi-tenant classification (ISSUE 8). */
        runtime::JobTag tag;
        /** Attempt currently in flight (1 = first try). */
        int attempt = 1;
        /** Simulated cycle the next attempt may re-enter the queue. */
        uint64_t retryEligibleCycle = 0;
        /** Last failed attempt's report — completes the ticket if the
         * pool dies before the retry runs. */
        runtime::JobReport lastReport;
    };

    JobTicket admit(BitBuffer stream, uint64_t arrival_cycle,
                    const SubmitOptions &options);
    /** One round; requires mu_ NOT held. True while work remains. */
    bool pumpOnce();
    /** Transfer waiting jobs into the session. Requires mu_ held. */
    void feedSessionLocked();
    /** Hand one tracked job to the session. Requires mu_ held. */
    void dispatchLocked(std::shared_ptr<Tracked> tracked);
    /** Session callback: complete the ticket or queue a retry. Runs
     * on the pumping thread inside Session::step; takes mu_. */
    void onJobDone(const std::shared_ptr<Tracked> &tracked,
                   const runtime::JobReport &report);
    /** Complete a ticket that never reached the session. */
    static JobTicket refuse(std::shared_ptr<JobTicket::State> state,
                            StatusCode code, const char *why);
    void serviceThread();

    ServiceConfig config_;
    runtime::Session session_;

    mutable std::mutex mu_;
    std::condition_variable spaceCv_; ///< Block-policy submitters.
    std::deque<Waiting> wait_;
    /** Transient failures waiting out their simulated-cycle backoff.
     * Already admitted: they bypass the admission bound on release. */
    std::deque<std::shared_ptr<Tracked>> retryWait_;
    bool accepting_ = true;
    bool finished_ = false; ///< session_.finish() has run.
    /** FIFO discipline for Block: submitters take a turn number and
     * are served strictly in order as space frees. */
    uint64_t blockNext_ = 0;
    uint64_t blockHead_ = 0;

    // Counters (under mu_ unless noted).
    uint64_t submitted_ = 0;
    uint64_t admitted_ = 0;
    uint64_t rejected_ = 0;
    uint64_t shed_ = 0;
    uint64_t retries_ = 0;
    /**
     * Per-tenant serving counters (ISSUE 8), under mu_. Terminal and
     * in-session buckets are maintained at each transition; stats()
     * recomputes `waiting` and `retryBacklog` by scanning the actual
     * deques, so the conservation law in TenantStats is a real
     * invariant of the state, not a bookkeeping tautology.
     */
    std::map<uint32_t, TenantStats> tenants_;
    /** Jobs completed per cluster device (ISSUE 10), under mu_;
     * indexed by JobReport::device for reports that armed. */
    std::vector<uint64_t> deviceCompleted_;
    std::atomic<uint64_t> completed_{0}; ///< Bumped in callbacks.
    /** Session-clock snapshot, updated after every round so client
     * threads can stamp arrivals without touching the session. */
    std::atomic<uint64_t> nowCycle_{0};
    /** Telemetry mirrors of session state, published by the pumping
     * thread after each round — stats() must not read the session
     * directly while it is being stepped. */
    std::atomic<int> inFlightNow_{0};
    std::atomic<int> liveSlotsNow_{0};
    std::atomic<uint64_t> deadlineKilledNow_{0};
    std::atomic<uint64_t> requeuedNow_{0};
    std::atomic<int> quarantinedNow_{0};
    /** Set by shutdown() once the session settles. */
    const system::RunReport *runReport_ = nullptr;

    std::thread thread_;
};

} // namespace serve
} // namespace fleet

#endif // FLEET_SERVE_SERVICE_H
