/**
 * @file
 * FleetService implementation. Thread discipline: client threads touch
 * only the admission state (wait_, counters, the block CV) under mu_;
 * the inner Session is touched exclusively by the pumping thread (the
 * background service thread, or the caller in paced mode) — stats for
 * client threads are published through atomics after each round. That
 * split is what keeps the simulated schedule a pure function of the
 * admitted sequence: host timing decides only when rounds happen and
 * in which order clients reach the admission lock, never what the
 * simulation computes (DESIGN.md §5f).
 */

#include "serve/service.h"

#include <chrono>

namespace fleet {
namespace serve {

const char *
admissionPolicyName(AdmissionPolicy policy)
{
    switch (policy) {
    case AdmissionPolicy::Block:
        return "block";
    case AdmissionPolicy::Reject:
        return "reject";
    case AdmissionPolicy::ShedOldest:
        return "shed-oldest";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// JobTicket

void
JobTicket::State::complete(runtime::JobReport final)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        report = std::move(final);
        ready = true;
    }
    cv.notify_all();
}

bool
JobTicket::ready() const
{
    if (!state_)
        return false;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->ready;
}

const runtime::JobReport &
JobTicket::wait() const
{
    if (!state_)
        throw StatusError(Status::make(StatusCode::InvalidState,
                                       "JobTicket::wait on an invalid "
                                       "(default-constructed) ticket"));
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->ready; });
    return state_->report;
}

bool
JobTicket::waitFor(std::chrono::nanoseconds timeout) const
{
    if (!state_)
        throw StatusError(Status::make(StatusCode::InvalidState,
                                       "JobTicket::waitFor on an "
                                       "invalid ticket"));
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->cv.wait_for(lock, timeout,
                               [this] { return state_->ready; });
}

const runtime::JobReport &
JobTicket::report() const
{
    if (!state_)
        throw StatusError(Status::make(StatusCode::InvalidState,
                                       "JobTicket::report on an invalid "
                                       "ticket"));
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->ready)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "JobTicket::report before the job finished (pump or wait)"));
    return state_->report;
}

// ---------------------------------------------------------------------------
// FleetService

namespace {

/** Report for a job admission turned away before it reached a slot. */
runtime::JobReport
refusalReport(StatusCode code, const char *why)
{
    runtime::JobReport report;
    report.jobId = UINT64_MAX; // never assigned a session job id
    report.status = Status::make(code, why);
    return report;
}

} // namespace

FleetService::FleetService(const lang::Program &program,
                           const ServiceConfig &config)
    : FleetService(std::vector<lang::Program>(1, program), config)
{
}

FleetService::FleetService(std::vector<lang::Program> programs,
                           const ServiceConfig &config,
                           std::vector<system::SlotBinding> bindings)
    : config_(config),
      session_(std::move(programs), config.session, std::move(bindings))
{
    // A zero-depth queue under Block would park submitters forever
    // (nothing can ever be "waiting"); one slot of waiting room keeps
    // the policy meaningful.
    if (config_.policy == AdmissionPolicy::Block &&
        config_.maxQueueDepth == 0)
        config_.maxQueueDepth = 1;
    deviceCompleted_.assign(
        static_cast<size_t>(session_.numDevices()), 0);
    liveSlotsNow_.store(session_.liveSlots(), std::memory_order_relaxed);
    if (config_.backgroundThread)
        thread_ = std::thread([this] { serviceThread(); });
}

FleetService::~FleetService()
{
    shutdown();
}

JobTicket
FleetService::refuse(std::shared_ptr<JobTicket::State> state,
                     StatusCode code, const char *why)
{
    state->complete(refusalReport(code, why));
    JobTicket ticket;
    ticket.state_ = std::move(state);
    return ticket;
}

JobTicket
FleetService::submit(BitBuffer stream)
{
    return admit(std::move(stream),
                 nowCycle_.load(std::memory_order_relaxed), {});
}

JobTicket
FleetService::submit(BitBuffer stream, const SubmitOptions &options)
{
    return admit(std::move(stream),
                 nowCycle_.load(std::memory_order_relaxed), options);
}

JobTicket
FleetService::submitAt(BitBuffer stream, uint64_t arrival_cycle,
                       const SubmitOptions &options)
{
    return admit(std::move(stream), arrival_cycle, options);
}

JobTicket
FleetService::admit(BitBuffer stream, uint64_t arrival_cycle,
                    const SubmitOptions &options)
{
    auto state = std::make_shared<JobTicket::State>();
    std::unique_lock<std::mutex> lock(mu_);
    ++submitted_;
    TenantStats &tenant = tenants_[options.tag.tenant];
    ++tenant.submitted;
    if (!accepting_) {
        ++tenant.cancelled;
        return refuse(std::move(state), StatusCode::Cancelled,
                      "submit after shutdown: the service is no longer "
                      "accepting jobs");
    }

    // FIFO fairness under Block: a newcomer may not slip past parked
    // submitters, so it parks whenever anyone is already waiting for a
    // turn, not just when the queue is full.
    if (config_.policy == AdmissionPolicy::Block &&
        (wait_.size() >= config_.maxQueueDepth ||
         blockHead_ != blockNext_)) {
        uint64_t turn = blockNext_++;
        spaceCv_.wait(lock, [&] {
            return !accepting_ ||
                   (blockHead_ == turn &&
                    wait_.size() < config_.maxQueueDepth);
        });
        ++blockHead_; // pass the turn on even when released by shutdown
        spaceCv_.notify_all();
        if (!accepting_) {
            ++tenants_[options.tag.tenant].cancelled;
            return refuse(std::move(state), StatusCode::Cancelled,
                          "submit released by shutdown while blocked "
                          "on admission");
        }
    } else if (wait_.size() >= config_.maxQueueDepth) {
        if (config_.policy == AdmissionPolicy::Reject) {
            ++rejected_;
            ++tenant.rejected;
            return refuse(std::move(state),
                          StatusCode::ResourceExhausted,
                          "admission queue full (Reject policy)");
        }
        // ShedOldest: the oldest waiting job pays for the newest. The
        // distinct Shed code tells the evicted client apart from one
        // turned away at the door (ResourceExhausted).
        Waiting oldest = std::move(wait_.front());
        wait_.pop_front();
        ++shed_;
        ++tenants_[oldest.tag.tenant].shed;
        oldest.ticket->complete(refusalReport(
            StatusCode::Shed,
            "shed from the admission queue to make room "
            "(ShedOldest policy)"));
    }

    Waiting waiting;
    waiting.stream = std::move(stream);
    waiting.arrivalCycle = arrival_cycle;
    waiting.deadlineCycle = options.deadlineCycles
                                ? arrival_cycle + options.deadlineCycles
                                : 0;
    waiting.tag = options.tag;
    waiting.ticket = state;
    wait_.push_back(std::move(waiting));
    ++admitted_;
    ++tenants_[options.tag.tenant].admitted;
    JobTicket ticket;
    ticket.state_ = std::move(state);
    return ticket;
}

void
FleetService::dispatchLocked(std::shared_ptr<Tracked> tracked)
{
    // Keep the stream copy only while another attempt is possible
    // (retry enabled and attempts remain after this one).
    BitBuffer stream;
    if (config_.retry.maxAttempts > tracked->attempt)
        stream = tracked->stream; // copy; original stays for retries
    else
        stream = std::move(tracked->stream);
    auto self = tracked;
    session_.submitJob(
        std::move(stream), tracked->tag, tracked->arrivalCycle,
        [this, self](const runtime::JobReport &report) {
            onJobDone(self, report);
        },
        tracked->deadlineCycle);
    ++tenants_[tracked->tag.tenant].inSession;
}

void
FleetService::onJobDone(const std::shared_ptr<Tracked> &tracked,
                        const runtime::JobReport &report)
{
    // Runs on the pumping thread, inside Session::step — the session
    // is mid-round, so only service-side state is touched here; the
    // retry itself re-enters through feedSessionLocked next round.
    std::lock_guard<std::mutex> lock(mu_);
    TenantStats &tenant = tenants_[tracked->tag.tenant];
    --tenant.inSession;
    const bool attempts_left =
        config_.retry.maxAttempts > tracked->attempt;
    const bool within_deadline =
        tracked->deadlineCycle == 0 ||
        session_.cycles() < tracked->deadlineCycle;
    if (attempts_left && statusCodeTransient(report.status.code) &&
        within_deadline && session_.liveSlots() > 0) {
        tracked->lastReport = report;
        // Linear backoff in simulated cycles: attempt k waits k units.
        // The clock only advances while jobs run, so an otherwise-idle
        // service releases the retry on the next round (feedSession's
        // idle warp) rather than deadlocking on a cycle that would
        // never come.
        tracked->retryEligibleCycle =
            session_.cycles() +
            config_.retry.backoffCycles *
                static_cast<uint64_t>(tracked->attempt);
        ++tracked->attempt;
        ++retries_;
        ++tenant.retries;
        retryWait_.push_back(tracked);
        return;
    }
    runtime::JobReport final = report;
    final.attempts = static_cast<uint32_t>(tracked->attempt);
    ++tenant.completed;
    tenant.queueWaitCycles += final.queueWaitCycles();
    tenant.serviceCycles += final.serviceCycles();
    if (final.status.code == StatusCode::DeadlineExceeded)
        ++tenant.deadlineKilled;
    if (final.device >= 0 &&
        final.device < static_cast<int>(deviceCompleted_.size()))
        ++deviceCompleted_[final.device];
    tracked->ticket->complete(std::move(final));
    completed_.fetch_add(1, std::memory_order_relaxed);
}

void
FleetService::feedSessionLocked()
{
    // Keep the session's appetite ahead of harvest: up to two rounds'
    // worth of jobs pending inside it (one being served, one staged),
    // so a slot drained this round re-arms next round without a
    // bubble. Queue-wait accounting is unaffected — dispatch carries
    // each job's original arrival cycle.
    //
    // Under a non-FIFO scheduler (ISSUE 8) the staging bound would
    // defeat the policy: priority/SJF/WFQ can only reorder jobs the
    // *session* can see, so the whole admitted backlog is handed over
    // and the session queue becomes the scheduling pool. The FIFO
    // default keeps the legacy 2x bound (and its byte-identical
    // feed order).
    const bool fifo_default =
        config_.session.scheduler.policy ==
            runtime::SchedulerPolicy::Fifo &&
        !config_.session.schedulerFactory;
    const uint64_t target =
        fifo_default ? 2 * static_cast<uint64_t>(session_.liveSlots())
                     : UINT64_MAX;
    const uint64_t now = session_.cycles();

    // Retries first: they were admitted long ago, so they outrank the
    // wait queue and bypass the admission bound. Released strictly in
    // decision order once their backoff cycle passes.
    for (auto it = retryWait_.begin();
         it != retryWait_.end() && session_.jobsPending() < target;) {
        if ((*it)->retryEligibleCycle > now) {
            ++it;
            continue;
        }
        dispatchLocked(*it);
        it = retryWait_.erase(it);
    }
    // Idle warp: the session clock only advances while jobs are in
    // flight. If backoff is the *only* thing left, waiting for the
    // eligible cycle would deadlock — release the earliest-eligible
    // retry now. Deterministic: depends only on simulated state.
    if (wait_.empty() && session_.jobsPending() == 0 &&
        !retryWait_.empty()) {
        auto earliest = retryWait_.begin();
        for (auto it = std::next(earliest); it != retryWait_.end(); ++it)
            if ((*it)->retryEligibleCycle <
                (*earliest)->retryEligibleCycle)
                earliest = it;
        dispatchLocked(*earliest);
        retryWait_.erase(earliest);
    }

    bool freed = false;
    while (!wait_.empty() && session_.jobsPending() < target) {
        Waiting waiting = std::move(wait_.front());
        wait_.pop_front();
        freed = true;
        auto tracked = std::make_shared<Tracked>();
        tracked->ticket = std::move(waiting.ticket);
        tracked->stream = std::move(waiting.stream);
        tracked->arrivalCycle = waiting.arrivalCycle;
        tracked->deadlineCycle = waiting.deadlineCycle;
        tracked->tag = waiting.tag;
        dispatchLocked(std::move(tracked));
    }
    if (freed)
        spaceCv_.notify_all();
}

bool
FleetService::pumpOnce()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (finished_)
            return false;
        if (session_.liveSlots() == 0 &&
            (!wait_.empty() || !retryWait_.empty())) {
            // Every slot halted or quarantined: nothing will ever
            // drain the wait queue — complete the stranded tickets
            // instead of hanging their owners (the session strands its
            // own jobs the same way).
            for (Waiting &waiting : wait_) {
                waiting.ticket->complete(refusalReport(
                    StatusCode::InvalidState,
                    "no live processing-unit slots remain "
                    "(every channel halted)"));
                ++tenants_[waiting.tag.tenant].completed;
                completed_.fetch_add(1, std::memory_order_relaxed);
            }
            wait_.clear();
            // A pending retry has a real failure report from its last
            // attempt — that, not a refusal, is the honest terminal
            // state.
            for (auto &tracked : retryWait_) {
                runtime::JobReport final =
                    std::move(tracked->lastReport);
                final.attempts =
                    static_cast<uint32_t>(tracked->attempt - 1);
                ++tenants_[tracked->tag.tenant].completed;
                tracked->ticket->complete(std::move(final));
                completed_.fetch_add(1, std::memory_order_relaxed);
            }
            retryWait_.clear();
            spaceCv_.notify_all();
        }
        feedSessionLocked();
    }
    session_.step();
    nowCycle_.store(session_.cycles(), std::memory_order_relaxed);
    inFlightNow_.store(session_.jobsInFlight(),
                       std::memory_order_relaxed);
    liveSlotsNow_.store(session_.liveSlots(), std::memory_order_relaxed);
    deadlineKilledNow_.store(session_.deadlineKills(),
                             std::memory_order_relaxed);
    requeuedNow_.store(session_.jobRequeues(),
                       std::memory_order_relaxed);
    quarantinedNow_.store(session_.quarantinedSlots(),
                          std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    return !wait_.empty() || !retryWait_.empty() ||
           session_.jobsPending() > 0;
}

bool
FleetService::pump()
{
    if (thread_.joinable())
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "pump: the service runs a background thread; paced mode "
            "requires ServiceConfig::backgroundThread = false"));
    return pumpOnce();
}

void
FleetService::serviceThread()
{
    for (;;) {
        bool work = pumpOnce();
        if (!work) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!accepting_)
                    return; // shutdown requested and fully drained
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(config_.idlePollMicros));
        }
    }
}

void
FleetService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        accepting_ = false;
    }
    spaceCv_.notify_all();
    if (thread_.joinable())
        thread_.join(); // exits once every admitted job has a report
    else
        while (pumpOnce()) {
        }
    std::lock_guard<std::mutex> lock(mu_);
    if (!finished_) {
        runReport_ = &session_.finish();
        finished_ = true;
        nowCycle_.store(session_.cycles(), std::memory_order_relaxed);
        inFlightNow_.store(0, std::memory_order_relaxed);
        liveSlotsNow_.store(session_.liveSlots(),
                            std::memory_order_relaxed);
        deadlineKilledNow_.store(session_.deadlineKills(),
                                 std::memory_order_relaxed);
        requeuedNow_.store(session_.jobRequeues(),
                           std::memory_order_relaxed);
        quarantinedNow_.store(session_.quarantinedSlots(),
                              std::memory_order_relaxed);
    }
}

const system::RunReport &
FleetService::runReport() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!finished_ || runReport_ == nullptr)
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "runReport: call shutdown() first to settle the session"));
    return *runReport_;
}

ServiceStats
FleetService::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ServiceStats stats;
    stats.submitted = submitted_;
    stats.admitted = admitted_;
    stats.rejected = rejected_;
    stats.shed = shed_;
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.queueDepth = wait_.size();
    stats.blockedSubmitters = blockNext_ - blockHead_;
    stats.jobsInFlight = inFlightNow_.load(std::memory_order_relaxed);
    stats.liveSlots = liveSlotsNow_.load(std::memory_order_relaxed);
    stats.saturated = wait_.size() >= config_.maxQueueDepth;
    stats.simCycles = nowCycle_.load(std::memory_order_relaxed);
    stats.retries = retries_;
    stats.retryBacklog = retryWait_.size();
    stats.deadlineKilled =
        deadlineKilledNow_.load(std::memory_order_relaxed);
    stats.requeued = requeuedNow_.load(std::memory_order_relaxed);
    stats.quarantinedSlots =
        quarantinedNow_.load(std::memory_order_relaxed);
    // Per-tenant breakdown (ISSUE 8): terminal buckets come from the
    // maintained counters; the live waiting / retryBacklog buckets are
    // recomputed from the actual deques so the conservation law in
    // TenantStats holds by construction of the state, not by mirrored
    // arithmetic.
    std::map<uint32_t, TenantStats> tenants = tenants_;
    for (const Waiting &waiting : wait_)
        ++tenants[waiting.tag.tenant].waiting;
    for (const auto &tracked : retryWait_)
        ++tenants[tracked->tag.tenant].retryBacklog;
    stats.tenants.assign(tenants.begin(), tenants.end());
    stats.numDevices = static_cast<int>(deviceCompleted_.size());
    stats.deviceCompleted = deviceCompleted_;
    return stats;
}

bool
FleetService::saturated() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return wait_.size() >= config_.maxQueueDepth;
}

void
FleetService::injectChannelHalt(int c)
{
    if (thread_.joinable())
        throw StatusError(Status::make(
            StatusCode::InvalidState,
            "injectChannelHalt: the service runs a background thread; "
            "the chaos drill requires paced mode"));
    session_.forceHaltChannel(
        c, Status::make(StatusCode::InternalError,
                        "injected channel halt (chaos drill)"));
}

} // namespace serve
} // namespace fleet
