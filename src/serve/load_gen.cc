#include "serve/load_gen.h"

#include <cmath>

#include "util/logging.h"

namespace fleet {
namespace serve {

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
    case ArrivalProcess::Poisson:
        return "poisson";
    case ArrivalProcess::Bursty:
        return "bursty";
    }
    return "unknown";
}

namespace {

/** Exponential interarrival with the given mean, never zero so the
 * schedule strictly advances. 1-u keeps the log argument in (0, 1]. */
double
exponentialGap(Rng &rng, double mean_cycles)
{
    double u = rng.nextDouble();
    double gap = -mean_cycles * std::log(1.0 - u);
    return gap < 1.0 ? 1.0 : gap;
}

} // namespace

std::vector<Arrival>
makeArrivals(const LoadSpec &spec)
{
    if (spec.meanInterarrivalCycles < 1.0)
        panic("LoadSpec::meanInterarrivalCycles must be >= 1");
    if (spec.minJobBytes == 0 || spec.minJobBytes > spec.maxJobBytes)
        panic("LoadSpec job-size range must satisfy 0 < min <= max");
    if (spec.process == ArrivalProcess::Bursty &&
        (spec.burstBoost <= 1.0 || spec.burstDuty <= 0.0 ||
         spec.burstDuty >= 1.0 || spec.burstPeriodCycles == 0 ||
         spec.burstDuty * spec.burstBoost >= 1.0))
        panic("LoadSpec bursty shape requires boost > 1, duty in (0,1), "
              "duty*boost < 1 (the on-phase alone must not exceed the "
              "window mean), and a nonzero period");

    // Bursty keeps the *window* mean rate equal to the configured mean:
    //   duty/on_gap + (1-duty)/off_gap = 1/mean,  on_gap = mean/boost
    //   => off_gap = mean * (1-duty) / (1 - duty*boost)
    // (well-defined because duty*boost < 1 was checked above).
    double on_gap = spec.meanInterarrivalCycles / spec.burstBoost;
    double off_gap = spec.meanInterarrivalCycles *
                     (1.0 - spec.burstDuty) /
                     (1.0 - spec.burstDuty * spec.burstBoost);

    Rng rng(spec.seed);
    std::vector<Arrival> arrivals;
    arrivals.reserve(spec.jobs);
    double now = 0.0;
    for (uint64_t i = 0; i < spec.jobs; ++i) {
        double mean = spec.meanInterarrivalCycles;
        if (spec.process == ArrivalProcess::Bursty) {
            uint64_t phase = static_cast<uint64_t>(now) %
                             spec.burstPeriodCycles;
            bool on = phase < static_cast<uint64_t>(
                                  spec.burstDuty *
                                  static_cast<double>(
                                      spec.burstPeriodCycles));
            mean = on ? on_gap : off_gap;
        }
        now += exponentialGap(rng, mean);
        Arrival arrival;
        arrival.cycle = static_cast<uint64_t>(now);
        arrival.streamBytes =
            rng.nextInRange(spec.minJobBytes, spec.maxJobBytes);
        arrivals.push_back(arrival);
    }
    return arrivals;
}

} // namespace serve
} // namespace fleet
