#ifndef FLEET_BASELINE_TIMING_H
#define FLEET_BASELINE_TIMING_H

/**
 * @file
 * Measurement harness for CPU baselines: each hardware thread processes
 * one stream at a time (the paper's CPU execution model — "on the CPU,
 * each core processes a single stream"), wall-clocked over the whole
 * batch, best of several repeats.
 */

#include <vector>

#include "baseline/cpu.h"

namespace fleet {
namespace baseline {

struct MeasureOptions
{
    int threads = 0; ///< 0 = hardware concurrency.
    int repeats = 3;
};

struct MeasureResult
{
    double seconds = 0;
    uint64_t inputBytes = 0;
    uint64_t outputBytes = 0;
    int threads = 0;

    double gbps() const { return inputBytes / seconds / 1e9; }
};

/** Time a kernel over a batch of streams. Outputs are discarded (but
 * accumulated into a checksum so the work cannot be optimized away). */
MeasureResult measureCpu(const CpuKernel &kernel,
                         const std::vector<std::vector<uint8_t>> &streams,
                         const MeasureOptions &options = {});

} // namespace baseline
} // namespace fleet

#endif // FLEET_BASELINE_TIMING_H
