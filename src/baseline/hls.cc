#include "baseline/hls.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "lang/flatten.h"
#include "model/area.h"
#include "util/bits.h"

namespace fleet {
namespace baseline {

double
hlsMemoryMBps(const HlsMemoryParams &params, bool unrolled)
{
    double cycles_per_word = unrolled ? params.unrolledCyclesPerWord
                                      : params.pipelinedCyclesPerWord;
    double bytes_per_second = 8.0 / cycles_per_word *
                              params.clockMHz * 1e6;
    return bytes_per_second / 1e6;
}

double
hlsMemoryCeilingMBps(double clock_mhz)
{
    return 8.0 * clock_mhz; // 64 bits per cycle, in MB/s.
}

int
hlsInitiationInterval(const lang::Program &program)
{
    lang::FlatProgram flat = lang::flatten(program);

    // Syntactic access counts per resource.
    std::vector<int> bram_reads(program.brams.size(), 0);
    std::vector<int> bram_writes(program.brams.size(), 0);
    std::vector<int> vreg_reads(program.vregs.size(), 0);
    std::vector<int> vreg_writes(program.vregs.size(), 0);
    int emits = static_cast<int>(flat.emits.size());

    for (const auto &occ : flat.bramReads)
        bram_reads[occ.bramId]++;

    // Vector-register reads: count VecRegRead occurrences in all action
    // expressions (OpenCL arrays map to BRAMs too). Expressions are DAGs;
    // shared subtrees are one access site, so walk with a visited set.
    std::unordered_set<const lang::ExprNode *> visited;
    std::function<void(const lang::Expr &)> count_vreg =
        [&](const lang::Expr &e) {
            if (!e || visited.count(e.get()))
                return;
            visited.insert(e.get());
            if (e->kind == lang::ExprKind::VecRegRead)
                vreg_reads[e->stateId]++;
            count_vreg(e->a);
            count_vreg(e->b);
            count_vreg(e->c);
        };
    for (const auto &assign : flat.assigns) {
        count_vreg(assign.value);
        if (assign.cond)
            count_vreg(assign.cond);
        switch (assign.target.kind) {
          case lang::LValue::Kind::BramElem:
            bram_writes[assign.target.stateId]++;
            count_vreg(assign.target.index);
            break;
          case lang::LValue::Kind::VecElem:
            vreg_writes[assign.target.stateId]++;
            count_vreg(assign.target.index);
            break;
          default:
            break;
        }
    }
    for (const auto &emit : flat.emits) {
        count_vreg(emit.value);
        if (emit.cond)
            count_vreg(emit.cond);
    }

    // One read port and one write port per array; one write port on the
    // output buffer. Every access beyond a port's budget costs a cycle.
    int ii = 1;
    for (size_t b = 0; b < program.brams.size(); ++b) {
        ii += std::max(0, bram_reads[b] - 1);
        ii += std::max(0, bram_writes[b] - 1);
    }
    for (size_t v = 0; v < program.vregs.size(); ++v) {
        ii += std::max(0, vreg_reads[v] - 1);
        ii += std::max(0, vreg_writes[v] - 1);
    }
    ii += std::max(0, emits - 1);
    return ii;
}

model::Resources
hlsAreaEstimate(const rtl::Circuit &circuit, const lang::Program &program,
                const memctl::ControllerParams &ctrl)
{
    model::Resources fleet_area =
        model::estimatePuResources(circuit, ctrl);

    // Width pessimism: OpenCL integer types round every datapath width
    // up to the next of 8/16/32/64 bits. Estimate the ratio over the
    // circuit's real widths.
    auto rounded = [](int width) {
        if (width <= 8)
            return 8;
        if (width <= 16)
            return 16;
        if (width <= 32)
            return 32;
        return 64;
    };
    uint64_t exact_bits = 0, padded_bits = 0;
    for (const auto &node : circuit.nodes()) {
        exact_bits += node.width;
        padded_bits += rounded(node.width);
    }
    double width_factor =
        exact_bits ? double(padded_bits) / double(exact_bits) : 1.0;

    int ii = hlsInitiationInterval(program);

    model::Resources hls_area;
    hls_area.luts = uint64_t(fleet_area.luts * width_factor *
                             (1.0 + 0.10 * ii));
    // Pipeline registers: each extra stage latches the (padded) live
    // datapath.
    uint64_t datapath_ffs = 0;
    for (const auto &reg : circuit.regs())
        datapath_ffs += rounded(reg.width);
    hls_area.ffs = uint64_t(fleet_area.ffs * width_factor) +
                   uint64_t(ii) * datapath_ffs;
    hls_area.bram36 = fleet_area.bram36;
    hls_area.dsps = fleet_area.dsps;
    return hls_area;
}

} // namespace baseline
} // namespace fleet
