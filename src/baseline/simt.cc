#include "baseline/simt.h"

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "lang/flatten.h"
#include "sim/simulator.h"
#include "util/bits.h"

namespace fleet {
namespace baseline {

namespace {

/** DAG-aware node count of an expression set (shared subtrees counted
 * once, as a compiler would emit them once). */
void
countDag(const lang::Expr &e,
         std::unordered_set<const lang::ExprNode *> &visited,
         uint64_t &count)
{
    if (!e || visited.count(e.get()))
        return;
    visited.insert(e.get());
    ++count;
    countDag(e->a, visited, count);
    countDag(e->b, visited, count);
    countDag(e->c, visited, count);
}

} // namespace

SimtResult
simulateWarps(const lang::Program &program,
              const std::vector<BitBuffer> &streams,
              const SimtParams &params)
{
    SimtResult result;
    lang::FlatProgram flat = lang::flatten(program);
    const size_t num_actions = flat.assigns.size() + flat.emits.size();

    // Expressions of each action, for signature costing.
    std::vector<std::vector<lang::Expr>> action_exprs(num_actions);
    for (size_t a = 0; a < flat.assigns.size(); ++a) {
        const auto &assign = flat.assigns[a];
        if (assign.cond)
            action_exprs[a].push_back(assign.cond);
        action_exprs[a].push_back(assign.value);
        if (assign.target.index)
            action_exprs[a].push_back(assign.target.index);
    }
    for (size_t m = 0; m < flat.emits.size(); ++m) {
        const auto &emit = flat.emits[m];
        if (emit.cond)
            action_exprs[flat.assigns.size() + m].push_back(emit.cond);
        action_exprs[flat.assigns.size() + m].push_back(emit.value);
    }

    std::unordered_map<std::string, uint64_t> cost_memo;
    auto signature_cost = [&](const std::vector<uint8_t> &sig) {
        std::string key(sig.begin(), sig.end());
        auto it = cost_memo.find(key);
        if (it != cost_memo.end())
            return it->second;
        std::unordered_set<const lang::ExprNode *> visited;
        uint64_t count = 0;
        for (size_t a = 0; a < num_actions; ++a) {
            if (!sig[a])
                continue;
            for (const auto &expr : action_exprs[a])
                countDag(expr, visited, count);
            ++count; // The commit/emit itself.
            // Local-array writes are read-modify-write with bank
            // conflicts on a GPU.
            if (a < flat.assigns.size() &&
                flat.assigns[a].target.kind ==
                    lang::LValue::Kind::BramElem) {
                count += params.bramWriteExtraInsts;
            }
        }
        count += params.stepOverheadInsts;
        cost_memo.emplace(std::move(key), count);
        return count;
    };

    for (const auto &stream : streams)
        result.inputBytes += ceilDiv(stream.sizeBits(), 8);

    for (size_t base = 0; base < streams.size();
         base += size_t(params.warpSize)) {
        size_t lanes = std::min<size_t>(params.warpSize,
                                        streams.size() - base);
        std::vector<std::unique_ptr<sim::FunctionalSimulator>> sims;
        for (size_t l = 0; l < lanes; ++l) {
            sims.push_back(std::make_unique<sim::FunctionalSimulator>(
                program));
            sims.back()->beginStream(streams[base + l]);
        }

        std::vector<uint8_t> sig;
        std::vector<uint8_t> union_sig;
        while (true) {
            // One warp step: every unfinished lane executes one virtual
            // cycle; divergent signature groups serialize.
            std::map<std::string, uint64_t> groups;
            union_sig.assign(num_actions, 0);
            bool any = false;
            for (size_t l = 0; l < lanes; ++l) {
                if (sims[l]->streamDone())
                    continue;
                any = true;
                sims[l]->stepVcycle(&sig);
                groups[std::string(sig.begin(), sig.end())]++;
                for (size_t a = 0; a < num_actions; ++a)
                    union_sig[a] |= sig[a];
            }
            if (!any)
                break;
            ++result.warpSteps;
            for (const auto &[key, count] : groups) {
                (void)count;
                std::vector<uint8_t> group_sig(key.begin(), key.end());
                result.warpInstructions += signature_cost(group_sig);
            }
            result.convergedInstructions += signature_cost(union_sig);
        }
    }
    return result;
}

} // namespace baseline
} // namespace fleet
