#ifndef FLEET_BASELINE_CPU_H
#define FLEET_BASELINE_CPU_H

/**
 * @file
 * Hand-optimized CPU implementations of the six applications, using the
 * same token-based processing model and algorithms as the Fleet units
 * (Section 7.2: "hand-optimized CPU (C) versions, which use the same
 * token-based processing model and algorithms"). Each kernel must produce
 * output identical to its application's golden reference — enforced by
 * the test suite — and is timed by baseline/timing.h with one stream per
 * hardware thread, the paper's CPU execution model.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fleet {
namespace baseline {

class CpuKernel
{
  public:
    virtual ~CpuKernel() = default;
    virtual std::string name() const = 0;
    /** Process one raw stream; returns the output bytes. */
    virtual std::vector<uint8_t>
    run(const std::vector<uint8_t> &stream) const = 0;
};

/** CPU kernel for an application by registry name. For "BloomFilter",
 * `vectorized` selects the unrolled SIMD-friendly hash loop (the paper's
 * only CPU-vectorizable application, Section 7.2). */
std::unique_ptr<CpuKernel> makeCpuKernel(const std::string &app_name,
                                         bool vectorized = true);

} // namespace baseline
} // namespace fleet

#endif // FLEET_BASELINE_CPU_H
