#include "baseline/timing.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace fleet {
namespace baseline {

MeasureResult
measureCpu(const CpuKernel &kernel,
           const std::vector<std::vector<uint8_t>> &streams,
           const MeasureOptions &options)
{
    MeasureResult result;
    result.threads = options.threads > 0
                         ? options.threads
                         : int(std::thread::hardware_concurrency());
    if (result.threads < 1)
        result.threads = 1;
    for (const auto &stream : streams)
        result.inputBytes += stream.size();

    static std::atomic<uint64_t> sink{0};
    double best = 1e30;
    for (int rep = 0; rep < options.repeats; ++rep) {
        std::atomic<size_t> next{0};
        std::atomic<uint64_t> out_bytes{0};
        auto worker = [&] {
            uint64_t checksum = 0;
            uint64_t bytes = 0;
            while (true) {
                size_t idx = next.fetch_add(1);
                if (idx >= streams.size())
                    break;
                auto out = kernel.run(streams[idx]);
                bytes += out.size();
                for (size_t i = 0; i < out.size(); i += 64)
                    checksum += out[i];
            }
            sink += checksum;
            out_bytes += bytes;
        };
        auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> pool;
        for (int t = 1; t < result.threads; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &thread : pool)
            thread.join();
        auto stop = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(stop - start).count();
        best = std::min(best, seconds);
        result.outputBytes = out_bytes.load();
    }
    result.seconds = best;
    return result;
}

} // namespace baseline
} // namespace fleet
